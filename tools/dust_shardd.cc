// dust_shardd — one shard of a distributed tuple-search lake as a process.
//
// Loads a saved index file (io::LoadIndex). When the file is a sharded
// index (DUSTSHRD manifest) and --shard N is given, serves only child N
// with its local->global id mapping, so the hits it answers carry the same
// global ids the in-process ShardedIndex would produce; a plain index file
// is served as-is with identity ids. Answers the shard RPCs (PING, INFO,
// SEARCH, SEARCH_BATCH, METRICS) over the length-prefixed frame protocol
// until SIGTERM/SIGINT, then shuts down cleanly.
//
// Usage:
//   dust_shardd --index lake.idx --shard 1 --port 0 --port-file p1.port
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "io/index_io.h"
#include "net/server.h"
#include "net/shard_service.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "serve/executor.h"
#include "shard/sharded_index.h"
#include "util/status.h"

namespace {

struct ShardDaemonOptions {
  std::string index_path;
  int shard = -1;  // -1: serve the loaded index whole
  std::string host = "127.0.0.1";
  int port = 0;  // 0: pick a free port (see --port-file)
  std::string port_file;
  std::string label;
  size_t threads = 0;  // 0: hardware concurrency
  std::string trace_out;  // write shard-side spans as Chrome JSON on exit
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: dust_shardd --index <file> [--shard <n>] [--host <ip>]\n"
      "                   [--port <p>] [--port-file <path>] [--label <name>]\n"
      "                   [--threads <n>] [--trace-out <trace.json>]\n"
      "\n"
      "Serves one index shard over the dust frame protocol until SIGTERM.\n"
      "  --index      index file saved by dust_cli --save-tuple-index or\n"
      "               io::SaveIndex (plain or sharded/DUSTSHRD)\n"
      "  --shard      child to serve when --index is a sharded file; hits\n"
      "               are answered with lake-global ids\n"
      "  --port       0 (default) binds a free port\n"
      "  --port-file  write the bound port (decimal, newline) once listening\n"
      "  --threads    handler pool size (default: hardware concurrency)\n"
      "  --trace-out  write spans recorded for sampled requests (the router\n"
      "               propagates trace ids over SEARCH frames) as Chrome\n"
      "               trace-event JSON at shutdown\n");
}

bool ParseArgs(int argc, char** argv, ShardDaemonOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--index") {
      const char* v = next("--index");
      if (v == nullptr) return false;
      opts->index_path = v;
    } else if (arg == "--shard") {
      const char* v = next("--shard");
      if (v == nullptr) return false;
      opts->shard = std::atoi(v);
    } else if (arg == "--host") {
      const char* v = next("--host");
      if (v == nullptr) return false;
      opts->host = v;
    } else if (arg == "--port") {
      const char* v = next("--port");
      if (v == nullptr) return false;
      opts->port = std::atoi(v);
    } else if (arg == "--port-file") {
      const char* v = next("--port-file");
      if (v == nullptr) return false;
      opts->port_file = v;
    } else if (arg == "--label") {
      const char* v = next("--label");
      if (v == nullptr) return false;
      opts->label = v;
    } else if (arg == "--threads") {
      const char* v = next("--threads");
      if (v == nullptr) return false;
      opts->threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--trace-out") {
      const char* v = next("--trace-out");
      if (v == nullptr) return false;
      opts->trace_out = v;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (opts->index_path.empty()) {
    std::fprintf(stderr, "--index is required\n");
    return false;
  }
  if (opts->port < 0 || opts->port > 65535) {
    std::fprintf(stderr, "--port out of range\n");
    return false;
  }
  return true;
}

// Self-pipe signal bridge: the handler only writes one byte; main blocks on
// the read end, so shutdown logic runs on the main thread, not in a signal
// context.
int g_signal_pipe[2] = {-1, -1};

void OnShutdownSignal(int) {
  const char byte = 's';
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using dust::Result;
  using dust::Status;

  ShardDaemonOptions opts;
  if (!ParseArgs(argc, argv, &opts)) {
    PrintUsage();
    return 2;
  }

  Result<std::unique_ptr<dust::index::VectorIndex>> loaded =
      dust::io::LoadIndex(opts.index_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "dust_shardd: cannot load %s: %s\n",
                 opts.index_path.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<dust::index::VectorIndex> index = std::move(loaded).value();
  std::vector<size_t> global_ids;  // empty = identity
  if (opts.shard >= 0) {
    auto* sharded = dynamic_cast<dust::shard::ShardedIndex*>(index.get());
    if (sharded == nullptr) {
      std::fprintf(stderr,
                   "dust_shardd: --shard %d given but %s is not a sharded "
                   "index (type %s)\n",
                   opts.shard, opts.index_path.c_str(),
                   index->type_tag().c_str());
      return 1;
    }
    if (static_cast<size_t>(opts.shard) >= sharded->num_shards()) {
      std::fprintf(stderr,
                   "dust_shardd: --shard %d out of range (file has %zu "
                   "shards)\n",
                   opts.shard, sharded->num_shards());
      return 1;
    }
    std::unique_ptr<dust::index::VectorIndex> child =
        sharded->TakeShard(static_cast<size_t>(opts.shard), &global_ids);
    index = std::move(child);  // the gutted sharded wrapper is dropped here
  }
  if (opts.label.empty()) {
    opts.label = opts.shard >= 0 ? "shard" + std::to_string(opts.shard)
                                 : opts.index_path;
  }

  const size_t threads =
      opts.threads > 0
          ? opts.threads
          : std::max<size_t>(1, std::thread::hardware_concurrency());
  dust::serve::Executor executor(threads);
  index->SetExecutor(&executor);

  dust::net::ShardService service(std::move(index), std::move(global_ids),
                                  opts.label);
  dust::net::Server server(&executor);
  Status registered = service.RegisterOn(&server);
  if (!registered.ok()) {
    std::fprintf(stderr, "dust_shardd: %s\n", registered.ToString().c_str());
    return 1;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "dust_shardd: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  std::signal(SIGTERM, OnShutdownSignal);
  std::signal(SIGINT, OnShutdownSignal);
  std::signal(SIGPIPE, SIG_IGN);

  Status started = server.Start(opts.host, static_cast<uint16_t>(opts.port));
  if (!started.ok()) {
    std::fprintf(stderr, "dust_shardd: %s\n", started.ToString().c_str());
    return 1;
  }
  if (!opts.port_file.empty()) {
    // Written (and flushed) only after listen succeeds, so a launcher can
    // poll the file to learn the bound port.
    std::ofstream out(opts.port_file, std::ios::trunc);
    out << server.port() << "\n";
    out.close();
    if (!out) {
      std::fprintf(stderr, "dust_shardd: cannot write %s\n",
                   opts.port_file.c_str());
      server.Shutdown();
      return 1;
    }
  }
  std::fprintf(stderr,
               "dust_shardd: serving %s (%zu vectors, dim %zu) on %s:%u\n",
               opts.label.c_str(), service.index().size(),
               service.index().dim(), opts.host.c_str(), server.port());

  // Block until a shutdown signal lands.
  for (;;) {
    struct pollfd pfd{g_signal_pipe[0], POLLIN, 0};
    const int n = ::poll(&pfd, 1, -1);
    if (n > 0) break;
    if (n < 0 && errno != EINTR) break;
  }
  std::fprintf(stderr, "dust_shardd: shutting down %s\n", opts.label.c_str());
  server.Shutdown();
  if (!opts.trace_out.empty()) {
    // After Shutdown every handler has drained, so the snapshot is final.
    const dust::obs::SpanCollector& collector =
        dust::obs::SpanCollector::Global();
    const std::vector<dust::obs::SpanRecord> spans = collector.Snapshot();
    Status wrote = dust::obs::WriteChromeTrace(opts.trace_out, spans,
                                               "dust_shardd:" + opts.label);
    if (!wrote.ok()) {
      std::fprintf(stderr, "dust_shardd: %s\n", wrote.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "dust_shardd: wrote %zu spans to %s (%llu dropped)\n",
                 spans.size(), opts.trace_out.c_str(),
                 static_cast<unsigned long long>(collector.dropped_total()));
  }
  return 0;
}
