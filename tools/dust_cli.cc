// dust_cli — run diverse unionable tuple search over a directory of CSVs.
//
//   dust_cli --lake <dir> --query <file.csv> [--k 30] [--tables 10]
//            [--engine starmie|d3l] [--index flat|ivf|lsh|hnsw|sharded:...]
//            [--shards N] [--hnsw-m N] [--hnsw-ef N]
//            [--shortlist N] [--out result.csv] [--p 2] [--s 2500]
//            [--save-index snap.bin | --load-index snap.bin]
//
// Indexes every *.csv in the lake directory, runs Algorithm 1 for the query
// table, prints a summary and (optionally) writes the k diverse tuples.
//
// Offline/online split: `--save-index` persists the built lake index as a
// snapshot (and, without --query, exits after building); `--load-index`
// restores it so serving answers queries without re-embedding the lake:
//
//   dust_cli --lake data/lake --index hnsw --shortlist 50 --save-index s.bin
//   dust_cli --lake data/lake --index hnsw --shortlist 50
//            --load-index s.bin --query q.csv
//
// Sharded lakes: `--shards N` partitions the shortlist index across N
// child indexes of the --index type with scatter-gather search (equivalent
// to --index sharded:<type>:N; spell the full spec for hash placement).
//
// Query serving: `--serve` builds a tuple-level index over the lake, starts
// an async QueryServer (shared thread-pool executor, bounded admission
// queue, micro-batching into single SearchBatch calls), and drives it with
// a synthetic closed-loop client to report QPS and tail latency:
//
//   dust_cli --lake data/lake --query q.csv --serve --threads 8
//            --batch-window-us 2000 --clients 16 --requests 2000 --k 30
//
// Every served result is checked bit-identical to the sequential
// TupleSearch::SearchTuples baseline; a mismatch fails the run.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "embed/tuple_encoder.h"
#include "index/vector_index.h"
#include "io/index_io.h"
#include "net/router_index.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "search/tuple_search.h"
#include "serve/query_server.h"
#include "shard/sharded_index.h"
#include "table/csv.h"
#include "util/stopwatch.h"

using namespace dust;

namespace {

struct CliOptions {
  std::string lake_dir;
  std::string query_path;
  std::string out_path;
  std::string save_index_path;
  std::string load_index_path;
  std::string engine = "starmie";
  std::string index = "flat";
  la::Metric metric = la::Metric::kCosine;
  size_t shortlist = 0;
  size_t shards = 0;
  size_t hnsw_m = 0;
  size_t hnsw_ef = 0;
  size_t k = 30;
  size_t tables = 10;
  size_t p = 2;
  size_t s = 2500;
  bool serve = false;
  size_t threads = 4;
  size_t batch_window_us = 2000;
  size_t batch_max = 32;
  size_t queue_capacity = 256;
  size_t clients = 4;
  size_t requests = 200;
  // Serving-hardening knobs; defaults come from the pipeline-level serving
  // config so every entry point agrees on them.
  size_t cache_entries = core::ServingConfig{}.cache_entries;
  size_t cache_bytes = core::ServingConfig{}.cache_bytes;
  std::string metrics_out_path;
  // Distributed serving (PR 7): route queries to remote dust_shardd
  // processes instead of an in-process index.
  std::string router_endpoints;     // comma-separated host:port list
  std::string save_tuple_index_path;  // build the tuple index, save, exit
  std::string dump_hits_path;       // write baseline hits, bit-exact
  // Mutable lakes (PR 10): tombstoned deletes and incremental ingest
  // against a live tuple index, applied before any query is served.
  std::string delete_tables;        // comma-separated lake table names
  std::string add_tables;           // comma-separated CSV paths to ingest
  bool compact = false;             // rewrite the index without tombstones
  std::string load_tuple_index_path;  // serve from a saved tuple index
  bool allow_partial = false;
  size_t deadline_ms = 5000;
  size_t rpc_retries = 1;
  // Retrieval cascade (PR 8): candidate prefilters ahead of the vector
  // shortlist, for both the pipeline and --serve paths.
  bool cascade = false;
  std::string cascade_stages;  // raw --cascade-stages value
  bool cascade_prefilter = true;
  bool cascade_prescreen = true;
  // Tracing / slow-query log (PR 9). trace_sample_rate < 0 means "unset":
  // ParseArgs resolves it to 1.0 when --trace-out is given, else 0.0.
  std::string trace_out_path;
  double trace_sample_rate = -1.0;
  double slow_query_ms = -1.0;  // < 0 disables the slow-query log
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: dust_cli --lake <dir> --query <file.csv> [--k N] [--tables N]\n"
      "                [--engine starmie|d3l]\n"
      "                [--index flat|ivf|lsh|hnsw|sharded:<type>:<n>]\n"
      "                [--shards N] [--hnsw-m N] [--hnsw-ef N]\n"
      "                [--metric cosine|euclidean|manhattan]\n"
      "                [--shortlist N] [--out result.csv] [--p N] [--s N]\n"
      "                [--save-index <snapshot> | --load-index <snapshot>]\n"
      "                [--cascade [--cascade-stages prefilter,prescreen]]\n"
      "                [--serve [--threads N] [--batch-window-us U]\n"
      "                 [--batch-max N] [--queue N] [--clients N]\n"
      "                 [--requests N] [--cache N] [--cache-bytes N]\n"
      "                 [--metrics-out metrics.txt]\n"
      "                 [--trace-out trace.json] [--trace-sample R]\n"
      "                 [--slow-query-ms MS]\n"
      "                 [--router host:port,... [--allow-partial]\n"
      "                  [--deadline-ms N] [--rpc-retries N]]\n"
      "                 [--dump-hits hits.txt]\n"
      "                 [--load-tuple-index <file>]\n"
      "                 [--delete-tables a,b] [--add-tables x.csv,y.csv]\n"
      "                 [--compact]]\n"
      "                [--save-tuple-index <file>]\n"
      "       --serve starts an async tuple-search server over the lake and\n"
      "       drives it with a synthetic closed-loop client (--clients\n"
      "       concurrent clients, --requests total queries), printing QPS\n"
      "       and p50/p95/p99 latency; results are verified bit-identical\n"
      "       to sequential search\n"
      "       --cache bounds the LRU result cache in entries (0 disables;\n"
      "       hits resolve without entering the batch queue); --cache-bytes\n"
      "       bounds it in bytes; --metrics-out writes the server's metrics\n"
      "       registry as Prometheus-style name/value text\n"
      "       --trace-out writes every recorded span as Chrome trace-event\n"
      "       JSON (load in chrome://tracing or ui.perfetto.dev) after the\n"
      "       run; --trace-sample sets the fraction of requests traced in\n"
      "       [0,1] (default 1 with --trace-out, else 0); --slow-query-ms\n"
      "       logs queries at or above MS end-to-end at WARN with their\n"
      "       trace id and span tree (0 logs every request)\n"
      "       --router fans --serve queries out to remote dust_shardd\n"
      "       processes (endpoints in shard order) instead of building an\n"
      "       in-process index; --allow-partial tolerates parity mismatches\n"
      "       only while the router reports degraded (partial) results;\n"
      "       --deadline-ms bounds each shard RPC, --rpc-retries bounds\n"
      "       retries of transient failures\n"
      "       --dump-hits writes the baseline hit list (by table name) with\n"
      "       bit-exact similarities for cross-process comparison\n"
      "       --delete-tables tombstones the named lake tables (names or\n"
      "       *.csv filenames) before serving; --add-tables ingests extra\n"
      "       CSV files into the live index; --compact rewrites the index\n"
      "       without tombstones after mutations; every mutation bumps the\n"
      "       lake-state hash, so cached results from the pre-mutation lake\n"
      "       can never be served\n"
      "       --load-tuple-index serves from a saved tuple index instead of\n"
      "       re-embedding the lake (the CSVs are still read for row\n"
      "       alignment); with --serve, --save-tuple-index persists the\n"
      "       post-mutation index\n"
      "       --save-tuple-index builds the tuple-level index (honoring\n"
      "       --index/--shards) and saves it for dust_shardd to load\n"
      "       --save-index without --query builds the lake index and exits;\n"
      "       --load-index serves queries from a saved snapshot without\n"
      "       re-embedding the lake\n"
      "       --shards N partitions the shortlist index across N shards of\n"
      "       the --index type (scatter-gather search); --hnsw-m/--hnsw-ef\n"
      "       tune the HNSW graph degree and query beam width\n"
      "       --metric selects the tuple distance delta(.) used for\n"
      "       diversification; table search scoring is always cosine\n"
      "       (Starmie-style embedding similarity)\n"
      "       --cascade enables the staged retrieval cascade (type\n"
      "       prefilter -> MinHash prescreen -> vector shortlist -> exact\n"
      "       rerank) for the starmie engine, in both pipeline and --serve\n"
      "       modes; --cascade-stages restricts the prefilter layers to a\n"
      "       comma-separated subset of {prefilter, prescreen}\n");
}

/// Parses a non-negative integer: digits only (strtoul alone would skip
/// whitespace and wrap signed values like " -5" to a huge size_t), and no
/// silent saturation — a value past ULONG_MAX makes strtoul clamp and set
/// ERANGE, which must be rejected as overflow (mirroring ParseShardCount's
/// bounds discipline), not accepted as a huge-but-valid count.
bool ParseSize(const char* flag, const char* value, size_t* out) {
  bool digits_only = *value != '\0';
  for (const char* p = value; *p; ++p) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) digits_only = false;
  }
  if (!digits_only) {
    std::fprintf(stderr, "%s expects a non-negative number, got: %s\n", flag,
                 value);
    return false;
  }
  errno = 0;
  const unsigned long parsed = std::strtoul(value, nullptr, 10);
  if (errno == ERANGE) {
    std::fprintf(stderr, "%s value overflows: %s\n", flag, value);
    return false;
  }
  *out = static_cast<size_t>(parsed);
  return true;
}

/// Parses a finite double with no trailing junk; range checks are the
/// caller's. " 1.5x" and overflowing values are rejected, not truncated.
bool ParseDouble(const char* flag, const char* value, double* out) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE ||
      !std::isfinite(parsed)) {
    std::fprintf(stderr, "%s expects a finite number, got: %s\n", flag, value);
    return false;
  }
  *out = parsed;
  return true;
}

/// Splits "a,b,c" into {"a","b","c"}; empty segments are dropped.
std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> parts;
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t end = list.find(',', pos);
    if (end == std::string::npos) end = list.size();
    if (end > pos) parts.push_back(list.substr(pos, end - pos));
    pos = end + 1;
  }
  return parts;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--lake" && (value = next())) {
      options->lake_dir = value;
    } else if (arg == "--query" && (value = next())) {
      options->query_path = value;
    } else if (arg == "--out" && (value = next())) {
      options->out_path = value;
    } else if (arg == "--save-index" && (value = next())) {
      options->save_index_path = value;
    } else if (arg == "--load-index" && (value = next())) {
      options->load_index_path = value;
    } else if (arg == "--engine" && (value = next())) {
      options->engine = value;
    } else if (arg == "--index" && (value = next())) {
      options->index = value;
    } else if (arg == "--metric" && (value = next())) {
      // MetricFromName rejects unknown spellings instead of silently
      // falling back to cosine; a typo'd metric must not serve wrong
      // distances.
      Result<la::Metric> metric = la::MetricFromName(value);
      if (!metric.ok()) {
        std::fprintf(stderr, "bad --metric: %s\n",
                     metric.status().ToString().c_str());
        return false;
      }
      options->metric = metric.value();
    } else if (arg == "--shortlist" && (value = next())) {
      if (!ParseSize("--shortlist", value, &options->shortlist)) return false;
    } else if (arg == "--shards" && (value = next())) {
      if (!ParseSize("--shards", value, &options->shards)) return false;
      if (options->shards == 0) {
        // An explicit 0 is a contradiction, not "unsharded" — reject it
        // instead of silently dropping the flag.
        std::fprintf(stderr, "--shards must be >= 1 (omit for unsharded)\n");
        return false;
      }
    } else if (arg == "--hnsw-m" && (value = next())) {
      if (!ParseSize("--hnsw-m", value, &options->hnsw_m)) return false;
      if (options->hnsw_m < 2) {
        std::fprintf(stderr,
                     "--hnsw-m must be >= 2 (graph degree), got: %s\n", value);
        return false;
      }
    } else if (arg == "--hnsw-ef" && (value = next())) {
      if (!ParseSize("--hnsw-ef", value, &options->hnsw_ef)) return false;
      if (options->hnsw_ef < 1) {
        std::fprintf(stderr,
                     "--hnsw-ef must be >= 1 (query beam width), got: %s\n",
                     value);
        return false;
      }
    } else if (arg == "--cascade") {
      options->cascade = true;
    } else if (arg == "--cascade-stages" && (value = next())) {
      options->cascade_stages = value;
    } else if (arg == "--serve") {
      options->serve = true;
    } else if (arg == "--threads" && (value = next())) {
      if (!ParseSize("--threads", value, &options->threads)) return false;
    } else if (arg == "--batch-window-us" && (value = next())) {
      if (!ParseSize("--batch-window-us", value, &options->batch_window_us)) {
        return false;
      }
    } else if (arg == "--batch-max" && (value = next())) {
      if (!ParseSize("--batch-max", value, &options->batch_max)) return false;
      if (options->batch_max == 0) {
        std::fprintf(stderr, "--batch-max must be >= 1\n");
        return false;
      }
    } else if (arg == "--queue" && (value = next())) {
      if (!ParseSize("--queue", value, &options->queue_capacity)) return false;
      if (options->queue_capacity == 0) {
        std::fprintf(stderr, "--queue must be >= 1\n");
        return false;
      }
    } else if (arg == "--clients" && (value = next())) {
      if (!ParseSize("--clients", value, &options->clients)) return false;
      if (options->clients == 0) {
        std::fprintf(stderr, "--clients must be >= 1\n");
        return false;
      }
    } else if (arg == "--requests" && (value = next())) {
      if (!ParseSize("--requests", value, &options->requests)) return false;
      if (options->requests == 0) {
        // A 0-request serve run would "succeed" vacuously — the parity
        // check passes because nothing was checked. Reject it up front.
        std::fprintf(stderr, "--requests must be >= 1\n");
        return false;
      }
    } else if (arg == "--cache" && (value = next())) {
      if (!ParseSize("--cache", value, &options->cache_entries)) return false;
    } else if (arg == "--cache-bytes" && (value = next())) {
      if (!ParseSize("--cache-bytes", value, &options->cache_bytes)) {
        return false;
      }
    } else if (arg == "--metrics-out" && (value = next())) {
      options->metrics_out_path = value;
    } else if (arg == "--trace-out" && (value = next())) {
      options->trace_out_path = value;
    } else if (arg == "--trace-sample" && (value = next())) {
      if (!ParseDouble("--trace-sample", value, &options->trace_sample_rate)) {
        return false;
      }
      if (!obs::ValidSampleRate(options->trace_sample_rate)) {
        std::fprintf(stderr,
                     "--trace-sample must be a rate within [0, 1], got: %s\n",
                     value);
        return false;
      }
    } else if (arg == "--slow-query-ms" && (value = next())) {
      if (!ParseDouble("--slow-query-ms", value, &options->slow_query_ms)) {
        return false;
      }
      if (options->slow_query_ms < 0.0) {
        std::fprintf(stderr, "--slow-query-ms must be >= 0, got: %s\n", value);
        return false;
      }
    } else if (arg == "--router" && (value = next())) {
      options->router_endpoints = value;
    } else if (arg == "--save-tuple-index" && (value = next())) {
      options->save_tuple_index_path = value;
    } else if (arg == "--load-tuple-index" && (value = next())) {
      options->load_tuple_index_path = value;
    } else if (arg == "--delete-tables" && (value = next())) {
      options->delete_tables = value;
    } else if (arg == "--add-tables" && (value = next())) {
      options->add_tables = value;
    } else if (arg == "--compact") {
      options->compact = true;
    } else if (arg == "--dump-hits" && (value = next())) {
      options->dump_hits_path = value;
    } else if (arg == "--allow-partial") {
      options->allow_partial = true;
    } else if (arg == "--deadline-ms" && (value = next())) {
      if (!ParseSize("--deadline-ms", value, &options->deadline_ms)) {
        return false;
      }
      if (options->deadline_ms == 0) {
        std::fprintf(stderr, "--deadline-ms must be >= 1\n");
        return false;
      }
    } else if (arg == "--rpc-retries" && (value = next())) {
      if (!ParseSize("--rpc-retries", value, &options->rpc_retries)) {
        return false;
      }
    } else if (arg == "--k" && (value = next())) {
      if (!ParseSize("--k", value, &options->k)) return false;
    } else if (arg == "--tables" && (value = next())) {
      if (!ParseSize("--tables", value, &options->tables)) return false;
    } else if (arg == "--p" && (value = next())) {
      if (!ParseSize("--p", value, &options->p)) return false;
    } else if (arg == "--s" && (value = next())) {
      if (!ParseSize("--s", value, &options->s)) return false;
    } else {
      std::fprintf(stderr, "unknown or incomplete argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (options->engine != "starmie" && options->engine != "d3l") {
    // The pipeline routes anything that is not exactly "d3l" to starmie;
    // reject typos here instead of silently running the wrong engine.
    std::fprintf(stderr, "unknown --engine: %s\n", options->engine.c_str());
    return false;
  }
  if (!index::IsKnownIndexType(options->index)) {
    // Reject here for a usage error instead of the factory's DUST_CHECK
    // abort deep inside IndexLake.
    std::fprintf(stderr, "unknown --index type: %s\n", options->index.c_str());
    return false;
  }
  if (!options->cascade_stages.empty() && !options->cascade) {
    // A stage subset without the cascade itself is a contradiction —
    // reject it instead of silently running flat.
    std::fprintf(stderr, "--cascade-stages requires --cascade\n");
    return false;
  }
  if (!options->cascade_stages.empty()) {
    options->cascade_prefilter = false;
    options->cascade_prescreen = false;
    for (const std::string& stage : SplitCommas(options->cascade_stages)) {
      if (stage == "prefilter") {
        options->cascade_prefilter = true;
      } else if (stage == "prescreen") {
        options->cascade_prescreen = true;
      } else {
        std::fprintf(stderr,
                     "unknown cascade stage: %s (expected a comma-separated "
                     "subset of: prefilter, prescreen)\n",
                     stage.c_str());
        return false;
      }
    }
  }
  if (options->cascade && options->engine != "starmie") {
    std::fprintf(stderr,
                 "--cascade requires the starmie engine (the d3l engine has "
                 "no staged retrieval path)\n");
    return false;
  }
  if (options->shards > 0 && shard::IsShardedSpec(options->index)) {
    std::fprintf(stderr,
                 "--shards cannot wrap the already-sharded --index %s\n",
                 options->index.c_str());
    return false;
  }
  if (options->shards > 0 &&
      !index::IsKnownIndexType("sharded:" + options->index + ":" +
                               std::to_string(options->shards))) {
    // The composed spec must pass the same validation a literal
    // "sharded:..." --index would (e.g. the 2^16 shard-count cap).
    std::fprintf(stderr, "--shards %zu is out of range\n", options->shards);
    return false;
  }
  if (options->serve) {
    if (options->engine != "starmie") {
      std::fprintf(stderr, "--serve supports only the starmie engine\n");
      return false;
    }
    if (!options->save_index_path.empty() ||
        !options->load_index_path.empty() || !options->out_path.empty()) {
      std::fprintf(stderr,
                   "--serve is exclusive with --save-index/--load-index/"
                   "--out\n");
      return false;
    }
    if (options->query_path.empty()) {
      std::fprintf(stderr, "--serve needs --query for the client workload\n");
      return false;
    }
    if (options->metric != la::Metric::kCosine) {
      // The tuple index scores with cosine similarity by construction;
      // accepting another metric here would silently serve cosine results
      // under the wrong label.
      std::fprintf(stderr,
                   "--serve scores tuples with cosine similarity only; "
                   "--metric %s is not supported\n",
                   la::MetricName(options->metric));
      return false;
    }
    if (options->shortlist > 0) {
      std::fprintf(stderr,
                   "--shortlist is ignored by --serve (tuple search always "
                   "fetches per-query candidates)\n");
    }
  }
  if (!options->metrics_out_path.empty() && !options->serve) {
    std::fprintf(stderr, "--metrics-out requires --serve\n");
    return false;
  }
  if (!options->trace_out_path.empty() && !options->serve) {
    std::fprintf(stderr, "--trace-out requires --serve\n");
    return false;
  }
  if (options->trace_sample_rate >= 0.0 && !options->serve) {
    std::fprintf(stderr, "--trace-sample requires --serve\n");
    return false;
  }
  if (options->slow_query_ms >= 0.0 && !options->serve) {
    std::fprintf(stderr, "--slow-query-ms requires --serve\n");
    return false;
  }
  if (options->trace_sample_rate < 0.0) {
    // Asking for a trace file implies tracing everything; otherwise the
    // sampler stays off and tracing costs nothing.
    options->trace_sample_rate = options->trace_out_path.empty() ? 0.0 : 1.0;
  }
  if (!options->router_endpoints.empty() && !options->serve) {
    std::fprintf(stderr, "--router requires --serve\n");
    return false;
  }
  if (options->allow_partial && options->router_endpoints.empty()) {
    std::fprintf(stderr, "--allow-partial requires --router\n");
    return false;
  }
  if (!options->dump_hits_path.empty() && !options->serve) {
    std::fprintf(stderr, "--dump-hits requires --serve\n");
    return false;
  }
  const bool mutations = !options->delete_tables.empty() ||
                         !options->add_tables.empty() || options->compact;
  if (mutations && !options->serve) {
    std::fprintf(stderr,
                 "--delete-tables/--add-tables/--compact require --serve\n");
    return false;
  }
  if (mutations && !options->router_endpoints.empty()) {
    // The router view is read-only: removals happen shard-side, so a
    // routed lake cannot be mutated from this process.
    std::fprintf(stderr,
                 "--delete-tables/--add-tables/--compact cannot be used "
                 "with --router (shards own their tombstones)\n");
    return false;
  }
  if (!options->load_tuple_index_path.empty()) {
    if (!options->serve || !options->router_endpoints.empty()) {
      std::fprintf(stderr,
                   "--load-tuple-index requires --serve without --router\n");
      return false;
    }
  }
  if (!options->save_tuple_index_path.empty()) {
    if (!options->save_index_path.empty() ||
        !options->load_index_path.empty()) {
      std::fprintf(stderr,
                   "--save-tuple-index is exclusive with "
                   "--save-index/--load-index\n");
      return false;
    }
    if (options->serve && !options->router_endpoints.empty()) {
      std::fprintf(stderr, "--save-tuple-index cannot snapshot a --router\n");
      return false;
    }
    if (options->engine != "starmie") {
      std::fprintf(stderr, "--save-tuple-index needs the starmie engine\n");
      return false;
    }
  }
  if (!options->save_index_path.empty() && !options->load_index_path.empty()) {
    std::fprintf(stderr, "--save-index and --load-index are exclusive\n");
    return false;
  }
  if ((!options->save_index_path.empty() ||
       !options->load_index_path.empty()) &&
      options->engine == "d3l") {
    std::fprintf(stderr, "the d3l engine does not support index snapshots\n");
    return false;
  }
  // --query is optional only for a build-and-save invocation.
  bool build_only = (!options->save_index_path.empty() ||
                     !options->save_tuple_index_path.empty()) &&
                    options->query_path.empty();
  return !options->lake_dir.empty() &&
         (build_only || !options->query_path.empty()) && options->k > 0;
}

/// The tuple-index configuration shared by --serve, --save-tuple-index, and
/// the shard servers that load the saved artifact: every entry point must
/// agree on these knobs or bit-parity across processes is off the table.
/// The cascade knobs shared by the pipeline and --serve entry points.
search::cascade::CascadeConfig MakeCascadeConfig(const CliOptions& options) {
  search::cascade::CascadeConfig config;
  config.enabled = options.cascade;
  config.prefilter = options.cascade_prefilter;
  config.prescreen = options.cascade_prescreen;
  return config;
}

search::TupleSearchConfig MakeTupleConfig(const CliOptions& options) {
  search::TupleSearchConfig config;
  config.index_type = options.index;
  if (options.shards > 0) {
    config.index_type =
        "sharded:" + options.index + ":" + std::to_string(options.shards);
  }
  config.index_options.hnsw_m = options.hnsw_m;
  config.index_options.hnsw_ef_search = options.hnsw_ef;
  config.cascade = MakeCascadeConfig(options);
  return config;
}

std::shared_ptr<embed::PretrainedTupleEncoder> MakeTupleEncoder() {
  embed::EmbedderConfig encoder_config;
  encoder_config.dim = 64;
  return std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(
          embed::MakeEmbedder(embed::ModelFamily::kRoberta, encoder_config)));
}

/// Writes hits as "table-name,row,<hex double bits>" lines — the similarity
/// is dumped as its exact bit pattern, so `cmp` between two runs proves
/// bit-identical results with no formatting round-trip in the way. Hits are
/// keyed by table NAME, not index, so a dump taken before compaction (or
/// against a larger lake directory) compares equal to one taken after the
/// tombstoned tables are physically gone.
bool DumpHitsFile(const std::string& path, const search::TupleSearch& search,
                  const std::vector<search::TupleHit>& hits) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  for (const search::TupleHit& hit : hits) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(hit.similarity));
    std::memcpy(&bits, &hit.similarity, sizeof(bits));
    std::fprintf(f, "%s,%zu,%016llx\n",
                 search.table_name(hit.ref.table_index).c_str(),
                 hit.ref.row_index, static_cast<unsigned long long>(bits));
  }
  return std::fclose(f) == 0;
}

/// Applies --delete-tables / --add-tables / --compact to the live search
/// object, printing a one-line summary per mutation. Delete names accept
/// either the canonical table name ("b") or the lake filename ("b.csv").
/// Returns false (after printing the error) if any mutation fails.
bool ApplyLakeMutations(const CliOptions& options,
                        search::TupleSearch* search) {
  for (const std::string& requested : SplitCommas(options.delete_tables)) {
    std::string name = requested;
    const size_t dot = name.find_last_of('.');
    if (dot != std::string::npos && name.substr(dot) == ".csv") {
      name = name.substr(0, dot);
    }
    const size_t before = search->lake_live_vectors();
    Status removed = search->RemoveTable(name);
    if (!removed.ok()) {
      std::fprintf(stderr, "cannot delete table %s: %s\n", requested.c_str(),
                   removed.ToString().c_str());
      return false;
    }
    std::printf("deleted table %s (%zu tuples tombstoned)\n", name.c_str(),
                before - search->lake_live_vectors());
  }
  for (const std::string& path : SplitCommas(options.add_tables)) {
    auto loaded = table::ReadCsvFile(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot add table %s: %s\n", path.c_str(),
                   loaded.status().ToString().c_str());
      return false;
    }
    table::Table t = std::move(loaded).value();
    t.DropAllNullColumns();
    if (t.num_rows() == 0 || t.num_columns() == 0) {
      std::fprintf(stderr, "cannot add table %s: no usable rows\n",
                   path.c_str());
      return false;
    }
    Status added = search->AddTable(t);
    if (!added.ok()) {
      std::fprintf(stderr, "cannot add table %s: %s\n", path.c_str(),
                   added.ToString().c_str());
      return false;
    }
    std::printf("added table %s (%zu tuples)\n", t.name().c_str(),
                t.num_rows());
  }
  if (options.compact) {
    const size_t dropped = search->lake_tombstoned_vectors();
    Status compacted = search->CompactIndex();
    if (!compacted.ok()) {
      std::fprintf(stderr, "cannot compact index: %s\n",
                   compacted.ToString().c_str());
      return false;
    }
    std::printf("compacted index: %zu tombstoned tuples dropped\n", dropped);
  }
  if (!options.delete_tables.empty() || !options.add_tables.empty()) {
    std::printf(
        "lake after mutations: %zu live / %zu tombstoned tuples, "
        "%llu mutations (lake-state hash %016llx)\n",
        search->lake_live_vectors(), search->lake_tombstoned_vectors(),
        static_cast<unsigned long long>(search->lake_mutations()),
        static_cast<unsigned long long>(search->LakeStateHash()));
  }
  return true;
}

/// --save-tuple-index: builds the tuple-level index over the lake (the same
/// one --serve would build) and persists it with io::SaveIndex so shard
/// servers (dust_shardd) can load it. Returns the process exit code.
int RunSaveTupleIndex(const CliOptions& options,
                      const std::vector<const table::Table*>& lake) {
  search::TupleSearch search(MakeTupleEncoder(), MakeTupleConfig(options));
  Stopwatch watch;
  search.IndexLake(lake);
  std::printf("indexed %zu lake tuples in %.3fs\n", search.num_indexed(),
              watch.Seconds());
  Status saved =
      io::SaveIndex(*search.lake_index(), options.save_tuple_index_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "cannot save tuple index: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote tuple index %s (%s)\n",
              options.save_tuple_index_path.c_str(),
              search.lake_index()->name().c_str());
  return 0;
}

/// --serve: builds a tuple-level index over the lake (or, with --router,
/// connects to remote dust_shardd shards), starts the async QueryServer,
/// and drives it with a synthetic closed-loop client (each of --clients
/// threads keeps exactly one request in flight until --requests queries
/// have been served). Every response is verified bit-identical to the
/// sequential SearchTuples baseline. Returns the process exit code.
int RunServeMode(const CliOptions& options,
                 const std::vector<const table::Table*>& lake,
                 const table::Table& query) {
  search::TupleSearch search(MakeTupleEncoder(), MakeTupleConfig(options));
  net::RouterIndex* router = nullptr;  // owned by `search` once installed
  Stopwatch index_watch;
  if (!options.router_endpoints.empty()) {
    net::RouterOptions router_options;
    router_options.deadline_ms = static_cast<int>(options.deadline_ms);
    router_options.max_attempts = 1 + static_cast<int>(options.rpc_retries);
    Result<std::unique_ptr<net::RouterIndex>> connected =
        net::RouterIndex::Connect(SplitCommas(options.router_endpoints),
                                  router_options);
    if (!connected.ok()) {
      std::fprintf(stderr, "cannot connect router: %s\n",
                   connected.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<net::RouterIndex> owned = std::move(connected).value();
    router = owned.get();
    Status used = search.UseIndex(std::move(owned), lake);
    if (!used.ok()) {
      std::fprintf(stderr, "router does not match the lake: %s\n",
                   used.ToString().c_str());
      return 1;
    }
    std::printf("router over %zu shards (%zu tuples) ready in %.3fs\n",
                router->num_shards(), search.num_indexed(),
                index_watch.Seconds());
  } else if (!options.load_tuple_index_path.empty()) {
    Result<std::unique_ptr<index::VectorIndex>> loaded =
        io::LoadIndex(options.load_tuple_index_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load tuple index: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    Status used = search.UseIndex(std::move(loaded).value(), lake);
    if (!used.ok()) {
      std::fprintf(stderr, "tuple index does not match the lake: %s\n",
                   used.ToString().c_str());
      return 1;
    }
    std::printf("loaded tuple index %s (%zu tuples) in %.3fs\n",
                options.load_tuple_index_path.c_str(), search.num_indexed(),
                index_watch.Seconds());
  } else {
    search.IndexLake(lake);
    std::printf("indexed %zu lake tuples in %.3fs\n", search.num_indexed(),
                index_watch.Seconds());
  }

  // Lake mutations happen before any query is in flight (mutations are not
  // synchronized against concurrent searches); the baseline below — and
  // everything the server serves — sees only the post-mutation lake.
  if (router == nullptr && !ApplyLakeMutations(options, &search)) return 1;
  if (!options.save_tuple_index_path.empty()) {
    Status saved =
        io::SaveIndex(*search.lake_index(), options.save_tuple_index_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "cannot save tuple index: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("wrote tuple index %s (%s)\n",
                options.save_tuple_index_path.c_str(),
                search.lake_index()->name().c_str());
  }

  // Sequential baseline: the parity oracle every served result must match.
  const std::vector<search::TupleHit> baseline =
      search.SearchTuples(query, options.k);
  if (!options.dump_hits_path.empty()) {
    if (!DumpHitsFile(options.dump_hits_path, search, baseline)) {
      std::fprintf(stderr, "cannot write %s\n",
                   options.dump_hits_path.c_str());
      return 1;
    }
    std::printf("wrote %zu baseline hits to %s\n", baseline.size(),
                options.dump_hits_path.c_str());
  }

  serve::QueryServerOptions server_options;
  server_options.threads = options.threads;
  server_options.queue_capacity = options.queue_capacity;
  server_options.max_batch = options.batch_max;
  server_options.batch_window_us = options.batch_window_us;
  server_options.cache_entries = options.cache_entries;
  server_options.cache_bytes = options.cache_bytes;
  server_options.trace_sample_rate = options.trace_sample_rate;
  server_options.slow_query_ms = options.slow_query_ms;
  serve::QueryServer server(&search, server_options);
  // Readiness gate: a deploy script would poll this before routing traffic.
  if (server.readiness() != serve::Readiness::kReady) {
    std::fprintf(stderr, "server failed to become ready\n");
    return 1;
  }
  std::printf("server %s (cache %zu entries / %zu bytes)\n",
              serve::ReadinessName(server.readiness()), options.cache_entries,
              options.cache_bytes);

  std::atomic<size_t> next{0};
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  Stopwatch serve_watch;
  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  for (size_t c = 0; c < options.clients; ++c) {
    clients.emplace_back([&] {
      while (next.fetch_add(1) < options.requests) {
        serve::QueryServer::TupleResult result =
            server.Submit(query, options.k).get();
        if (!result.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const std::vector<search::TupleHit>& hits = result.value();
        bool same = hits.size() == baseline.size();
        for (size_t i = 0; same && i < hits.size(); ++i) {
          same = hits[i].ref == baseline[i].ref &&
                 hits[i].similarity == baseline[i].similarity;
        }
        if (!same) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed = serve_watch.Seconds();
  server.Shutdown();
  const serve::QueryServerStats stats = server.stats();

  // Answered = dispatched through a batch + resolved from the cache.
  const uint64_t answered = stats.served + stats.cache_hits;
  std::printf(
      "answered %llu requests in %.3fs: %.0f QPS  "
      "p50 %.2fms  p95 %.2fms  p99 %.2fms  (%llu batched, %llu cached)\n",
      static_cast<unsigned long long>(answered), elapsed,
      elapsed > 0.0 ? static_cast<double>(answered) / elapsed : 0.0,
      stats.p50_ms, stats.p95_ms, stats.p99_ms,
      static_cast<unsigned long long>(stats.served),
      static_cast<unsigned long long>(stats.cache_hits));
  std::printf(
      "batches %llu (mean size %.1f)  max queue depth %zu  "
      "threads %zu  window %zuus  clients %zu\n",
      static_cast<unsigned long long>(stats.batches), stats.mean_batch_size,
      stats.max_queue_depth, options.threads, options.batch_window_us,
      options.clients);
  if (options.cache_entries > 0) {
    std::printf(
        "cache: %llu hits / %llu misses (rate %.2f)  %zu entries  "
        "%zu bytes  %llu evictions  %llu invalidations\n",
        static_cast<unsigned long long>(stats.cache_hits),
        static_cast<unsigned long long>(stats.cache_misses),
        stats.cache_hit_rate, stats.cache_entries, stats.cache_bytes,
        static_cast<unsigned long long>(stats.cache_evictions),
        static_cast<unsigned long long>(stats.cache_invalidations));
  }
  std::printf("server %s\n", serve::ReadinessName(server.readiness()));
  if (options.cascade) {
    std::printf("cascade stages:\n%s", search.CascadeStatsSummary().c_str());
  }
  std::printf("\nmetrics:\n%s", server.metrics().RenderTable().c_str());
  bool partial = false;
  if (router != nullptr) {
    const net::RouterStats rstats = router->stats();
    partial = rstats.partial_results > 0;
    std::printf(
        "router: rpcs=%llu failures=%llu retries=%llu "
        "partial_results=%llu partial=%s\n",
        static_cast<unsigned long long>(rstats.rpcs),
        static_cast<unsigned long long>(rstats.rpc_failures),
        static_cast<unsigned long long>(rstats.retries),
        static_cast<unsigned long long>(rstats.partial_results),
        partial ? "true" : "false");
  }
  if (!options.metrics_out_path.empty()) {
    // Machine-readable exposition for scrapers/CI: name{label} value lines.
    // With --router, every reachable shard's metrics follow, each series
    // labeled shard="host:port".
    std::FILE* f = std::fopen(options.metrics_out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n",
                   options.metrics_out_path.c_str());
      return 1;
    }
    std::string text = server.metrics().RenderText();
    if (router != nullptr) text += router->FederatedMetricsText();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("wrote metrics to %s\n", options.metrics_out_path.c_str());
  }
  if (!options.trace_out_path.empty()) {
    const obs::SpanCollector& collector = obs::SpanCollector::Global();
    const std::vector<obs::SpanRecord> spans = collector.Snapshot();
    Status wrote =
        obs::WriteChromeTrace(options.trace_out_path, spans, "dust_cli");
    if (!wrote.ok()) {
      std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu spans to %s (%llu recorded, %llu dropped)\n",
                spans.size(), options.trace_out_path.c_str(),
                static_cast<unsigned long long>(collector.recorded_total()),
                static_cast<unsigned long long>(collector.dropped_total()));
    // Show one end-to-end request so the trace is inspectable without a
    // viewer; the last root span is the most representative (warmed up).
    for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
      if (it->name != "serve") continue;
      std::printf("sample trace:\n%s",
                  obs::RenderSpanTree(it->trace_id,
                                      collector.CollectTrace(it->trace_id))
                      .c_str());
      break;
    }
  }
  if (failures.load() > 0 || mismatches.load() > 0) {
    // With --allow-partial, a degraded run (a shard died mid-run, the
    // router kept answering from the survivors) is an expected outcome, not
    // a failure — but only when the router actually reports degradation;
    // mismatches with every shard healthy are real bugs either way.
    if (options.allow_partial && partial) {
      std::printf(
          "serve degraded: %zu errors, %zu parity mismatches tolerated "
          "(--allow-partial, router reported partial results)\n",
          failures.load(), mismatches.load());
      return 0;
    }
    std::fprintf(stderr, "serve FAILED: %zu errors, %zu parity mismatches\n",
                 failures.load(), mismatches.load());
    return 1;
  }
  std::printf("parity OK: all responses bit-identical to sequential search\n");
  if (!options.delete_tables.empty()) {
    // The mutable-lake acceptance check: every served response matched the
    // baseline bit for bit (above), so it suffices that the baseline
    // itself never touched a tombstoned table.
    for (const search::TupleHit& hit : baseline) {
      if (search.table_removed(hit.ref.table_index)) {
        std::fprintf(stderr,
                     "mutation check FAILED: hit from deleted table %s\n",
                     search.table_name(hit.ref.table_index).c_str());
        return 1;
      }
    }
    std::printf("mutation check OK: no hits from deleted tables\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    Usage();
    return 2;
  }

  // Load the lake.
  std::vector<table::Table> lake_storage;
  std::vector<std::string> lake_names;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options.lake_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".csv") continue;
    auto loaded = table::ReadCsvFile(entry.path().string());
    if (!loaded.ok()) {
      std::fprintf(stderr, "skipping %s: %s\n", entry.path().c_str(),
                   loaded.status().ToString().c_str());
      continue;
    }
    table::Table t = std::move(loaded).value();
    t.DropAllNullColumns();
    if (t.num_rows() == 0 || t.num_columns() == 0) continue;
    lake_names.push_back(entry.path().filename().string());
    lake_storage.push_back(std::move(t));
  }
  if (ec) {
    std::fprintf(stderr, "cannot read lake directory %s: %s\n",
                 options.lake_dir.c_str(), ec.message().c_str());
    return 1;
  }
  if (lake_storage.empty()) {
    std::fprintf(stderr, "no usable CSV tables in %s\n",
                 options.lake_dir.c_str());
    return 1;
  }

  table::Table query("query");
  if (!options.query_path.empty()) {
    auto query_loaded = table::ReadCsvFile(options.query_path);
    if (!query_loaded.ok()) {
      std::fprintf(stderr, "cannot load query: %s\n",
                   query_loaded.status().ToString().c_str());
      return 1;
    }
    query = std::move(query_loaded).value();
    query.DropAllNullColumns();
    std::printf("lake: %zu tables; query: %zu rows x %zu columns\n",
                lake_storage.size(), query.num_rows(), query.num_columns());
  } else {
    std::printf("lake: %zu tables (build-only invocation)\n",
                lake_storage.size());
  }

  if (options.serve || !options.save_tuple_index_path.empty()) {
    std::vector<const table::Table*> lake;
    lake.reserve(lake_storage.size());
    for (const table::Table& t : lake_storage) lake.push_back(&t);
    // --serve with --save-tuple-index persists the post-mutation index as
    // part of the serving run; only the build-only invocation goes through
    // RunSaveTupleIndex.
    if (!options.serve) {
      return RunSaveTupleIndex(options, lake);
    }
    return RunServeMode(options, lake, query);
  }

  // Pipeline.
  core::PipelineConfig config;
  config.engine = options.engine;
  config.search_index = options.index;
  config.search_shortlist = options.shortlist;
  config.search_shards = options.shards;
  config.hnsw_m = options.hnsw_m;
  config.hnsw_ef_search = options.hnsw_ef;
  if (options.engine == "d3l") {
    // Only the starmie engine builds a shortlist index.
    if (options.index != "flat" || options.shortlist > 0 ||
        options.shards > 0 || options.hnsw_m > 0 || options.hnsw_ef > 0) {
      std::fprintf(stderr,
                   "--index/--shortlist/--shards/--hnsw-* are ignored by the "
                   "%s engine\n",
                   options.engine.c_str());
    }
  } else {
    const std::string index_spec = config.EffectiveSearchIndex();
    if (index_spec != "flat" && options.shortlist == 0) {
      // The pipeline resolves this contradictory combination itself (a
      // shortlist of 0 would disable the index); surface the default here.
      std::fprintf(stderr,
                   "--index %s without --shortlist: the pipeline defaults "
                   "the shortlist to %zu\n",
                   index_spec.c_str(),
                   core::PipelineConfig::DefaultShortlist(options.tables));
    }
    if (options.hnsw_m > 0 || options.hnsw_ef > 0) {
      // Resolve the spec down to the concrete type the knobs apply to, so
      // "--index sharded:hnsw:4 --hnsw-ef 64" does not warn.
      shard::ShardedIndexConfig sharded;
      std::string concrete = index_spec;
      if (shard::ParseShardedSpec(index_spec, &sharded)) {
        concrete = sharded.child_type;
      }
      if (concrete != "hnsw") {
        std::fprintf(stderr, "--hnsw-m/--hnsw-ef are ignored by --index %s\n",
                     concrete.c_str());
      }
    }
  }
  config.cascade = MakeCascadeConfig(options);
  config.num_tables = options.tables;
  // The diversification tuple distance delta(.) (Sec. 3.1). The search
  // phase's shortlist index and table scoring are cosine by construction
  // (Starmie-style embedding similarity), matching the paper.
  config.metric = options.metric;
  config.diversifier.p = options.p;
  config.diversifier.prune_s = options.s;
  embed::EmbedderConfig encoder_config;
  encoder_config.dim = 64;
  auto encoder = std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(
          embed::MakeEmbedder(embed::ModelFamily::kRoberta, encoder_config)));
  core::DustPipeline pipeline(config, encoder);
  std::vector<const table::Table*> lake;
  for (const table::Table& t : lake_storage) lake.push_back(&t);

  Stopwatch index_watch;
  if (!options.load_index_path.empty()) {
    // Online serving: restore the offline-built embeddings + index instead
    // of re-embedding the lake. The CSVs above are still needed for
    // alignment and tuple materialization.
    Status loaded =
        core::LoadPipelineSnapshot(&pipeline, options.load_index_path, lake);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load index snapshot: %s\n",
                   loaded.ToString().c_str());
      return 1;
    }
    std::printf("loaded index snapshot %s in %.3fs (lake not re-embedded)\n",
                options.load_index_path.c_str(), index_watch.Seconds());
  } else {
    pipeline.IndexLake(lake);
    std::printf("indexed lake in %.3fs\n", index_watch.Seconds());
  }
  if (!options.save_index_path.empty()) {
    Status saved =
        core::SavePipelineSnapshot(pipeline, options.save_index_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "cannot save index snapshot: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("wrote index snapshot %s\n", options.save_index_path.c_str());
    if (options.query_path.empty()) return 0;  // build-only invocation
  }

  auto result = pipeline.Run(query, options.k);
  if (!result.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const core::PipelineResult& r = result.value();

  std::printf("\nretrieved unionable tables:\n");
  for (const search::TableHit& hit : r.tables) {
    std::printf("  %-40s score %.3f\n", lake_names[hit.table_index].c_str(),
                hit.score);
  }
  std::printf("\n%zu diverse unionable tuples (first 10 shown):\n",
              r.output.num_rows());
  for (size_t j = 0; j < r.output.num_columns(); ++j) {
    std::printf("%-20s", r.output.column(j).name.c_str());
  }
  std::printf("\n");
  for (size_t row = 0; row < std::min<size_t>(10, r.output.num_rows()); ++row) {
    for (size_t j = 0; j < r.output.num_columns(); ++j) {
      std::printf("%-20s", r.output.at(row, j).ToDisplay().c_str());
    }
    std::printf("   <- %s\n",
                lake_names[r.provenance[row].table_index].c_str());
  }
  std::printf(
      "\ntimings: search %.3fs  align %.3fs  embed %.3fs  diversify %.3fs\n",
      r.timings.search_seconds, r.timings.align_seconds,
      r.timings.embed_seconds, r.timings.diversify_seconds);
  if (options.cascade) {
    std::printf("cascade stages:\n%s", pipeline.CascadeStatsSummary().c_str());
  }

  if (!options.out_path.empty()) {
    Status written = table::WriteCsvFile(r.output, options.out_path);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", options.out_path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", options.out_path.c_str());
  }
  return 0;
}
