// Quickstart: the Fig. 1 scenario end to end in ~60 lines.
//
// Builds the paper's running example — a parks query table, two unionable
// park tables (one a near-copy, one with novel parks) and a non-unionable
// paintings table — and runs the full DUST pipeline (Algorithm 1) to get
// diverse unionable tuples.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/pipeline.h"
#include "embed/tuple_encoder.h"

using namespace dust;
using table::Table;
using table::Value;

namespace {

void Print(const Table& t, const char* title) {
  std::printf("\n%s (%s)\n", title, t.name().c_str());
  for (size_t j = 0; j < t.num_columns(); ++j) {
    std::printf("%-18s", t.column(j).name.c_str());
  }
  std::printf("\n");
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t j = 0; j < t.num_columns(); ++j) {
      std::printf("%-18s", t.at(r, j).ToDisplay().c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // Query Table (a): parks the analyst already has.
  Table query("query_parks");
  query.AddColumn("Park Name");
  query.AddColumn("Supervisor");
  query.AddColumn("Country");
  DUST_CHECK(query.AddRow({Value("River Park"), Value("Vera Onate"),
                           Value("USA")}).ok());
  DUST_CHECK(query.AddRow({Value("West Lawn Park"), Value("Paul Veliotis"),
                           Value("USA")}).ok());
  DUST_CHECK(query.AddRow({Value("Hyde Park"), Value("Jenny Rishi"),
                           Value("UK")}).ok());

  // Data Lake Table (b): mostly a copy of the query plus one new tuple.
  Table copy_table("lake_parks_copy");
  copy_table.AddColumn("Park Name");
  copy_table.AddColumn("Supervisor");
  copy_table.AddColumn("Country");
  DUST_CHECK(copy_table.AddRow({Value("River Park"), Value("Vera Onate"),
                                Value("USA")}).ok());
  DUST_CHECK(copy_table.AddRow({Value("West Lawn Park"),
                                Value("Paul Veliotis"), Value("USA")}).ok());
  DUST_CHECK(copy_table.AddRow({Value("Hyde Park"), Value("Jenny Rishi"),
                                Value("UK")}).ok());
  DUST_CHECK(copy_table.AddRow({Value("Cedar Park"), Value("Maria Silva"),
                                Value("Canada")}).ok());

  // Data Lake Table (d): unionable, but with novel parks and extra columns.
  Table novel_table("lake_parks_novel");
  novel_table.AddColumn("Name of Park");
  novel_table.AddColumn("Park City");
  novel_table.AddColumn("Park Country");
  novel_table.AddColumn("Park Phone");
  novel_table.AddColumn("Supervised By");
  DUST_CHECK(novel_table.AddRow({Value("Chippewa Park"), Value("Brandon, MN"),
                                 Value("USA"), Value("773 731-0380"),
                                 Value("Tim Erickson")}).ok());
  DUST_CHECK(novel_table.AddRow({Value("Lawler Park"), Value("Chicago, IL"),
                                 Value("USA"), Value("773 284-7328"),
                                 Value("Enrique Garcia")}).ok());
  DUST_CHECK(novel_table.AddRow({Value("Granite Park"), Value("Denver, CO"),
                                 Value("USA"), Value("303 555-0182"),
                                 Value("Aisha Hassan")}).ok());

  // Data Lake Table (c): paintings — not unionable with the query.
  Table paintings("lake_paintings");
  paintings.AddColumn("Painting");
  paintings.AddColumn("Medium");
  paintings.AddColumn("Country");
  DUST_CHECK(paintings.AddRow({Value("Northern Lake"), Value("Oil on canvas"),
                               Value("Canada")}).ok());
  DUST_CHECK(paintings.AddRow({Value("Memory Landscape 2"),
                               Value("Mixed media"), Value("USA")}).ok());

  Print(query, "Query Table");

  // Run DUST: search -> align -> embed -> diversify (Algorithm 1).
  core::PipelineConfig config;
  config.num_tables = 2;
  embed::EmbedderConfig encoder_config;
  encoder_config.dim = 48;
  auto encoder = std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(
          embed::MakeEmbedder(embed::ModelFamily::kRoberta, encoder_config)));
  core::DustPipeline pipeline(config, encoder);
  pipeline.IndexLake({&copy_table, &novel_table, &paintings});

  auto result = pipeline.Run(query, 3);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nRetrieved unionable tables:\n");
  for (const search::TableHit& hit : result.value().tables) {
    std::printf("  score %.3f  table %zu\n", hit.score, hit.table_index);
  }
  Print(result.value().output, "DUST output: 3 diverse unionable tuples");
  std::printf(
      "\nNote how the output favours novel parks (Chippewa, Lawler, Granite)\n"
      "over re-retrieving the query's own tuples from the near-copy table.\n");
  return 0;
}
