// Fine-tuning pipeline (Sec. 4): build the pair benchmark, train the DUST
// (RoBERTa) tuple model with the cosine embedding loss + early stopping,
// select the classification threshold on validation, report test accuracy,
// and save/reload the model.
//
//   ./examples/finetune_pipeline
#include <cstdio>

#include "datagen/finetune_pairs.h"
#include "datagen/tus_generator.h"
#include "nn/trainer.h"
#include "util/stopwatch.h"

using namespace dust;

int main() {
  // 1. Benchmark: TUS-style lake; balanced unionability pairs, 70:15:15.
  datagen::TusConfig tus;
  tus.num_queries = 8;
  tus.unionable_per_query = 6;
  tus.base_rows = 100;
  datagen::Benchmark benchmark = datagen::GenerateTus(tus);

  datagen::FinetunePairsConfig pairs_config;
  pairs_config.total_pairs = 3000;
  nn::PairDataset pairs = datagen::BuildFinetunePairs(benchmark, pairs_config);
  std::printf("pairs: train %zu, validation %zu, test %zu\n",
              pairs.train.size(), pairs.validation.size(), pairs.test.size());

  // 2. Model: frozen featurization -> dropout -> linear -> linear.
  nn::DustModelConfig model_config;
  model_config.family = embed::ModelFamily::kRoberta;
  model_config.feature_dim = 2048;
  model_config.hidden_dim = 64;
  model_config.embedding_dim = 64;
  nn::DustModel model(model_config);

  // 3. Train with Adam + early stopping (patience 10, Sec. 6.3.3).
  nn::TrainerConfig trainer;
  trainer.max_epochs = 40;
  trainer.patience = 10;
  trainer.verbose = false;
  Stopwatch watch;
  nn::TrainReport report =
      nn::TrainDustModel(&model, pairs.train, pairs.validation, trainer);
  std::printf("trained %zu epochs in %.1fs (early stop: %s), best val loss "
              "%.4f\n",
              report.epochs_run, watch.Seconds(),
              report.early_stopped ? "yes" : "no",
              report.best_validation_loss);

  // 4. Threshold on validation; accuracy on test (Sec. 6.3.1).
  float threshold = nn::SelectThreshold(model, pairs.validation);
  float accuracy = nn::PairAccuracy(model, pairs.test, threshold);
  std::printf("validation-selected cosine-distance threshold: %.2f\n",
              threshold);
  std::printf("test accuracy: %.3f\n", accuracy);

  // 5. Save / reload.
  std::string path = "/tmp/dust_roberta.bin";
  DUST_CHECK(model.SaveToFile(path).ok());
  nn::DustModel reloaded(model_config);
  DUST_CHECK(reloaded.LoadFromFile(path).ok());
  float reloaded_accuracy = nn::PairAccuracy(reloaded, pairs.test, threshold);
  std::printf("reloaded model accuracy: %.3f (saved to %s)\n",
              reloaded_accuracy, path.c_str());
  return 0;
}
