// IMDB discovery (Sec. 6.6): run the case-study lake through the pipeline
// and report how many new titles / directors / locations k diverse tuples
// add, compared against naively unioning the top similar tables.
//
//   ./examples/imdb_discovery
#include <cstdio>
#include <unordered_set>

#include "core/pipeline.h"
#include "datagen/imdb_generator.h"
#include "embed/tuple_encoder.h"
#include "search/embedding_search.h"
#include "table/union.h"

using namespace dust;

namespace {

size_t NovelCount(const table::Table& result, const table::Table& query,
                  size_t col) {
  std::unordered_set<std::string> base;
  for (const table::Value& v : query.column(col).values) {
    if (!v.is_null()) base.insert(v.text());
  }
  std::unordered_set<std::string> novel;
  for (const table::Value& v : result.column(col).values) {
    if (!v.is_null() && !base.count(v.text())) novel.insert(v.text());
  }
  return novel.size();
}

}  // namespace

int main() {
  datagen::ImdbConfig config;
  datagen::Benchmark benchmark = datagen::GenerateImdb(config);
  const table::Table& query = benchmark.queries[0].data;
  std::vector<const table::Table*> lake;
  for (const auto& t : benchmark.lake) lake.push_back(&t.data);
  std::printf("IMDB case study: query %zu movies x %zu columns, lake %zu "
              "tables\n", query.num_rows(), query.num_columns(), lake.size());

  embed::EmbedderConfig encoder_config;
  encoder_config.dim = 48;
  auto encoder = std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(
          embed::MakeEmbedder(embed::ModelFamily::kRoberta, encoder_config)));

  const size_t k = 40;

  // Baseline: union the top similar tables, LIMIT k.
  search::EmbeddingUnionSearch starmie;
  starmie.IndexLake(lake);
  auto hits = starmie.SearchTables(query, lake.size());
  std::vector<const table::Table*> top;
  size_t rows = 0;
  for (const search::TableHit& hit : hits) {
    top.push_back(lake[hit.table_index]);
    rows += lake[hit.table_index]->num_rows();
    if (rows >= k) break;
  }
  table::Table baseline = std::move(table::SetUnion(top, "baseline")).value();
  if (baseline.num_rows() > k) {
    std::vector<size_t> first(k);
    for (size_t i = 0; i < k; ++i) first[i] = i;
    baseline = baseline.SelectRows(first);
  }

  // DUST pipeline.
  core::PipelineConfig pipeline_config;
  pipeline_config.num_tables = 10;
  core::DustPipeline pipeline(pipeline_config, encoder);
  pipeline.IndexLake(lake);
  auto result = pipeline.Run(query, k);
  DUST_CHECK(result.ok());
  const table::Table& dust = result.value().output;

  std::printf("\n%-22s %-14s %-14s\n", "novel values in", "Starmie-D", "DUST");
  const std::vector<std::pair<const char*, size_t>> columns = {
      {"Title", 0}, {"Director", 1}, {"Filming Location", 4}};
  for (const auto& [label, col] : columns) {
    std::printf("%-22s %-14zu %-14zu\n", label,
                NovelCount(baseline, query, col), NovelCount(dust, query, col));
  }
  std::printf("\nTimings: search %.3fs  align %.3fs  embed %.3fs  "
              "diversify %.3fs\n",
              result.value().timings.search_seconds,
              result.value().timings.align_seconds,
              result.value().timings.embed_seconds,
              result.value().timings.diversify_seconds);
  return 0;
}
