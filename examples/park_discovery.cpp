// Park discovery: "most unionable" vs "most diverse" (Fig. 1 e vs f).
//
// Generates a TUS-style parks data lake with heavy redundancy, then shows
// side by side what a similarity-based tuple search returns (near-copies of
// the query) versus what DUST returns (novel parks).
//
//   ./examples/park_discovery
#include <cstdio>
#include <unordered_set>

#include "core/pipeline.h"
#include "datagen/tus_generator.h"
#include "embed/tuple_encoder.h"
#include "search/tuple_search.h"
#include "table/union.h"

using namespace dust;

namespace {

std::shared_ptr<embed::TupleEncoder> MakeEncoder() {
  embed::EmbedderConfig config;
  config.dim = 48;
  return std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(
          embed::MakeEmbedder(embed::ModelFamily::kRoberta, config)));
}

// Fraction of result rows whose entity (first column) already appears in
// the query table.
double RedundantFraction(const table::Table& result,
                         const std::unordered_set<std::string>& query_entities) {
  if (result.num_rows() == 0) return 0.0;
  size_t redundant = 0;
  for (size_t r = 0; r < result.num_rows(); ++r) {
    if (!result.at(r, 0).is_null() &&
        query_entities.count(result.at(r, 0).text())) {
      ++redundant;
    }
  }
  return static_cast<double>(redundant) / result.num_rows();
}

}  // namespace

int main() {
  datagen::TusConfig config;
  config.num_queries = 1;  // parks is the first built-in domain
  config.unionable_per_query = 8;
  config.near_copy_fraction = 0.6;  // a redundant lake
  config.base_rows = 120;
  datagen::Benchmark benchmark = datagen::GenerateTus(config);
  const table::Table& query = benchmark.queries[0].data;

  std::vector<const table::Table*> lake;
  for (const auto& t : benchmark.lake) lake.push_back(&t.data);

  std::unordered_set<std::string> query_entities;
  for (size_t r = 0; r < query.num_rows(); ++r) {
    query_entities.insert(query.at(r, 0).text());
  }
  std::printf("Query: %zu park tuples; lake: %zu tables (%.0f%% near-copies "
              "of the query among unionable ones)\n",
              query.num_rows(), lake.size(), 100 * config.near_copy_fraction);

  auto encoder = MakeEncoder();
  const size_t k = 15;

  // --- Existing work: the k most similar ("most unionable") tuples. ---
  search::TupleSearch similarity(encoder);
  similarity.IndexLake(lake);
  auto hits = similarity.SearchTuples(query, k);
  table::Table most_similar("most_unionable");
  for (size_t j = 0; j < query.num_columns(); ++j) {
    most_similar.AddColumn(query.column(j).name);
  }
  // Assemble rows positionally (the generator keeps the schema order).
  for (const search::TupleHit& hit : hits) {
    const table::Table& src = *lake[hit.ref.table_index];
    std::vector<table::Value> row;
    for (size_t j = 0; j < query.num_columns(); ++j) {
      row.push_back(j < src.num_columns() ? src.at(hit.ref.row_index, j)
                                          : table::Value::Null());
    }
    DUST_CHECK(most_similar.AddRow(row).ok());
  }

  // --- This work: k diverse unionable tuples. ---
  core::PipelineConfig pipeline_config;
  pipeline_config.num_tables = 8;
  core::DustPipeline pipeline(pipeline_config, encoder);
  pipeline.IndexLake(lake);
  auto dust_result = pipeline.Run(query, k);
  DUST_CHECK(dust_result.ok());

  double similar_redundancy = RedundantFraction(most_similar, query_entities);
  double dust_redundancy =
      RedundantFraction(dust_result.value().output, query_entities);

  std::printf("\n%-28s %-12s\n", "Method", "redundant rows");
  std::printf("%-28s %5.0f%%\n", "most unionable (similarity)",
              100 * similar_redundancy);
  std::printf("%-28s %5.0f%%\n", "most diverse (DUST)",
              100 * dust_redundancy);

  std::printf("\nDUST's picks (first 5):\n");
  const table::Table& out = dust_result.value().output;
  for (size_t r = 0; r < std::min<size_t>(5, out.num_rows()); ++r) {
    for (size_t j = 0; j < out.num_columns(); ++j) {
      std::printf("%-22s", out.at(r, j).ToDisplay().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
