// Mythology case study — the Fig. 12 anecdote.
//
// A mythology query table (Myth / Definition / Synonyms / Origin) with a
// redundant lake: Starmie's top-5 returns creatures the analyst already
// has (Minotaur, Chimera, Basilisk...), while DUST surfaces new creatures
// with more varied origins.
//
//   ./examples/mythology_case_study
#include <cstdio>
#include <unordered_set>

#include "core/pipeline.h"
#include "datagen/tus_generator.h"
#include "embed/tuple_encoder.h"
#include "search/tuple_search.h"

using namespace dust;

namespace {

void PrintTuples(const char* title, const std::vector<std::vector<std::string>>& rows) {
  std::printf("\n%s\n", title);
  for (const auto& row : rows) {
    for (const auto& cell : row) std::printf("%-20s", cell.c_str());
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // The mythology domain is built-in (domain index 3); generate a lake
  // with heavy near-copy redundancy around one query.
  datagen::TusConfig config;
  config.num_queries = 4;  // queries 0..3; mythology is query 3
  config.unionable_per_query = 8;
  config.near_copy_fraction = 0.6;
  config.base_rows = 60;
  config.column_keep_min = 1.0;  // keep full schemas: clean alignment
  datagen::Benchmark benchmark = datagen::GenerateTus(config);
  const size_t kMythQuery = 3;
  const table::Table& query = benchmark.queries[kMythQuery].data;

  std::vector<const table::Table*> lake;
  for (const auto& t : benchmark.lake) lake.push_back(&t.data);

  embed::EmbedderConfig encoder_config;
  encoder_config.dim = 48;
  auto encoder = std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(
          embed::MakeEmbedder(embed::ModelFamily::kRoberta, encoder_config)));

  std::vector<std::vector<std::string>> query_rows;
  for (size_t r = 0; r < std::min<size_t>(5, query.num_rows()); ++r) {
    std::vector<std::string> row;
    for (size_t j = 0; j < query.num_columns(); ++j) {
      row.push_back(query.at(r, j).ToDisplay());
    }
    query_rows.push_back(row);
  }
  PrintTuples("Query table (first 5 tuples):", query_rows);

  std::unordered_set<std::string> known;
  for (size_t r = 0; r < query.num_rows(); ++r) {
    known.insert(query.at(r, 0).text());
  }

  const size_t k = 5;
  // Starmie: top-5 most similar lake tuples.
  search::TupleSearch similarity(encoder);
  similarity.IndexLake(lake);
  std::vector<std::vector<std::string>> starmie_rows;
  size_t starmie_known = 0;
  for (const search::TupleHit& hit : similarity.SearchTuples(query, k)) {
    const table::Table& src = *lake[hit.ref.table_index];
    std::vector<std::string> row;
    for (size_t j = 0; j < src.num_columns(); ++j) {
      row.push_back(src.at(hit.ref.row_index, j).ToDisplay());
    }
    if (known.count(src.at(hit.ref.row_index, 0).text())) ++starmie_known;
    starmie_rows.push_back(row);
  }
  PrintTuples("Starmie top-5 (most similar):", starmie_rows);

  // DUST: top-5 diverse tuples.
  core::PipelineConfig pipeline_config;
  pipeline_config.num_tables = 8;
  core::DustPipeline pipeline(pipeline_config, encoder);
  pipeline.IndexLake(lake);
  auto result = pipeline.Run(query, k);
  DUST_CHECK(result.ok());
  std::vector<std::vector<std::string>> dust_rows;
  size_t dust_known = 0;
  const table::Table& out = result.value().output;
  for (size_t r = 0; r < out.num_rows(); ++r) {
    std::vector<std::string> row;
    for (size_t j = 0; j < out.num_columns(); ++j) {
      row.push_back(out.at(r, j).ToDisplay());
    }
    if (!out.at(r, 0).is_null() && known.count(out.at(r, 0).text())) {
      ++dust_known;
    }
    dust_rows.push_back(row);
  }
  PrintTuples("DUST top-5 (most diverse):", dust_rows);

  std::printf(
      "\nAlready-known creatures returned: Starmie %zu/%zu, DUST %zu/%zu\n"
      "(the Fig. 12 anecdote: similarity search re-retrieves the query's\n"
      "own myths; DUST adds new ones).\n",
      starmie_known, k, dust_known, k);
  return 0;
}
