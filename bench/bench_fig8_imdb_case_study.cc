// Fig. 8 — IMDB case study: novel unique values added per column.
//
// D3L and Starmie (bag-)union their top tables until k tuples are gathered
// (SQL LIMIT k); the -D variants set-union (duplicates removed) first. DUST
// returns k diverse tuples. For each k, we count how many values absent
// from the query table each method adds to selected columns.
#include <unordered_set>

#include "bench/bench_util.h"
#include "core/pipeline.h"
#include "datagen/imdb_generator.h"
#include "search/embedding_search.h"
#include "search/overlap_search.h"
#include "table/union.h"

using namespace dust;

namespace {

// Unique non-null values of one column.
std::unordered_set<std::string> ColumnValues(const table::Table& t, int col) {
  std::unordered_set<std::string> values;
  if (col < 0) return values;
  for (const table::Value& v : t.column(static_cast<size_t>(col)).values) {
    if (!v.is_null()) values.insert(v.text());
  }
  return values;
}

// Counts values of column position `col` in `result` that are absent from
// `query`. IMDB variants keep the 13-column schema in order, so positions
// are comparable even though variants rename headers to synonyms.
size_t NovelValues(const table::Table& result, const table::Table& query,
                   int col) {
  std::unordered_set<std::string> base = ColumnValues(query, col);
  std::unordered_set<std::string> found = ColumnValues(result, col);
  size_t novel = 0;
  for (const std::string& v : found) {
    if (!base.count(v)) ++novel;
  }
  return novel;
}

// Unions the ranked tables (bag or set) and applies LIMIT k (Sec. 6.6).
table::Table UnionTopTables(const std::vector<search::TableHit>& hits,
                            const std::vector<const table::Table*>& lake,
                            size_t k, bool deduplicate) {
  std::vector<const table::Table*> chosen;
  size_t rows = 0;
  for (const search::TableHit& hit : hits) {
    chosen.push_back(lake[hit.table_index]);
    rows += lake[hit.table_index]->num_rows();
    if (rows >= k) break;
  }
  auto unioned = deduplicate ? table::SetUnion(chosen, "u")
                             : table::BagUnion(chosen, "u");
  DUST_CHECK(unioned.ok());
  table::Table result = std::move(unioned).value();
  if (result.num_rows() > k) {
    std::vector<size_t> first_k(k);
    for (size_t i = 0; i < k; ++i) first_k[i] = i;
    result = result.SelectRows(first_k);
  }
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 8 reproduction: IMDB case study, novel unique values per column");

  datagen::ImdbConfig config;
  datagen::Benchmark benchmark = datagen::GenerateImdb(config);
  const table::Table& query = benchmark.queries[0].data;
  std::vector<const table::Table*> lake;
  for (const auto& t : benchmark.lake) lake.push_back(&t.data);

  // Rankings from both search engines (the case-study lake is all
  // unionable, so rankings mostly reflect redundancy).
  search::OverlapUnionSearch d3l;
  d3l.IndexLake(lake);
  auto d3l_hits = d3l.SearchTables(query, lake.size());
  search::EmbeddingUnionSearch starmie_search;
  starmie_search.IndexLake(lake);
  auto starmie_hits = starmie_search.SearchTables(query, lake.size());

  core::PipelineConfig pipeline_config;
  pipeline_config.num_tables = 10;
  core::DustPipeline pipeline(pipeline_config, bench::MakeBenchEncoder(48));
  pipeline.IndexLake(lake);

  const std::vector<std::pair<const char*, int>> kColumns = {
      {"Title", 0}, {"Director", 1}, {"Filming Location", 4}};
  for (const auto& [label, column] : kColumns) {
    std::printf("\n--- novel unique values in column \"%s\" ---\n", label);
    bench::PrintRow({"k", "D3L", "D3L-D", "Starmie", "Starmie-D", "DUST"});
    for (size_t k : {10u, 20u, 30u, 40u, 50u}) {
      table::Table d3l_out = UnionTopTables(d3l_hits, lake, k, false);
      table::Table d3l_d_out = UnionTopTables(d3l_hits, lake, k, true);
      table::Table st_out = UnionTopTables(starmie_hits, lake, k, false);
      table::Table st_d_out = UnionTopTables(starmie_hits, lake, k, true);
      auto dust_result = pipeline.Run(query, k);
      DUST_CHECK(dust_result.ok());
      bench::PrintRow(
          {std::to_string(k),
           std::to_string(NovelValues(d3l_out, query, column)),
           std::to_string(NovelValues(d3l_d_out, query, column)),
           std::to_string(NovelValues(st_out, query, column)),
           std::to_string(NovelValues(st_d_out, query, column)),
           std::to_string(NovelValues(dust_result.value().output, query,
                                      column))});
    }
  }

  std::printf(
      "\nPaper shape (Fig. 8): DUST adds the most novel values (~25%% more\n"
      "unique titles than Starmie-D); D3L ~ Starmie; deduplication (-D)\n"
      "helps the baselines only partially.\n");
  return 0;
}
