// Table 3 — DUST against table-search techniques (and an LLM).
//
// SANTOS-style: Starmie tuple search vs DUST (LLM excluded — query tables
// exceed its input token budget, as in the paper). UGEN-style: Starmie vs
// LLM vs DUST. All methods' outputs are embedded with the same encoder and
// scored with Average / Min Diversity; per-query win counts are reported.
#include <map>

#include "bench/bench_util.h"
#include "datagen/santos_generator.h"
#include "datagen/ugen_generator.h"
#include "diversify/dust_diversifier.h"
#include "diversify/metrics.h"
#include "llm/simulated_llm.h"
#include "search/tuple_search.h"

using namespace dust;

namespace {

struct Wins {
  size_t avg = 0;
  size_t min = 0;
};

void RunBenchmark(const std::string& name, const datagen::Benchmark& benchmark,
                  size_t k, bool include_llm) {
  auto encoder = bench::MakeBenchEncoder(48);

  // Starmie baseline: every lake tuple indexed as its own table.
  std::vector<const table::Table*> lake;
  for (const auto& t : benchmark.lake) lake.push_back(&t.data);
  search::TupleSearchConfig search_config;
  search_config.index_type = "ivf";
  search_config.per_query_candidates = 4 * k;
  search::TupleSearch starmie(encoder, search_config);
  starmie.IndexLake(lake);

  llm::LlmConfig llm_config;
  llm_config.max_input_tokens = 1500;
  llm::SimulatedLlm llm(llm_config);

  std::map<std::string, Wins> wins;
  size_t queries_run = 0;
  size_t llm_refusals = 0;

  for (size_t q = 0; q < benchmark.queries.size(); ++q) {
    const table::Table& query = benchmark.queries[q].data;
    bench::EncodedQueryWorkload workload =
        bench::EncodeWorkload(benchmark, q, *encoder);
    if (workload.lake.size() < k) continue;
    ++queries_run;

    std::map<std::string, diversify::DiversityScores> scores;

    // --- Starmie: k most similar tuples. ---
    {
      std::vector<la::Vec> points;
      for (const search::TupleHit& hit : starmie.SearchTuples(query, k)) {
        const table::Table& src = *lake[hit.ref.table_index];
        points.push_back(encoder->EncodeSerialized(
            table::SerializeTableRow(src, hit.ref.row_index)));
      }
      scores["Starmie"] =
          diversify::ScoreDiversity(workload.query, points, la::Metric::kCosine);
    }

    // --- LLM: generated tuples (UGEN only / when under token budget). ---
    if (include_llm) {
      auto generated = llm.GenerateDiverseTuples(query, k);
      if (generated.ok()) {
        std::vector<la::Vec> points =
            encoder->EncodeTableRows(generated.value());
        scores["LLM"] = diversify::ScoreDiversity(workload.query, points,
                                                  la::Metric::kCosine);
      } else {
        ++llm_refusals;
      }
    }

    // --- DUST diversification over the unionable tuples. ---
    {
      diversify::DiversifyInput input;
      input.query = &workload.query;
      input.lake = &workload.lake;
      input.table_of = &workload.table_of;
      diversify::DustDiversifier dust;
      std::vector<size_t> selected = dust.SelectDiverse(input, k);
      std::vector<la::Vec> points;
      for (size_t i : selected) points.push_back(workload.lake[i]);
      scores["DUST"] =
          diversify::ScoreDiversity(workload.query, points, la::Metric::kCosine);
    }

    std::string best_avg;
    std::string best_min;
    double best_avg_score = -1.0;
    double best_min_score = -1.0;
    for (const auto& [label, s] : scores) {
      if (s.average > best_avg_score) {
        best_avg_score = s.average;
        best_avg = label;
      }
      if (s.min > best_min_score) {
        best_min_score = s.min;
        best_min = label;
      }
    }
    ++wins[best_avg].avg;
    ++wins[best_min].min;
  }

  std::printf("\n--- %s (k=%zu, %zu queries) ---\n", name.c_str(), k,
              queries_run);
  bench::PrintRow({"Method", "#Average", "#Min"});
  for (const char* label : {"Starmie", "LLM", "DUST"}) {
    if (!include_llm && std::string(label) == "LLM") continue;
    bench::PrintRow({label, std::to_string(wins[label].avg),
                     std::to_string(wins[label].min)});
  }
  if (include_llm && llm_refusals > 0) {
    std::printf("LLM refused %zu oversized queries (input token limit)\n",
                llm_refusals);
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 3 reproduction: DUST vs table union search techniques");

  {
    datagen::SantosConfig config;
    config.num_queries = 8;
    config.unionable_per_query = 8;
    config.base_rows = 200;
    RunBenchmark("SANTOS", datagen::GenerateSantos(config), /*k=*/60,
                 /*include_llm=*/false);
  }
  {
    datagen::UgenConfig config;
    config.num_queries = 10;
    RunBenchmark("UGEN-V1", datagen::GenerateUgen(config), /*k=*/30,
                 /*include_llm=*/true);
  }

  std::printf(
      "\nPaper shape (Table 3): DUST wins the large majority of queries on\n"
      "both metrics in both benchmarks; the LLM is the runner-up on UGEN\n"
      "(novel at first, then redundant); Starmie's similarity ranking\n"
      "returns near-copies of query tuples. LLM is excluded from SANTOS\n"
      "(query tables exceed its input token limit).\n");
  return 0;
}
