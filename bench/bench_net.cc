// bench_net — router-vs-local overhead of the distributed serving path
// (google-benchmark). The CI bench-smoke job runs BM_Net* with
// --benchmark_out=BENCH_net.json and the serve-slo step jq-asserts that
// both entries exist and that the router's p50 over three loopback shards
// stays under 2x the in-process sharded p50 — the framing/fan-out tax must
// remain a constant factor, not a cliff.
//
//   - BM_NetLocalShardedSearch: the in-process baseline — ShardedIndex
//     scatter-gather on a shared executor, no sockets;
//   - BM_NetRouterSearch: the same vectors behind three loopback shard
//     servers (ShardService over net::Server, exactly the dust_shardd
//     stack), queried through net::RouterIndex.
//
// Both draw the same deterministic query sequence; the workload asserts
// bit-identical hits once at startup, so the benchmark can never compare a
// fast-but-wrong path against the baseline.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "index/vector_index.h"
#include "la/vector_ops.h"
#include "net/router_index.h"
#include "net/server.h"
#include "net/shard_service.h"
#include "serve/executor.h"
#include "shard/sharded_index.h"
#include "util/rng.h"
#include "util/status.h"

using namespace dust;

namespace {

constexpr size_t kDim = 48;
constexpr size_t kShards = 3;
constexpr size_t kVectors = 4096;
constexpr size_t kQueries = 64;
constexpr size_t kK = 10;

std::vector<la::Vec> RandomUnitVectors(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Vec> out;
  for (size_t i = 0; i < n; ++i) {
    la::Vec v(dim);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    la::NormalizeInPlace(&v);
    out.push_back(v);
  }
  return out;
}

/// One loopback shard server, the dust_shardd stack in-process.
struct LoopbackShard {
  std::unique_ptr<net::ShardService> service;
  std::unique_ptr<net::Server> server;
  std::string endpoint;

  LoopbackShard(std::unique_ptr<index::VectorIndex> index,
                std::vector<size_t> global_ids, const std::string& label,
                serve::Executor* executor) {
    service = std::make_unique<net::ShardService>(
        std::move(index), std::move(global_ids), label);
    server = std::make_unique<net::Server>(executor);
    DUST_CHECK(service->RegisterOn(server.get()).ok());
    DUST_CHECK(server->Start("127.0.0.1", 0).ok());
    endpoint = "127.0.0.1:" + std::to_string(server->port());
  }
};

/// Local baseline + the identical lake behind three loopback shard servers
/// + a connected router, built once per process.
struct NetWorkload {
  serve::Executor server_executor{4};
  serve::Executor client_executor{4};
  std::unique_ptr<shard::ShardedIndex> local;
  std::vector<std::unique_ptr<LoopbackShard>> shards;
  std::unique_ptr<net::RouterIndex> router;
  std::vector<la::Vec> queries;

  NetWorkload() {
    const auto vectors = RandomUnitVectors(kVectors, kDim, 1234);
    shard::ShardedIndexConfig config;
    config.child_type = "flat";
    config.num_shards = kShards;
    local = std::make_unique<shard::ShardedIndex>(kDim, la::Metric::kCosine,
                                                  config);
    local->AddAll(vectors);
    local->SetExecutor(&client_executor);
    auto donor = std::make_unique<shard::ShardedIndex>(
        kDim, la::Metric::kCosine, config);
    donor->AddAll(vectors);
    std::vector<std::string> endpoints;
    for (size_t s = 0; s < kShards; ++s) {
      std::vector<size_t> global_ids;
      auto child = donor->TakeShard(s, &global_ids);
      shards.push_back(std::make_unique<LoopbackShard>(
          std::move(child), std::move(global_ids),
          "shard" + std::to_string(s), &server_executor));
      endpoints.push_back(shards.back()->endpoint);
    }
    auto connected = net::RouterIndex::Connect(endpoints);
    DUST_CHECK(connected.ok());
    router = std::move(connected).value();
    router->SetExecutor(&client_executor);
    queries = RandomUnitVectors(kQueries, kDim, 4321);
    // The overhead comparison is only meaningful against identical answers.
    for (size_t q = 0; q < 4; ++q) {
      const auto expect = local->Search(queries[q], kK);
      const auto got = router->Search(queries[q], kK);
      DUST_CHECK(expect.size() == got.size());
      for (size_t i = 0; i < expect.size(); ++i) {
        DUST_CHECK(expect[i].id == got[i].id);
        DUST_CHECK(expect[i].distance == got[i].distance);
      }
    }
  }
};

NetWorkload& Workload() {
  static NetWorkload* workload = new NetWorkload();
  return *workload;
}

/// p50 of per-call latencies into the counter the CI serve-slo gate reads.
void ReportP50(benchmark::State& state, std::vector<double> latencies_ms) {
  if (latencies_ms.empty()) return;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  state.counters["p50_ms"] = latencies_ms[latencies_ms.size() / 2];
}

void BM_NetLocalShardedSearch(benchmark::State& state) {
  NetWorkload& w = Workload();
  std::vector<double> latencies_ms;
  size_t q = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto hits = w.local->Search(w.queries[q++ % kQueries], kK);
    latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count());
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  ReportP50(state, std::move(latencies_ms));
  state.SetLabel("in-process sharded, " + std::to_string(kShards) +
                 " shards");
}
BENCHMARK(BM_NetLocalShardedSearch)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_NetRouterSearch(benchmark::State& state) {
  NetWorkload& w = Workload();
  std::vector<double> latencies_ms;
  size_t q = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto hits = w.router->Search(w.queries[q++ % kQueries], kK);
    latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count());
    benchmark::DoNotOptimize(hits.data());
  }
  const net::RouterStats stats = w.router->stats();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  ReportP50(state, std::move(latencies_ms));
  state.counters["rpc_failures"] = static_cast<double>(stats.rpc_failures);
  state.counters["retries"] = static_cast<double>(stats.retries);
  state.SetLabel("router over " + std::to_string(kShards) +
                 " loopback shards");
}
BENCHMARK(BM_NetRouterSearch)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
