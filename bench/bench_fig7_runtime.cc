// Fig. 7 — diversification runtime scaling.
//  (a) runtime vs number of input unionable tuples s (k = 100);
//  (b) runtime vs number of output tuples k (fixed s).
// GMC is Θ(k·s²) (quadratic curve, grows with k); DUST and CLT are
// dominated by the distance matrix (shallow curve, flat in k).
#include <memory>

#include "bench/bench_util.h"
#include "diversify/clt.h"
#include "diversify/dust_diversifier.h"
#include "diversify/gmc.h"
#include "util/stopwatch.h"

using namespace dust;

namespace {

double TimeOne(diversify::Diversifier* diversifier,
               const std::vector<la::Vec>& query,
               const std::vector<la::Vec>& lake, size_t k) {
  diversify::DiversifyInput input;
  input.query = &query;
  input.lake = &lake;
  Stopwatch watch;
  std::vector<size_t> selected = diversifier->SelectDiverse(input, k);
  (void)selected;
  return watch.Seconds();
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 7 reproduction: diversification runtime scaling");
  const size_t kDim = 48;
  std::vector<la::Vec> query = bench::SyntheticTupleCloud(20, kDim, 4, 11);

  diversify::GmcDiversifier gmc;
  diversify::CltDiversifier clt;
  diversify::DustDiversifierConfig dust_config;
  dust_config.prune_s = 1 << 30;  // pruning off: s is the clustering input
  diversify::DustDiversifier dust(dust_config);

  std::printf("\n(a) runtime vs number of input unionable tuples (k=100)\n");
  bench::PrintRow({"s", "GMC(s)", "CLT(s)", "DUST(s)"});
  for (size_t s : {1000u, 2000u, 3000u, 4000u, 5000u, 6000u}) {
    std::vector<la::Vec> lake = bench::SyntheticTupleCloud(s, kDim, 24, 7);
    double t_gmc = TimeOne(&gmc, query, lake, 100);
    double t_clt = TimeOne(&clt, query, lake, 100);
    double t_dust = TimeOne(&dust, query, lake, 100);
    bench::PrintRow({std::to_string(s), bench::Fmt("%.3f", t_gmc),
                     bench::Fmt("%.3f", t_clt), bench::Fmt("%.3f", t_dust)});
  }

  std::printf("\n(b) runtime vs number of output tuples (s=2500)\n");
  bench::PrintRow({"k", "GMC(s)", "CLT(s)", "DUST(s)"});
  std::vector<la::Vec> lake = bench::SyntheticTupleCloud(2500, kDim, 24, 9);
  for (size_t k : {100u, 200u, 300u, 400u, 500u}) {
    double t_gmc = TimeOne(&gmc, query, lake, k);
    double t_clt = TimeOne(&clt, query, lake, k);
    double t_dust = TimeOne(&dust, query, lake, k);
    bench::PrintRow({std::to_string(k), bench::Fmt("%.3f", t_gmc),
                     bench::Fmt("%.3f", t_clt), bench::Fmt("%.3f", t_dust)});
  }

  std::printf(
      "\nPaper shape (Fig. 7): GMC grows quadratically with s and strongly\n"
      "with k; DUST's curve is shallow in s and essentially flat in k,\n"
      "tracking the clustering baseline CLT.\n");
  return 0;
}
