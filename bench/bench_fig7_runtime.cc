// Fig. 7 — diversification runtime scaling.
//  (a) runtime vs number of input unionable tuples s (k = 100);
//  (b) runtime vs number of output tuples k (fixed s);
//  (c) retrieval-phase shortlist scaling: flat scan vs HNSW, single and
//      batched queries (the index that feeds the diversifier its input).
// GMC is Θ(k·s²) (quadratic curve, grows with k); DUST and CLT are
// dominated by the distance matrix (shallow curve, flat in k).
#include <memory>

#include "bench/bench_util.h"
#include "diversify/clt.h"
#include "diversify/dust_diversifier.h"
#include "diversify/gmc.h"
#include "index/vector_index.h"
#include "util/stopwatch.h"

using namespace dust;

namespace {

double TimeOne(diversify::Diversifier* diversifier,
               const std::vector<la::Vec>& query,
               const std::vector<la::Vec>& lake, size_t k) {
  diversify::DiversifyInput input;
  input.query = &query;
  input.lake = &lake;
  Stopwatch watch;
  std::vector<size_t> selected = diversifier->SelectDiverse(input, k);
  (void)selected;
  return watch.Seconds();
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 7 reproduction: diversification runtime scaling");
  const size_t kDim = 48;
  std::vector<la::Vec> query = bench::SyntheticTupleCloud(20, kDim, 4, 11);

  diversify::GmcDiversifier gmc;
  diversify::CltDiversifier clt;
  diversify::DustDiversifierConfig dust_config;
  dust_config.prune_s = 1 << 30;  // pruning off: s is the clustering input
  diversify::DustDiversifier dust(dust_config);

  std::printf("\n(a) runtime vs number of input unionable tuples (k=100)\n");
  bench::PrintRow({"s", "GMC(s)", "CLT(s)", "DUST(s)"});
  for (size_t s : {1000u, 2000u, 3000u, 4000u, 5000u, 6000u}) {
    std::vector<la::Vec> lake = bench::SyntheticTupleCloud(s, kDim, 24, 7);
    double t_gmc = TimeOne(&gmc, query, lake, 100);
    double t_clt = TimeOne(&clt, query, lake, 100);
    double t_dust = TimeOne(&dust, query, lake, 100);
    bench::PrintRow({std::to_string(s), bench::Fmt("%.3f", t_gmc),
                     bench::Fmt("%.3f", t_clt), bench::Fmt("%.3f", t_dust)});
  }

  std::printf("\n(b) runtime vs number of output tuples (s=2500)\n");
  bench::PrintRow({"k", "GMC(s)", "CLT(s)", "DUST(s)"});
  std::vector<la::Vec> lake = bench::SyntheticTupleCloud(2500, kDim, 24, 9);
  for (size_t k : {100u, 200u, 300u, 400u, 500u}) {
    double t_gmc = TimeOne(&gmc, query, lake, k);
    double t_clt = TimeOne(&clt, query, lake, k);
    double t_dust = TimeOne(&dust, query, lake, k);
    bench::PrintRow({std::to_string(k), bench::Fmt("%.3f", t_gmc),
                     bench::Fmt("%.3f", t_clt), bench::Fmt("%.3f", t_dust)});
  }

  std::printf("\n(c) shortlist retrieval vs lake size (k=10, 64 queries)\n");
  bench::PrintRow(
      {"n", "Flat(s)", "HNSW(s)", "FlatBatch(s)", "HNSWBatch(s)"});
  std::vector<la::Vec> queries = bench::SyntheticTupleCloud(64, kDim, 8, 13);
  for (size_t n : {2000u, 5000u, 10000u, 20000u}) {
    std::vector<la::Vec> cloud = bench::SyntheticTupleCloud(n, kDim, 24, 17);
    auto flat = index::MakeVectorIndex("flat", kDim, la::Metric::kCosine);
    auto hnsw = index::MakeVectorIndex("hnsw", kDim, la::Metric::kCosine);
    flat->AddAll(cloud);
    hnsw->AddAll(cloud);
    Stopwatch watch;
    for (const la::Vec& q : queries) flat->Search(q, 10);
    double t_flat = watch.Seconds();
    watch.Restart();
    for (const la::Vec& q : queries) hnsw->Search(q, 10);
    double t_hnsw = watch.Seconds();
    watch.Restart();
    flat->SearchBatch(queries, 10);
    double t_flat_batch = watch.Seconds();
    watch.Restart();
    hnsw->SearchBatch(queries, 10);
    double t_hnsw_batch = watch.Seconds();
    bench::PrintRow({std::to_string(n), bench::Fmt("%.4f", t_flat),
                     bench::Fmt("%.4f", t_hnsw),
                     bench::Fmt("%.4f", t_flat_batch),
                     bench::Fmt("%.4f", t_hnsw_batch)});
  }

  std::printf(
      "\nPaper shape (Fig. 7): GMC grows quadratically with s and strongly\n"
      "with k; DUST's curve is shallow in s and essentially flat in k,\n"
      "tracking the clustering baseline CLT. The retrieval shortlist (c)\n"
      "grows linearly for the flat scan but stays nearly flat for HNSW.\n");
  return 0;
}
