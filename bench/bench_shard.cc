// bench_shard — build/query scaling of the sharded lake index vs shard
// count (google-benchmark). The CI bench-smoke job runs BM_Shard* with
// --benchmark_out=BENCH_shard.json and uploads the JSON as a per-PR
// artifact, so the scatter-gather overhead and build scaling are tracked
// across revisions. Shard count 1 is the unsharded baseline: the gap to it
// at a given lake size is the price of the merge + routing layers, and the
// per-shard build speedup (smaller HNSW graphs are cheaper to build) is
// the win.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "bench/bench_util.h"
#include "io/index_io.h"
#include "shard/sharded_index.h"

using namespace dust;

namespace {

constexpr const char* kChildTypes[] = {"flat", "hnsw"};
constexpr size_t kDim = 64;

shard::ShardedIndexConfig BenchShardConfig(size_t shards, const char* child) {
  shard::ShardedIndexConfig config;
  config.child_type = child;
  config.num_shards = shards;
  return config;
}

std::string BenchShardPath() {
  return (std::filesystem::temp_directory_path() / "dust_bench_shard.bin")
      .string();
}

/// Offline ingest: one AddAll over the whole cloud (routing + per-shard
/// bulk load, and for HNSW children the graph constructions themselves).
void BM_ShardBuild(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const char* child = kChildTypes[state.range(1)];
  const size_t n = 8192;
  auto points = bench::SyntheticTupleCloud(n, kDim, 16, 4);
  for (auto _ : state) {
    shard::ShardedIndex index(kDim, la::Metric::kCosine,
                              BenchShardConfig(shards, child));
    index.AddAll(points);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.SetLabel(std::string(child) + " x" + std::to_string(shards));
}
BENCHMARK(BM_ShardBuild)->ArgsProduct({{1, 2, 4, 8}, {0, 1}});

/// Single-query scatter-gather: every shard answers top-k on its own
/// thread, hits are remapped and k-way merged.
void BM_ShardSearch(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const char* child = kChildTypes[state.range(1)];
  auto points = bench::SyntheticTupleCloud(8192, kDim, 16, 4);
  shard::ShardedIndex index(kDim, la::Metric::kCosine,
                            BenchShardConfig(shards, child));
  index.AddAll(points);
  la::Vec query = bench::SyntheticTupleCloud(1, kDim, 1, 5)[0];
  benchmark::DoNotOptimize(index.Search(query, 10).size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(query, 10).size());
  }
  state.SetLabel(std::string(child) + " x" + std::to_string(shards));
}
BENCHMARK(BM_ShardSearch)->ArgsProduct({{1, 2, 4, 8}, {0, 1}});

/// Batched scatter-gather — the tuple-search serving shape: shards answer
/// the whole batch sequentially with their internally-parallel SearchBatch,
/// then per-query hits merge.
void BM_ShardSearchBatch(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const char* child = kChildTypes[state.range(1)];
  auto points = bench::SyntheticTupleCloud(8192, kDim, 16, 4);
  shard::ShardedIndex index(kDim, la::Metric::kCosine,
                            BenchShardConfig(shards, child));
  index.AddAll(points);
  std::vector<la::Vec> queries = bench::SyntheticTupleCloud(64, kDim, 8, 5);
  benchmark::DoNotOptimize(index.SearchBatch(queries, 10).size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.SearchBatch(queries, 10).size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
  state.SetLabel(std::string(child) + " x" + std::to_string(shards));
}
BENCHMARK(BM_ShardSearchBatch)->ArgsProduct({{1, 2, 4, 8}, {0, 1}});

/// Manifest + per-shard persistence round trip (the offline/online split
/// for sharded lakes).
void BM_ShardSaveLoad(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  auto points = bench::SyntheticTupleCloud(8192, kDim, 16, 4);
  shard::ShardedIndex index(kDim, la::Metric::kCosine,
                            BenchShardConfig(shards, "flat"));
  index.AddAll(points);
  const std::string path = BenchShardPath();
  for (auto _ : state) {
    if (!index.Save(path).ok()) {
      state.SkipWithError("cannot write bench shard file");
      return;
    }
    auto loaded = io::LoadIndex(path);
    benchmark::DoNotOptimize(loaded.ok());
  }
  std::error_code ec;
  state.counters["file_bytes"] =
      static_cast<double>(std::filesystem::file_size(path, ec));
  std::filesystem::remove(path, ec);
  state.SetLabel("flat x" + std::to_string(shards));
}
BENCHMARK(BM_ShardSaveLoad)->Arg(1)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
