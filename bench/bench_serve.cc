// bench_serve — throughput and tail latency of the async query server
// (google-benchmark). The CI bench-smoke job runs BM_Serve* with
// --benchmark_out=BENCH_serve.json and uploads the JSON per PR.
//
// Two serving models over one closed-loop client fleet (every client keeps
// exactly one request in flight):
//   - BM_ServeThreadPerRequest: the pre-executor baseline — each request is
//     answered by a freshly spawned std::thread running the sequential
//     SearchTuples path (thread creation on every query, no batching);
//   - BM_ServeQueryServer: the QueryServer — bounded admission queue,
//     micro-batching window, one SearchTuplesBatch per batch on a shared
//     fixed-size executor (zero per-query thread creation).
// items_per_second is QPS; p50/p95/p99 latency counters come from the
// server's own stats. The acceptance bar: the micro-batched server beats
// thread-per-request at >= 8 concurrent clients.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "search/tuple_search.h"
#include "serve/query_server.h"
#include "table/table.h"
#include "util/rng.h"

using namespace dust;

namespace {

constexpr size_t kRequestsPerIteration = 128;
constexpr size_t kK = 10;

table::Table MakeWordTable(const std::string& name, size_t rows,
                           uint64_t seed) {
  Rng rng(seed);
  table::Table t(name);
  std::vector<table::Value> cities, countries, codes;
  for (size_t r = 0; r < rows; ++r) {
    cities.emplace_back("city" + std::to_string(rng.NextBelow(800)));
    countries.emplace_back("country" + std::to_string(rng.NextBelow(60)));
    codes.emplace_back("code" + std::to_string(rng.NextBelow(2000)));
  }
  DUST_CHECK(t.AddColumn("city", std::move(cities)).ok());
  DUST_CHECK(t.AddColumn("country", std::move(countries)).ok());
  DUST_CHECK(t.AddColumn("code", std::move(codes)).ok());
  return t;
}

/// One lake + indexed TupleSearch + query tables, built once per process.
struct ServeWorkload {
  std::vector<table::Table> lake_storage;
  std::vector<table::Table> queries;
  std::unique_ptr<search::TupleSearch> search;
};

const ServeWorkload& Workload() {
  static const ServeWorkload* workload = [] {
    auto* w = new ServeWorkload();
    for (size_t t = 0; t < 48; ++t) {
      w->lake_storage.push_back(
          MakeWordTable("lake" + std::to_string(t), 40, 300 + t));
    }
    for (size_t q = 0; q < 16; ++q) {
      w->queries.push_back(MakeWordTable("q" + std::to_string(q), 6, 7000 + q));
    }
    w->search =
        std::make_unique<search::TupleSearch>(bench::MakeBenchEncoder());
    std::vector<const table::Table*> lake;
    for (const table::Table& t : w->lake_storage) lake.push_back(&t);
    w->search->IndexLake(lake);
    return w;
  }();
  return *workload;
}

/// Closed-loop fleet: `clients` threads each keep one request in flight
/// until `total` requests have completed via `one_request(query_index)`.
void RunClosedLoop(size_t clients, size_t total,
                   const std::function<void(size_t)>& one_request) {
  std::atomic<size_t> next{0};
  std::vector<std::thread> fleet;
  fleet.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    fleet.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < total; i = next.fetch_add(1)) {
        one_request(i);
      }
    });
  }
  for (std::thread& t : fleet) t.join();
}

/// Baseline: spawn-join one std::thread per request (what serving looked
/// like before the shared executor existed).
void BM_ServeThreadPerRequest(benchmark::State& state) {
  const size_t clients = static_cast<size_t>(state.range(0));
  const ServeWorkload& w = Workload();
  for (auto _ : state) {
    RunClosedLoop(clients, kRequestsPerIteration, [&](size_t i) {
      const table::Table& query = w.queries[i % w.queries.size()];
      std::vector<search::TupleHit> hits;
      std::thread worker([&] { hits = w.search->SearchTuples(query, kK); });
      worker.join();
      benchmark::DoNotOptimize(hits.size());
    });
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRequestsPerIteration));
  state.SetLabel("clients=" + std::to_string(clients));
}
BENCHMARK(BM_ServeThreadPerRequest)
    ->Arg(1)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The async server: executor threads x batching window, 8 or 16 clients.
/// range: (threads, batch_window_us, clients).
void BM_ServeQueryServer(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t window_us = static_cast<size_t>(state.range(1));
  const size_t clients = static_cast<size_t>(state.range(2));
  const ServeWorkload& w = Workload();
  serve::QueryServerOptions options;
  options.threads = threads;
  options.batch_window_us = window_us;
  options.max_batch = 32;
  options.queue_capacity = 256;
  serve::QueryServer server(w.search.get(), options);
  for (auto _ : state) {
    RunClosedLoop(clients, kRequestsPerIteration, [&](size_t i) {
      const table::Table& query = w.queries[i % w.queries.size()];
      auto result = server.Submit(query, kK).get();
      benchmark::DoNotOptimize(result.ok());
    });
  }
  server.Shutdown();
  const serve::QueryServerStats stats = server.stats();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRequestsPerIteration));
  state.counters["p50_ms"] = stats.p50_ms;
  state.counters["p95_ms"] = stats.p95_ms;
  state.counters["p99_ms"] = stats.p99_ms;
  state.counters["mean_batch"] = stats.mean_batch_size;
  state.SetLabel("threads=" + std::to_string(threads) +
                 " window=" + std::to_string(window_us) +
                 "us clients=" + std::to_string(clients));
}
BENCHMARK(BM_ServeQueryServer)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 2000}, {8}})
    ->Args({8, 2000, 16})
    ->Args({8, 0, 16})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
