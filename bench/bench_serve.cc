// bench_serve — throughput, tail latency, and SLO attainment of the async
// query server (google-benchmark). The CI bench-smoke job runs BM_Serve*
// with --benchmark_out=BENCH_serve.json, asserts the zipfian/SLO fields are
// present (serve-slo step), and uploads the JSON per PR.
//
// Serving models over a closed-loop client fleet (every client keeps
// exactly one request in flight):
//   - BM_ServeThreadPerRequest: the pre-executor baseline — each request is
//     answered by a freshly spawned std::thread running the sequential
//     SearchTuples path (thread creation on every query, no batching);
//   - BM_ServeQueryServer: the QueryServer — bounded admission queue,
//     micro-batching window, one SearchTuplesBatch per batch on a shared
//     fixed-size executor (zero per-query thread creation).
//
// Traffic-shaped workloads (the numbers users actually feel):
//   - BM_ServeClosedLoopSlo: closed-loop fleet drawing queries from the
//     pool either uniformly or zipfian (s = 1.1, seeded/deterministic —
//     skewed repetition is what production traffic looks like), with the
//     result cache on or off. Reports SLO attainment (fraction of requests
//     under 10/25/50 ms), cache hit rate, and latency percentiles.
//   - BM_ServeOpenLoopSlo: fixed-arrival-rate generator (open loop), so
//     queueing delay is charged to latency instead of silently slowing the
//     offered load (no coordinated omission). Same SLO/cache counters.
// items_per_second is QPS. Acceptance bars: the micro-batched server beats
// thread-per-request at >= 8 clients, and zipfian closed-loop with the
// cache on beats cache-off by >= 1.5x QPS at equal-or-better p99.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "search/tuple_search.h"
#include "serve/bounded_queue.h"
#include "serve/query_server.h"
#include "table/table.h"
#include "util/rng.h"

using namespace dust;

namespace {

constexpr size_t kRequestsPerIteration = 128;
constexpr size_t kSloRequestsPerIteration = 256;
constexpr size_t kK = 10;
constexpr double kZipfS = 1.1;
const std::vector<double> kSloThresholdsMs = {10.0, 25.0, 50.0};

table::Table MakeWordTable(const std::string& name, size_t rows,
                           uint64_t seed) {
  Rng rng(seed);
  table::Table t(name);
  std::vector<table::Value> cities, countries, codes;
  for (size_t r = 0; r < rows; ++r) {
    cities.emplace_back("city" + std::to_string(rng.NextBelow(800)));
    countries.emplace_back("country" + std::to_string(rng.NextBelow(60)));
    codes.emplace_back("code" + std::to_string(rng.NextBelow(2000)));
  }
  DUST_CHECK(t.AddColumn("city", std::move(cities)).ok());
  DUST_CHECK(t.AddColumn("country", std::move(countries)).ok());
  DUST_CHECK(t.AddColumn("code", std::move(codes)).ok());
  return t;
}

/// One lake + indexed TupleSearch + query tables, built once per process.
struct ServeWorkload {
  std::vector<table::Table> lake_storage;
  std::vector<table::Table> queries;
  std::unique_ptr<search::TupleSearch> search;
};

const ServeWorkload& Workload() {
  static const ServeWorkload* workload = [] {
    auto* w = new ServeWorkload();
    for (size_t t = 0; t < 48; ++t) {
      w->lake_storage.push_back(
          MakeWordTable("lake" + std::to_string(t), 40, 300 + t));
    }
    // 64 distinct queries: enough pool for a zipfian head and tail.
    for (size_t q = 0; q < 64; ++q) {
      w->queries.push_back(MakeWordTable("q" + std::to_string(q), 6, 7000 + q));
    }
    w->search =
        std::make_unique<search::TupleSearch>(bench::MakeBenchEncoder());
    std::vector<const table::Table*> lake;
    for (const table::Table& t : w->lake_storage) lake.push_back(&t);
    w->search->IndexLake(lake);
    return w;
  }();
  return *workload;
}

/// Deterministic zipfian sampler over ranks [0, n): P(rank) ~ 1/(rank+1)^s.
/// Precomputed CDF + binary search; each client thread owns one (seeded by
/// client id) so runs are reproducible regardless of interleaving.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s, uint64_t seed) : rng_(seed) {
    cdf_.reserve(n);
    double total = 0.0;
    for (size_t rank = 1; rank <= n; ++rank) {
      total += 1.0 / std::pow(static_cast<double>(rank), s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  size_t Next() {
    const double u = rng_.NextDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

/// Closed-loop fleet: `clients` threads each keep one request in flight
/// until `total` requests have completed via `one_request(request_index)`.
void RunClosedLoop(size_t clients, size_t total,
                   const std::function<void(size_t)>& one_request) {
  std::atomic<size_t> next{0};
  std::vector<std::thread> fleet;
  fleet.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    fleet.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < total; i = next.fetch_add(1)) {
        one_request(i);
      }
    });
  }
  for (std::thread& t : fleet) t.join();
}

/// Fraction of `latencies_ms` at or under each SLO threshold, plus p99,
/// written into the benchmark counters.
void ReportSlo(benchmark::State& state, std::vector<double> latencies_ms) {
  if (latencies_ms.empty()) return;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double n = static_cast<double>(latencies_ms.size());
  for (double threshold : kSloThresholdsMs) {
    const double under = static_cast<double>(
        std::upper_bound(latencies_ms.begin(), latencies_ms.end(), threshold) -
        latencies_ms.begin());
    state.counters["slo_" + std::to_string(static_cast<int>(threshold)) +
                   "ms"] = under / n;
  }
  state.counters["p99_ms"] =
      latencies_ms[static_cast<size_t>(std::ceil(0.99 * n)) - 1];
}

/// Baseline: spawn-join one std::thread per request (what serving looked
/// like before the shared executor existed).
void BM_ServeThreadPerRequest(benchmark::State& state) {
  const size_t clients = static_cast<size_t>(state.range(0));
  const ServeWorkload& w = Workload();
  for (auto _ : state) {
    RunClosedLoop(clients, kRequestsPerIteration, [&](size_t i) {
      const table::Table& query = w.queries[i % w.queries.size()];
      std::vector<search::TupleHit> hits;
      std::thread worker([&] { hits = w.search->SearchTuples(query, kK); });
      worker.join();
      benchmark::DoNotOptimize(hits.size());
    });
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRequestsPerIteration));
  state.SetLabel("clients=" + std::to_string(clients));
}
BENCHMARK(BM_ServeThreadPerRequest)
    ->Arg(1)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The async server: executor threads x batching window, 8 or 16 clients.
/// range: (threads, batch_window_us, clients).
void BM_ServeQueryServer(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t window_us = static_cast<size_t>(state.range(1));
  const size_t clients = static_cast<size_t>(state.range(2));
  const ServeWorkload& w = Workload();
  serve::QueryServerOptions options;
  options.threads = threads;
  options.batch_window_us = window_us;
  options.max_batch = 32;
  options.queue_capacity = 256;
  serve::QueryServer server(w.search.get(), options);
  for (auto _ : state) {
    RunClosedLoop(clients, kRequestsPerIteration, [&](size_t i) {
      const table::Table& query = w.queries[i % w.queries.size()];
      auto result = server.Submit(query, kK).get();
      benchmark::DoNotOptimize(result.ok());
    });
  }
  server.Shutdown();
  const serve::QueryServerStats stats = server.stats();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRequestsPerIteration));
  state.counters["p50_ms"] = stats.p50_ms;
  state.counters["p95_ms"] = stats.p95_ms;
  state.counters["p99_ms"] = stats.p99_ms;
  state.counters["mean_batch"] = stats.mean_batch_size;
  state.SetLabel("threads=" + std::to_string(threads) +
                 " window=" + std::to_string(window_us) +
                 "us clients=" + std::to_string(clients));
}
BENCHMARK(BM_ServeQueryServer)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 2000}, {8}})
    ->Args({8, 2000, 16})
    ->Args({8, 0, 16})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Traffic-shaped closed loop: zipfian-or-uniform query draws, cache on or
/// off, SLO attainment + cache hit rate reported. args: (zipf, cache
/// entries, clients). One server (and cache) persists across iterations —
/// exactly the steady state a long-running deployment serves from.
void BM_ServeClosedLoopSlo(benchmark::State& state) {
  const bool zipf = state.range(0) != 0;
  const size_t cache_entries = static_cast<size_t>(state.range(1));
  const size_t clients = static_cast<size_t>(state.range(2));
  const ServeWorkload& w = Workload();
  serve::QueryServerOptions options;
  options.threads = 4;
  options.batch_window_us = 200;
  options.max_batch = 32;
  options.queue_capacity = 256;
  options.cache_entries = cache_entries;
  serve::QueryServer server(w.search.get(), options);
  std::vector<double> all_latencies_ms;
  for (auto _ : state) {
    // Per-request latency slots are disjoint, so clients write lock-free.
    std::vector<double> latencies_ms(kSloRequestsPerIteration, 0.0);
    // Pre-drawn, deterministic query sequence: the same draws regardless of
    // client interleaving or cache setting (fair cached-vs-uncached runs).
    std::vector<size_t> draws(kSloRequestsPerIteration);
    ZipfSampler sampler(w.queries.size(), kZipfS, 42);
    Rng uniform(42);
    for (size_t i = 0; i < draws.size(); ++i) {
      draws[i] = zipf ? sampler.Next()
                      : static_cast<size_t>(uniform.NextBelow(
                            w.queries.size()));
    }
    RunClosedLoop(clients, kSloRequestsPerIteration, [&](size_t i) {
      const table::Table& query = w.queries[draws[i]];
      const auto start = std::chrono::steady_clock::now();
      auto result = server.Submit(query, kK).get();
      latencies_ms[i] = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      benchmark::DoNotOptimize(result.ok());
    });
    all_latencies_ms.insert(all_latencies_ms.end(), latencies_ms.begin(),
                            latencies_ms.end());
  }
  server.Shutdown();
  const serve::QueryServerStats stats = server.stats();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSloRequestsPerIteration));
  ReportSlo(state, std::move(all_latencies_ms));
  state.counters["cache_hit_rate"] = stats.cache_hit_rate;
  state.counters["p50_ms"] = stats.p50_ms;
  state.counters["p95_ms"] = stats.p95_ms;
  state.SetLabel(std::string(zipf ? "zipf" : "uniform") +
                 " cache=" + std::to_string(cache_entries) +
                 " clients=" + std::to_string(clients));
}
BENCHMARK(BM_ServeClosedLoopSlo)
    ->ArgNames({"zipf", "cache", "clients"})
    // uniform/zipf x cache-off/cache-on: the four-way artifact the CI
    // serve-slo step checks (zipf+cache must show hits and the QPS win).
    ->ArgsProduct({{0, 1}, {0, 4096}, {8}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Open loop: a generator issues zipfian queries at a fixed arrival rate
/// and latency is measured from the *intended* arrival time, so a slow
/// server accrues queueing delay instead of throttling the workload
/// (coordinated omission avoided). args: (arrival QPS, cache entries).
void BM_ServeOpenLoopSlo(benchmark::State& state) {
  const size_t rate_qps = static_cast<size_t>(state.range(0));
  const size_t cache_entries = static_cast<size_t>(state.range(1));
  const ServeWorkload& w = Workload();
  serve::QueryServerOptions options;
  options.threads = 4;
  options.batch_window_us = 200;
  options.max_batch = 32;
  options.queue_capacity = 1024;
  options.cache_entries = cache_entries;
  serve::QueryServer server(w.search.get(), options);
  std::vector<double> all_latencies_ms;
  for (auto _ : state) {
    const size_t total = kSloRequestsPerIteration;
    std::vector<double> latencies_ms(total, 0.0);
    std::vector<size_t> draws(total);
    ZipfSampler sampler(w.queries.size(), kZipfS, 77);
    for (size_t i = 0; i < total; ++i) draws[i] = sampler.Next();

    struct Pending {
      std::future<serve::QueryServer::TupleResult> future;
      std::chrono::steady_clock::time_point arrival;
      size_t index = 0;
    };
    // Harvest through the serving stack's own bounded queue: waiters pull
    // pending futures so the generator never blocks on completions.
    serve::BoundedQueue<Pending> pending(total);
    std::vector<std::thread> waiters;
    const size_t kWaiters = 16;
    waiters.reserve(kWaiters);
    for (size_t t = 0; t < kWaiters; ++t) {
      waiters.emplace_back([&] {
        Pending p;
        while (pending.Pop(&p)) {
          p.future.get();
          latencies_ms[p.index] = std::chrono::duration<double, std::milli>(
                                      std::chrono::steady_clock::now() -
                                      p.arrival)
                                      .count();
        }
      });
    }
    const auto period =
        std::chrono::microseconds(1000000 / std::max<size_t>(1, rate_qps));
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < total; ++i) {
      const auto arrival = start + period * i;
      std::this_thread::sleep_until(arrival);
      Pending p;
      p.future = server.Submit(w.queries[draws[i]], kK);
      p.arrival = arrival;  // intended arrival, not post-Submit
      p.index = i;
      pending.Push(std::move(p));
    }
    pending.Close();
    for (std::thread& t : waiters) t.join();
    all_latencies_ms.insert(all_latencies_ms.end(), latencies_ms.begin(),
                            latencies_ms.end());
  }
  server.Shutdown();
  const serve::QueryServerStats stats = server.stats();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSloRequestsPerIteration));
  ReportSlo(state, std::move(all_latencies_ms));
  state.counters["cache_hit_rate"] = stats.cache_hit_rate;
  state.counters["offered_qps"] = static_cast<double>(rate_qps);
  state.SetLabel("open-loop zipf rate=" + std::to_string(rate_qps) +
                 "qps cache=" + std::to_string(cache_entries));
}
BENCHMARK(BM_ServeOpenLoopSlo)
    ->ArgNames({"rate", "cache"})
    ->ArgsProduct({{500, 2000}, {0, 4096}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
