// Fig. 5 — benchmark statistics: tables / columns / tuples per benchmark.
// (Sizes are scaled to a single-core budget; see DESIGN.md §1.)
#include "bench/bench_util.h"
#include "datagen/imdb_generator.h"
#include "datagen/santos_generator.h"
#include "datagen/tus_generator.h"
#include "datagen/ugen_generator.h"

using namespace dust;

namespace {

void PrintStats(const datagen::Benchmark& b, size_t avg_unionable) {
  datagen::Benchmark::Stats q = b.QueryStats();
  datagen::Benchmark::Stats l = b.LakeStats();
  bench::PrintRow({b.name, std::to_string(q.tables), std::to_string(q.columns),
                   std::to_string(q.tuples), std::to_string(l.tables),
                   std::to_string(l.columns), std::to_string(l.tuples),
                   std::to_string(avg_unionable)});
}

size_t AvgUnionable(const datagen::Benchmark& b) {
  if (b.unionable.empty()) return 0;
  size_t total = 0;
  for (const auto& u : b.unionable) total += u.size();
  return total / b.unionable.size();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 5 reproduction: benchmark statistics (scaled generators)");
  bench::PrintRow({"Benchmark", "Q.Tables", "Q.Cols", "Q.Tuples", "L.Tables",
                   "L.Cols", "L.Tuples", "AvgUnion"});

  datagen::TusConfig tus;
  datagen::Benchmark tus_b = datagen::GenerateTus(tus);
  PrintStats(tus_b, AvgUnionable(tus_b));

  datagen::SantosConfig santos;
  datagen::Benchmark santos_b = datagen::GenerateSantos(santos);
  PrintStats(santos_b, AvgUnionable(santos_b));

  datagen::UgenConfig ugen;
  datagen::Benchmark ugen_b = datagen::GenerateUgen(ugen);
  PrintStats(ugen_b, AvgUnionable(ugen_b));

  datagen::ImdbConfig imdb;
  datagen::Benchmark imdb_b = datagen::GenerateImdb(imdb);
  PrintStats(imdb_b, AvgUnionable(imdb_b));

  std::printf(
      "\nPaper (Fig. 5): TUS 5044 lake tables / 9.6M tuples; SANTOS 550 /\n"
      "3.8M; UGEN-V1 1000 / 10K. Generators reproduce the structure at\n"
      "laptop scale; ratios (SANTOS tables larger, UGEN tiny) preserved.\n");
  return 0;
}
