// bench_cascade — staged retrieval cascade vs the flat path
// (google-benchmark). The CI bench-smoke job runs BM_Cascade* with
// --benchmark_out=BENCH_cascade.json and gates on the cascade-quality
// counters (cascade-quality step): the layer-1 prefilter must shed >= 90%
// of a heterogeneous lake, cascade recall@10 must stay within 0.01 of the
// flat path, and the staged search must be >= 1.5x faster.
//
//   - BM_CascadeFlatSearch: the cascade-free baseline — every lake table
//     scored exactly by the bipartite rerank (shortlist = 0);
//   - BM_CascadeStagedSearch: defaults-on cascade — type prefilter,
//     MinHash prescreen, then the same exact rerank over the survivors.
//
// The lake models the heterogeneity the prefilter exists for: a small
// unionable family sharing the query's schema and vocabulary, a band of
// text distractors with disjoint vocabulary (prefilter-compatible, caught
// by the prescreen), and a long tail of numeric junk tables the type
// signatures reject outright.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "search/embedding_search.h"
#include "table/table.h"
#include "util/rng.h"
#include "util/status.h"

using namespace dust;

namespace {

constexpr size_t kFamilyTables = 30;
constexpr size_t kTextDistractors = 20;
constexpr size_t kNumericDistractors = 480;
constexpr size_t kQueries = 8;
constexpr size_t kTopK = 10;
constexpr size_t kPrescreenKeep = 40;

/// A 4-text-column table drawing values from a vocabulary namespace; tables
/// sharing `vocab` overlap heavily in values, different vocabs are
/// disjoint.
table::Table MakeTextTable(const std::string& name, const std::string& vocab,
                           size_t rows, uint64_t seed) {
  Rng rng(seed);
  table::Table t(name);
  std::vector<table::Value> park, city, country, agency;
  for (size_t r = 0; r < rows; ++r) {
    park.emplace_back(vocab + "_park" + std::to_string(rng.NextBelow(120)));
    city.emplace_back(vocab + "_city" + std::to_string(rng.NextBelow(60)));
    country.emplace_back(vocab + "_cty" + std::to_string(rng.NextBelow(20)));
    agency.emplace_back(vocab + "_org" + std::to_string(rng.NextBelow(40)));
  }
  DUST_CHECK(t.AddColumn("park", std::move(park)).ok());
  DUST_CHECK(t.AddColumn("city", std::move(city)).ok());
  DUST_CHECK(t.AddColumn("country", std::move(country)).ok());
  DUST_CHECK(t.AddColumn("agency", std::move(agency)).ok());
  return t;
}

/// A 2-numeric-column junk table — the type prefilter's bread and butter.
table::Table MakeNumericTable(const std::string& name, size_t rows,
                              uint64_t seed) {
  Rng rng(seed);
  table::Table t(name);
  std::vector<table::Value> xs, ys;
  for (size_t r = 0; r < rows; ++r) {
    xs.emplace_back(std::to_string(rng.NextBelow(100000)));
    ys.emplace_back(std::to_string(rng.NextBelow(100000)) + ".5");
  }
  DUST_CHECK(t.AddColumn("x", std::move(xs)).ok());
  DUST_CHECK(t.AddColumn("y", std::move(ys)).ok());
  return t;
}

struct CascadeWorkload {
  std::vector<table::Table> lake_storage;
  std::vector<const table::Table*> lake;
  std::vector<table::Table> queries;
  std::unique_ptr<search::EmbeddingUnionSearch> flat;
  std::unique_ptr<search::EmbeddingUnionSearch> staged;
  double recall_at_10 = 0.0;
  double layer1_reduction = 0.0;
  double prescreen_reduction = 0.0;
};

search::EmbeddingSearchConfig StagedConfig() {
  search::EmbeddingSearchConfig config;
  config.cascade.enabled = true;
  config.cascade.prescreen_keep = kPrescreenKeep;
  return config;
}

const CascadeWorkload& Workload() {
  static const CascadeWorkload* workload = [] {
    auto* w = new CascadeWorkload();
    for (size_t t = 0; t < kFamilyTables; ++t) {
      w->lake_storage.push_back(
          MakeTextTable("family" + std::to_string(t), "parks", 24, 100 + t));
    }
    for (size_t t = 0; t < kTextDistractors; ++t) {
      w->lake_storage.push_back(MakeTextTable(
          "textjunk" + std::to_string(t), "vocab" + std::to_string(t), 24,
          900 + t));
    }
    for (size_t t = 0; t < kNumericDistractors; ++t) {
      w->lake_storage.push_back(
          MakeNumericTable("numjunk" + std::to_string(t), 24, 5000 + t));
    }
    for (const table::Table& t : w->lake_storage) w->lake.push_back(&t);
    for (size_t q = 0; q < kQueries; ++q) {
      w->queries.push_back(
          MakeTextTable("q" + std::to_string(q), "parks", 10, 7000 + q));
    }

    w->flat = std::make_unique<search::EmbeddingUnionSearch>(
        search::EmbeddingSearchConfig{});
    w->flat->IndexLake(w->lake);
    w->staged =
        std::make_unique<search::EmbeddingUnionSearch>(StagedConfig());
    w->staged->IndexLake(w->lake);

    // Quality counters, computed once over the query pool: recall@10 of
    // the staged cascade against the flat (exact) top-10, and the
    // reduction each prefilter layer achieved on the last query.
    double hit = 0.0, possible = 0.0;
    for (const table::Table& query : w->queries) {
      const auto expected = w->flat->SearchTables(query, kTopK);
      const auto actual = w->staged->SearchTables(query, kTopK);
      for (const search::TableHit& e : expected) {
        possible += 1.0;
        for (const search::TableHit& a : actual) {
          if (a.table_index == e.table_index) {
            hit += 1.0;
            break;
          }
        }
      }
    }
    w->recall_at_10 = possible == 0.0 ? 0.0 : hit / possible;
    for (const auto& stage : w->staged->last_stage_stats()) {
      const double reduction =
          stage.in == 0 ? 0.0
                        : 1.0 - static_cast<double>(stage.out) /
                                    static_cast<double>(stage.in);
      if (stage.stage == "prefilter") w->layer1_reduction = reduction;
      if (stage.stage == "prescreen") w->prescreen_reduction = reduction;
    }
    return w;
  }();
  return *workload;
}

void BM_CascadeFlatSearch(benchmark::State& state) {
  const CascadeWorkload& w = Workload();
  size_t q = 0;
  for (auto _ : state) {
    const auto hits =
        w.flat->SearchTables(w.queries[q++ % w.queries.size()], kTopK);
    benchmark::DoNotOptimize(hits.data());
  }
  state.counters["lake_tables"] = static_cast<double>(w.lake.size());
  state.SetLabel("exact rerank over every table");
}
BENCHMARK(BM_CascadeFlatSearch)->Unit(benchmark::kMicrosecond);

void BM_CascadeStagedSearch(benchmark::State& state) {
  const CascadeWorkload& w = Workload();
  size_t q = 0;
  for (auto _ : state) {
    const auto hits =
        w.staged->SearchTables(w.queries[q++ % w.queries.size()], kTopK);
    benchmark::DoNotOptimize(hits.data());
  }
  state.counters["lake_tables"] = static_cast<double>(w.lake.size());
  state.counters["layer1_reduction"] = w.layer1_reduction;
  state.counters["prescreen_reduction"] = w.prescreen_reduction;
  state.counters["recall_at_10"] = w.recall_at_10;
  state.SetLabel("prefilter + prescreen(keep=" +
                 std::to_string(kPrescreenKeep) + ") + exact rerank");
}
BENCHMARK(BM_CascadeStagedSearch)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
