// Fig. 2 — table vs tuple embedding spread.
//
// The paper plots PCA projections of table embeddings (left) and tuple
// embeddings (right) for 5 sets of unionable tables from Open Data, and
// argues that tuples spread much more than tables. We reproduce the
// quantitative content: after projecting to 2D with PCA, tuples show a much
// larger intra-set spread than tables, and the table-level inter/intra
// separation is weaker.
#include <cmath>

#include "bench/bench_util.h"
#include "datagen/santos_generator.h"
#include "embed/starmie_encoder.h"
#include "la/distance.h"
#include "la/pca.h"

using namespace dust;

namespace {

struct SpreadStats {
  double intra = 0.0;  // mean distance to own set centroid (2D PCA space)
  double inter = 0.0;  // mean distance between set centroids
};

SpreadStats ComputeSpread(const std::vector<la::Vec>& points,
                          const std::vector<size_t>& set_of,
                          size_t num_sets) {
  la::PcaResult pca = la::ComputePca(points, 2);
  std::vector<la::Vec> centroids(num_sets, la::Vec(2, 0.0f));
  std::vector<size_t> counts(num_sets, 0);
  for (size_t i = 0; i < points.size(); ++i) {
    la::AddInPlace(&centroids[set_of[i]], pca.projected[i]);
    ++counts[set_of[i]];
  }
  for (size_t s = 0; s < num_sets; ++s) {
    if (counts[s] > 0) {
      la::ScaleInPlace(&centroids[s], 1.0f / static_cast<float>(counts[s]));
    }
  }
  SpreadStats stats;
  for (size_t i = 0; i < points.size(); ++i) {
    stats.intra += la::EuclideanDistance(pca.projected[i],
                                         centroids[set_of[i]]);
  }
  stats.intra /= static_cast<double>(points.size());
  size_t pairs = 0;
  for (size_t a = 0; a < num_sets; ++a) {
    for (size_t b = a + 1; b < num_sets; ++b) {
      stats.inter += la::EuclideanDistance(centroids[a], centroids[b]);
      ++pairs;
    }
  }
  if (pairs > 0) stats.inter /= static_cast<double>(pairs);
  return stats;
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 2 reproduction: table vs tuple embedding spread");

  datagen::SantosConfig config;
  config.num_queries = 5;  // 5 unionable sets, as in the figure
  config.unionable_per_query = 8;
  config.base_rows = 120;
  datagen::Benchmark benchmark = datagen::GenerateSantos(config);

  // --- Table embeddings: Starmie-style table profiles. ---
  embed::StarmieConfig starmie_config;
  starmie_config.dim = 48;
  embed::StarmieEncoder starmie(starmie_config);
  std::vector<la::Vec> table_points;
  std::vector<size_t> table_set;
  for (size_t q = 0; q < 5; ++q) {
    for (size_t t : benchmark.unionable[q]) {
      std::vector<la::Vec> cols = starmie.EncodeTable(benchmark.lake[t].data);
      la::Vec profile = la::Mean(cols);
      la::NormalizeInPlace(&profile);
      table_points.push_back(profile);
      table_set.push_back(q);
    }
  }

  // --- Tuple embeddings (sampled rows of the same tables). ---
  auto encoder = bench::MakeBenchEncoder(48);
  std::vector<la::Vec> tuple_points;
  std::vector<size_t> tuple_set;
  for (size_t q = 0; q < 5; ++q) {
    for (size_t t : benchmark.unionable[q]) {
      const table::Table& tab = benchmark.lake[t].data;
      size_t step = std::max<size_t>(1, tab.num_rows() / 8);
      for (size_t r = 0; r < tab.num_rows(); r += step) {
        tuple_points.push_back(
            encoder->EncodeSerialized(table::SerializeTableRow(tab, r)));
        tuple_set.push_back(q);
      }
    }
  }

  SpreadStats tables = ComputeSpread(table_points, table_set, 5);
  SpreadStats tuples = ComputeSpread(tuple_points, tuple_set, 5);

  bench::PrintRow({"Level", "IntraSpread", "InterCentroid", "Intra/Inter"});
  bench::PrintRow({"Tables", bench::Fmt("%.4f", tables.intra),
                   bench::Fmt("%.4f", tables.inter),
                   bench::Fmt("%.3f", tables.intra / (tables.inter + 1e-9))});
  bench::PrintRow({"Tuples", bench::Fmt("%.4f", tuples.intra),
                   bench::Fmt("%.4f", tuples.inter),
                   bench::Fmt("%.3f", tuples.intra / (tuples.inter + 1e-9))});

  std::printf(
      "\nPaper claim: tuples are spread around the embedding space much\n"
      "more than tables (diversifying tables has limited effect). Expected\n"
      "shape: Tuples' intra-set spread and intra/inter ratio exceed the\n"
      "Tables'. Measured ratio factor: %.2fx\n",
      (tuples.intra / (tuples.inter + 1e-9)) /
          (tables.intra / (tables.inter + 1e-9) + 1e-9));
  return 0;
}
