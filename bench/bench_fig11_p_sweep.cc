// Fig. 11 (Appendix A.2.2) — impact of the candidate multiplier p.
//
// Sweeps p in {1..5} on SANTOS-style and UGEN-style workloads and reports
// the per-step % change of Average and Max-Min diversity relative to the
// previous p. Paper: beyond p = 2 the improvement is negative (Max-Min) or
// insignificant (Average) — hence p = 2.
#include "bench/bench_util.h"
#include "datagen/santos_generator.h"
#include "datagen/ugen_generator.h"
#include "diversify/dust_diversifier.h"
#include "diversify/metrics.h"

using namespace dust;

namespace {

struct SweepPoint {
  double avg = 0.0;
  double min = 0.0;
};

void RunSweep(const std::string& name, const datagen::Benchmark& benchmark,
              size_t k) {
  auto encoder = bench::MakeBenchEncoder(48);
  std::vector<SweepPoint> points(6);  // p = 1..5 at indices 1..5
  std::vector<size_t> counts(6, 0);

  for (size_t q = 0; q < benchmark.queries.size(); ++q) {
    bench::EncodedQueryWorkload workload =
        bench::EncodeWorkload(benchmark, q, *encoder);
    if (workload.lake.size() < k || workload.query.empty()) continue;
    diversify::DiversifyInput input;
    input.query = &workload.query;
    input.lake = &workload.lake;
    input.table_of = &workload.table_of;
    for (size_t p = 1; p <= 5; ++p) {
      diversify::DustDiversifierConfig config;
      config.p = p;
      diversify::DustDiversifier dust(config);
      std::vector<size_t> selected = dust.SelectDiverse(input, k);
      std::vector<la::Vec> sel_points;
      for (size_t i : selected) sel_points.push_back(workload.lake[i]);
      diversify::DiversityScores scores = diversify::ScoreDiversity(
          workload.query, sel_points, input.metric);
      points[p].avg += scores.average;
      points[p].min += scores.min;
      ++counts[p];
    }
  }

  std::printf("\n--- %s (k=%zu) ---\n", name.c_str(), k);
  bench::PrintRow({"p", "AvgDiv", "MinDiv", "dAvg%", "dMin%"});
  for (size_t p = 1; p <= 5; ++p) {
    if (counts[p] == 0) continue;
    double avg = points[p].avg / counts[p];
    double min = points[p].min / counts[p];
    std::string d_avg = "-";
    std::string d_min = "-";
    if (p > 1 && counts[p - 1] > 0) {
      double prev_avg = points[p - 1].avg / counts[p - 1];
      double prev_min = points[p - 1].min / counts[p - 1];
      d_avg = bench::Fmt("%+.1f", 100.0 * (avg - prev_avg) /
                                      (prev_avg + 1e-12));
      d_min = bench::Fmt("%+.1f", 100.0 * (min - prev_min) /
                                      (prev_min + 1e-12));
    }
    bench::PrintRow({std::to_string(p), bench::Fmt("%.4f", avg),
                     bench::Fmt("%.4f", min), d_avg, d_min});
  }
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 11 reproduction: impact of p in Algorithm 2");
  {
    datagen::SantosConfig config;
    config.num_queries = 6;
    config.unionable_per_query = 8;
    config.base_rows = 250;
    RunSweep("SANTOS", datagen::GenerateSantos(config), /*k=*/60);
  }
  {
    datagen::UgenConfig config;
    config.num_queries = 8;
    RunSweep("UGEN-V1", datagen::GenerateUgen(config), /*k=*/30);
  }
  std::printf(
      "\nPaper shape (Fig. 11): the largest Max-Min gain is p=1 -> 2; past\n"
      "p=2 Max-Min deltas turn negative and Average deltas are negligible,\n"
      "so DUST fixes p=2.\n");
  return 0;
}
