// Table 1 — column alignment effectiveness (P / R / F1) across embedding
// models and serializations on the TUS-Sampled, SANTOS and UGEN-V1 style
// benchmarks. Rows: Cell-level {FastText, Glove, BERT, RoBERTa, sBERT},
// Column-level {BERT, RoBERTa, sBERT}, Starmie (B), Starmie (H).
#include <map>

#include "align/alignment_metrics.h"
#include "align/holistic_aligner.h"
#include "bench/bench_util.h"
#include "datagen/santos_generator.h"
#include "datagen/tus_generator.h"
#include "datagen/ugen_generator.h"
#include "embed/column_embedder.h"
#include "embed/starmie_encoder.h"

using namespace dust;

namespace {

struct MethodScores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t queries = 0;

  void Add(const align::PrecisionRecallF1& s) {
    precision += s.precision;
    recall += s.recall;
    f1 += s.f1;
    ++queries;
  }
  align::PrecisionRecallF1 Mean() const {
    align::PrecisionRecallF1 out;
    if (queries == 0) return out;
    out.precision = precision / queries;
    out.recall = recall / queries;
    out.f1 = f1 / queries;
    return out;
  }
};

// Ground truth from generator concepts: lake column aligns to the query
// column with the same concept id.
align::AlignmentGroundTruth BuildTruth(
    const datagen::GeneratedTable& query,
    const std::vector<const datagen::GeneratedTable*>& lake) {
  align::AlignmentGroundTruth truth;
  truth.aligned_lake.resize(query.column_concepts.size());
  for (size_t qc = 0; qc < query.column_concepts.size(); ++qc) {
    for (size_t t = 0; t < lake.size(); ++t) {
      for (size_t c = 0; c < lake[t]->column_concepts.size(); ++c) {
        if (lake[t]->column_concepts[c] == query.column_concepts[qc]) {
          truth.aligned_lake[qc].push_back({t + 1, c});
        }
      }
    }
  }
  return truth;
}

enum class Method {
  kCellFastText, kCellGlove, kCellBert, kCellRoberta, kCellSbert,
  kColBert, kColRoberta, kColSbert, kStarmieB, kStarmieH,
};

const std::vector<std::pair<Method, const char*>> kMethods = {
    {Method::kCellFastText, "Cell FastText"},
    {Method::kCellGlove, "Cell Glove"},
    {Method::kCellBert, "Cell BERT"},
    {Method::kCellRoberta, "Cell RoBERTa"},
    {Method::kCellSbert, "Cell sBERT"},
    {Method::kColBert, "Col BERT"},
    {Method::kColRoberta, "Col RoBERTa"},
    {Method::kColSbert, "Col sBERT"},
    {Method::kStarmieB, "Starmie (B)"},
    {Method::kStarmieH, "Starmie (H)"},
};

std::vector<std::vector<la::Vec>> EmbedColumns(
    Method method, const table::Table& query,
    const std::vector<const table::Table*>& lake, size_t dim) {
  using embed::ColumnSerialization;
  using embed::ModelFamily;
  auto run = [&](ModelFamily family, ColumnSerialization serialization) {
    auto encoder = std::shared_ptr<embed::TextEmbedder>(
        embed::MakeEmbedder(family, embed::DefaultConfigFor(family, dim)));
    embed::ColumnEmbedder embedder(encoder, serialization);
    std::vector<const table::Table*> all = {&query};
    for (const table::Table* t : lake) all.push_back(t);
    return embedder.EmbedTables(all);
  };
  switch (method) {
    case Method::kCellFastText:
      return run(ModelFamily::kFastText, ColumnSerialization::kCellLevel);
    case Method::kCellGlove:
      return run(ModelFamily::kGlove, ColumnSerialization::kCellLevel);
    case Method::kCellBert:
      return run(ModelFamily::kBert, ColumnSerialization::kCellLevel);
    case Method::kCellRoberta:
      return run(ModelFamily::kRoberta, ColumnSerialization::kCellLevel);
    case Method::kCellSbert:
      return run(ModelFamily::kSbert, ColumnSerialization::kCellLevel);
    case Method::kColBert:
      return run(ModelFamily::kBert, ColumnSerialization::kColumnLevel);
    case Method::kColRoberta:
      return run(ModelFamily::kRoberta, ColumnSerialization::kColumnLevel);
    case Method::kColSbert:
      return run(ModelFamily::kSbert, ColumnSerialization::kColumnLevel);
    case Method::kStarmieB:
    case Method::kStarmieH: {
      embed::StarmieConfig config;
      config.dim = dim;
      embed::StarmieEncoder starmie(config);
      std::vector<std::vector<la::Vec>> out;
      out.push_back(starmie.EncodeTable(query));
      for (const table::Table* t : lake) out.push_back(starmie.EncodeTable(*t));
      return out;
    }
  }
  return {};
}

void RunBenchmark(const std::string& name, const datagen::Benchmark& benchmark,
                  std::map<Method, MethodScores>* scores) {
  for (size_t q = 0; q < benchmark.queries.size(); ++q) {
    std::vector<const datagen::GeneratedTable*> lake_gen;
    std::vector<const table::Table*> lake;
    for (size_t t : benchmark.unionable[q]) {
      lake_gen.push_back(&benchmark.lake[t]);
      lake.push_back(&benchmark.lake[t].data);
    }
    if (lake.empty()) continue;
    align::AlignmentGroundTruth truth =
        BuildTruth(benchmark.queries[q], lake_gen);
    const table::Table& query = benchmark.queries[q].data;

    for (const auto& [method, label] : kMethods) {
      auto embeddings = EmbedColumns(method, query, lake, 48);
      align::AlignmentResult result;
      if (method == Method::kStarmieB) {
        result = align::BipartiteAlign(query, lake, embeddings, 0.3f);
      } else {
        align::HolisticAligner aligner;
        result = aligner.Align(query, lake, embeddings);
      }
      (*scores)[method].Add(align::ScoreAlignment(result, truth));
    }
  }
  (void)name;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 1 reproduction: column alignment effectiveness (P/R/F1)");

  struct Bench {
    std::string name;
    datagen::Benchmark benchmark;
  };
  std::vector<Bench> benches;
  {
    datagen::TusConfig config;
    config.num_queries = 6;
    config.unionable_per_query = 6;
    config.base_rows = 100;
    benches.push_back({"TUS-Sampled", datagen::GenerateTus(config)});
  }
  {
    datagen::SantosConfig config;
    config.num_queries = 6;
    config.unionable_per_query = 6;
    config.base_rows = 150;
    benches.push_back({"SANTOS", datagen::GenerateSantos(config)});
  }
  {
    datagen::UgenConfig config;
    config.num_queries = 6;
    benches.push_back({"UGEN-V1", datagen::GenerateUgen(config)});
  }

  for (const Bench& bench : benches) {
    std::printf("\n--- %s ---\n", bench.name.c_str());
    std::map<Method, MethodScores> scores;
    RunBenchmark(bench.name, bench.benchmark, &scores);
    bench::PrintRow({"Method", "P", "R", "F1"}, 16);
    double best_f1 = 0.0;
    std::string best;
    for (const auto& [method, label] : kMethods) {
      align::PrecisionRecallF1 mean = scores[method].Mean();
      bench::PrintRow({label, bench::Fmt("%.2f", mean.precision),
                       bench::Fmt("%.2f", mean.recall),
                       bench::Fmt("%.2f", mean.f1)},
                      16);
      if (mean.f1 > best_f1) {
        best_f1 = mean.f1;
        best = label;
      }
    }
    std::printf("Best F1: %s (%.2f)\n", best.c_str(), best_f1);
  }

  std::printf(
      "\nPaper shape (Table 1): Column-level RoBERTa best everywhere;\n"
      "column-level >= cell-level per model; Starmie (H) > Starmie (B);\n"
      "Starmie variants weakest overall.\n");
  return 0;
}
