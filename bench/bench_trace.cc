// bench_trace — serving throughput with tracing off vs fully on
// (google-benchmark). The CI bench-smoke job runs BM_Trace* with
// --benchmark_out=BENCH_trace.json and asserts sampled QPS stays within
// 15% of unsampled QPS (trace-overhead step): observability must not buy
// insight with serving throughput.
//
//   - BM_TraceQueryServer/sample:0 — tracing compiled in but unsampled:
//     the Span constructor reads one thread-local flag and returns. This
//     is the production default and must price at (approximately) zero.
//   - BM_TraceQueryServer/sample:1 — every request traced: id allocation,
//     clock reads, and collector inserts for the full span tree (serve,
//     cache_probe, queue_wait, search, encode, index_search, fuse).
//   - BM_TraceSpanOverhead — microbenchmark of one sampled span
//     (clock x2 + striped ring insert), the unit cost the server pays
//     per instrumented section.
#include <benchmark/benchmark.h>

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "obs/trace.h"
#include "search/tuple_search.h"
#include "serve/query_server.h"
#include "table/table.h"
#include "util/rng.h"

using namespace dust;

namespace {

constexpr size_t kRequestsPerIteration = 128;
constexpr size_t kClients = 8;
constexpr size_t kK = 10;

table::Table MakeWordTable(const std::string& name, size_t rows,
                           uint64_t seed) {
  Rng rng(seed);
  table::Table t(name);
  std::vector<table::Value> cities, countries, codes;
  for (size_t r = 0; r < rows; ++r) {
    cities.emplace_back("city" + std::to_string(rng.NextBelow(800)));
    countries.emplace_back("country" + std::to_string(rng.NextBelow(60)));
    codes.emplace_back("code" + std::to_string(rng.NextBelow(2000)));
  }
  DUST_CHECK(t.AddColumn("city", std::move(cities)).ok());
  DUST_CHECK(t.AddColumn("country", std::move(countries)).ok());
  DUST_CHECK(t.AddColumn("code", std::move(codes)).ok());
  return t;
}

struct TraceWorkload {
  std::vector<table::Table> lake_storage;
  std::vector<table::Table> queries;
  std::unique_ptr<search::TupleSearch> search;
};

const TraceWorkload& Workload() {
  static const TraceWorkload* workload = [] {
    auto* w = new TraceWorkload();
    for (size_t t = 0; t < 32; ++t) {
      w->lake_storage.push_back(
          MakeWordTable("lake" + std::to_string(t), 40, 500 + t));
    }
    for (size_t q = 0; q < 32; ++q) {
      w->queries.push_back(MakeWordTable("q" + std::to_string(q), 6, 9000 + q));
    }
    w->search =
        std::make_unique<search::TupleSearch>(bench::MakeBenchEncoder());
    std::vector<const table::Table*> lake;
    for (const table::Table& t : w->lake_storage) lake.push_back(&t);
    w->search->IndexLake(lake);
    return w;
  }();
  return *workload;
}

void RunClosedLoop(size_t clients, size_t total,
                   const std::function<void(size_t)>& one_request) {
  std::atomic<size_t> next{0};
  std::vector<std::thread> fleet;
  fleet.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    fleet.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < total; i = next.fetch_add(1)) {
        one_request(i);
      }
    });
  }
  for (std::thread& t : fleet) t.join();
}

/// Closed-loop QPS through the QueryServer at sample rate 0 or 1. The two
/// runs share workload, thread count, and batching config, so the QPS
/// ratio isolates tracing's cost. items_per_second is QPS.
void BM_TraceQueryServer(benchmark::State& state) {
  const bool sampled = state.range(0) != 0;
  const TraceWorkload& w = Workload();
  serve::QueryServerOptions options;
  options.threads = 4;
  options.batch_window_us = 200;
  options.max_batch = 32;
  options.queue_capacity = 256;
  options.trace_sample_rate = sampled ? 1.0 : 0.0;
  serve::QueryServer server(w.search.get(), options);
  for (auto _ : state) {
    RunClosedLoop(kClients, kRequestsPerIteration, [&](size_t i) {
      const table::Table& query = w.queries[i % w.queries.size()];
      auto result = server.Submit(query, kK).get();
      benchmark::DoNotOptimize(result.ok());
    });
  }
  server.Shutdown();
  const serve::QueryServerStats stats = server.stats();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRequestsPerIteration));
  state.counters["p99_ms"] = stats.p99_ms;
  state.counters["spans_recorded"] = static_cast<double>(
      obs::SpanCollector::Global().recorded_total());
  state.SetLabel(sampled ? "sample=1" : "sample=0");
}
BENCHMARK(BM_TraceQueryServer)
    ->ArgNames({"sample"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Unit cost of one span: sampled = 2 clock reads + a name copy + a striped
/// ring insert; unsampled = one thread-local read. Both paths in one
/// benchmark keep the comparison honest.
void BM_TraceSpanOverhead(benchmark::State& state) {
  const bool sampled = state.range(0) != 0;
  obs::SpanCollector collector(obs::SpanCollector::kDefaultCapacity,
                               obs::SpanCollector::kDefaultStripes);
  obs::ScopedTraceContext scope(
      obs::TraceContext{obs::NewTraceId(), obs::NewSpanId(), sampled});
  for (auto _ : state) {
    obs::Span span("bench_section", &collector);
    benchmark::DoNotOptimize(span.recording());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(sampled ? "sampled" : "unsampled");
}
BENCHMARK(BM_TraceSpanOverhead)->ArgNames({"sample"})->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
