// Distance-function sweep (Sec. 6.4.1): the paper notes that experiments
// with Manhattan and Euclidean distances show the same relative performance
// of all baselines as cosine. This bench verifies that claim: per-query
// win counts of GMC / CLT / DUST under each metric.
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "datagen/ugen_generator.h"
#include "diversify/clt.h"
#include "diversify/dust_diversifier.h"
#include "diversify/gmc.h"
#include "diversify/metrics.h"

using namespace dust;

int main() {
  bench::PrintHeader(
      "Distance-function sweep (Sec. 6.4.1): relative performance under "
      "cosine / Euclidean / Manhattan");

  datagen::UgenConfig config;
  config.num_queries = 10;
  datagen::Benchmark benchmark = datagen::GenerateUgen(config);
  auto encoder = bench::MakeBenchEncoder(48);
  const size_t k = 30;

  for (la::Metric metric : {la::Metric::kCosine, la::Metric::kEuclidean,
                            la::Metric::kManhattan}) {
    std::map<std::string, size_t> min_wins;
    std::map<std::string, size_t> avg_wins;
    size_t queries_run = 0;
    for (size_t q = 0; q < benchmark.queries.size(); ++q) {
      bench::EncodedQueryWorkload workload =
          bench::EncodeWorkload(benchmark, q, *encoder);
      if (workload.lake.size() < k) continue;
      ++queries_run;
      diversify::DiversifyInput input;
      input.query = &workload.query;
      input.lake = &workload.lake;
      input.table_of = &workload.table_of;
      input.metric = metric;

      std::vector<std::pair<std::string,
                            std::unique_ptr<diversify::Diversifier>>> methods;
      methods.emplace_back("GMC", std::make_unique<diversify::GmcDiversifier>());
      methods.emplace_back("CLT", std::make_unique<diversify::CltDiversifier>());
      methods.emplace_back("DUST",
                           std::make_unique<diversify::DustDiversifier>());
      std::string best_min;
      std::string best_avg;
      double best_min_score = -1.0;
      double best_avg_score = -1.0;
      for (auto& [label, method] : methods) {
        std::vector<size_t> selected = method->SelectDiverse(input, k);
        std::vector<la::Vec> points;
        for (size_t i : selected) points.push_back(workload.lake[i]);
        diversify::DiversityScores scores =
            diversify::ScoreDiversity(workload.query, points, metric);
        if (scores.min > best_min_score) {
          best_min_score = scores.min;
          best_min = label;
        }
        if (scores.average > best_avg_score) {
          best_avg_score = scores.average;
          best_avg = label;
        }
      }
      ++min_wins[best_min];
      ++avg_wins[best_avg];
    }
    std::printf("\n--- metric: %s (%zu queries) ---\n", la::MetricName(metric),
                queries_run);
    bench::PrintRow({"Method", "#Average", "#Min"});
    for (const char* label : {"GMC", "CLT", "DUST"}) {
      bench::PrintRow({label, std::to_string(avg_wins[label]),
                       std::to_string(min_wins[label])});
    }
  }

  std::printf(
      "\nPaper claim: the relative performance of all baselines under\n"
      "Manhattan/Euclidean matches cosine (DUST dominates Min everywhere).\n");
  return 0;
}
