// bench_mutation — tombstone-filtered search vs a rebuilt index
// (google-benchmark). The CI bench-smoke job runs BM_Mutation* with
// --benchmark_out=BENCH_mutation.json and gates on the mutation-quality
// counters (mutation-quality step): at 10% deleted, recall@10 of the
// tombstoned HNSW index must stay within 0.01 of an index rebuilt from
// scratch over the survivors, and tombstone-filtered search must keep
// >= 0.7x the clean index's QPS.
//
//   - BM_MutationSearch/<pct>: queries an HNSW index after tombstoning
//     <pct>% of its vectors via RemoveAll — the delete path mutable lakes
//     actually take (no rebuild);
//   - the rebuild oracle (an HNSW built over only the survivors) is scored
//     once per fraction and exported as the rebuild_recall_at_10 counter.
//
// Recall is measured against the exact top-10 over the survivors (a flat
// scan), so both the tombstoned and rebuilt index are graded by the same
// ground truth.
#include <benchmark/benchmark.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "index/flat_index.h"
#include "index/vector_index.h"
#include "util/rng.h"
#include "util/status.h"

using namespace dust;

namespace {

constexpr size_t kNumVectors = 5000;
constexpr size_t kDim = 32;
constexpr size_t kQueries = 50;
constexpr size_t kTopK = 10;

std::vector<la::Vec> RandomUnitVectors(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Vec> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    la::Vec v(kDim);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    la::NormalizeInPlace(&v);
    out.push_back(std::move(v));
  }
  return out;
}

std::unique_ptr<index::VectorIndex> MakeHnsw() {
  return index::MakeVectorIndex("hnsw", kDim, la::Metric::kCosine,
                                index::IndexOptions{});
}

/// Fraction of `truth`'s ids that `hits` recovered, averaged over queries.
double Recall(const std::vector<std::vector<index::SearchHit>>& truth,
              const std::vector<std::vector<index::SearchHit>>& hits) {
  double found = 0.0, possible = 0.0;
  for (size_t q = 0; q < truth.size(); ++q) {
    std::set<size_t> expected;
    for (const index::SearchHit& h : truth[q]) expected.insert(h.id);
    possible += static_cast<double>(expected.size());
    for (const index::SearchHit& h : hits[q]) {
      if (expected.count(h.id) > 0) found += 1.0;
    }
  }
  return possible == 0.0 ? 0.0 : found / possible;
}

struct MutationWorkload {
  std::unique_ptr<index::VectorIndex> tombstoned;  // deletes via RemoveAll
  std::vector<la::Vec> queries;
  double recall_at_10 = 0.0;          // tombstoned index vs exact survivors
  double rebuild_recall_at_10 = 0.0;  // rebuilt-over-survivors oracle
  size_t live = 0;
};

/// Workloads keyed by delete percentage; built once, shared across
/// iterations. All fractions share one vector set and query pool so the
/// only variable is how many tombstones the search has to skip.
const MutationWorkload& Workload(size_t delete_pct) {
  static auto* cache = new std::vector<std::pair<size_t, MutationWorkload*>>();
  for (const auto& entry : *cache) {
    if (entry.first == delete_pct) return *entry.second;
  }
  auto* w = new MutationWorkload();
  const auto vectors = RandomUnitVectors(kNumVectors, 42);
  w->queries = RandomUnitVectors(kQueries, 4242);

  Rng rng(1000 + delete_pct);
  const std::vector<size_t> removed = rng.SampleWithoutReplacement(
      kNumVectors, kNumVectors * delete_pct / 100);
  std::vector<uint8_t> dead(kNumVectors, 0);
  for (size_t id : removed) dead[id] = 1;

  w->tombstoned = MakeHnsw();
  w->tombstoned->AddAll(vectors);
  DUST_CHECK(w->tombstoned->RemoveAll(removed) == removed.size());
  w->live = w->tombstoned->live_size();

  // Ground truth and the rebuild oracle live on survivor-local ids; map
  // the tombstoned index's global ids down before grading.
  index::FlatIndex exact(kDim, la::Metric::kCosine);
  auto rebuilt = MakeHnsw();
  std::vector<size_t> survivor_of(kNumVectors, 0);
  for (size_t id = 0, next = 0; id < kNumVectors; ++id) {
    if (dead[id]) continue;
    survivor_of[id] = next++;
    exact.Add(vectors[id]);
    rebuilt->Add(vectors[id]);
  }
  const auto truth = exact.SearchBatch(w->queries, kTopK);
  auto filtered = w->tombstoned->SearchBatch(w->queries, kTopK);
  for (auto& hits : filtered) {
    for (index::SearchHit& h : hits) h.id = survivor_of[h.id];
  }
  w->recall_at_10 = Recall(truth, filtered);
  w->rebuild_recall_at_10 =
      Recall(truth, rebuilt->SearchBatch(w->queries, kTopK));

  cache->emplace_back(delete_pct, w);
  return *w;
}

void BM_MutationSearch(benchmark::State& state) {
  const size_t delete_pct = static_cast<size_t>(state.range(0));
  const MutationWorkload& w = Workload(delete_pct);
  size_t q = 0;
  for (auto _ : state) {
    const auto hits =
        w.tombstoned->Search(w.queries[q++ % w.queries.size()], kTopK);
    benchmark::DoNotOptimize(hits.data());
  }
  state.counters["deleted_pct"] = static_cast<double>(delete_pct);
  state.counters["live_vectors"] = static_cast<double>(w.live);
  state.counters["recall_at_10"] = w.recall_at_10;
  state.counters["rebuild_recall_at_10"] = w.rebuild_recall_at_10;
  state.SetLabel("hnsw search skipping " + std::to_string(delete_pct) +
                 "% tombstones");
}
BENCHMARK(BM_MutationSearch)
    ->Arg(0)
    ->Arg(10)
    ->Arg(30)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
