// Fig. 6 (accuracy table) — unionable tuple representation accuracy on the
// TUS fine-tuning benchmark test split.
//
// Methods: pre-trained BERT / RoBERTa / sBERT (frozen encoders, threshold
// 0.7), Ditto (same architecture fine-tuned on *entity matching* pairs),
// DUST (BERT) and DUST (RoBERTa) fine-tuned on unionability pairs.
// Paper: 0.50 / 0.50 / 0.56 / 0.66 / 0.84 / 0.85.
#include "bench/bench_util.h"
#include "datagen/finetune_pairs.h"
#include "datagen/tus_generator.h"
#include "nn/trainer.h"
#include "util/stopwatch.h"

using namespace dust;

namespace {

float PretrainedAccuracy(embed::ModelFamily family,
                         const std::vector<nn::TuplePair>& test, float threshold) {
  auto encoder = std::shared_ptr<embed::TextEmbedder>(
      embed::MakeEmbedder(family, embed::DefaultConfigFor(family, 64)));
  embed::PretrainedTupleEncoder tuple_encoder(encoder);
  return nn::PairAccuracy(tuple_encoder, test, threshold);
}

nn::DustModelConfig ModelConfig(embed::ModelFamily family) {
  nn::DustModelConfig config;
  config.family = family;
  config.feature_dim = 2048;
  config.hidden_dim = 64;
  config.embedding_dim = 64;
  config.dropout_p = 0.1f;
  return config;
}

float TrainedAccuracy(embed::ModelFamily family, const nn::PairDataset& data,
                      const char* label) {
  nn::DustModel model(ModelConfig(family));
  nn::TrainerConfig trainer;
  trainer.max_epochs = 30;
  trainer.patience = 6;
  trainer.batch_size = 32;
  Stopwatch watch;
  nn::TrainReport report =
      nn::TrainDustModel(&model, data.train, data.validation, trainer);
  float threshold = nn::SelectThreshold(model, data.validation);
  float accuracy = nn::PairAccuracy(model, data.test, threshold);
  std::printf("  [%s: %zu epochs, best val loss %.4f, threshold %.2f, "
              "train %.1fs]\n",
              label, report.epochs_run, report.best_validation_loss, threshold,
              watch.Seconds());
  return accuracy;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 6 reproduction: unionable tuple representation accuracy");

  datagen::TusConfig tus;
  tus.num_queries = 10;
  tus.unionable_per_query = 8;
  tus.base_rows = 120;
  datagen::Benchmark benchmark = datagen::GenerateTus(tus);

  datagen::FinetunePairsConfig pairs_config;
  pairs_config.total_pairs = 4000;  // 60K in the paper, scaled (DESIGN.md §1)
  nn::PairDataset unionability =
      datagen::BuildFinetunePairs(benchmark, pairs_config);
  nn::PairDataset entity =
      datagen::BuildEntityMatchingPairs(benchmark, pairs_config);
  std::printf("pairs: train %zu / val %zu / test %zu\n",
              unionability.train.size(), unionability.validation.size(),
              unionability.test.size());

  // The fixed 0.7 cosine-distance threshold of Sec. 6.3.1 for the frozen
  // encoders.
  const float kThreshold = 0.7f;
  float bert = PretrainedAccuracy(embed::ModelFamily::kBert,
                                  unionability.test, kThreshold);
  float roberta = PretrainedAccuracy(embed::ModelFamily::kRoberta,
                                     unionability.test, kThreshold);
  float sbert = PretrainedAccuracy(embed::ModelFamily::kSbert,
                                   unionability.test, kThreshold);

  // Ditto: same trainable architecture, fine-tuned on entity-matching
  // labels, evaluated on the unionability test set.
  nn::DustModel ditto(ModelConfig(embed::ModelFamily::kRoberta));
  nn::TrainerConfig ditto_trainer;
  ditto_trainer.max_epochs = 30;
  ditto_trainer.patience = 6;
  Stopwatch ditto_watch;
  nn::TrainDustModel(&ditto, entity.train, entity.validation, ditto_trainer);
  // Ditto is trained on entity matching, but evaluated as a unionability
  // classifier with its threshold chosen on the unionability validation
  // split (its best shot, as in the paper's baseline treatment).
  float ditto_threshold = nn::SelectThreshold(ditto, unionability.validation);
  float ditto_acc = nn::PairAccuracy(ditto, unionability.test, ditto_threshold);
  std::printf("  [Ditto: threshold %.2f, train %.1fs]\n", ditto_threshold,
              ditto_watch.Seconds());

  float dust_bert = TrainedAccuracy(embed::ModelFamily::kBert, unionability,
                                    "DUST (BERT)");
  float dust_roberta = TrainedAccuracy(embed::ModelFamily::kRoberta,
                                       unionability, "DUST (RoBERTa)");

  std::printf("\n");
  bench::PrintRow({"BERT", "RoBERTa", "sBERT", "Ditto", "DUST(BERT)",
                   "DUST(RoBERTa)"});
  bench::PrintRow({bench::Fmt("%.2f", bert), bench::Fmt("%.2f", roberta),
                   bench::Fmt("%.2f", sbert), bench::Fmt("%.2f", ditto_acc),
                   bench::Fmt("%.2f", dust_bert),
                   bench::Fmt("%.2f", dust_roberta)});
  std::printf(
      "\nPaper:  0.50   0.50   0.56   0.66   0.84   0.85\n"
      "Shape: pre-trained ~ coin toss < Ditto < both DUST variants; DUST\n"
      "beats the best baseline by >= 15%%.\n");
  return 0;
}
