// Fig. 10 (Appendix A.2.1) — DUST embedding robustness to column order.
//
// Encodes test tuples with a trained DUST (RoBERTa) model, randomly
// permutes each tuple's column order, re-encodes, and reports the
// distribution of cosine similarities (paper: mean 0.98, std 0.04).
#include <cmath>

#include "bench/bench_util.h"
#include "datagen/finetune_pairs.h"
#include "datagen/tus_generator.h"
#include "la/distance.h"
#include "nn/trainer.h"
#include "table/serialize.h"

using namespace dust;

int main() {
  bench::PrintHeader(
      "Fig. 10 reproduction: cosine(original, column-shuffled) distribution");

  datagen::TusConfig tus;
  tus.num_queries = 8;
  tus.base_rows = 80;
  datagen::Benchmark benchmark = datagen::GenerateTus(tus);
  datagen::FinetunePairsConfig pairs_config;
  pairs_config.total_pairs = 1500;
  nn::PairDataset pairs = datagen::BuildFinetunePairs(benchmark, pairs_config);

  nn::DustModelConfig model_config;
  model_config.feature_dim = 2048;
  model_config.hidden_dim = 64;
  model_config.embedding_dim = 64;
  nn::DustModel model(model_config);
  nn::TrainerConfig trainer;
  trainer.max_epochs = 15;
  trainer.patience = 4;
  nn::TrainDustModel(&model, pairs.train, pairs.validation, trainer);

  // Shuffle column order of sampled lake tuples; compare embeddings.
  Rng rng(2025);
  std::vector<double> sims;
  for (const datagen::GeneratedTable& t : benchmark.lake) {
    for (size_t r = 0; r < t.data.num_rows(); r += 7) {
      std::vector<std::string> headers = t.data.ColumnNames();
      std::vector<table::Value> values = t.data.Row(r);
      std::string original = table::SerializeTuple(headers, values);

      std::vector<size_t> perm = rng.Permutation(headers.size());
      std::vector<std::string> shuffled_headers;
      std::vector<table::Value> shuffled_values;
      for (size_t j : perm) {
        shuffled_headers.push_back(headers[j]);
        shuffled_values.push_back(values[j]);
      }
      std::string shuffled =
          table::SerializeTuple(shuffled_headers, shuffled_values);

      sims.push_back(la::CosineSimilarity(model.EncodeSerialized(original),
                                          model.EncodeSerialized(shuffled)));
    }
  }

  double mean = 0.0;
  for (double s : sims) mean += s;
  mean /= static_cast<double>(sims.size());
  double var = 0.0;
  for (double s : sims) var += (s - mean) * (s - mean);
  var /= static_cast<double>(sims.size());

  // Histogram over [0, 1].
  std::vector<size_t> hist(10, 0);
  for (double s : sims) {
    int bin = static_cast<int>(std::max(0.0, std::min(0.999, s)) * 10);
    ++hist[static_cast<size_t>(bin)];
  }
  std::printf("tuples: %zu   mean similarity: %.3f   std: %.3f\n", sims.size(),
              mean, std::sqrt(var));
  std::printf("histogram [0.0-1.0, 10 bins]: ");
  for (size_t h : hist) std::printf("%zu ", h);
  std::printf(
      "\n\nPaper: mean 0.98, std 0.04 — embeddings are robust to column\n"
      "permutations. Expected shape: mean near 1, mass in the top bins.\n");
  return 0;
}
