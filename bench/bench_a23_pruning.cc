// Appendix A.2.3 — pre-diversification pruning influence.
//
// Starts from ~8K unionable tuples and compares DUST's per-query runtime
// and effectiveness with pruning (s = 2500) vs without. Paper: 990s -> 85s
// per query without hurting effectiveness.
#include "bench/bench_util.h"
#include "diversify/dust_diversifier.h"
#include "diversify/metrics.h"
#include "util/stopwatch.h"

using namespace dust;

int main() {
  bench::PrintHeader("A.2.3 reproduction: pruning influence on DUST");
  const size_t kDim = 48;
  const size_t kK = 100;
  std::vector<la::Vec> query = bench::SyntheticTupleCloud(40, kDim, 6, 3);
  std::vector<la::Vec> lake = bench::SyntheticTupleCloud(8000, kDim, 40, 5);
  // Provenance: 20 synthetic tables of 400 tuples each (pruning is
  // per-table, Sec. 5.1).
  std::vector<size_t> table_of(lake.size());
  for (size_t i = 0; i < lake.size(); ++i) table_of[i] = i / 400;

  diversify::DiversifyInput input;
  input.query = &query;
  input.lake = &lake;
  input.table_of = &table_of;

  bench::PrintRow({"Config", "Time(s)", "AvgDiv", "MinDiv"});
  for (bool pruning : {true, false}) {
    diversify::DustDiversifierConfig config;
    config.enable_pruning = pruning;
    config.prune_s = 2500;
    diversify::DustDiversifier dust(config);
    Stopwatch watch;
    std::vector<size_t> selected = dust.SelectDiverse(input, kK);
    double seconds = watch.Seconds();
    std::vector<la::Vec> points;
    for (size_t i : selected) points.push_back(lake[i]);
    diversify::DiversityScores scores =
        diversify::ScoreDiversity(query, points, input.metric);
    bench::PrintRow({pruning ? "pruned s=2500" : "no pruning (8000)",
                     bench::Fmt("%.3f", seconds),
                     bench::Fmt("%.4f", scores.average),
                     bench::Fmt("%.4f", scores.min)});
  }

  std::printf(
      "\nPaper shape (A.2.3): pruning cuts per-query time ~11x (990s->85s)\n"
      "without hurting effectiveness; expect a large speedup here with\n"
      "near-identical diversity scores.\n");
  return 0;
}
