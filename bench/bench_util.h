// Shared helpers for the experiment harness binaries (one per paper
// table/figure — see DESIGN.md §3). Not part of the public library API.
#ifndef DUST_BENCH_BENCH_UTIL_H_
#define DUST_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "datagen/base_tables.h"
#include "embed/tuple_encoder.h"
#include "la/vector_ops.h"
#include "util/rng.h"

namespace dust::bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return std::string(buf);
}

/// Synthetic "unionable tuple" embedding cloud: a mixture of Gaussian
/// clusters on the unit sphere (used by the runtime experiments where only
/// the geometry matters, Fig. 7 / A.2.3).
inline std::vector<la::Vec> SyntheticTupleCloud(size_t n, size_t dim,
                                                size_t clusters,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Vec> centers;
  for (size_t c = 0; c < clusters; ++c) {
    la::Vec v(dim);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    la::NormalizeInPlace(&v);
    centers.push_back(v);
  }
  std::vector<la::Vec> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const la::Vec& center = centers[rng.NextBelow(clusters)];
    la::Vec v = center;
    for (float& x : v) x += 0.25f * static_cast<float>(rng.NextGaussian());
    la::NormalizeInPlace(&v);
    out.push_back(std::move(v));
  }
  return out;
}

/// Noiseless pretrained tuple encoder used by benches that do not train.
inline std::shared_ptr<embed::TupleEncoder> MakeBenchEncoder(size_t dim = 48) {
  embed::EmbedderConfig config;
  config.dim = dim;
  config.noise_level = 0.0f;
  return std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(
          embed::MakeEmbedder(embed::ModelFamily::kRoberta, config)));
}

/// Encodes every row of every unionable lake table of query q (serialized
/// with their own headers) plus the query rows; returns table provenance.
struct EncodedQueryWorkload {
  std::vector<la::Vec> query;
  std::vector<la::Vec> lake;
  std::vector<size_t> table_of;
};

inline EncodedQueryWorkload EncodeWorkload(const datagen::Benchmark& benchmark,
                                           size_t q,
                                           const embed::TupleEncoder& encoder) {
  EncodedQueryWorkload out;
  out.query = encoder.EncodeTableRows(benchmark.queries[q].data);
  for (size_t t : benchmark.unionable[q]) {
    std::vector<la::Vec> rows = encoder.EncodeTableRows(benchmark.lake[t].data);
    for (auto& r : rows) {
      out.lake.push_back(std::move(r));
      out.table_of.push_back(t);
    }
  }
  return out;
}

}  // namespace dust::bench

#endif  // DUST_BENCH_BENCH_UTIL_H_
