// Table 2 — tuple diversification effectiveness and efficiency.
//
// For each query of the SANTOS-style (k=100) and UGEN-style (k=30)
// benchmarks, runs GMC, GNE (UGEN only — it does not scale), CLT and DUST
// on the same unionable-tuple embeddings, counts per-query wins on Average
// Diversity (Eq. 1) and Min Diversity (Eq. 2), and reports mean per-query
// time. Also runs the random-baseline comparison of Sec. 6.4.3.
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "datagen/santos_generator.h"
#include "datagen/ugen_generator.h"
#include "diversify/clt.h"
#include "diversify/dust_diversifier.h"
#include "diversify/gmc.h"
#include "diversify/gne.h"
#include "diversify/metrics.h"
#include "diversify/random_div.h"
#include "util/stopwatch.h"

using namespace dust;

namespace {

struct MethodTally {
  size_t avg_wins = 0;
  size_t min_wins = 0;
  double total_seconds = 0.0;
  size_t runs = 0;
};

struct QueryResult {
  double avg = 0.0;
  double min = 0.0;
  double seconds = 0.0;
};

QueryResult RunOne(diversify::Diversifier* diversifier,
                   const bench::EncodedQueryWorkload& workload, size_t k) {
  diversify::DiversifyInput input;
  input.query = &workload.query;
  input.lake = &workload.lake;
  input.table_of = &workload.table_of;
  Stopwatch watch;
  std::vector<size_t> selected = diversifier->SelectDiverse(input, k);
  QueryResult result;
  result.seconds = watch.Seconds();
  std::vector<la::Vec> points;
  points.reserve(selected.size());
  for (size_t i : selected) points.push_back(workload.lake[i]);
  diversify::DiversityScores scores =
      diversify::ScoreDiversity(workload.query, points, input.metric);
  result.avg = scores.average;
  result.min = scores.min;
  return result;
}

void RunBenchmark(const std::string& name, const datagen::Benchmark& benchmark,
                  size_t k, bool include_gne) {
  auto encoder = bench::MakeBenchEncoder(48);

  std::vector<std::pair<std::string, std::unique_ptr<diversify::Diversifier>>>
      methods;
  methods.emplace_back("GMC", std::make_unique<diversify::GmcDiversifier>());
  if (include_gne) {
    methods.emplace_back("GNE", std::make_unique<diversify::GneDiversifier>());
  }
  methods.emplace_back("CLT", std::make_unique<diversify::CltDiversifier>());
  methods.emplace_back("DUST", std::make_unique<diversify::DustDiversifier>());

  std::map<std::string, MethodTally> tally;
  size_t dust_beats_random_avg = 0;
  size_t dust_beats_random_min = 0;
  size_t queries_run = 0;

  for (size_t q = 0; q < benchmark.queries.size(); ++q) {
    bench::EncodedQueryWorkload workload =
        bench::EncodeWorkload(benchmark, q, *encoder);
    if (workload.lake.size() < k || workload.query.empty()) continue;
    ++queries_run;

    std::string best_avg;
    std::string best_min;
    double best_avg_score = -1.0;
    double best_min_score = -1.0;
    QueryResult dust_result;
    for (auto& [label, method] : methods) {
      QueryResult result = RunOne(method.get(), workload, k);
      MethodTally& t = tally[label];
      t.total_seconds += result.seconds;
      ++t.runs;
      if (result.avg > best_avg_score) {
        best_avg_score = result.avg;
        best_avg = label;
      }
      if (result.min > best_min_score) {
        best_min_score = result.min;
        best_min = label;
      }
      if (label == "DUST") dust_result = result;
    }
    ++tally[best_avg].avg_wins;
    ++tally[best_min].min_wins;

    // Random baseline: best of 5 seeds per metric (Sec. 6.4.3).
    double random_best_avg = -1.0;
    double random_best_min = -1.0;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      diversify::RandomDiversifier random(seed * 17);
      QueryResult r = RunOne(&random, workload, k);
      random_best_avg = std::max(random_best_avg, r.avg);
      random_best_min = std::max(random_best_min, r.min);
    }
    if (dust_result.avg > random_best_avg) ++dust_beats_random_avg;
    if (dust_result.min > random_best_min) ++dust_beats_random_min;
  }

  std::printf("\n--- %s (k=%zu, %zu queries) ---\n", name.c_str(), k,
              queries_run);
  bench::PrintRow({"Method", "#Average", "#Min", "Time(s)"});
  for (auto& [label, method] : methods) {
    const MethodTally& t = tally[label];
    bench::PrintRow({label, std::to_string(t.avg_wins),
                     std::to_string(t.min_wins),
                     bench::Fmt("%.3f", t.runs ? t.total_seconds / t.runs : 0)});
  }
  std::printf("DUST beats best-of-5 random: Average %zu/%zu, Min %zu/%zu\n",
              dust_beats_random_avg, queries_run, dust_beats_random_min,
              queries_run);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 2 reproduction: diversification wins per query + mean time");

  {
    datagen::SantosConfig config;
    config.num_queries = 8;
    config.unionable_per_query = 10;
    config.base_rows = 400;
    RunBenchmark("SANTOS", datagen::GenerateSantos(config), /*k=*/100,
                 /*include_gne=*/false);
  }
  {
    datagen::UgenConfig config;
    config.num_queries = 10;
    RunBenchmark("UGEN-V1", datagen::GenerateUgen(config), /*k=*/30,
                 /*include_gne=*/true);
  }

  std::printf(
      "\nPaper shape (Table 2): DUST wins the most queries on both metrics\n"
      "in both benchmarks (Min especially); GMC is the slowest feasible\n"
      "baseline on SANTOS (DUST >6x faster); GNE is only feasible on\n"
      "UGEN-V1 and loses there; DUST ~ CLT runtime.\n");
  return 0;
}
