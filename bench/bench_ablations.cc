// Ablation benches for DUST's design choices (DESIGN.md §3):
//  (1) cluster representative: medoid (Sec. 5.2) vs random member;
//  (2) linkage criterion: average (paper) vs single/complete/Ward;
//  (3) re-ranking tie-break: average-distance tie-break (Sec. 5.3) on/off.
#include <cmath>
#include <algorithm>

#include "bench/bench_util.h"
#include "cluster/agglomerative.h"
#include "cluster/medoid.h"
#include "diversify/dust_diversifier.h"
#include "diversify/metrics.h"

using namespace dust;

namespace {

diversify::DiversityScores ScoreSelection(
    const std::vector<la::Vec>& query, const std::vector<la::Vec>& lake,
    const std::vector<size_t>& selected) {
  std::vector<la::Vec> points;
  for (size_t i : selected) points.push_back(lake[i]);
  return diversify::ScoreDiversity(query, points, la::Metric::kCosine);
}

// DUST variant that takes a random member instead of the medoid.
std::vector<size_t> DustWithRandomRepresentative(
    const diversify::DiversifyInput& input, size_t k, size_t p,
    uint64_t seed) {
  const std::vector<la::Vec>& lake = *input.lake;
  la::DistanceMatrix distances(lake, input.metric);
  cluster::Dendrogram dendrogram = cluster::AgglomerativeCluster(
      distances, cluster::Linkage::kAverage);
  std::vector<size_t> labels =
      cluster::CutDendrogram(dendrogram, std::min(lake.size(), k * p));
  Rng rng(seed);
  std::vector<size_t> candidates;
  for (const auto& members : cluster::GroupByLabel(labels)) {
    if (members.empty()) continue;
    candidates.push_back(members[rng.NextBelow(members.size())]);
  }
  std::vector<size_t> ranked =
      diversify::RankCandidatesAgainstQuery(input, candidates);
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace

int main() {
  bench::PrintHeader("DUST design-choice ablations");
  const size_t kDim = 48;
  const size_t kK = 50;
  std::vector<la::Vec> query = bench::SyntheticTupleCloud(25, kDim, 5, 41);
  std::vector<la::Vec> lake = bench::SyntheticTupleCloud(1200, kDim, 30, 43);

  diversify::DiversifyInput input;
  input.query = &query;
  input.lake = &lake;

  // (1) medoid vs random representative.
  std::printf("\n(1) cluster representative (Sec. 5.2)\n");
  bench::PrintRow({"Variant", "AvgDiv", "MinDiv"});
  {
    diversify::DustDiversifierConfig config;
    config.prune_s = 1 << 30;
    diversify::DustDiversifier dust(config);
    auto scores = ScoreSelection(query, lake, dust.SelectDiverse(input, kK));
    bench::PrintRow({"medoid", bench::Fmt("%.4f", scores.average),
                     bench::Fmt("%.4f", scores.min)});
    double rnd_avg = 0.0;
    double rnd_min = 0.0;
    const int kTrials = 5;
    for (int trial = 0; trial < kTrials; ++trial) {
      auto s = ScoreSelection(
          query, lake,
          DustWithRandomRepresentative(input, kK, 2, 100 + trial));
      rnd_avg += s.average;
      rnd_min += s.min;
    }
    bench::PrintRow({"random-member", bench::Fmt("%.4f", rnd_avg / kTrials),
                     bench::Fmt("%.4f", rnd_min / kTrials)});
  }

  // (2) linkage sweep.
  std::printf("\n(2) linkage criterion (paper uses average)\n");
  bench::PrintRow({"Linkage", "AvgDiv", "MinDiv"});
  for (cluster::Linkage linkage :
       {cluster::Linkage::kAverage, cluster::Linkage::kComplete,
        cluster::Linkage::kSingle, cluster::Linkage::kWard}) {
    diversify::DustDiversifierConfig config;
    config.prune_s = 1 << 30;
    config.linkage = linkage;
    diversify::DustDiversifier dust(config);
    auto scores = ScoreSelection(query, lake, dust.SelectDiverse(input, kK));
    bench::PrintRow({cluster::LinkageName(linkage),
                     bench::Fmt("%.4f", scores.average),
                     bench::Fmt("%.4f", scores.min)});
  }

  // (3) tie-break on/off: rank with and without the mean-distance
  // tie-break by comparing against a min-only ranking.
  std::printf("\n(3) re-ranking tie-break (Sec. 5.3)\n");
  {
    diversify::DustDiversifierConfig config;
    config.prune_s = 1 << 30;
    diversify::DustDiversifier dust(config);
    std::vector<size_t> with_tiebreak = dust.SelectDiverse(input, kK);
    // Without: quantize min-distances so ties are frequent, then rank by
    // min only (stable order = input order on ties).
    std::vector<std::pair<float, size_t>> ranked;
    for (size_t i = 0; i < lake.size(); ++i) {
      float quantized = std::round(
          diversify::MinDistanceToQuery(input, i) * 20.0f) / 20.0f;
      ranked.push_back({quantized, i});
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    std::vector<size_t> without;
    for (size_t i = 0; i < kK; ++i) without.push_back(ranked[i].second);
    auto s_with = ScoreSelection(query, lake, with_tiebreak);
    auto s_without = ScoreSelection(query, lake, without);
    bench::PrintRow({"Variant", "AvgDiv", "MinDiv"});
    bench::PrintRow({"full DUST rank", bench::Fmt("%.4f", s_with.average),
                     bench::Fmt("%.4f", s_with.min)});
    bench::PrintRow({"min-only (quantized)",
                     bench::Fmt("%.4f", s_without.average),
                     bench::Fmt("%.4f", s_without.min)});
  }

  std::printf(
      "\nExpected: medoid >= random member on Min; average linkage is a\n"
      "solid default; the full DUST ranking beats a min-only ranking that\n"
      "cannot break ties.\n");
  return 0;
}
