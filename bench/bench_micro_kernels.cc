// Micro-benchmarks (google-benchmark) for the hot kernels: distance
// computations, NN-chain clustering, the vector indexes (build, save, load,
// query), and tuple encoding. The CI bench-smoke job runs the BM_Index*
// benchmarks with --benchmark_out=BENCH_index.json and uploads the JSON as
// a per-PR artifact, so the offline-build and online-serve timings are
// tracked across revisions.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "bench/bench_util.h"
#include "cluster/agglomerative.h"
#include "index/flat_index.h"
#include "index/ivf_index.h"
#include "io/index_io.h"
#include "la/distance.h"
#include "la/simd/kernels.h"

using namespace dust;

namespace {

// --- SIMD kernel benchmarks (BM_Kernel*, exported as BENCH_kernels.json) ---
//
// Each benchmark runs once on the scalar backend (arg 1 == 0) and once on
// the dispatched backend (arg 1 == 1; "avx2" on AVX2 hardware, scalar
// otherwise — the label records which). The acceptance gate for this layer
// is >= 2x for AVX2 Dot / DistanceToMany over scalar at dim >= 128.

const la::simd::Kernels& BenchKernels(bool dispatched) {
  return dispatched ? la::simd::Active() : la::simd::ScalarKernels();
}

void BM_KernelDot(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const la::simd::Kernels& ops = BenchKernels(state.range(1) != 0);
  auto points = bench::SyntheticTupleCloud(2, dim, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops.dot(points[0].data(), points[1].data(), dim));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dim));
  state.SetLabel(ops.name);
}
BENCHMARK(BM_KernelDot)->ArgsProduct({{64, 128, 256, 768, 1024}, {0, 1}});

void BM_KernelCosineTerms(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const la::simd::Kernels& ops = BenchKernels(state.range(1) != 0);
  auto points = bench::SyntheticTupleCloud(2, dim, 1, 1);
  float dot = 0.0f, a2 = 0.0f, b2 = 0.0f;
  for (auto _ : state) {
    ops.cosine_terms(points[0].data(), points[1].data(), dim, &dot, &a2, &b2);
    benchmark::DoNotOptimize(dot);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dim));
  state.SetLabel(ops.name);
}
BENCHMARK(BM_KernelCosineTerms)->ArgsProduct({{128, 768}, {0, 1}});

/// One-to-many batch kernel over an 8k-vector base with cached norms — the
/// exact shape of a FlatIndex scan / IVF probe.
void BM_KernelDistanceToMany(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const size_t n = 8192;
  la::simd::ForceScalar(state.range(1) == 0);
  auto base = bench::SyntheticTupleCloud(n, dim, 16, 2);
  la::Vec query = bench::SyntheticTupleCloud(1, dim, 1, 3)[0];
  const std::vector<float> norms = la::NormsOf(base);
  std::vector<float> out;
  for (auto _ : state) {
    la::DistanceToMany(la::Metric::kCosine, query, base, norms, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.SetLabel(la::simd::ActiveName());
  la::simd::ForceScalar(false);
}
BENCHMARK(BM_KernelDistanceToMany)->ArgsProduct({{128, 256}, {0, 1}});

/// Per-candidate baseline for the same scan: one la::Distance call per
/// vector (three passes per cosine pair, no norm cache, no hoisted query
/// norm). The gap to BM_KernelDistanceToMany is the one-vs-many win.
void BM_KernelDistancePairLoop(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const size_t n = 8192;
  la::simd::ForceScalar(state.range(1) == 0);
  auto base = bench::SyntheticTupleCloud(n, dim, 16, 2);
  la::Vec query = bench::SyntheticTupleCloud(1, dim, 1, 3)[0];
  std::vector<float> out(n);
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = la::Distance(la::Metric::kCosine, query, base[i]);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.SetLabel(la::simd::ActiveName());
  la::simd::ForceScalar(false);
}
BENCHMARK(BM_KernelDistancePairLoop)->ArgsProduct({{128, 256}, {0, 1}});

void BM_CosineDistance(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto points = bench::SyntheticTupleCloud(2, dim, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::CosineDistance(points[0], points[1]));
  }
}
BENCHMARK(BM_CosineDistance)->Arg(64)->Arg(256)->Arg(768);

void BM_DistanceMatrix(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto points = bench::SyntheticTupleCloud(n, 64, 8, 2);
  for (auto _ : state) {
    la::DistanceMatrix m(points, la::Metric::kCosine);
    benchmark::DoNotOptimize(m.at(0, n - 1));
  }
}
BENCHMARK(BM_DistanceMatrix)->Arg(200)->Arg(500)->Arg(1000);

void BM_NnChainClustering(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto points = bench::SyntheticTupleCloud(n, 64, 10, 3);
  la::DistanceMatrix matrix(points, la::Metric::kCosine);
  for (auto _ : state) {
    la::DistanceMatrix copy = matrix;
    cluster::Dendrogram d = cluster::AgglomerativeCluster(
        std::move(copy), cluster::Linkage::kAverage);
    benchmark::DoNotOptimize(d.merges.size());
  }
}
BENCHMARK(BM_NnChainClustering)->Arg(200)->Arg(500)->Arg(1000);

constexpr const char* kIndexTypes[] = {"flat", "ivf", "lsh", "hnsw"};

/// Fraction of the exact top-10 the index reproduces, over 20 held-out
/// queries (the acceptance gate for approximate shortlists is >= 0.95).
double RecallAt10(const index::VectorIndex& idx,
                  const std::vector<la::Vec>& points) {
  index::FlatIndex exact(idx.dim(), la::Metric::kCosine);
  exact.AddAll(points);
  size_t found = 0, total = 0;
  for (uint64_t q = 0; q < 20; ++q) {
    la::Vec query = bench::SyntheticTupleCloud(1, idx.dim(), 1, 900 + q)[0];
    std::set<size_t> approx_ids;
    for (const auto& h : idx.Search(query, 10)) approx_ids.insert(h.id);
    for (const auto& h : exact.Search(query, 10)) {
      ++total;
      found += approx_ids.count(h.id);
    }
  }
  return static_cast<double>(found) / static_cast<double>(total);
}

/// Factory wrapper keeping the IVF parameters this benchmark has always
/// used (nlist=32, nprobe=4) instead of IvfConfig's defaults, so timings
/// stay comparable across revisions.
std::unique_ptr<index::VectorIndex> MakeBenchIndex(const std::string& type) {
  if (type == "ivf") {
    index::IvfConfig config;
    config.nlist = 32;
    config.nprobe = 4;
    return std::make_unique<index::IvfFlatIndex>(64, la::Metric::kCosine,
                                                 config);
  }
  return index::MakeVectorIndex(type, 64, la::Metric::kCosine);
}

/// Scratch file shared by the save/load benchmarks.
std::string BenchIndexPath() {
  return (std::filesystem::temp_directory_path() / "dust_bench_index.bin")
      .string();
}

void BM_IndexBuild(benchmark::State& state) {
  const char* type = kIndexTypes[state.range(0)];
  size_t n = static_cast<size_t>(state.range(1));
  auto points = bench::SyntheticTupleCloud(n, 64, 16, 4);
  for (auto _ : state) {
    auto idx = MakeBenchIndex(type);
    idx->AddAll(points);
    // Include IVF's k-means in the offline build cost instead of deferring
    // it to the first (timed) query.
    if (auto* ivf = dynamic_cast<index::IvfFlatIndex*>(idx.get())) {
      ivf->Train();
    }
    benchmark::DoNotOptimize(idx->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.SetLabel(type);
}
BENCHMARK(BM_IndexBuild)->ArgsProduct({{0, 1, 2, 3}, {2000, 10000}});

void BM_IndexSave(benchmark::State& state) {
  const char* type = kIndexTypes[state.range(0)];
  auto points = bench::SyntheticTupleCloud(10000, 64, 16, 4);
  auto idx = MakeBenchIndex(type);
  idx->AddAll(points);
  // Warm IVF's lazy training outside the timed loop (Save would otherwise
  // fold the one-time k-means into the first iteration).
  benchmark::DoNotOptimize(idx->Search(points[0], 1).size());
  const std::string path = BenchIndexPath();
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx->Save(path).ok());
  }
  std::error_code ec;
  state.counters["file_bytes"] = static_cast<double>(
      std::filesystem::file_size(path, ec));
  std::filesystem::remove(path, ec);
  state.SetLabel(type);
}
BENCHMARK(BM_IndexSave)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_IndexLoad(benchmark::State& state) {
  const char* type = kIndexTypes[state.range(0)];
  auto points = bench::SyntheticTupleCloud(10000, 64, 16, 4);
  auto idx = MakeBenchIndex(type);
  idx->AddAll(points);
  const std::string path = BenchIndexPath();
  if (!idx->Save(path).ok()) {
    state.SkipWithError("cannot write bench index file");
    return;
  }
  for (auto _ : state) {
    auto loaded = io::LoadIndex(path);
    benchmark::DoNotOptimize(loaded.ok());
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
  state.SetLabel(type);
}
BENCHMARK(BM_IndexLoad)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_IndexSearch(benchmark::State& state) {
  const char* type = kIndexTypes[state.range(0)];
  size_t n = static_cast<size_t>(state.range(1));
  auto points = bench::SyntheticTupleCloud(n, 64, 16, 4);
  auto idx = MakeBenchIndex(type);
  idx->AddAll(points);
  la::Vec query = bench::SyntheticTupleCloud(1, 64, 1, 5)[0];
  // Warm any lazy training outside the timed loop.
  benchmark::DoNotOptimize(idx->Search(query, 10).size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx->Search(query, 10).size());
  }
  state.counters["recall@10"] = RecallAt10(*idx, points);
  state.SetLabel(type);
}
BENCHMARK(BM_IndexSearch)
    ->ArgsProduct({{0, 1, 2, 3}, {2000, 10000}});  // flat, ivf, lsh, hnsw

void BM_IndexSearchBatch(benchmark::State& state) {
  const char* type = kIndexTypes[state.range(0)];
  auto points = bench::SyntheticTupleCloud(10000, 64, 16, 4);
  auto idx = MakeBenchIndex(type);
  idx->AddAll(points);
  std::vector<la::Vec> queries = bench::SyntheticTupleCloud(64, 64, 8, 5);
  benchmark::DoNotOptimize(idx->SearchBatch(queries, 10).size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx->SearchBatch(queries, 10).size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
  state.SetLabel(type);
}
BENCHMARK(BM_IndexSearchBatch)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_TupleEncoding(benchmark::State& state) {
  auto encoder = bench::MakeBenchEncoder(64);
  std::string serialized =
      "[CLS] Park Name Chippewa Park [SEP] City Brandon, MN [SEP] Country "
      "USA [SEP] Supervisor Tim Erickson [SEP]";
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder->EncodeSerialized(serialized).size());
  }
}
BENCHMARK(BM_TupleEncoding);

}  // namespace

BENCHMARK_MAIN();
