// Micro-benchmarks (google-benchmark) for the hot kernels: distance
// computations, NN-chain clustering, the vector indexes, and tuple
// encoding.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "cluster/agglomerative.h"
#include "index/flat_index.h"
#include "index/ivf_index.h"
#include "index/lsh_index.h"
#include "la/distance.h"

using namespace dust;

namespace {

void BM_CosineDistance(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto points = bench::SyntheticTupleCloud(2, dim, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::CosineDistance(points[0], points[1]));
  }
}
BENCHMARK(BM_CosineDistance)->Arg(64)->Arg(256)->Arg(768);

void BM_DistanceMatrix(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto points = bench::SyntheticTupleCloud(n, 64, 8, 2);
  for (auto _ : state) {
    la::DistanceMatrix m(points, la::Metric::kCosine);
    benchmark::DoNotOptimize(m.at(0, n - 1));
  }
}
BENCHMARK(BM_DistanceMatrix)->Arg(200)->Arg(500)->Arg(1000);

void BM_NnChainClustering(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto points = bench::SyntheticTupleCloud(n, 64, 10, 3);
  la::DistanceMatrix matrix(points, la::Metric::kCosine);
  for (auto _ : state) {
    la::DistanceMatrix copy = matrix;
    cluster::Dendrogram d = cluster::AgglomerativeCluster(
        std::move(copy), cluster::Linkage::kAverage);
    benchmark::DoNotOptimize(d.merges.size());
  }
}
BENCHMARK(BM_NnChainClustering)->Arg(200)->Arg(500)->Arg(1000);

void BM_IndexSearch(benchmark::State& state) {
  size_t which = static_cast<size_t>(state.range(0));
  auto points = bench::SyntheticTupleCloud(5000, 64, 16, 4);
  std::unique_ptr<index::VectorIndex> idx;
  if (which == 0) {
    idx = std::make_unique<index::FlatIndex>(64, la::Metric::kCosine);
  } else if (which == 1) {
    index::IvfConfig config;
    config.nlist = 32;
    config.nprobe = 4;
    idx = std::make_unique<index::IvfFlatIndex>(64, la::Metric::kCosine, config);
  } else {
    idx = std::make_unique<index::LshIndex>(64, la::Metric::kCosine);
  }
  idx->AddAll(points);
  la::Vec query = bench::SyntheticTupleCloud(1, 64, 1, 5)[0];
  // Warm any lazy training outside the timed loop.
  benchmark::DoNotOptimize(idx->Search(query, 10).size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx->Search(query, 10).size());
  }
}
BENCHMARK(BM_IndexSearch)->Arg(0)->Arg(1)->Arg(2);  // flat, ivf, lsh

void BM_TupleEncoding(benchmark::State& state) {
  auto encoder = bench::MakeBenchEncoder(64);
  std::string serialized =
      "[CLS] Park Name Chippewa Park [SEP] City Brandon, MN [SEP] Country "
      "USA [SEP] Supervisor Tim Erickson [SEP]";
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder->EncodeSerialized(serialized).size());
  }
}
BENCHMARK(BM_TupleEncoding);

}  // namespace

BENCHMARK_MAIN();
