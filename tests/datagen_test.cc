// Unit tests for src/datagen: domains, base tables, variants, and all four
// benchmark generators plus the fine-tuning pair builder.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "datagen/base_tables.h"
#include "table/union.h"
#include "datagen/finetune_pairs.h"
#include "datagen/imdb_generator.h"
#include "datagen/santos_generator.h"
#include "datagen/tus_generator.h"
#include "datagen/ugen_generator.h"

namespace dust::datagen {
namespace {

TEST(DomainsTest, TwelveDomainsWithUniqueConcepts) {
  const auto& domains = BuiltinDomains();
  EXPECT_EQ(domains.size(), 12u);
  std::set<int> concepts;
  for (const DomainSpec& d : domains) {
    EXPECT_FALSE(d.fields.empty());
    for (const FieldSpec& f : d.fields) {
      EXPECT_TRUE(concepts.insert(f.concept_id).second)
          << "duplicate concept in " << d.name;
      EXPECT_FALSE(f.synonyms.empty());
      EXPECT_EQ(f.synonyms[0], f.header);
    }
    for (const auto& [a, b] : d.related_pairs) {
      EXPECT_LT(a, d.fields.size());
      EXPECT_LT(b, d.fields.size());
    }
  }
}

TEST(DomainsTest, AlternateDomainHasFreshConcepts) {
  const DomainSpec& parks = BuiltinDomains()[0];
  DomainSpec alt = AlternateDomain(parks, 9000);
  EXPECT_EQ(alt.fields.size(), parks.fields.size());
  for (size_t i = 0; i < alt.fields.size(); ++i) {
    EXPECT_GE(alt.fields[i].concept_id, 9000);
    EXPECT_NE(alt.fields[i].concept_id, parks.fields[i].concept_id);
  }
}

TEST(BaseTableTest, GeneratesRequestedShape) {
  Rng rng(1);
  const DomainSpec& movies = BuiltinDomains()[2];
  table::Table t = GenerateBaseTable(movies, 40, &rng);
  EXPECT_EQ(t.num_rows(), 40u);
  EXPECT_EQ(t.num_columns(), movies.fields.size());
  for (size_t j = 0; j < t.num_columns(); ++j) {
    EXPECT_EQ(t.column(j).name, movies.fields[j].header);
    EXPECT_FALSE(t.column(j).AllNull());
  }
}

TEST(BaseTableTest, NumericFieldsWithinRange) {
  Rng rng(2);
  const DomainSpec& parks = BuiltinDomains()[0];
  table::Table t = GenerateBaseTable(parks, 50, &rng);
  int acres = t.ColumnIndex("Area Acres");
  ASSERT_GE(acres, 0);
  for (const table::Value& v : t.column(static_cast<size_t>(acres)).values) {
    ASSERT_TRUE(v.IsNumeric());
    EXPECT_GE(v.AsNumber(), 2.0);
    EXPECT_LE(v.AsNumber(), 900.0);
  }
}

TEST(VariantTest, ProjectionAndSelectionPreserved) {
  Rng rng(3);
  const DomainSpec& parks = BuiltinDomains()[0];
  table::Table base = GenerateBaseTable(parks, 30, &rng);
  GeneratedTable variant =
      MakeVariant(base, parks, 0, {0, 2}, {5, 10, 15}, "v", &rng);
  EXPECT_EQ(variant.data.num_rows(), 3u);
  EXPECT_EQ(variant.data.num_columns(), 2u);
  EXPECT_EQ(variant.column_concepts.size(), 2u);
  EXPECT_EQ(variant.column_concepts[0], parks.fields[0].concept_id);
  EXPECT_EQ(variant.column_concepts[1], parks.fields[2].concept_id);
  // Values come from the base rows.
  EXPECT_EQ(variant.data.at(0, 0), base.at(5, 0));
  EXPECT_EQ(variant.data.at(2, 1), base.at(15, 2));
}

TEST(VariantTest, HeadersComeFromSynonyms) {
  Rng rng(4);
  const DomainSpec& parks = BuiltinDomains()[0];
  table::Table base = GenerateBaseTable(parks, 10, &rng);
  GeneratedTable variant = MakeVariant(base, parks, 0, {1}, {0, 1}, "v", &rng);
  const std::string& header = variant.data.column(0).name;
  const auto& synonyms = parks.fields[1].synonyms;
  EXPECT_NE(std::find(synonyms.begin(), synonyms.end(), header),
            synonyms.end());
}

TEST(TusTest, BenchmarkStructure) {
  TusConfig config;
  config.num_queries = 4;
  config.unionable_per_query = 5;
  config.base_rows = 50;
  Benchmark b = GenerateTus(config);
  EXPECT_EQ(b.queries.size(), 4u);
  ASSERT_EQ(b.unionable.size(), 4u);
  for (size_t q = 0; q < 4; ++q) {
    EXPECT_EQ(b.unionable[q].size(), 5u);
    for (size_t idx : b.unionable[q]) {
      ASSERT_LT(idx, b.lake.size());
      // Unionable tables share the query's base.
      EXPECT_EQ(b.lake[idx].base_id, b.queries[q].base_id);
    }
  }
}

TEST(TusTest, DistractorsFromOtherBases) {
  TusConfig config;
  config.num_queries = 2;
  config.unionable_per_query = 3;
  config.distractors_per_base = 2;
  config.base_rows = 40;
  Benchmark b = GenerateTus(config);
  std::set<size_t> unionable_ids;
  for (const auto& list : b.unionable) {
    for (size_t idx : list) unionable_ids.insert(idx);
  }
  size_t distractors = 0;
  for (size_t i = 0; i < b.lake.size(); ++i) {
    if (!unionable_ids.count(i)) {
      ++distractors;
      EXPECT_NE(b.lake[i].base_id, b.queries[0].base_id);
      EXPECT_NE(b.lake[i].base_id, b.queries[1].base_id);
    }
  }
  EXPECT_EQ(distractors, 2u * (BuiltinDomains().size() - 2));
}

TEST(TusTest, DeterministicGivenSeed) {
  TusConfig config;
  config.num_queries = 2;
  config.base_rows = 30;
  Benchmark a = GenerateTus(config);
  Benchmark b = GenerateTus(config);
  ASSERT_EQ(a.lake.size(), b.lake.size());
  EXPECT_EQ(table::RowKey(a.lake[0].data, 0), table::RowKey(b.lake[0].data, 0));
}

TEST(TusTest, NearCopiesOverlapQueryRows) {
  TusConfig config;
  config.num_queries = 1;
  config.unionable_per_query = 10;
  config.near_copy_fraction = 1.0;  // every unionable table is a near-copy
  config.base_rows = 60;
  Benchmark b = GenerateTus(config);
  // Collect query row keys (first column projected may differ per table; use
  // the entity value which every variant keeps as column 0 value source).
  std::unordered_set<std::string> query_entities;
  for (size_t r = 0; r < b.queries[0].data.num_rows(); ++r) {
    query_entities.insert(b.queries[0].data.at(r, 0).text());
  }
  // Near-copy tables must overlap heavily with the query's entities.
  size_t checked = 0;
  for (size_t idx : b.unionable[0]) {
    const table::Table& t = b.lake[idx].data;
    size_t overlap = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      if (query_entities.count(t.at(r, 0).text())) ++overlap;
    }
    EXPECT_GT(static_cast<double>(overlap) / t.num_rows(), 0.5)
        << "table " << idx;
    ++checked;
  }
  EXPECT_EQ(checked, 10u);
}

TEST(SantosTest, RelatedPairsKeptTogether) {
  SantosConfig config;
  config.num_queries = 4;
  config.base_rows = 60;
  Benchmark b = GenerateSantos(config);
  EXPECT_EQ(b.name, "SANTOS");
  const auto& domains = BuiltinDomains();
  for (const GeneratedTable& t : b.lake) {
    if (t.base_id >= domains.size()) continue;
    const DomainSpec& domain = domains[t.base_id];
    std::set<int> present(t.column_concepts.begin(), t.column_concepts.end());
    for (const auto& [a, c] : domain.related_pairs) {
      bool has_a = present.count(domain.fields[a].concept_id) > 0;
      bool has_c = present.count(domain.fields[c].concept_id) > 0;
      EXPECT_EQ(has_a, has_c) << "related pair split in " << t.data.name();
    }
  }
}

TEST(UgenTest, HardNegativesShareTopicNotConcepts) {
  UgenConfig config;
  config.num_queries = 3;
  Benchmark b = GenerateUgen(config);
  EXPECT_EQ(b.queries.size(), 3u);
  for (size_t q = 0; q < 3; ++q) {
    EXPECT_EQ(b.unionable[q].size(), config.unionable_per_query);
    std::set<size_t> unionable(b.unionable[q].begin(), b.unionable[q].end());
    std::set<int> query_concepts(b.queries[q].column_concepts.begin(),
                                 b.queries[q].column_concepts.end());
    for (size_t i = 0; i < b.lake.size(); ++i) {
      if (unionable.count(i)) {
        // Unionable tables share concepts with the query.
        bool shares = false;
        for (int c : b.lake[i].column_concepts) {
          if (query_concepts.count(c)) shares = true;
        }
        EXPECT_TRUE(shares || b.lake[i].base_id != b.queries[q].base_id);
      } else if (b.lake[i].base_id == 5000 + q) {
        // Same-topic negatives: zero shared concepts.
        for (int c : b.lake[i].column_concepts) {
          EXPECT_EQ(query_concepts.count(c), 0u);
        }
      }
    }
  }
}

TEST(UgenTest, TablesAreSmall) {
  UgenConfig config;
  config.num_queries = 2;
  config.rows_per_table = 10;
  Benchmark b = GenerateUgen(config);
  for (const GeneratedTable& t : b.lake) {
    EXPECT_LE(t.data.num_rows(), 10u);
  }
}

TEST(ImdbTest, SingleQueryWithOverlappingLake) {
  ImdbConfig config;
  config.base_movies = 120;
  config.num_lake_tables = 5;
  config.query_rows = 30;
  config.lake_rows = 40;
  Benchmark b = GenerateImdb(config);
  EXPECT_EQ(b.queries.size(), 1u);
  EXPECT_EQ(b.lake.size(), 5u);
  EXPECT_EQ(b.unionable[0].size(), 5u);
  EXPECT_EQ(b.queries[0].data.num_columns(), 13u);  // 13-column schema
  // Lake tables overlap the query's titles.
  std::unordered_set<std::string> query_titles;
  for (size_t r = 0; r < b.queries[0].data.num_rows(); ++r) {
    query_titles.insert(b.queries[0].data.at(r, 0).text());
  }
  size_t total_overlap = 0;
  for (const GeneratedTable& t : b.lake) {
    for (size_t r = 0; r < t.data.num_rows(); ++r) {
      if (query_titles.count(t.data.at(r, 0).text())) ++total_overlap;
    }
  }
  EXPECT_GT(total_overlap, 10u);
}

TEST(StatsTest, CountsAddUp) {
  TusConfig config;
  config.num_queries = 2;
  config.unionable_per_query = 3;
  config.base_rows = 30;
  Benchmark b = GenerateTus(config);
  Benchmark::Stats stats = b.LakeStats();
  EXPECT_EQ(stats.tables, b.lake.size());
  size_t columns = 0;
  size_t tuples = 0;
  for (const GeneratedTable& t : b.lake) {
    columns += t.data.num_columns();
    tuples += t.data.num_rows();
  }
  EXPECT_EQ(stats.columns, columns);
  EXPECT_EQ(stats.tuples, tuples);
}

TEST(FinetunePairsTest, BalancedAndLabelled) {
  TusConfig tus;
  tus.num_queries = 6;
  tus.unionable_per_query = 6;
  tus.base_rows = 50;
  Benchmark b = GenerateTus(tus);
  FinetunePairsConfig config;
  config.total_pairs = 600;
  nn::PairDataset dataset = BuildFinetunePairs(b, config);
  EXPECT_GT(dataset.train.size(), dataset.validation.size());
  EXPECT_GT(dataset.train.size(), 200u);
  auto check_balance = [](const std::vector<nn::TuplePair>& pairs) {
    if (pairs.empty()) return;
    size_t positives = 0;
    for (const auto& p : pairs) {
      EXPECT_TRUE(p.label == 0 || p.label == 1);
      EXPECT_FALSE(p.serialized_a.empty());
      positives += static_cast<size_t>(p.label);
    }
    double frac = static_cast<double>(positives) / pairs.size();
    EXPECT_GT(frac, 0.3);
    EXPECT_LT(frac, 0.7);
  };
  check_balance(dataset.train);
  check_balance(dataset.validation);
  check_balance(dataset.test);
}

TEST(FinetunePairsTest, NoTupleLeakageAcrossSplits) {
  TusConfig tus;
  tus.num_queries = 6;
  tus.unionable_per_query = 6;
  tus.base_rows = 40;
  Benchmark b = GenerateTus(tus);
  FinetunePairsConfig config;
  config.total_pairs = 400;
  nn::PairDataset dataset = BuildFinetunePairs(b, config);
  auto collect = [](const std::vector<nn::TuplePair>& pairs) {
    std::unordered_set<std::string> tuples;
    for (const auto& p : pairs) {
      tuples.insert(p.serialized_a);
      tuples.insert(p.serialized_b);
    }
    return tuples;
  };
  auto train = collect(dataset.train);
  auto val = collect(dataset.validation);
  auto test = collect(dataset.test);
  // Serialized tuples are split by table; cross-split intersections should
  // be (near) empty — identical serializations can only arise from
  // duplicated rows, which MakeVariant can produce only via near-copies.
  size_t leaks = 0;
  for (const auto& t : val) leaks += train.count(t);
  for (const auto& t : test) leaks += train.count(t);
  EXPECT_LE(leaks, (train.size() + val.size() + test.size()) / 50);
}

TEST(FinetunePairsTest, EntityPairsPositivesArePerturbedCopies) {
  TusConfig tus;
  tus.num_queries = 3;
  tus.base_rows = 30;
  Benchmark b = GenerateTus(tus);
  FinetunePairsConfig config;
  config.total_pairs = 200;
  nn::PairDataset dataset = BuildEntityMatchingPairs(b, config);
  ASSERT_FALSE(dataset.train.empty());
  for (const auto& p : dataset.train) {
    if (p.label == 1) {
      // Positive pairs differ by at most a few characters.
      EXPECT_EQ(p.serialized_a.size(), p.serialized_b.size());
    }
  }
}

}  // namespace
}  // namespace dust::datagen
