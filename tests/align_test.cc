// Unit tests for src/align: Hungarian matching, holistic alignment,
// bipartite alignment, alignment metrics, and the unionable tuple builder.
#include <gtest/gtest.h>

#include "align/alignment_metrics.h"
#include "align/holistic_aligner.h"
#include "align/hungarian.h"
#include "align/tuple_builder.h"
#include "util/rng.h"
#include "embed/column_embedder.h"

namespace dust::align {
namespace {

using table::Table;
using table::Value;

TEST(HungarianTest, SimpleAssignment) {
  // weights: row0 prefers col1, row1 prefers col0.
  std::vector<double> w = {1.0, 5.0,   //
                           6.0, 2.0};
  MatchingResult m = MaxWeightBipartiteMatching(w, 2, 2);
  EXPECT_EQ(m.match_of_row[0], 1);
  EXPECT_EQ(m.match_of_row[1], 0);
  EXPECT_DOUBLE_EQ(m.total_weight, 11.0);
}

TEST(HungarianTest, GreedyWouldBeSuboptimal) {
  // Greedy picks (0,0)=9 then (1,1)=1 -> 10; optimal is 8+7=15.
  std::vector<double> w = {9.0, 8.0,  //
                           7.0, 1.0};
  MatchingResult m = MaxWeightBipartiteMatching(w, 2, 2);
  EXPECT_DOUBLE_EQ(m.total_weight, 15.0);
}

TEST(HungarianTest, RectangularMatrices) {
  std::vector<double> w = {1.0, 9.0, 2.0};  // 1 row, 3 cols
  MatchingResult m = MaxWeightBipartiteMatching(w, 1, 3);
  EXPECT_EQ(m.match_of_row[0], 1);
  std::vector<double> w2 = {1.0, 9.0, 2.0};  // 3 rows, 1 col
  MatchingResult m2 = MaxWeightBipartiteMatching(w2, 3, 1);
  EXPECT_EQ(m2.match_of_row[1], 0);
  EXPECT_EQ(m2.match_of_row[0], -1);
}

TEST(HungarianTest, NegativeWeightsStayUnmatched) {
  std::vector<double> w = {-1.0, -2.0,  //
                           -3.0, -4.0};
  MatchingResult m = MaxWeightBipartiteMatching(w, 2, 2);
  EXPECT_EQ(m.match_of_row[0], -1);
  EXPECT_EQ(m.match_of_row[1], -1);
  EXPECT_DOUBLE_EQ(m.total_weight, 0.0);
}

TEST(HungarianTest, ZeroSize) {
  MatchingResult m = MaxWeightBipartiteMatching({}, 0, 0);
  EXPECT_TRUE(m.match_of_row.empty());
}

// Builds synthetic column embeddings where concept c lives near the unit
// vector e_c. tables_concepts[t][j] = concept of table t's column j.
std::vector<std::vector<la::Vec>> ConceptEmbeddings(
    const std::vector<std::vector<int>>& tables_concepts, size_t dim,
    float noise, dust::Rng* rng) {
  std::vector<std::vector<la::Vec>> out;
  for (const auto& concepts : tables_concepts) {
    std::vector<la::Vec> cols;
    for (int c : concepts) {
      la::Vec v(dim, 0.0f);
      v[static_cast<size_t>(c)] = 1.0f;
      for (float& x : v) x += noise * static_cast<float>(rng->NextGaussian());
      la::NormalizeInPlace(&v);
      cols.push_back(v);
    }
    out.push_back(cols);
  }
  return out;
}

Table TableWithColumns(const std::string& name,
                       const std::vector<std::string>& headers) {
  Table t(name);
  for (const auto& h : headers) t.AddColumn(h);
  // one dummy row so the table is non-empty
  std::vector<Value> row;
  for (size_t j = 0; j < headers.size(); ++j) row.push_back(Value("v"));
  EXPECT_TRUE(t.AddRow(row).ok());
  return t;
}

TEST(HolisticAlignerTest, RecoversConceptClusters) {
  // Query has concepts {0,1,2}; lake table A has {0,1}; lake B has {1,2,3}.
  // Concept 3 has no query column -> discarded cluster.
  dust::Rng rng(9);
  auto embeddings = ConceptEmbeddings({{0, 1, 2}, {0, 1}, {1, 2, 3}}, 8,
                                      0.02f, &rng);
  Table query = TableWithColumns("q", {"A", "B", "C"});
  Table lake_a = TableWithColumns("a", {"A1", "B1"});
  Table lake_b = TableWithColumns("b", {"B2", "C2", "D2"});

  HolisticAligner aligner;
  AlignmentResult result =
      aligner.Align(query, {&lake_a, &lake_b}, embeddings);

  ASSERT_EQ(result.clusters.size(), 3u);
  // Query column 0 aligned with lake A col 0 only.
  EXPECT_EQ(result.clusters[0].query_column, 0u);
  ASSERT_EQ(result.clusters[0].lake_members.size(), 1u);
  EXPECT_EQ(result.clusters[0].lake_members[0], (ColumnId{1, 0}));
  // Query column 1 aligned with A.col1 and B.col0.
  EXPECT_EQ(result.clusters[1].lake_members.size(), 2u);
  // Mappings: lake B's column 2 (concept 3) maps nowhere.
  ASSERT_EQ(result.lake_mappings.size(), 2u);
  EXPECT_EQ(result.lake_mappings[0], (table::ColumnMapping{0, 1, -1}));
  EXPECT_EQ(result.lake_mappings[1], (table::ColumnMapping{-1, 0, 1}));
}

TEST(HolisticAlignerTest, CannotLinkSameTableColumns) {
  // Two query columns with nearly identical embeddings must still end in
  // different clusters (same-table constraint).
  dust::Rng rng(10);
  auto embeddings = ConceptEmbeddings({{0, 0}, {0}}, 4, 0.01f, &rng);
  Table query = TableWithColumns("q", {"A", "B"});
  Table lake = TableWithColumns("l", {"A1"});
  HolisticAligner aligner;
  AlignmentResult result = aligner.Align(query, {&lake}, embeddings);
  // Both query columns present, in separate clusters.
  ASSERT_EQ(result.clusters.size(), 2u);
  EXPECT_NE(result.clusters[0].query_column, result.clusters[1].query_column);
}

TEST(HolisticAlignerTest, SilhouettePicksReasonableClusterCount) {
  dust::Rng rng(11);
  auto embeddings =
      ConceptEmbeddings({{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}}, 8, 0.02f,
                        &rng);
  Table query = TableWithColumns("q", {"A", "B", "C", "D"});
  Table lake_a = TableWithColumns("a", {"A1", "B1", "C1", "D1"});
  Table lake_b = TableWithColumns("b", {"A2", "B2", "C2", "D2"});
  HolisticAligner aligner;
  AlignmentResult result =
      aligner.Align(query, {&lake_a, &lake_b}, embeddings);
  EXPECT_EQ(result.chosen_num_clusters, 4u);
  EXPECT_GT(result.silhouette, 0.5);
  for (const AlignmentCluster& cluster : result.clusters) {
    EXPECT_EQ(cluster.lake_members.size(), 2u);
  }
}

TEST(BipartiteAlignTest, MatchesColumnsPerTable) {
  dust::Rng rng(12);
  auto embeddings = ConceptEmbeddings({{0, 1}, {1, 0}}, 4, 0.02f, &rng);
  Table query = TableWithColumns("q", {"A", "B"});
  Table lake = TableWithColumns("l", {"B1", "A1"});
  AlignmentResult result = BipartiteAlign(query, {&lake}, embeddings);
  ASSERT_EQ(result.lake_mappings.size(), 1u);
  EXPECT_EQ(result.lake_mappings[0], (table::ColumnMapping{1, 0}));
}

TEST(AlignmentMetricsTest, PerfectAlignmentScoresOne) {
  AlignmentGroundTruth truth;
  truth.aligned_lake = {{{1, 0}}, {{1, 1}}, {}};  // q2 unmatched
  AlignmentResult result;
  result.clusters = {{0, {{1, 0}}}, {1, {{1, 1}}}, {2, {}}};
  PrecisionRecallF1 s = ScoreAlignment(result, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(AlignmentMetricsTest, MissedAlignmentLowersRecall) {
  AlignmentGroundTruth truth;
  truth.aligned_lake = {{{1, 0}, {2, 0}}};  // 3 truth pairs (q-a, q-b, a-b)
  AlignmentResult result;
  result.clusters = {{0, {{1, 0}}}};  // 1 method pair
  PrecisionRecallF1 s = ScoreAlignment(result, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_NEAR(s.recall, 1.0 / 3.0, 1e-9);
}

TEST(AlignmentMetricsTest, WrongAlignmentLowersPrecision) {
  AlignmentGroundTruth truth;
  truth.aligned_lake = {{{1, 0}}, {}};
  AlignmentResult result;
  result.clusters = {{0, {{1, 0}}}, {1, {{1, 1}}}};  // q1-l(1,1) is wrong
  PrecisionRecallF1 s = ScoreAlignment(result, truth);
  EXPECT_LT(s.precision, 1.0);
}

TEST(AlignmentMetricsTest, UnmatchedQuerySingletonsCount) {
  AlignmentGroundTruth truth;
  truth.aligned_lake = {{}, {}};
  auto pairs = AlignmentPairSet(truth.aligned_lake);
  EXPECT_EQ(pairs.size(), 2u);  // two singletons
}

TEST(TupleBuilderTest, OuterUnionWithQueryHeaders) {
  Table query("q");
  ASSERT_TRUE(query.AddColumn("Park Name", {Value("River Park")}).ok());
  ASSERT_TRUE(query.AddColumn("Country", {Value("USA")}).ok());

  Table lake("d");
  ASSERT_TRUE(lake.AddColumn("Name of Park", {Value("Chippewa Park"),
                                              Value("Lawler Park")}).ok());
  ASSERT_TRUE(lake.AddColumn("Phone", {Value("111"), Value("222")}).ok());

  AlignmentResult alignment;
  alignment.target_headers = {"Park Name", "Country"};
  alignment.lake_mappings = {{0, -1}};  // Phone is not aligned

  auto result = BuildUnionableTuples(query, {&lake}, alignment);
  ASSERT_TRUE(result.ok());
  const UnionableTuples& tuples = result.value();
  EXPECT_EQ(tuples.unioned.num_rows(), 2u);
  EXPECT_EQ(tuples.unioned.ColumnNames(),
            (std::vector<std::string>{"Park Name", "Country"}));
  EXPECT_TRUE(tuples.unioned.at(0, 1).is_null());
  ASSERT_EQ(tuples.serialized.size(), 2u);
  // Null country skipped; query headers used.
  EXPECT_EQ(tuples.serialized[0], "[CLS] Park Name Chippewa Park [SEP]");
  ASSERT_EQ(tuples.query_serialized.size(), 1u);
  EXPECT_EQ(tuples.query_serialized[0],
            "[CLS] Park Name River Park [SEP] Country USA [SEP]");
  ASSERT_EQ(tuples.provenance.size(), 2u);
  EXPECT_EQ(tuples.provenance[1], (table::TupleRef{0, 1}));
}

TEST(TupleBuilderTest, MismatchedAlignmentRejected) {
  Table query("q");
  ASSERT_TRUE(query.AddColumn("A", {Value("x")}).ok());
  AlignmentResult alignment;  // no mappings
  Table lake("l");
  ASSERT_TRUE(lake.AddColumn("A", {Value("y")}).ok());
  EXPECT_FALSE(BuildUnionableTuples(query, {&lake}, alignment).ok());
}

}  // namespace
}  // namespace dust::align
