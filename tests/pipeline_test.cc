// Integration tests: DustPipeline (Algorithm 1) end to end on generated
// benchmarks, including the diversity-vs-similarity headline behaviour.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "core/pipeline.h"
#include "datagen/tus_generator.h"
#include "diversify/metrics.h"
#include "embed/tuple_encoder.h"
#include "search/tuple_search.h"
#include "table/union.h"

namespace dust::core {
namespace {

using table::Table;

std::shared_ptr<embed::TupleEncoder> TestEncoder() {
  // A noiseless pretrained encoder stands in for the trained DustModel in
  // integration tests (fast, deterministic; the trained model is exercised
  // in nn_test and the Fig. 6 bench).
  embed::EmbedderConfig config;
  config.dim = 48;
  config.noise_level = 0.0f;
  return std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(
          embed::MakeEmbedder(embed::ModelFamily::kRoberta, config)));
}

class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::TusConfig config;
    config.num_queries = 3;
    config.unionable_per_query = 5;
    config.distractors_per_base = 1;
    config.base_rows = 80;
    config.seed = 99;
    benchmark_ = new datagen::Benchmark(datagen::GenerateTus(config));
    lake_ = new std::vector<const Table*>();
    for (const auto& t : benchmark_->lake) lake_->push_back(&t.data);

    PipelineConfig pipeline_config;
    pipeline_config.num_tables = 5;
    pipeline_ = new DustPipeline(pipeline_config, TestEncoder());
    pipeline_->IndexLake(*lake_);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete benchmark_;
    delete lake_;
  }
  static datagen::Benchmark* benchmark_;
  static std::vector<const Table*>* lake_;
  static DustPipeline* pipeline_;
};

datagen::Benchmark* PipelineFixture::benchmark_ = nullptr;
std::vector<const Table*>* PipelineFixture::lake_ = nullptr;
DustPipeline* PipelineFixture::pipeline_ = nullptr;

TEST_F(PipelineFixture, RunsEndToEnd) {
  const Table& query = benchmark_->queries[0].data;
  auto result = pipeline_->Run(query, 10);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PipelineResult& r = result.value();
  EXPECT_EQ(r.output.num_rows(), 10u);
  EXPECT_EQ(r.output.ColumnNames(), query.ColumnNames());
  EXPECT_EQ(r.provenance.size(), 10u);
  EXPECT_FALSE(r.tables.empty());
  EXPECT_GE(r.timings.search_seconds, 0.0);
}

TEST_F(PipelineFixture, ProvenancePointsIntoLake) {
  auto result = pipeline_->Run(benchmark_->queries[1].data, 8);
  ASSERT_TRUE(result.ok());
  for (const table::TupleRef& ref : result.value().provenance) {
    ASSERT_LT(ref.table_index, lake_->size());
    EXPECT_LT(ref.row_index, (*lake_)[ref.table_index]->num_rows());
  }
}

TEST_F(PipelineFixture, RetrievedTablesAreMostlyUnionable) {
  for (size_t q = 0; q < benchmark_->queries.size(); ++q) {
    auto result = pipeline_->Run(benchmark_->queries[q].data, 5);
    ASSERT_TRUE(result.ok());
    std::set<size_t> truth(benchmark_->unionable[q].begin(),
                           benchmark_->unionable[q].end());
    size_t good = 0;
    for (const search::TableHit& hit : result.value().tables) {
      if (truth.count(hit.table_index)) ++good;
    }
    EXPECT_GE(good * 2, result.value().tables.size()) << "query " << q;
  }
}

TEST_F(PipelineFixture, OutputRowsMatchProvenance) {
  auto result = pipeline_->Run(benchmark_->queries[0].data, 6);
  ASSERT_TRUE(result.ok());
  const PipelineResult& r = result.value();
  // Each output row's non-null values must appear in the source row.
  for (size_t i = 0; i < r.output.num_rows(); ++i) {
    const Table& src = *(*lake_)[r.provenance[i].table_index];
    std::unordered_set<std::string> source_values;
    for (size_t j = 0; j < src.num_columns(); ++j) {
      const table::Value& v = src.at(r.provenance[i].row_index, j);
      if (!v.is_null()) source_values.insert(v.text());
    }
    for (size_t j = 0; j < r.output.num_columns(); ++j) {
      const table::Value& v = r.output.at(i, j);
      if (!v.is_null()) {
        EXPECT_TRUE(source_values.count(v.text()))
            << "row " << i << " col " << j << " value " << v.text();
      }
    }
  }
}

TEST_F(PipelineFixture, DiverseOutputBeatsSimilaritySearchOnDiversity) {
  // The headline claim: DUST's k tuples are more diverse w.r.t. the query
  // than the top-k most-similar tuples (Starmie-style tuple search).
  const Table& query = benchmark_->queries[0].data;
  auto encoder = TestEncoder();
  auto result = pipeline_->Run(query, 15);
  ASSERT_TRUE(result.ok());

  search::TupleSearch similarity(encoder);
  similarity.IndexLake(*lake_);
  auto similar = similarity.SearchTuples(query, 15);

  auto embed_rows = [&](const Table& t) {
    return encoder->EncodeTableRows(t);
  };
  std::vector<la::Vec> query_embeddings = embed_rows(query);
  std::vector<la::Vec> dust_embeddings = embed_rows(result.value().output);
  std::vector<la::Vec> similar_embeddings;
  for (const search::TupleHit& hit : similar) {
    const Table& src = *(*lake_)[hit.ref.table_index];
    similar_embeddings.push_back(encoder->EncodeSerialized(
        table::SerializeTableRow(src, hit.ref.row_index)));
  }

  double dust_avg = diversify::AverageDiversity(
      query_embeddings, dust_embeddings, la::Metric::kCosine);
  double similar_avg = diversify::AverageDiversity(
      query_embeddings, similar_embeddings, la::Metric::kCosine);
  EXPECT_GT(dust_avg, similar_avg);
}

TEST_F(PipelineFixture, D3lEngineAlsoWorks) {
  PipelineConfig config;
  config.num_tables = 5;
  config.engine = "d3l";
  DustPipeline pipeline(config, TestEncoder());
  pipeline.IndexLake(*lake_);
  auto result = pipeline.Run(benchmark_->queries[0].data, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().output.num_rows(), 5u);
}

TEST_F(PipelineFixture, ErrorsWithoutIndexing) {
  PipelineConfig config;
  DustPipeline pipeline(config, TestEncoder());
  auto result = pipeline.Run(benchmark_->queries[0].data, 5);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PipelineFixture, EmptyQueryRejected) {
  Table empty("e");
  auto result = pipeline_->Run(empty, 5);
  EXPECT_FALSE(result.ok());
}

std::string SnapshotPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

// --- sharded shortlist ------------------------------------------------------

TEST_F(PipelineFixture, ShardedFlatShortlistMatchesUnsharded) {
  // A sharded flat shortlist is exact, so the whole pipeline must return
  // the same tables and tuples as the unsharded flat shortlist.
  PipelineConfig unsharded_config;
  unsharded_config.num_tables = 5;
  unsharded_config.search_shortlist = 8;
  DustPipeline unsharded(unsharded_config, TestEncoder());
  unsharded.IndexLake(*lake_);

  PipelineConfig sharded_config = unsharded_config;
  sharded_config.search_shards = 4;
  EXPECT_EQ(sharded_config.EffectiveSearchIndex(), "sharded:flat:4");
  DustPipeline sharded(sharded_config, TestEncoder());
  sharded.IndexLake(*lake_);

  for (size_t q = 0; q < benchmark_->queries.size(); ++q) {
    const Table& query = benchmark_->queries[q].data;
    auto expected = unsharded.Run(query, 8);
    auto actual = sharded.Run(query, 8);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_EQ(expected.value().tables.size(), actual.value().tables.size());
    for (size_t t = 0; t < expected.value().tables.size(); ++t) {
      EXPECT_EQ(expected.value().tables[t].table_index,
                actual.value().tables[t].table_index);
      EXPECT_EQ(expected.value().tables[t].score,
                actual.value().tables[t].score);
    }
    ASSERT_EQ(expected.value().provenance.size(),
              actual.value().provenance.size());
    for (size_t i = 0; i < expected.value().provenance.size(); ++i) {
      EXPECT_EQ(expected.value().provenance[i].table_index,
                actual.value().provenance[i].table_index);
      EXPECT_EQ(expected.value().provenance[i].row_index,
                actual.value().provenance[i].row_index);
    }
  }
}

TEST_F(PipelineFixture, ShardedSnapshotRoundTripServesIdenticalResults) {
  PipelineConfig config;
  config.num_tables = 5;
  config.search_index = "hnsw";
  config.search_shards = 2;
  config.search_shortlist = 8;
  config.hnsw_ef_search = 64;

  DustPipeline offline(config, TestEncoder());
  offline.IndexLake(*lake_);
  const std::string path = SnapshotPath("pipeline_snapshot_sharded.bin");
  ASSERT_TRUE(SavePipelineSnapshot(offline, path).ok());

  DustPipeline online(config, TestEncoder());
  Status loaded = LoadPipelineSnapshot(&online, path, *lake_);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  for (size_t q = 0; q < benchmark_->queries.size(); ++q) {
    const Table& query = benchmark_->queries[q].data;
    auto expected = offline.Run(query, 8);
    auto actual = online.Run(query, 8);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_EQ(expected.value().provenance.size(),
              actual.value().provenance.size());
    for (size_t i = 0; i < expected.value().provenance.size(); ++i) {
      EXPECT_EQ(expected.value().provenance[i].table_index,
                actual.value().provenance[i].table_index);
      EXPECT_EQ(expected.value().provenance[i].row_index,
                actual.value().provenance[i].row_index);
    }
  }

  // Sharding and tuning knobs are part of the staleness hash: a serving
  // process configured without them must not consume this snapshot.
  PipelineConfig drifted = config;
  drifted.search_shards = 4;
  DustPipeline wrong_shards(drifted, TestEncoder());
  Status stale = LoadPipelineSnapshot(&wrong_shards, path, *lake_);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.code(), StatusCode::kFailedPrecondition);

  PipelineConfig detuned = config;
  detuned.hnsw_ef_search = 0;
  DustPipeline wrong_knob(detuned, TestEncoder());
  stale = LoadPipelineSnapshot(&wrong_knob, path, *lake_);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.code(), StatusCode::kFailedPrecondition);
}

// --- offline/online snapshot split -----------------------------------------

TEST_F(PipelineFixture, SnapshotRoundTripServesIdenticalResults) {
  PipelineConfig config;
  config.num_tables = 5;
  config.search_index = "hnsw";
  config.search_shortlist = 8;

  DustPipeline offline(config, TestEncoder());
  offline.IndexLake(*lake_);
  const std::string path = SnapshotPath("pipeline_snapshot.bin");
  ASSERT_TRUE(SavePipelineSnapshot(offline, path).ok());

  // The serving process: same config, no IndexLake — it restores the
  // snapshot instead of re-embedding the lake.
  DustPipeline online(config, TestEncoder());
  Status loaded = LoadPipelineSnapshot(&online, path, *lake_);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();

  for (size_t q = 0; q < benchmark_->queries.size(); ++q) {
    const Table& query = benchmark_->queries[q].data;
    auto expected = offline.Run(query, 8);
    auto actual = online.Run(query, 8);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_EQ(expected.value().tables.size(), actual.value().tables.size());
    for (size_t t = 0; t < expected.value().tables.size(); ++t) {
      EXPECT_EQ(expected.value().tables[t].table_index,
                actual.value().tables[t].table_index);
      EXPECT_EQ(expected.value().tables[t].score,
                actual.value().tables[t].score);
    }
    ASSERT_EQ(expected.value().provenance.size(),
              actual.value().provenance.size());
    for (size_t i = 0; i < expected.value().provenance.size(); ++i) {
      EXPECT_EQ(expected.value().provenance[i].table_index,
                actual.value().provenance[i].table_index);
      EXPECT_EQ(expected.value().provenance[i].row_index,
                actual.value().provenance[i].row_index);
    }
  }
}

TEST_F(PipelineFixture, SnapshotWithFlatNoShortlistAlsoRoundTrips) {
  const std::string path = SnapshotPath("pipeline_snapshot_flat.bin");
  ASSERT_TRUE(pipeline_->SaveSnapshot(path).ok());

  PipelineConfig config;
  config.num_tables = 5;
  DustPipeline online(config, TestEncoder());
  ASSERT_TRUE(online.LoadSnapshot(path, *lake_).ok());
  auto result = online.Run(benchmark_->queries[0].data, 6);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().output.num_rows(), 6u);
}

TEST_F(PipelineFixture, StaleSnapshotConfigRejected) {
  const std::string path = SnapshotPath("pipeline_snapshot_stale.bin");
  ASSERT_TRUE(pipeline_->SaveSnapshot(path).ok());

  // A serving process with a different embedding config must not silently
  // serve embeddings computed under the old one.
  PipelineConfig drifted;
  drifted.num_tables = 5;
  drifted.seed = pipeline_->config().seed + 1;
  DustPipeline online(drifted, TestEncoder());
  Status loaded = online.LoadSnapshot(path, *lake_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kFailedPrecondition);
}

TEST_F(PipelineFixture, StaleSnapshotLakeRejected) {
  const std::string path = SnapshotPath("pipeline_snapshot_lake.bin");
  ASSERT_TRUE(pipeline_->SaveSnapshot(path).ok());

  // Dropping a table from the lake invalidates the snapshot's id mapping.
  std::vector<const Table*> shrunk(*lake_);
  shrunk.pop_back();
  PipelineConfig config;
  config.num_tables = 5;
  DustPipeline online(config, TestEncoder());
  Status loaded = online.LoadSnapshot(path, shrunk);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kFailedPrecondition);
}

TEST_F(PipelineFixture, PreMutationSnapshotRejectedAfterLakeMutation) {
  const std::string path = SnapshotPath("pipeline_snapshot_mutated.bin");
  ASSERT_TRUE(pipeline_->SaveSnapshot(path).ok());

  // A lake mutated since the snapshot was taken — a mid-lake table deleted
  // (not just truncated at the end) — shifts every later table's tuple-id
  // range, so the snapshot's id mapping is a lie. It must be rejected, not
  // served against the wrong rows.
  std::vector<const Table*> deleted(*lake_);
  deleted.erase(deleted.begin() + 1);
  PipelineConfig config;
  config.num_tables = 5;
  DustPipeline online(config, TestEncoder());
  Status loaded = online.LoadSnapshot(path, deleted);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kFailedPrecondition);

  // Same for an in-place table swap that keeps the lake's size but changes
  // a table's shape (the delete-then-re-add-under-the-same-name flow).
  Table replacement((*lake_)[1]->name());
  ASSERT_TRUE(replacement.AddColumn("only", {table::Value("row")}).ok());
  std::vector<const Table*> swapped(*lake_);
  swapped[1] = &replacement;
  DustPipeline online2(config, TestEncoder());
  loaded = online2.LoadSnapshot(path, swapped);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kFailedPrecondition);
}

TEST_F(PipelineFixture, SaveSnapshotBeforeIndexLakeFails) {
  PipelineConfig config;
  DustPipeline fresh(config, TestEncoder());
  Status saved = fresh.SaveSnapshot(SnapshotPath("never_written.bin"));
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.code(), StatusCode::kFailedPrecondition);
}

// --- retrieval cascade ------------------------------------------------------

TEST_F(PipelineFixture, CascadeWithPrefiltersOffIsBitIdenticalToFlat) {
  // The flat path IS the degenerate cascade: with both prefilter layers
  // disabled, every index type must return exactly the same tables (exact
  // float equality on scores) and tuples as the cascade-free config.
  for (const char* index : {"flat", "ivf", "lsh", "hnsw"}) {
    PipelineConfig flat_config;
    flat_config.num_tables = 5;
    flat_config.search_index = index;
    flat_config.search_shortlist = 8;
    DustPipeline flat(flat_config, TestEncoder());
    flat.IndexLake(*lake_);

    PipelineConfig cascade_config = flat_config;
    cascade_config.cascade.enabled = true;
    cascade_config.cascade.prefilter = false;
    cascade_config.cascade.prescreen = false;
    DustPipeline cascaded(cascade_config, TestEncoder());
    cascaded.IndexLake(*lake_);

    for (size_t q = 0; q < benchmark_->queries.size(); ++q) {
      const Table& query = benchmark_->queries[q].data;
      auto expected = flat.Run(query, 8);
      auto actual = cascaded.Run(query, 8);
      // Parity covers failures too: when an approximate shortlist (LSH on
      // this small lake) finds nothing for a query, both paths must agree.
      ASSERT_EQ(expected.ok(), actual.ok())
          << index << ": " << actual.status().ToString();
      if (!expected.ok()) {
        EXPECT_EQ(expected.status().code(), actual.status().code()) << index;
        continue;
      }
      ASSERT_EQ(expected.value().tables.size(), actual.value().tables.size())
          << index;
      for (size_t t = 0; t < expected.value().tables.size(); ++t) {
        EXPECT_EQ(expected.value().tables[t].table_index,
                  actual.value().tables[t].table_index)
            << index;
        EXPECT_EQ(expected.value().tables[t].score,
                  actual.value().tables[t].score)
            << index;
      }
      ASSERT_EQ(expected.value().provenance.size(),
                actual.value().provenance.size())
          << index;
      for (size_t i = 0; i < expected.value().provenance.size(); ++i) {
        EXPECT_EQ(expected.value().provenance[i].table_index,
                  actual.value().provenance[i].table_index)
            << index;
        EXPECT_EQ(expected.value().provenance[i].row_index,
                  actual.value().provenance[i].row_index)
            << index;
      }
    }
  }
}

TEST_F(PipelineFixture, CascadeSnapshotRoundTripServesIdenticalResults) {
  PipelineConfig config;
  config.num_tables = 5;
  config.search_shortlist = 8;
  config.cascade.enabled = true;

  DustPipeline offline(config, TestEncoder());
  offline.IndexLake(*lake_);
  const std::string path = SnapshotPath("pipeline_snapshot_cascade.bin");
  ASSERT_TRUE(SavePipelineSnapshot(offline, path).ok());

  // The serving process restores the persisted signals (type signatures,
  // MinHash sketches) instead of re-deriving them from the lake.
  DustPipeline online(config, TestEncoder());
  Status loaded = LoadPipelineSnapshot(&online, path, *lake_);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  for (size_t q = 0; q < benchmark_->queries.size(); ++q) {
    const Table& query = benchmark_->queries[q].data;
    auto expected = offline.Run(query, 8);
    auto actual = online.Run(query, 8);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_EQ(expected.value().tables.size(), actual.value().tables.size());
    for (size_t t = 0; t < expected.value().tables.size(); ++t) {
      EXPECT_EQ(expected.value().tables[t].table_index,
                actual.value().tables[t].table_index);
      EXPECT_EQ(expected.value().tables[t].score,
                actual.value().tables[t].score);
    }
  }
  EXPECT_NE(online.CascadeStatsSummary().find("stage prefilter"),
            std::string::npos);
}

TEST_F(PipelineFixture, CascadeKnobDriftRejectsSnapshot) {
  PipelineConfig config;
  config.num_tables = 5;
  config.search_shortlist = 8;
  config.cascade.enabled = true;

  DustPipeline offline(config, TestEncoder());
  offline.IndexLake(*lake_);
  const std::string path = SnapshotPath("pipeline_snapshot_cascade_knob.bin");
  ASSERT_TRUE(SavePipelineSnapshot(offline, path).ok());

  // Every cascade knob shapes results, so each is in the staleness hash: a
  // server tuned differently must rebuild, not silently serve stale state.
  PipelineConfig retuned = config;
  retuned.cascade.prescreen_keep = 16;
  DustPipeline wrong_keep(retuned, TestEncoder());
  Status stale = LoadPipelineSnapshot(&wrong_keep, path, *lake_);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.code(), StatusCode::kFailedPrecondition);

  // And a cascade snapshot must not load into a cascade-free server.
  PipelineConfig disabled = config;
  disabled.cascade.enabled = false;
  DustPipeline no_cascade(disabled, TestEncoder());
  stale = LoadPipelineSnapshot(&no_cascade, path, *lake_);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.code(), StatusCode::kFailedPrecondition);
}

TEST_F(PipelineFixture, D3lEngineSnapshotUnimplemented) {
  PipelineConfig config;
  config.num_tables = 5;
  config.engine = "d3l";
  DustPipeline pipeline(config, TestEncoder());
  pipeline.IndexLake(*lake_);
  Status saved = pipeline.SaveSnapshot(SnapshotPath("d3l_snapshot.bin"));
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace dust::core
