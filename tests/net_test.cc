// Tests for src/net: frame encode/decode round trips (bit-exact floats),
// corrupt/torn/oversized frame rejection (fuzz loop included), the
// request-id echo contract, client deadlines, error envelopes, and router
// parity — a RouterIndex over loopback shard servers must answer
// bit-identically to the in-process ShardedIndex over the same vectors,
// and must degrade (not fail) when a shard goes down mid-run.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/connection.h"
#include "net/frame.h"
#include "net/router_index.h"
#include "net/server.h"
#include "net/shard_service.h"
#include "obs/trace.h"
#include "serve/executor.h"
#include "shard/sharded_index.h"
#include "util/rng.h"

namespace dust::net {
namespace {

using Clock = std::chrono::steady_clock;
using index::SearchHit;
using index::VectorIndex;

Clock::time_point DeadlineIn(int ms) {
  return Clock::now() + std::chrono::milliseconds(ms);
}

std::vector<la::Vec> RandomUnitVectors(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Vec> out;
  for (size_t i = 0; i < n; ++i) {
    la::Vec v(dim);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    la::NormalizeInPlace(&v);
    out.push_back(v);
  }
  return out;
}

/// A connected AF_UNIX stream pair wrapped in Connections — the transport
/// tests need real fds but no network.
struct SocketPair {
  Connection a;
  Connection b;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    a = Connection(fds[0]);
    b = Connection(fds[1]);
  }
};

// --- frame layer ------------------------------------------------------------

TEST(FrameTest, HeaderRoundTrip) {
  Frame frame;
  frame.type = MessageType::kSearchRequest;
  frame.request_id = 0xDEADBEEFCAFEF00DULL;
  frame.payload = "hello";
  const std::string bytes = EncodeFrame(frame);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + 5);
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(bytes.data(), &header).ok());
  EXPECT_EQ(header.type, MessageType::kSearchRequest);
  EXPECT_EQ(header.request_id, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(header.payload_len, 5u);
}

TEST(FrameTest, BadMagicRejected) {
  Frame frame;
  frame.payload = "x";
  std::string bytes = EncodeFrame(frame);
  bytes[0] ^= 0x5A;
  FrameHeader header;
  const Status decoded = DecodeFrameHeader(bytes.data(), &header);
  EXPECT_EQ(decoded.code(), StatusCode::kIoError);
}

TEST(FrameTest, UnknownTypeRejected) {
  Frame frame;
  std::string bytes = EncodeFrame(frame);
  bytes[4] = static_cast<char>(200);  // type byte: not a known MessageType
  FrameHeader header;
  EXPECT_EQ(DecodeFrameHeader(bytes.data(), &header).code(),
            StatusCode::kIoError);
}

TEST(FrameTest, OversizedLengthRejectedBeforeAllocation) {
  Frame frame;
  std::string bytes = EncodeFrame(frame);
  const uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(&bytes[kFrameHeaderBytes - 4], &huge, sizeof(huge));
  FrameHeader header;
  EXPECT_EQ(DecodeFrameHeader(bytes.data(), &header).code(),
            StatusCode::kIoError);
  // 0xFFFFFFFF must not overflow header+payload arithmetic either.
  const uint32_t max = 0xFFFFFFFFu;
  std::memcpy(&bytes[kFrameHeaderBytes - 4], &max, sizeof(max));
  EXPECT_EQ(DecodeFrameHeader(bytes.data(), &header).code(),
            StatusCode::kIoError);
}

TEST(FrameTest, SearchMessagesRoundTripBitExact) {
  SearchRequestMessage request;
  request.k = 7;
  request.query = {1.5f, -0.0f, 3.25e-30f, 7.0f};
  request.trace_id = 0xFEEDFACE12345678ULL;
  request.parent_span_id = 0x0102030405060708ULL;
  request.sampled = 1;
  SearchRequestMessage request_back;
  ASSERT_TRUE(
      DecodeSearchRequest(EncodeSearchRequest(request), &request_back).ok());
  EXPECT_EQ(request_back.k, 7u);
  EXPECT_EQ(request_back.trace_id, 0xFEEDFACE12345678ULL);
  EXPECT_EQ(request_back.parent_span_id, 0x0102030405060708ULL);
  EXPECT_EQ(request_back.sampled, 1);
  ASSERT_EQ(request_back.query.size(), request.query.size());
  for (size_t i = 0; i < request.query.size(); ++i) {
    uint32_t a = 0, b = 0;
    std::memcpy(&a, &request.query[i], 4);
    std::memcpy(&b, &request_back.query[i], 4);
    EXPECT_EQ(a, b) << "float bits perturbed at " << i;
  }

  SearchResponseMessage response;
  response.hits = {{42, 0.125f}, {7, 1.0f - 0x1p-24f}};
  SearchResponseMessage response_back;
  ASSERT_TRUE(
      DecodeSearchResponse(EncodeSearchResponse(response), &response_back)
          .ok());
  ASSERT_EQ(response_back.hits.size(), 2u);
  EXPECT_EQ(response_back.hits[0].id, 42u);
  EXPECT_EQ(response_back.hits[0].distance, 0.125f);
  EXPECT_EQ(response_back.hits[1].id, 7u);
  EXPECT_EQ(response_back.hits[1].distance, 1.0f - 0x1p-24f);
}

TEST(FrameTest, BatchMessagesRoundTrip) {
  SearchBatchRequestMessage request;
  request.k = 3;
  request.queries = {{1.0f, 2.0f}, {3.0f, 4.0f}, {5.0f, 6.0f}};
  request.trace_id = 0xABCDEF;
  request.parent_span_id = 0x123456;
  request.sampled = 1;
  SearchBatchRequestMessage back;
  ASSERT_TRUE(
      DecodeSearchBatchRequest(EncodeSearchBatchRequest(request), &back).ok());
  EXPECT_EQ(back.k, 3u);
  EXPECT_EQ(back.trace_id, 0xABCDEFu);
  EXPECT_EQ(back.parent_span_id, 0x123456u);
  EXPECT_EQ(back.sampled, 1);
  ASSERT_EQ(back.queries.size(), 3u);
  EXPECT_EQ(back.queries[2], (la::Vec{5.0f, 6.0f}));

  SearchBatchResponseMessage response;
  response.results = {{{1, 0.5f}}, {}, {{2, 0.25f}, {3, 0.75f}}};
  SearchBatchResponseMessage response_back;
  ASSERT_TRUE(DecodeSearchBatchResponse(EncodeSearchBatchResponse(response),
                                        &response_back)
                  .ok());
  ASSERT_EQ(response_back.results.size(), 3u);
  EXPECT_TRUE(response_back.results[1].empty());
  EXPECT_EQ(response_back.results[2][1].id, 3u);
}

TEST(FrameTest, TruncatedPayloadRejected) {
  SearchRequestMessage request;
  request.k = 5;
  request.query = {1.0f, 2.0f, 3.0f};
  std::string payload = EncodeSearchRequest(request);
  SearchRequestMessage back;
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    const Status decoded =
        DecodeSearchRequest(payload.substr(0, cut), &back);
    EXPECT_EQ(decoded.code(), StatusCode::kIoError) << "cut at " << cut;
  }
}

TEST(FrameTest, FuzzedPayloadsNeverCrash) {
  // Random corruption of valid payloads must yield ok or IoError — never a
  // crash, hang, or oversized allocation (counts are validated against the
  // bytes present). Nonzero trace fields put the propagation prefix under
  // the same corruption coverage as the vectors.
  SearchBatchRequestMessage request;
  request.k = 4;
  request.queries = RandomUnitVectors(3, 8, 11);
  request.trace_id = 0x1122334455667788ULL;
  request.parent_span_id = 0x99AABBCCDDEEFF00ULL;
  request.sampled = 1;
  const std::string valid = EncodeSearchBatchRequest(request);
  Rng rng(1234);
  for (int iter = 0; iter < 500; ++iter) {
    std::string corrupt = valid;
    const size_t flips = 1 + rng.NextBelow(8);
    for (size_t f = 0; f < flips; ++f) {
      corrupt[rng.NextBelow(corrupt.size())] ^=
          static_cast<char>(1 + rng.NextBelow(255));
    }
    if (rng.NextBernoulli(0.3)) {
      corrupt.resize(rng.NextBelow(corrupt.size() + 1));
    }
    SearchBatchRequestMessage out;
    const Status decoded = DecodeSearchBatchRequest(corrupt, &out);
    if (decoded.ok()) {
      // Decoded data may be garbage but must be bounded by the input.
      size_t total = 0;
      for (const la::Vec& q : out.queries) total += q.size();
      EXPECT_LE(total * sizeof(float), corrupt.size());
    } else {
      EXPECT_EQ(decoded.code(), StatusCode::kIoError);
    }
  }
}

TEST(FrameTest, ErrorEnvelopeRoundTripsStatus) {
  const Status original = Status::InvalidArgument("bad dim");
  const Frame frame = MakeErrorFrame(99, original);
  EXPECT_EQ(frame.type, MessageType::kError);
  EXPECT_EQ(frame.request_id, 99u);
  const Status back = DecodeErrorEnvelope(frame.payload);
  EXPECT_EQ(back.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(back.message(), "bad dim");
}

TEST(FrameTest, OkErrorEnvelopeIsProtocolViolation) {
  // An error frame claiming "Ok" is corruption: it must not decode into a
  // success a caller would mistake for a response.
  PayloadWriter writer;
  writer.PutU8(StatusCodeToWire(StatusCode::kOk));
  writer.PutString("not really an error");
  EXPECT_EQ(DecodeErrorEnvelope(writer.Take()).code(), StatusCode::kIoError);
}

// --- endpoint parsing -------------------------------------------------------

TEST(ParseEndpointTest, AcceptsHostPort) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseEndpoint("127.0.0.1:8080", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
}

TEST(ParseEndpointTest, RejectsMalformed) {
  std::string host;
  uint16_t port = 0;
  for (const char* bad :
       {"127.0.0.1", ":80", "host:", "host:0", "host:65536", "host:8x0"}) {
    EXPECT_FALSE(ParseEndpoint(bad, &host, &port).ok()) << bad;
  }
}

// --- connection transport ---------------------------------------------------

TEST(ConnectionTest, FrameRoundTripOverSocketPair) {
  SocketPair pair;
  Frame sent;
  sent.type = MessageType::kPing;
  sent.request_id = 321;
  sent.payload = std::string(100 * 1024, 'z');  // bigger than one recv chunk
  std::thread writer(
      [&] { ASSERT_TRUE(pair.a.WriteFrame(sent, DeadlineIn(2000)).ok()); });
  Frame got;
  ASSERT_TRUE(pair.b.ReadFrame(&got, DeadlineIn(2000)).ok());
  writer.join();
  EXPECT_EQ(got.type, MessageType::kPing);
  EXPECT_EQ(got.request_id, 321u);
  EXPECT_EQ(got.payload, sent.payload);
}

TEST(ConnectionTest, ReadDeadlineExpires) {
  SocketPair pair;
  Frame frame;
  const Status read = pair.b.ReadFrame(&frame, DeadlineIn(50));
  EXPECT_EQ(read.code(), StatusCode::kDeadlineExceeded);
}

TEST(ConnectionTest, CleanCloseAtFrameBoundaryIsUnavailable) {
  SocketPair pair;
  pair.a.Close();
  Frame frame;
  // The peer retired the connection between frames — transient, retryable.
  EXPECT_EQ(pair.b.ReadFrame(&frame, DeadlineIn(1000)).code(),
            StatusCode::kUnavailable);
}

TEST(ConnectionTest, TornFrameIsIoError) {
  SocketPair pair;
  Frame sent;
  sent.type = MessageType::kPing;
  sent.payload = "full payload";
  const std::string bytes = EncodeFrame(sent);
  // Deliver the header plus half the payload, then hang up mid-frame.
  const std::string torn = bytes.substr(0, kFrameHeaderBytes + 4);
  ASSERT_EQ(::send(pair.a.fd(), torn.data(), torn.size(), 0),
            static_cast<ssize_t>(torn.size()));
  pair.a.Close();
  Frame frame;
  EXPECT_EQ(pair.b.ReadFrame(&frame, DeadlineIn(1000)).code(),
            StatusCode::kIoError);
}

TEST(ConnectionTest, CorruptHeaderOnWireIsIoError) {
  SocketPair pair;
  const std::string garbage(kFrameHeaderBytes, '\x7f');
  ASSERT_EQ(::send(pair.a.fd(), garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  Frame frame;
  EXPECT_EQ(pair.b.ReadFrame(&frame, DeadlineIn(1000)).code(),
            StatusCode::kIoError);
}

// --- server + service -------------------------------------------------------

/// One in-process shard server: a flat child taken out of a ShardedIndex,
/// served over loopback exactly as dust_shardd would.
struct TestShardServer {
  std::unique_ptr<ShardService> service;
  std::unique_ptr<Server> server;
  std::string endpoint;

  TestShardServer(std::unique_ptr<VectorIndex> index,
                  std::vector<size_t> global_ids, const std::string& label,
                  serve::Executor* executor) {
    service = std::make_unique<ShardService>(std::move(index),
                                             std::move(global_ids), label);
    server = std::make_unique<Server>(executor);
    EXPECT_TRUE(service->RegisterOn(server.get()).ok());
    EXPECT_TRUE(server->Start("127.0.0.1", 0).ok());
    endpoint = "127.0.0.1:" + std::to_string(server->port());
  }
};

/// Baseline ShardedIndex plus a loopback server per shard (children taken
/// from an identically-built second ShardedIndex — deterministic build,
/// identical contents).
struct Cluster {
  static constexpr size_t kDim = 12;
  static constexpr size_t kShards = 3;
  serve::Executor executor{4};
  std::unique_ptr<shard::ShardedIndex> baseline;
  std::vector<std::unique_ptr<TestShardServer>> servers;
  std::vector<std::string> endpoints;

  explicit Cluster(size_t num_vectors = 200, uint64_t seed = 5) {
    const auto vectors = RandomUnitVectors(num_vectors, kDim, seed);
    shard::ShardedIndexConfig config;
    config.child_type = "flat";
    config.num_shards = kShards;
    baseline = std::make_unique<shard::ShardedIndex>(
        kDim, la::Metric::kCosine, config);
    baseline->AddAll(vectors);
    auto donor = std::make_unique<shard::ShardedIndex>(
        kDim, la::Metric::kCosine, config);
    donor->AddAll(vectors);
    for (size_t s = 0; s < kShards; ++s) {
      std::vector<size_t> global_ids;
      std::unique_ptr<VectorIndex> child = donor->TakeShard(s, &global_ids);
      servers.push_back(std::make_unique<TestShardServer>(
          std::move(child), std::move(global_ids),
          "shard" + std::to_string(s), &executor));
      endpoints.push_back(servers.back()->endpoint);
    }
  }
};

void ExpectSameHits(const std::vector<SearchHit>& expected,
                    const std::vector<SearchHit>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].id, actual[i].id) << "rank " << i;
    // Exact float equality on purpose: distances cross the wire as raw
    // bits, so remoting must not perturb them at all.
    EXPECT_EQ(expected[i].distance, actual[i].distance) << "rank " << i;
  }
}

TEST(RouterIndexTest, ConnectValidatesTopology) {
  Cluster cluster;
  auto connected = RouterIndex::Connect(cluster.endpoints);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const std::unique_ptr<RouterIndex>& router = connected.value();
  EXPECT_EQ(router->dim(), Cluster::kDim);
  EXPECT_EQ(router->size(), cluster.baseline->size());
  EXPECT_EQ(router->num_shards(), Cluster::kShards);
  EXPECT_EQ(router->metric(), la::Metric::kCosine);
  for (size_t s = 0; s < Cluster::kShards; ++s) {
    EXPECT_EQ(router->shard_size(s), cluster.baseline->shard_size(s));
  }
}

TEST(RouterIndexTest, ConnectFailsWhenAShardIsDown) {
  Cluster cluster;
  std::vector<std::string> endpoints = cluster.endpoints;
  cluster.servers[1]->server->Shutdown();
  // Strict topology: a router must not come up silently missing a shard.
  auto connected = RouterIndex::Connect(endpoints);
  EXPECT_FALSE(connected.ok());
}

TEST(RouterIndexTest, SearchBitIdenticalToInProcessShardedIndex) {
  Cluster cluster;
  auto connected = RouterIndex::Connect(cluster.endpoints);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  std::unique_ptr<RouterIndex> router = std::move(connected).value();
  router->SetExecutor(&cluster.executor);
  const auto queries = RandomUnitVectors(20, Cluster::kDim, 77);
  for (const la::Vec& query : queries) {
    ExpectSameHits(cluster.baseline->Search(query, 10),
                   router->Search(query, 10));
  }
  // k larger than the lake: every vector comes back, still bit-identical.
  ExpectSameHits(cluster.baseline->Search(queries[0], 1000),
                 router->Search(queries[0], 1000));
}

TEST(RouterIndexTest, SearchBatchBitIdenticalToInProcessShardedIndex) {
  Cluster cluster;
  auto connected = RouterIndex::Connect(cluster.endpoints);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  std::unique_ptr<RouterIndex> router = std::move(connected).value();
  const auto queries = RandomUnitVectors(16, Cluster::kDim, 78);
  const auto expected =
      cluster.baseline->SearchBatch(queries, 5, &cluster.executor);
  const auto actual = router->SearchBatch(queries, 5, &cluster.executor);
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t q = 0; q < expected.size(); ++q) {
    ExpectSameHits(expected[q], actual[q]);
  }
  EXPECT_EQ(router->stats().partial_results, 0u);
}

TEST(RouterIndexTest, DeadShardDegradesToPartialResults) {
  Cluster cluster;
  auto connected = RouterIndex::Connect(cluster.endpoints);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  std::unique_ptr<RouterIndex> router = std::move(connected).value();
  const auto queries = RandomUnitVectors(4, Cluster::kDim, 79);
  // Healthy first: pooled connections to every shard exist.
  ExpectSameHits(cluster.baseline->Search(queries[0], 10),
                 router->Search(queries[0], 10));
  cluster.servers[1]->server->Shutdown();
  // Expected degraded answer: the merge over the surviving shards only.
  const size_t kK = 10;
  auto surviving_merge = [&](const la::Vec& query) {
    std::vector<SearchHit> hits;
    for (size_t s = 0; s < Cluster::kShards; ++s) {
      if (s == 1) continue;
      for (SearchHit hit : cluster.baseline->shard(s).Search(query, kK)) {
        hit.id = cluster.baseline->global_id(s, hit.id);
        hits.push_back(hit);
      }
    }
    index::FinalizeHits(&hits, kK);
    return hits;
  };
  for (const la::Vec& query : queries) {
    ExpectSameHits(surviving_merge(query), router->Search(query, kK));
  }
  const RouterStats stats = router->stats();
  EXPECT_GT(stats.partial_results, 0u);
  EXPECT_GT(stats.rpc_failures, 0u);
  EXPECT_GT(stats.retries, 0u);  // kUnavailable is retried before degrading

  // The batch path degrades the same way.
  const auto batch =
      router->SearchBatch({queries[0], queries[1]}, kK, &cluster.executor);
  ASSERT_EQ(batch.size(), 2u);
  ExpectSameHits(surviving_merge(queries[0]), batch[0]);
  ExpectSameHits(surviving_merge(queries[1]), batch[1]);
}

TEST(RouterIndexTest, FederatedMetricsCarryShardLabels) {
  Cluster cluster;
  auto connected = RouterIndex::Connect(cluster.endpoints);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  std::unique_ptr<RouterIndex> router = std::move(connected).value();
  (void)router->Search(RandomUnitVectors(1, Cluster::kDim, 80)[0], 5);
  const std::string text = router->FederatedMetricsText();
  for (const std::string& endpoint : cluster.endpoints) {
    EXPECT_NE(text.find("shard=\"" + endpoint + "\""), std::string::npos)
        << text;
  }
  EXPECT_NE(text.find("shard_searches_total"), std::string::npos);
  // A downed shard becomes a comment, not a scrape failure.
  cluster.servers[2]->server->Shutdown();
  const std::string degraded = router->FederatedMetricsText();
  EXPECT_NE(degraded.find("unreachable"), std::string::npos);
}

TEST(RouterIndexTest, TraceStitchesAcrossRouterAndShards) {
  Cluster cluster;
  auto connected = RouterIndex::Connect(cluster.endpoints);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  std::unique_ptr<RouterIndex> router = std::move(connected).value();
  router->SetExecutor(&cluster.executor);
  obs::SpanCollector::Global().Clear();
  const uint64_t trace_id = obs::NewTraceId();
  const uint64_t root_span_id = obs::NewSpanId();
  {
    obs::ScopedTraceContext scope(
        obs::TraceContext{trace_id, root_span_id, true});
    (void)router->Search(RandomUnitVectors(1, Cluster::kDim, 81)[0], 5);
  }
  // The loopback shard servers live in this process, so the global collector
  // holds both sides of every RPC under the single propagated trace id.
  const std::vector<obs::SpanRecord> spans =
      obs::SpanCollector::Global().CollectTrace(trace_id);
  std::vector<const obs::SpanRecord*> rpc_spans;
  std::vector<const obs::SpanRecord*> shard_spans;
  for (const obs::SpanRecord& span : spans) {
    if (span.name.rfind("rpc:", 0) == 0) rpc_spans.push_back(&span);
    if (span.name == "shard:search") shard_spans.push_back(&span);
  }
  ASSERT_EQ(rpc_spans.size(), Cluster::kShards);
  ASSERT_EQ(shard_spans.size(), Cluster::kShards);
  for (const obs::SpanRecord* rpc : rpc_spans) {
    EXPECT_EQ(rpc->trace_id, trace_id);
    EXPECT_EQ(rpc->parent_span_id, root_span_id);
  }
  // Each shard-side span parents under exactly one router-side rpc span:
  // the link crossed the wire intact.
  for (const obs::SpanRecord* shard : shard_spans) {
    EXPECT_EQ(shard->trace_id, trace_id);
    size_t parents = 0;
    for (const obs::SpanRecord* rpc : rpc_spans) {
      if (shard->parent_span_id == rpc->span_id) ++parents;
    }
    EXPECT_EQ(parents, 1u) << "shard span has no unique rpc parent";
  }

  // The batch path stitches the same way.
  obs::SpanCollector::Global().Clear();
  const uint64_t batch_trace = obs::NewTraceId();
  {
    obs::ScopedTraceContext scope(
        obs::TraceContext{batch_trace, obs::NewSpanId(), true});
    (void)router->SearchBatch(RandomUnitVectors(4, Cluster::kDim, 82), 5,
                              &cluster.executor);
  }
  const std::vector<obs::SpanRecord> batch_spans =
      obs::SpanCollector::Global().CollectTrace(batch_trace);
  size_t batch_rpcs = 0, batch_shards = 0;
  for (const obs::SpanRecord& span : batch_spans) {
    if (span.name.rfind("rpc:", 0) == 0) ++batch_rpcs;
    if (span.name == "shard:search_batch") ++batch_shards;
  }
  EXPECT_EQ(batch_rpcs, Cluster::kShards);
  EXPECT_EQ(batch_shards, Cluster::kShards);

  // An unsampled search must leave the collector untouched.
  obs::SpanCollector::Global().Clear();
  (void)router->Search(RandomUnitVectors(1, Cluster::kDim, 83)[0], 5);
  EXPECT_TRUE(obs::SpanCollector::Global().Snapshot().empty());
}

TEST(ServerTest, EchoesRequestIdOnResponsesAndErrors) {
  Cluster cluster;
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseEndpoint(cluster.endpoints[0], &host, &port).ok());
  auto dialed = Connection::Dial(host, port, 1000);
  ASSERT_TRUE(dialed.ok());
  Connection conn = std::move(dialed).value();

  Frame ping;
  ping.type = MessageType::kPing;
  ping.request_id = 4242;
  Frame pong;
  ASSERT_TRUE(conn.Call(ping, &pong, DeadlineIn(2000)).ok());
  EXPECT_EQ(pong.type, MessageType::kPong);
  EXPECT_EQ(pong.request_id, 4242u);

  // A handler failure answers with a kError envelope, same id echoed.
  SearchRequestMessage bad;
  bad.k = 3;
  bad.query = la::Vec(Cluster::kDim + 1, 0.5f);  // wrong dim
  Frame request;
  request.type = MessageType::kSearchRequest;
  request.request_id = 777;
  request.payload = EncodeSearchRequest(bad);
  Frame response;
  ASSERT_TRUE(conn.Call(request, &response, DeadlineIn(2000)).ok());
  EXPECT_EQ(response.type, MessageType::kError);
  EXPECT_EQ(response.request_id, 777u);
  EXPECT_EQ(DecodeErrorEnvelope(response.payload).code(),
            StatusCode::kInvalidArgument);

  // A type nobody handles is Unimplemented, not a hang or a dropped frame.
  Frame unhandled;
  unhandled.type = MessageType::kSearchResponse;
  unhandled.request_id = 888;
  Frame unhandled_response;
  ASSERT_TRUE(
      conn.Call(unhandled, &unhandled_response, DeadlineIn(2000)).ok());
  EXPECT_EQ(unhandled_response.type, MessageType::kError);
  EXPECT_EQ(unhandled_response.request_id, 888u);
  EXPECT_EQ(DecodeErrorEnvelope(unhandled_response.payload).code(),
            StatusCode::kUnimplemented);
}

TEST(ServerTest, SlowHandlerTripsClientDeadline) {
  Server server(nullptr);  // handlers inline on the event loop
  server.RegisterHandler(MessageType::kPing, [](const Frame&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    Frame pong;
    pong.type = MessageType::kPong;
    return pong;
  });
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());
  auto dialed = Connection::Dial("127.0.0.1", server.port(), 1000);
  ASSERT_TRUE(dialed.ok());
  Connection conn = std::move(dialed).value();
  Frame ping;
  ping.type = MessageType::kPing;
  ping.request_id = 1;
  Frame pong;
  EXPECT_EQ(conn.Call(ping, &pong, DeadlineIn(50)).code(),
            StatusCode::kDeadlineExceeded);
  server.Shutdown();
}

TEST(ServerTest, CorruptStreamGetsErrorEnvelopeAndSessionRetired) {
  Cluster cluster;
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseEndpoint(cluster.endpoints[0], &host, &port).ok());
  auto dialed = Connection::Dial(host, port, 1000);
  ASSERT_TRUE(dialed.ok());
  Connection conn = std::move(dialed).value();
  const std::string garbage(kFrameHeaderBytes, '\x42');
  ASSERT_EQ(::send(conn.fd(), garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  Frame frame;
  // The server answers with a best-effort kError (request id 0) and closes.
  const Status read = conn.ReadFrame(&frame, DeadlineIn(2000));
  if (read.ok()) {
    EXPECT_EQ(frame.type, MessageType::kError);
    EXPECT_EQ(frame.request_id, 0u);
    // After the envelope the stream ends.
    Frame next;
    EXPECT_FALSE(conn.ReadFrame(&next, DeadlineIn(2000)).ok());
  } else {
    // The close can race ahead of our read of the envelope.
    EXPECT_NE(read.code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(InjectMetricLabelTest, LabelsPlainAndLabeledSeries) {
  const std::string text =
      "# comment line\n"
      "requests_total 41\n"
      "latency_ms_bucket{le=\"5\"} 7\n"
      "\n"
      "noise\n";
  const std::string out = InjectMetricLabel(text, "shard", "h:1");
  EXPECT_NE(out.find("# comment line\n"), std::string::npos);
  EXPECT_NE(out.find("requests_total{shard=\"h:1\"} 41\n"), std::string::npos);
  EXPECT_NE(out.find("latency_ms_bucket{shard=\"h:1\",le=\"5\"} 7\n"),
            std::string::npos);
  EXPECT_NE(out.find("\nnoise\n"), std::string::npos);  // passthrough
}

}  // namespace
}  // namespace dust::net
