#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "obs/trace_export.h"

namespace dust::obs {
namespace {

TEST(SamplerTest, RateValidation) {
  EXPECT_TRUE(ValidSampleRate(0.0));
  EXPECT_TRUE(ValidSampleRate(1.0));
  EXPECT_TRUE(ValidSampleRate(0.25));
  EXPECT_FALSE(ValidSampleRate(-0.1));
  EXPECT_FALSE(ValidSampleRate(1.5));
  EXPECT_FALSE(ValidSampleRate(std::nan("")));
  EXPECT_FALSE(ValidSampleRate(std::numeric_limits<double>::infinity()));
}

TEST(SamplerTest, ZeroNeverSamplesOneAlwaysSamples) {
  Sampler off(0.0);
  Sampler on(1.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(off.Sample());
    EXPECT_TRUE(on.Sample());
  }
}

TEST(SamplerTest, RateIsDeterministicAndExact) {
  // floor((n+1)*r) > floor(n*r) admits exactly floor(n*r) of the first n
  // decisions — 250 of 1000 at rate 0.25, independent of timing.
  Sampler sampler(0.25);
  int sampled = 0;
  for (int i = 0; i < 1000; ++i) {
    if (sampler.Sample()) ++sampled;
  }
  EXPECT_EQ(sampled, 250);
  // And the pattern is deterministic: a fresh sampler repeats it.
  Sampler again(0.25);
  std::vector<bool> first;
  for (int i = 0; i < 40; ++i) first.push_back(again.Sample());
  Sampler third(0.25);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(first[i], third.Sample());
}

TEST(TraceContextTest, ScopedInstallAndRestore) {
  EXPECT_FALSE(CurrentContext().sampled);
  EXPECT_EQ(CurrentContext().trace_id, 0u);
  {
    ScopedTraceContext outer(TraceContext{7, 8, true});
    EXPECT_EQ(CurrentContext().trace_id, 7u);
    EXPECT_EQ(CurrentContext().span_id, 8u);
    EXPECT_TRUE(CurrentContext().sampled);
    {
      ScopedTraceContext inner(TraceContext{9, 10, false});
      EXPECT_EQ(CurrentContext().trace_id, 9u);
      EXPECT_FALSE(CurrentContext().sampled);
    }
    EXPECT_EQ(CurrentContext().trace_id, 7u);
  }
  EXPECT_EQ(CurrentContext().trace_id, 0u);
}

TEST(TraceContextTest, NewIdsAreNonZeroAndDistinct) {
  const uint64_t a = NewTraceId();
  const uint64_t b = NewTraceId();
  const uint64_t c = NewSpanId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(c, 0u);
  EXPECT_NE(a, b);
}

TEST(SpanTest, UnsampledSpanRecordsNothing) {
  SpanCollector collector(64, 1);
  {
    Span span("noop", &collector);
    EXPECT_FALSE(span.recording());
    EXPECT_EQ(span.span_id(), 0u);
    span.AddTag("k", uint64_t{3});  // must be a no-op, not a crash
  }
  EXPECT_EQ(collector.recorded_total(), 0u);
  EXPECT_TRUE(collector.Snapshot().empty());
}

TEST(SpanTest, NestedSpansRecordParentLinks) {
  SpanCollector collector(64, 1);
  const uint64_t trace_id = NewTraceId();
  const uint64_t root_id = NewSpanId();
  uint64_t outer_id = 0;
  {
    ScopedTraceContext scope(TraceContext{trace_id, root_id, true});
    Span outer("outer", &collector);
    EXPECT_TRUE(outer.recording());
    outer_id = outer.span_id();
    outer.AddTag("k", uint64_t{30});
    outer.AddTag("mode", "batch");
    {
      Span inner("inner", &collector);
      EXPECT_EQ(CurrentContext().span_id, inner.span_id());
    }
    // Inner's scope restored outer as the current parent.
    EXPECT_EQ(CurrentContext().span_id, outer_id);
  }
  const std::vector<SpanRecord> records = collector.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  // Sorted by start time: outer starts first.
  EXPECT_EQ(records[0].name, "outer");
  EXPECT_EQ(records[0].trace_id, trace_id);
  EXPECT_EQ(records[0].parent_span_id, root_id);
  EXPECT_EQ(records[0].tags, "k=30,mode=batch");
  EXPECT_EQ(records[1].name, "inner");
  EXPECT_EQ(records[1].parent_span_id, outer_id);
  EXPECT_GE(records[1].start_us, records[0].start_us);
}

TEST(SpanTest, ManualRecordSpan) {
  SpanCollector collector(64, 1);
  const uint64_t id =
      RecordSpan(42, 0, 7, "queue_wait", 1000, 3500, &collector);
  EXPECT_NE(id, 0u);
  const std::vector<SpanRecord> records = collector.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].trace_id, 42u);
  EXPECT_EQ(records[0].span_id, id);
  EXPECT_EQ(records[0].parent_span_id, 7u);
  EXPECT_EQ(records[0].start_us, 1000);
  EXPECT_EQ(records[0].duration_us, 2500);
  // An explicit span id is kept verbatim; a backwards interval clamps to 0.
  RecordSpan(42, 99, 7, "clamped", 5000, 4000, &collector);
  const std::vector<SpanRecord> after = collector.Snapshot();
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[1].span_id, 99u);
  EXPECT_EQ(after[1].duration_us, 0);
}

TEST(SpanCollectorTest, RingDropsOldestAndCounts) {
  SpanCollector collector(4, 1);  // one stripe of 4 slots
  for (uint64_t i = 1; i <= 6; ++i) {
    SpanRecord record;
    record.trace_id = 1;
    record.span_id = i;
    record.name = "s" + std::to_string(i);
    record.start_us = static_cast<int64_t>(i);
    collector.Record(std::move(record));
  }
  EXPECT_EQ(collector.recorded_total(), 6u);
  EXPECT_EQ(collector.dropped_total(), 2u);  // spans 1 and 2 were evicted
  const std::vector<SpanRecord> records = collector.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().span_id, 3u);
  EXPECT_EQ(records.back().span_id, 6u);
  collector.Clear();
  EXPECT_EQ(collector.recorded_total(), 0u);
  EXPECT_EQ(collector.dropped_total(), 0u);
  EXPECT_TRUE(collector.Snapshot().empty());
}

TEST(SpanCollectorTest, ConcurrentRecordIsBoundedAndSafe) {
  SpanCollector collector(256, 8);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&collector, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SpanRecord record;
        record.trace_id = static_cast<uint64_t>(t) + 1;
        record.span_id = static_cast<uint64_t>(t * kPerThread + i) + 1;
        record.name = "w";
        record.start_us = i;
        collector.Record(std::move(record));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(collector.recorded_total(),
            static_cast<uint64_t>(kThreads * kPerThread));
  const std::vector<SpanRecord> records = collector.Snapshot();
  EXPECT_LE(records.size(), collector.capacity());
  EXPECT_EQ(collector.recorded_total() - collector.dropped_total(),
            records.size());
}

TEST(CollectTraceTest, FiltersByTraceId) {
  SpanCollector collector(64, 1);
  RecordSpan(1, 0, 0, "a", 10, 20, &collector);
  RecordSpan(2, 0, 0, "b", 15, 25, &collector);
  RecordSpan(1, 0, 0, "c", 30, 40, &collector);
  const std::vector<SpanRecord> trace = collector.CollectTrace(1);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].name, "a");
  EXPECT_EQ(trace[1].name, "c");
}

TEST(ChromeExportTest, EmitsWellFormedEvents) {
  SpanCollector collector(64, 1);
  const uint64_t trace_id = 0xabc;
  const uint64_t root = RecordSpan(trace_id, 0, 0, "serve", 100, 900,
                                   &collector);
  RecordSpan(trace_id, 0, root, "cache \"probe\"", 120, 150, &collector);
  const std::string json =
      ExportChromeTrace(collector.Snapshot(), "unit_test");
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"serve\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":800"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"0xabc\""), std::string::npos);
  // Quotes inside names must be escaped or the JSON is invalid.
  EXPECT_NE(json.find("cache \\\"probe\\\""), std::string::npos);
  EXPECT_EQ(json.find("cache \"probe\""), std::string::npos);
}

TEST(SpanTreeTest, RendersIndentedHierarchy) {
  SpanCollector collector(64, 1);
  const uint64_t trace_id = 0x77;
  const uint64_t root = RecordSpan(trace_id, 0, 0, "serve", 0, 10000,
                                   &collector);
  const uint64_t search = RecordSpan(trace_id, 0, root, "search", 2000, 9000,
                                     &collector);
  RecordSpan(trace_id, 0, search, "fuse", 6000, 8000, &collector);
  RecordSpan(trace_id, 0, root, "cache_probe", 100, 300, &collector);
  // A span whose parent lives in another process renders as a root.
  RecordSpan(trace_id, 0, 0xdead, "shard:search", 3000, 5000, &collector);
  const std::string tree = RenderSpanTree(trace_id, collector.Snapshot());
  EXPECT_NE(tree.find("trace 0x77 (5 spans)"), std::string::npos);
  EXPECT_NE(tree.find("\n  serve 10.000ms @+0.000ms"), std::string::npos);
  EXPECT_NE(tree.find("\n    cache_probe 0.200ms @+0.100ms"),
            std::string::npos);
  EXPECT_NE(tree.find("\n    search 7.000ms @+2.000ms"), std::string::npos);
  EXPECT_NE(tree.find("\n      fuse 2.000ms @+6.000ms"), std::string::npos);
  EXPECT_NE(tree.find("\n  shard:search 2.000ms @+3.000ms"),
            std::string::npos);
  // An unknown trace renders a placeholder instead of an empty string.
  EXPECT_NE(RenderSpanTree(0x123456, collector.Snapshot()).find("no spans"),
            std::string::npos);
}

}  // namespace
}  // namespace dust::obs
