// Unit tests for src/search: MinHash, D3L-style and Starmie-style union
// search, tuple-level search, and lake mutations (RemoveTable/AddTable/
// CompactIndex) with their staleness-hash contract.
#include <gtest/gtest.h>

#include "datagen/tus_generator.h"
#include "io/index_io.h"
#include "embed/embedder.h"
#include "search/embedding_search.h"
#include "search/minhash.h"
#include "search/overlap_search.h"
#include "search/tuple_search.h"

namespace dust::search {
namespace {

using table::Table;
using table::Value;

TEST(MinHashTest, IdenticalSetsEstimateOne) {
  std::vector<std::string> items = {"a", "b", "c", "d"};
  MinHashSketch s1(items, 64);
  MinHashSketch s2(items, 64);
  EXPECT_DOUBLE_EQ(s1.EstimateJaccard(s2), 1.0);
}

TEST(MinHashTest, DisjointSetsEstimateNearZero) {
  MinHashSketch s1({"a", "b", "c"}, 128);
  MinHashSketch s2({"x", "y", "z"}, 128);
  EXPECT_LT(s1.EstimateJaccard(s2), 0.1);
}

TEST(MinHashTest, EstimateTracksExactJaccard) {
  // |A ∩ B| = 50, |A ∪ B| = 150 -> J = 1/3.
  std::vector<std::string> a, b;
  for (int i = 0; i < 100; ++i) a.push_back("item" + std::to_string(i));
  for (int i = 50; i < 150; ++i) b.push_back("item" + std::to_string(i));
  MinHashSketch sa(a, 256);
  MinHashSketch sb(b, 256);
  EXPECT_NEAR(sa.EstimateJaccard(sb), ExactJaccard(a, b), 0.1);
}

TEST(MinHashTest, EmptySetsScoreZero) {
  MinHashSketch empty({}, 64);
  MinHashSketch full({"a"}, 64);
  EXPECT_DOUBLE_EQ(empty.EstimateJaccard(full), 0.0);
  EXPECT_TRUE(empty.empty());
}

TEST(MinHashTest, EmptyVersusEmptyScoresZero) {
  // Two empty sketches agree on every permutation slot; without the empty
  // guard that would read as J = 1 for two sets with no members at all.
  MinHashSketch a({}, 64);
  MinHashSketch b({}, 64);
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b), 0.0);
}

TEST(MinHashTest, MismatchedWidthsScoreZeroInsteadOfGarbage) {
  // Sketches of different widths are not comparable (slot i hashes under
  // different permutations); the estimate degrades to 0, never aborts.
  MinHashSketch narrow({"a", "b"}, 32);
  MinHashSketch wide({"a", "b"}, 64);
  EXPECT_DOUBLE_EQ(narrow.EstimateJaccard(wide), 0.0);
  EXPECT_DOUBLE_EQ(wide.EstimateJaccard(narrow), 0.0);
}

TEST(MinHashTest, ZeroHashSketchesScoreZero) {
  // num_hashes == 0 would divide 0/0 into NaN without the guard.
  MinHashSketch a({"a"}, 0);
  MinHashSketch b({"a"}, 0);
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b), 0.0);
}

TEST(OverlapConfigTest, DefaultsValidate) {
  EXPECT_TRUE(ValidateOverlapConfig(OverlapSearchConfig{}).ok());
}

TEST(OverlapConfigTest, NegativeWeightRejected) {
  OverlapSearchConfig config;
  config.weight_format = -0.1;
  Status status = ValidateOverlapConfig(config);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(OverlapConfigTest, AllZeroWeightsRejected) {
  OverlapSearchConfig config;
  config.weight_name = 0.0;
  config.weight_values = 0.0;
  config.weight_format = 0.0;
  config.weight_embedding = 0.0;
  Status status = ValidateOverlapConfig(config);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ExactJaccardTest, HandCheckedValues) {
  EXPECT_DOUBLE_EQ(ExactJaccard({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(ExactJaccard({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(ExactJaccard({"a", "a"}, {"a"}), 1.0);  // set semantics
}

// A small TUS-style benchmark shared by the search tests.
class SearchFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::TusConfig config;
    config.num_queries = 3;
    config.unionable_per_query = 4;
    config.distractors_per_base = 1;
    config.base_rows = 60;
    config.seed = 321;
    benchmark_ = new datagen::Benchmark(datagen::GenerateTus(config));
    lake_ = new std::vector<const Table*>();
    for (const auto& t : benchmark_->lake) lake_->push_back(&t.data);
  }
  static void TearDownTestSuite() {
    delete benchmark_;
    delete lake_;
  }
  static datagen::Benchmark* benchmark_;
  static std::vector<const Table*>* lake_;
};

datagen::Benchmark* SearchFixture::benchmark_ = nullptr;
std::vector<const Table*>* SearchFixture::lake_ = nullptr;

// Fraction of the top-n hits that are truly unionable with query q.
double PrecisionAtN(const std::vector<TableHit>& hits,
                    const std::vector<size_t>& truth) {
  if (hits.empty()) return 0.0;
  size_t good = 0;
  for (const TableHit& hit : hits) {
    for (size_t t : truth) {
      if (hit.table_index == t) {
        ++good;
        break;
      }
    }
  }
  return static_cast<double>(good) / static_cast<double>(hits.size());
}

TEST_F(SearchFixture, OverlapSearchRanksUnionableFirst) {
  OverlapUnionSearch search;
  search.IndexLake(*lake_);
  for (size_t q = 0; q < benchmark_->queries.size(); ++q) {
    auto hits = search.SearchTables(benchmark_->queries[q].data, 4);
    EXPECT_GE(PrecisionAtN(hits, benchmark_->unionable[q]), 0.75)
        << "query " << q;
  }
}

TEST_F(SearchFixture, EmbeddingSearchRanksUnionableFirst) {
  EmbeddingUnionSearch search;
  search.IndexLake(*lake_);
  for (size_t q = 0; q < benchmark_->queries.size(); ++q) {
    auto hits = search.SearchTables(benchmark_->queries[q].data, 4);
    EXPECT_GE(PrecisionAtN(hits, benchmark_->unionable[q]), 0.75)
        << "query " << q;
  }
}

TEST_F(SearchFixture, EmbeddingSearchShortlistStillFindsUnionable) {
  EmbeddingSearchConfig config;
  config.shortlist = 8;
  config.index_type = "ivf";
  EmbeddingUnionSearch search(config);
  search.IndexLake(*lake_);
  auto hits = search.SearchTables(benchmark_->queries[0].data, 4);
  EXPECT_GE(PrecisionAtN(hits, benchmark_->unionable[0]), 0.5);
}

TEST_F(SearchFixture, ScoresAreDescending) {
  OverlapUnionSearch search;
  search.IndexLake(*lake_);
  auto hits = search.SearchTables(benchmark_->queries[0].data, 10);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
}

TEST(TupleSearchTest, IdenticalTupleRanksFirst) {
  // Lake contains a copy of the query tuple; similarity search must put it
  // on top (the redundancy failure mode DUST addresses).
  Table query("q");
  ASSERT_TRUE(query.AddColumn("Park Name", {Value("River Park")}).ok());
  ASSERT_TRUE(query.AddColumn("Country", {Value("USA")}).ok());

  Table lake1("a");
  ASSERT_TRUE(lake1.AddColumn("Park Name",
                              {Value("River Park"), Value("Cedar Park")}).ok());
  ASSERT_TRUE(lake1.AddColumn("Country", {Value("USA"), Value("Canada")}).ok());

  auto encoder = std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(embed::MakeEmbedder(
          embed::ModelFamily::kRoberta,
          embed::DefaultConfigFor(embed::ModelFamily::kRoberta, 32))));
  TupleSearch search(encoder);
  search.IndexLake({&lake1});
  auto hits = search.SearchTuples(query, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].ref, (table::TupleRef{0, 0}));  // the exact copy
  EXPECT_GT(hits[0].similarity, hits[1].similarity);
}

TEST(TupleSearchTest, HonorsK) {
  Table lake1("a");
  ASSERT_TRUE(lake1.AddColumn(
      "X", {Value("a"), Value("b"), Value("c"), Value("d")}).ok());
  auto encoder = std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(embed::MakeEmbedder(
          embed::ModelFamily::kBert,
          embed::DefaultConfigFor(embed::ModelFamily::kBert, 16))));
  TupleSearch search(encoder);
  search.IndexLake({&lake1});
  EXPECT_EQ(search.num_indexed(), 4u);
  Table query("q");
  ASSERT_TRUE(query.AddColumn("X", {Value("a")}).ok());
  EXPECT_EQ(search.SearchTuples(query, 2).size(), 2u);
}

// --- lake mutations ---------------------------------------------------------

// Two small disjoint tables plus a TupleSearch over them, shared by the
// mutation tests below.
struct MutableLake {
  Table a{"a"};
  Table b{"b"};
  TupleSearch search;

  MutableLake()
      : search(std::make_shared<embed::PretrainedTupleEncoder>(
            std::shared_ptr<embed::TextEmbedder>(embed::MakeEmbedder(
                embed::ModelFamily::kBert,
                embed::DefaultConfigFor(embed::ModelFamily::kBert, 16))))) {
    EXPECT_TRUE(a.AddColumn("X", {Value("apple"), Value("avocado")}).ok());
    EXPECT_TRUE(b.AddColumn("X", {Value("banana"), Value("blueberry"),
                                  Value("bilberry")}).ok());
    search.IndexLake({&a, &b});
  }

  std::vector<TupleHit> Query(const std::string& cell, size_t k) {
    Table q("q");
    EXPECT_TRUE(q.AddColumn("X", {Value(cell)}).ok());
    return search.SearchTuples(q, k);
  }
};

TEST(TupleMutationTest, RemoveTableDropsItsTuplesAndBumpsHash) {
  MutableLake lake;
  const uint64_t fresh_hash = lake.search.LakeStateHash();
  ASSERT_EQ(lake.search.lake_live_vectors(), 5u);

  ASSERT_TRUE(lake.search.RemoveTable("b").ok());
  EXPECT_NE(lake.search.LakeStateHash(), fresh_hash)
      << "a mutated lake must not reuse the pre-mutation hash";
  EXPECT_EQ(lake.search.lake_live_vectors(), 2u);
  EXPECT_EQ(lake.search.lake_tombstoned_vectors(), 3u);
  EXPECT_EQ(lake.search.lake_mutations(), 1u);

  // Even a query aimed squarely at the removed table only sees survivors.
  auto hits = lake.Query("banana", 5);
  ASSERT_EQ(hits.size(), 2u);
  for (const TupleHit& h : hits) EXPECT_EQ(h.ref.table_index, 0u);
}

TEST(TupleMutationTest, AddTableServesNewTuples) {
  MutableLake lake;
  const uint64_t fresh_hash = lake.search.LakeStateHash();
  Table c("c");
  ASSERT_TRUE(c.AddColumn("X", {Value("cherry")}).ok());
  ASSERT_TRUE(lake.search.AddTable(c).ok());
  EXPECT_NE(lake.search.LakeStateHash(), fresh_hash);
  EXPECT_EQ(lake.search.lake_live_vectors(), 6u);

  auto hits = lake.Query("cherry", 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].ref, (table::TupleRef{2, 0}));
}

TEST(TupleMutationTest, ReAddUnderSameNameGetsAFreshHash) {
  // Remove "b" then add a different "b". If the hash only covered the live
  // table shapes it would collapse back to the original value and the
  // result cache could serve pre-mutation rows; the mutation counter in
  // the hash chain prevents that.
  MutableLake lake;
  const uint64_t fresh_hash = lake.search.LakeStateHash();
  ASSERT_TRUE(lake.search.RemoveTable("b").ok());
  Table b2("b");
  ASSERT_TRUE(b2.AddColumn("X", {Value("banana"), Value("blueberry"),
                                 Value("bilberry")}).ok());
  ASSERT_TRUE(lake.search.AddTable(b2).ok());
  EXPECT_NE(lake.search.LakeStateHash(), fresh_hash);
  EXPECT_EQ(lake.search.lake_mutations(), 2u);

  // The re-added copy serves from its new slot, not the tombstoned one.
  auto hits = lake.Query("banana", 6);
  ASSERT_EQ(hits.size(), 5u);
  for (const TupleHit& h : hits) EXPECT_NE(h.ref.table_index, 1u);
}

TEST(TupleMutationTest, MutationErrorPaths) {
  MutableLake lake;
  EXPECT_EQ(lake.search.RemoveTable("nope").code(), StatusCode::kNotFound);
  ASSERT_TRUE(lake.search.RemoveTable("b").ok());
  EXPECT_EQ(lake.search.RemoveTable("b").code(), StatusCode::kNotFound)
      << "removing an already-removed table";
  Table dup("a");
  EXPECT_TRUE(dup.AddColumn("X", {Value("z")}).ok());
  EXPECT_EQ(lake.search.AddTable(dup).code(), StatusCode::kInvalidArgument)
      << "a live table already owns the name";

  TupleSearch unindexed(std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(embed::MakeEmbedder(
          embed::ModelFamily::kBert,
          embed::DefaultConfigFor(embed::ModelFamily::kBert, 16)))));
  EXPECT_EQ(unindexed.RemoveTable("a").code(),
            StatusCode::kFailedPrecondition);
}

TEST(TupleMutationTest, CompactPreservesResultsAndHash) {
  MutableLake lake;
  ASSERT_TRUE(lake.search.RemoveTable("a").ok());
  const uint64_t mutated_hash = lake.search.LakeStateHash();
  auto before = lake.Query("blueberry", 3);
  ASSERT_EQ(before.size(), 3u);

  ASSERT_TRUE(lake.search.CompactIndex().ok());
  EXPECT_EQ(lake.search.lake_tombstoned_vectors(), 0u);
  EXPECT_EQ(lake.search.lake_live_vectors(), 3u);
  // Compaction changes the representation, not the visible lake: cached
  // results stay valid, so the hash must not move.
  EXPECT_EQ(lake.search.LakeStateHash(), mutated_hash);

  auto after = lake.Query("blueberry", 3);
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].ref, before[i].ref) << "rank " << i;
    EXPECT_DOUBLE_EQ(after[i].similarity, before[i].similarity)
        << "rank " << i;
  }
}

TEST_F(SearchFixture, EmbeddingRemoveTableExcludesItFromResults) {
  EmbeddingUnionSearch search;
  search.IndexLake(*lake_);
  const size_t victim = benchmark_->unionable[0].front();
  const std::string victim_name = (*lake_)[victim]->name();
  ASSERT_TRUE(search.RemoveTable(victim_name).ok());
  EXPECT_EQ(search.num_live_tables(), lake_->size() - 1);
  auto hits = search.SearchTables(benchmark_->queries[0].data,
                                  lake_->size());
  EXPECT_EQ(hits.size(), lake_->size() - 1);
  for (const TableHit& h : hits) EXPECT_NE(h.table_index, victim);

  EXPECT_EQ(search.RemoveTable(victim_name).code(), StatusCode::kNotFound);
}

TEST_F(SearchFixture, EmbeddingAddTableBecomesSearchable) {
  EmbeddingUnionSearch search;
  search.IndexLake(*lake_);
  // Re-adding a removed table under its own name is legal and serves from
  // the appended slot.
  const size_t victim = benchmark_->unionable[1].front();
  ASSERT_TRUE(search.RemoveTable((*lake_)[victim]->name()).ok());
  ASSERT_TRUE(search.AddTable(*(*lake_)[victim]).ok());
  EXPECT_EQ(search.num_live_tables(), lake_->size());
  auto hits = search.SearchTables(benchmark_->queries[1].data, 4);
  bool found_readded = false;
  for (const TableHit& h : hits) {
    EXPECT_NE(h.table_index, victim) << "tombstoned slot must stay dark";
    if (h.table_index == lake_->size()) found_readded = true;
  }
  EXPECT_TRUE(found_readded)
      << "the re-added unionable table should rank in the top 4";

  Table dup((*lake_)[0]->name());
  EXPECT_TRUE(dup.AddColumn("X", {Value("z")}).ok());
  EXPECT_EQ(search.AddTable(dup).code(), StatusCode::kInvalidArgument);
}

TEST_F(SearchFixture, EmbeddingMutationsRejectedAfterSnapshotRestore) {
  const std::string path = ::testing::TempDir() + "embed_mut_state.bin";
  EmbeddingUnionSearch search;
  search.IndexLake(*lake_);
  {
    io::IndexWriter writer(path);
    ASSERT_TRUE(search.SaveState(&writer).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  EmbeddingUnionSearch restored;
  {
    io::IndexReader reader(path);
    ASSERT_TRUE(restored.LoadState(&reader).ok());
  }
  // Snapshots do not carry table names, so a restored engine cannot
  // resolve mutations; it must refuse rather than guess.
  EXPECT_EQ(restored.RemoveTable((*lake_)[0]->name()).code(),
            StatusCode::kFailedPrecondition);
  Table extra("extra");
  EXPECT_TRUE(extra.AddColumn("X", {Value("z")}).ok());
  EXPECT_EQ(restored.AddTable(extra).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dust::search
