// Unit tests for src/search: MinHash, D3L-style and Starmie-style union
// search, tuple-level search.
#include <gtest/gtest.h>

#include "datagen/tus_generator.h"
#include "embed/embedder.h"
#include "search/embedding_search.h"
#include "search/minhash.h"
#include "search/overlap_search.h"
#include "search/tuple_search.h"

namespace dust::search {
namespace {

using table::Table;
using table::Value;

TEST(MinHashTest, IdenticalSetsEstimateOne) {
  std::vector<std::string> items = {"a", "b", "c", "d"};
  MinHashSketch s1(items, 64);
  MinHashSketch s2(items, 64);
  EXPECT_DOUBLE_EQ(s1.EstimateJaccard(s2), 1.0);
}

TEST(MinHashTest, DisjointSetsEstimateNearZero) {
  MinHashSketch s1({"a", "b", "c"}, 128);
  MinHashSketch s2({"x", "y", "z"}, 128);
  EXPECT_LT(s1.EstimateJaccard(s2), 0.1);
}

TEST(MinHashTest, EstimateTracksExactJaccard) {
  // |A ∩ B| = 50, |A ∪ B| = 150 -> J = 1/3.
  std::vector<std::string> a, b;
  for (int i = 0; i < 100; ++i) a.push_back("item" + std::to_string(i));
  for (int i = 50; i < 150; ++i) b.push_back("item" + std::to_string(i));
  MinHashSketch sa(a, 256);
  MinHashSketch sb(b, 256);
  EXPECT_NEAR(sa.EstimateJaccard(sb), ExactJaccard(a, b), 0.1);
}

TEST(MinHashTest, EmptySetsScoreZero) {
  MinHashSketch empty({}, 64);
  MinHashSketch full({"a"}, 64);
  EXPECT_DOUBLE_EQ(empty.EstimateJaccard(full), 0.0);
  EXPECT_TRUE(empty.empty());
}

TEST(MinHashTest, EmptyVersusEmptyScoresZero) {
  // Two empty sketches agree on every permutation slot; without the empty
  // guard that would read as J = 1 for two sets with no members at all.
  MinHashSketch a({}, 64);
  MinHashSketch b({}, 64);
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b), 0.0);
}

TEST(MinHashTest, MismatchedWidthsScoreZeroInsteadOfGarbage) {
  // Sketches of different widths are not comparable (slot i hashes under
  // different permutations); the estimate degrades to 0, never aborts.
  MinHashSketch narrow({"a", "b"}, 32);
  MinHashSketch wide({"a", "b"}, 64);
  EXPECT_DOUBLE_EQ(narrow.EstimateJaccard(wide), 0.0);
  EXPECT_DOUBLE_EQ(wide.EstimateJaccard(narrow), 0.0);
}

TEST(MinHashTest, ZeroHashSketchesScoreZero) {
  // num_hashes == 0 would divide 0/0 into NaN without the guard.
  MinHashSketch a({"a"}, 0);
  MinHashSketch b({"a"}, 0);
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b), 0.0);
}

TEST(OverlapConfigTest, DefaultsValidate) {
  EXPECT_TRUE(ValidateOverlapConfig(OverlapSearchConfig{}).ok());
}

TEST(OverlapConfigTest, NegativeWeightRejected) {
  OverlapSearchConfig config;
  config.weight_format = -0.1;
  Status status = ValidateOverlapConfig(config);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(OverlapConfigTest, AllZeroWeightsRejected) {
  OverlapSearchConfig config;
  config.weight_name = 0.0;
  config.weight_values = 0.0;
  config.weight_format = 0.0;
  config.weight_embedding = 0.0;
  Status status = ValidateOverlapConfig(config);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ExactJaccardTest, HandCheckedValues) {
  EXPECT_DOUBLE_EQ(ExactJaccard({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(ExactJaccard({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(ExactJaccard({"a", "a"}, {"a"}), 1.0);  // set semantics
}

// A small TUS-style benchmark shared by the search tests.
class SearchFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::TusConfig config;
    config.num_queries = 3;
    config.unionable_per_query = 4;
    config.distractors_per_base = 1;
    config.base_rows = 60;
    config.seed = 321;
    benchmark_ = new datagen::Benchmark(datagen::GenerateTus(config));
    lake_ = new std::vector<const Table*>();
    for (const auto& t : benchmark_->lake) lake_->push_back(&t.data);
  }
  static void TearDownTestSuite() {
    delete benchmark_;
    delete lake_;
  }
  static datagen::Benchmark* benchmark_;
  static std::vector<const Table*>* lake_;
};

datagen::Benchmark* SearchFixture::benchmark_ = nullptr;
std::vector<const Table*>* SearchFixture::lake_ = nullptr;

// Fraction of the top-n hits that are truly unionable with query q.
double PrecisionAtN(const std::vector<TableHit>& hits,
                    const std::vector<size_t>& truth) {
  if (hits.empty()) return 0.0;
  size_t good = 0;
  for (const TableHit& hit : hits) {
    for (size_t t : truth) {
      if (hit.table_index == t) {
        ++good;
        break;
      }
    }
  }
  return static_cast<double>(good) / static_cast<double>(hits.size());
}

TEST_F(SearchFixture, OverlapSearchRanksUnionableFirst) {
  OverlapUnionSearch search;
  search.IndexLake(*lake_);
  for (size_t q = 0; q < benchmark_->queries.size(); ++q) {
    auto hits = search.SearchTables(benchmark_->queries[q].data, 4);
    EXPECT_GE(PrecisionAtN(hits, benchmark_->unionable[q]), 0.75)
        << "query " << q;
  }
}

TEST_F(SearchFixture, EmbeddingSearchRanksUnionableFirst) {
  EmbeddingUnionSearch search;
  search.IndexLake(*lake_);
  for (size_t q = 0; q < benchmark_->queries.size(); ++q) {
    auto hits = search.SearchTables(benchmark_->queries[q].data, 4);
    EXPECT_GE(PrecisionAtN(hits, benchmark_->unionable[q]), 0.75)
        << "query " << q;
  }
}

TEST_F(SearchFixture, EmbeddingSearchShortlistStillFindsUnionable) {
  EmbeddingSearchConfig config;
  config.shortlist = 8;
  config.index_type = "ivf";
  EmbeddingUnionSearch search(config);
  search.IndexLake(*lake_);
  auto hits = search.SearchTables(benchmark_->queries[0].data, 4);
  EXPECT_GE(PrecisionAtN(hits, benchmark_->unionable[0]), 0.5);
}

TEST_F(SearchFixture, ScoresAreDescending) {
  OverlapUnionSearch search;
  search.IndexLake(*lake_);
  auto hits = search.SearchTables(benchmark_->queries[0].data, 10);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
}

TEST(TupleSearchTest, IdenticalTupleRanksFirst) {
  // Lake contains a copy of the query tuple; similarity search must put it
  // on top (the redundancy failure mode DUST addresses).
  Table query("q");
  ASSERT_TRUE(query.AddColumn("Park Name", {Value("River Park")}).ok());
  ASSERT_TRUE(query.AddColumn("Country", {Value("USA")}).ok());

  Table lake1("a");
  ASSERT_TRUE(lake1.AddColumn("Park Name",
                              {Value("River Park"), Value("Cedar Park")}).ok());
  ASSERT_TRUE(lake1.AddColumn("Country", {Value("USA"), Value("Canada")}).ok());

  auto encoder = std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(embed::MakeEmbedder(
          embed::ModelFamily::kRoberta,
          embed::DefaultConfigFor(embed::ModelFamily::kRoberta, 32))));
  TupleSearch search(encoder);
  search.IndexLake({&lake1});
  auto hits = search.SearchTuples(query, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].ref, (table::TupleRef{0, 0}));  // the exact copy
  EXPECT_GT(hits[0].similarity, hits[1].similarity);
}

TEST(TupleSearchTest, HonorsK) {
  Table lake1("a");
  ASSERT_TRUE(lake1.AddColumn(
      "X", {Value("a"), Value("b"), Value("c"), Value("d")}).ok());
  auto encoder = std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(embed::MakeEmbedder(
          embed::ModelFamily::kBert,
          embed::DefaultConfigFor(embed::ModelFamily::kBert, 16))));
  TupleSearch search(encoder);
  search.IndexLake({&lake1});
  EXPECT_EQ(search.num_indexed(), 4u);
  Table query("q");
  ASSERT_TRUE(query.AddColumn("X", {Value("a")}).ok());
  EXPECT_EQ(search.SearchTuples(query, 2).size(), 2u);
}

}  // namespace
}  // namespace dust::search
