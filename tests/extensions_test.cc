// Tests for the extension components: the DisC-style threshold diversifier,
// the pipeline's weak-table filter, CSV file round trips (the CLI path),
// and cross-metric behavioural invariants.
#include <gtest/gtest.h>

#include <set>

#include "core/pipeline.h"
#include "datagen/tus_generator.h"
#include "diversify/dust_diversifier.h"
#include "diversify/metrics.h"
#include "diversify/threshold_div.h"
#include "embed/tuple_encoder.h"
#include "table/csv.h"
#include "util/rng.h"

namespace dust {
namespace {

using la::Metric;
using la::Vec;

std::vector<Vec> RandomUnitPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> out;
  for (size_t i = 0; i < n; ++i) {
    Vec v(dim);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    la::NormalizeInPlace(&v);
    out.push_back(v);
  }
  return out;
}

TEST(ThresholdDiversifierTest, CoverTouchesEveryTuple) {
  std::vector<Vec> lake = RandomUnitPoints(60, 8, 1);
  diversify::DiversifyInput input;
  input.lake = &lake;
  diversify::ThresholdDiversifier disc;
  const float radius = 0.8f;
  std::vector<size_t> cover = disc.CoverWithRadius(input, radius);
  // Every lake tuple must be within radius of some cover member.
  for (size_t i = 0; i < lake.size(); ++i) {
    bool covered = false;
    for (size_t c : cover) {
      if (la::Distance(input.metric, lake[i], lake[c]) <= radius) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "tuple " << i;
  }
}

TEST(ThresholdDiversifierTest, CoverMembersAreMutuallyDissimilar) {
  std::vector<Vec> lake = RandomUnitPoints(80, 8, 2);
  diversify::DiversifyInput input;
  input.lake = &lake;
  diversify::ThresholdDiversifier disc;
  const float radius = 0.7f;
  std::vector<size_t> cover = disc.CoverWithRadius(input, radius);
  for (size_t a = 0; a < cover.size(); ++a) {
    for (size_t b = a + 1; b < cover.size(); ++b) {
      EXPECT_GT(la::Distance(input.metric, lake[cover[a]], lake[cover[b]]),
                radius);
    }
  }
}

TEST(ThresholdDiversifierTest, RadiusZeroSelectsEverything) {
  std::vector<Vec> lake = RandomUnitPoints(15, 4, 3);
  diversify::DiversifyInput input;
  input.lake = &lake;
  diversify::ThresholdDiversifier disc;
  EXPECT_EQ(disc.CoverWithRadius(input, 0.0f).size(), 15u);
}

TEST(ThresholdDiversifierTest, KAdapterReturnsExactlyK) {
  std::vector<Vec> lake = RandomUnitPoints(100, 8, 4);
  diversify::DiversifyInput input;
  input.lake = &lake;
  diversify::ThresholdDiversifier disc;
  for (size_t k : {1u, 7u, 30u}) {
    std::vector<size_t> selected = disc.SelectDiverse(input, k);
    EXPECT_EQ(selected.size(), k);
    std::set<size_t> unique(selected.begin(), selected.end());
    EXPECT_EQ(unique.size(), k);
  }
}

TEST(ThresholdDiversifierTest, EmptyAndOversizedK) {
  std::vector<Vec> lake;
  diversify::DiversifyInput input;
  input.lake = &lake;
  diversify::ThresholdDiversifier disc;
  EXPECT_TRUE(disc.SelectDiverse(input, 5).empty());
  lake = RandomUnitPoints(4, 4, 5);
  EXPECT_EQ(disc.SelectDiverse(input, 99).size(), 4u);
}

// The paper's Sec. 6.4.1 claim: relative performance is stable across
// distance functions. We test the invariant that matters downstream: DUST
// beats a min-diversity floor under every metric.
class MetricSweepTest : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricSweepTest, DustProducesNonDegenerateSelections) {
  Metric metric = GetParam();
  std::vector<Vec> query = RandomUnitPoints(5, 8, 6);
  std::vector<Vec> lake = RandomUnitPoints(80, 8, 7);
  // Add exact copies of query tuples (redundancy) that DUST must avoid.
  for (const Vec& q : query) lake.push_back(q);
  diversify::DiversifyInput input;
  input.query = &query;
  input.lake = &lake;
  input.metric = metric;
  diversify::DustDiversifier dust;
  std::vector<size_t> selected = dust.SelectDiverse(input, 10);
  std::vector<Vec> points;
  for (size_t i : selected) points.push_back(lake[i]);
  EXPECT_GT(diversify::MinDiversity(query, points, metric), 0.0);
  // No exact query copy may be selected (its min distance is 0).
  for (size_t i : selected) EXPECT_LT(i, 80u);
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricSweepTest,
                         ::testing::Values(Metric::kCosine, Metric::kEuclidean,
                                           Metric::kManhattan));

TEST(CsvFileTest, WriteReadRoundTrip) {
  table::Table t("roundtrip");
  ASSERT_TRUE(t.AddColumn("Park Name",
                          {table::Value("River Park"),
                           table::Value("Brandon, MN park")}).ok());
  ASSERT_TRUE(t.AddColumn("Note",
                          {table::Value::Null(),
                           table::Value("says \"hi\"")}).ok());
  std::string path = ::testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(table::WriteCsvFile(t, path).ok());
  auto back = table::ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().name(), "roundtrip");
  EXPECT_EQ(back.value().num_rows(), 2u);
  EXPECT_TRUE(back.value().at(0, 1).is_null());
  EXPECT_EQ(back.value().at(1, 1).text(), "says \"hi\"");
}

TEST(CsvFileTest, MissingFileErrors) {
  EXPECT_FALSE(table::ReadCsvFile("/nonexistent/nope.csv").ok());
}

TEST(PipelineFilterTest, WeakTablesDropped) {
  // A lake with one strongly unionable table and one unrelated table: the
  // score filter must keep only the former.
  datagen::TusConfig config;
  config.num_queries = 2;
  config.unionable_per_query = 2;
  config.distractors_per_base = 1;
  config.base_rows = 50;
  config.seed = 777;
  datagen::Benchmark benchmark = datagen::GenerateTus(config);
  std::vector<const table::Table*> lake;
  for (const auto& t : benchmark.lake) lake.push_back(&t.data);

  embed::EmbedderConfig encoder_config;
  encoder_config.dim = 48;
  encoder_config.noise_level = 0.0f;
  auto encoder = std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(
          embed::MakeEmbedder(embed::ModelFamily::kRoberta, encoder_config)));

  core::PipelineConfig strict;
  strict.num_tables = lake.size();
  strict.min_table_score = 0.35;
  core::DustPipeline pipeline(strict, encoder);
  pipeline.IndexLake(lake);
  auto result = pipeline.Run(benchmark.queries[0].data, 5);
  ASSERT_TRUE(result.ok());
  std::set<size_t> truth(benchmark.unionable[0].begin(),
                         benchmark.unionable[0].end());
  for (const search::TableHit& hit : result.value().tables) {
    EXPECT_TRUE(truth.count(hit.table_index))
        << "weak table " << hit.table_index << " not filtered";
  }
}

TEST(PipelineFilterTest, TopTableAlwaysKept) {
  datagen::TusConfig config;
  config.num_queries = 1;
  config.unionable_per_query = 2;
  config.base_rows = 40;
  datagen::Benchmark benchmark = datagen::GenerateTus(config);
  std::vector<const table::Table*> lake;
  for (const auto& t : benchmark.lake) lake.push_back(&t.data);
  embed::EmbedderConfig encoder_config;
  encoder_config.dim = 32;
  auto encoder = std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(
          embed::MakeEmbedder(embed::ModelFamily::kRoberta, encoder_config)));
  core::PipelineConfig config2;
  config2.min_table_score = 1e9;  // absurd threshold
  core::DustPipeline pipeline(config2, encoder);
  pipeline.IndexLake(lake);
  auto result = pipeline.Run(benchmark.queries[0].data, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().tables.size(), 1u);
}

TEST(PipelineDeterminismTest, SameSeedSameOutput) {
  datagen::TusConfig config;
  config.num_queries = 1;
  config.unionable_per_query = 3;
  config.base_rows = 40;
  datagen::Benchmark benchmark = datagen::GenerateTus(config);
  std::vector<const table::Table*> lake;
  for (const auto& t : benchmark.lake) lake.push_back(&t.data);
  embed::EmbedderConfig encoder_config;
  encoder_config.dim = 32;
  auto encoder = std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(
          embed::MakeEmbedder(embed::ModelFamily::kRoberta, encoder_config)));
  core::DustPipeline a(core::PipelineConfig{}, encoder);
  core::DustPipeline b(core::PipelineConfig{}, encoder);
  a.IndexLake(lake);
  b.IndexLake(lake);
  auto ra = a.Run(benchmark.queries[0].data, 5);
  auto rb = b.Run(benchmark.queries[0].data, 5);
  ASSERT_TRUE(ra.ok() && rb.ok());
  ASSERT_EQ(ra.value().provenance.size(), rb.value().provenance.size());
  for (size_t i = 0; i < ra.value().provenance.size(); ++i) {
    EXPECT_EQ(ra.value().provenance[i], rb.value().provenance[i]);
  }
}

}  // namespace
}  // namespace dust
