// Unit + property tests for src/index: Flat, IVF-Flat, LSH, and HNSW
// indexes, plus the batched query path shared by all of them.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>

#include "index/flat_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_index.h"
#include "index/lsh_index.h"
#include "la/simd/kernels.h"
#include "shard/sharded_index.h"
#include "util/rng.h"

namespace dust::index {
namespace {

std::vector<la::Vec> RandomUnitVectors(size_t n, size_t dim, uint64_t seed) {
  dust::Rng rng(seed);
  std::vector<la::Vec> out;
  for (size_t i = 0; i < n; ++i) {
    la::Vec v(dim);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    la::NormalizeInPlace(&v);
    out.push_back(v);
  }
  return out;
}

TEST(FlatIndexTest, ExactNearestNeighbor) {
  FlatIndex index(2, la::Metric::kEuclidean);
  index.Add({0, 0});
  index.Add({5, 0});
  index.Add({0, 3});
  auto hits = index.Search({0.4f, 0.1f}, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_EQ(hits[1].id, 2u);
}

TEST(FlatIndexTest, KLargerThanSizeReturnsAll) {
  FlatIndex index(1, la::Metric::kEuclidean);
  index.Add({1.0f});
  auto hits = index.Search({0.0f}, 10);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(FlatIndexTest, IdenticalVectorAtDistanceZero) {
  FlatIndex index(3, la::Metric::kCosine);
  la::Vec v = {0.6f, 0.8f, 0.0f};
  index.Add(v);
  auto hits = index.Search(v, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NEAR(hits[0].distance, 0.0f, 1e-5);
}

TEST(FlatIndexTest, AddAllMatchesPerVectorAdd) {
  // The bulk override must be observably identical to the Add loop it
  // replaces: same ids, same cached norms, bit-identical search results.
  auto vectors = RandomUnitVectors(120, 8, 61);
  FlatIndex bulk(8, la::Metric::kCosine);
  bulk.AddAll(vectors);
  FlatIndex loop(8, la::Metric::kCosine);
  for (const auto& v : vectors) loop.Add(v);
  ASSERT_EQ(bulk.size(), loop.size());
  auto queries = RandomUnitVectors(8, 8, 6100);
  auto expected = loop.SearchBatch(queries, 7);
  auto actual = bulk.SearchBatch(queries, 7);
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(expected[q].size(), actual[q].size());
    for (size_t i = 0; i < expected[q].size(); ++i) {
      EXPECT_EQ(expected[q][i].id, actual[q][i].id);
      EXPECT_EQ(expected[q][i].distance, actual[q][i].distance);
    }
  }
}

TEST(FlatIndexTest, AddAllAppendsAfterExistingVectors) {
  auto vectors = RandomUnitVectors(10, 4, 62);
  FlatIndex index(4, la::Metric::kCosine);
  index.Add(vectors[0]);
  index.AddAll({vectors.begin() + 1, vectors.end()});
  EXPECT_EQ(index.size(), 10u);
  auto hits = index.Search(vectors[9], 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 9u);
}

TEST(FinalizeHitsTest, SortsByDistanceThenId) {
  std::vector<SearchHit> hits = {{3, 0.5f}, {1, 0.5f}, {2, 0.1f}};
  FinalizeHits(&hits, 3);
  EXPECT_EQ(hits[0].id, 2u);
  EXPECT_EQ(hits[1].id, 1u);
  EXPECT_EQ(hits[2].id, 3u);
  FinalizeHits(&hits, 1);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(IvfIndexTest, FullProbeMatchesExact) {
  auto vectors = RandomUnitVectors(200, 8, 21);
  IvfConfig config;
  config.nlist = 8;
  config.nprobe = 8;  // probe everything -> exact
  IvfFlatIndex ivf(8, la::Metric::kCosine, config);
  FlatIndex flat(8, la::Metric::kCosine);
  for (const auto& v : vectors) {
    ivf.Add(v);
    flat.Add(v);
  }
  ivf.Train();
  la::Vec query = RandomUnitVectors(1, 8, 777)[0];
  auto exact = flat.Search(query, 5);
  auto approx = ivf.Search(query, 5);
  ASSERT_EQ(exact.size(), approx.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(exact[i].id, approx[i].id);
  }
}

TEST(IvfIndexTest, PartialProbeHasGoodRecall) {
  auto vectors = RandomUnitVectors(500, 16, 22);
  IvfConfig config;
  config.nlist = 16;
  config.nprobe = 6;
  IvfFlatIndex ivf(16, la::Metric::kCosine, config);
  FlatIndex flat(16, la::Metric::kCosine);
  for (const auto& v : vectors) {
    ivf.Add(v);
    flat.Add(v);
  }
  ivf.Train();
  size_t found = 0;
  size_t total = 0;
  for (uint64_t q = 0; q < 20; ++q) {
    la::Vec query = RandomUnitVectors(1, 16, 1000 + q)[0];
    auto exact = flat.Search(query, 10);
    auto approx = ivf.Search(query, 10);
    std::set<size_t> approx_ids;
    for (const auto& h : approx) approx_ids.insert(h.id);
    for (const auto& h : exact) {
      ++total;
      if (approx_ids.count(h.id)) ++found;
    }
  }
  EXPECT_GT(static_cast<double>(found) / static_cast<double>(total), 0.6);
}

TEST(IvfIndexTest, LazyTrainOnSearch) {
  IvfFlatIndex ivf(4, la::Metric::kEuclidean);
  ivf.Add({1, 0, 0, 0});
  ivf.Add({0, 1, 0, 0});
  EXPECT_FALSE(ivf.trained());
  auto hits = ivf.Search({1, 0, 0, 0}, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 0u);
}

TEST(LshIndexTest, SignatureDeterministic) {
  LshIndex lsh(8, la::Metric::kCosine);
  la::Vec v = RandomUnitVectors(1, 8, 5)[0];
  EXPECT_EQ(lsh.Signature(v), lsh.Signature(v));
}

TEST(LshIndexTest, NearbyVectorsShareMostBits) {
  LshConfig config;
  config.nbits = 16;
  LshIndex lsh(8, la::Metric::kCosine, config);
  la::Vec v = RandomUnitVectors(1, 8, 6)[0];
  la::Vec w = v;
  w[0] += 0.01f;
  la::NormalizeInPlace(&w);
  uint64_t diff = lsh.Signature(v) ^ lsh.Signature(w);
  EXPECT_LE(__builtin_popcountll(diff), 3);
}

TEST(LshIndexTest, FindsIdenticalVector) {
  LshIndex lsh(8, la::Metric::kCosine);
  auto vectors = RandomUnitVectors(100, 8, 7);
  for (const auto& v : vectors) lsh.Add(v);
  auto hits = lsh.Search(vectors[42], 1);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].id, 42u);
}

TEST(LshIndexTest, RecallReasonableWithProbing) {
  LshConfig config;
  config.nbits = 10;
  config.probe_radius = 2;
  LshIndex lsh(16, la::Metric::kCosine, config);
  FlatIndex flat(16, la::Metric::kCosine);
  auto vectors = RandomUnitVectors(400, 16, 8);
  for (const auto& v : vectors) {
    lsh.Add(v);
    flat.Add(v);
  }
  size_t found = 0;
  for (uint64_t q = 0; q < 20; ++q) {
    la::Vec query = RandomUnitVectors(1, 16, 2000 + q)[0];
    auto exact = flat.Search(query, 1);
    auto approx = lsh.Search(query, 5);
    for (const auto& h : approx) {
      if (h.id == exact[0].id) {
        ++found;
        break;
      }
    }
  }
  EXPECT_GE(found, 8u);  // at least 40% top-1 recall on random data
}

TEST(HnswIndexTest, FindsIdenticalVector) {
  HnswIndex hnsw(8, la::Metric::kCosine);
  auto vectors = RandomUnitVectors(300, 8, 9);
  for (const auto& v : vectors) hnsw.Add(v);
  auto hits = hnsw.Search(vectors[123], 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 123u);
  EXPECT_NEAR(hits[0].distance, 0.0f, 1e-5);
}

TEST(HnswIndexTest, HierarchyHasUpperLayers) {
  HnswIndex hnsw(8, la::Metric::kCosine);
  auto vectors = RandomUnitVectors(500, 8, 10);
  for (const auto& v : vectors) hnsw.Add(v);
  // With M=16 the expected fraction of nodes above layer 0 is 1/16, so 500
  // inserts give upper layers with overwhelming probability.
  EXPECT_GE(hnsw.max_level(), 1);
}

TEST(HnswIndexTest, RecallAt10AtLeast95PercentVsFlat) {
  const size_t kDim = 16;
  auto vectors = RandomUnitVectors(2000, kDim, 11);
  HnswIndex hnsw(kDim, la::Metric::kCosine);
  FlatIndex flat(kDim, la::Metric::kCosine);
  for (const auto& v : vectors) {
    hnsw.Add(v);
    flat.Add(v);
  }
  size_t found = 0;
  size_t total = 0;
  for (uint64_t q = 0; q < 50; ++q) {
    la::Vec query = RandomUnitVectors(1, kDim, 4000 + q)[0];
    auto exact = flat.Search(query, 10);
    auto approx = hnsw.Search(query, 10);
    std::set<size_t> approx_ids;
    for (const auto& h : approx) approx_ids.insert(h.id);
    for (const auto& h : exact) {
      ++total;
      if (approx_ids.count(h.id)) ++found;
    }
  }
  EXPECT_GE(static_cast<double>(found) / static_cast<double>(total), 0.95);
}

TEST(HnswIndexTest, EuclideanMetricExactOnSmallSet) {
  HnswIndex hnsw(2, la::Metric::kEuclidean);
  hnsw.Add({0, 0});
  hnsw.Add({5, 0});
  hnsw.Add({0, 3});
  auto hits = hnsw.Search({0.4f, 0.1f}, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_EQ(hits[1].id, 2u);
}

TEST(HnswIndexTest, DeterministicAcrossRebuilds) {
  auto vectors = RandomUnitVectors(400, 12, 14);
  la::Vec query = RandomUnitVectors(1, 12, 5000)[0];
  std::vector<size_t> first_ids;
  for (int run = 0; run < 2; ++run) {
    HnswIndex hnsw(12, la::Metric::kCosine);
    for (const auto& v : vectors) hnsw.Add(v);
    auto hits = hnsw.Search(query, 10);
    std::vector<size_t> ids;
    for (const auto& h : hits) ids.push_back(h.id);
    if (run == 0) {
      first_ids = ids;
    } else {
      EXPECT_EQ(first_ids, ids);
    }
  }
}

// Property suite over all index types: structural invariants.
using IndexFactory = std::function<std::unique_ptr<VectorIndex>()>;

class IndexPropertyTest : public ::testing::TestWithParam<
                              std::pair<const char*, IndexFactory>> {};

TEST_P(IndexPropertyTest, HitsAreValidSortedAndBounded) {
  auto index = GetParam().second();
  auto vectors = RandomUnitVectors(120, index->dim(), 33);
  index->AddAll(vectors);
  EXPECT_EQ(index->size(), 120u);
  for (uint64_t q = 0; q < 10; ++q) {
    la::Vec query = RandomUnitVectors(1, index->dim(), 3000 + q)[0];
    auto hits = index->Search(query, 7);
    EXPECT_LE(hits.size(), 7u);
    std::set<size_t> seen;
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_LT(hits[i].id, 120u);
      EXPECT_TRUE(seen.insert(hits[i].id).second) << "duplicate id";
      if (i > 0) {
        EXPECT_GE(hits[i].distance, hits[i - 1].distance);
      }
    }
  }
}

TEST_P(IndexPropertyTest, EmptyIndexReturnsNothing) {
  auto index = GetParam().second();
  auto hits = index->Search(la::Vec(index->dim(), 0.5f), 3);
  EXPECT_TRUE(hits.empty());
}

TEST_P(IndexPropertyTest, SearchBatchMatchesSequentialSearch) {
  auto index = GetParam().second();
  index->AddAll(RandomUnitVectors(150, index->dim(), 44));
  auto queries = RandomUnitVectors(23, index->dim(), 4500);
  auto batched = index->SearchBatch(queries, 6);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    auto sequential = index->Search(queries[q], 6);
    ASSERT_EQ(batched[q].size(), sequential.size()) << "query " << q;
    for (size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(batched[q][i].id, sequential[i].id) << "query " << q;
      EXPECT_FLOAT_EQ(batched[q][i].distance, sequential[i].distance)
          << "query " << q;
    }
  }
}

TEST_P(IndexPropertyTest, SearchBatchEmptyQueries) {
  auto index = GetParam().second();
  index->AddAll(RandomUnitVectors(30, index->dim(), 45));
  EXPECT_TRUE(index->SearchBatch({}, 5).empty());
}

TEST_P(IndexPropertyTest, SearchBatchParityAcrossKernelBackends) {
  // The same built index must rank candidates identically whether the
  // distance kernels run on the scalar fallback (DUST_FORCE_SCALAR) or the
  // dispatched SIMD backend; distances may differ only by accumulation
  // noise. When the environment already forces scalar (the CI fallback
  // leg) both sides run scalar and the test degenerates to determinism.
  auto index = GetParam().second();
  index->AddAll(RandomUnitVectors(150, index->dim(), 46));
  auto queries = RandomUnitVectors(16, index->dim(), 4700);

  la::simd::ForceScalar(true);
  auto scalar_results = index->SearchBatch(queries, 8);
  la::simd::ForceScalar(false);  // back to the startup selection
  auto active_results = index->SearchBatch(queries, 8);

  ASSERT_EQ(scalar_results.size(), active_results.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(scalar_results[q].size(), active_results[q].size())
        << "query " << q;
    for (size_t i = 0; i < scalar_results[q].size(); ++i) {
      EXPECT_EQ(scalar_results[q][i].id, active_results[q][i].id)
          << "query " << q << " rank " << i;
      EXPECT_NEAR(scalar_results[q][i].distance,
                  active_results[q][i].distance, 1e-5f)
          << "query " << q << " rank " << i;
    }
  }
}

// --- tombstoned deletes ----------------------------------------------------

TEST_P(IndexPropertyTest, TombstonedVectorsNeverReturned) {
  // Shared mutable-lake invariant: after random deletes, searches return
  // only live ids, stay sorted and duplicate-free, and the live/size
  // accounting is exact. Holds for every index family, sharded included.
  auto index = GetParam().second();
  auto vectors = RandomUnitVectors(140, index->dim(), 77);
  index->AddAll(vectors);
  dust::Rng rng(78);
  std::vector<size_t> dead_ids = rng.SampleWithoutReplacement(140, 35);
  EXPECT_EQ(index->RemoveAll(dead_ids), 35u);
  EXPECT_EQ(index->size(), 140u);
  EXPECT_EQ(index->live_size(), 105u);
  EXPECT_EQ(index->num_tombstones(), 35u);
  std::set<size_t> dead(dead_ids.begin(), dead_ids.end());
  for (uint64_t q = 0; q < 10; ++q) {
    la::Vec query = RandomUnitVectors(1, index->dim(), 7000 + q)[0];
    auto hits = index->Search(query, 20);
    EXPECT_LE(hits.size(), 20u);
    std::set<size_t> seen;
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_LT(hits[i].id, 140u);
      EXPECT_EQ(dead.count(hits[i].id), 0u)
          << "tombstoned id " << hits[i].id << " returned";
      EXPECT_TRUE(seen.insert(hits[i].id).second) << "duplicate id";
      if (i > 0) EXPECT_GE(hits[i].distance, hits[i - 1].distance);
    }
  }
}

TEST_P(IndexPropertyTest, RemoveReturnSemantics) {
  auto index = GetParam().second();
  index->AddAll(RandomUnitVectors(10, index->dim(), 79));
  EXPECT_TRUE(index->Remove(3));
  EXPECT_FALSE(index->Remove(3));   // already dead
  EXPECT_FALSE(index->Remove(99));  // out of range
  EXPECT_EQ(index->RemoveAll({1, 1, 2}), 2u);  // duplicate counts once
  EXPECT_EQ(index->live_size(), 7u);
  EXPECT_EQ(index->Tombstones(), (std::vector<size_t>{1, 2, 3}));
  EXPECT_TRUE(index->IsDead(2));
  EXPECT_FALSE(index->IsDead(0));
}

/// Asserts that `factory`'s index, after deleting `num_dead` random ids,
/// answers queries bit-identically to a freshly built index over the
/// survivors (ids mapped through the survivor order). Only meaningful for
/// exact configurations — flat, full-probe IVF, and LSH (whose buckets are
/// pure functions of seeded hyperplanes, so survivor buckets match).
void ExpectDeleteParityVsRebuild(
    const std::function<std::unique_ptr<VectorIndex>()>& factory,
    uint64_t seed) {
  const size_t kN = 180;
  auto full = factory();
  auto vectors = RandomUnitVectors(kN, full->dim(), seed);
  full->AddAll(vectors);
  dust::Rng rng(seed + 1);
  std::vector<size_t> dead_ids = rng.SampleWithoutReplacement(kN, kN / 3);
  ASSERT_EQ(full->RemoveAll(dead_ids), kN / 3);
  std::set<size_t> dead(dead_ids.begin(), dead_ids.end());

  auto rebuilt = factory();
  std::vector<la::Vec> survivors;
  std::vector<size_t> survivor_of;  // old id -> rebuilt id
  survivor_of.assign(kN, size_t{0} - 1);
  for (size_t id = 0; id < kN; ++id) {
    if (dead.count(id)) continue;
    survivor_of[id] = survivors.size();
    survivors.push_back(vectors[id]);
  }
  rebuilt->AddAll(survivors);

  auto queries = RandomUnitVectors(24, full->dim(), seed + 2);
  auto filtered = full->SearchBatch(queries, 12);
  auto fresh = rebuilt->SearchBatch(queries, 12);
  ASSERT_EQ(filtered.size(), fresh.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(filtered[q].size(), fresh[q].size()) << "query " << q;
    for (size_t i = 0; i < filtered[q].size(); ++i) {
      EXPECT_EQ(survivor_of[filtered[q][i].id], fresh[q][i].id)
          << "query " << q << " rank " << i;
      // Exact float equality: filtering must change which vectors are
      // scored, never how they are scored.
      EXPECT_EQ(filtered[q][i].distance, fresh[q][i].distance)
          << "query " << q << " rank " << i;
    }
  }
}

TEST(TombstoneParityTest, FlatMatchesRebuildOverSurvivors) {
  ExpectDeleteParityVsRebuild(
      [] {
        return std::unique_ptr<VectorIndex>(
            new FlatIndex(12, la::Metric::kCosine));
      },
      81);
}

TEST(TombstoneParityTest, FullProbeIvfMatchesRebuildOverSurvivors) {
  // Full probe makes IVF exact regardless of clustering, so the rebuilt
  // index (different centroids) must still answer bit-identically.
  ExpectDeleteParityVsRebuild(
      [] {
        IvfConfig config;
        config.nlist = 8;
        config.nprobe = 8;
        return std::unique_ptr<VectorIndex>(
            new IvfFlatIndex(12, la::Metric::kCosine, config));
      },
      83);
}

TEST(TombstoneParityTest, LshMatchesRebuildOverSurvivors) {
  ExpectDeleteParityVsRebuild(
      [] {
        LshConfig config;
        config.probe_radius = 2;
        return std::unique_ptr<VectorIndex>(
            new LshIndex(12, la::Metric::kCosine, config));
      },
      85);
}

TEST(TombstoneParityTest, ShardedFlatMatchesRebuildOverSurvivors) {
  // Round-robin placement keeps survivor ids monotone within each shard,
  // but the rebuilt index places survivors differently; parity holds
  // because flat children are exact and the merge is deterministic.
  ExpectDeleteParityVsRebuild(
      [] {
        return MakeVectorIndex("sharded:flat:3", 12, la::Metric::kCosine);
      },
      87);
}

TEST(FlatIndexTest, DeleteThenSearchReturnsKLiveHits) {
  // Tombstones are skipped before scoring, not truncated after: k live
  // vectors in the store means k hits, however many neighbors are dead.
  FlatIndex index(8, la::Metric::kCosine);
  index.AddAll(RandomUnitVectors(100, 8, 88));
  std::vector<size_t> dead;
  for (size_t id = 0; id < 60; ++id) dead.push_back(id);
  ASSERT_EQ(index.RemoveAll(dead), 60u);
  auto hits = index.Search(RandomUnitVectors(1, 8, 89)[0], 30);
  EXPECT_EQ(hits.size(), 30u);
  for (const auto& h : hits) EXPECT_GE(h.id, 60u);
  // Nearly everything dead: all three live vectors still come back.
  ASSERT_EQ(index.RemoveAll([] {
              std::vector<size_t> rest;
              for (size_t id = 60; id < 97; ++id) rest.push_back(id);
              return rest;
            }()),
            37u);
  hits = index.Search(RandomUnitVectors(1, 8, 90)[0], 10);
  EXPECT_EQ(hits.size(), 3u);
}

TEST(HnswIndexTest, HeavyDeletesStillReachAllLiveVectors) {
  // With ef >= size the beam is exhaustive, and dead nodes must still be
  // expanded as waypoints: every live vector is reachable even when most
  // of the graph is tombstoned.
  HnswIndex hnsw(8, la::Metric::kCosine);
  auto vectors = RandomUnitVectors(50, 8, 91);
  for (const auto& v : vectors) hnsw.Add(v);
  std::vector<size_t> dead;
  for (size_t id = 0; id < 40; ++id) dead.push_back(id);
  ASSERT_EQ(hnsw.RemoveAll(dead), 40u);
  auto hits = hnsw.Search(RandomUnitVectors(1, 8, 92)[0], 10);
  EXPECT_EQ(hits.size(), 10u);
  for (const auto& h : hits) EXPECT_GE(h.id, 40u);
}

TEST(HnswIndexTest, RecallHoldsAfterTombstoning) {
  // Approximate parity: HNSW cannot promise bit-identical results to a
  // rebuild, but filtered recall against a flat scan over the survivors
  // must stay high (the ef widening compensates for dead waypoints).
  const size_t kDim = 16;
  auto vectors = RandomUnitVectors(2000, kDim, 93);
  HnswIndex hnsw(kDim, la::Metric::kCosine);
  FlatIndex flat(kDim, la::Metric::kCosine);
  for (const auto& v : vectors) {
    hnsw.Add(v);
    flat.Add(v);
  }
  dust::Rng rng(94);
  std::vector<size_t> dead_ids = rng.SampleWithoutReplacement(2000, 200);
  ASSERT_EQ(hnsw.RemoveAll(dead_ids), 200u);
  ASSERT_EQ(flat.RemoveAll(dead_ids), 200u);
  size_t found = 0;
  size_t total = 0;
  for (uint64_t q = 0; q < 50; ++q) {
    la::Vec query = RandomUnitVectors(1, kDim, 9500 + q)[0];
    auto exact = flat.Search(query, 10);
    auto approx = hnsw.Search(query, 10);
    std::set<size_t> approx_ids;
    for (const auto& h : approx) approx_ids.insert(h.id);
    for (const auto& h : exact) {
      ++total;
      if (approx_ids.count(h.id)) ++found;
    }
  }
  EXPECT_GE(static_cast<double>(found) / static_cast<double>(total), 0.9);
}

TEST_P(IndexPropertyTest, CompactDropsTombstonesAndPreservesResults) {
  auto index = GetParam().second();
  auto vectors = RandomUnitVectors(120, index->dim(), 95);
  index->AddAll(vectors);
  dust::Rng rng(96);
  std::vector<size_t> dead_ids = rng.SampleWithoutReplacement(120, 30);
  ASSERT_EQ(index->RemoveAll(dead_ids), 30u);

  std::vector<size_t> remap;
  auto compacted = index->Compact(&remap);
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  EXPECT_EQ(compacted.value()->size(), 90u);
  EXPECT_EQ(compacted.value()->num_tombstones(), 0u);
  ASSERT_EQ(remap.size(), 120u);
  // The remap is the order-preserving survivor numbering.
  size_t next = 0;
  for (size_t id = 0; id < 120; ++id) {
    if (index->IsDead(id)) {
      EXPECT_EQ(remap[id], VectorIndex::kInvalidId);
    } else {
      EXPECT_EQ(remap[id], next++);
    }
  }
  // Every compacted hit maps back to a live original id. (Exact result
  // parity per type is covered by TombstoneParityTest; approximate types
  // rebuild their graphs, so only the id contract is universal.)
  for (uint64_t q = 0; q < 5; ++q) {
    la::Vec query = RandomUnitVectors(1, index->dim(), 9700 + q)[0];
    for (const auto& h : compacted.value()->Search(query, 10)) {
      EXPECT_LT(h.id, 90u);
    }
  }
}

TEST(IndexOptionsTest, KnobsReachTheConcreteConfigs) {
  IndexOptions options;
  options.hnsw_m = 6;
  options.hnsw_ef_search = 40;
  options.ivf_nlist = 9;
  options.ivf_nprobe = 5;
  auto hnsw = MakeVectorIndex("hnsw", 8, la::Metric::kCosine, options);
  auto* hnsw_index = dynamic_cast<HnswIndex*>(hnsw.get());
  ASSERT_NE(hnsw_index, nullptr);
  EXPECT_EQ(hnsw_index->config().M, 6u);
  EXPECT_EQ(hnsw_index->config().ef_search, 40u);
  auto ivf = MakeVectorIndex("ivf", 8, la::Metric::kCosine, options);
  auto* ivf_index = dynamic_cast<IvfFlatIndex*>(ivf.get());
  ASSERT_NE(ivf_index, nullptr);
  EXPECT_EQ(ivf_index->config().nlist, 9u);
  EXPECT_EQ(ivf_index->config().nprobe, 5u);
  // Zero fields keep the type defaults.
  auto plain = MakeVectorIndex("hnsw", 8, la::Metric::kCosine);
  auto* plain_hnsw = dynamic_cast<HnswIndex*>(plain.get());
  ASSERT_NE(plain_hnsw, nullptr);
  EXPECT_EQ(plain_hnsw->config().M, HnswConfig{}.M);
}

TEST(IndexOptionsTest, ValidationRejectsNonsense) {
  EXPECT_TRUE(ValidateIndexOptions(IndexOptions{}).ok());
  IndexOptions tuned;
  tuned.hnsw_m = 2;
  tuned.hnsw_ef_search = 1;
  EXPECT_TRUE(ValidateIndexOptions(tuned).ok());
  IndexOptions degenerate;
  degenerate.hnsw_m = 1;  // a degree-1 graph cannot stay connected
  Status status = ValidateIndexOptions(degenerate);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ValidateIndexMetricTest, LshRejectsNonCosine) {
  // LSH's random-hyperplane buckets approximate angular similarity only;
  // accepting kEuclidean/kManhattan would silently collapse recall.
  EXPECT_TRUE(ValidateIndexMetric("lsh", la::Metric::kCosine).ok());
  for (la::Metric metric :
       {la::Metric::kEuclidean, la::Metric::kManhattan}) {
    Status status = ValidateIndexMetric("lsh", metric);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  }
  // Every other index serves all three metrics.
  for (const char* type : {"flat", "ivf", "hnsw"}) {
    for (la::Metric metric : {la::Metric::kCosine, la::Metric::kEuclidean,
                              la::Metric::kManhattan}) {
      EXPECT_TRUE(ValidateIndexMetric(type, metric).ok()) << type;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, IndexPropertyTest,
    ::testing::Values(
        std::make_pair("flat",
                       IndexFactory([] {
                         return std::unique_ptr<VectorIndex>(
                             new FlatIndex(12, la::Metric::kCosine));
                       })),
        std::make_pair("ivf",
                       IndexFactory([] {
                         return std::unique_ptr<VectorIndex>(
                             new IvfFlatIndex(12, la::Metric::kCosine));
                       })),
        std::make_pair("lsh", IndexFactory([] {
                         LshConfig config;
                         config.probe_radius = 2;
                         return std::unique_ptr<VectorIndex>(
                             new LshIndex(12, la::Metric::kCosine, config));
                       })),
        std::make_pair("hnsw", IndexFactory([] {
                         return std::unique_ptr<VectorIndex>(
                             new HnswIndex(12, la::Metric::kCosine));
                       })),
        // Sharded wrappers obey the same structural invariants as their
        // children, including with empty shards and hash placement.
        std::make_pair("sharded_flat", IndexFactory([] {
                         return MakeVectorIndex("sharded:flat:3:hash", 12,
                                                la::Metric::kCosine);
                       })),
        std::make_pair("sharded_hnsw", IndexFactory([] {
                         return MakeVectorIndex("sharded:hnsw:2", 12,
                                                la::Metric::kCosine);
                       }))),
    [](const ::testing::TestParamInfo<std::pair<const char*, IndexFactory>>&
           info) { return info.param.first; });

}  // namespace
}  // namespace dust::index
