// Tests for src/serve and the executor-routed search paths: Executor task
// and ParallelFor semantics (including nesting), BoundedQueue backpressure
// (blocks, never drops) and close-drains semantics, QueryServer parity with
// sequential SearchTuples under concurrent clients, per-request rejection
// of malformed queries, shutdown completing in-flight requests, and
// bit-identical results when ShardedIndex / SearchBatch fan-out moves from
// spawned threads onto a shared executor.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "embed/embedder.h"
#include "embed/tuple_encoder.h"
#include "search/embedding_search.h"
#include "search/tuple_search.h"
#include "serve/bounded_queue.h"
#include "serve/executor.h"
#include "serve/query_server.h"
#include "shard/sharded_index.h"
#include "table/table.h"
#include "util/rng.h"

namespace dust::serve {
namespace {

using search::TupleHit;
using search::TupleSearch;
using table::Table;
using table::Value;

// --- Executor ---------------------------------------------------------------

TEST(ExecutorTest, ParallelForRunsEveryIndexExactlyOnce) {
  Executor executor(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> visits(n);
  for (auto& v : visits) v.store(0);
  executor.ParallelFor(n, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ExecutorTest, NestedParallelForDoesNotDeadlock) {
  // Inner loops run from inside pool tasks while every worker may already
  // be busy; the caller-participates design must still complete them.
  Executor executor(2);
  std::atomic<size_t> total{0};
  executor.ParallelFor(8, [&](size_t) {
    executor.ParallelFor(64, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8u * 64u);
}

TEST(ExecutorTest, SubmitRunsTasksAndFulfillsFutures) {
  Executor executor(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(executor.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ExecutorTest, ZeroThreadsRunsInline) {
  Executor executor(0);
  EXPECT_EQ(executor.num_threads(), 0u);
  std::vector<int> order;
  executor.ParallelFor(4, [&](size_t i) {
    order.push_back(static_cast<int>(i));  // inline => sequential, in order
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  bool ran = false;
  executor.Submit([&] { ran = true; }).get();
  EXPECT_TRUE(ran);
}

TEST(ExecutorTest, DestructorCompletesQueuedTasks) {
  std::atomic<int> counter{0};
  {
    Executor executor(1);
    for (int i = 0; i < 50; ++i) {
      executor.Submit([&] { counter.fetch_add(1); });
    }
  }  // destructor must drain, not abandon
  EXPECT_EQ(counter.load(), 50);
}

// --- BoundedQueue -----------------------------------------------------------

TEST(BoundedQueueTest, PushBlocksWhenFullInsteadOfDropping) {
  BoundedQueue<int> queue(2);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  std::promise<void> pushed;
  std::future<void> pushed_future = pushed.get_future();
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(3));  // must block until a slot frees up
    pushed.set_value();
  });
  // The producer must still be blocked while the queue is full.
  EXPECT_EQ(pushed_future.wait_for(std::chrono::milliseconds(100)),
            std::future_status::timeout);
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  pushed_future.get();  // unblocked by the pop; the item was not dropped
  producer.join();
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);
  EXPECT_EQ(queue.max_depth(), 2u);
}

TEST(BoundedQueueTest, CloseDrainsAdmittedItemsThenReportsEmpty) {
  BoundedQueue<int> queue(8);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_FALSE(queue.Push(3));  // closed: no new admissions
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.Pop(&out));  // drained
}

TEST(BoundedQueueTest, PopUntilTimesOutOnEmptyQueue) {
  BoundedQueue<int> queue(4);
  int out = 0;
  EXPECT_FALSE(queue.PopUntil(&out, std::chrono::steady_clock::now() +
                                        std::chrono::milliseconds(10)));
  ASSERT_TRUE(queue.Push(7));
  // A past deadline still delivers an already-queued item (try-pop).
  EXPECT_TRUE(queue.PopUntil(&out, std::chrono::steady_clock::now()));
  EXPECT_EQ(out, 7);
}

// --- shared lake fixture ----------------------------------------------------

std::shared_ptr<embed::TupleEncoder> MakeTestEncoder(size_t dim = 32) {
  return std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(embed::MakeEmbedder(
          embed::ModelFamily::kRoberta,
          embed::DefaultConfigFor(embed::ModelFamily::kRoberta, dim))));
}

Table MakeWordTable(const std::string& name, size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t(name);
  std::vector<Value> cities, countries;
  for (size_t r = 0; r < rows; ++r) {
    cities.emplace_back("city" + std::to_string(rng.NextBelow(200)));
    countries.emplace_back("country" + std::to_string(rng.NextBelow(40)));
  }
  EXPECT_TRUE(t.AddColumn("city", std::move(cities)).ok());
  EXPECT_TRUE(t.AddColumn("country", std::move(countries)).ok());
  return t;
}

/// Lake + queries + an IndexLake'd TupleSearch shared by the server tests.
class ServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lake_storage_ = new std::vector<Table>();
    for (size_t t = 0; t < 12; ++t) {
      lake_storage_->push_back(
          MakeWordTable("lake" + std::to_string(t), 20, 100 + t));
    }
    queries_ = new std::vector<Table>();
    for (size_t q = 0; q < 6; ++q) {
      queries_->push_back(MakeWordTable("q" + std::to_string(q), 4, 900 + q));
    }
    search_ = new TupleSearch(MakeTestEncoder());
    std::vector<const Table*> lake;
    for (const Table& t : *lake_storage_) lake.push_back(&t);
    search_->IndexLake(lake);
  }
  static void TearDownTestSuite() {
    delete search_;
    delete queries_;
    delete lake_storage_;
    search_ = nullptr;
    queries_ = nullptr;
    lake_storage_ = nullptr;
  }

  static void ExpectSameHits(const std::vector<TupleHit>& expected,
                             const std::vector<TupleHit>& actual) {
    ASSERT_EQ(expected.size(), actual.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].ref, actual[i].ref) << "rank " << i;
      // Bit-identical on purpose: batching and executor scheduling must not
      // perturb scoring at all.
      EXPECT_EQ(expected[i].similarity, actual[i].similarity) << "rank " << i;
    }
  }

  static std::vector<Table>* lake_storage_;
  static std::vector<Table>* queries_;
  static TupleSearch* search_;
};

std::vector<Table>* ServeFixture::lake_storage_ = nullptr;
std::vector<Table>* ServeFixture::queries_ = nullptr;
TupleSearch* ServeFixture::search_ = nullptr;

// --- TupleSearch status path ------------------------------------------------

TEST(TupleSearchCheckedTest, FailedPreconditionBeforeIndexLake) {
  TupleSearch search(MakeTestEncoder());
  Table query = MakeWordTable("q", 2, 1);
  // A server must be able to reject this request without dying.
  auto result = search.SearchTuplesChecked(query, 5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeFixture, CheckedRejectsZeroRowQuery) {
  Table empty("empty");
  auto result = search_->SearchTuplesChecked(empty, 5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // The legacy spelling keeps its historical silent-empty contract.
  EXPECT_TRUE(search_->SearchTuples(empty, 5).empty());
}

TEST_F(ServeFixture, CheckedMatchesLegacySearchTuples) {
  for (const Table& q : *queries_) {
    auto checked = search_->SearchTuplesChecked(q, 8);
    ASSERT_TRUE(checked.ok());
    ExpectSameHits(search_->SearchTuples(q, 8), checked.value());
  }
}

TEST_F(ServeFixture, BatchMixedValidityAnswersPerRequest) {
  Table empty("empty");
  std::vector<TupleSearch::TupleQuery> batch = {
      {&(*queries_)[0], 5}, {&empty, 5}, {&(*queries_)[1], 5}};
  Executor executor(2);
  auto results = search_->SearchTuplesBatch(batch, &executor);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(results[2].ok());
  ExpectSameHits(search_->SearchTuples((*queries_)[0], 5), results[0].value());
  ExpectSameHits(search_->SearchTuples((*queries_)[1], 5), results[2].value());
}

TEST_F(ServeFixture, BatchGroupsMixedKsWithoutPerturbingResults) {
  // ks straddling per_query_candidates land in different fetch groups; each
  // request must still match its own sequential result exactly.
  const size_t big_k = search_->config().per_query_candidates + 50;
  std::vector<TupleSearch::TupleQuery> batch = {{&(*queries_)[0], 3},
                                                {&(*queries_)[1], big_k},
                                                {&(*queries_)[2], 3}};
  auto results = search_->SearchTuplesBatch(batch);
  ASSERT_EQ(results.size(), 3u);
  ExpectSameHits(search_->SearchTuples((*queries_)[0], 3), results[0].value());
  ExpectSameHits(search_->SearchTuples((*queries_)[1], big_k),
                 results[1].value());
  ExpectSameHits(search_->SearchTuples((*queries_)[2], 3), results[2].value());
}

// --- QueryServer ------------------------------------------------------------

TEST_F(ServeFixture, ConcurrentClientsGetSequentialResults) {
  // Sequential oracle first, then N concurrent clients hammer the server
  // with the same queries; every response must be bit-identical.
  std::vector<std::vector<TupleHit>> expected;
  for (const Table& q : *queries_) {
    expected.push_back(search_->SearchTuples(q, 7));
  }
  QueryServerOptions options;
  options.threads = 4;
  options.max_batch = 8;
  options.batch_window_us = 200;
  QueryServer server(search_, options);
  const size_t kClients = 4;
  const size_t kRoundsPerClient = 20;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t round = 0; round < kRoundsPerClient; ++round) {
        const size_t q = (c + round) % queries_->size();
        auto result = server.Submit((*queries_)[q], 7).get();
        if (!result.ok() || result.value().size() != expected[q].size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < expected[q].size(); ++i) {
          if (!(result.value()[i].ref == expected[q][i].ref) ||
              result.value()[i].similarity != expected[q][i].similarity) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  server.Shutdown();
  const QueryServerStats stats = server.stats();
  EXPECT_EQ(stats.served, kClients * kRoundsPerClient);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GT(stats.p99_ms, 0.0);
}

TEST_F(ServeFixture, RejectsZeroRowQueryWithInvalidArgument) {
  QueryServer server(search_, QueryServerOptions{});
  Table empty("empty");
  auto result = server.Submit(empty, 5).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.stats().rejected, 1u);
}

TEST(QueryServerTest, UnbuiltIndexRejectsInsteadOfAborting) {
  TupleSearch unbuilt(MakeTestEncoder());
  QueryServer server(&unbuilt, QueryServerOptions{});
  Table query = MakeWordTable("q", 2, 7);
  auto result = server.Submit(query, 5).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeFixture, ShutdownCompletesInFlightRequests) {
  QueryServerOptions options;
  options.threads = 2;
  options.max_batch = 4;
  options.batch_window_us = 50000;  // force requests to sit in the window
  QueryServer server(search_, options);
  std::vector<std::future<QueryServer::TupleResult>> futures;
  for (size_t i = 0; i < 10; ++i) {
    futures.push_back(server.Submit((*queries_)[i % queries_->size()], 5));
  }
  server.Shutdown();  // must drain, not drop
  for (auto& f : futures) {
    auto result = f.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result.value().empty());
  }
  EXPECT_EQ(server.stats().served, 10u);
  // Admission is refused after shutdown, with a status, not an abort.
  auto late = server.Submit((*queries_)[0], 5).get();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeFixture, TinyQueueServesEveryRequestExactlyOnce) {
  // Backpressure end to end: with a 1-deep queue and 1-request batches,
  // producers must block and retry-free serving still answers everything.
  QueryServerOptions options;
  options.threads = 2;
  options.queue_capacity = 1;
  options.max_batch = 1;
  options.batch_window_us = 0;
  QueryServer server(search_, options);
  const size_t kClients = 4;
  const size_t kPerClient = 25;
  std::atomic<size_t> answered{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < kPerClient; ++i) {
        auto result =
            server.Submit((*queries_)[(c + i) % queries_->size()], 5).get();
        if (result.ok()) answered.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Shutdown();
  EXPECT_EQ(answered.load(), kClients * kPerClient);
  const QueryServerStats stats = server.stats();
  EXPECT_EQ(stats.served, kClients * kPerClient);
  EXPECT_LE(stats.max_queue_depth, 1u);
}

// --- executor-routed index fan-out parity -----------------------------------

std::vector<la::Vec> RandomUnitVectors(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Vec> out;
  for (size_t i = 0; i < n; ++i) {
    la::Vec v(dim);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    la::NormalizeInPlace(&v);
    out.push_back(v);
  }
  return out;
}

TEST(ExecutorRoutingTest, ShardedSearchBitIdenticalToThreadPerShard) {
  const size_t kDim = 16;
  auto vectors = RandomUnitVectors(400, kDim, 31);
  auto queries = RandomUnitVectors(24, kDim, 32);
  shard::ShardedIndexConfig config;
  config.child_type = "flat";
  config.num_shards = 4;
  shard::ShardedIndex index(kDim, la::Metric::kCosine, config);
  index.AddAll(vectors);

  // Thread-per-shard baseline (no executor installed)...
  std::vector<std::vector<index::SearchHit>> baseline;
  for (const la::Vec& q : queries) baseline.push_back(index.Search(q, 9));
  auto baseline_batch = index.SearchBatch(queries, 9);

  // ...must match the pooled scatter bit for bit.
  Executor executor(3);
  index.SetExecutor(&executor);
  for (size_t q = 0; q < queries.size(); ++q) {
    auto routed = index.Search(queries[q], 9);
    ASSERT_EQ(routed.size(), baseline[q].size());
    for (size_t i = 0; i < routed.size(); ++i) {
      EXPECT_EQ(routed[i].id, baseline[q][i].id);
      EXPECT_EQ(routed[i].distance, baseline[q][i].distance);
    }
  }
  auto routed_batch = index.SearchBatch(queries, 9);
  ASSERT_EQ(routed_batch.size(), baseline_batch.size());
  for (size_t q = 0; q < routed_batch.size(); ++q) {
    ASSERT_EQ(routed_batch[q].size(), baseline_batch[q].size());
    for (size_t i = 0; i < routed_batch[q].size(); ++i) {
      EXPECT_EQ(routed_batch[q][i].id, baseline_batch[q][i].id);
      EXPECT_EQ(routed_batch[q][i].distance, baseline_batch[q][i].distance);
    }
  }
  index.SetExecutor(nullptr);  // executor dies before the index
}

TEST(ExecutorRoutingTest, FlatSearchBatchParityAcrossSchedulingModes) {
  const size_t kDim = 12;
  auto vectors = RandomUnitVectors(300, kDim, 41);
  auto queries = RandomUnitVectors(16, kDim, 42);
  auto index = index::MakeVectorIndex("flat", kDim, la::Metric::kEuclidean);
  index->AddAll(vectors);
  auto legacy = index->SearchBatch(queries, 5);
  Executor executor(4);
  auto pooled = index->SearchBatch(queries, 5, &executor);
  ASSERT_EQ(legacy.size(), pooled.size());
  for (size_t q = 0; q < legacy.size(); ++q) {
    ASSERT_EQ(legacy[q].size(), pooled[q].size());
    for (size_t i = 0; i < legacy[q].size(); ++i) {
      EXPECT_EQ(legacy[q][i].id, pooled[q][i].id);
      EXPECT_EQ(legacy[q][i].distance, pooled[q][i].distance);
    }
  }
}

TEST_F(ServeFixture, EmbeddingSearchExecutorParity) {
  // The pipeline-side wiring: a sharded shortlist index's scatter routed
  // through the executor must not change table retrieval.
  search::EmbeddingSearchConfig config;
  config.encoder.dim = 24;
  config.shortlist = 6;
  config.index_type = "sharded:flat:3";
  search::EmbeddingUnionSearch engine(config);
  std::vector<const Table*> lake;
  for (const Table& t : *lake_storage_) lake.push_back(&t);
  engine.IndexLake(lake);
  auto baseline = engine.SearchTables((*queries_)[0], 5);
  Executor executor(2);
  engine.SetExecutor(&executor);
  auto routed = engine.SearchTables((*queries_)[0], 5);
  ASSERT_EQ(baseline.size(), routed.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].table_index, routed[i].table_index);
    EXPECT_EQ(baseline[i].score, routed[i].score);
  }
  engine.SetExecutor(nullptr);
}

}  // namespace
}  // namespace dust::serve
