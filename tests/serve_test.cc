// Tests for src/serve and the executor-routed search paths: Executor task
// and ParallelFor semantics (including nesting), BoundedQueue backpressure
// (blocks, never drops) and close-drains semantics, QueryServer parity with
// sequential SearchTuples under concurrent clients, per-request rejection
// of malformed queries, shutdown completing in-flight requests,
// bit-identical results when ShardedIndex / SearchBatch fan-out moves from
// spawned threads onto a shared executor, the Metrics instruments
// (histogram quantiles stay O(buckets) regardless of sample count, text
// exposition format), the ResultCache (LRU order, byte budget, staleness
// invalidation), and QueryServer cache semantics (hits bit-identical to
// uncached serving, zero stale hits after re-indexing, counters reconcile).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "embed/embedder.h"
#include "embed/tuple_encoder.h"
#include "obs/trace.h"
#include "search/embedding_search.h"
#include "search/tuple_search.h"
#include "serve/bounded_queue.h"
#include "serve/executor.h"
#include "serve/metrics.h"
#include "serve/query_server.h"
#include "serve/result_cache.h"
#include "shard/sharded_index.h"
#include "table/table.h"
#include "util/rng.h"

namespace dust::serve {
namespace {

using search::TupleHit;
using search::TupleSearch;
using table::Table;
using table::Value;

// --- Executor ---------------------------------------------------------------

TEST(ExecutorTest, ParallelForRunsEveryIndexExactlyOnce) {
  Executor executor(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> visits(n);
  for (auto& v : visits) v.store(0);
  executor.ParallelFor(n, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ExecutorTest, NestedParallelForDoesNotDeadlock) {
  // Inner loops run from inside pool tasks while every worker may already
  // be busy; the caller-participates design must still complete them.
  Executor executor(2);
  std::atomic<size_t> total{0};
  executor.ParallelFor(8, [&](size_t) {
    executor.ParallelFor(64, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8u * 64u);
}

TEST(ExecutorTest, SubmitRunsTasksAndFulfillsFutures) {
  Executor executor(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(executor.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ExecutorTest, ZeroThreadsRunsInline) {
  Executor executor(0);
  EXPECT_EQ(executor.num_threads(), 0u);
  std::vector<int> order;
  executor.ParallelFor(4, [&](size_t i) {
    order.push_back(static_cast<int>(i));  // inline => sequential, in order
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  bool ran = false;
  executor.Submit([&] { ran = true; }).get();
  EXPECT_TRUE(ran);
}

TEST(ExecutorTest, DestructorCompletesQueuedTasks) {
  std::atomic<int> counter{0};
  {
    Executor executor(1);
    for (int i = 0; i < 50; ++i) {
      executor.Submit([&] { counter.fetch_add(1); });
    }
  }  // destructor must drain, not abandon
  EXPECT_EQ(counter.load(), 50);
}

// --- BoundedQueue -----------------------------------------------------------

TEST(BoundedQueueTest, PushBlocksWhenFullInsteadOfDropping) {
  BoundedQueue<int> queue(2);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  std::promise<void> pushed;
  std::future<void> pushed_future = pushed.get_future();
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(3));  // must block until a slot frees up
    pushed.set_value();
  });
  // The producer must still be blocked while the queue is full.
  EXPECT_EQ(pushed_future.wait_for(std::chrono::milliseconds(100)),
            std::future_status::timeout);
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  pushed_future.get();  // unblocked by the pop; the item was not dropped
  producer.join();
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);
  EXPECT_EQ(queue.max_depth(), 2u);
}

TEST(BoundedQueueTest, CloseDrainsAdmittedItemsThenReportsEmpty) {
  BoundedQueue<int> queue(8);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_FALSE(queue.Push(3));  // closed: no new admissions
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.Pop(&out));  // drained
}

TEST(BoundedQueueTest, PushAfterCloseRejectsImmediatelyLeavingItemIntact) {
  // Pins the post-Close producer contract: Push on a closed queue returns
  // false without blocking — even when the queue is full, which would
  // otherwise park the producer forever — and leaves `item` with its value
  // so the producer can complete the request itself.
  BoundedQueue<std::string> queue(1);
  ASSERT_TRUE(queue.Push(std::string("admitted")));  // queue now full
  queue.Close();
  std::string rejected = "survives-close";
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.Push(std::move(rejected)));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(2));  // returned, did not block
  EXPECT_EQ(rejected, "survives-close");        // not moved-from, not lost
  // The item admitted before Close still drains; the rejected one never
  // entered the queue or its counters.
  std::string out;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, "admitted");
  EXPECT_FALSE(queue.Pop(&out));
  EXPECT_EQ(queue.total_pushed(), 1u);
}

TEST(ExecutorTest, SubmitRacingDestructionAlwaysReadiesTheFuture) {
  // Pins the Submit/destruction race: a Submit that lands while the
  // destructor is stopping the pool must still produce a ready future
  // (run inline on the caller), never a broken or orphaned one.
  std::atomic<bool> destroying{false};
  std::atomic<bool> late_task_ran{false};
  std::future<void> late_future;
  auto* executor = new Executor(1);
  std::promise<void> first_task_started;
  std::future<void> first_future = executor->Submit([&] {
    first_task_started.set_value();
    while (!destroying.load()) std::this_thread::yield();
    // Give the destructor time to set stopping_; if it has not yet, the
    // task is queued and drained instead — the future is ready either way.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    late_future = executor->Submit([&] { late_task_ran.store(true); });
  });
  first_task_started.get_future().wait();
  std::thread destroyer([&] {
    destroying.store(true);
    delete executor;  // blocks joining the worker still inside the task
  });
  destroyer.join();
  ASSERT_TRUE(first_future.valid());
  EXPECT_EQ(first_future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  ASSERT_TRUE(late_future.valid());
  EXPECT_EQ(late_future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_TRUE(late_task_ran.load());
}

TEST(BoundedQueueTest, PopUntilTimesOutOnEmptyQueue) {
  BoundedQueue<int> queue(4);
  int out = 0;
  EXPECT_FALSE(queue.PopUntil(&out, std::chrono::steady_clock::now() +
                                        std::chrono::milliseconds(10)));
  ASSERT_TRUE(queue.Push(7));
  // A past deadline still delivers an already-queued item (try-pop).
  EXPECT_TRUE(queue.PopUntil(&out, std::chrono::steady_clock::now()));
  EXPECT_EQ(out, 7);
}

// --- Metrics ----------------------------------------------------------------

TEST(MetricsTest, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(4);
  EXPECT_EQ(c.value(), 5u);
  Gauge g;
  g.Set(10);
  g.Add(5);
  g.Sub(3);
  EXPECT_EQ(g.value(), 12);
}

TEST(MetricsTest, HistogramQuantilesFromKnownDistribution) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  // 100 samples spread evenly across [0, 10): 10 per unit interval.
  for (int i = 0; i < 100; ++i) h.Record(i / 10.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum(), 495.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 9.9);
  // Uniform on [0, 10): true p50 is 4.95; rank 50 interpolates within the
  // (4, 8] bucket to 4.9.
  EXPECT_NEAR(h.Quantile(0.50), 4.95, 0.5);
  // Boundary semantics: a sample exactly on a bound counts into that
  // bound's bucket (le="1" covers 1.0), so buckets hold 11/10/20/40/19.
  EXPECT_EQ(h.bucket_value(0), 11u);
  EXPECT_EQ(h.bucket_value(1), 10u);
  EXPECT_NEAR(h.Quantile(0.90), 9.0, 1.0);
  // No quantile may exceed the largest observed sample, even though the
  // overflow bucket has no upper edge.
  EXPECT_LE(h.Quantile(0.999), h.max());
  EXPECT_LE(h.Quantile(1.0), h.max());
}

TEST(MetricsTest, HistogramQuantileCostIsBucketsNotSamples) {
  // Regression for the old latency reservoir, whose stats() copied and
  // sorted every remembered sample (O(uptime)). The histogram's footprint
  // is structural: the bucket count is fixed at construction, so recording
  // 200k samples changes no shape a quantile pass iterates over.
  Histogram h(Histogram::LatencyBoundsMs());
  const size_t fixed_buckets = h.num_buckets();
  EXPECT_EQ(fixed_buckets, Histogram::LatencyBoundsMs().size() + 1);
  Rng rng(5);
  for (size_t i = 0; i < 200000; ++i) {
    h.Record(rng.NextDouble() * 100.0);
  }
  EXPECT_EQ(h.count(), 200000u);
  EXPECT_EQ(h.num_buckets(), fixed_buckets);  // unchanged by volume
  const double p50 = h.Quantile(0.50);
  const double p99 = h.Quantile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, h.max());
}

TEST(MetricsTest, RenderTextIsPrometheusShaped) {
  Metrics metrics;
  Counter requests;
  requests.Increment(7);
  Gauge depth;
  depth.Set(3);
  Histogram latency({1.0, 10.0});
  latency.Record(0.5);
  latency.Record(5.0);
  latency.Record(50.0);
  metrics.RegisterCounter("dust_requests_total", &requests);
  metrics.RegisterGauge("dust_queue_depth", &depth);
  metrics.RegisterHistogram("dust_latency_ms", &latency);
  metrics.RegisterCallback("dust_ready", [] { return 1.0; });
  metrics.RegisterCallback("dust_synthetic_total", [] { return 4.0; });
  const std::string text = metrics.RenderText();
  EXPECT_NE(text.find("dust_requests_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("dust_queue_depth 3\n"), std::string::npos);
  EXPECT_NE(text.find("dust_ready 1\n"), std::string::npos);
  // Each series carries a # TYPE line; callbacks advertise as gauges unless
  // the _total suffix marks them monotone.
  EXPECT_NE(text.find("# TYPE dust_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dust_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dust_latency_ms histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dust_ready gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dust_synthetic_total counter\n"),
            std::string::npos);
  // Histogram buckets are cumulative: le="10" counts the le="1" sample too,
  // and +Inf counts everything.
  EXPECT_NE(text.find("dust_latency_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("dust_latency_ms_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("dust_latency_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("dust_latency_ms_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("dust_latency_ms_sum 55.5\n"), std::string::npos);
  // The table render carries the same instruments for humans.
  const std::string table = metrics.RenderTable();
  EXPECT_NE(table.find("dust_latency_ms"), std::string::npos);
  EXPECT_NE(table.find("count 3"), std::string::npos);
}

TEST(MetricsTest, ReadinessNames) {
  EXPECT_STREQ(ReadinessName(Readiness::kStarting), "starting");
  EXPECT_STREQ(ReadinessName(Readiness::kReady), "ready");
  EXPECT_STREQ(ReadinessName(Readiness::kDraining), "draining");
}

// --- ResultCache ------------------------------------------------------------

std::vector<TupleHit> MakeHits(size_t n, size_t table_index) {
  std::vector<TupleHit> hits;
  for (size_t i = 0; i < n; ++i) {
    hits.push_back({{table_index, i}, 1.0 - 0.01 * static_cast<double>(i)});
  }
  return hits;
}

TEST(ResultCacheTest, LookupReturnsExactInsertedHits) {
  ResultCache cache(ResultCacheOptions{});
  const ResultCache::Key key{123, 10, 456};
  const auto hits = MakeHits(5, 2);
  std::vector<TupleHit> out;
  EXPECT_FALSE(cache.Lookup(key, 99, &out));  // cold
  cache.Insert(key, 99, hits);
  ASSERT_TRUE(cache.Lookup(key, 99, &out));
  ASSERT_EQ(out.size(), hits.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(out[i].ref, hits[i].ref);
    EXPECT_EQ(out[i].similarity, hits[i].similarity);
  }
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.bytes(), 0u);
}

TEST(ResultCacheTest, DistinctKAndConfigAreDistinctEntries) {
  ResultCache cache(ResultCacheOptions{});
  cache.Insert({1, 5, 7}, 0, MakeHits(5, 0));
  cache.Insert({1, 10, 7}, 0, MakeHits(10, 0));  // same query, larger k
  cache.Insert({1, 5, 8}, 0, MakeHits(5, 1));    // same query, other config
  EXPECT_EQ(cache.entries(), 3u);
  std::vector<TupleHit> out;
  ASSERT_TRUE(cache.Lookup({1, 10, 7}, 0, &out));
  EXPECT_EQ(out.size(), 10u);
  ASSERT_TRUE(cache.Lookup({1, 5, 8}, 0, &out));
  EXPECT_EQ(out[0].ref.table_index, 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedFirst) {
  ResultCacheOptions options;
  options.capacity_entries = 3;
  options.stripes = 1;  // single stripe => globally LRU-ordered
  ResultCache cache(options);
  cache.Insert({1, 1, 0}, 0, MakeHits(2, 1));
  cache.Insert({2, 1, 0}, 0, MakeHits(2, 2));
  cache.Insert({3, 1, 0}, 0, MakeHits(2, 3));
  std::vector<TupleHit> out;
  // Touch key 1 so key 2 becomes the LRU entry.
  ASSERT_TRUE(cache.Lookup({1, 1, 0}, 0, &out));
  cache.Insert({4, 1, 0}, 0, MakeHits(2, 4));  // over budget: evicts key 2
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_FALSE(cache.Lookup({2, 1, 0}, 0, &out));
  EXPECT_TRUE(cache.Lookup({1, 1, 0}, 0, &out));
  EXPECT_TRUE(cache.Lookup({3, 1, 0}, 0, &out));
  EXPECT_TRUE(cache.Lookup({4, 1, 0}, 0, &out));
}

TEST(ResultCacheTest, ByteBudgetEvictsAndRefusesOversizedEntries) {
  ResultCacheOptions options;
  options.capacity_entries = 100;
  options.capacity_bytes = 400;  // fits one small entry, not two
  options.stripes = 1;
  ResultCache cache(options);
  cache.Insert({1, 1, 0}, 0, MakeHits(4, 1));
  EXPECT_EQ(cache.entries(), 1u);
  const size_t one_entry_bytes = cache.bytes();
  EXPECT_LE(one_entry_bytes, 400u);
  cache.Insert({2, 1, 0}, 0, MakeHits(4, 2));  // byte budget forces eviction
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  std::vector<TupleHit> out;
  EXPECT_FALSE(cache.Lookup({1, 1, 0}, 0, &out));
  EXPECT_TRUE(cache.Lookup({2, 1, 0}, 0, &out));
  // A hit list alone larger than the whole budget is simply not cached —
  // and must not wipe the resident entries to make room.
  cache.Insert({3, 1, 0}, 0, MakeHits(1000, 3));
  EXPECT_FALSE(cache.Lookup({3, 1, 0}, 0, &out));
  EXPECT_TRUE(cache.Lookup({2, 1, 0}, 0, &out));
  EXPECT_EQ(cache.bytes(), one_entry_bytes);
}

TEST(ResultCacheTest, SnapshotHashMismatchInvalidatesEntry) {
  ResultCache cache(ResultCacheOptions{});
  const ResultCache::Key key{9, 5, 1};
  cache.Insert(key, /*snapshot_hash=*/100, MakeHits(3, 0));
  std::vector<TupleHit> out;
  // The lake changed underneath: the entry must not be served, and it must
  // not linger either.
  EXPECT_FALSE(cache.Lookup(key, /*snapshot_hash=*/200, &out));
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  // Re-inserted under the new snapshot it serves again.
  cache.Insert(key, 200, MakeHits(3, 1));
  EXPECT_TRUE(cache.Lookup(key, 200, &out));
  EXPECT_EQ(out[0].ref.table_index, 1u);
}

TEST(ResultCacheTest, ClearEmptiesEveryStripe) {
  ResultCache cache(ResultCacheOptions{});
  for (uint64_t i = 0; i < 64; ++i) {
    cache.Insert({i, 1, 0}, 0, MakeHits(2, i));
  }
  EXPECT_EQ(cache.entries(), 64u);
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  std::vector<TupleHit> out;
  EXPECT_FALSE(cache.Lookup({0, 1, 0}, 0, &out));
}

TEST(ResultCacheTest, ConcurrentMixedTrafficKeepsCountersConsistent) {
  ResultCacheOptions options;
  options.capacity_entries = 32;
  ResultCache cache(options);
  const size_t kThreads = 8;
  const size_t kOpsPerThread = 500;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t);
      std::vector<TupleHit> out;
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        const ResultCache::Key key{rng.NextBelow(64), 5, 0};
        if (!cache.Lookup(key, 0, &out)) {
          cache.Insert(key, 0, MakeHits(3, key.query_fingerprint));
        } else {
          // A hit must carry the data its key was inserted with.
          EXPECT_EQ(out[0].ref.table_index, key.query_fingerprint);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(cache.hits() + cache.misses(), kThreads * kOpsPerThread);
  EXPECT_LE(cache.entries(), 32u + options.stripes);  // per-stripe rounding
}

// --- shared lake fixture ----------------------------------------------------

std::shared_ptr<embed::TupleEncoder> MakeTestEncoder(size_t dim = 32) {
  return std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(embed::MakeEmbedder(
          embed::ModelFamily::kRoberta,
          embed::DefaultConfigFor(embed::ModelFamily::kRoberta, dim))));
}

Table MakeWordTable(const std::string& name, size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t(name);
  std::vector<Value> cities, countries;
  for (size_t r = 0; r < rows; ++r) {
    cities.emplace_back("city" + std::to_string(rng.NextBelow(200)));
    countries.emplace_back("country" + std::to_string(rng.NextBelow(40)));
  }
  EXPECT_TRUE(t.AddColumn("city", std::move(cities)).ok());
  EXPECT_TRUE(t.AddColumn("country", std::move(countries)).ok());
  return t;
}

/// Lake + queries + an IndexLake'd TupleSearch shared by the server tests.
class ServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lake_storage_ = new std::vector<Table>();
    for (size_t t = 0; t < 12; ++t) {
      lake_storage_->push_back(
          MakeWordTable("lake" + std::to_string(t), 20, 100 + t));
    }
    queries_ = new std::vector<Table>();
    for (size_t q = 0; q < 6; ++q) {
      queries_->push_back(MakeWordTable("q" + std::to_string(q), 4, 900 + q));
    }
    search_ = new TupleSearch(MakeTestEncoder());
    std::vector<const Table*> lake;
    for (const Table& t : *lake_storage_) lake.push_back(&t);
    search_->IndexLake(lake);
  }
  static void TearDownTestSuite() {
    delete search_;
    delete queries_;
    delete lake_storage_;
    search_ = nullptr;
    queries_ = nullptr;
    lake_storage_ = nullptr;
  }

  static void ExpectSameHits(const std::vector<TupleHit>& expected,
                             const std::vector<TupleHit>& actual) {
    ASSERT_EQ(expected.size(), actual.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].ref, actual[i].ref) << "rank " << i;
      // Bit-identical on purpose: batching and executor scheduling must not
      // perturb scoring at all.
      EXPECT_EQ(expected[i].similarity, actual[i].similarity) << "rank " << i;
    }
  }

  static std::vector<Table>* lake_storage_;
  static std::vector<Table>* queries_;
  static TupleSearch* search_;
};

std::vector<Table>* ServeFixture::lake_storage_ = nullptr;
std::vector<Table>* ServeFixture::queries_ = nullptr;
TupleSearch* ServeFixture::search_ = nullptr;

// --- TupleSearch status path ------------------------------------------------

TEST(TupleSearchCheckedTest, FailedPreconditionBeforeIndexLake) {
  TupleSearch search(MakeTestEncoder());
  Table query = MakeWordTable("q", 2, 1);
  // A server must be able to reject this request without dying.
  auto result = search.SearchTuplesChecked(query, 5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeFixture, CheckedRejectsZeroRowQuery) {
  Table empty("empty");
  auto result = search_->SearchTuplesChecked(empty, 5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // The legacy spelling keeps its historical silent-empty contract.
  EXPECT_TRUE(search_->SearchTuples(empty, 5).empty());
}

TEST_F(ServeFixture, CheckedMatchesLegacySearchTuples) {
  for (const Table& q : *queries_) {
    auto checked = search_->SearchTuplesChecked(q, 8);
    ASSERT_TRUE(checked.ok());
    ExpectSameHits(search_->SearchTuples(q, 8), checked.value());
  }
}

TEST_F(ServeFixture, BatchMixedValidityAnswersPerRequest) {
  Table empty("empty");
  std::vector<TupleSearch::TupleQuery> batch = {
      {&(*queries_)[0], 5}, {&empty, 5}, {&(*queries_)[1], 5}};
  Executor executor(2);
  auto results = search_->SearchTuplesBatch(batch, &executor);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(results[2].ok());
  ExpectSameHits(search_->SearchTuples((*queries_)[0], 5), results[0].value());
  ExpectSameHits(search_->SearchTuples((*queries_)[1], 5), results[2].value());
}

TEST_F(ServeFixture, BatchGroupsMixedKsWithoutPerturbingResults) {
  // ks straddling per_query_candidates land in different fetch groups; each
  // request must still match its own sequential result exactly.
  const size_t big_k = search_->config().per_query_candidates + 50;
  std::vector<TupleSearch::TupleQuery> batch = {{&(*queries_)[0], 3},
                                                {&(*queries_)[1], big_k},
                                                {&(*queries_)[2], 3}};
  auto results = search_->SearchTuplesBatch(batch);
  ASSERT_EQ(results.size(), 3u);
  ExpectSameHits(search_->SearchTuples((*queries_)[0], 3), results[0].value());
  ExpectSameHits(search_->SearchTuples((*queries_)[1], big_k),
                 results[1].value());
  ExpectSameHits(search_->SearchTuples((*queries_)[2], 3), results[2].value());
}

// --- QueryServer ------------------------------------------------------------

TEST_F(ServeFixture, ConcurrentClientsGetSequentialResults) {
  // Sequential oracle first, then N concurrent clients hammer the server
  // with the same queries; every response must be bit-identical.
  std::vector<std::vector<TupleHit>> expected;
  for (const Table& q : *queries_) {
    expected.push_back(search_->SearchTuples(q, 7));
  }
  QueryServerOptions options;
  options.threads = 4;
  options.max_batch = 8;
  options.batch_window_us = 200;
  QueryServer server(search_, options);
  const size_t kClients = 4;
  const size_t kRoundsPerClient = 20;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t round = 0; round < kRoundsPerClient; ++round) {
        const size_t q = (c + round) % queries_->size();
        auto result = server.Submit((*queries_)[q], 7).get();
        if (!result.ok() || result.value().size() != expected[q].size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < expected[q].size(); ++i) {
          if (!(result.value()[i].ref == expected[q][i].ref) ||
              result.value()[i].similarity != expected[q][i].similarity) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  server.Shutdown();
  const QueryServerStats stats = server.stats();
  EXPECT_EQ(stats.served, kClients * kRoundsPerClient);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GT(stats.p99_ms, 0.0);
}

TEST_F(ServeFixture, RejectsZeroRowQueryWithInvalidArgument) {
  QueryServer server(search_, QueryServerOptions{});
  Table empty("empty");
  auto result = server.Submit(empty, 5).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.stats().rejected, 1u);
}

TEST(QueryServerTest, UnbuiltIndexRejectsInsteadOfAborting) {
  TupleSearch unbuilt(MakeTestEncoder());
  QueryServer server(&unbuilt, QueryServerOptions{});
  Table query = MakeWordTable("q", 2, 7);
  auto result = server.Submit(query, 5).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeFixture, ShutdownCompletesInFlightRequests) {
  QueryServerOptions options;
  options.threads = 2;
  options.max_batch = 4;
  options.batch_window_us = 50000;  // force requests to sit in the window
  QueryServer server(search_, options);
  std::vector<std::future<QueryServer::TupleResult>> futures;
  for (size_t i = 0; i < 10; ++i) {
    futures.push_back(server.Submit((*queries_)[i % queries_->size()], 5));
  }
  server.Shutdown();  // must drain, not drop
  for (auto& f : futures) {
    auto result = f.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result.value().empty());
  }
  EXPECT_EQ(server.stats().served, 10u);
  // Admission is refused after shutdown, with a status, not an abort.
  auto late = server.Submit((*queries_)[0], 5).get();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeFixture, TinyQueueServesEveryRequestExactlyOnce) {
  // Backpressure end to end: with a 1-deep queue and 1-request batches,
  // producers must block and retry-free serving still answers everything.
  QueryServerOptions options;
  options.threads = 2;
  options.queue_capacity = 1;
  options.max_batch = 1;
  options.batch_window_us = 0;
  QueryServer server(search_, options);
  const size_t kClients = 4;
  const size_t kPerClient = 25;
  std::atomic<size_t> answered{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < kPerClient; ++i) {
        auto result =
            server.Submit((*queries_)[(c + i) % queries_->size()], 5).get();
        if (result.ok()) answered.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Shutdown();
  EXPECT_EQ(answered.load(), kClients * kPerClient);
  const QueryServerStats stats = server.stats();
  EXPECT_EQ(stats.served, kClients * kPerClient);
  EXPECT_LE(stats.max_queue_depth, 1u);
}

// --- QueryServer result cache -----------------------------------------------

TEST_F(ServeFixture, CacheOffByDefaultRecordsNoCacheTraffic) {
  QueryServer server(search_, QueryServerOptions{});  // cache_entries = 0
  for (int round = 0; round < 2; ++round) {
    auto result = server.Submit((*queries_)[0], 5).get();
    ASSERT_TRUE(result.ok());
  }
  server.Shutdown();
  const QueryServerStats stats = server.stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.cache_entries, 0u);
  EXPECT_EQ(stats.served, 2u);  // both went through the batch path
}

TEST_F(ServeFixture, CacheHitBitIdenticalToUncachedServing) {
  QueryServerOptions options;
  options.threads = 2;
  options.cache_entries = 128;
  QueryServer server(search_, options);
  for (const Table& q : *queries_) {
    const std::vector<TupleHit> oracle = search_->SearchTuples(q, 7);
    auto cold = server.Submit(q, 7).get();
    ASSERT_TRUE(cold.ok());
    ExpectSameHits(oracle, cold.value());
    auto warm = server.Submit(q, 7).get();  // must be served from the cache
    ASSERT_TRUE(warm.ok());
    ExpectSameHits(oracle, warm.value());
  }
  server.Shutdown();
  const QueryServerStats stats = server.stats();
  EXPECT_EQ(stats.cache_hits, queries_->size());
  EXPECT_EQ(stats.cache_misses, queries_->size());
  // Hits bypassed the queue entirely: only the cold submits were batched.
  EXPECT_EQ(stats.served, queries_->size());
  EXPECT_EQ(stats.submitted, 2 * queries_->size());
  EXPECT_DOUBLE_EQ(stats.cache_hit_rate, 0.5);
}

TEST_F(ServeFixture, DifferentKIsNotACacheHit) {
  QueryServerOptions options;
  options.cache_entries = 128;
  QueryServer server(search_, options);
  ASSERT_TRUE(server.Submit((*queries_)[0], 5).get().ok());
  auto other_k = server.Submit((*queries_)[0], 9).get();
  ASSERT_TRUE(other_k.ok());
  EXPECT_EQ(other_k.value().size(), 9u);  // not the cached 5-hit list
  server.Shutdown();
  EXPECT_EQ(server.stats().cache_hits, 0u);
  EXPECT_EQ(server.stats().cache_misses, 2u);
}

TEST(QueryServerCacheTest, ReindexedLakeServesZeroStaleHits) {
  // Own search engine: this test re-indexes the lake mid-flight, which the
  // shared fixture's engine must never experience.
  std::vector<Table> lake_storage;
  for (size_t t = 0; t < 6; ++t) {
    lake_storage.push_back(
        MakeWordTable("lake" + std::to_string(t), 15, 50 + t));
  }
  TupleSearch search(MakeTestEncoder());
  std::vector<const Table*> lake;
  for (const Table& t : lake_storage) lake.push_back(&t);
  search.IndexLake(lake);
  const Table query = MakeWordTable("q", 4, 9000);

  QueryServerOptions options;
  options.cache_entries = 128;
  QueryServer server(&search, options);
  ASSERT_TRUE(server.Submit(query, 6).get().ok());            // miss, inserted
  ASSERT_TRUE(server.Submit(query, 6).get().ok());            // hit
  EXPECT_EQ(server.stats().cache_hits, 1u);

  // The lake gains a table and is re-indexed: LakeStateHash changes, so the
  // cached entry is stale. The next submit must be recomputed against the
  // new lake — bit-identical to the fresh sequential oracle — and counted
  // as an invalidation, never a hit.
  lake_storage.push_back(MakeWordTable("lake-new", 15, 77));
  lake.clear();
  for (const Table& t : lake_storage) lake.push_back(&t);
  search.IndexLake(lake);
  const std::vector<TupleHit> fresh_oracle = search.SearchTuples(query, 6);
  auto after = server.Submit(query, 6).get();
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().size(), fresh_oracle.size());
  for (size_t i = 0; i < fresh_oracle.size(); ++i) {
    EXPECT_EQ(after.value()[i].ref, fresh_oracle[i].ref);
    EXPECT_EQ(after.value()[i].similarity, fresh_oracle[i].similarity);
  }
  server.Shutdown();
  const QueryServerStats stats = server.stats();
  EXPECT_EQ(stats.cache_hits, 1u);  // unchanged: the stale entry never hit
  EXPECT_EQ(stats.cache_invalidations, 1u);
  // And the recomputed result is cached under the new snapshot hash.
  EXPECT_GE(stats.cache_entries, 1u);
}

TEST(QueryServerCacheTest, RemovedTableNeverServedFromCache) {
  // The mutable-lake regression: cache a query, tombstone a table the
  // cached result drew hits from, then re-issue the same query. The server
  // must miss (RemoveTable bumped LakeStateHash, invalidating the entry)
  // and the recomputed answer must contain zero hits from the deleted
  // table — a stale cached hit here would resurrect deleted rows.
  std::vector<Table> lake_storage;
  for (size_t t = 0; t < 6; ++t) {
    lake_storage.push_back(
        MakeWordTable("lake" + std::to_string(t), 15, 50 + t));
  }
  TupleSearch search(MakeTestEncoder());
  std::vector<const Table*> lake;
  for (const Table& t : lake_storage) lake.push_back(&t);
  search.IndexLake(lake);
  const Table query = MakeWordTable("q", 4, 9100);

  QueryServerOptions options;
  options.cache_entries = 128;
  QueryServer server(&search, options);
  auto first = server.Submit(query, 10).get();  // miss, inserted
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(server.Submit(query, 10).get().ok());  // hit
  EXPECT_EQ(server.stats().cache_hits, 1u);

  // Delete the table the cached top hit came from. Mutations are not
  // synchronized against in-flight requests; none are in flight here.
  const size_t victim = first.value()[0].ref.table_index;
  ASSERT_TRUE(search.RemoveTable(search.table_name(victim)).ok());

  auto after = server.Submit(query, 10).get();
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().empty());
  for (const TupleHit& h : after.value()) {
    EXPECT_NE(h.ref.table_index, victim)
        << "hit from the deleted table after RemoveTable";
  }
  server.Shutdown();
  const QueryServerStats stats = server.stats();
  EXPECT_EQ(stats.cache_hits, 1u);  // the post-mutation submit never hit
  EXPECT_EQ(stats.cache_invalidations, 1u);

  // The mutable-lake gauges sample the mutated search object live.
  const std::string text = server.metrics().RenderText();
  EXPECT_NE(text.find("dust_lake_mutations_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("dust_mutable_tombstoned_vectors 15\n"),
            std::string::npos);
  EXPECT_NE(text.find("dust_mutable_live_vectors 75\n"), std::string::npos);
}

TEST_F(ServeFixture, ConcurrentHitMissStormStaysConsistent) {
  // Clients hammer a mix of repeated (cache-hot) and rotating queries;
  // every response must match the sequential oracle whether it came from
  // the cache or the batch path, and the counters must reconcile exactly.
  std::vector<std::vector<TupleHit>> expected;
  for (const Table& q : *queries_) {
    expected.push_back(search_->SearchTuples(q, 6));
  }
  QueryServerOptions options;
  options.threads = 4;
  options.max_batch = 8;
  options.batch_window_us = 100;
  options.cache_entries = 64;
  options.cache_stripes = 4;
  QueryServer server(search_, options);
  const size_t kClients = 6;
  const size_t kRoundsPerClient = 40;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t round = 0; round < kRoundsPerClient; ++round) {
        // Zipf-ish skew: half the traffic goes to query 0.
        const size_t q = round % 2 == 0 ? 0 : (c + round) % queries_->size();
        auto result = server.Submit((*queries_)[q], 6).get();
        if (!result.ok() || result.value().size() != expected[q].size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < expected[q].size(); ++i) {
          if (!(result.value()[i].ref == expected[q][i].ref) ||
              result.value()[i].similarity != expected[q][i].similarity) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Shutdown();
  EXPECT_EQ(mismatches.load(), 0u);
  const QueryServerStats stats = server.stats();
  const uint64_t total = kClients * kRoundsPerClient;
  // Every accepted request probed the cache exactly once.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, total);
  EXPECT_EQ(stats.submitted, total);
  // Only misses reached the batch path; hits resolved at admission.
  EXPECT_EQ(stats.served + stats.cache_hits, total);
  EXPECT_GT(stats.cache_hits, 0u);  // the hot query must actually hit
  EXPECT_EQ(stats.rejected, 0u);
}

TEST_F(ServeFixture, ReadinessAndMetricsSurfaceLifecycle) {
  QueryServerOptions options;
  options.cache_entries = 16;
  QueryServer server(search_, options);
  EXPECT_EQ(server.readiness(), Readiness::kReady);
  ASSERT_TRUE(server.Submit((*queries_)[0], 5).get().ok());
  ASSERT_TRUE(server.Submit((*queries_)[0], 5).get().ok());
  const std::string text = server.metrics().RenderText();
  EXPECT_NE(text.find("dust_serve_ready 1\n"), std::string::npos);
  EXPECT_NE(text.find("dust_serve_submitted_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("dust_cache_hits_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("dust_serve_latency_ms_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("dust_executor_threads"), std::string::npos);
  server.Shutdown();
  EXPECT_EQ(server.readiness(), Readiness::kDraining);
  EXPECT_NE(server.metrics().RenderText().find("dust_serve_ready 2\n"),
            std::string::npos);
}

// --- tracing + slow-query log -----------------------------------------------

TEST_F(ServeFixture, TracedRequestRecordsFullSpanTreeAndSlowLog) {
  obs::SpanCollector::Global().Clear();
  QueryServerOptions options;
  options.threads = 2;
  options.cache_entries = 16;
  options.trace_sample_rate = 1.0;
  options.slow_query_ms = 0.0;  // every request is "slow": forces the log
  QueryServer server(search_, options);
  ASSERT_TRUE(server.Submit((*queries_)[0], 5).get().ok());
  // Same query again: resolves on the cache path, also traced + logged.
  ASSERT_TRUE(server.Submit((*queries_)[0], 5).get().ok());
  server.Shutdown();

  const std::vector<obs::SpanRecord> spans =
      obs::SpanCollector::Global().Snapshot();
  auto count = [&](const char* name) {
    size_t n = 0;
    for (const obs::SpanRecord& span : spans) {
      if (span.name == name) ++n;
    }
    return n;
  };
  EXPECT_EQ(count("serve"), 2u);  // one root per request
  EXPECT_EQ(count("cache_probe"), 2u);
  EXPECT_EQ(count("queue_wait"), 1u);  // only the miss sat on the queue
  EXPECT_EQ(count("search"), 1u);
  EXPECT_GE(count("encode"), 1u);
  EXPECT_GE(count("index_search"), 1u);
  EXPECT_GE(count("fuse"), 1u);
  // The two requests are distinct traces, and every span belongs to one of
  // them with an intact parent chain up to the request's root span.
  uint64_t roots[2] = {0, 0};
  size_t root_count = 0;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "serve") {
      ASSERT_LT(root_count, 2u);
      roots[root_count++] = span.trace_id;
    }
  }
  EXPECT_NE(roots[0], roots[1]);
  for (const obs::SpanRecord& span : spans) {
    EXPECT_TRUE(span.trace_id == roots[0] || span.trace_id == roots[1])
        << span.name << " carries a foreign trace id";
  }

  const std::string text = server.metrics().RenderText();
  EXPECT_NE(text.find("dust_slow_queries_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dust_trace_spans_recorded_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("dust_trace_spans_dropped_total 0\n"),
            std::string::npos);
}

TEST_F(ServeFixture, UnsampledServingRecordsNoSpans) {
  obs::SpanCollector::Global().Clear();
  QueryServerOptions options;
  options.cache_entries = 16;  // default trace_sample_rate = 0.0
  QueryServer server(search_, options);
  ASSERT_TRUE(server.Submit((*queries_)[1], 5).get().ok());
  ASSERT_TRUE(server.Submit((*queries_)[1], 5).get().ok());
  server.Shutdown();
  EXPECT_TRUE(obs::SpanCollector::Global().Snapshot().empty());
  // slow_query_ms defaults to disabled: nothing counted either.
  EXPECT_NE(server.metrics().RenderText().find("dust_slow_queries_total 0\n"),
            std::string::npos);
}

// --- executor-routed index fan-out parity -----------------------------------

std::vector<la::Vec> RandomUnitVectors(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Vec> out;
  for (size_t i = 0; i < n; ++i) {
    la::Vec v(dim);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    la::NormalizeInPlace(&v);
    out.push_back(v);
  }
  return out;
}

TEST(ExecutorRoutingTest, ShardedSearchBitIdenticalToThreadPerShard) {
  const size_t kDim = 16;
  auto vectors = RandomUnitVectors(400, kDim, 31);
  auto queries = RandomUnitVectors(24, kDim, 32);
  shard::ShardedIndexConfig config;
  config.child_type = "flat";
  config.num_shards = 4;
  shard::ShardedIndex index(kDim, la::Metric::kCosine, config);
  index.AddAll(vectors);

  // Thread-per-shard baseline (no executor installed)...
  std::vector<std::vector<index::SearchHit>> baseline;
  for (const la::Vec& q : queries) baseline.push_back(index.Search(q, 9));
  auto baseline_batch = index.SearchBatch(queries, 9);

  // ...must match the pooled scatter bit for bit.
  Executor executor(3);
  index.SetExecutor(&executor);
  for (size_t q = 0; q < queries.size(); ++q) {
    auto routed = index.Search(queries[q], 9);
    ASSERT_EQ(routed.size(), baseline[q].size());
    for (size_t i = 0; i < routed.size(); ++i) {
      EXPECT_EQ(routed[i].id, baseline[q][i].id);
      EXPECT_EQ(routed[i].distance, baseline[q][i].distance);
    }
  }
  auto routed_batch = index.SearchBatch(queries, 9);
  ASSERT_EQ(routed_batch.size(), baseline_batch.size());
  for (size_t q = 0; q < routed_batch.size(); ++q) {
    ASSERT_EQ(routed_batch[q].size(), baseline_batch[q].size());
    for (size_t i = 0; i < routed_batch[q].size(); ++i) {
      EXPECT_EQ(routed_batch[q][i].id, baseline_batch[q][i].id);
      EXPECT_EQ(routed_batch[q][i].distance, baseline_batch[q][i].distance);
    }
  }
  index.SetExecutor(nullptr);  // executor dies before the index
}

TEST(ExecutorRoutingTest, FlatSearchBatchParityAcrossSchedulingModes) {
  const size_t kDim = 12;
  auto vectors = RandomUnitVectors(300, kDim, 41);
  auto queries = RandomUnitVectors(16, kDim, 42);
  auto index = index::MakeVectorIndex("flat", kDim, la::Metric::kEuclidean);
  index->AddAll(vectors);
  auto legacy = index->SearchBatch(queries, 5);
  Executor executor(4);
  auto pooled = index->SearchBatch(queries, 5, &executor);
  ASSERT_EQ(legacy.size(), pooled.size());
  for (size_t q = 0; q < legacy.size(); ++q) {
    ASSERT_EQ(legacy[q].size(), pooled[q].size());
    for (size_t i = 0; i < legacy[q].size(); ++i) {
      EXPECT_EQ(legacy[q][i].id, pooled[q][i].id);
      EXPECT_EQ(legacy[q][i].distance, pooled[q][i].distance);
    }
  }
}

TEST_F(ServeFixture, EmbeddingSearchExecutorParity) {
  // The pipeline-side wiring: a sharded shortlist index's scatter routed
  // through the executor must not change table retrieval.
  search::EmbeddingSearchConfig config;
  config.encoder.dim = 24;
  config.shortlist = 6;
  config.index_type = "sharded:flat:3";
  search::EmbeddingUnionSearch engine(config);
  std::vector<const Table*> lake;
  for (const Table& t : *lake_storage_) lake.push_back(&t);
  engine.IndexLake(lake);
  auto baseline = engine.SearchTables((*queries_)[0], 5);
  Executor executor(2);
  engine.SetExecutor(&executor);
  auto routed = engine.SearchTables((*queries_)[0], 5);
  ASSERT_EQ(baseline.size(), routed.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].table_index, routed[i].table_index);
    EXPECT_EQ(baseline[i].score, routed[i].score);
  }
  engine.SetExecutor(nullptr);
}

}  // namespace
}  // namespace dust::serve
