// Unit tests for src/embed: encoder zoo, column embedders, Starmie encoder,
// tuple encoders.
#include <gtest/gtest.h>

#include "embed/column_embedder.h"
#include "embed/embedder.h"
#include "embed/hashed_encoders.h"
#include "embed/starmie_encoder.h"
#include "embed/tuple_encoder.h"
#include "la/distance.h"

namespace dust::embed {
namespace {

using la::CosineSimilarity;
using la::Norm;
using table::Table;
using table::Value;

EmbedderConfig NoiselessConfig(size_t dim = 32) {
  EmbedderConfig config;
  config.dim = dim;
  config.noise_level = 0.0f;
  return config;
}

TEST(EmbedderTest, Deterministic) {
  auto e = MakeEmbedder(ModelFamily::kRoberta, NoiselessConfig());
  EXPECT_EQ(e->Embed("River Park USA"), e->Embed("River Park USA"));
}

TEST(EmbedderTest, UnitNorm) {
  auto e = MakeEmbedder(ModelFamily::kBert, DefaultConfigFor(ModelFamily::kBert, 32));
  la::Vec v = e->Embed("Hyde Park Jenny Rishi UK");
  EXPECT_NEAR(Norm(v), 1.0f, 1e-4);
}

TEST(EmbedderTest, EmptyTextGivesZeroVector) {
  auto e = MakeEmbedder(ModelFamily::kGlove, NoiselessConfig());
  EXPECT_NEAR(Norm(e->Embed("")), 0.0f, 1e-6);
}

TEST(EmbedderTest, SimilarTextsCloserThanUnrelated) {
  auto e = MakeEmbedder(ModelFamily::kRoberta, NoiselessConfig(64));
  la::Vec park1 = e->Embed("Park Name River Park Supervisor Vera Onate");
  la::Vec park2 = e->Embed("Park Name Hyde Park Supervisor Jenny Rishi");
  la::Vec painting = e->Embed("Painting Northern Lake Medium Oil on canvas");
  EXPECT_GT(CosineSimilarity(park1, park2), CosineSimilarity(park1, painting));
}

TEST(EmbedderTest, FamiliesEmbedIntoUnrelatedSpaces) {
  auto bert = MakeEmbedder(ModelFamily::kBert, NoiselessConfig(64));
  auto roberta = MakeEmbedder(ModelFamily::kRoberta, NoiselessConfig(64));
  la::Vec a = bert->Embed("River Park USA");
  la::Vec b = roberta->Embed("River Park USA");
  // Cross-family similarity of the same text should be far from 1.
  EXPECT_LT(std::abs(CosineSimilarity(a, b)), 0.8f);
}

TEST(EmbedderTest, NoiseLevelPerturbsButPreservesIdentity) {
  EmbedderConfig noisy = NoiselessConfig(64);
  noisy.noise_level = 0.5f;
  auto e = MakeEmbedder(ModelFamily::kSbert, noisy);
  // Same text twice: identical (noise is deterministic per text).
  EXPECT_EQ(e->Embed("abc def"), e->Embed("abc def"));
}

TEST(EmbedderTest, FamilyNames) {
  EXPECT_STREQ(ModelFamilyName(ModelFamily::kFastText), "FastText");
  EXPECT_STREQ(ModelFamilyName(ModelFamily::kSbert), "sBERT");
}

TEST(EmbedderTest, FamilyFeaturesDifferByFamily) {
  auto words = FamilyFeatures(ModelFamily::kGlove, "chippewa park");
  auto subwords = FamilyFeatures(ModelFamily::kBert, "chippewa park");
  EXPECT_EQ(words.size(), 2u);
  EXPECT_GT(subwords.size(), 2u);  // "chippewa" splits into pieces
}

Table MakeParkTable() {
  Table t("parks");
  EXPECT_TRUE(t.AddColumn("Park Name",
                          {Value("River Park"), Value("Hyde Park")}).ok());
  EXPECT_TRUE(t.AddColumn("Country", {Value("USA"), Value("UK")}).ok());
  EXPECT_TRUE(t.AddColumn("Acres", {Value("12.5"), Value("30.2")}).ok());
  return t;
}

TEST(ColumnEmbedderTest, CellLevelAveragesCells) {
  auto enc = std::shared_ptr<TextEmbedder>(
      MakeEmbedder(ModelFamily::kGlove, NoiselessConfig(32)));
  ColumnEmbedder embedder(enc, ColumnSerialization::kCellLevel);
  Table t = MakeParkTable();
  la::Vec v = embedder.EmbedColumn(t.column(1), nullptr);
  // Average of Embed("USA") and Embed("UK"), normalized.
  la::Vec expected = la::Mean({enc->Embed("USA"), enc->Embed("UK")});
  la::NormalizeInPlace(&expected);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(v[i], expected[i], 1e-5);
}

TEST(ColumnEmbedderTest, CellLevelSkipsNulls) {
  auto enc = std::shared_ptr<TextEmbedder>(
      MakeEmbedder(ModelFamily::kGlove, NoiselessConfig(32)));
  ColumnEmbedder embedder(enc, ColumnSerialization::kCellLevel);
  table::Column c;
  c.name = "x";
  c.values = {Value("USA"), Value::Null()};
  la::Vec v = embedder.EmbedColumn(c, nullptr);
  la::Vec expected = la::Normalized(enc->Embed("USA"));
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(v[i], expected[i], 1e-5);
}

TEST(ColumnEmbedderTest, ColumnLevelUsesTokenLimit) {
  auto enc = std::shared_ptr<TextEmbedder>(
      MakeEmbedder(ModelFamily::kRoberta, NoiselessConfig(32)));
  ColumnEmbedder small(enc, ColumnSerialization::kColumnLevel, 2);
  ColumnEmbedder large(enc, ColumnSerialization::kColumnLevel, 512);
  Table t = MakeParkTable();
  // With a tiny token limit the embedding differs from the full one.
  la::Vec limited = small.EmbedColumn(t.column(0), nullptr);
  la::Vec full = large.EmbedColumn(t.column(0), nullptr);
  EXPECT_NE(limited, full);
}

TEST(ColumnEmbedderTest, EmbedTablesShapes) {
  auto enc = std::shared_ptr<TextEmbedder>(
      MakeEmbedder(ModelFamily::kSbert, NoiselessConfig(16)));
  ColumnEmbedder embedder(enc, ColumnSerialization::kColumnLevel);
  Table a = MakeParkTable();
  Table b = MakeParkTable();
  auto all = embedder.EmbedTables({&a, &b});
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].size(), 3u);
  EXPECT_EQ(all[0][0].size(), 16u);
}

TEST(ColumnEmbedderTest, NameIncludesSerializationAndModel) {
  auto enc = std::shared_ptr<TextEmbedder>(
      MakeEmbedder(ModelFamily::kBert, NoiselessConfig(16)));
  ColumnEmbedder embedder(enc, ColumnSerialization::kCellLevel);
  EXPECT_EQ(embedder.name(), "Cell-level BERT");
}

TEST(StarmieEncoderTest, SameTableColumnsPulledTogether) {
  // The table-context mixing must make same-table columns more similar
  // than the pure content embeddings would be (the Sec. 6.2.4 failure
  // mode for alignment).
  StarmieConfig config;
  config.dim = 32;
  StarmieEncoder starmie(config);
  Table t = MakeParkTable();
  std::vector<la::Vec> ctx = starmie.EncodeTable(t);
  ASSERT_EQ(ctx.size(), 3u);

  auto enc = std::shared_ptr<TextEmbedder>(MakeEmbedder(
      ModelFamily::kRoberta,
      DefaultConfigFor(ModelFamily::kRoberta, 32, config.seed ^ 0x57A2ULL)));
  ColumnEmbedder pure(enc, ColumnSerialization::kColumnLevel);
  la::Vec pure0 = pure.EmbedColumn(t.column(0), nullptr);
  la::Vec pure1 = pure.EmbedColumn(t.column(1), nullptr);

  EXPECT_GT(CosineSimilarity(ctx[0], ctx[1]), CosineSimilarity(pure0, pure1));
}

TEST(StarmieEncoderTest, NumericColumnsMostlyContext) {
  StarmieConfig config;
  config.dim = 32;
  StarmieEncoder starmie(config);
  Table t = MakeParkTable();
  std::vector<la::Vec> ctx = starmie.EncodeTable(t);
  // The numeric "Acres" column should sit closer to the other columns
  // (it is dominated by table context) than the name column is to country.
  float numeric_to_name = CosineSimilarity(ctx[2], ctx[0]);
  EXPECT_GT(numeric_to_name, 0.2f);
}

TEST(TupleEncoderTest, PretrainedEncodesSerializedText) {
  auto enc = std::shared_ptr<TextEmbedder>(
      MakeEmbedder(ModelFamily::kRoberta, NoiselessConfig(32)));
  PretrainedTupleEncoder tuple_encoder(enc);
  EXPECT_EQ(tuple_encoder.dim(), 32u);
  la::Vec direct = enc->Embed("[CLS] A x [SEP]");
  la::Vec via = tuple_encoder.EncodeSerialized("[CLS] A x [SEP]");
  EXPECT_EQ(direct, via);
}

TEST(TupleEncoderTest, EncodeTableRowsOnePerRow) {
  auto enc = std::shared_ptr<TextEmbedder>(
      MakeEmbedder(ModelFamily::kRoberta, NoiselessConfig(32)));
  PretrainedTupleEncoder tuple_encoder(enc);
  Table t = MakeParkTable();
  auto rows = tuple_encoder.EncodeTableRows(t);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NE(rows[0], rows[1]);
}

}  // namespace
}  // namespace dust::embed
