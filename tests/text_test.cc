// Unit tests for src/text: tokenization, TF-IDF, feature hashing.
#include <gtest/gtest.h>

#include <set>

#include "text/hashing.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace dust::text {
namespace {

TEST(TokenizerTest, WordTokensLowercaseAndSplit) {
  auto tokens = WordTokens("River Park, USA 773-0380");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"river", "park", "usa", "773", "0380"}));
}

TEST(TokenizerTest, WordTokensEmpty) {
  EXPECT_TRUE(WordTokens("").empty());
  EXPECT_TRUE(WordTokens(" ,;- ").empty());
}

TEST(TokenizerTest, CharNgramsFastTextConvention) {
  auto grams = CharNgrams("park", 3);
  EXPECT_EQ(grams,
            (std::vector<std::string>{"<pa", "par", "ark", "rk>"}));
}

TEST(TokenizerTest, CharNgramsShortWordKeptWhole) {
  auto grams = CharNgrams("ab", 4);
  EXPECT_EQ(grams, (std::vector<std::string>{"<ab>"}));
}

TEST(TokenizerTest, SubwordPiecesSplitLongWords) {
  auto pieces = SubwordPieces("chippewa", 4);
  EXPECT_EQ(pieces, (std::vector<std::string>{"chip", "##pewa"}));
}

TEST(TokenizerTest, SubwordPiecesKeepShortWords) {
  auto pieces = SubwordPieces("park usa", 6);
  EXPECT_EQ(pieces, (std::vector<std::string>{"park", "usa"}));
}

TEST(TokenizerTest, ApproxTokenCount) {
  EXPECT_EQ(ApproxTokenCount("a b  c"), 3u);
  EXPECT_EQ(ApproxTokenCount(""), 0u);
  EXPECT_EQ(ApproxTokenCount("  x  "), 1u);
}

TEST(HashingTest, DeterministicAndSeedSensitive) {
  EXPECT_EQ(HashString("park", 1), HashString("park", 1));
  EXPECT_NE(HashString("park", 1), HashString("park", 2));
  EXPECT_NE(HashString("park", 1), HashString("lark", 1));
}

TEST(HashingTest, VectorDeterministic) {
  std::vector<std::string> tokens = {"a", "b", "c"};
  EXPECT_EQ(HashTokensToVector(tokens, 16, 7),
            HashTokensToVector(tokens, 16, 7));
  EXPECT_NE(HashTokensToVector(tokens, 16, 7),
            HashTokensToVector(tokens, 16, 8));
}

TEST(HashingTest, VectorAdditive) {
  auto va = HashTokensToVector({"a"}, 32, 7);
  auto vb = HashTokensToVector({"b"}, 32, 7);
  auto vab = HashTokensToVector({"a", "b"}, 32, 7);
  for (size_t i = 0; i < 32; ++i) EXPECT_FLOAT_EQ(vab[i], va[i] + vb[i]);
}

TEST(HashingTest, WeightedVector) {
  auto v1 = HashTokensToVector({"x"}, 16, 3);
  auto v2 = HashTokensToVectorWeighted({"x"}, {2.5f}, 16, 3);
  for (size_t i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(v2[i], 2.5f * v1[i]);
}

TEST(HashingTest, SparseMergesDuplicates) {
  SparseVector sv = HashTokensSparse({"a", "a", "b"}, 64, 7);
  // "a" appears twice -> one index with value +-2 (same sign both times).
  bool found_two = false;
  for (float v : sv.values) {
    if (v == 2.0f || v == -2.0f) found_two = true;
  }
  EXPECT_TRUE(found_two);
  // Indices sorted ascending and unique.
  for (size_t i = 1; i < sv.indices.size(); ++i) {
    EXPECT_LT(sv.indices[i - 1], sv.indices[i]);
  }
}

TEST(HashingTest, SparseMatchesDense) {
  std::vector<std::string> tokens = {"park", "name", "river", "park"};
  auto dense = HashTokensToVector(tokens, 128, 9);
  SparseVector sv = HashTokensSparse(tokens, 128, 9);
  std::vector<float> rebuilt(128, 0.0f);
  for (size_t k = 0; k < sv.indices.size(); ++k) {
    rebuilt[sv.indices[k]] = sv.values[k];
  }
  EXPECT_EQ(dense, rebuilt);
}

TEST(TfidfTest, IdfOrdersRareAboveCommon) {
  std::vector<std::vector<std::string>> docs = {
      {"park", "river"}, {"park", "lake"}, {"park", "hill"}};
  TfidfModel model(docs);
  EXPECT_GT(model.Idf("river"), model.Idf("park"));
  EXPECT_GT(model.Idf("unseen"), model.Idf("river"));
  EXPECT_EQ(model.num_documents(), 3u);
}

TEST(TfidfTest, WeightsCombineTfAndIdf) {
  std::vector<std::vector<std::string>> docs = {{"a", "b"}, {"a", "c"}};
  TfidfModel model(docs);
  auto weights = model.Weights({"a", "a", "b"});
  // "a" has tf 2/3 but low idf; "b" tf 1/3 high idf.
  EXPECT_GT(weights.at("b"), 0.0f);
  EXPECT_GT(weights.at("a"), 0.0f);
}

TEST(TfidfTest, TopTokensHonorsLimitAndRanksRareFirst) {
  std::vector<std::vector<std::string>> docs = {
      {"common", "rare1"}, {"common", "rare2"}, {"common"}};
  TfidfModel model(docs);
  // Equal term frequency: the rare token's higher IDF must win.
  auto top = model.TopTokens({"common", "rare1"}, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], "rare1");
}

TEST(TfidfTest, TopTokensDeduplicates) {
  TfidfModel model(std::vector<std::vector<std::string>>{{"x"}});
  auto top = model.TopTokens({"x", "x", "x"}, 10);
  EXPECT_EQ(top.size(), 1u);
}

TEST(TfidfTest, TopTokensDeterministicTies) {
  TfidfModel model(std::vector<std::vector<std::string>>{{"a", "b"}});
  auto t1 = model.TopTokens({"a", "b"}, 2);
  auto t2 = model.TopTokens({"b", "a"}, 2);
  EXPECT_EQ(t1, t2);  // lexicographic tie-break
}

}  // namespace
}  // namespace dust::text
