// Unit + property tests for src/la: vector ops, distances, matrices, PCA,
// and the runtime-dispatched SIMD kernel backends.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "la/distance.h"
#include "la/matrix.h"
#include "la/pca.h"
#include "la/simd/kernels.h"
#include "la/vector_ops.h"
#include "util/rng.h"

namespace dust::la {
namespace {

TEST(VectorOpsTest, DotAndNorm) {
  Vec a = {1, 2, 3};
  Vec b = {4, -5, 6};
  EXPECT_FLOAT_EQ(Dot(a, b), 4 - 10 + 18);
  EXPECT_FLOAT_EQ(NormSquared(a), 14.0f);
  EXPECT_FLOAT_EQ(Norm(a), std::sqrt(14.0f));
}

TEST(VectorOpsTest, AddSubScale) {
  Vec a = {1, 2};
  Vec b = {3, 4};
  EXPECT_EQ(Add(a, b), (Vec{4, 6}));
  EXPECT_EQ(Sub(b, a), (Vec{2, 2}));
  Vec c = a;
  ScaleInPlace(&c, 2.0f);
  EXPECT_EQ(c, (Vec{2, 4}));
}

TEST(VectorOpsTest, NormalizeUnitLength) {
  Vec a = {3, 4};
  NormalizeInPlace(&a);
  EXPECT_NEAR(Norm(a), 1.0f, 1e-6);
  EXPECT_NEAR(a[0], 0.6f, 1e-6);
}

TEST(VectorOpsTest, NormalizeZeroVectorIsNoop) {
  Vec z = {0, 0, 0};
  NormalizeInPlace(&z);
  EXPECT_EQ(z, (Vec{0, 0, 0}));
}

TEST(VectorOpsTest, MeanOfVectors) {
  std::vector<Vec> vs = {{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(Mean(vs), (Vec{3, 4}));
  EXPECT_EQ(MeanOf(vs, {0, 2}), (Vec{3, 4}));
  EXPECT_EQ(MeanOf(vs, {1}), (Vec{3, 4}));
}

TEST(DistanceTest, CosineIdenticalIsZero) {
  Vec a = {1, 2, 3};
  EXPECT_NEAR(CosineDistance(a, a), 0.0f, 1e-6);
}

TEST(DistanceTest, CosineOrthogonalIsOne) {
  Vec a = {1, 0};
  Vec b = {0, 1};
  EXPECT_NEAR(CosineDistance(a, b), 1.0f, 1e-6);
}

TEST(DistanceTest, CosineOppositeIsTwo) {
  Vec a = {1, 0};
  Vec b = {-2, 0};
  EXPECT_NEAR(CosineDistance(a, b), 2.0f, 1e-6);
}

TEST(DistanceTest, CosineScaleInvariant) {
  Vec a = {1, 2, 3};
  Vec b = {2, 1, 0};
  Vec b10 = b;
  ScaleInPlace(&b10, 10.0f);
  EXPECT_NEAR(CosineDistance(a, b), CosineDistance(a, b10), 1e-6);
}

TEST(DistanceTest, ZeroVectorConventions) {
  Vec z = {0, 0};
  Vec a = {1, 1};
  EXPECT_NEAR(CosineDistance(z, z), 0.0f, 1e-6);  // delta(t,t)=0
  EXPECT_NEAR(CosineDistance(z, a), 1.0f, 1e-6);
}

TEST(DistanceTest, EuclideanAndManhattan) {
  Vec a = {0, 0};
  Vec b = {3, 4};
  EXPECT_FLOAT_EQ(EuclideanDistance(a, b), 5.0f);
  EXPECT_FLOAT_EQ(SquaredEuclideanDistance(a, b), 25.0f);
  EXPECT_FLOAT_EQ(ManhattanDistance(a, b), 7.0f);
}

TEST(DistanceTest, MetricNameRoundTrip) {
  EXPECT_EQ(MetricFromName("cosine").ValueOrDie(), Metric::kCosine);
  EXPECT_EQ(MetricFromName("Euclidean").ValueOrDie(), Metric::kEuclidean);
  EXPECT_EQ(MetricFromName("L1").ValueOrDie(), Metric::kManhattan);
  EXPECT_STREQ(MetricName(Metric::kCosine), "cosine");
}

TEST(DistanceTest, MetricFromNameRejectsUnknownSpellings) {
  // The old behavior silently mapped typos to cosine — an index built with
  // "euclidian" would serve cosine distances without anyone noticing.
  for (const char* bad : {"euclidian", "cos", "L3", "", "manhatan"}) {
    Result<Metric> parsed = MetricFromName(bad);
    EXPECT_FALSE(parsed.ok()) << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

// Property suite: metric axioms (identity, symmetry, triangle inequality
// for the true metrics) hold on random vectors for every distance.
class MetricPropertyTest : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricPropertyTest, IdentityAndSymmetry) {
  Metric metric = GetParam();
  dust::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    Vec a(8), b(8);
    for (float& x : a) x = static_cast<float>(rng.NextGaussian());
    for (float& x : b) x = static_cast<float>(rng.NextGaussian());
    EXPECT_NEAR(Distance(metric, a, a), 0.0f, 1e-5);
    EXPECT_NEAR(Distance(metric, a, b), Distance(metric, b, a), 1e-5);
    EXPECT_GE(Distance(metric, a, b), -1e-6f);
  }
}

TEST_P(MetricPropertyTest, TriangleInequalityForTrueMetrics) {
  Metric metric = GetParam();
  if (metric == Metric::kCosine) GTEST_SKIP() << "cosine is not a metric";
  dust::Rng rng(43);
  for (int trial = 0; trial < 50; ++trial) {
    Vec a(6), b(6), c(6);
    for (float& x : a) x = static_cast<float>(rng.NextGaussian());
    for (float& x : b) x = static_cast<float>(rng.NextGaussian());
    for (float& x : c) x = static_cast<float>(rng.NextGaussian());
    EXPECT_LE(Distance(metric, a, c),
              Distance(metric, a, b) + Distance(metric, b, c) + 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricPropertyTest,
                         ::testing::Values(Metric::kCosine, Metric::kEuclidean,
                                           Metric::kManhattan));

// --- SIMD kernel backends ---------------------------------------------------

Vec RandomVec(size_t dim, dust::Rng* rng) {
  Vec v(dim);
  for (float& x : v) x = static_cast<float>(rng->NextGaussian());
  return v;
}

/// SIMD-vs-scalar parity over random vectors at awkward sizes: empty, below
/// one SIMD lane, straddling the 8-lane and 2x8 unrolled boundaries, and a
/// realistic embedding width.
class KernelParityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KernelParityTest, BackendsAgreeWithinTolerance) {
  const size_t dim = GetParam();
  const simd::Kernels& scalar = simd::ScalarKernels();
  // Active() may itself be scalar (DUST_FORCE_SCALAR or no AVX2); also pit
  // the AVX2 backend against scalar explicitly whenever the CPU has it.
  std::vector<const simd::Kernels*> backends = {&simd::Active()};
  if (simd::Avx2Available()) backends.push_back(&simd::Avx2Kernels());

  dust::Rng rng(1234 + dim);
  for (int trial = 0; trial < 20; ++trial) {
    Vec a = RandomVec(dim, &rng);
    Vec b = RandomVec(dim, &rng);
    const float want_dot = scalar.dot(a.data(), b.data(), dim);
    const float want_norm = scalar.norm_squared(a.data(), dim);
    const float want_l2 = scalar.squared_l2(a.data(), b.data(), dim);
    const float want_l1 = scalar.l1(a.data(), b.data(), dim);
    for (const simd::Kernels* ops : backends) {
      // 1e-5 relative: different accumulation orders legitimately differ in
      // the last float bits on long vectors.
      auto tol = [](float want) { return 1e-5f * (1.0f + std::fabs(want)); };
      EXPECT_NEAR(ops->dot(a.data(), b.data(), dim), want_dot, tol(want_dot))
          << ops->name << " dim " << dim;
      EXPECT_NEAR(ops->norm_squared(a.data(), dim), want_norm,
                  tol(want_norm))
          << ops->name << " dim " << dim;
      EXPECT_NEAR(ops->squared_l2(a.data(), b.data(), dim), want_l2,
                  tol(want_l2))
          << ops->name << " dim " << dim;
      EXPECT_NEAR(ops->l1(a.data(), b.data(), dim), want_l1, tol(want_l1))
          << ops->name << " dim " << dim;
      float dot = 0.0f, a2 = 0.0f, b2 = 0.0f;
      ops->cosine_terms(a.data(), b.data(), dim, &dot, &a2, &b2);
      EXPECT_NEAR(dot, want_dot, tol(want_dot)) << ops->name;
      EXPECT_NEAR(a2, scalar.norm_squared(a.data(), dim), tol(a2))
          << ops->name;
      EXPECT_NEAR(b2, scalar.norm_squared(b.data(), dim), tol(b2))
          << ops->name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AwkwardDims, KernelParityTest,
                         ::testing::Values(0, 1, 7, 31, 33, 1024));

TEST(SimdDispatchTest, ForceScalarSwapsBackend) {
  simd::ForceScalar(true);
  EXPECT_STREQ(simd::ActiveName(), "scalar");
  simd::ForceScalar(false);  // back to the startup selection
  const std::string name = simd::ActiveName();
  EXPECT_TRUE(name == "scalar" || name == "avx2") << name;
}

TEST(DistanceToManyTest, MatchesPairwiseDistanceAcrossOverloads) {
  dust::Rng rng(77);
  for (size_t dim : {1u, 7u, 33u, 128u}) {
    std::vector<Vec> base;
    for (int i = 0; i < 17; ++i) base.push_back(RandomVec(dim, &rng));
    Vec query = RandomVec(dim, &rng);
    const std::vector<float> norms = NormsOf(base);
    ASSERT_EQ(norms.size(), base.size());
    for (size_t i = 0; i < base.size(); ++i) {
      EXPECT_NEAR(norms[i], Norm(base[i]), 1e-5f);
    }

    for (Metric metric :
         {Metric::kCosine, Metric::kEuclidean, Metric::kManhattan}) {
      std::vector<float> plain, cached;
      DistanceToMany(metric, query, base, &plain);
      DistanceToMany(metric, query, base, norms, &cached);
      ASSERT_EQ(plain.size(), base.size());
      ASSERT_EQ(cached.size(), base.size());
      for (size_t i = 0; i < base.size(); ++i) {
        const float want = Distance(metric, query, base[i]);
        EXPECT_NEAR(plain[i], want, 1e-5f) << MetricName(metric);
        EXPECT_NEAR(cached[i], want, 1e-5f) << MetricName(metric);
      }

      // Gathered overloads (both id widths), against the same references.
      const std::vector<uint32_t> ids32 = {3, 0, 16, 7, 7};
      const std::vector<size_t> ids64 = {5, 11, 2};
      std::vector<float> out32(ids32.size()), out64(ids64.size());
      DistanceToMany(metric, query, base, norms.data(), ids32.data(),
                     ids32.size(), out32.data());
      DistanceToMany(metric, query, base, nullptr, ids64.data(), ids64.size(),
                     out64.data());
      for (size_t i = 0; i < ids32.size(); ++i) {
        EXPECT_NEAR(out32[i], Distance(metric, query, base[ids32[i]]), 1e-5f);
      }
      for (size_t i = 0; i < ids64.size(); ++i) {
        EXPECT_NEAR(out64[i], Distance(metric, query, base[ids64[i]]), 1e-5f);
      }
    }
  }
}

TEST(DistanceToManyTest, ZeroAndEmptyEdgeCases) {
  // Zero-dimensional vectors are all "the zero vector": cosine distance 0
  // (delta(t,t)=0), L1/L2 distance 0.
  std::vector<Vec> base = {{}, {}};
  std::vector<float> out;
  for (Metric metric :
       {Metric::kCosine, Metric::kEuclidean, Metric::kManhattan}) {
    DistanceToMany(metric, Vec{}, base, &out);
    EXPECT_EQ(out, (std::vector<float>{0.0f, 0.0f})) << MetricName(metric);
  }
  // Empty base: no output, no crash.
  DistanceToMany(Metric::kCosine, Vec{1.0f}, {}, &out);
  EXPECT_TRUE(out.empty());
  // Zero vectors inside a non-trivial base follow the cosine conventions.
  std::vector<Vec> mixed = {{0.0f, 0.0f}, {1.0f, 1.0f}};
  DistanceToMany(Metric::kCosine, Vec{0.0f, 0.0f}, mixed, &out);
  EXPECT_NEAR(out[0], 0.0f, 1e-6f);  // zero vs zero
  EXPECT_NEAR(out[1], 1.0f, 1e-6f);  // zero vs non-zero
}

TEST(DistanceTest, CosineDistanceFromDotConventionsAndClamping) {
  EXPECT_EQ(CosineDistanceFromDot(0.0f, 0.0f, 0.0f), 0.0f);
  EXPECT_EQ(CosineDistanceFromDot(0.0f, 1.0f, 0.0f), 1.0f);
  EXPECT_EQ(CosineDistanceFromDot(0.0f, 0.0f, 1.0f), 1.0f);
  // Accumulated error past ±1 clamps instead of going negative / above 2.
  EXPECT_EQ(CosineDistanceFromDot(10.0f, 1.0f, 1.0f), 0.0f);
  EXPECT_EQ(CosineDistanceFromDot(-10.0f, 1.0f, 1.0f), 2.0f);
  // Fused form agrees with the reference three-pass computation.
  dust::Rng rng(88);
  for (int trial = 0; trial < 20; ++trial) {
    Vec a = RandomVec(24, &rng);
    Vec b = RandomVec(24, &rng);
    EXPECT_NEAR(CosineDistanceFromDot(Dot(a, b), Norm(a), Norm(b)),
                CosineDistance(a, b), 1e-5f);
  }
}

TEST(DistanceMatrixTest, MatchesPairwiseDistances) {
  std::vector<Vec> points = {{0, 0}, {3, 4}, {6, 8}};
  DistanceMatrix m(points, Metric::kEuclidean);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_FLOAT_EQ(m.at(0, 1), 5.0f);
  EXPECT_FLOAT_EQ(m.at(1, 0), 5.0f);
  EXPECT_FLOAT_EQ(m.at(0, 2), 10.0f);
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
}

TEST(DistanceMatrixTest, SetKeepsSymmetry) {
  DistanceMatrix m(std::vector<Vec>{{0.f}, {1.f}}, Metric::kEuclidean);
  m.set(0, 1, 9.0f);
  EXPECT_FLOAT_EQ(m.at(1, 0), 9.0f);
}

TEST(MatrixTest, MatVec) {
  Matrix m(2, 3);
  // [[1 2 3], [4 5 6]]
  for (size_t c = 0; c < 3; ++c) {
    m.at(0, c) = static_cast<float>(c + 1);
    m.at(1, c) = static_cast<float>(c + 4);
  }
  Vec y = m.MatVec({1, 1, 1});
  EXPECT_EQ(y, (Vec{6, 15}));
}

TEST(MatrixTest, TransposeMatVec) {
  Matrix m(2, 3);
  for (size_t c = 0; c < 3; ++c) {
    m.at(0, c) = static_cast<float>(c + 1);
    m.at(1, c) = static_cast<float>(c + 4);
  }
  Vec y = m.TransposeMatVec({1, 1});
  EXPECT_EQ(y, (Vec{5, 7, 9}));
}

TEST(PcaTest, RecoversDominantDirection) {
  // Points stretched along (1,1)/sqrt(2) with small orthogonal noise.
  dust::Rng rng(5);
  std::vector<Vec> points;
  for (int i = 0; i < 200; ++i) {
    float t = static_cast<float>(rng.NextGaussian()) * 10.0f;
    float n = static_cast<float>(rng.NextGaussian()) * 0.1f;
    points.push_back({t + n, t - n});
  }
  PcaResult pca = ComputePca(points, 1);
  float c = std::fabs(pca.components[0][0] * pca.components[0][1]);
  // Both components of the direction should be ~1/sqrt(2): product ~0.5.
  EXPECT_NEAR(c, 0.5f, 0.02f);
  EXPECT_GT(pca.explained_variance[0], 50.0f);
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  dust::Rng rng(6);
  std::vector<Vec> points;
  for (int i = 0; i < 100; ++i) {
    Vec p(5);
    for (float& x : p) x = static_cast<float>(rng.NextGaussian());
    points.push_back(p);
  }
  PcaResult pca = ComputePca(points, 3);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(Norm(pca.components[i]), 1.0f, 1e-3);
    for (size_t j = i + 1; j < 3; ++j) {
      EXPECT_NEAR(Dot(pca.components[i], pca.components[j]), 0.0f, 1e-3);
    }
  }
}

TEST(PcaTest, VarianceIsNonIncreasing) {
  dust::Rng rng(7);
  std::vector<Vec> points;
  for (int i = 0; i < 150; ++i) {
    Vec p(4);
    p[0] = static_cast<float>(rng.NextGaussian()) * 5.0f;
    p[1] = static_cast<float>(rng.NextGaussian()) * 2.0f;
    p[2] = static_cast<float>(rng.NextGaussian()) * 1.0f;
    p[3] = static_cast<float>(rng.NextGaussian()) * 0.2f;
    points.push_back(p);
  }
  PcaResult pca = ComputePca(points, 3);
  EXPECT_GE(pca.explained_variance[0], pca.explained_variance[1] - 1e-3);
  EXPECT_GE(pca.explained_variance[1], pca.explained_variance[2] - 1e-3);
}

TEST(PcaTest, ProjectionMatchesStoredProjection) {
  std::vector<Vec> points = {{1, 0}, {0, 1}, {2, 2}, {3, 1}};
  PcaResult pca = ComputePca(points, 2);
  for (size_t i = 0; i < points.size(); ++i) {
    Vec p = PcaProject(pca, points[i]);
    ASSERT_EQ(p.size(), 2u);
    EXPECT_NEAR(p[0], pca.projected[i][0], 1e-5);
    EXPECT_NEAR(p[1], pca.projected[i][1], 1e-5);
  }
}

TEST(PcaTest, DeterministicAcrossRuns) {
  std::vector<Vec> points = {{1, 2}, {3, 1}, {0, 5}, {2, 2}, {4, 0}};
  PcaResult a = ComputePca(points, 2, 17);
  PcaResult b = ComputePca(points, 2, 17);
  EXPECT_EQ(a.components[0], b.components[0]);
  EXPECT_EQ(a.projected[3], b.projected[3]);
}

}  // namespace
}  // namespace dust::la
