// Unit tests for src/search/cascade: stage semantics (prefilter admission
// rule, prescreen top-k, shortlist parity, rerank ordering), the
// CascadeSearch driver's accounting and metrics, and the TupleSearch
// cascade's flat-parity and pruning behaviour.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "embed/embedder.h"
#include "embed/tuple_encoder.h"
#include "index/vector_index.h"
#include "search/cascade/cascade_search.h"
#include "search/cascade/stages.h"
#include "search/tuple_search.h"
#include "serve/metrics.h"
#include "table/table.h"

namespace dust::search::cascade {
namespace {

using table::Table;
using table::Value;

Table TextTable(const std::string& name) {
  Table t(name);
  EXPECT_TRUE(t.AddColumn("name", {Value("ada"), Value("grace")}).ok());
  EXPECT_TRUE(t.AddColumn("city", {Value("london"), Value("nyc")}).ok());
  return t;
}

Table NumericTable(const std::string& name) {
  Table t(name);
  EXPECT_TRUE(t.AddColumn("x", {Value("1.0"), Value("2.0")}).ok());
  EXPECT_TRUE(t.AddColumn("y", {Value("3.0"), Value("4.0")}).ok());
  return t;
}

TEST(SignatureOfTest, CountsNumericColumns) {
  Table t("mixed");
  ASSERT_TRUE(t.AddColumn("name", {Value("ada"), Value("grace")}).ok());
  ASSERT_TRUE(t.AddColumn("score", {Value("1.5"), Value("2.5")}).ok());
  TableSignature sig = SignatureOf(t);
  EXPECT_EQ(sig.columns, 2u);
  EXPECT_EQ(sig.numeric_columns, 1u);
  EXPECT_EQ(SignatureOf(Table("empty")).columns, 0u);
}

TEST(PrefilterCompatibleTest, AdmissionRule) {
  CascadeConfig config;  // min_type_overlap 0.5, max_column_ratio 4.0
  const TableSignature two_text{2, 0};
  const TableSignature two_numeric{2, 2};
  const TableSignature mixed{2, 1};
  const TableSignature empty{0, 0};
  // Same shape always passes; disjoint types never do.
  EXPECT_TRUE(PrefilterCompatible(two_text, two_text, config));
  EXPECT_FALSE(PrefilterCompatible(two_text, two_numeric, config));
  // One of two columns type-covered is exactly the 0.5 threshold.
  EXPECT_TRUE(PrefilterCompatible(two_text, mixed, config));
  // A column-less query judges nothing; a column-less candidate never
  // matches a real query.
  EXPECT_TRUE(PrefilterCompatible(empty, two_numeric, config));
  EXPECT_FALSE(PrefilterCompatible(two_text, empty, config));
  // Width cap: a 9-column candidate against a 2-column query exceeds 4x.
  EXPECT_FALSE(PrefilterCompatible(two_text, TableSignature{9, 0}, config));
  EXPECT_TRUE(PrefilterCompatible(two_text, TableSignature{8, 0}, config));
}

TEST(TypePrefilterStageTest, PrunesIncompatibleTables) {
  CascadeConfig config;
  std::vector<TableSignature> signatures = {
      {2, 0},  // text like the query -> keep
      {2, 2},  // all numeric -> prune
      {2, 1},  // half covered -> keep
  };
  TypePrefilterStage stage(&signatures, &config);
  CandidateSet set;
  set.query_signature = {2, 0};
  set.tables = {0, 1, 2};
  ASSERT_TRUE(stage.Run(set).ok());
  EXPECT_EQ(set.tables, (std::vector<size_t>{0, 2}));
}

TEST(TypePrefilterStageTest, OutOfRangeIdIsInternalError) {
  CascadeConfig config;
  std::vector<TableSignature> signatures = {{2, 0}};
  TypePrefilterStage stage(&signatures, &config);
  CandidateSet set;
  set.query_signature = {2, 0};
  set.tables = {0, 7};
  Status status = stage.Run(set);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(MinHashPrescreenStageTest, KeepsMostSimilarInAscendingIdOrder) {
  CascadeConfig config;
  config.prescreen_keep = 2;
  std::vector<MinHashSketch> sketches = {
      MinHashSketch({"x", "y", "z"}, 128),          // disjoint from query
      MinHashSketch({"a", "b", "c", "d"}, 128),     // identical to query
      MinHashSketch({"a", "b", "q", "r"}, 128),     // half overlap
  };
  MinHashSketch query({"a", "b", "c", "d"}, 128);
  MinHashPrescreenStage stage(&sketches, &config);
  CandidateSet set;
  set.query_sketch = &query;
  set.tables = {0, 1, 2};
  ASSERT_TRUE(stage.Run(set).ok());
  // Tables 1 and 2 overlap the query, table 0 does not; survivors come
  // back in ascending-id order like an untouched candidate set.
  EXPECT_EQ(set.tables, (std::vector<size_t>{1, 2}));
}

TEST(MinHashPrescreenStageTest, PassThroughAtOrUnderCap) {
  CascadeConfig config;
  config.prescreen_keep = 8;
  std::vector<MinHashSketch> sketches;
  MinHashPrescreenStage stage(&sketches, &config);
  CandidateSet set;
  set.tables = {0, 1, 2};  // already under the cap: no sketches needed
  ASSERT_TRUE(stage.Run(set).ok());
  EXPECT_EQ(set.tables.size(), 3u);

  config.prescreen_keep = 0;  // 0 disables the cut entirely
  set.tables = {0, 1, 2};
  ASSERT_TRUE(stage.Run(set).ok());
  EXPECT_EQ(set.tables.size(), 3u);
}

TEST(MinHashPrescreenStageTest, MissingQuerySketchIsInternalError) {
  CascadeConfig config;
  config.prescreen_keep = 1;
  std::vector<MinHashSketch> sketches = {MinHashSketch({"a"}, 32),
                                         MinHashSketch({"b"}, 32)};
  MinHashPrescreenStage stage(&sketches, &config);
  CandidateSet set;
  set.tables = {0, 1};  // over the cap, so the sketch is actually needed
  Status status = stage.Run(set);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(VectorShortlistStageTest, DelegatesToIndexWhenSetUntouched) {
  std::vector<la::Vec> profiles = {
      {1.0f, 0.0f}, {0.0f, 1.0f}, {0.9f, 0.1f}};
  auto index =
      index::MakeVectorIndex("flat", 2, la::Metric::kCosine);
  index->AddAll(profiles);
  std::unique_ptr<index::VectorIndex> slot = std::move(index);
  VectorShortlistStage stage(&slot, &profiles, 2);
  la::Vec query = {1.0f, 0.0f};
  CandidateSet set;
  set.query_profile = &query;
  set.tables = {0, 1, 2};  // full set -> the flat path's index call
  ASSERT_TRUE(stage.Run(set).ok());
  // Flat cosine: table 0 is an exact match, table 2 is close.
  EXPECT_EQ(set.tables, (std::vector<size_t>{0, 2}));
}

TEST(VectorShortlistStageTest, ScoresPrunedSurvivorsExactly) {
  std::vector<la::Vec> profiles = {
      {1.0f, 0.0f}, {0.0f, 1.0f}, {0.9f, 0.1f}};
  std::unique_ptr<index::VectorIndex> slot =
      index::MakeVectorIndex("flat", 2, la::Metric::kCosine);
  for (const la::Vec& p : profiles) slot->Add(p);
  VectorShortlistStage stage(&slot, &profiles, 1);
  la::Vec query = {1.0f, 0.0f};
  CandidateSet set;
  set.query_profile = &query;
  set.tables = {1, 2};  // pre-pruned: table 0 (the best) already rejected
  ASSERT_TRUE(stage.Run(set).ok());
  // The stage must rank only the survivors, never resurrect table 0.
  EXPECT_EQ(set.tables, (std::vector<size_t>{2}));
}

TEST(VectorShortlistStageTest, PassThroughWithoutIndexOrShortlist) {
  std::vector<la::Vec> profiles;
  std::unique_ptr<index::VectorIndex> empty_slot;
  VectorShortlistStage no_index(&empty_slot, &profiles, 4);
  CandidateSet set;
  set.tables = {0, 1};
  ASSERT_TRUE(no_index.Run(set).ok());
  EXPECT_EQ(set.tables.size(), 2u);

  std::unique_ptr<index::VectorIndex> slot =
      index::MakeVectorIndex("flat", 2, la::Metric::kCosine);
  VectorShortlistStage zero_shortlist(&slot, &profiles, 0);
  ASSERT_TRUE(zero_shortlist.Run(set).ok());
  EXPECT_EQ(set.tables.size(), 2u);
}

TEST(ExactRerankStageTest, RanksDescendingAndTruncates) {
  const std::vector<double> scores = {0.2, 0.9, 0.5, 0.9};
  ExactRerankStage stage([&scores](size_t t) { return scores[t]; });
  CandidateSet set;
  set.n = 3;
  set.tables = {0, 1, 2, 3};
  ASSERT_TRUE(stage.Run(set).ok());
  ASSERT_EQ(set.hits.size(), 3u);
  // Ties break toward the lower table id (1 before 3).
  EXPECT_EQ(set.hits[0].table_index, 1u);
  EXPECT_EQ(set.hits[1].table_index, 3u);
  EXPECT_EQ(set.hits[2].table_index, 2u);
  EXPECT_DOUBLE_EQ(set.hits[0].score, 0.9);
  EXPECT_EQ(set.tables, (std::vector<size_t>{1, 3, 2}));
}

TEST(CascadeSearchTest, UndeclaredStageIsInternalError) {
  CascadeSearch cascade({"prefilter"});
  ExactRerankStage rerank([](size_t) { return 0.0; });
  CandidateSet set;
  std::vector<const CandidateStage*> stages = {&rerank};
  Status status = cascade.Run(stages, set, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(CascadeSearchTest, AccountsStatsAndExportsMetrics) {
  CascadeSearch cascade({"prefilter", "rerank"});
  CascadeConfig config;
  std::vector<TableSignature> signatures = {{2, 0}, {2, 2}, {2, 0}};
  TypePrefilterStage prefilter(&signatures, &config);
  ExactRerankStage rerank([](size_t t) { return static_cast<double>(t); });

  CandidateSet set;
  set.n = 2;
  set.query_signature = {2, 0};
  set.tables = {0, 1, 2};
  std::vector<StageStats> stats;
  std::vector<const CandidateStage*> stages = {&prefilter, &rerank};
  ASSERT_TRUE(cascade.Run(stages, set, &stats).ok());

  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].stage, "prefilter");
  EXPECT_EQ(stats[0].in, 3u);
  EXPECT_EQ(stats[0].out, 2u);
  EXPECT_GE(stats[0].micros, 0.0);
  EXPECT_EQ(stats[1].stage, "rerank");
  EXPECT_EQ(stats[1].in, 2u);
  EXPECT_EQ(stats[1].out, 2u);

  const std::string summary = cascade.StatsSummary();
  EXPECT_NE(summary.find("stage prefilter"), std::string::npos) << summary;
  EXPECT_NE(summary.find("runs=1 in=3 out=2"), std::string::npos) << summary;

  serve::Metrics metrics;
  cascade.RegisterMetrics(&metrics);
  const std::string text = metrics.RenderText();
  EXPECT_NE(text.find("dust_cascade_stage_prefilter_runs_total 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dust_cascade_stage_prefilter_in_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("dust_cascade_stage_rerank_out_total 2"),
            std::string::npos);
}

// --- TupleSearch cascade integration ---------------------------------------

std::shared_ptr<embed::TupleEncoder> TestEncoder() {
  return std::make_shared<embed::PretrainedTupleEncoder>(
      std::shared_ptr<embed::TextEmbedder>(embed::MakeEmbedder(
          embed::ModelFamily::kRoberta,
          embed::DefaultConfigFor(embed::ModelFamily::kRoberta, 32))));
}

TEST(TupleSearchCascadeTest, DisabledStagesAreBitIdenticalToFlat) {
  Table a = TextTable("a");
  Table b = TextTable("b");
  Table nums = NumericTable("nums");
  const std::vector<const Table*> lake = {&a, &b, &nums};

  TupleSearch flat(TestEncoder());
  flat.IndexLake(lake);

  TupleSearchConfig config;
  config.cascade.enabled = true;
  config.cascade.prefilter = false;
  config.cascade.prescreen = false;
  TupleSearch degenerate(TestEncoder(), config);
  degenerate.IndexLake(lake);

  Table query("q");
  ASSERT_TRUE(query.AddColumn("name", {Value("ada")}).ok());
  ASSERT_TRUE(query.AddColumn("city", {Value("london")}).ok());
  const auto expected = flat.SearchTuples(query, 4);
  const auto actual = degenerate.SearchTuples(query, 4);
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].ref, actual[i].ref);
    EXPECT_EQ(expected[i].similarity, actual[i].similarity);  // exact
  }
}

TEST(TupleSearchCascadeTest, PrefilterRestrictsHitsToCompatibleTables) {
  Table a = TextTable("a");
  Table b = TextTable("b");
  Table nums = NumericTable("nums");
  const std::vector<const Table*> lake = {&a, &b, &nums};

  TupleSearchConfig config;
  config.cascade.enabled = true;
  TupleSearch search(TestEncoder(), config);
  search.IndexLake(lake);

  Table query("q");
  ASSERT_TRUE(query.AddColumn("name", {Value("ada")}).ok());
  ASSERT_TRUE(query.AddColumn("city", {Value("london")}).ok());
  const auto hits = search.SearchTuples(query, 6);
  ASSERT_FALSE(hits.empty());
  for (const TupleHit& hit : hits) {
    EXPECT_NE(hit.ref.table_index, 2u)
        << "numeric table survived the type prefilter";
  }
  const std::string summary = search.CascadeStatsSummary();
  EXPECT_NE(summary.find("stage prefilter"), std::string::npos) << summary;
}

TEST(TupleSearchCascadeTest, ConfigHashCoversCascadeKnobs) {
  TupleSearchConfig flat_config;
  TupleSearchConfig cascade_config;
  cascade_config.cascade.enabled = true;
  auto encoder = TestEncoder();
  TupleSearch flat(encoder, flat_config);
  TupleSearch cascaded(encoder, cascade_config);
  EXPECT_NE(flat.ConfigHash(), cascaded.ConfigHash());

  TupleSearchConfig retuned = cascade_config;
  retuned.cascade.prescreen_keep = 16;
  TupleSearch retuned_search(encoder, retuned);
  EXPECT_NE(cascaded.ConfigHash(), retuned_search.ConfigHash());
}

}  // namespace
}  // namespace dust::search::cascade
