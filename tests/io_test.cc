// Persistence tests for src/io: save/load round-trip parity for all four
// index types (both metrics), corrupt/truncated/version-mismatch rejection,
// empty-index round-trips, the IVF train-before-save guarantee, and the
// writer/reader primitives themselves.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "index/flat_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_index.h"
#include "index/lsh_index.h"
#include "io/index_io.h"
#include "shard/sharded_index.h"
#include "util/rng.h"

namespace dust::io {
namespace {

using index::FlatIndex;
using index::HnswIndex;
using index::IvfFlatIndex;
using index::LshIndex;
using index::VectorIndex;

std::vector<la::Vec> RandomUnitVectors(size_t n, size_t dim, uint64_t seed) {
  dust::Rng rng(seed);
  std::vector<la::Vec> out;
  for (size_t i = 0; i < n; ++i) {
    la::Vec v(dim);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    la::NormalizeInPlace(&v);
    out.push_back(v);
  }
  return out;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Asserts that `loaded` answers a query batch bit-identically to
/// `original` (ids and float distances), per the round-trip contract.
void ExpectSearchParity(const VectorIndex& original, const VectorIndex& loaded,
                        size_t num_queries, size_t k, uint64_t seed) {
  auto queries = RandomUnitVectors(num_queries, original.dim(), seed);
  auto expected = original.SearchBatch(queries, k);
  auto actual = loaded.SearchBatch(queries, k);
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t q = 0; q < expected.size(); ++q) {
    ASSERT_EQ(expected[q].size(), actual[q].size()) << "query " << q;
    for (size_t i = 0; i < expected[q].size(); ++i) {
      EXPECT_EQ(expected[q][i].id, actual[q][i].id) << "query " << q;
      // Exact equality on purpose: the loaded index must be bit-identical,
      // not merely close.
      EXPECT_EQ(expected[q][i].distance, actual[q][i].distance)
          << "query " << q;
    }
  }
}

// --- round-trip parity across all types and both metrics -------------------

struct RoundTripCase {
  const char* type;
  la::Metric metric;
};

class RoundTripTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(RoundTripTest, SearchBatchParityOn1kVectors) {
  const RoundTripCase& param = GetParam();
  const size_t kDim = 16;
  auto index = index::MakeVectorIndex(param.type, kDim, param.metric);
  index->AddAll(RandomUnitVectors(1000, kDim, 71));

  const std::string path = TempPath(std::string("roundtrip_") + param.type +
                                    std::to_string(MetricTag(param.metric)));
  ASSERT_TRUE(index->Save(path).ok());
  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const VectorIndex& restored = *loaded.value();
  EXPECT_EQ(restored.type_tag(), param.type);
  EXPECT_EQ(restored.name(), index->name());
  EXPECT_EQ(restored.size(), index->size());
  EXPECT_EQ(restored.dim(), index->dim());
  EXPECT_EQ(restored.metric(), param.metric);
  ExpectSearchParity(*index, restored, 32, 10, 9000);
}

TEST_P(RoundTripTest, EmptyIndexRoundTrips) {
  const RoundTripCase& param = GetParam();
  auto index = index::MakeVectorIndex(param.type, 8, param.metric);
  const std::string path = TempPath(std::string("empty_") + param.type +
                                    std::to_string(MetricTag(param.metric)));
  ASSERT_TRUE(index->Save(path).ok());
  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->size(), 0u);
  EXPECT_TRUE(loaded.value()->Search(la::Vec(8, 0.5f), 3).empty());
}

// No lsh + euclidean case: LSH is cosine-only (random-hyperplane hashing),
// and that combination is now rejected — see LshNonCosineFileRejected.
INSTANTIATE_TEST_SUITE_P(
    AllIndexes, RoundTripTest,
    ::testing::Values(RoundTripCase{"flat", la::Metric::kCosine},
                      RoundTripCase{"flat", la::Metric::kEuclidean},
                      RoundTripCase{"flat", la::Metric::kManhattan},
                      RoundTripCase{"hnsw", la::Metric::kCosine},
                      RoundTripCase{"hnsw", la::Metric::kEuclidean},
                      RoundTripCase{"ivf", la::Metric::kCosine},
                      RoundTripCase{"ivf", la::Metric::kEuclidean},
                      RoundTripCase{"lsh", la::Metric::kCosine}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return std::string(info.param.type) + "_" +
             la::MetricName(info.param.metric);
    });

// --- config fidelity -------------------------------------------------------

TEST(IndexIoTest, HnswCustomConfigAndGraphShapeSurviveRoundTrip) {
  index::HnswConfig config;
  config.M = 8;
  config.ef_construction = 100;
  config.ef_search = 64;
  config.seed = 7;
  HnswIndex hnsw(12, la::Metric::kCosine, config);
  hnsw.AddAll(RandomUnitVectors(600, 12, 13));

  const std::string path = TempPath("hnsw_config");
  ASSERT_TRUE(hnsw.Save(path).ok());
  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto* restored = dynamic_cast<HnswIndex*>(loaded.value().get());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->config().M, config.M);
  EXPECT_EQ(restored->config().ef_construction, config.ef_construction);
  EXPECT_EQ(restored->config().ef_search, config.ef_search);
  EXPECT_EQ(restored->config().seed, config.seed);
  EXPECT_EQ(restored->max_level(), hnsw.max_level());
  ExpectSearchParity(hnsw, *restored, 16, 5, 9100);
}

TEST(IndexIoTest, LshHashesQueriesIntoSavedBuckets) {
  index::LshConfig config;
  config.nbits = 20;
  config.probe_radius = 2;
  config.seed = 99;
  LshIndex lsh(10, la::Metric::kCosine, config);
  lsh.AddAll(RandomUnitVectors(300, 10, 17));

  const std::string path = TempPath("lsh_buckets");
  ASSERT_TRUE(lsh.Save(path).ok());
  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto* restored = dynamic_cast<LshIndex*>(loaded.value().get());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->config().nbits, config.nbits);
  EXPECT_EQ(restored->config().probe_radius, config.probe_radius);
  // Same hyperplanes => same signatures => queries land in the same buckets.
  for (const la::Vec& v : RandomUnitVectors(20, 10, 18)) {
    EXPECT_EQ(lsh.Signature(v), restored->Signature(v));
  }
  ExpectSearchParity(lsh, *restored, 16, 5, 9200);
}

// --- sharded round trips and the shard manifest ----------------------------

TEST(IndexIoTest, ShardedRoundTripIsBitIdentical) {
  shard::ShardedIndexConfig config;
  config.child_type = "hnsw";
  config.num_shards = 4;
  config.placement = shard::PlacementPolicy::kHash;
  config.child_options.hnsw_m = 8;
  shard::ShardedIndex sharded(16, la::Metric::kCosine, config);
  sharded.AddAll(RandomUnitVectors(600, 16, 31));

  const std::string path = TempPath("sharded_roundtrip.idx");
  ASSERT_TRUE(sharded.Save(path).ok());
  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto* restored = dynamic_cast<shard::ShardedIndex*>(loaded.value().get());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->type_tag(), "sharded");
  EXPECT_EQ(restored->num_shards(), 4u);
  EXPECT_EQ(restored->size(), sharded.size());
  EXPECT_EQ(restored->config().child_type, "hnsw");
  EXPECT_EQ(restored->config().placement, shard::PlacementPolicy::kHash);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(restored->shard_size(s), sharded.shard_size(s)) << "shard " << s;
  }
  // Each shard's own config survives (it round-trips through the standard
  // per-index format).
  auto* child = dynamic_cast<const HnswIndex*>(&restored->shard(0));
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->config().M, 8u);
  ExpectSearchParity(sharded, *restored, 32, 10, 9400);
}

TEST(IndexIoTest, ShardedEmptyAndEuclideanRoundTrips) {
  shard::ShardedIndex empty(8, la::Metric::kEuclidean);
  const std::string path = TempPath("sharded_empty.idx");
  ASSERT_TRUE(empty.Save(path).ok());
  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->size(), 0u);
  EXPECT_EQ(loaded.value()->metric(), la::Metric::kEuclidean);
  EXPECT_TRUE(loaded.value()->Search(la::Vec(8, 0.5f), 3).empty());
}

class SavedShardedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    shard::ShardedIndexConfig config;
    config.num_shards = 2;
    shard::ShardedIndex sharded(6, la::Metric::kCosine, config);
    sharded.AddAll(RandomUnitVectors(40, 6, 37));
    path_ = TempPath("sharded_patched.idx");
    ASSERT_TRUE(sharded.Save(path_).ok());
    bytes_ = ReadFileBytes(path_);
    // header (22 bytes) + empty tombstone section (8) + manifest magic (8)
    ASSERT_GT(bytes_.size(), 38u);
  }
  std::string path_;
  std::string bytes_;
};

TEST_F(SavedShardedFileTest, CorruptManifestMagicRejected) {
  std::string patched = bytes_;
  patched[30] = 'X';  // first byte of the DUSTSHRD manifest magic
  WriteFileBytes(path_, patched);
  auto loaded = LoadIndex(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("shard manifest"),
            std::string::npos);
}

TEST_F(SavedShardedFileTest, TruncatedManifestRejected) {
  // Cut inside the embedded shard payloads and inside the manifest itself.
  for (size_t keep : {bytes_.size() - 9, bytes_.size() / 2, size_t{35}}) {
    WriteFileBytes(path_, bytes_.substr(0, keep));
    auto loaded = LoadIndex(path_);
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  }
}

/// Writes the standalone-file header for a sharded index (dim 2, cosine)
/// followed by the start of a manifest, letting each test finish the
/// manifest its own (corrupt) way.
void BeginShardedFile(IndexWriter* writer) {
  writer->WriteBytes(kIndexMagic, sizeof(kIndexMagic));
  writer->WriteU32(kIndexFormatVersion);
  writer->WriteU8(4);  // sharded
  writer->WriteU8(0);  // cosine
  writer->WriteU64(2);  // dim
  writer->WriteIds({});  // v2 tombstone section (sharded: always empty)
  writer->WriteBytes(kShardManifestMagic, sizeof(kShardManifestMagic));
}

TEST(IndexIoTest, ShardManifestZeroShardsRejected) {
  const std::string path = TempPath("sharded_zero.idx");
  IndexWriter writer(path);
  BeginShardedFile(&writer);
  writer.WriteString("flat");
  writer.WriteU8(0);   // round_robin
  writer.WriteU64(0);  // zero shards
  writer.WriteU64(0);  // total
  ASSERT_TRUE(writer.Close().ok());
  auto loaded = LoadIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(IndexIoTest, ShardManifestUnknownPlacementRejected) {
  const std::string path = TempPath("sharded_placement.idx");
  IndexWriter writer(path);
  BeginShardedFile(&writer);
  writer.WriteString("flat");
  writer.WriteU8(9);   // no such placement policy
  writer.WriteU64(1);
  writer.WriteU64(0);
  writer.WriteIds({});
  ASSERT_TRUE(writer.Close().ok());
  auto loaded = LoadIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(IndexIoTest, ShardManifestNestedShardedChildRejected) {
  const std::string path = TempPath("sharded_nested.idx");
  IndexWriter writer(path);
  BeginShardedFile(&writer);
  writer.WriteString("sharded");  // nesting is not a thing
  writer.WriteU8(0);
  writer.WriteU64(1);
  writer.WriteU64(0);
  writer.WriteIds({});
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_FALSE(LoadIndex(path).ok());
}

TEST(IndexIoTest, ShardManifestDuplicateIdRejected) {
  const std::string path = TempPath("sharded_dup_id.idx");
  IndexWriter writer(path);
  BeginShardedFile(&writer);
  writer.WriteString("flat");
  writer.WriteU8(0);
  writer.WriteU64(1);
  writer.WriteU64(2);      // two vectors claimed...
  writer.WriteIds({0, 0});  // ...but id 0 mapped twice, id 1 never
  ASSERT_TRUE(writer.Close().ok());
  auto loaded = LoadIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("bijection"), std::string::npos);
}

TEST(IndexIoTest, ShardManifestIdListsNotCoveringTotalRejected) {
  const std::string path = TempPath("sharded_uncovered.idx");
  IndexWriter writer(path);
  BeginShardedFile(&writer);
  writer.WriteString("flat");
  writer.WriteU8(0);
  writer.WriteU64(1);
  writer.WriteU64(3);   // three vectors claimed
  writer.WriteIds({0});  // but only one mapped
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_FALSE(LoadIndex(path).ok());
}

TEST(IndexIoTest, ShardPayloadNestedShardedChildRejectedNotCrashed) {
  // The manifest's child-type string is cross-checked only after the child
  // loads, so a crafted embedded child tagged "sharded" would recurse
  // ReadIndex -> LoadPayload per nesting level and overflow the stack; the
  // re-entrancy guard must turn it into an IoError instead.
  const std::string path = TempPath("sharded_nested_child.idx");
  IndexWriter writer(path);
  BeginShardedFile(&writer);
  writer.WriteString("flat");
  writer.WriteU8(0);
  writer.WriteU64(1);
  writer.WriteU64(0);
  writer.WriteIds({});
  // Embedded "shard" whose own header claims another sharded index.
  writer.WriteBytes(kIndexMagic, sizeof(kIndexMagic));
  writer.WriteU32(kIndexFormatVersion);
  writer.WriteU8(4);   // sharded-in-sharded
  writer.WriteU8(0);   // cosine
  writer.WriteU64(2);  // dim
  writer.WriteIds({});  // v2 tombstone section
  ASSERT_TRUE(writer.Close().ok());
  auto loaded = LoadIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("nests"), std::string::npos);
}

TEST(IndexIoTest, ShardPayloadTypeMismatchRejected) {
  // Manifest promises hnsw shards but embeds a flat one: the loaded child
  // must be rejected, not silently served under the wrong algorithm.
  const std::string path = TempPath("sharded_child_type.idx");
  IndexWriter writer(path);
  BeginShardedFile(&writer);
  writer.WriteString("hnsw");
  writer.WriteU8(0);
  writer.WriteU64(1);
  writer.WriteU64(1);
  writer.WriteIds({0});
  // Embedded child: a valid flat index file with one vector.
  writer.WriteBytes(kIndexMagic, sizeof(kIndexMagic));
  writer.WriteU32(kIndexFormatVersion);
  writer.WriteU8(0);   // flat, contradicting the manifest
  writer.WriteU8(0);   // cosine
  writer.WriteU64(2);  // dim
  writer.WriteIds({});  // v2 tombstone section
  writer.WriteU64(1);  // one vector
  writer.WriteVec({1.0f, 0.0f});
  ASSERT_TRUE(writer.Close().ok());
  auto loaded = LoadIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("does not match manifest"),
            std::string::npos);
}

TEST(IndexIoTest, ShardPayloadSizeMismatchRejected) {
  const std::string path = TempPath("sharded_child_size.idx");
  IndexWriter writer(path);
  BeginShardedFile(&writer);
  writer.WriteString("flat");
  writer.WriteU8(0);
  writer.WriteU64(1);
  writer.WriteU64(1);
  writer.WriteIds({0});  // manifest: shard holds one vector
  writer.WriteBytes(kIndexMagic, sizeof(kIndexMagic));
  writer.WriteU32(kIndexFormatVersion);
  writer.WriteU8(0);
  writer.WriteU8(0);
  writer.WriteU64(2);
  writer.WriteIds({});  // v2 tombstone section
  writer.WriteU64(2);  // payload: two vectors
  writer.WriteVec({1.0f, 0.0f});
  writer.WriteVec({0.0f, 1.0f});
  ASSERT_TRUE(writer.Close().ok());
  auto loaded = LoadIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("id mapping"), std::string::npos);
}

// --- tombstones on disk (format v2) ----------------------------------------

TEST_P(RoundTripTest, TombstonesSurviveRoundTrip) {
  const RoundTripCase& param = GetParam();
  const size_t kDim = 16;
  auto index = index::MakeVectorIndex(param.type, kDim, param.metric);
  index->AddAll(RandomUnitVectors(400, kDim, 73));
  ASSERT_EQ(index->RemoveAll({3, 17, 200, 399}), 4u);

  const std::string path = TempPath(std::string("tombstones_") + param.type +
                                    std::to_string(MetricTag(param.metric)));
  ASSERT_TRUE(index->Save(path).ok());
  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const VectorIndex& restored = *loaded.value();
  EXPECT_EQ(restored.size(), 400u);
  EXPECT_EQ(restored.live_size(), 396u);
  EXPECT_EQ(restored.Tombstones(), (std::vector<size_t>{3, 17, 200, 399}));
  // The restored index must filter tombstones exactly like the saved one.
  ExpectSearchParity(*index, restored, 32, 10, 9500);
}

TEST(IndexIoTest, ShardedTombstonesSurviveRoundTrip) {
  // Sharded indexes persist tombstones inside each child (the outer v2
  // section stays empty); the loaded global view must still match.
  shard::ShardedIndexConfig config;
  config.num_shards = 3;
  shard::ShardedIndex sharded(8, la::Metric::kCosine, config);
  sharded.AddAll(RandomUnitVectors(90, 8, 41));
  ASSERT_EQ(sharded.RemoveAll({0, 1, 2, 50, 89}), 5u);

  const std::string path = TempPath("sharded_tombstones.idx");
  ASSERT_TRUE(sharded.Save(path).ok());
  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->live_size(), 85u);
  EXPECT_EQ(loaded.value()->Tombstones(),
            (std::vector<size_t>{0, 1, 2, 50, 89}));
  ExpectSearchParity(sharded, *loaded.value(), 16, 10, 9600);
}

TEST(IndexIoTest, V1FileLoadsWithEmptyTombstoneSet) {
  // Pre-mutation files carry version 1 and no tombstone section; they must
  // keep loading, with every vector live.
  const std::string path = TempPath("v1_flat.idx");
  IndexWriter writer(path);
  writer.WriteBytes(kIndexMagic, sizeof(kIndexMagic));
  writer.WriteU32(1);  // format v1
  writer.WriteU8(0);   // flat
  writer.WriteU8(0);   // cosine
  writer.WriteU64(2);  // dim
  writer.WriteU64(2);  // two vectors, no tombstone section before them
  writer.WriteVec({1.0f, 0.0f});
  writer.WriteVec({0.0f, 1.0f});
  ASSERT_TRUE(writer.Close().ok());
  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->size(), 2u);
  EXPECT_EQ(loaded.value()->live_size(), 2u);
  EXPECT_EQ(loaded.value()->num_tombstones(), 0u);
  EXPECT_EQ(loaded.value()->Search({1.0f, 0.0f}, 1).at(0).id, 0u);
}

TEST(IndexIoTest, TruncatedTombstoneListRejected) {
  // The tombstone count promises more ids than the file holds: rejected by
  // the count bounds check, before any allocation or payload read.
  const std::string path = TempPath("truncated_tombstones.idx");
  IndexWriter writer(path);
  writer.WriteBytes(kIndexMagic, sizeof(kIndexMagic));
  writer.WriteU32(kIndexFormatVersion);
  writer.WriteU8(0);     // flat
  writer.WriteU8(0);     // cosine
  writer.WriteU64(2);    // dim
  writer.WriteU64(100);  // tombstone count, but no ids follow
  writer.WriteU64(0);    // (read as the first of the promised ids)
  ASSERT_TRUE(writer.Close().ok());
  auto loaded = LoadIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(IndexIoTest, OutOfRangeTombstoneIdRejected) {
  // A tombstone id past the payload's vector count means the file is
  // corrupt (or the sections were spliced from different indexes).
  const std::string path = TempPath("tombstone_range.idx");
  IndexWriter writer(path);
  writer.WriteBytes(kIndexMagic, sizeof(kIndexMagic));
  writer.WriteU32(kIndexFormatVersion);
  writer.WriteU8(0);   // flat
  writer.WriteU8(0);   // cosine
  writer.WriteU64(2);  // dim
  writer.WriteIds({5});  // payload only has 2 vectors
  writer.WriteU64(2);
  writer.WriteVec({1.0f, 0.0f});
  writer.WriteVec({0.0f, 1.0f});
  ASSERT_TRUE(writer.Close().ok());
  auto loaded = LoadIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("out of range"), std::string::npos);
}

TEST(IndexIoTest, DuplicateTombstoneIdRejected) {
  const std::string path = TempPath("tombstone_dup.idx");
  IndexWriter writer(path);
  writer.WriteBytes(kIndexMagic, sizeof(kIndexMagic));
  writer.WriteU32(kIndexFormatVersion);
  writer.WriteU8(0);   // flat
  writer.WriteU8(0);   // cosine
  writer.WriteU64(2);  // dim
  writer.WriteIds({0, 0});
  writer.WriteU64(2);
  writer.WriteVec({1.0f, 0.0f});
  writer.WriteVec({0.0f, 1.0f});
  ASSERT_TRUE(writer.Close().ok());
  auto loaded = LoadIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("duplicate"), std::string::npos);
}

TEST(IndexIoTest, CompactedIndexRoundTripsWithoutTombstones) {
  FlatIndex flat(8, la::Metric::kCosine);
  flat.AddAll(RandomUnitVectors(200, 8, 47));
  for (size_t id = 0; id < 200; id += 3) flat.Remove(id);
  std::vector<size_t> remap;
  auto compacted = flat.Compact(&remap);
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  EXPECT_EQ(compacted.value()->size(), flat.live_size());
  EXPECT_EQ(compacted.value()->num_tombstones(), 0u);

  const std::string path = TempPath("compacted.idx");
  ASSERT_TRUE(compacted.value()->Save(path).ok());
  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->num_tombstones(), 0u);
  // Loaded compacted index answers exactly like the in-memory compacted
  // one, which in turn answers exactly like the tombstoned original modulo
  // the id remap (flat is exact, so distances are bit-identical).
  ExpectSearchParity(*compacted.value(), *loaded.value(), 16, 10, 9700);
  auto queries = RandomUnitVectors(16, 8, 9800);
  auto original_hits = flat.SearchBatch(queries, 10);
  auto compact_hits = loaded.value()->SearchBatch(queries, 10);
  ASSERT_EQ(original_hits.size(), compact_hits.size());
  for (size_t q = 0; q < original_hits.size(); ++q) {
    ASSERT_EQ(original_hits[q].size(), compact_hits[q].size());
    for (size_t i = 0; i < original_hits[q].size(); ++i) {
      EXPECT_EQ(remap[original_hits[q][i].id], compact_hits[q][i].id);
      EXPECT_EQ(original_hits[q][i].distance, compact_hits[q][i].distance);
    }
  }
}

TEST(IndexIoTest, AddAfterLoadKeepsServing) {
  // Incremental ingest: a loaded index accepts new vectors and returns
  // them from searches (norm caches and graphs stay consistent).
  for (const char* type : {"flat", "hnsw", "ivf", "lsh"}) {
    auto index = index::MakeVectorIndex(type, 8, la::Metric::kCosine);
    auto vectors = RandomUnitVectors(120, 8, 53);
    index->AddAll(vectors);
    const std::string path = TempPath(std::string("add_after_load_") + type);
    ASSERT_TRUE(index->Save(path).ok()) << type;
    auto loaded = LoadIndex(path);
    ASSERT_TRUE(loaded.ok()) << type << ": " << loaded.status().ToString();
    la::Vec probe = RandomUnitVectors(1, 8, 54)[0];
    loaded.value()->Add(probe);
    EXPECT_EQ(loaded.value()->size(), 121u) << type;
    // The probe itself must come back as the top hit (distance ~0); IVF
    // assigns it to the nearest existing centroid, LSH re-hashes it.
    auto hits = loaded.value()->Search(probe, 1);
    ASSERT_EQ(hits.size(), 1u) << type;
    EXPECT_EQ(hits[0].id, 120u) << type;
    EXPECT_NEAR(hits[0].distance, 0.0f, 1e-5f) << type;
  }
}

// --- the IVF train-before-save guarantee -----------------------------------

TEST(IndexIoTest, SaveOnUntrainedIvfTrainsFirst) {
  index::IvfConfig config;
  config.nlist = 8;
  config.nprobe = 8;
  IvfFlatIndex ivf(12, la::Metric::kCosine, config);
  ivf.AddAll(RandomUnitVectors(200, 12, 19));
  ASSERT_FALSE(ivf.trained());  // never searched: lazy build still pending

  const std::string path = TempPath("ivf_untrained");
  ASSERT_TRUE(ivf.Save(path).ok());
  EXPECT_TRUE(ivf.trained());  // Save finalized the lazy build

  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto* restored = dynamic_cast<IvfFlatIndex*>(loaded.value().get());
  ASSERT_NE(restored, nullptr);
  // The file must hold real centroids/lists: the loaded index is already
  // trained and serves without re-clustering.
  EXPECT_TRUE(restored->trained());
  EXPECT_EQ(restored->config().nlist, config.nlist);
  ExpectSearchParity(ivf, *restored, 16, 5, 9300);
}

// --- rejection of bad files ------------------------------------------------

TEST(IndexIoTest, MissingFileIsIoError) {
  auto loaded = LoadIndex(TempPath("does_not_exist.idx"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(IndexIoTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage.idx");
  WriteFileBytes(path, "this is definitely not a DUST index file");
  auto loaded = LoadIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(IndexIoTest, EmptyFileRejected) {
  const std::string path = TempPath("empty.idx");
  WriteFileBytes(path, "");
  EXPECT_FALSE(LoadIndex(path).ok());
}

class SavedFlatFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlatIndex flat(6, la::Metric::kCosine);
    flat.AddAll(RandomUnitVectors(50, 6, 23));
    path_ = TempPath("patched.idx");
    ASSERT_TRUE(flat.Save(path_).ok());
    bytes_ = ReadFileBytes(path_);
    // header (8 magic + 4 version + 2 tags + 8 dim) + tombstone section (8)
    ASSERT_GT(bytes_.size(), 38u);
  }
  std::string path_;
  std::string bytes_;
};

TEST_F(SavedFlatFileTest, VersionMismatchRejected) {
  std::string patched = bytes_;
  patched[8] = 99;  // format version (u32 little-endian after the magic)
  WriteFileBytes(path_, patched);
  auto loaded = LoadIndex(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST_F(SavedFlatFileTest, UnknownTypeTagRejectedNotAborted) {
  std::string patched = bytes_;
  patched[12] = static_cast<char>(0xFF);  // index type tag
  WriteFileBytes(path_, patched);
  auto loaded = LoadIndex(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(SavedFlatFileTest, UnknownMetricTagRejected) {
  std::string patched = bytes_;
  patched[13] = static_cast<char>(0x7F);  // metric tag
  WriteFileBytes(path_, patched);
  EXPECT_FALSE(LoadIndex(path_).ok());
}

TEST_F(SavedFlatFileTest, TruncatedFileRejected) {
  WriteFileBytes(path_, bytes_.substr(0, bytes_.size() / 2));
  auto loaded = LoadIndex(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(SavedFlatFileTest, OversizedTombstoneCountRejectedWithoutAllocation) {
  // Patch the v2 tombstone-list count (first u64 after the header) to a
  // huge value; the reader must reject it against the file size instead of
  // attempting the allocation.
  std::string patched = bytes_;
  for (size_t i = 0; i < 8; ++i) patched[22 + i] = static_cast<char>(0xFF);
  WriteFileBytes(path_, patched);
  auto loaded = LoadIndex(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(SavedFlatFileTest, OversizedCountRejectedWithoutHugeAllocation) {
  // Patch the vector-list count (first u64 of the flat payload, after the
  // 22-byte header + 8-byte empty tombstone section) to a huge value; same
  // bounds check, different field.
  std::string patched = bytes_;
  for (size_t i = 0; i < 8; ++i) patched[30 + i] = static_cast<char>(0xFF);
  WriteFileBytes(path_, patched);
  auto loaded = LoadIndex(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(IndexIoTest, ZeroDimensionHeaderRejected) {
  // dim 0 would disable every per-vector dimension check downstream and let
  // ragged vectors reach the distance kernels' DUST_CHECK at query time.
  const std::string path = TempPath("zero_dim.idx");
  IndexWriter writer(path);
  writer.WriteBytes(kIndexMagic, sizeof(kIndexMagic));
  writer.WriteU32(kIndexFormatVersion);
  writer.WriteU8(0);   // flat
  writer.WriteU8(0);   // cosine
  writer.WriteU64(0);  // dim = 0
  writer.WriteU64(0);  // no vectors
  ASSERT_TRUE(writer.Close().ok());
  auto loaded = LoadIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(IndexIoTest, HnswUnderReportedLayersRejectedNotSearched) {
  // A node claiming fewer layers than the descent needs would make Search
  // index past its adjacency vector; the loader must reject the file.
  const std::string path = TempPath("hnsw_layers.idx");
  IndexWriter writer(path);
  writer.WriteBytes(kIndexMagic, sizeof(kIndexMagic));
  writer.WriteU32(kIndexFormatVersion);
  writer.WriteU8(1);   // hnsw
  writer.WriteU8(0);   // cosine
  writer.WriteU64(2);  // dim
  writer.WriteIds({});  // v2 tombstone section
  writer.WriteU64(16);   // M
  writer.WriteU64(200);  // ef_construction
  writer.WriteU64(128);  // ef_search
  writer.WriteU64(42);   // seed
  writer.WriteU64(1);    // one vector
  writer.WriteVec({1.0f, 0.0f});
  writer.WriteU32(0);  // entry point
  writer.WriteI64(3);  // max level claims 4 layers...
  writer.WriteU32(1);  // ...but the entry node only has 1
  writer.WriteU32(0);  // with degree 0
  ASSERT_TRUE(writer.Close().ok());
  auto loaded = LoadIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(IndexIoTest, LshNonCosineFileRejected) {
  // An lsh file tagged with a non-cosine metric (hand-edited or produced by
  // a buggy writer) must fail loudly with InvalidArgument: the buckets only
  // mean anything under cosine, so loading it would silently serve
  // collapsed recall.
  index::LshConfig config;
  config.nbits = 8;
  LshIndex lsh(6, la::Metric::kCosine, config);
  lsh.AddAll(RandomUnitVectors(40, 6, 29));
  const std::string path = TempPath("lsh_metric.idx");
  ASSERT_TRUE(lsh.Save(path).ok());
  std::string patched = ReadFileBytes(path);
  patched[13] = 1;  // metric tag: cosine -> euclidean
  WriteFileBytes(path, patched);
  auto loaded = LoadIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(IndexIoTest, SaveToUnwritablePathIsIoError) {
  FlatIndex flat(4, la::Metric::kCosine);
  flat.Add({1, 0, 0, 0});
  Status status = flat.Save(TempPath("no_such_dir/sub/index.idx"));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

// --- writer/reader primitives ----------------------------------------------

TEST(IndexIoTest, WriterReaderPrimitivesRoundTrip) {
  const std::string path = TempPath("primitives.bin");
  IndexWriter writer(path);
  writer.WriteU8(7);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteU64(uint64_t{1} << 40);
  writer.WriteI64(-12345);
  writer.WriteFloat(2.5f);
  writer.WriteString("dust");
  writer.WriteVec({1.0f, -2.0f});
  writer.WriteIds({3, 1, 4});
  ASSERT_TRUE(writer.Close().ok());

  IndexReader reader(path);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  float f = 0.0f;
  std::string s;
  la::Vec v;
  std::vector<size_t> ids;
  ASSERT_TRUE(reader.ReadU8(&u8).ok());
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadI64(&i64).ok());
  ASSERT_TRUE(reader.ReadFloat(&f).ok());
  ASSERT_TRUE(reader.ReadString(&s).ok());
  ASSERT_TRUE(reader.ReadVec(&v, 2).ok());
  ASSERT_TRUE(reader.ReadIds(&ids).ok());
  EXPECT_EQ(u8, 7u);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, uint64_t{1} << 40);
  EXPECT_EQ(i64, -12345);
  EXPECT_EQ(f, 2.5f);
  EXPECT_EQ(s, "dust");
  EXPECT_EQ(v, (la::Vec{1.0f, -2.0f}));
  EXPECT_EQ(ids, (std::vector<size_t>{3, 1, 4}));
  EXPECT_EQ(reader.remaining(), 0u);
  // Reading past the end is an error, not UB.
  EXPECT_FALSE(reader.ReadU8(&u8).ok());
}

TEST(IndexIoTest, ReadVecRejectsDimensionMismatch) {
  const std::string path = TempPath("dim_mismatch.bin");
  IndexWriter writer(path);
  writer.WriteVec({1.0f, 2.0f, 3.0f});
  ASSERT_TRUE(writer.Close().ok());
  IndexReader reader(path);
  la::Vec v;
  EXPECT_FALSE(reader.ReadVec(&v, 2).ok());
}

TEST(IndexIoTest, TypeTagsAreStable) {
  // On-disk tags are a compatibility contract: a change here breaks every
  // previously-written file.
  uint8_t tag = 0;
  ASSERT_TRUE(IndexTypeTag("flat", &tag));
  EXPECT_EQ(tag, 0);
  ASSERT_TRUE(IndexTypeTag("hnsw", &tag));
  EXPECT_EQ(tag, 1);
  ASSERT_TRUE(IndexTypeTag("ivf", &tag));
  EXPECT_EQ(tag, 2);
  ASSERT_TRUE(IndexTypeTag("lsh", &tag));
  EXPECT_EQ(tag, 3);
  ASSERT_TRUE(IndexTypeTag("sharded", &tag));
  EXPECT_EQ(tag, 4);
  EXPECT_FALSE(IndexTypeTag("faiss", &tag));
  std::string type;
  EXPECT_TRUE(IndexTypeFromTag(2, &type).ok());
  EXPECT_EQ(type, "ivf");
  EXPECT_FALSE(IndexTypeFromTag(200, &type).ok());
}

}  // namespace
}  // namespace dust::io
