// Unit tests for src/util: Status/Result, Rng, string utilities, logging.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace dust {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "hello");
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(21);
  auto perm = rng.Permutation(50);
  std::set<size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(perm.size(), 50u);
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 49u);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 30u);
  EXPECT_EQ(unique.size(), 30u);
  for (size_t i : sample) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleFullRange) {
  Rng rng(29);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(SplitMix64Test, KnownFixedPointFree) {
  // Distinct inputs map to distinct outputs in a small probe.
  std::set<uint64_t> outputs;
  for (uint64_t x = 0; x < 1000; ++x) outputs.insert(SplitMix64(x));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(StringUtilTest, SplitBasic) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, SplitEmpty) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "|"), "x|y|z");
  EXPECT_EQ(Join({}, "|"), "");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLower("Park NAME 42"), "park name 42");
}

TEST(StringUtilTest, IsNumericAcceptsNumbers) {
  EXPECT_TRUE(IsNumeric("42"));
  EXPECT_TRUE(IsNumeric("-3.5"));
  EXPECT_TRUE(IsNumeric("1e6"));
  EXPECT_TRUE(IsNumeric("  7 "));
}

TEST(StringUtilTest, IsNumericRejectsText) {
  EXPECT_FALSE(IsNumeric("42a"));
  EXPECT_FALSE(IsNumeric("Park"));
  EXPECT_FALSE(IsNumeric(""));
  EXPECT_FALSE(IsNumeric("12,5"));
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("[CLS] Park", "[CLS]"));
  EXPECT_FALSE(StartsWith("Park", "[CLS]"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(LoggingTest, PrefixCarriesTimestampLevelThreadAndSite) {
  const std::string prefix =
      internal::FormatLogPrefix(LogLevel::kWarning, "src/serve/server.cc", 42);
  // [2026-08-08T12:34:56.789Z WARN tid=12345 server.cc:42]
  ASSERT_GE(prefix.size(), 20u);
  EXPECT_EQ(prefix.front(), '[');
  EXPECT_EQ(prefix[5], '-');
  EXPECT_EQ(prefix[8], '-');
  EXPECT_EQ(prefix[11], 'T');
  EXPECT_EQ(prefix[20], '.');
  EXPECT_EQ(prefix[24], 'Z');
  EXPECT_NE(prefix.find(" WARN "), std::string::npos);
  EXPECT_NE(prefix.find(" tid="), std::string::npos);
  // Only the basename of the file, not its directories.
  EXPECT_NE(prefix.find(" server.cc:42] "), std::string::npos);
  EXPECT_EQ(prefix.find("src/serve"), std::string::npos);
  // The thread id is stable within a thread.
  EXPECT_EQ(prefix.substr(prefix.find(" tid=")),
            internal::FormatLogPrefix(LogLevel::kWarning, "server.cc", 42)
                .substr(prefix.find(" tid=")));
}

TEST(LoggingTest, SetLogLevelRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
  EXPECT_EQ(GetLogLevel(), before);
}

TEST(LoggingTest, ConcurrentSetAndLogIsRaceFree) {
  // Exercised under TSan in CI: readers (DUST_LOG level checks) and writers
  // (SetLogLevel) race on the level; the atomic makes that benign.
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // suppress output; the race is the point
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      SetLogLevel(++i % 2 == 0 ? LogLevel::kError : LogLevel::kWarning);
    }
  });
  std::vector<std::thread> loggers;
  for (int t = 0; t < 4; ++t) {
    loggers.emplace_back([] {
      for (int i = 0; i < 200; ++i) {
        DUST_LOG(Debug) << "concurrent log traffic " << i;
      }
    });
  }
  for (std::thread& t : loggers) t.join();
  stop.store(true, std::memory_order_relaxed);
  flipper.join();
  SetLogLevel(before);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  volatile double keep = sink;
  (void)keep;
  EXPECT_GE(watch.Seconds(), 0.0);
  double first = watch.Millis();
  double second = watch.Millis();
  EXPECT_GE(second, first);  // monotonic
  double before = watch.Seconds();
  watch.Restart();
  EXPECT_LE(watch.Seconds(), before + 1.0);
}

}  // namespace
}  // namespace dust
