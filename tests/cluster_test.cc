// Unit + property tests for src/cluster: linkages, NN-chain agglomerative,
// constrained clustering, Silhouette, medoids, k-means.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/agglomerative.h"
#include "cluster/constrained.h"
#include "cluster/kmeans.h"
#include "cluster/medoid.h"
#include "cluster/silhouette.h"
#include "util/rng.h"

namespace dust::cluster {
namespace {

using la::DistanceMatrix;
using la::Metric;
using la::Vec;

// Two well-separated blobs of 2D points.
std::vector<Vec> TwoBlobs(size_t per_blob, uint64_t seed = 99) {
  dust::Rng rng(seed);
  std::vector<Vec> points;
  for (size_t i = 0; i < per_blob; ++i) {
    points.push_back({static_cast<float>(rng.NextGaussian()) * 0.2f,
                      static_cast<float>(rng.NextGaussian()) * 0.2f});
  }
  for (size_t i = 0; i < per_blob; ++i) {
    points.push_back({10.0f + static_cast<float>(rng.NextGaussian()) * 0.2f,
                      10.0f + static_cast<float>(rng.NextGaussian()) * 0.2f});
  }
  return points;
}

TEST(LinkageTest, NamesRoundTrip) {
  EXPECT_EQ(LinkageFromName("average"), Linkage::kAverage);
  EXPECT_EQ(LinkageFromName("Single"), Linkage::kSingle);
  EXPECT_STREQ(LinkageName(Linkage::kComplete), "complete");
}

TEST(LinkageTest, LanceWilliamsSingleComplete) {
  EXPECT_FLOAT_EQ(LanceWilliams(Linkage::kSingle, 2, 5, 1, 1, 1, 1), 2.0f);
  EXPECT_FLOAT_EQ(LanceWilliams(Linkage::kComplete, 2, 5, 1, 1, 1, 1), 5.0f);
}

TEST(LinkageTest, LanceWilliamsAverageWeightsBySize) {
  // Cluster a has 3 members, b has 1: average = (3*2 + 1*6)/4 = 3.
  EXPECT_FLOAT_EQ(LanceWilliams(Linkage::kAverage, 2, 6, 1, 3, 1, 2), 3.0f);
}

TEST(AgglomerativeTest, TwoBlobsSplitAtK2) {
  std::vector<Vec> points = TwoBlobs(10);
  Dendrogram d = AgglomerativeCluster(points, Metric::kEuclidean,
                                      Linkage::kAverage);
  EXPECT_EQ(d.num_leaves, 20u);
  EXPECT_EQ(d.merges.size(), 19u);
  std::vector<size_t> labels = CutDendrogram(d, 2);
  // All of blob 1 shares a label; all of blob 2 shares the other.
  for (size_t i = 1; i < 10; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (size_t i = 11; i < 20; ++i) EXPECT_EQ(labels[i], labels[10]);
  EXPECT_NE(labels[0], labels[10]);
}

TEST(AgglomerativeTest, MergeDistancesSortedAscending) {
  std::vector<Vec> points = TwoBlobs(8, 123);
  Dendrogram d =
      AgglomerativeCluster(points, Metric::kEuclidean, Linkage::kAverage);
  for (size_t i = 1; i < d.merges.size(); ++i) {
    EXPECT_GE(d.merges[i].distance, d.merges[i - 1].distance);
  }
}

TEST(AgglomerativeTest, MergeIdsReferenceOnlyEarlierClusters) {
  std::vector<Vec> points = TwoBlobs(6, 7);
  Dendrogram d =
      AgglomerativeCluster(points, Metric::kEuclidean, Linkage::kComplete);
  size_t n = d.num_leaves;
  for (size_t i = 0; i < d.merges.size(); ++i) {
    EXPECT_LT(d.merges[i].a, n + i);
    EXPECT_LT(d.merges[i].b, n + i);
    EXPECT_NE(d.merges[i].a, d.merges[i].b);
  }
  EXPECT_EQ(d.merges.back().size, n);
}

TEST(AgglomerativeTest, CutK1AndKn) {
  std::vector<Vec> points = TwoBlobs(5, 11);
  Dendrogram d =
      AgglomerativeCluster(points, Metric::kEuclidean, Linkage::kAverage);
  std::vector<size_t> one = CutDendrogram(d, 1);
  for (size_t label : one) EXPECT_EQ(label, 0u);
  std::vector<size_t> all = CutDendrogram(d, 10);
  std::set<size_t> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(AgglomerativeTest, SingletonAndEmptyInputs) {
  Dendrogram empty = AgglomerativeCluster(std::vector<Vec>{},
                                          Metric::kEuclidean, Linkage::kAverage);
  EXPECT_EQ(empty.num_leaves, 0u);
  Dendrogram one = AgglomerativeCluster(std::vector<Vec>{{1.0f, 2.0f}},
                                        Metric::kEuclidean, Linkage::kAverage);
  EXPECT_EQ(one.num_leaves, 1u);
  EXPECT_TRUE(one.merges.empty());
  EXPECT_EQ(CutDendrogram(one, 1), (std::vector<size_t>{0}));
}

// Property suite across linkages: cuts are valid partitions at every k.
class LinkagePropertyTest : public ::testing::TestWithParam<Linkage> {};

TEST_P(LinkagePropertyTest, CutsAreValidPartitionsAtEveryK) {
  std::vector<Vec> points = TwoBlobs(7, 5);
  Dendrogram d = AgglomerativeCluster(points, Metric::kEuclidean, GetParam());
  for (size_t k = 1; k <= points.size(); ++k) {
    std::vector<size_t> labels = CutDendrogram(d, k);
    ASSERT_EQ(labels.size(), points.size());
    std::set<size_t> unique(labels.begin(), labels.end());
    EXPECT_EQ(unique.size(), k);
    EXPECT_EQ(*unique.rbegin(), k - 1);  // dense labels
  }
}

TEST_P(LinkagePropertyTest, CutsAreNested) {
  // Coarser cuts only merge (never split) finer cuts.
  std::vector<Vec> points = TwoBlobs(6, 17);
  Dendrogram d = AgglomerativeCluster(points, Metric::kEuclidean, GetParam());
  for (size_t k = points.size(); k > 1; --k) {
    std::vector<size_t> fine = CutDendrogram(d, k);
    std::vector<size_t> coarse = CutDendrogram(d, k - 1);
    // Same fine label => same coarse label.
    for (size_t i = 0; i < points.size(); ++i) {
      for (size_t j = i + 1; j < points.size(); ++j) {
        if (fine[i] == fine[j]) {
          EXPECT_EQ(coarse[i], coarse[j]);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLinkages, LinkagePropertyTest,
                         ::testing::Values(Linkage::kSingle, Linkage::kComplete,
                                           Linkage::kAverage, Linkage::kWard));

TEST(ConstrainedTest, CannotLinkIsRespected) {
  // 4 points, two groups: {0,1} same group, {2,3} same group. Even though
  // 0 and 1 are closest, they must never merge.
  std::vector<Vec> points = {{0, 0}, {0.1f, 0}, {5, 5}, {5.1f, 5}};
  DistanceMatrix d(points, Metric::kEuclidean);
  std::vector<size_t> groups = {0, 0, 1, 1};
  ConstrainedDendrogram cd =
      ConstrainedAgglomerative(d, groups, Linkage::kAverage);
  for (const FlatClustering& level : cd.levels) {
    EXPECT_NE(level.labels[0], level.labels[1]);
    EXPECT_NE(level.labels[2], level.labels[3]);
  }
}

TEST(ConstrainedTest, UnconstrainedMergesFully) {
  std::vector<Vec> points = {{0, 0}, {1, 0}, {2, 0}};
  DistanceMatrix d(points, Metric::kEuclidean);
  std::vector<size_t> groups = {0, 1, 2};  // all distinct: no constraints
  ConstrainedDendrogram cd =
      ConstrainedAgglomerative(d, groups, Linkage::kAverage);
  EXPECT_EQ(cd.levels.front().num_clusters, 3u);
  EXPECT_EQ(cd.levels.back().num_clusters, 1u);
}

TEST(ConstrainedTest, StopsWhenOnlyViolatingMergesRemain) {
  std::vector<Vec> points = {{0, 0}, {0.1f, 0}};
  DistanceMatrix d(points, Metric::kEuclidean);
  std::vector<size_t> groups = {7, 7};
  ConstrainedDendrogram cd =
      ConstrainedAgglomerative(d, groups, Linkage::kAverage);
  EXPECT_EQ(cd.levels.back().num_clusters, 2u);
}

TEST(ConstrainedTest, ClosestAdmissiblePairMergesFirst) {
  // Points: a(0), b(0.2), c(10). a-b same group. First merge must join c
  // with one of a/b rather than a-b.
  std::vector<Vec> points = {{0, 0}, {0.2f, 0}, {10, 0}};
  DistanceMatrix d(points, Metric::kEuclidean);
  ConstrainedDendrogram cd =
      ConstrainedAgglomerative(d, {1, 1, 2}, Linkage::kAverage);
  ASSERT_GE(cd.levels.size(), 2u);
  const FlatClustering& after_first = cd.levels[1];
  EXPECT_EQ(after_first.num_clusters, 2u);
  EXPECT_NE(after_first.labels[0], after_first.labels[1]);
  EXPECT_EQ(after_first.labels[1], after_first.labels[2]);  // b merged with c
}

TEST(SilhouetteTest, PerfectSeparationNearOne) {
  std::vector<Vec> points = TwoBlobs(10, 3);
  DistanceMatrix d(points, Metric::kEuclidean);
  std::vector<size_t> labels(20, 0);
  for (size_t i = 10; i < 20; ++i) labels[i] = 1;
  EXPECT_GT(SilhouetteScore(d, labels), 0.9);
}

TEST(SilhouetteTest, BadSplitScoresLower) {
  std::vector<Vec> points = TwoBlobs(10, 3);
  DistanceMatrix d(points, Metric::kEuclidean);
  std::vector<size_t> good(20, 0);
  for (size_t i = 10; i < 20; ++i) good[i] = 1;
  // Bad: split across the blobs (even/odd).
  std::vector<size_t> bad(20);
  for (size_t i = 0; i < 20; ++i) bad[i] = i % 2;
  EXPECT_GT(SilhouetteScore(d, good), SilhouetteScore(d, bad));
}

TEST(SilhouetteTest, SingletonsContributeZero) {
  std::vector<Vec> points = {{0, 0}, {1, 1}, {2, 2}};
  DistanceMatrix d(points, Metric::kEuclidean);
  std::vector<size_t> labels = {0, 1, 2};  // all singletons
  EXPECT_DOUBLE_EQ(SilhouetteScore(d, labels), 0.0);
}

TEST(SilhouetteTest, ValuesWithinBounds) {
  std::vector<Vec> points = TwoBlobs(6, 31);
  DistanceMatrix d(points, Metric::kEuclidean);
  std::vector<size_t> labels(12);
  for (size_t i = 0; i < 12; ++i) labels[i] = i % 3;
  for (double s : SilhouetteSamples(d, labels)) {
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(MedoidTest, CenterOfLineIsMedoid) {
  std::vector<Vec> points = {{0, 0}, {1, 0}, {2, 0}, {10, 0}};
  DistanceMatrix d(points, Metric::kEuclidean);
  EXPECT_EQ(MedoidOf({0, 1, 2, 3}, d), 1u);  // closest to all others: x=1? sum
  // sums: 0:13, 1:1+1+9=11? -> compute: |1-0|+|2-0|+|10-0|=13; from 1: 1+1+9=11;
  // from 2: 2+1+8=11; tie -> lowest index 1.
}

TEST(MedoidTest, MedoidIsAMember) {
  dust::Rng rng(77);
  std::vector<Vec> points;
  for (int i = 0; i < 30; ++i) {
    points.push_back({static_cast<float>(rng.NextGaussian()),
                      static_cast<float>(rng.NextGaussian())});
  }
  std::vector<size_t> members = {3, 7, 11, 20, 25};
  size_t medoid = MedoidOfPoints(points, members, Metric::kEuclidean);
  EXPECT_NE(std::find(members.begin(), members.end(), medoid), members.end());
}

TEST(MedoidTest, ClusterMedoidsOnePerCluster) {
  std::vector<Vec> points = TwoBlobs(5, 53);
  std::vector<size_t> labels(10, 0);
  for (size_t i = 5; i < 10; ++i) labels[i] = 1;
  std::vector<size_t> medoids =
      ClusterMedoids(points, labels, Metric::kEuclidean);
  ASSERT_EQ(medoids.size(), 2u);
  EXPECT_LT(medoids[0], 5u);
  EXPECT_GE(medoids[1], 5u);
}

TEST(KmeansTest, TwoBlobsRecovered) {
  std::vector<Vec> points = TwoBlobs(15, 8);
  KmeansResult result = Kmeans(points, 2);
  // All of blob 1 assigned together, blob 2 together.
  for (size_t i = 1; i < 15; ++i) {
    EXPECT_EQ(result.assignments[i], result.assignments[0]);
  }
  for (size_t i = 16; i < 30; ++i) {
    EXPECT_EQ(result.assignments[i], result.assignments[15]);
  }
  EXPECT_NE(result.assignments[0], result.assignments[15]);
  EXPECT_LT(result.inertia, 10.0);
}

TEST(KmeansTest, KGreaterThanNClamps) {
  std::vector<Vec> points = {{0, 0}, {1, 1}};
  KmeansResult result = Kmeans(points, 10);
  EXPECT_EQ(result.centroids.size(), 2u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(KmeansTest, DeterministicWithSeed) {
  std::vector<Vec> points = TwoBlobs(10, 9);
  KmeansOptions options;
  options.seed = 123;
  KmeansResult a = Kmeans(points, 3, options);
  KmeansResult b = Kmeans(points, 3, options);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KmeansTest, AssignmentsMatchNearestCentroid) {
  std::vector<Vec> points = TwoBlobs(8, 10);
  KmeansResult result = Kmeans(points, 4);
  for (size_t i = 0; i < points.size(); ++i) {
    double own = la::SquaredEuclideanDistance(
        points[i], result.centroids[result.assignments[i]]);
    for (const Vec& c : result.centroids) {
      EXPECT_LE(own, la::SquaredEuclideanDistance(points[i], c) + 1e-5);
    }
  }
}

}  // namespace
}  // namespace dust::cluster
