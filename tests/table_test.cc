// Unit tests for src/table: values, tables, CSV, serialization, unions.
#include <gtest/gtest.h>

#include "table/csv.h"
#include "table/serialize.h"
#include "table/table.h"
#include "table/union.h"

namespace dust::table {
namespace {

Table ParkTable() {
  Table t("parks");
  t.AddColumn("Park Name");
  t.AddColumn("Supervisor");
  t.AddColumn("Country");
  EXPECT_TRUE(t.AddRow({Value("River Park"), Value("Vera Onate"), Value("USA")})
                  .ok());
  EXPECT_TRUE(
      t.AddRow({Value("Hyde Park"), Value("Jenny Rishi"), Value("UK")}).ok());
  return t;
}

TEST(ValueTest, NullSemantics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToDisplay(), "nan");
  EXPECT_FALSE(v.IsNumeric());
  EXPECT_EQ(v, Value::Null());
}

TEST(ValueTest, TextAndNumeric) {
  Value text("Park");
  Value num("42.5");
  EXPECT_FALSE(text.is_null());
  EXPECT_FALSE(text.IsNumeric());
  EXPECT_TRUE(num.IsNumeric());
  EXPECT_DOUBLE_EQ(num.AsNumber(), 42.5);
  EXPECT_EQ(text.ToDisplay(), "Park");
  EXPECT_NE(text, num);
  EXPECT_EQ(Value("a"), Value("a"));
}

TEST(ColumnTest, NumericFraction) {
  Column c;
  c.values = {Value("1"), Value("2.5"), Value("x"), Value::Null()};
  EXPECT_NEAR(c.NumericFraction(), 2.0 / 3.0, 1e-9);
  Column all_null;
  all_null.values = {Value::Null()};
  EXPECT_TRUE(all_null.AllNull());
  EXPECT_DOUBLE_EQ(all_null.NumericFraction(), 1.0);
}

TEST(TableTest, BasicShape) {
  Table t = ParkTable();
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.ColumnIndex("Supervisor"), 1);
  EXPECT_EQ(t.ColumnIndex("Missing"), -1);
  EXPECT_EQ(t.at(1, 2).text(), "UK");
}

TEST(TableTest, RowMaterialization) {
  Table t = ParkTable();
  auto row = t.Row(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0].text(), "River Park");
}

TEST(TableTest, AddRowArityMismatchFails) {
  Table t = ParkTable();
  EXPECT_FALSE(t.AddRow({Value("x")}).ok());
}

TEST(TableTest, AddColumnPadsWithNulls) {
  Table t = ParkTable();
  t.AddColumn("Phone");
  EXPECT_EQ(t.num_columns(), 4u);
  EXPECT_TRUE(t.at(0, 3).is_null());
}

TEST(TableTest, AddColumnSizeMismatchFails) {
  Table t = ParkTable();
  EXPECT_FALSE(t.AddColumn("Bad", {Value("only one")}).ok());
}

TEST(TableTest, DropAllNullColumns) {
  Table t("x");
  ASSERT_TRUE(t.AddColumn("a", {Value("1"), Value("2")}).ok());
  ASSERT_TRUE(t.AddColumn("b", {Value::Null(), Value::Null()}).ok());
  t.DropAllNullColumns();
  EXPECT_EQ(t.num_columns(), 1u);
  EXPECT_EQ(t.column(0).name, "a");
}

TEST(TableTest, SelectRowsAndProjectColumns) {
  Table t = ParkTable();
  Table sel = t.SelectRows({1});
  EXPECT_EQ(sel.num_rows(), 1u);
  EXPECT_EQ(sel.at(0, 0).text(), "Hyde Park");
  Table proj = t.ProjectColumns({2, 0});
  EXPECT_EQ(proj.column(0).name, "Country");
  EXPECT_EQ(proj.column(1).name, "Park Name");
  EXPECT_EQ(proj.at(0, 0).text(), "USA");
}

TEST(CsvTest, ParseBasic) {
  auto r = ParseCsv("a,b\n1,2\n3,4\n", "t");
  ASSERT_TRUE(r.ok());
  const Table& t = r.value();
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(1, 1).text(), "4");
}

TEST(CsvTest, EmptyFieldsBecomeNulls) {
  auto r = ParseCsv("a,b\n1,\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().at(0, 1).is_null());
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  auto r = ParseCsv("name,city\n\"Brandon, MN\",\"say \"\"hi\"\"\"\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().at(0, 0).text(), "Brandon, MN");
  EXPECT_EQ(r.value().at(0, 1).text(), "say \"hi\"");
}

TEST(CsvTest, QuotedNewlines) {
  auto r = ParseCsv("a\n\"line1\nline2\"\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().at(0, 0).text(), "line1\nline2");
}

TEST(CsvTest, CrLfHandled) {
  auto r = ParseCsv("a,b\r\n1,2\r\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 1u);
}

TEST(CsvTest, ArityMismatchRejected) {
  auto r = ParseCsv("a,b\n1\n", "t");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, RoundTrip) {
  Table t = ParkTable();
  t.AddColumn("Notes");  // null column
  auto r = ParseCsv(ToCsv(t), "parks");
  ASSERT_TRUE(r.ok());
  const Table& back = r.value();
  ASSERT_EQ(back.num_rows(), t.num_rows());
  ASSERT_EQ(back.num_columns(), t.num_columns());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    for (size_t j = 0; j < t.num_columns(); ++j) {
      EXPECT_EQ(back.at(i, j), t.at(i, j));
    }
  }
}

TEST(CsvTest, RoundTripWithSpecialChars) {
  Table t("x");
  ASSERT_TRUE(t.AddColumn("c", {Value("a,b"), Value("q\"q"), Value("n\nn")}).ok());
  auto r = ParseCsv(ToCsv(t), "x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().at(0, 0).text(), "a,b");
  EXPECT_EQ(r.value().at(1, 0).text(), "q\"q");
  EXPECT_EQ(r.value().at(2, 0).text(), "n\nn");
}

TEST(SerializeTest, PaperExample4Format) {
  // Sec. 4, Example 4: [CLS] Park Name River Park [SEP] Supervisor Vera
  // Onate [SEP] City Fresno [SEP] Country USA [SEP]
  std::vector<std::string> headers = {"Park Name", "Supervisor", "City",
                                      "Country"};
  std::vector<Value> values = {Value("River Park"), Value("Vera Onate"),
                               Value("Fresno"), Value("USA")};
  EXPECT_EQ(SerializeTuple(headers, values),
            "[CLS] Park Name River Park [SEP] Supervisor Vera Onate [SEP] "
            "City Fresno [SEP] Country USA [SEP]");
}

TEST(SerializeTest, NullCellsSkipped) {
  std::vector<std::string> headers = {"A", "B", "C"};
  std::vector<Value> values = {Value("x"), Value::Null(), Value("z")};
  EXPECT_EQ(SerializeTuple(headers, values),
            "[CLS] A x [SEP] C z [SEP]");
}

TEST(SerializeTest, AllNullProducesEmptyMarkerPair) {
  std::vector<std::string> headers = {"A"};
  std::vector<Value> values = {Value::Null()};
  EXPECT_EQ(SerializeTuple(headers, values), "[CLS] [SEP]");
}

TEST(SerializeTest, TableRowUsesTableHeaders) {
  Table t = ParkTable();
  EXPECT_EQ(SerializeTableRow(t, 1),
            "[CLS] Park Name Hyde Park [SEP] Supervisor Jenny Rishi [SEP] "
            "Country UK [SEP]");
}

TEST(SerializeTest, AlignedSerializationRenamesAndSkipsUnaligned) {
  // A lake table whose "Supervised by" aligns to "Supervisor" and which has
  // no "City" column: the aligned serialization uses query headers and
  // skips the missing column entirely (null).
  Table lake("d");
  ASSERT_TRUE(lake.AddColumn("Name of Park", {Value("Chippewa Park")}).ok());
  ASSERT_TRUE(lake.AddColumn("Supervised by", {Value("Tim Erickson")}).ok());
  std::vector<int> subset = {0, 1, -1};
  std::vector<std::string> renamed = {"Park Name", "Supervisor", "City"};
  EXPECT_EQ(SerializeTableRowAligned(lake, 0, subset, renamed),
            "[CLS] Park Name Chippewa Park [SEP] Supervisor Tim Erickson "
            "[SEP]");
}

TEST(UnionTest, OuterUnionPadsWithNulls) {
  Table a("a");
  ASSERT_TRUE(a.AddColumn("x", {Value("1")}).ok());
  ASSERT_TRUE(a.AddColumn("y", {Value("2")}).ok());
  Table b("b");
  ASSERT_TRUE(b.AddColumn("xx", {Value("3"), Value("4")}).ok());

  std::vector<const Table*> sources = {&a, &b};
  std::vector<ColumnMapping> mappings = {{0, 1}, {0, -1}};
  std::vector<TupleRef> provenance;
  auto r = OuterUnion(sources, mappings, {"X", "Y"}, &provenance);
  ASSERT_TRUE(r.ok());
  const Table& u = r.value();
  EXPECT_EQ(u.num_rows(), 3u);
  EXPECT_EQ(u.at(0, 0).text(), "1");
  EXPECT_EQ(u.at(1, 0).text(), "3");
  EXPECT_TRUE(u.at(1, 1).is_null());
  ASSERT_EQ(provenance.size(), 3u);
  EXPECT_EQ(provenance[0], (TupleRef{0, 0}));
  EXPECT_EQ(provenance[2], (TupleRef{1, 1}));
}

TEST(UnionTest, OuterUnionValidatesMappingArity) {
  Table a("a");
  ASSERT_TRUE(a.AddColumn("x", {Value("1")}).ok());
  std::vector<const Table*> sources = {&a};
  std::vector<ColumnMapping> bad = {{0}};
  EXPECT_FALSE(OuterUnion(sources, bad, {"X", "Y"}, nullptr).ok());
  std::vector<ColumnMapping> out_of_range = {{5, -1}};
  EXPECT_FALSE(OuterUnion(sources, out_of_range, {"X", "Y"}, nullptr).ok());
}

TEST(UnionTest, BagUnionKeepsDuplicates) {
  Table a = ParkTable();
  Table b = ParkTable();
  auto r = BagUnion({&a, &b}, "both");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 4u);
}

TEST(UnionTest, SetUnionDropsDuplicates) {
  Table a = ParkTable();
  Table b = ParkTable();
  auto r = SetUnion({&a, &b}, "both");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 2u);
}

TEST(UnionTest, SchemaMismatchRejected) {
  Table a = ParkTable();
  Table b("other");
  ASSERT_TRUE(b.AddColumn("z", {Value("1")}).ok());
  EXPECT_FALSE(BagUnion({&a, &b}, "x").ok());
}

TEST(UnionTest, DeduplicateDistinguishesNullFromText) {
  Table t("x");
  ASSERT_TRUE(t.AddColumn("a", {Value("nan"), Value::Null()}).ok());
  Table d = DeduplicateRows(t);
  EXPECT_EQ(d.num_rows(), 2u);  // "nan" text != null
}

TEST(UnionTest, RowKeySeparatesColumns) {
  // ("ab","c") must differ from ("a","bc").
  Table t1("x");
  ASSERT_TRUE(t1.AddColumn("a", {Value("ab")}).ok());
  ASSERT_TRUE(t1.AddColumn("b", {Value("c")}).ok());
  Table t2("y");
  ASSERT_TRUE(t2.AddColumn("a", {Value("a")}).ok());
  ASSERT_TRUE(t2.AddColumn("b", {Value("bc")}).ok());
  EXPECT_NE(RowKey(t1, 0), RowKey(t2, 0));
}

}  // namespace
}  // namespace dust::table
