// Unit tests for src/llm: the simulated LLM baseline's behavioural
// contracts (token limits, novelty-then-redundancy, schema fidelity).
#include <gtest/gtest.h>

#include <set>

#include "datagen/imdb_generator.h"
#include "llm/simulated_llm.h"
#include "table/union.h"

namespace dust::llm {
namespace {

using table::Table;
using table::Value;

Table SmallQuery() {
  Table t("q");
  EXPECT_TRUE(t.AddColumn("Myth", {Value("Chimera"), Value("Siren"),
                                   Value("Basilisk"), Value("Minotaur")})
                  .ok());
  EXPECT_TRUE(t.AddColumn("Origin", {Value("Greek"), Value("Greek"),
                                     Value("Roman"), Value("Greek")})
                  .ok());
  return t;
}

TEST(LlmTest, GeneratesRequestedSchema) {
  SimulatedLlm llm;
  auto result = llm.GenerateDiverseTuples(SmallQuery(), 10);
  ASSERT_TRUE(result.ok());
  const Table& out = result.value();
  EXPECT_EQ(out.ColumnNames(), SmallQuery().ColumnNames());
  EXPECT_LE(out.num_rows(), 10u);
  EXPECT_GE(out.num_rows(), 3u);
}

TEST(LlmTest, RefusesOversizedQuery) {
  LlmConfig config;
  config.max_input_tokens = 5;  // tiny budget
  SimulatedLlm llm(config);
  auto result = llm.GenerateDiverseTuples(SmallQuery(), 5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LlmTest, OutputTokenBudgetCapsK) {
  LlmConfig config;
  config.max_output_tokens = 30;  // only a few tuples fit
  SimulatedLlm llm(config);
  auto result = llm.GenerateDiverseTuples(SmallQuery(), 100);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().num_rows(), 100u);
}

TEST(LlmTest, EmptyQueryRejected) {
  SimulatedLlm llm;
  Table empty("e");
  EXPECT_FALSE(llm.GenerateDiverseTuples(empty, 5).ok());
}

TEST(LlmTest, Deterministic) {
  SimulatedLlm llm;
  auto a = llm.GenerateDiverseTuples(SmallQuery(), 8);
  auto b = llm.GenerateDiverseTuples(SmallQuery(), 8);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().num_rows(), b.value().num_rows());
  for (size_t r = 0; r < a.value().num_rows(); ++r) {
    EXPECT_EQ(table::RowKey(a.value(), r), table::RowKey(b.value(), r));
  }
}

TEST(LlmTest, RedundancySetsInForLargeK) {
  // The paper observes the LLM "generates a few diverse tuples but
  // subsequently produces redundant ones": the fraction of distinct rows
  // must drop well below 1 for large k.
  datagen::ImdbConfig imdb;
  imdb.base_movies = 80;
  imdb.query_rows = 20;
  imdb.num_lake_tables = 1;
  datagen::Benchmark b = datagen::GenerateImdb(imdb);
  LlmConfig config;
  config.max_input_tokens = 1 << 20;
  config.max_output_tokens = 1 << 20;
  SimulatedLlm llm(config);
  auto result = llm.GenerateDiverseTuples(b.queries[0].data, 60);
  ASSERT_TRUE(result.ok());
  const Table& out = result.value();
  ASSERT_EQ(out.num_rows(), 60u);
  std::set<std::string> distinct;
  for (size_t r = 0; r < out.num_rows(); ++r) {
    distinct.insert(table::RowKey(out, r));
  }
  EXPECT_LT(distinct.size(), 55u);  // redundancy appeared
  EXPECT_GE(distinct.size(), 10u);  // but the first tuples were novel
}

TEST(LlmTest, CountTableTokensGrowsWithRows) {
  Table q = SmallQuery();
  size_t small = SimulatedLlm::CountTableTokens(q);
  ASSERT_TRUE(
      q.AddRow({Value("Cyclops"), Value("Greek")}).ok());
  EXPECT_GT(SimulatedLlm::CountTableTokens(q), small);
}

}  // namespace
}  // namespace dust::llm
