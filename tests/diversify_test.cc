// Unit + property tests for src/diversify: metrics (Eq. 1-2), Example 5
// re-ranking, Algorithm 2 components, and every diversification algorithm.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <set>

#include "diversify/clt.h"
#include "diversify/dust_diversifier.h"
#include "diversify/gmc.h"
#include "diversify/gne.h"
#include "diversify/maxmin.h"
#include "diversify/metrics.h"
#include "diversify/random_div.h"
#include "diversify/swap.h"
#include "util/rng.h"

namespace dust::diversify {
namespace {

using la::Metric;
using la::Vec;

std::vector<Vec> RandomPoints(size_t n, size_t dim, uint64_t seed) {
  dust::Rng rng(seed);
  std::vector<Vec> out;
  for (size_t i = 0; i < n; ++i) {
    Vec v(dim);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    la::NormalizeInPlace(&v);
    out.push_back(v);
  }
  return out;
}

TEST(MetricsTest, AverageDiversityEquation1) {
  // Query {e0}, selected {e1, e2} under Euclidean distance.
  std::vector<Vec> query = {{1, 0, 0}};
  std::vector<Vec> selected = {{0, 1, 0}, {0, 0, 1}};
  // q-t distances: sqrt2, sqrt2; t-t: sqrt2. sum = 3*sqrt2; denom n+k = 3.
  double expected = 3.0 * std::sqrt(2.0) / 3.0;
  EXPECT_NEAR(AverageDiversity(query, selected, Metric::kEuclidean), expected,
              1e-5);
}

TEST(MetricsTest, MinDiversityEquation2) {
  std::vector<Vec> query = {{0, 0}};
  std::vector<Vec> selected = {{1, 0}, {3, 0}};
  // distances: q-t1=1, q-t2=3, t1-t2=2 -> min 1.
  EXPECT_NEAR(MinDiversity(query, selected, Metric::kEuclidean), 1.0, 1e-6);
}

TEST(MetricsTest, QueryQueryDistancesExcluded) {
  // Two far-apart query tuples, one selected tuple on top of the first:
  // only q-t and t-t pairs count.
  std::vector<Vec> query = {{0, 0}, {100, 0}};
  std::vector<Vec> selected = {{0, 0}};
  EXPECT_NEAR(MinDiversity(query, selected, Metric::kEuclidean), 0.0, 1e-6);
  // avg = (0 + 100) / (2 + 1).
  EXPECT_NEAR(AverageDiversity(query, selected, Metric::kEuclidean),
              100.0 / 3.0, 1e-4);
}

TEST(MetricsTest, EmptySelectionScoresZero) {
  std::vector<Vec> query = {{1, 0}};
  DiversityScores s = ScoreDiversity(query, {}, Metric::kCosine);
  EXPECT_DOUBLE_EQ(s.average, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
}

TEST(MetricsTest, DuplicateSelectionDropsMinToZero) {
  std::vector<Vec> selected = {{1, 0}, {1, 0}};
  EXPECT_NEAR(MinDiversity({}, selected, Metric::kCosine), 0.0, 1e-6);
}

TEST(RankingTest, PaperExample5Order) {
  // Fig. 4: distances between q1..q3 and t1..t6; expected rank
  // t2, t4, t3, t1, t5, t6.
  // Build 1-D "distance gadget" is impossible; instead verify the ranking
  // function on explicit distances via a custom metric embedding:
  // we emulate by overriding with points whose cosine distances equal the
  // table -- simpler: directly test RankCandidatesAgainstQuery using
  // Euclidean points on a line per query is not exact either. Instead we
  // validate the rule itself: sort by (min desc, mean desc).
  struct Row {
    float d1, d2, d3;
  };
  std::vector<Row> rows = {
      {0.3f, 0.1f, 0.9f},   // t1: min .1, avg .433
      {0.5f, 0.4f, 0.6f},   // t2: min .4, avg .5
      {0.75f, 0.5f, 0.1f},  // t3: min .1, avg .45
      {0.4f, 0.55f, 0.5f},  // t4: min .4, avg .483
      {0.9f, 0.75f, 0.01f}, // t5: min .01
      {0.0f, 0.99f, 0.2f},  // t6: min 0
  };
  // Expected order by the paper: t2 t4 t3 t1 t5 t6 (1-indexed).
  std::vector<size_t> expected = {1, 3, 2, 0, 4, 5};

  // Emulate with a metric-space trick: place each candidate and query in a
  // high-dimensional space is overkill; instead we verify the comparator
  // through a tiny reimplementation mirror and cross-check with the real
  // RankCandidatesAgainstQuery on constructed embeddings.
  // Construction: queries are axis vectors scaled; candidate i encodes its
  // three distances exactly using a diagonal embedding with Manhattan-like
  // structure. Use per-axis points and Euclidean: q_j = 10*e_j; candidate
  // t encodes distance d_j by the point with coordinate (10 - d_j) on axis
  // j... distances then are sqrt of sums, not the raw d_j. So instead, we
  // directly test the rule via sort:
  std::vector<size_t> order(rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    float min_a = std::min({rows[a].d1, rows[a].d2, rows[a].d3});
    float min_b = std::min({rows[b].d1, rows[b].d2, rows[b].d3});
    if (min_a != min_b) return min_a > min_b;
    float avg_a = (rows[a].d1 + rows[a].d2 + rows[a].d3) / 3.0f;
    float avg_b = (rows[b].d1 + rows[b].d2 + rows[b].d3) / 3.0f;
    return avg_a > avg_b;
  });
  EXPECT_EQ(order, expected);
}

TEST(RankingTest, RankCandidatesMinThenMean) {
  // Query at origin; candidates on a line. Candidate with larger min
  // distance wins; ties broken by mean distance (second query point).
  std::vector<Vec> query = {{0, 0}, {10, 0}};
  std::vector<Vec> lake = {
      {1, 0},   // min 1 (to q0), mean (1+9)/2 = 5
      {9, 0},   // min 1 (to q1), mean (9+1)/2 = 5  -> tie with t0, index order
      {5, 0},   // min 5, mean 5 -> best
      {-2, 0},  // min 2, mean (2+12)/2 = 7
  };
  DiversifyInput input;
  input.query = &query;
  input.lake = &lake;
  input.metric = Metric::kEuclidean;
  std::vector<size_t> ranked =
      RankCandidatesAgainstQuery(input, {0, 1, 2, 3});
  EXPECT_EQ(ranked[0], 2u);
  EXPECT_EQ(ranked[1], 3u);
  EXPECT_EQ(ranked[2], 0u);  // tie with 1, lower index first
  EXPECT_EQ(ranked[3], 1u);
}

TEST(DustPruningTest, KeepsOutliersPerTable) {
  // Table 0: tight cluster + one outlier. Pruning to 2 must keep the
  // outlier.
  std::vector<Vec> lake = {{0, 0}, {0.1f, 0}, {0, 0.1f}, {10, 10}};
  std::vector<size_t> table_of = {0, 0, 0, 0};
  DiversifyInput input;
  input.lake = &lake;
  input.metric = Metric::kEuclidean;
  input.table_of = &table_of;
  DustDiversifier dust;
  std::vector<size_t> kept = dust.PruneTuples(input, 2);
  EXPECT_EQ(kept.size(), 2u);
  EXPECT_TRUE(std::find(kept.begin(), kept.end(), 3u) != kept.end());
}

TEST(DustPruningTest, NoPruningWhenUnderBudget) {
  std::vector<Vec> lake = RandomPoints(5, 4, 1);
  DiversifyInput input;
  input.lake = &lake;
  DustDiversifier dust;
  EXPECT_EQ(dust.PruneTuples(input, 10).size(), 5u);
}

TEST(DustPruningTest, PerTableMeansNotGlobal) {
  // Two tables far apart; within each, points are tight. With per-table
  // means, no point looks like an outlier; a global mean would rank the
  // farthest table's points highest. Check scores come from table means:
  // prune to 2 should keep one relative outlier from each table rather
  // than both points of one table.
  std::vector<Vec> lake = {{0, 0}, {0.5f, 0}, {100, 0}, {100.5f, 0}};
  std::vector<size_t> table_of = {0, 0, 1, 1};
  DiversifyInput input;
  input.lake = &lake;
  input.metric = Metric::kEuclidean;
  input.table_of = &table_of;
  DustDiversifier dust;
  std::vector<size_t> kept = dust.PruneTuples(input, 2);
  // All four points are 0.25 from their table mean -> stable tie-break by
  // index keeps {0, 1}; the important property is it did not crash on
  // groups and scores are per-table. Check determinism:
  EXPECT_EQ(kept, dust.PruneTuples(input, 2));
}

TEST(DustDiversifierTest, SelectsQueryDistantCandidates) {
  // Lake: a copy of the query tuple, plus two far novel tuples. k=2 must
  // avoid the copy.
  std::vector<Vec> query = {{1, 0, 0}};
  std::vector<Vec> lake = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  DiversifyInput input;
  input.query = &query;
  input.lake = &lake;
  input.metric = Metric::kCosine;
  DustDiversifier dust;
  std::vector<size_t> selected = dust.SelectDiverse(input, 2);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_TRUE(std::find(selected.begin(), selected.end(), 0u) ==
              selected.end());
}

TEST(DustDiversifierTest, CandidateCountIsKTimesP) {
  std::vector<Vec> query = RandomPoints(1, 8, 2);
  std::vector<Vec> lake = RandomPoints(50, 8, 3);
  DiversifyInput input;
  input.query = &query;
  input.lake = &lake;
  DustDiversifierConfig config;
  config.p = 3;
  DustDiversifier dust(config);
  std::vector<size_t> selected = dust.SelectDiverse(input, 5);
  EXPECT_EQ(selected.size(), 5u);
}

TEST(GmcTest, PrefersSpreadOverClumps) {
  // Lake: 3 clumped near query + 3 spread out; GMC with lambda favoring
  // diversity should cover the spread.
  std::vector<Vec> query = {{1, 0, 0, 0}};
  std::vector<Vec> lake = {
      {1, 0.01f, 0, 0}, {1, 0, 0.01f, 0}, {1, 0.01f, 0.01f, 0},
      {0, 1, 0, 0},     {0, 0, 1, 0},     {0, 0, 0, 1}};
  GmcConfig config;
  config.lambda = 1.0;  // pure diversity (no relevance pull toward query)
  GmcDiversifier gmc(config);
  DiversifyInput input;
  input.query = &query;
  input.lake = &lake;
  std::vector<size_t> selected = gmc.SelectDiverse(input, 3);
  std::set<size_t> set(selected.begin(), selected.end());
  size_t spread = set.count(3) + set.count(4) + set.count(5);
  EXPECT_GE(spread, 2u);
}

TEST(GmcTest, LambdaTradesRelevanceForDiversity) {
  // With lambda=0 GMC is pure relevance: it must pick the tuples closest
  // to the query (the clump), the exact failure mode motivating DUST.
  std::vector<Vec> query = {{1, 0, 0, 0}};
  std::vector<Vec> lake = {
      {1, 0.01f, 0, 0}, {1, 0, 0.01f, 0}, {1, 0.01f, 0.01f, 0},
      {0, 1, 0, 0},     {0, 0, 1, 0},     {0, 0, 0, 1}};
  GmcConfig config;
  config.lambda = 0.0;
  GmcDiversifier gmc(config);
  DiversifyInput input;
  input.query = &query;
  input.lake = &lake;
  std::vector<size_t> selected = gmc.SelectDiverse(input, 3);
  std::set<size_t> set(selected.begin(), selected.end());
  EXPECT_TRUE(set.count(0) && set.count(1) && set.count(2));
}

TEST(GmcTest, CacheAndNoCacheAgree) {
  std::vector<Vec> query = RandomPoints(3, 6, 4);
  std::vector<Vec> lake = RandomPoints(30, 6, 5);
  DiversifyInput input;
  input.query = &query;
  input.lake = &lake;
  GmcConfig with_cache;
  with_cache.cache_distances = true;
  GmcConfig without_cache;
  without_cache.cache_distances = false;
  EXPECT_EQ(GmcDiversifier(with_cache).SelectDiverse(input, 8),
            GmcDiversifier(without_cache).SelectDiverse(input, 8));
}

TEST(GneTest, PureDiversityBeatsRandomOnAverage) {
  std::vector<Vec> query = RandomPoints(2, 6, 6);
  std::vector<Vec> lake = RandomPoints(40, 6, 7);
  DiversifyInput input;
  input.query = &query;
  input.lake = &lake;
  GneConfig gne_config;
  gne_config.lambda = 1.0;  // pure diversity objective
  GneDiversifier gne(gne_config);
  RandomDiversifier random(1);
  auto to_points = [&](const std::vector<size_t>& idx) {
    std::vector<Vec> pts;
    for (size_t i : idx) pts.push_back(lake[i]);
    return pts;
  };
  double gne_avg = AverageDiversity(query, to_points(gne.SelectDiverse(input, 8)),
                                    input.metric);
  double rnd_avg = AverageDiversity(
      query, to_points(random.SelectDiverse(input, 8)), input.metric);
  EXPECT_GE(gne_avg, rnd_avg * 0.9);
}

TEST(CltTest, PicksOnePerCluster) {
  // Three tight clusters; k=3 must pick one point from each.
  std::vector<Vec> lake = {{0, 0},  {0.1f, 0}, {5, 5},
                           {5.1f, 5}, {10, 0},  {10.1f, 0}};
  CltDiversifier clt;
  DiversifyInput input;
  input.lake = &lake;
  input.metric = Metric::kEuclidean;
  std::vector<size_t> selected = clt.SelectDiverse(input, 3);
  ASSERT_EQ(selected.size(), 3u);
  std::set<size_t> groups;
  for (size_t i : selected) groups.insert(i / 2);
  EXPECT_EQ(groups.size(), 3u);
}

TEST(CltTest, QueryAgnostic) {
  std::vector<Vec> lake = RandomPoints(20, 4, 8);
  std::vector<Vec> query_a = RandomPoints(3, 4, 9);
  std::vector<Vec> query_b = RandomPoints(3, 4, 10);
  CltDiversifier clt;
  DiversifyInput in_a;
  in_a.query = &query_a;
  in_a.lake = &lake;
  DiversifyInput in_b;
  in_b.query = &query_b;
  in_b.lake = &lake;
  EXPECT_EQ(clt.SelectDiverse(in_a, 5), clt.SelectDiverse(in_b, 5));
}

TEST(MaxMinTest, OptimizesMinDiversity) {
  std::vector<Vec> query = RandomPoints(2, 8, 11);
  std::vector<Vec> lake = RandomPoints(60, 8, 12);
  DiversifyInput input;
  input.query = &query;
  input.lake = &lake;
  MaxMinGreedyDiversifier maxmin;
  RandomDiversifier random(7);
  auto to_points = [&](const std::vector<size_t>& idx) {
    std::vector<Vec> pts;
    for (size_t i : idx) pts.push_back(lake[i]);
    return pts;
  };
  double mm = MinDiversity(query, to_points(maxmin.SelectDiverse(input, 6)),
                           input.metric);
  double rnd = MinDiversity(query, to_points(random.SelectDiverse(input, 6)),
                            input.metric);
  EXPECT_GE(mm, rnd);
}

TEST(RandomTest, SeedReproducible) {
  std::vector<Vec> lake = RandomPoints(20, 4, 13);
  DiversifyInput input;
  input.lake = &lake;
  RandomDiversifier a(42);
  RandomDiversifier b(42);
  EXPECT_EQ(a.SelectDiverse(input, 5), b.SelectDiverse(input, 5));
  // Subsequent draws differ (seed advances).
  EXPECT_NE(a.SelectDiverse(input, 5), b.SelectDiverse(input, 5).empty()
                ? std::vector<size_t>{}
                : std::vector<size_t>{999});
}

// Property suite over every diversifier: structural contracts.
using DiversifierFactory = std::function<std::unique_ptr<Diversifier>()>;

class DiversifierPropertyTest
    : public ::testing::TestWithParam<std::pair<const char*, DiversifierFactory>> {};

TEST_P(DiversifierPropertyTest, ReturnsKDistinctValidIndices) {
  auto diversifier = GetParam().second();
  std::vector<Vec> query = RandomPoints(4, 6, 20);
  std::vector<Vec> lake = RandomPoints(50, 6, 21);
  DiversifyInput input;
  input.query = &query;
  input.lake = &lake;
  for (size_t k : {1u, 5u, 13u}) {
    std::vector<size_t> selected = diversifier->SelectDiverse(input, k);
    EXPECT_EQ(selected.size(), k) << diversifier->name();
    std::set<size_t> unique(selected.begin(), selected.end());
    EXPECT_EQ(unique.size(), k) << diversifier->name();
    for (size_t i : selected) EXPECT_LT(i, lake.size());
  }
}

TEST_P(DiversifierPropertyTest, KLargerThanLakeClamps) {
  auto diversifier = GetParam().second();
  std::vector<Vec> query = RandomPoints(2, 4, 22);
  std::vector<Vec> lake = RandomPoints(6, 4, 23);
  DiversifyInput input;
  input.query = &query;
  input.lake = &lake;
  std::vector<size_t> selected = diversifier->SelectDiverse(input, 100);
  EXPECT_EQ(selected.size(), 6u) << diversifier->name();
}

TEST_P(DiversifierPropertyTest, EmptyLakeReturnsEmpty) {
  auto diversifier = GetParam().second();
  std::vector<Vec> query = RandomPoints(2, 4, 24);
  std::vector<Vec> lake;
  DiversifyInput input;
  input.query = &query;
  input.lake = &lake;
  EXPECT_TRUE(diversifier->SelectDiverse(input, 5).empty());
}

TEST_P(DiversifierPropertyTest, NoQueryStillWorks) {
  auto diversifier = GetParam().second();
  std::vector<Vec> lake = RandomPoints(30, 6, 25);
  DiversifyInput input;
  input.lake = &lake;
  std::vector<size_t> selected = diversifier->SelectDiverse(input, 7);
  EXPECT_EQ(selected.size(), 7u) << diversifier->name();
}

TEST_P(DiversifierPropertyTest, BeatsWorstCaseOnAverageDiversity) {
  // Every non-random method should beat picking k duplicates of the same
  // point (a degenerate floor): with distinct random points any valid
  // selection does, so this catches gross index bugs (repeated picks).
  auto diversifier = GetParam().second();
  std::vector<Vec> query = RandomPoints(3, 8, 26);
  std::vector<Vec> lake = RandomPoints(40, 8, 27);
  DiversifyInput input;
  input.query = &query;
  input.lake = &lake;
  std::vector<size_t> selected = diversifier->SelectDiverse(input, 10);
  std::vector<Vec> points;
  for (size_t i : selected) points.push_back(lake[i]);
  EXPECT_GT(MinDiversity(query, points, input.metric), 0.0)
      << diversifier->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllDiversifiers, DiversifierPropertyTest,
    ::testing::Values(
        std::make_pair("gmc", DiversifierFactory([] {
          return std::unique_ptr<Diversifier>(new GmcDiversifier());
        })),
        std::make_pair("gne", DiversifierFactory([] {
          GneConfig config;
          config.max_iterations = 2;
          return std::unique_ptr<Diversifier>(new GneDiversifier(config));
        })),
        std::make_pair("clt", DiversifierFactory([] {
          return std::unique_ptr<Diversifier>(new CltDiversifier());
        })),
        std::make_pair("swap", DiversifierFactory([] {
          return std::unique_ptr<Diversifier>(new SwapDiversifier());
        })),
        std::make_pair("maxmin", DiversifierFactory([] {
          return std::unique_ptr<Diversifier>(new MaxMinGreedyDiversifier());
        })),
        std::make_pair("random", DiversifierFactory([] {
          return std::unique_ptr<Diversifier>(new RandomDiversifier(5));
        })),
        std::make_pair("dust", DiversifierFactory([] {
          return std::unique_ptr<Diversifier>(new DustDiversifier());
        }))),
    [](const ::testing::TestParamInfo<
        std::pair<const char*, DiversifierFactory>>& info) {
      return info.param.first;
    });

}  // namespace
}  // namespace dust::diversify
