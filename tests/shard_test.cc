// Tests for src/shard: scatter-gather correctness (sharded-vs-unsharded
// parity for exact backends on both metrics), placement policies, uneven
// and empty shards, k > lake size, spec parsing, and the factory/validation
// wiring through index::MakeVectorIndex.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "index/flat_index.h"
#include "shard/sharded_index.h"
#include "util/rng.h"

namespace dust::shard {
namespace {

using index::IndexOptions;
using index::SearchHit;
using index::VectorIndex;

std::vector<la::Vec> RandomUnitVectors(size_t n, size_t dim, uint64_t seed) {
  dust::Rng rng(seed);
  std::vector<la::Vec> out;
  for (size_t i = 0; i < n; ++i) {
    la::Vec v(dim);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    la::NormalizeInPlace(&v);
    out.push_back(v);
  }
  return out;
}

ShardedIndexConfig MakeConfig(const std::string& child_type, size_t shards,
                              PlacementPolicy placement) {
  ShardedIndexConfig config;
  config.child_type = child_type;
  config.num_shards = shards;
  config.placement = placement;
  return config;
}

/// Asserts SearchBatch parity between two indexes over the same lake: same
/// ids and bit-identical float distances, per the exact-backend contract.
void ExpectBitIdenticalBatches(const VectorIndex& expected_index,
                               const VectorIndex& actual_index,
                               size_t num_queries, size_t k, uint64_t seed) {
  auto queries = RandomUnitVectors(num_queries, expected_index.dim(), seed);
  auto expected = expected_index.SearchBatch(queries, k);
  auto actual = actual_index.SearchBatch(queries, k);
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t q = 0; q < expected.size(); ++q) {
    ASSERT_EQ(expected[q].size(), actual[q].size()) << "query " << q;
    for (size_t i = 0; i < expected[q].size(); ++i) {
      EXPECT_EQ(expected[q][i].id, actual[q][i].id)
          << "query " << q << " rank " << i;
      // Exact float equality on purpose: per-vector distances are computed
      // by the same kernel on the same bytes, so sharding must not perturb
      // them at all.
      EXPECT_EQ(expected[q][i].distance, actual[q][i].distance)
          << "query " << q << " rank " << i;
    }
  }
}

// --- exact-backend parity (the acceptance criterion) ------------------------

struct ParityCase {
  la::Metric metric;
  PlacementPolicy placement;
};

class ShardedFlatParityTest : public ::testing::TestWithParam<ParityCase> {};

TEST_P(ShardedFlatParityTest, BitIdenticalToUnshardedFlat) {
  const ParityCase& param = GetParam();
  const size_t kDim = 16;
  auto vectors = RandomUnitVectors(500, kDim, 81);

  index::FlatIndex flat(kDim, param.metric);
  flat.AddAll(vectors);

  ShardedIndexConfig config;
  config.child_type = "flat";
  config.num_shards = 4;
  config.placement = param.placement;
  ShardedIndex sharded(kDim, param.metric, config);
  sharded.AddAll(vectors);

  ASSERT_EQ(sharded.size(), flat.size());
  ExpectBitIdenticalBatches(flat, sharded, 32, 10, 9500);
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndPlacements, ShardedFlatParityTest,
    ::testing::Values(
        ParityCase{la::Metric::kCosine, PlacementPolicy::kRoundRobin},
        ParityCase{la::Metric::kEuclidean, PlacementPolicy::kRoundRobin},
        ParityCase{la::Metric::kManhattan, PlacementPolicy::kRoundRobin},
        ParityCase{la::Metric::kCosine, PlacementPolicy::kHash},
        ParityCase{la::Metric::kEuclidean, PlacementPolicy::kHash}),
    [](const ::testing::TestParamInfo<ParityCase>& info) {
      return std::string(la::MetricName(info.param.metric)) + "_" +
             PlacementPolicyName(info.param.placement);
    });

TEST(ShardedIndexTest, FullProbeIvfParityOnBothMetrics) {
  // A full-probe IVF scans every list, so it is exact and must agree with
  // the sharded full-probe IVF bit for bit — per-shard k-means centroids
  // differ from the global ones, but with every list probed the candidate
  // set is the whole shard either way.
  const size_t kDim = 12;
  auto vectors = RandomUnitVectors(300, kDim, 83);
  IndexOptions full_probe;
  full_probe.ivf_nlist = 4;
  full_probe.ivf_nprobe = 4;
  for (la::Metric metric : {la::Metric::kCosine, la::Metric::kEuclidean}) {
    auto unsharded = index::MakeVectorIndex("ivf", kDim, metric, full_probe);
    unsharded->AddAll(vectors);

    ShardedIndexConfig config;
    config.child_type = "ivf";
    config.num_shards = 3;
    config.child_options = full_probe;
    ShardedIndex sharded(kDim, metric, config);
    sharded.AddAll(vectors);

    ExpectBitIdenticalBatches(*unsharded, sharded, 16, 8, 9600);
  }
}

TEST(ShardedIndexTest, SingleQuerySearchMatchesBatch) {
  const size_t kDim = 10;
  ShardedIndex sharded(kDim, la::Metric::kCosine,
                       MakeConfig("flat", 4, PlacementPolicy::kRoundRobin));
  sharded.AddAll(RandomUnitVectors(200, kDim, 85));
  auto queries = RandomUnitVectors(8, kDim, 9700);
  auto batched = sharded.SearchBatch(queries, 6);
  for (size_t q = 0; q < queries.size(); ++q) {
    auto single = sharded.Search(queries[q], 6);
    ASSERT_EQ(single.size(), batched[q].size()) << "query " << q;
    for (size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(single[i].id, batched[q][i].id) << "query " << q;
      EXPECT_EQ(single[i].distance, batched[q][i].distance) << "query " << q;
    }
  }
}

// --- placement and shape ----------------------------------------------------

TEST(ShardedIndexTest, RoundRobinPlacementIsBalanced) {
  ShardedIndex sharded(8, la::Metric::kCosine,
                       MakeConfig("flat", 4, PlacementPolicy::kRoundRobin));
  sharded.AddAll(RandomUnitVectors(10, 8, 87));
  // 10 vectors over 4 shards round-robin: sizes 3,3,2,2 in shard order.
  EXPECT_EQ(sharded.shard_size(0), 3u);
  EXPECT_EQ(sharded.shard_size(1), 3u);
  EXPECT_EQ(sharded.shard_size(2), 2u);
  EXPECT_EQ(sharded.shard_size(3), 2u);
  // Global ids are the append order: shard s holds ids congruent to s.
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    for (size_t local = 0; local < sharded.shard_size(s); ++local) {
      EXPECT_EQ(sharded.global_id(s, local) % sharded.num_shards(), s);
    }
  }
}

TEST(ShardedIndexTest, HashPlacementIsContentAddressed) {
  // The same vector set in a different insertion order must land on the
  // same shards (content addressing), and sizes are typically uneven.
  auto vectors = RandomUnitVectors(64, 8, 89);
  ShardedIndexConfig config = MakeConfig("flat", 4, PlacementPolicy::kHash);
  ShardedIndex forward(8, la::Metric::kCosine, config);
  forward.AddAll(vectors);
  ShardedIndex backward(8, la::Metric::kCosine, config);
  std::vector<la::Vec> reversed(vectors.rbegin(), vectors.rend());
  backward.AddAll(reversed);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(forward.shard_size(s), backward.shard_size(s)) << "shard " << s;
  }
  // Uneven shard sizes must still search correctly (parity with flat).
  index::FlatIndex flat(8, la::Metric::kCosine);
  flat.AddAll(vectors);
  ExpectBitIdenticalBatches(flat, forward, 16, 5, 9800);
}

TEST(ShardedIndexTest, EmptyShardsAreHarmless) {
  // More shards than vectors: some shards stay empty and contribute no
  // hits; results still match the unsharded index.
  const size_t kDim = 6;
  auto vectors = RandomUnitVectors(3, kDim, 91);
  ShardedIndex sharded(kDim, la::Metric::kCosine,
                       MakeConfig("flat", 8, PlacementPolicy::kRoundRobin));
  sharded.AddAll(vectors);
  EXPECT_EQ(sharded.size(), 3u);
  EXPECT_EQ(sharded.shard_size(5), 0u);
  index::FlatIndex flat(kDim, la::Metric::kCosine);
  flat.AddAll(vectors);
  ExpectBitIdenticalBatches(flat, sharded, 8, 2, 9900);
}

TEST(ShardedIndexTest, KLargerThanLakeReturnsEverything) {
  const size_t kDim = 6;
  auto vectors = RandomUnitVectors(10, kDim, 93);
  ShardedIndex sharded(kDim, la::Metric::kCosine,
                       MakeConfig("flat", 4, PlacementPolicy::kRoundRobin));
  sharded.AddAll(vectors);
  auto hits = sharded.Search(RandomUnitVectors(1, kDim, 94)[0], 50);
  ASSERT_EQ(hits.size(), 10u);
  std::set<size_t> ids;
  for (const SearchHit& h : hits) ids.insert(h.id);
  EXPECT_EQ(ids.size(), 10u);  // every global id exactly once
  EXPECT_EQ(*ids.rbegin(), 9u);
}

TEST(ShardedIndexTest, EmptyIndexAndEmptyBatch) {
  ShardedIndex sharded(8, la::Metric::kCosine);
  EXPECT_EQ(sharded.size(), 0u);
  EXPECT_TRUE(sharded.Search(la::Vec(8, 0.5f), 3).empty());
  EXPECT_TRUE(sharded.SearchBatch({}, 3).empty());
}

TEST(ShardedIndexTest, AddAllMatchesPerVectorAdd) {
  const size_t kDim = 8;
  auto vectors = RandomUnitVectors(37, kDim, 95);
  for (PlacementPolicy placement :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kHash}) {
    ShardedIndexConfig config = MakeConfig("flat", 3, placement);
    ShardedIndex bulk(kDim, la::Metric::kCosine, config);
    bulk.AddAll(vectors);
    ShardedIndex loop(kDim, la::Metric::kCosine, config);
    for (const la::Vec& v : vectors) loop.Add(v);
    ASSERT_EQ(bulk.size(), loop.size());
    for (size_t s = 0; s < 3; ++s) {
      ASSERT_EQ(bulk.shard_size(s), loop.shard_size(s)) << "shard " << s;
      for (size_t local = 0; local < bulk.shard_size(s); ++local) {
        EXPECT_EQ(bulk.global_id(s, local), loop.global_id(s, local));
      }
    }
    ExpectBitIdenticalBatches(loop, bulk, 8, 5, 9950);
  }
}

// --- removals route through the global->(shard, local) map ------------------

TEST(ShardedIndexTest, RemoveRoutesToOwningShard) {
  const size_t kDim = 8;
  auto vectors = RandomUnitVectors(30, kDim, 97);
  for (PlacementPolicy placement :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kHash}) {
    ShardedIndex sharded(kDim, la::Metric::kCosine,
                         MakeConfig("flat", 3, placement));
    sharded.AddAll(vectors);
    EXPECT_TRUE(sharded.Remove(7));
    EXPECT_FALSE(sharded.Remove(7)) << "second removal of the same id";
    EXPECT_FALSE(sharded.Remove(30)) << "id past the end of the lake";
    EXPECT_EQ(sharded.size(), 30u);
    EXPECT_EQ(sharded.live_size(), 29u);
    EXPECT_TRUE(sharded.IsDead(7));
    // Exactly one child shard carries the tombstone, and the global view
    // agrees with the sum over children.
    size_t child_tombstones = 0;
    for (size_t s = 0; s < 3; ++s) {
      child_tombstones += sharded.shard(s).num_tombstones();
    }
    EXPECT_EQ(child_tombstones, 1u);
    auto hits = sharded.Search(vectors[7], 30);
    ASSERT_EQ(hits.size(), 29u);
    for (const SearchHit& h : hits) EXPECT_NE(h.id, 7u);
  }
}

TEST(ShardedIndexTest, AddAfterRemoveKeepsRoutingCorrect) {
  // Appends grow the global->(shard, local) map; removals issued after an
  // append must still land on the owning shard, and parity with a flat
  // index over the same survivors must hold.
  const size_t kDim = 8;
  auto vectors = RandomUnitVectors(20, kDim, 99);
  auto extra = RandomUnitVectors(5, kDim, 101);
  ShardedIndex sharded(kDim, la::Metric::kCosine,
                       MakeConfig("flat", 3, PlacementPolicy::kRoundRobin));
  sharded.AddAll(vectors);
  ASSERT_EQ(sharded.RemoveAll({2, 11}), 2u);
  for (const la::Vec& v : extra) sharded.Add(v);
  EXPECT_TRUE(sharded.Remove(22));  // one of the appended vectors
  EXPECT_EQ(sharded.size(), 25u);
  EXPECT_EQ(sharded.live_size(), 22u);

  index::FlatIndex survivors(kDim, la::Metric::kCosine);
  std::vector<size_t> survivor_ids;
  for (size_t i = 0; i < 25; ++i) {
    if (i == 2 || i == 11 || i == 22) continue;
    survivors.Add(i < 20 ? vectors[i] : extra[i - 20]);
    survivor_ids.push_back(i);
  }
  auto queries = RandomUnitVectors(12, kDim, 103);
  auto expected = survivors.SearchBatch(queries, 8);
  auto actual = sharded.SearchBatch(queries, 8);
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t q = 0; q < expected.size(); ++q) {
    ASSERT_EQ(expected[q].size(), actual[q].size()) << "query " << q;
    for (size_t i = 0; i < expected[q].size(); ++i) {
      EXPECT_EQ(survivor_ids[expected[q][i].id], actual[q][i].id)
          << "query " << q << " rank " << i;
      EXPECT_EQ(expected[q][i].distance, actual[q][i].distance)
          << "query " << q << " rank " << i;
    }
  }
}

TEST(ShardedIndexTest, CompactRebuildsWithoutTombstones) {
  const size_t kDim = 8;
  auto vectors = RandomUnitVectors(24, kDim, 105);
  ShardedIndex sharded(kDim, la::Metric::kCosine,
                       MakeConfig("flat", 3, PlacementPolicy::kRoundRobin));
  sharded.AddAll(vectors);
  ASSERT_EQ(sharded.RemoveAll({0, 5, 23}), 3u);
  auto before = sharded.Search(vectors[1], 21);

  std::vector<size_t> remap;
  auto compacted_or = sharded.Compact(&remap);
  ASSERT_TRUE(compacted_or.ok()) << compacted_or.status().message();
  auto compacted = std::move(compacted_or).value();
  EXPECT_EQ(compacted->size(), 21u);
  EXPECT_EQ(compacted->num_tombstones(), 0u);
  ASSERT_EQ(remap.size(), 24u);
  EXPECT_EQ(remap[0], VectorIndex::kInvalidId);
  EXPECT_EQ(remap[5], VectorIndex::kInvalidId);
  EXPECT_EQ(remap[23], VectorIndex::kInvalidId);

  auto after = compacted->Search(vectors[1], 21);
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(remap[before[i].id], after[i].id) << "rank " << i;
    EXPECT_EQ(before[i].distance, after[i].distance) << "rank " << i;
  }
}

TEST(ShardedIndexTest, NameReflectsShape) {
  ShardedIndex sharded(8, la::Metric::kCosine,
                       MakeConfig("flat", 4, PlacementPolicy::kRoundRobin));
  EXPECT_EQ(sharded.name(), "Sharded[4xFlat]");
  EXPECT_EQ(sharded.type_tag(), "sharded");
}

// --- spec parsing and factory wiring ----------------------------------------

TEST(ShardedSpecTest, ParsesWellFormedSpecs) {
  ShardedIndexConfig config;
  ASSERT_TRUE(ParseShardedSpec("sharded", &config));
  EXPECT_EQ(config.child_type, "flat");
  EXPECT_EQ(config.num_shards, 4u);
  EXPECT_EQ(config.placement, PlacementPolicy::kRoundRobin);

  ASSERT_TRUE(ParseShardedSpec("sharded:hnsw", &config));
  EXPECT_EQ(config.child_type, "hnsw");
  EXPECT_EQ(config.num_shards, 4u);

  ASSERT_TRUE(ParseShardedSpec("sharded:ivf:8", &config));
  EXPECT_EQ(config.child_type, "ivf");
  EXPECT_EQ(config.num_shards, 8u);

  ASSERT_TRUE(ParseShardedSpec("sharded:flat:2:hash", &config));
  EXPECT_EQ(config.child_type, "flat");
  EXPECT_EQ(config.num_shards, 2u);
  EXPECT_EQ(config.placement, PlacementPolicy::kHash);
}

TEST(ShardedSpecTest, RejectsMalformedSpecs) {
  ShardedIndexConfig config;
  EXPECT_FALSE(ParseShardedSpec("flat", &config));
  EXPECT_FALSE(ParseShardedSpec("sharded:bogus:4", &config));
  EXPECT_FALSE(ParseShardedSpec("sharded:sharded:2", &config));
  EXPECT_FALSE(ParseShardedSpec("sharded:flat:0", &config));
  // Counts past the 2^16 cap are typos, and must fail validation here
  // rather than pass IsKnownIndexType and abort in the constructor.
  EXPECT_FALSE(ParseShardedSpec("sharded:flat:70000", &config));
  EXPECT_FALSE(ParseShardedSpec("sharded:flat:x", &config));
  EXPECT_FALSE(ParseShardedSpec("sharded:flat:-2", &config));
  EXPECT_FALSE(ParseShardedSpec("sharded:flat:4:bogus", &config));
  EXPECT_FALSE(ParseShardedSpec("sharded:flat:4:hash:extra", &config));
}

TEST(ShardedSpecTest, FactoryAcceptsShardedSpecs) {
  EXPECT_TRUE(index::IsKnownIndexType("sharded"));
  EXPECT_TRUE(index::IsKnownIndexType("sharded:hnsw:8"));
  EXPECT_TRUE(index::IsKnownIndexType("sharded:flat:2:hash"));
  EXPECT_FALSE(index::IsKnownIndexType("sharded:faiss:2"));
  EXPECT_FALSE(index::IsKnownIndexType("sharded:flat:0"));
  EXPECT_FALSE(index::IsKnownIndexType("sharded:flat:70000"));

  auto built = index::MakeVectorIndex("sharded:hnsw:3", 12,
                                      la::Metric::kCosine);
  auto* sharded = dynamic_cast<ShardedIndex*>(built.get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->num_shards(), 3u);
  EXPECT_EQ(sharded->config().child_type, "hnsw");
}

TEST(ShardedSpecTest, MetricValidationDelegatesToChild) {
  // The shard layer itself is metric-agnostic; the child's pairing rules
  // apply (lsh is cosine-only).
  EXPECT_TRUE(
      index::ValidateIndexMetric("sharded:lsh:4", la::Metric::kCosine).ok());
  Status status =
      index::ValidateIndexMetric("sharded:lsh:4", la::Metric::kEuclidean);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  Status malformed =
      index::ValidateIndexMetric("sharded:flat:0", la::Metric::kCosine);
  ASSERT_FALSE(malformed.ok());
  EXPECT_EQ(malformed.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(
      index::ValidateIndexMetric("sharded:flat:4", la::Metric::kManhattan)
          .ok());
}

TEST(ShardedSpecTest, ChildOptionsReachTheShards) {
  IndexOptions options;
  options.hnsw_m = 8;
  options.hnsw_ef_search = 33;
  auto built =
      index::MakeVectorIndex("sharded:hnsw:2", 12, la::Metric::kCosine,
                             options);
  auto* sharded = dynamic_cast<ShardedIndex*>(built.get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->config().child_options.hnsw_m, 8u);
  // The shards themselves were built with the tuned config.
  EXPECT_EQ(sharded->shard(0).name(), "HNSW");
}

TEST(PlacementPolicyTest, NamesAndTagsRoundTrip) {
  for (PlacementPolicy policy :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kHash}) {
    PlacementPolicy parsed = PlacementPolicy::kRoundRobin;
    ASSERT_TRUE(PlacementPolicyFromName(PlacementPolicyName(policy), &parsed));
    EXPECT_EQ(parsed, policy);
    ASSERT_TRUE(
        PlacementPolicyFromTag(static_cast<uint8_t>(policy), &parsed).ok());
    EXPECT_EQ(parsed, policy);
  }
  PlacementPolicy parsed = PlacementPolicy::kRoundRobin;
  EXPECT_FALSE(PlacementPolicyFromName("roundrobin", &parsed));
  EXPECT_FALSE(PlacementPolicyFromTag(9, &parsed).ok());
}

}  // namespace
}  // namespace dust::shard
