// Cross-implementation consistency checks: independent implementations of
// the same mathematical object must agree.
//  - NN-chain agglomerative vs. constrained agglomerative with no
//    constraints (same linkage, same partitions at every level);
//  - greedy algorithms vs. brute force on tiny instances (GMC's objective,
//    Hungarian matching, Max-Min greedy's 2-approximation bound);
//  - MinHash vs. exact Jaccard convergence in the number of hashes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "align/hungarian.h"
#include "cluster/agglomerative.h"
#include "cluster/constrained.h"
#include "diversify/maxmin.h"
#include "diversify/metrics.h"
#include "search/minhash.h"
#include "util/rng.h"

namespace dust {
namespace {

using la::Metric;
using la::Vec;

std::vector<Vec> RandomPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> out;
  for (size_t i = 0; i < n; ++i) {
    Vec v(dim);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    out.push_back(v);
  }
  return out;
}

// Canonical form of a partition: sorted list of sorted member groups.
std::vector<std::vector<size_t>> Canonical(const std::vector<size_t>& labels) {
  size_t k = 0;
  for (size_t l : labels) k = std::max(k, l + 1);
  std::vector<std::vector<size_t>> groups(k);
  for (size_t i = 0; i < labels.size(); ++i) groups[labels[i]].push_back(i);
  for (auto& g : groups) std::sort(g.begin(), g.end());
  std::sort(groups.begin(), groups.end());
  return groups;
}

class LinkageCrossCheck : public ::testing::TestWithParam<cluster::Linkage> {};

TEST_P(LinkageCrossCheck, NnChainMatchesNaiveUnconstrained) {
  cluster::Linkage linkage = GetParam();
  // Several random instances; distinct groups disable constraints so the
  // naive constrained implementation is plain agglomerative clustering.
  for (uint64_t seed : {11u, 22u, 33u}) {
    std::vector<Vec> points = RandomPoints(14, 3, seed);
    la::DistanceMatrix distances(points, Metric::kEuclidean);
    std::vector<size_t> groups(points.size());
    for (size_t i = 0; i < groups.size(); ++i) groups[i] = i;

    cluster::Dendrogram fast =
        cluster::AgglomerativeCluster(distances, linkage);
    cluster::ConstrainedDendrogram naive =
        cluster::ConstrainedAgglomerative(distances, groups, linkage);

    // Compare partitions at every k. naive.levels[j] has n-j clusters.
    for (size_t k = 1; k <= points.size(); ++k) {
      std::vector<size_t> fast_labels = cluster::CutDendrogram(fast, k);
      const cluster::FlatClustering& naive_level =
          naive.levels[points.size() - k];
      ASSERT_EQ(naive_level.num_clusters, k);
      EXPECT_EQ(Canonical(fast_labels), Canonical(naive_level.labels))
          << "linkage " << cluster::LinkageName(linkage) << " seed " << seed
          << " k " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLinkages, LinkageCrossCheck,
                         ::testing::Values(cluster::Linkage::kSingle,
                                           cluster::Linkage::kComplete,
                                           cluster::Linkage::kAverage));

TEST(HungarianCrossCheck, MatchesBruteForceOnSmallMatrices) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 4;
    std::vector<double> weights(n * n);
    for (double& w : weights) w = rng.NextDouble();
    align::MatchingResult result =
        align::MaxWeightBipartiteMatching(weights, n, n);

    // Brute force over all 4! permutations.
    std::vector<size_t> perm = {0, 1, 2, 3};
    double best = -1.0;
    do {
      double total = 0.0;
      for (size_t i = 0; i < n; ++i) total += weights[i * n + perm[i]];
      best = std::max(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));

    EXPECT_NEAR(result.total_weight, best, 1e-9) << "trial " << trial;
  }
}

TEST(MaxMinCrossCheck, GreedyWithinTwoOfOptimalMinDiversity) {
  // Gonzalez greedy is a 2-approximation of Max-Min dispersion; verify on
  // brute-forceable instances (n=10, k=3, no query).
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vec> lake = RandomPoints(10, 2, 100 + trial);
    diversify::DiversifyInput input;
    input.lake = &lake;
    input.metric = Metric::kEuclidean;
    diversify::MaxMinGreedyDiversifier greedy;
    std::vector<size_t> selection = greedy.SelectDiverse(input, 3);
    std::vector<Vec> greedy_points;
    for (size_t i : selection) greedy_points.push_back(lake[i]);
    double greedy_min =
        diversify::MinDiversity({}, greedy_points, Metric::kEuclidean);

    double optimal = 0.0;
    for (size_t a = 0; a < 10; ++a) {
      for (size_t b = a + 1; b < 10; ++b) {
        for (size_t c = b + 1; c < 10; ++c) {
          double m = diversify::MinDiversity(
              {}, {lake[a], lake[b], lake[c]}, Metric::kEuclidean);
          optimal = std::max(optimal, m);
        }
      }
    }
    EXPECT_GE(greedy_min * 2.0 + 1e-6, optimal) << "trial " << trial;
  }
}

TEST(MinHashCrossCheck, EstimateConvergesWithMoreHashes) {
  std::vector<std::string> a, b;
  for (int i = 0; i < 200; ++i) a.push_back("x" + std::to_string(i));
  for (int i = 100; i < 300; ++i) b.push_back("x" + std::to_string(i));
  double exact = search::ExactJaccard(a, b);
  double err_small = std::fabs(
      search::MinHashSketch(a, 32).EstimateJaccard(
          search::MinHashSketch(b, 32)) - exact);
  double err_large = std::fabs(
      search::MinHashSketch(a, 512).EstimateJaccard(
          search::MinHashSketch(b, 512)) - exact);
  EXPECT_LT(err_large, 0.08);
  EXPECT_LE(err_large, err_small + 0.05);  // no significant degradation
}

TEST(MetricsCrossCheck, ScoreDiversityMatchesSeparateFunctions) {
  std::vector<Vec> query = RandomPoints(4, 5, 9);
  std::vector<Vec> selected = RandomPoints(6, 5, 10);
  diversify::DiversityScores scores =
      diversify::ScoreDiversity(query, selected, Metric::kCosine);
  EXPECT_DOUBLE_EQ(scores.average,
                   diversify::AverageDiversity(query, selected, Metric::kCosine));
  EXPECT_DOUBLE_EQ(scores.min,
                   diversify::MinDiversity(query, selected, Metric::kCosine));
}

}  // namespace
}  // namespace dust
