// Unit tests for src/nn: layers (with numerical gradient checks), loss,
// optimizers, the DustModel, and the training loop.
#include <gtest/gtest.h>

#include <cmath>

#include "la/distance.h"
#include "nn/dust_model.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"

namespace dust::nn {
namespace {

TEST(LinearTest, ForwardShapeAndBias) {
  Linear lin(3, 2, 42);
  lin.bias() = {1.0f, -1.0f};
  la::Vec y = lin.Forward({0, 0, 0});
  EXPECT_EQ(y, (la::Vec{1.0f, -1.0f}));
}

TEST(LinearTest, SparseForwardMatchesDense) {
  Linear lin(8, 4, 7);
  text::SparseVector sv;
  sv.indices = {1, 5};
  sv.values = {2.0f, -1.5f};
  la::Vec dense(8, 0.0f);
  dense[1] = 2.0f;
  dense[5] = -1.5f;
  la::Vec a = lin.Forward(dense);
  la::Vec b = lin.ForwardSparse(sv);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(a[i], b[i], 1e-5);
}

TEST(LinearTest, NumericalGradientCheck) {
  // L = sum(y); analytic dL/dW vs finite differences.
  Linear lin(4, 3, 11);
  la::Vec x = {0.5f, -1.0f, 2.0f, 0.3f};
  la::Vec dy(3, 1.0f);  // dL/dy = 1
  lin.ZeroGrad();
  la::Vec dx = lin.Backward(x, dy);

  const float eps = 1e-3f;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      float original = lin.weights().at(r, c);
      lin.weights().at(r, c) = original + eps;
      la::Vec y_plus = lin.Forward(x);
      lin.weights().at(r, c) = original - eps;
      la::Vec y_minus = lin.Forward(x);
      lin.weights().at(r, c) = original;
      float numeric = 0.0f;
      for (size_t i = 0; i < 3; ++i) numeric += (y_plus[i] - y_minus[i]);
      numeric /= (2 * eps);
      EXPECT_NEAR(lin.weight_grad().at(r, c), numeric, 1e-2);
    }
  }
  // dL/dx = W^T dy.
  la::Vec expected_dx = lin.weights().TransposeMatVec(dy);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(dx[i], expected_dx[i], 1e-5);
}

TEST(LinearTest, SparseBackwardMatchesDense) {
  Linear a(6, 2, 5);
  Linear b(6, 2, 5);  // identical init
  la::Vec dense(6, 0.0f);
  dense[2] = 1.5f;
  text::SparseVector sv;
  sv.indices = {2};
  sv.values = {1.5f};
  la::Vec dy = {0.3f, -0.7f};
  a.ZeroGrad();
  b.ZeroGrad();
  a.Backward(dense, dy);
  b.BackwardSparse(sv, dy);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 6; ++c) {
      EXPECT_NEAR(a.weight_grad().at(r, c), b.weight_grad().at(r, c), 1e-6);
    }
    EXPECT_NEAR(a.bias_grad()[r], b.bias_grad()[r], 1e-6);
  }
}

TEST(DropoutTest, EvalIsIdentity) {
  Dropout d(0.5f);
  la::Vec x = {1, 2, 3};
  EXPECT_EQ(d.ForwardEval(x), x);
}

TEST(DropoutTest, TrainKeepsExpectedScale) {
  Dropout d(0.3f);
  Rng rng(99);
  la::Vec x(10000, 1.0f);
  la::Vec y = d.ForwardTrain(x, &rng);
  double mean = 0.0;
  for (float v : y) mean += v;
  mean /= static_cast<double>(y.size());
  EXPECT_NEAR(mean, 1.0, 0.05);  // inverted dropout preserves expectation
}

TEST(DropoutTest, BackwardAppliesMask) {
  Dropout d(0.5f);
  Rng rng(3);
  la::Vec x = {1, 1, 1, 1};
  la::Vec y = d.ForwardTrain(x, &rng);
  la::Vec dx = d.Backward({1, 1, 1, 1});
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(dx[i], y[i]);  // same mask, same scale
  }
}

TEST(TanhTest, ForwardBackward) {
  la::Vec x = {0.0f, 1.0f, -1.0f};
  la::Vec y = TanhForward(x);
  EXPECT_NEAR(y[0], 0.0f, 1e-6);
  EXPECT_NEAR(y[1], std::tanh(1.0f), 1e-6);
  la::Vec dx = TanhBackward(y, {1, 1, 1});
  EXPECT_NEAR(dx[0], 1.0f, 1e-6);  // 1 - tanh(0)^2 = 1
  EXPECT_NEAR(dx[1], 1.0f - y[1] * y[1], 1e-6);
}

TEST(CosineLossTest, SimilarPairValues) {
  la::Vec a = {1, 0};
  la::Vec b = {1, 0};
  CosineLossResult r = CosineEmbeddingLoss(a, b, 1);
  EXPECT_NEAR(r.loss, 0.0f, 1e-6);
  la::Vec c = {0, 1};
  r = CosineEmbeddingLoss(a, c, 1);
  EXPECT_NEAR(r.loss, 1.0f, 1e-6);
}

TEST(CosineLossTest, DissimilarPairHinge) {
  la::Vec a = {1, 0};
  la::Vec b = {1, 0};
  CosineLossResult r = CosineEmbeddingLoss(a, b, 0);
  EXPECT_NEAR(r.loss, 1.0f, 1e-6);  // cos=1, max(0, 1-0)
  la::Vec c = {-1, 0};
  r = CosineEmbeddingLoss(a, c, 0);
  EXPECT_NEAR(r.loss, 0.0f, 1e-6);  // cos=-1 clipped at 0
  EXPECT_EQ(r.grad_a, (la::Vec{0, 0}));  // inactive hinge: zero gradient
}

TEST(CosineLossTest, MarginShiftsHinge) {
  la::Vec a = {1, 0};
  la::Vec b = {1, 1};  // cos = 1/sqrt(2) ~ .707
  CosineLossResult r = CosineEmbeddingLoss(a, b, 0, 0.5f);
  EXPECT_NEAR(r.loss, 1.0f / std::sqrt(2.0f) - 0.5f, 1e-5);
}

TEST(CosineLossTest, NumericalGradientCheck) {
  la::Vec a = {0.8f, -0.3f, 0.5f};
  la::Vec b = {-0.2f, 0.9f, 0.4f};
  for (int label : {0, 1}) {
    CosineLossResult r = CosineEmbeddingLoss(a, b, label);
    const float eps = 1e-3f;
    for (size_t i = 0; i < a.size(); ++i) {
      la::Vec ap = a;
      ap[i] += eps;
      la::Vec am = a;
      am[i] -= eps;
      float numeric = (CosineEmbeddingLoss(ap, b, label).loss -
                       CosineEmbeddingLoss(am, b, label).loss) /
                      (2 * eps);
      EXPECT_NEAR(r.grad_a[i], numeric, 1e-2) << "label=" << label;
    }
  }
}

TEST(CosineLossTest, ZeroVectorIsSafe) {
  la::Vec z = {0, 0};
  la::Vec a = {1, 0};
  CosineLossResult r = CosineEmbeddingLoss(z, a, 1);
  EXPECT_FLOAT_EQ(r.loss, 1.0f);
  EXPECT_EQ(r.grad_a, (la::Vec{0, 0}));
}

// Both optimizers should drive a quadratic toward its minimum.
template <typename Opt>
void TestOptimizerOnQuadratic(Opt&& optimizer) {
  // f(p) = (p - 3)^2, df/dp = 2(p-3).
  std::vector<float> param = {0.0f};
  std::vector<float> grad = {0.0f};
  optimizer.Register({param.data(), grad.data(), 1});
  for (int step = 0; step < 500; ++step) {
    grad[0] = 2.0f * (param[0] - 3.0f);
    optimizer.Step();
  }
  EXPECT_NEAR(param[0], 3.0f, 0.1f);
}

TEST(OptimizerTest, SgdConverges) { TestOptimizerOnQuadratic(Sgd(0.05f)); }
TEST(OptimizerTest, SgdMomentumConverges) {
  TestOptimizerOnQuadratic(Sgd(0.02f, 0.9f));
}
TEST(OptimizerTest, AdamConverges) { TestOptimizerOnQuadratic(Adam(0.05f)); }

DustModelConfig SmallModelConfig() {
  DustModelConfig config;
  config.feature_dim = 256;
  config.hidden_dim = 16;
  config.embedding_dim = 8;
  config.dropout_p = 0.1f;
  return config;
}

TEST(DustModelTest, EncodeShapesAndDeterminism) {
  DustModel model(SmallModelConfig());
  la::Vec e = model.EncodeSerialized("[CLS] Park Name River Park [SEP]");
  EXPECT_EQ(e.size(), 8u);
  EXPECT_EQ(e, model.EncodeSerialized("[CLS] Park Name River Park [SEP]"));
  EXPECT_EQ(model.name(), "DUST (RoBERTa)");
}

TEST(DustModelTest, SaveLoadParamsRoundTrip) {
  DustModel model(SmallModelConfig());
  std::vector<float> params = model.SaveParams();
  la::Vec before = model.EncodeSerialized("[CLS] A x [SEP]");
  // Perturb, then restore.
  std::vector<float> zeros(params.size(), 0.0f);
  model.LoadParams(zeros);
  la::Vec zeroed = model.EncodeSerialized("[CLS] A x [SEP]");
  EXPECT_NE(before, zeroed);
  model.LoadParams(params);
  EXPECT_EQ(before, model.EncodeSerialized("[CLS] A x [SEP]"));
}

TEST(DustModelTest, FileRoundTrip) {
  DustModel model(SmallModelConfig());
  la::Vec before = model.EncodeSerialized("[CLS] A x [SEP]");
  std::string path = ::testing::TempDir() + "/dust_model.bin";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  DustModel loaded(SmallModelConfig());
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  EXPECT_EQ(before, loaded.EncodeSerialized("[CLS] A x [SEP]"));
}

TEST(DustModelTest, FileShapeMismatchRejected) {
  DustModel model(SmallModelConfig());
  std::string path = ::testing::TempDir() + "/dust_model2.bin";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  DustModelConfig other = SmallModelConfig();
  other.embedding_dim = 4;
  DustModel wrong(other);
  EXPECT_FALSE(wrong.LoadFromFile(path).ok());
}

std::vector<TuplePair> ToyPairs() {
  // Unionable: park-style tuples; non-unionable: park vs painting.
  std::vector<TuplePair> pairs;
  std::vector<std::string> parks = {
      "[CLS] Park Name River Park [SEP] Country USA [SEP]",
      "[CLS] Park Name Hyde Park [SEP] Country UK [SEP]",
      "[CLS] Park Name Cedar Park [SEP] Country Canada [SEP]",
      "[CLS] Park Name Maple Park [SEP] Country USA [SEP]"};
  std::vector<std::string> paintings = {
      "[CLS] Painting Northern Lake [SEP] Medium Oil on canvas [SEP]",
      "[CLS] Painting Silent Harbor [SEP] Medium Watercolor [SEP]",
      "[CLS] Painting Crimson Field [SEP] Medium Tempera [SEP]",
      "[CLS] Painting Amber Valley [SEP] Medium Gouache [SEP]"};
  for (size_t i = 0; i < parks.size(); ++i) {
    for (size_t j = i + 1; j < parks.size(); ++j) {
      pairs.push_back({parks[i], parks[j], 1});
      pairs.push_back({paintings[i], paintings[j], 1});
    }
  }
  for (const auto& p : parks) {
    for (const auto& q : paintings) pairs.push_back({p, q, 0});
  }
  return pairs;
}

TEST(TrainerTest, TrainingReducesValidationLoss) {
  DustModel model(SmallModelConfig());
  std::vector<TuplePair> pairs = ToyPairs();
  float before = EvaluateLoss(model, pairs);
  TrainerConfig config;
  config.max_epochs = 30;
  config.batch_size = 8;
  TrainReport report = TrainDustModel(&model, pairs, pairs, config);
  float after = EvaluateLoss(model, pairs);
  EXPECT_LT(after, before);
  EXPECT_GE(report.epochs_run, 1u);
  EXPECT_EQ(report.train_loss_per_epoch.size(), report.epochs_run);
}

TEST(TrainerTest, TrainedModelSeparatesClasses) {
  DustModel model(SmallModelConfig());
  std::vector<TuplePair> pairs = ToyPairs();
  TrainerConfig config;
  config.max_epochs = 60;
  config.batch_size = 8;
  TrainDustModel(&model, pairs, pairs, config);
  float threshold = SelectThreshold(model, pairs);
  float accuracy = PairAccuracy(model, pairs, threshold);
  EXPECT_GT(accuracy, 0.9f);
}

TEST(TrainerTest, EarlyStoppingTriggers) {
  DustModel model(SmallModelConfig());
  std::vector<TuplePair> pairs = ToyPairs();
  TrainerConfig config;
  config.max_epochs = 100;
  config.patience = 3;
  TrainReport report = TrainDustModel(&model, pairs, pairs, config);
  // Either converged early or ran out of epochs; both leave a best model.
  EXPECT_LE(report.epochs_run, 100u);
  EXPECT_GE(report.best_validation_loss, 0.0f);
}

TEST(TrainerTest, PairAccuracyOnEmptyPairsIsZero) {
  DustModel model(SmallModelConfig());
  EXPECT_FLOAT_EQ(PairAccuracy(model, {}, 0.7f), 0.0f);
}

}  // namespace
}  // namespace dust::nn
