// Agglomerative hierarchical clustering via the nearest-neighbor-chain
// algorithm: O(n^2) time on top of the pairwise distance matrix, which is
// what lets DUST's diversification cluster thousands of tuples (Sec. 5.2)
// while IR baselines stall.
#ifndef DUST_CLUSTER_AGGLOMERATIVE_H_
#define DUST_CLUSTER_AGGLOMERATIVE_H_

#include <cstddef>
#include <vector>

#include "cluster/linkage.h"
#include "la/distance.h"

namespace dust::cluster {

/// One dendrogram merge: clusters `a` and `b` (ids < n are leaves; id n+i is
/// the cluster created by merge i) joined at `distance`.
struct Merge {
  size_t a;
  size_t b;
  float distance;
  size_t size;  // leaves in the merged cluster
};

/// Full dendrogram over n leaves (n-1 merges, sorted by merge distance).
struct Dendrogram {
  size_t num_leaves = 0;
  std::vector<Merge> merges;
};

/// Builds the dendrogram of `points` under `linkage`. The input distance
/// matrix is consumed (mutated in place).
Dendrogram AgglomerativeCluster(la::DistanceMatrix distances, Linkage linkage);

/// Convenience overload: computes the distance matrix first.
Dendrogram AgglomerativeCluster(const std::vector<la::Vec>& points,
                                la::Metric metric, Linkage linkage);

/// Cuts the dendrogram into exactly `k` clusters (1 <= k <= n) by applying
/// the first n-k merges in distance order. Returns cluster labels in
/// [0, k), relabeled to be dense and ordered by first occurrence.
std::vector<size_t> CutDendrogram(const Dendrogram& dendrogram, size_t k);

/// Groups point indices by label: result[c] lists the members of cluster c.
std::vector<std::vector<size_t>> GroupByLabel(const std::vector<size_t>& labels);

}  // namespace dust::cluster

#endif  // DUST_CLUSTER_AGGLOMERATIVE_H_
