// Constrained agglomerative clustering for column alignment (Sec. 3.3):
// "no two columns from the same table should be aligned together", enforced
// as cannot-link constraints between items sharing a group id. The item
// count is small (columns of a handful of tables), so a naive O(n^3)
// agglomeration is used rather than NN-chain (which cannot honor
// constraints without losing reducibility).
#ifndef DUST_CLUSTER_CONSTRAINED_H_
#define DUST_CLUSTER_CONSTRAINED_H_

#include <cstddef>
#include <vector>

#include "cluster/linkage.h"
#include "la/distance.h"

namespace dust::cluster {

/// A flat clustering: labels[i] in [0, num_clusters).
struct FlatClustering {
  std::vector<size_t> labels;
  size_t num_clusters = 0;
};

/// Hierarchy of flat clusterings produced by constrained agglomeration:
/// levels[j] has (initial_clusters - j) clusters. Agglomeration stops early
/// when every remaining merge would violate a constraint.
struct ConstrainedDendrogram {
  std::vector<FlatClustering> levels;
};

/// Agglomerates items under `linkage`, never merging two clusters that both
/// contain an item from the same group (`group_of[i]`; use distinct groups
/// to disable constraints). Returns every level of the hierarchy so the
/// caller can pick the cluster count maximizing Silhouette (Sec. 3.3).
ConstrainedDendrogram ConstrainedAgglomerative(
    const la::DistanceMatrix& distances, const std::vector<size_t>& group_of,
    Linkage linkage);

}  // namespace dust::cluster

#endif  // DUST_CLUSTER_CONSTRAINED_H_
