#include "cluster/silhouette.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/status.h"

namespace dust::cluster {

std::vector<double> SilhouetteSamples(const la::DistanceMatrix& distances,
                                      const std::vector<size_t>& labels) {
  const size_t n = distances.size();
  DUST_CHECK(labels.size() == n);
  size_t k = 0;
  for (size_t label : labels) k = std::max(k, label + 1);

  std::vector<size_t> cluster_size(k, 0);
  for (size_t label : labels) ++cluster_size[label];

  std::vector<double> samples(n, 0.0);
  // sums[c] accumulates the distance from item i to all members of cluster c.
  std::vector<double> sums(k);
  for (size_t i = 0; i < n; ++i) {
    if (cluster_size[labels[i]] <= 1) {
      samples[i] = 0.0;  // singleton convention
      continue;
    }
    std::fill(sums.begin(), sums.end(), 0.0);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sums[labels[j]] += distances.at(i, j);
    }
    double a = sums[labels[i]] / static_cast<double>(cluster_size[labels[i]] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < k; ++c) {
      if (c == labels[i] || cluster_size[c] == 0) continue;
      b = std::min(b, sums[c] / static_cast<double>(cluster_size[c]));
    }
    if (!std::isfinite(b)) {
      samples[i] = 0.0;  // only one non-empty cluster
      continue;
    }
    double denom = std::max(a, b);
    samples[i] = (denom > 0.0) ? (b - a) / denom : 0.0;
  }
  return samples;
}

double SilhouetteScore(const la::DistanceMatrix& distances,
                       const std::vector<size_t>& labels) {
  if (distances.size() < 2) return 0.0;
  std::vector<double> samples = SilhouetteSamples(distances, labels);
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

}  // namespace dust::cluster
