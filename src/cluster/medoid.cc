#include "cluster/medoid.h"

#include <algorithm>
#include <limits>

#include "cluster/agglomerative.h"
#include "util/status.h"

namespace dust::cluster {

size_t MedoidOf(const std::vector<size_t>& members,
                const la::DistanceMatrix& distances) {
  DUST_CHECK(!members.empty());
  double best = std::numeric_limits<double>::infinity();
  size_t arg = members[0];
  for (size_t i : members) {
    double sum = 0.0;
    for (size_t j : members) sum += distances.at(i, j);
    if (sum < best) {
      best = sum;
      arg = i;
    }
  }
  return arg;
}

size_t MedoidOfPoints(const std::vector<la::Vec>& points,
                      const std::vector<size_t>& members, la::Metric metric) {
  DUST_CHECK(!members.empty());
  double best = std::numeric_limits<double>::infinity();
  size_t arg = members[0];
  for (size_t i : members) {
    double sum = 0.0;
    for (size_t j : members) {
      if (i != j) sum += la::Distance(metric, points[i], points[j]);
    }
    if (sum < best) {
      best = sum;
      arg = i;
    }
  }
  return arg;
}

std::vector<size_t> ClusterMedoids(const std::vector<la::Vec>& points,
                                   const std::vector<size_t>& labels,
                                   la::Metric metric) {
  std::vector<std::vector<size_t>> groups = GroupByLabel(labels);
  std::vector<size_t> medoids;
  medoids.reserve(groups.size());
  for (const auto& members : groups) {
    if (members.empty()) continue;
    medoids.push_back(MedoidOfPoints(points, members, metric));
  }
  return medoids;
}

}  // namespace dust::cluster
