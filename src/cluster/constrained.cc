#include "cluster/constrained.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/status.h"

namespace dust::cluster {

ConstrainedDendrogram ConstrainedAgglomerative(
    const la::DistanceMatrix& distances, const std::vector<size_t>& group_of,
    Linkage linkage) {
  const size_t n = distances.size();
  DUST_CHECK(group_of.size() == n);
  ConstrainedDendrogram out;
  if (n == 0) return out;

  // Mutable working distance matrix (cluster-cluster).
  la::DistanceMatrix work = distances;
  std::vector<bool> active(n, true);
  std::vector<size_t> size(n, 1);
  std::vector<size_t> labels(n);
  std::iota(labels.begin(), labels.end(), 0);
  // members[slot] lists item indices in that cluster (for constraint checks).
  std::vector<std::vector<size_t>> members(n);
  for (size_t i = 0; i < n; ++i) members[i] = {i};

  auto violates = [&](size_t a, size_t b) {
    for (size_t x : members[a]) {
      for (size_t y : members[b]) {
        if (group_of[x] == group_of[y]) return true;
      }
    }
    return false;
  };

  auto record_level = [&] {
    FlatClustering level;
    level.labels.resize(n);
    // Dense relabeling by first occurrence.
    std::vector<int> slot_to_label(n, -1);
    size_t next = 0;
    for (size_t i = 0; i < n; ++i) {
      size_t slot = labels[i];
      if (slot_to_label[slot] < 0) slot_to_label[slot] = static_cast<int>(next++);
      level.labels[i] = static_cast<size_t>(slot_to_label[slot]);
    }
    level.num_clusters = next;
    out.levels.push_back(std::move(level));
  };

  record_level();  // n singleton clusters

  size_t remaining = n;
  while (remaining > 1) {
    // Find the closest admissible pair of active clusters.
    float best = std::numeric_limits<float>::infinity();
    size_t best_a = n;
    size_t best_b = n;
    for (size_t a = 0; a < n; ++a) {
      if (!active[a]) continue;
      for (size_t b = a + 1; b < n; ++b) {
        if (!active[b]) continue;
        float d = work.at(a, b);
        if (d < best && !violates(a, b)) {
          best = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_a == n) break;  // all remaining merges violate constraints

    float d_ab = work.at(best_a, best_b);
    for (size_t c = 0; c < n; ++c) {
      if (!active[c] || c == best_a || c == best_b) continue;
      float updated =
          LanceWilliams(linkage, work.at(best_a, c), work.at(best_b, c), d_ab,
                        size[best_a], size[best_b], size[c]);
      work.set(best_a, c, updated);
    }
    active[best_b] = false;
    size[best_a] += size[best_b];
    for (size_t x : members[best_b]) members[best_a].push_back(x);
    members[best_b].clear();
    for (size_t i = 0; i < n; ++i) {
      if (labels[i] == best_b) labels[i] = best_a;
    }
    --remaining;
    record_level();
  }
  return out;
}

}  // namespace dust::cluster
