// Silhouette coefficient (Rousseeuw 1987) — the cluster-quality score used
// to select the number of clusters during column alignment (Sec. 3.3,
// following Khatiwada et al. [26]).
#ifndef DUST_CLUSTER_SILHOUETTE_H_
#define DUST_CLUSTER_SILHOUETTE_H_

#include <cstddef>
#include <vector>

#include "la/distance.h"

namespace dust::cluster {

/// Mean silhouette over all items. Requires >= 2 clusters and >= 2 items;
/// items in singleton clusters contribute 0 (scikit-learn convention).
/// Returns a value in [-1, 1]; higher is better.
double SilhouetteScore(const la::DistanceMatrix& distances,
                       const std::vector<size_t>& labels);

/// Per-item silhouette values.
std::vector<double> SilhouetteSamples(const la::DistanceMatrix& distances,
                                      const std::vector<size_t>& labels);

}  // namespace dust::cluster

#endif  // DUST_CLUSTER_SILHOUETTE_H_
