#include "cluster/agglomerative.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/status.h"

namespace dust::cluster {

namespace {

// Union-find with path compression used to replay merges when cutting.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Dendrogram AgglomerativeCluster(la::DistanceMatrix distances, Linkage linkage) {
  const size_t n = distances.size();
  Dendrogram dendrogram;
  dendrogram.num_leaves = n;
  if (n <= 1) return dendrogram;

  // Active-cluster bookkeeping. Cluster slots reuse the row of one member
  // (so a slot index is always a leaf index belonging to that cluster).
  std::vector<bool> active(n, true);
  std::vector<size_t> size(n, 1);

  // NN-chain stack.
  std::vector<size_t> chain;
  chain.reserve(n);

  struct RawMerge {
    size_t slot_a, slot_b;  // slot == a leaf index belonging to each cluster
    float distance;
  };
  std::vector<RawMerge> raw;
  raw.reserve(n - 1);

  size_t remaining = n;

  auto nearest_active = [&](size_t x) {
    float best = std::numeric_limits<float>::infinity();
    size_t arg = x;
    for (size_t y = 0; y < n; ++y) {
      if (!active[y] || y == x) continue;
      float d = distances.at(x, y);
      if (d < best || (d == best && y < arg)) {
        best = d;
        arg = y;
      }
    }
    return std::make_pair(arg, best);
  };

  while (remaining > 1) {
    if (chain.empty()) {
      // Start a new chain from the lowest-index active cluster.
      for (size_t x = 0; x < n; ++x) {
        if (active[x]) {
          chain.push_back(x);
          break;
        }
      }
    }
    while (true) {
      size_t top = chain.back();
      auto [nn, d] = nearest_active(top);
      // Prefer the chain predecessor on ties so reciprocity is detected.
      if (chain.size() >= 2) {
        size_t prev = chain[chain.size() - 2];
        if (distances.at(top, prev) == d) nn = prev;
      }
      if (chain.size() >= 2 && nn == chain[chain.size() - 2]) {
        // Reciprocal nearest neighbors: merge top and nn.
        size_t a = top;
        size_t b = nn;
        chain.pop_back();
        chain.pop_back();

        float d_ab = distances.at(a, b);
        size_t new_size = size[a] + size[b];
        raw.push_back({a, b, d_ab});

        // Merge b's slot into a's slot; Lance-Williams updates row a.
        for (size_t c = 0; c < n; ++c) {
          if (!active[c] || c == a || c == b) continue;
          float updated = LanceWilliams(linkage, distances.at(a, c),
                                        distances.at(b, c), d_ab, size[a],
                                        size[b], size[c]);
          distances.set(a, c, updated);
        }
        active[b] = false;
        size[a] = new_size;
        --remaining;
        break;
      }
      chain.push_back(nn);
    }
  }

  // NN-chain emits merges out of distance order. Sort ascending (stable for
  // determinism on ties) and re-derive cluster ids with a union-find over
  // leaf representatives (scipy's "label" step): merge i in sorted order
  // creates id n+i and can only reference earlier ids.
  std::vector<size_t> order(raw.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return raw[x].distance < raw[y].distance;
  });

  UnionFind uf(n);
  std::vector<size_t> root_dendro_id(n);
  std::iota(root_dendro_id.begin(), root_dendro_id.end(), 0);
  std::vector<size_t> root_size(n, 1);

  dendrogram.merges.reserve(raw.size());
  for (size_t i = 0; i < order.size(); ++i) {
    const RawMerge& m = raw[order[i]];
    size_t ra = uf.Find(m.slot_a);
    size_t rb = uf.Find(m.slot_b);
    DUST_CHECK(ra != rb);
    Merge merge;
    merge.a = root_dendro_id[ra];
    merge.b = root_dendro_id[rb];
    if (merge.a > merge.b) std::swap(merge.a, merge.b);
    merge.distance = m.distance;
    merge.size = root_size[ra] + root_size[rb];
    uf.Union(ra, rb);
    size_t root = uf.Find(ra);
    root_dendro_id[root] = n + i;
    root_size[root] = merge.size;
    dendrogram.merges.push_back(merge);
  }
  return dendrogram;
}

Dendrogram AgglomerativeCluster(const std::vector<la::Vec>& points,
                                la::Metric metric, Linkage linkage) {
  return AgglomerativeCluster(la::DistanceMatrix(points, metric), linkage);
}

std::vector<size_t> CutDendrogram(const Dendrogram& dendrogram, size_t k) {
  const size_t n = dendrogram.num_leaves;
  DUST_CHECK(k >= 1 && k <= std::max<size_t>(n, 1));
  std::vector<size_t> labels(n, 0);
  if (n == 0) return labels;

  UnionFind uf(n);
  // Track, for each dendrogram node id, a representative leaf.
  std::vector<size_t> rep(n + dendrogram.merges.size());
  std::iota(rep.begin(), rep.begin() + n, 0);

  size_t merges_to_apply = n - k;
  for (size_t i = 0; i < dendrogram.merges.size(); ++i) {
    const Merge& m = dendrogram.merges[i];
    size_t ra = rep[m.a];
    size_t rb = rep[m.b];
    if (i < merges_to_apply) uf.Union(ra, rb);
    rep[n + i] = ra;
  }

  // Dense relabeling ordered by first occurrence.
  std::vector<int> root_to_label(n, -1);
  size_t next_label = 0;
  for (size_t x = 0; x < n; ++x) {
    size_t root = uf.Find(x);
    if (root_to_label[root] < 0) {
      root_to_label[root] = static_cast<int>(next_label++);
    }
    labels[x] = static_cast<size_t>(root_to_label[root]);
  }
  DUST_CHECK(next_label == k);
  return labels;
}

std::vector<std::vector<size_t>> GroupByLabel(const std::vector<size_t>& labels) {
  size_t k = 0;
  for (size_t label : labels) k = std::max(k, label + 1);
  std::vector<std::vector<size_t>> groups(k);
  for (size_t i = 0; i < labels.size(); ++i) groups[labels[i]].push_back(i);
  return groups;
}

}  // namespace dust::cluster
