// Linkage criteria for agglomerative clustering, updated with the
// Lance-Williams recurrence so cluster-cluster distances never require
// revisiting the raw points.
#ifndef DUST_CLUSTER_LINKAGE_H_
#define DUST_CLUSTER_LINKAGE_H_

#include <cstddef>
#include <string>

namespace dust::cluster {

/// Linkage criterion. The paper's experiments use average linkage
/// (Sec. 6.2.1); the others support the linkage ablation bench.
/// kWard expects squared-Euclidean input distances.
enum class Linkage { kSingle, kComplete, kAverage, kWard };

const char* LinkageName(Linkage linkage);
Linkage LinkageFromName(const std::string& name);

/// Lance-Williams update: distance between cluster (a ∪ b) and cluster c,
/// given d(a,c), d(b,c), d(a,b) and the cluster sizes.
float LanceWilliams(Linkage linkage, float d_ac, float d_bc, float d_ab,
                    size_t size_a, size_t size_b, size_t size_c);

}  // namespace dust::cluster

#endif  // DUST_CLUSTER_LINKAGE_H_
