#include "cluster/kmeans.h"

#include <algorithm>
#include <limits>

#include "la/distance.h"
#include "util/rng.h"
#include "util/status.h"

namespace dust::cluster {

namespace {

// k-means++ seeding: first centroid uniform, then each next centroid drawn
// with probability proportional to squared distance to the closest chosen.
std::vector<la::Vec> PlusPlusInit(const std::vector<la::Vec>& points, size_t k,
                                  Rng* rng) {
  std::vector<la::Vec> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng->NextBelow(points.size())]);
  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      double d = la::SquaredEuclideanDistance(points[i], centroids.back());
      d2[i] = std::min(d2[i], d);
      total += d2[i];
    }
    if (total <= 0.0) {
      // All points coincide with existing centroids; fall back to uniform.
      centroids.push_back(points[rng->NextBelow(points.size())]);
      continue;
    }
    double target = rng->NextDouble() * total;
    double cum = 0.0;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      cum += d2[i];
      if (cum >= target) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

KmeansResult Kmeans(const std::vector<la::Vec>& points, size_t k,
                    const KmeansOptions& options) {
  DUST_CHECK(!points.empty());
  DUST_CHECK(k >= 1);
  const size_t n = points.size();
  const size_t dim = points[0].size();
  k = std::min(k, n);

  Rng rng(options.seed);
  KmeansResult result;
  result.centroids = PlusPlusInit(points, k, &rng);
  result.assignments.assign(n, 0);

  double prev_inertia = std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    double inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      size_t arg = 0;
      for (size_t c = 0; c < k; ++c) {
        double d = la::SquaredEuclideanDistance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          arg = c;
        }
      }
      result.assignments[i] = arg;
      inertia += best;
    }
    result.inertia = inertia;

    // Update step.
    std::vector<la::Vec> sums(k, la::Vec(dim, 0.0f));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      la::AddInPlace(&sums[result.assignments[i]], points[i]);
      ++counts[result.assignments[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        result.centroids[c] = points[rng.NextBelow(n)];
        continue;
      }
      la::ScaleInPlace(&sums[c], 1.0f / static_cast<float>(counts[c]));
      result.centroids[c] = std::move(sums[c]);
    }

    if (prev_inertia - inertia < options.tolerance) break;
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace dust::cluster
