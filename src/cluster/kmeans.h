// Lloyd's k-means with k-means++ seeding. Serves as the coarse quantizer of
// the IVF index (faiss-style) and as an alternative candidate clusterer.
#ifndef DUST_CLUSTER_KMEANS_H_
#define DUST_CLUSTER_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/vector_ops.h"

namespace dust::cluster {

struct KmeansResult {
  std::vector<la::Vec> centroids;   // k centroids
  std::vector<size_t> assignments;  // per-point centroid index
  double inertia = 0.0;             // sum of squared distances to centroids
  size_t iterations = 0;
};

struct KmeansOptions {
  size_t max_iterations = 50;
  double tolerance = 1e-5;  // stop when inertia improves less than this
  uint64_t seed = 42;
};

/// Clusters `points` into `k` groups (k >= 1; if k >= n each point gets its
/// own centroid). Squared Euclidean objective; deterministic given the seed.
KmeansResult Kmeans(const std::vector<la::Vec>& points, size_t k,
                    const KmeansOptions& options = {});

}  // namespace dust::cluster

#endif  // DUST_CLUSTER_KMEANS_H_
