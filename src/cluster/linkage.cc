#include "cluster/linkage.h"

#include <algorithm>

#include "util/string_util.h"

namespace dust::cluster {

const char* LinkageName(Linkage linkage) {
  switch (linkage) {
    case Linkage::kSingle:
      return "single";
    case Linkage::kComplete:
      return "complete";
    case Linkage::kAverage:
      return "average";
    case Linkage::kWard:
      return "ward";
  }
  return "?";
}

Linkage LinkageFromName(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "single") return Linkage::kSingle;
  if (lower == "complete") return Linkage::kComplete;
  if (lower == "ward") return Linkage::kWard;
  return Linkage::kAverage;
}

float LanceWilliams(Linkage linkage, float d_ac, float d_bc, float d_ab,
                    size_t size_a, size_t size_b, size_t size_c) {
  float na = static_cast<float>(size_a);
  float nb = static_cast<float>(size_b);
  float nc = static_cast<float>(size_c);
  switch (linkage) {
    case Linkage::kSingle:
      return std::min(d_ac, d_bc);
    case Linkage::kComplete:
      return std::max(d_ac, d_bc);
    case Linkage::kAverage:
      return (na * d_ac + nb * d_bc) / (na + nb);
    case Linkage::kWard: {
      float total = na + nb + nc;
      return ((na + nc) * d_ac + (nb + nc) * d_bc - nc * d_ab) / total;
    }
  }
  return 0.0f;
}

}  // namespace dust::cluster
