// Medoid selection: the central-most member of a cluster (Sec. 5.2 selects
// each cluster's medoid as its candidate diverse tuple, which is more robust
// to outliers than e.g. the point nearest the centroid).
#ifndef DUST_CLUSTER_MEDOID_H_
#define DUST_CLUSTER_MEDOID_H_

#include <cstddef>
#include <vector>

#include "la/distance.h"

namespace dust::cluster {

/// Index (into `members`' values) of the member minimizing the sum of
/// distances to the other members. Ties break to the lowest index.
size_t MedoidOf(const std::vector<size_t>& members,
                const la::DistanceMatrix& distances);

/// Medoid computed directly from points (no precomputed matrix); O(m^2 d).
size_t MedoidOfPoints(const std::vector<la::Vec>& points,
                      const std::vector<size_t>& members, la::Metric metric);

/// Medoids of every cluster in a labeling: result[c] is the point index of
/// cluster c's medoid. Empty clusters are skipped (not represented).
std::vector<size_t> ClusterMedoids(const std::vector<la::Vec>& points,
                                   const std::vector<size_t>& labels,
                                   la::Metric metric);

}  // namespace dust::cluster

#endif  // DUST_CLUSTER_MEDOID_H_
