// "Creating Unionable Tuples" (Sec. 3.3): given a column alignment, outer-
// unions the unionable tables into the query schema and serializes each
// resulting tuple for embedding (aligned columns adopt the query headers;
// null-padded cells are skipped, Example 4).
#ifndef DUST_ALIGN_TUPLE_BUILDER_H_
#define DUST_ALIGN_TUPLE_BUILDER_H_

#include <string>
#include <vector>

#include "align/holistic_aligner.h"
#include "table/serialize.h"
#include "table/table.h"
#include "table/union.h"

namespace dust::align {

/// The unionable tuple set of one query: the outer-unioned table plus each
/// tuple's serialization and provenance.
struct UnionableTuples {
  /// Outer union of the lake tables under the query schema.
  table::Table unioned;
  /// (lake table index, row) of each unioned row.
  std::vector<table::TupleRef> provenance;
  /// Serialized form of each unioned row (query-header order).
  std::vector<std::string> serialized;
  /// Serialized form of each query row (same headers/order).
  std::vector<std::string> query_serialized;
};

/// Builds the unionable tuple set from an alignment.
Result<UnionableTuples> BuildUnionableTuples(
    const table::Table& query,
    const std::vector<const table::Table*>& lake_tables,
    const AlignmentResult& alignment);

}  // namespace dust::align

#endif  // DUST_ALIGN_TUPLE_BUILDER_H_
