#include "align/hungarian.h"

#include <algorithm>
#include <limits>

#include "util/status.h"

namespace dust::align {

MatchingResult MaxWeightBipartiteMatching(const std::vector<double>& weights,
                                          size_t rows, size_t cols) {
  DUST_CHECK(weights.size() == rows * cols);
  // Pad to a square cost matrix and minimize cost = (max_weight - weight);
  // padded cells get cost max_weight (i.e., weight 0).
  size_t n = std::max(rows, cols);
  double max_w = 0.0;
  for (double w : weights) max_w = std::max(max_w, w);

  // cost[i][j], 1-indexed internally for the potentials formulation.
  auto cost = [&](size_t i, size_t j) -> double {
    if (i < rows && j < cols) {
      double w = std::max(0.0, weights[i * cols + j]);
      return max_w - w;
    }
    return max_w;  // padding: equivalent to weight 0
  };

  // Jonker-Volgenant style Hungarian with potentials, O(n^3).
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<size_t> p(n + 1, 0);    // p[j]: row matched to column j
  std::vector<size_t> way(n + 1, 0);  // alternating path bookkeeping

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the path.
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  MatchingResult result;
  result.match_of_row.assign(rows, -1);
  for (size_t j = 1; j <= n; ++j) {
    size_t i = p[j];
    if (i == 0) continue;
    size_t row = i - 1;
    size_t col = j - 1;
    if (row < rows && col < cols) {
      double w = weights[row * cols + col];
      if (w > 0.0) {
        result.match_of_row[row] = static_cast<int>(col);
        result.total_weight += w;
      }
    }
  }
  return result;
}

}  // namespace dust::align
