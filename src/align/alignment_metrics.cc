#include "align/alignment_metrics.h"

#include "util/string_util.h"

namespace dust::align {

namespace {

std::string ColumnKey(const ColumnId& id) {
  return std::to_string(id.table_index) + "." + std::to_string(id.column_index);
}

std::string PairKey(const ColumnId& a, const ColumnId& b) {
  std::string ka = ColumnKey(a);
  std::string kb = ColumnKey(b);
  if (kb < ka) std::swap(ka, kb);
  return ka + "|" + kb;
}

}  // namespace

std::set<std::string> AlignmentPairSet(
    const std::vector<std::vector<ColumnId>>& lake_per_query_column) {
  std::set<std::string> pairs;
  for (size_t qc = 0; qc < lake_per_query_column.size(); ++qc) {
    ColumnId query_id{0, qc};
    const std::vector<ColumnId>& members = lake_per_query_column[qc];
    if (members.empty()) {
      pairs.insert(PairKey(query_id, query_id));  // unmatched query column
      continue;
    }
    for (size_t i = 0; i < members.size(); ++i) {
      pairs.insert(PairKey(query_id, members[i]));
      for (size_t j = i + 1; j < members.size(); ++j) {
        pairs.insert(PairKey(members[i], members[j]));
      }
    }
  }
  return pairs;
}

std::set<std::string> AlignmentPairSet(const AlignmentResult& result,
                                       size_t num_query_columns) {
  std::vector<std::vector<ColumnId>> lake_per_query(num_query_columns);
  for (const AlignmentCluster& cluster : result.clusters) {
    if (cluster.query_column < num_query_columns) {
      lake_per_query[cluster.query_column] = cluster.lake_members;
    }
  }
  return AlignmentPairSet(lake_per_query);
}

PrecisionRecallF1 ScoreAlignment(const AlignmentResult& result,
                                 const AlignmentGroundTruth& truth) {
  std::set<std::string> truth_pairs = AlignmentPairSet(truth.aligned_lake);
  std::set<std::string> method_pairs =
      AlignmentPairSet(result, truth.aligned_lake.size());

  size_t intersection = 0;
  for (const std::string& p : method_pairs) {
    if (truth_pairs.count(p) > 0) ++intersection;
  }
  PrecisionRecallF1 out;
  if (!method_pairs.empty()) {
    out.precision = static_cast<double>(intersection) /
                    static_cast<double>(method_pairs.size());
  }
  if (!truth_pairs.empty()) {
    out.recall = static_cast<double>(intersection) /
                 static_cast<double>(truth_pairs.size());
  }
  if (out.precision + out.recall > 0.0) {
    out.f1 = 2.0 * out.precision * out.recall / (out.precision + out.recall);
  }
  return out;
}

}  // namespace dust::align
