// Column-alignment evaluation (Sec. 6.2.2): Precision / Recall / F1 over
// alignment pairs. The ground truth contains (a) each query column paired
// with every lake column that truly aligns to it, (b) pairs of lake columns
// sharing the same aligning query column, and (c) each unmatched query
// column as a singleton. Method pairs are formed identically from the
// clusters a method produces.
#ifndef DUST_ALIGN_ALIGNMENT_METRICS_H_
#define DUST_ALIGN_ALIGNMENT_METRICS_H_

#include <set>
#include <string>
#include <vector>

#include "align/holistic_aligner.h"

namespace dust::align {

/// Ground-truth alignment: per query column, the lake columns that truly
/// align to it (empty set = unmatched query column).
struct AlignmentGroundTruth {
  /// aligned_lake[qc] = lake ColumnIds (table_index >= 1) aligned to query
  /// column qc.
  std::vector<std::vector<ColumnId>> aligned_lake;
};

struct PrecisionRecallF1 {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Canonical pair-set of an alignment grouping: for each group {q} ∪ L it
/// emits (q,l) for every l in L, (l1,l2) for every lake pair in L, and the
/// singleton (q,q) when L is empty.
std::set<std::string> AlignmentPairSet(
    const std::vector<std::vector<ColumnId>>& lake_per_query_column);

/// Pair set of a method's AlignmentResult.
std::set<std::string> AlignmentPairSet(const AlignmentResult& result,
                                       size_t num_query_columns);

/// P/R/F1 of `result` against `truth`.
PrecisionRecallF1 ScoreAlignment(const AlignmentResult& result,
                                 const AlignmentGroundTruth& truth);

}  // namespace dust::align

#endif  // DUST_ALIGN_ALIGNMENT_METRICS_H_
