// Holistic column alignment (Sec. 3.3, Appendix A.1.1).
//
// Given a query table and a set of unionable data lake tables:
//  1. embed every column (query + lake) with a ColumnEmbedder;
//  2. run constrained agglomerative clustering over the column embeddings
//     (cannot-link columns of the same table);
//  3. choose the number of clusters maximizing the Silhouette coefficient;
//  4. discard clusters containing no query column;
//  5. emit, per lake table, a mapping from query columns to lake columns.
//
// A bipartite variant (Starmie (B), Sec. 6.2.3) aligns each lake table to
// the query independently with max-weight bipartite matching.
#ifndef DUST_ALIGN_HOLISTIC_ALIGNER_H_
#define DUST_ALIGN_HOLISTIC_ALIGNER_H_

#include <string>
#include <vector>

#include "cluster/constrained.h"
#include "embed/column_embedder.h"
#include "table/table.h"
#include "table/union.h"

namespace dust::align {

/// Identifies a column: table_index 0 is the query table; lake table i is
/// table_index i+1.
struct ColumnId {
  size_t table_index = 0;
  size_t column_index = 0;

  bool operator==(const ColumnId& other) const {
    return table_index == other.table_index &&
           column_index == other.column_index;
  }
  bool operator<(const ColumnId& other) const {
    if (table_index != other.table_index) return table_index < other.table_index;
    return column_index < other.column_index;
  }
};

/// One retained cluster: exactly one query column plus the lake columns
/// aligned to it (possibly none).
struct AlignmentCluster {
  size_t query_column = 0;
  std::vector<ColumnId> lake_members;  // table_index >= 1
};

struct AlignmentResult {
  std::vector<AlignmentCluster> clusters;
  /// Per lake table: target_headers.size() entries, each the lake column
  /// index aligned to that query column or -1 (outer-union null pad).
  std::vector<table::ColumnMapping> lake_mappings;
  /// The query table's headers, in query column order.
  std::vector<std::string> target_headers;
  size_t chosen_num_clusters = 0;
  double silhouette = 0.0;
};

struct AlignerConfig {
  cluster::Linkage linkage = cluster::Linkage::kAverage;
  /// Sec. 6.2.1 reports results with Euclidean distances between column
  /// embeddings.
  la::Metric metric = la::Metric::kEuclidean;
};

/// Holistic alignment via constrained clustering + Silhouette selection.
class HolisticAligner {
 public:
  explicit HolisticAligner(AlignerConfig config = {}) : config_(config) {}

  /// `column_embeddings[t][j]`: embedding of table t's column j, where
  /// table 0 is the query and tables 1..m are the lake tables.
  AlignmentResult Align(const table::Table& query,
                        const std::vector<const table::Table*>& lake_tables,
                        const std::vector<std::vector<la::Vec>>&
                            column_embeddings) const;

 private:
  AlignerConfig config_;
};

/// Starmie (B): independent per-table max-weight bipartite matching between
/// query and lake columns using cosine similarity of the embeddings. Only
/// pairs with similarity >= `min_similarity` are kept.
AlignmentResult BipartiteAlign(
    const table::Table& query,
    const std::vector<const table::Table*>& lake_tables,
    const std::vector<std::vector<la::Vec>>& column_embeddings,
    float min_similarity = 0.0f);

}  // namespace dust::align

#endif  // DUST_ALIGN_HOLISTIC_ALIGNER_H_
