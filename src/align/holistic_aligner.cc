#include "align/holistic_aligner.h"

#include <algorithm>

#include "align/hungarian.h"
#include "cluster/silhouette.h"
#include "la/distance.h"
#include "util/status.h"

namespace dust::align {

namespace {

// Builds the per-lake-table mappings and retained clusters from a flat
// clustering over the concatenated (query + lake) column list.
AlignmentResult BuildResult(const table::Table& query,
                            const std::vector<const table::Table*>& lake_tables,
                            const std::vector<ColumnId>& ids,
                            const std::vector<size_t>& labels,
                            size_t num_clusters) {
  AlignmentResult result;
  result.target_headers = query.ColumnNames();
  result.chosen_num_clusters = num_clusters;

  // For each cluster, find its query column (at most one thanks to the
  // cannot-link constraint) and its lake members.
  std::vector<int> cluster_query(num_clusters, -1);
  std::vector<std::vector<ColumnId>> cluster_lake(num_clusters);
  for (size_t i = 0; i < ids.size(); ++i) {
    size_t c = labels[i];
    if (ids[i].table_index == 0) {
      cluster_query[c] = static_cast<int>(ids[i].column_index);
    } else {
      cluster_lake[c].push_back(ids[i]);
    }
  }

  result.lake_mappings.assign(
      lake_tables.size(), table::ColumnMapping(query.num_columns(), -1));

  for (size_t c = 0; c < num_clusters; ++c) {
    if (cluster_query[c] < 0) continue;  // discard: no query column (Sec. 3.3)
    AlignmentCluster cluster;
    cluster.query_column = static_cast<size_t>(cluster_query[c]);
    cluster.lake_members = cluster_lake[c];
    std::sort(cluster.lake_members.begin(), cluster.lake_members.end());
    for (const ColumnId& id : cluster.lake_members) {
      result.lake_mappings[id.table_index - 1][cluster.query_column] =
          static_cast<int>(id.column_index);
    }
    result.clusters.push_back(std::move(cluster));
  }
  std::sort(result.clusters.begin(), result.clusters.end(),
            [](const AlignmentCluster& a, const AlignmentCluster& b) {
              return a.query_column < b.query_column;
            });
  return result;
}

}  // namespace

AlignmentResult HolisticAligner::Align(
    const table::Table& query,
    const std::vector<const table::Table*>& lake_tables,
    const std::vector<std::vector<la::Vec>>& column_embeddings) const {
  DUST_CHECK(column_embeddings.size() == lake_tables.size() + 1);

  // Flatten columns: ids[i] identifies the column behind embedding i;
  // group_of[i] forbids clustering columns of the same table together.
  std::vector<ColumnId> ids;
  std::vector<la::Vec> points;
  std::vector<size_t> group_of;
  for (size_t t = 0; t < column_embeddings.size(); ++t) {
    for (size_t j = 0; j < column_embeddings[t].size(); ++j) {
      ids.push_back({t, j});
      points.push_back(column_embeddings[t][j]);
      group_of.push_back(t);
    }
  }
  const size_t n = points.size();
  if (n == 0) {
    return BuildResult(query, lake_tables, ids, {}, 0);
  }

  la::DistanceMatrix distances(points, config_.metric);
  cluster::ConstrainedDendrogram dendrogram =
      cluster::ConstrainedAgglomerative(distances, group_of, config_.linkage);

  // Pick the level (number of clusters) with the best Silhouette. Levels
  // with k == n (all singletons) or k == 1 carry no information.
  double best_score = -2.0;
  const cluster::FlatClustering* best_level = nullptr;
  for (const cluster::FlatClustering& level : dendrogram.levels) {
    if (level.num_clusters >= n || level.num_clusters < 2) continue;
    double score = cluster::SilhouetteScore(distances, level.labels);
    if (score > best_score) {
      best_score = score;
      best_level = &level;
    }
  }
  if (best_level == nullptr) {
    // Degenerate input (<= 2 columns): fall back to the last level.
    best_level = &dendrogram.levels.back();
    best_score = 0.0;
  }

  AlignmentResult result = BuildResult(query, lake_tables, ids,
                                       best_level->labels,
                                       best_level->num_clusters);
  result.silhouette = best_score;
  return result;
}

AlignmentResult BipartiteAlign(
    const table::Table& query,
    const std::vector<const table::Table*>& lake_tables,
    const std::vector<std::vector<la::Vec>>& column_embeddings,
    float min_similarity) {
  DUST_CHECK(column_embeddings.size() == lake_tables.size() + 1);
  AlignmentResult result;
  result.target_headers = query.ColumnNames();
  const std::vector<la::Vec>& query_cols = column_embeddings[0];

  std::vector<AlignmentCluster> clusters(query.num_columns());
  for (size_t qc = 0; qc < query.num_columns(); ++qc) {
    clusters[qc].query_column = qc;
  }

  result.lake_mappings.assign(
      lake_tables.size(), table::ColumnMapping(query.num_columns(), -1));

  for (size_t t = 0; t < lake_tables.size(); ++t) {
    const std::vector<la::Vec>& lake_cols = column_embeddings[t + 1];
    if (lake_cols.empty() || query_cols.empty()) continue;
    std::vector<double> weights(query_cols.size() * lake_cols.size(), 0.0);
    for (size_t i = 0; i < query_cols.size(); ++i) {
      for (size_t j = 0; j < lake_cols.size(); ++j) {
        float sim = la::CosineSimilarity(query_cols[i], lake_cols[j]);
        weights[i * lake_cols.size() + j] =
            (sim >= min_similarity) ? static_cast<double>(sim) : -1.0;
      }
    }
    MatchingResult matching =
        MaxWeightBipartiteMatching(weights, query_cols.size(), lake_cols.size());
    for (size_t qc = 0; qc < query_cols.size(); ++qc) {
      int lc = matching.match_of_row[qc];
      if (lc < 0) continue;
      result.lake_mappings[t][qc] = lc;
      clusters[qc].lake_members.push_back({t + 1, static_cast<size_t>(lc)});
    }
  }

  result.clusters = std::move(clusters);
  result.chosen_num_clusters = query.num_columns();
  return result;
}

}  // namespace dust::align
