// Maximum-weight bipartite matching (Hungarian algorithm / Kuhn-Munkres).
// Used by the Starmie-style baselines: Starmie scores table unionability by
// the max-weight bipartite matching between query and candidate column
// embeddings (Sec. 6.2.3), and Starmie (B) aligns columns pairwise with it.
#ifndef DUST_ALIGN_HUNGARIAN_H_
#define DUST_ALIGN_HUNGARIAN_H_

#include <cstddef>
#include <vector>

namespace dust::align {

struct MatchingResult {
  /// match_of_row[i] = matched column index, or -1 if unmatched.
  std::vector<int> match_of_row;
  /// Total weight of the matching.
  double total_weight = 0.0;
};

/// Maximum-weight matching of a rows x cols weight matrix (row-major).
/// Negative weights are treated as "do not match" (the pair stays
/// unmatched rather than contributing negatively).
MatchingResult MaxWeightBipartiteMatching(const std::vector<double>& weights,
                                          size_t rows, size_t cols);

}  // namespace dust::align

#endif  // DUST_ALIGN_HUNGARIAN_H_
