#include "align/tuple_builder.h"

namespace dust::align {

Result<UnionableTuples> BuildUnionableTuples(
    const table::Table& query,
    const std::vector<const table::Table*>& lake_tables,
    const AlignmentResult& alignment) {
  if (alignment.lake_mappings.size() != lake_tables.size()) {
    return Status::InvalidArgument(
        "alignment does not cover the given lake tables");
  }
  UnionableTuples out;
  Result<table::Table> unioned =
      table::OuterUnion(lake_tables, alignment.lake_mappings,
                        alignment.target_headers, &out.provenance);
  if (!unioned.ok()) return unioned.status();
  out.unioned = std::move(unioned).value();

  out.serialized.reserve(out.unioned.num_rows());
  for (size_t r = 0; r < out.unioned.num_rows(); ++r) {
    out.serialized.push_back(table::SerializeTableRow(out.unioned, r));
  }
  out.query_serialized.reserve(query.num_rows());
  for (size_t r = 0; r < query.num_rows(); ++r) {
    out.query_serialized.push_back(table::SerializeTableRow(query, r));
  }
  return out;
}

}  // namespace dust::align
