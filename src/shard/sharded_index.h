// Sharded lake index — the architectural seam toward multi-node serving.
//
// The paper's tuple-level search "requires an index over all tuples in a
// lake"; at production scale that single index is the memory and latency
// ceiling, so systems in this space (Starmie's HNSW-backed discovery,
// EasyTUS-style large-lake union search) partition the lake once it
// outgrows one index. ShardedIndex implements index::VectorIndex by
// splitting the vectors across N child indexes of one concrete type:
//
//   - placement: round-robin (balanced by construction) or hash of the
//     vector's bytes (content-addressed, the policy a distributed router
//     can compute without coordination);
//   - ids: callers see the same global append-order ids an unsharded index
//     would assign; the shard keeps the global-id <-> (shard, local-id)
//     mapping;
//   - search: scatter-gather — every shard answers top-k for the query,
//     per-shard hits are remapped to global ids and k-way merged with
//     FinalizeHits semantics (ascending distance, ties by ascending global
//     id). For exact child indexes (flat, full-probe IVF) the result is
//     bit-identical to the unsharded index over the same vectors;
//   - persistence: the payload is a shard manifest (magic + child type +
//     placement + id mapping) followed by each shard serialized with the
//     standard index format, so sharded lakes round-trip through
//     Save/io::LoadIndex and pipeline snapshots.
#ifndef DUST_SHARD_SHARDED_INDEX_H_
#define DUST_SHARD_SHARDED_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/vector_index.h"

namespace dust::shard {

/// How Add routes a vector to a shard. Values are the on-disk tags — never
/// reorder existing ones.
enum class PlacementPolicy : uint8_t {
  kRoundRobin = 0,  ///< shard = insertion order % num_shards (balanced)
  kHash = 1,        ///< shard = FNV-1a(vector bytes) % num_shards
};

/// Stable name used in sharded specs and diagnostics ("round_robin",
/// "hash").
const char* PlacementPolicyName(PlacementPolicy policy);
/// Inverse of PlacementPolicyName; false for unknown names.
bool PlacementPolicyFromName(const std::string& name, PlacementPolicy* policy);
/// On-disk tag -> policy; IoError for unknown tags (corrupt files must
/// surface as errors, not aborts).
Status PlacementPolicyFromTag(uint8_t tag, PlacementPolicy* policy);

struct ShardedIndexConfig {
  /// Concrete type of every shard: "flat", "ivf", "lsh", or "hnsw".
  /// Nesting sharded-in-sharded is rejected.
  std::string child_type = "flat";
  size_t num_shards = 4;
  PlacementPolicy placement = PlacementPolicy::kRoundRobin;
  /// Tuning knobs forwarded to every shard's constructor.
  index::IndexOptions child_options;
};

/// Parses "sharded[:<type>[:<n>[:<placement>]]]" into `config` (missing
/// fields keep ShardedIndexConfig defaults). False — leaving `config`
/// unspecified — for anything malformed: unknown child type, nested
/// "sharded", zero/non-numeric shard count, unknown placement name.
bool ParseShardedSpec(const std::string& spec, ShardedIndexConfig* config);

/// True when `spec` names the sharded index family (i.e. is "sharded" or
/// starts with "sharded:"), whether or not the rest parses.
bool IsShardedSpec(const std::string& spec);

/// Vector index partitioned across N child indexes with scatter-gather
/// search. Thread-safety matches the base contract: concurrent Search
/// calls are safe (each child's are).
class ShardedIndex : public index::VectorIndex {
 public:
  ShardedIndex(size_t dim, la::Metric metric = la::Metric::kCosine,
               ShardedIndexConfig config = {});

  void Add(const la::Vec& v) override;
  /// Partitions the batch by placement policy and bulk-loads each shard
  /// once, so shards with a bulk AddAll (flat) keep their fast path.
  void AddAll(const std::vector<la::Vec>& vectors) override;

  /// Scatter-gather: every shard answers top-k, hits merge deterministically
  /// in shard order. With an executor installed (SetExecutor) the scatter
  /// runs on pooled threads — zero thread creation per query, the serving
  /// path; without one it spawns a thread per shard (legacy one-shot).
  std::vector<index::SearchHit> Search(const la::Vec& query,
                                       size_t k) const override;
  using index::VectorIndex::SearchBatch;
  /// Scatter-gather batch: each shard answers the whole batch with its own
  /// (internally parallel) SearchBatch, then per-query hits are merged.
  /// Shards are scanned sequentially on purpose — a child's SearchBatch
  /// already fans out across cores, and nesting another parallel layer on
  /// top would oversubscribe them. `executor` is forwarded to the children.
  std::vector<std::vector<index::SearchHit>> SearchBatch(
      const std::vector<la::Vec>& queries, size_t k,
      serve::Executor* executor) const override;

  /// Installs the executor on this index and every shard, so both the
  /// per-query scatter and the children's batch fan-out reuse one pool.
  void SetExecutor(serve::Executor* executor) override;

  /// Routes the removal to the owning shard via the (lazily built) global
  /// -> (shard, local) map, then mirrors the tombstone at the global level
  /// so IsDead/Tombstones see the same ids an unsharded index would.
  bool Remove(size_t id) override;

  /// Each child persists its own tombstones inside the manifest's embedded
  /// index files; the top-level v2 section stays empty to avoid applying
  /// them twice, and LoadPayload rebuilds the global view from the
  /// children.
  bool TombstonesInPayload() const override { return true; }

  /// Routes to the owning shard's stored vector (for Compact).
  bool GetVector(size_t id, la::Vec* out) const override;

  size_t size() const override { return total_; }
  size_t dim() const override { return dim_; }
  std::string name() const override;
  la::Metric metric() const override { return metric_; }
  std::string type_tag() const override { return "sharded"; }

  /// Writes the shard manifest followed by every shard in the standard
  /// io::WriteIndex format (header + payload), so each shard carries its
  /// own config and could be split back out into a standalone file.
  Status SavePayload(io::IndexWriter* writer) const override;
  /// Restores a manifest, validating it structurally (known child type and
  /// placement, id mapping a bijection onto [0, size), every shard's
  /// type/dim/metric/size against the manifest) before trusting any of it.
  Status LoadPayload(io::IndexReader* reader) override;

  const ShardedIndexConfig& config() const { return config_; }
  size_t num_shards() const { return shards_.size(); }
  const index::VectorIndex& shard(size_t s) const { return *shards_[s]; }
  /// Vectors currently placed in shard `s`.
  size_t shard_size(size_t s) const { return shard_ids_[s].size(); }
  /// Global id of shard `s`'s local id `local` (exposed for tests).
  size_t global_id(size_t s, size_t local) const {
    return shard_ids_[s][local];
  }

  /// Moves shard `s` and its local->global id mapping out, for serving one
  /// shard of a saved sharded lake as a standalone process (dust_shardd).
  /// Consumes this index: after any TakeShard the ShardedIndex must only be
  /// destroyed, never searched or saved.
  std::unique_ptr<index::VectorIndex> TakeShard(
      size_t s, std::vector<size_t>* global_ids);

 protected:
  /// Compacted rebuilds re-place every survivor under the same policy —
  /// exactly the index a fresh build over the survivors would produce.
  std::unique_ptr<index::VectorIndex> CloneEmpty() const override {
    return std::make_unique<ShardedIndex>(dim_, metric_, config_);
  }

 private:
  /// Shard the next Add lands in under the configured placement policy.
  size_t PlaceShard(const la::Vec& v) const;

  /// (Re)builds removal_map_ when it is stale (appends bump total_ past its
  /// size; LoadPayload clears it).
  void EnsureRemovalMap() const;

  size_t dim_;
  la::Metric metric_;
  ShardedIndexConfig config_;
  std::vector<std::unique_ptr<index::VectorIndex>> shards_;
  /// shard_ids_[s][local] = global id — the gather-side mapping. The
  /// scatter side (global -> shard) only exists implicitly: ids are
  /// assigned at Add time and never looked up by global id.
  std::vector<std::vector<size_t>> shard_ids_;
  /// Inverse of shard_ids_ — removal_map_[global] = (shard, local id) —
  /// built lazily on the first Remove/GetVector and kept until the id
  /// space changes (appends rebuild it by size mismatch, loads clear it).
  mutable std::vector<std::pair<size_t, size_t>> removal_map_;
  size_t total_ = 0;
};

}  // namespace dust::shard

#endif  // DUST_SHARD_SHARDED_INDEX_H_
