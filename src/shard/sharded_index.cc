#include "shard/sharded_index.h"

#include <cctype>
#include <thread>
#include <utility>

#include "io/index_io.h"
#include "obs/trace.h"
#include "serve/executor.h"
#include "text/hashing.h"
#include "util/status.h"
#include "util/string_util.h"

namespace dust::shard {

namespace {

// A spec or manifest claiming more shards than this is a typo or corrupt
// file, not a real lake: shard counts are "a few per node", not millions.
// Manifest counts are also bounded against the bytes remaining in the file
// at load time.
constexpr uint64_t kMaxShards = uint64_t{1} << 16;

/// Digits-only count in [1, kMaxShards]; false otherwise (no silent wrap
/// of "-5", and no count the ShardedIndex constructor would refuse — spec
/// parsing is the user-facing validation boundary).
bool ParseShardCount(const std::string& s, size_t* out) {
  if (s.empty() || s.size() > 9) return false;
  size_t value = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  if (value == 0 || value > kMaxShards) return false;
  *out = value;
  return true;
}

}  // namespace

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin:
      return "round_robin";
    case PlacementPolicy::kHash:
      return "hash";
  }
  DUST_CHECK(false && "unhandled placement policy");
  return "";
}

bool PlacementPolicyFromName(const std::string& name,
                             PlacementPolicy* policy) {
  if (name == "round_robin") {
    *policy = PlacementPolicy::kRoundRobin;
  } else if (name == "hash") {
    *policy = PlacementPolicy::kHash;
  } else {
    return false;
  }
  return true;
}

Status PlacementPolicyFromTag(uint8_t tag, PlacementPolicy* policy) {
  switch (tag) {
    case 0:
      *policy = PlacementPolicy::kRoundRobin;
      return Status::Ok();
    case 1:
      *policy = PlacementPolicy::kHash;
      return Status::Ok();
    default:
      return Status::IoError("unknown shard placement tag " +
                             std::to_string(static_cast<int>(tag)));
  }
}

bool IsShardedSpec(const std::string& spec) {
  return spec == "sharded" || spec.rfind("sharded:", 0) == 0;
}

bool ParseShardedSpec(const std::string& spec, ShardedIndexConfig* config) {
  if (!IsShardedSpec(spec)) return false;
  std::vector<std::string> parts = Split(spec, ':');
  ShardedIndexConfig parsed;
  if (parts.size() > 4) return false;
  if (parts.size() >= 2) {
    // The child must be a concrete type: nesting sharded-in-sharded would
    // compound the merge fan-out for no placement benefit.
    if (IsShardedSpec(parts[1]) || !index::IsKnownIndexType(parts[1])) {
      return false;
    }
    parsed.child_type = parts[1];
  }
  if (parts.size() >= 3 && !ParseShardCount(parts[2], &parsed.num_shards)) {
    return false;
  }
  if (parts.size() >= 4 &&
      !PlacementPolicyFromName(parts[3], &parsed.placement)) {
    return false;
  }
  *config = std::move(parsed);
  return true;
}

ShardedIndex::ShardedIndex(size_t dim, la::Metric metric,
                           ShardedIndexConfig config)
    : dim_(dim), metric_(metric), config_(std::move(config)) {
  DUST_CHECK(config_.num_shards >= 1 && "a sharded index needs >= 1 shard");
  DUST_CHECK(config_.num_shards <= kMaxShards);
  DUST_CHECK(!IsShardedSpec(config_.child_type) &&
             index::IsKnownIndexType(config_.child_type) &&
             "shard child must be a concrete index type");
  DUST_CHECK(index::ValidateIndexMetric(config_.child_type, metric_).ok() &&
             "shard child type does not support this metric");
  shards_.reserve(config_.num_shards);
  for (size_t s = 0; s < config_.num_shards; ++s) {
    shards_.push_back(index::MakeVectorIndex(config_.child_type, dim_,
                                             metric_, config_.child_options));
  }
  shard_ids_.resize(config_.num_shards);
}

size_t ShardedIndex::PlaceShard(const la::Vec& v) const {
  if (config_.placement == PlacementPolicy::kRoundRobin) {
    return total_ % shards_.size();
  }
  // Content-addressed placement: hash the raw float bytes so the same
  // vector always lands on the same shard, independent of insertion order.
  const std::string_view bytes(reinterpret_cast<const char*>(v.data()),
                               v.size() * sizeof(float));
  return static_cast<size_t>(text::HashString(bytes) % shards_.size());
}

void ShardedIndex::Add(const la::Vec& v) {
  DUST_CHECK(v.size() == dim_);
  const size_t s = PlaceShard(v);
  shards_[s]->Add(v);
  shard_ids_[s].push_back(total_++);
}

void ShardedIndex::AddAll(const std::vector<la::Vec>& vectors) {
  // Route the whole batch first, then hand each shard its vectors in one
  // bulk call — same ids as per-vector Add, but flat shards reserve and
  // fill their norm caches once. Buckets hold indices, not copies, and the
  // per-shard batch is materialized one shard at a time, so whole-lake
  // ingest peaks at one extra shard of vectors rather than a second copy
  // of the entire lake.
  std::vector<std::vector<size_t>> buckets(shards_.size());
  for (size_t i = 0; i < vectors.size(); ++i) {
    DUST_CHECK(vectors[i].size() == dim_);
    const size_t s = PlaceShard(vectors[i]);
    buckets[s].push_back(i);
    shard_ids_[s].push_back(total_++);
  }
  std::vector<la::Vec> batch;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (buckets[s].empty()) continue;
    batch.clear();
    batch.reserve(buckets[s].size());
    for (size_t i : buckets[s]) batch.push_back(vectors[i]);
    shards_[s]->AddAll(batch);
  }
}

std::vector<index::SearchHit> ShardedIndex::Search(const la::Vec& query,
                                                   size_t k) const {
  // Scatter: every shard answers top-k in parallel (a hit beyond a shard's
  // own top-k can never enter the merged top-k, so per-shard k is enough).
  std::vector<std::vector<index::SearchHit>> per_shard(shards_.size());
  const obs::TraceContext trace_ctx = obs::CurrentContext();
  if (shards_.size() > 1 && executor_ != nullptr) {
    // Serving path: the scatter reuses the shared pool instead of creating
    // shards_-1 threads on every query.
    executor_->ParallelFor(shards_.size(), [&](size_t s) {
      obs::ScopedTraceContext trace_scope(trace_ctx);
      obs::Span span("scatter");
      span.AddTag("shard", static_cast<uint64_t>(s));
      per_shard[s] = shards_[s]->Search(query, k);
    });
  } else if (shards_.size() > 1) {
    std::vector<std::thread> workers;
    workers.reserve(shards_.size() - 1);
    for (size_t s = 1; s < shards_.size(); ++s) {
      workers.emplace_back([this, &per_shard, &query, k, s] {
        per_shard[s] = shards_[s]->Search(query, k);
      });
    }
    per_shard[0] = shards_[0]->Search(query, k);
    for (std::thread& w : workers) w.join();
  } else {
    per_shard[0] = shards_[0]->Search(query, k);
  }
  // Gather: remap local ids to global and k-way merge. Merging in shard
  // order then FinalizeHits keeps the result deterministic (ascending
  // distance, ties by ascending global id) regardless of thread timing.
  std::vector<index::SearchHit> hits;
  hits.reserve(shards_.size() * k);
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (const index::SearchHit& hit : per_shard[s]) {
      hits.push_back({shard_ids_[s][hit.id], hit.distance});
    }
  }
  index::FinalizeHits(&hits, k);
  return hits;
}

std::vector<std::vector<index::SearchHit>> ShardedIndex::SearchBatch(
    const std::vector<la::Vec>& queries, size_t k,
    serve::Executor* executor) const {
  std::vector<std::vector<index::SearchHit>> results(queries.size());
  if (queries.empty()) return results;
  // Shards run sequentially, each answering the whole batch with its own
  // internally-parallel SearchBatch; a second parallel layer across shards
  // would only oversubscribe the cores the children already use. (The base
  // default of Search-per-query would instead spawn a shard fan-out per
  // query.)
  std::vector<std::vector<std::vector<index::SearchHit>>> per_shard;
  per_shard.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    obs::Span span("scatter_batch");
    span.AddTag("shard", static_cast<uint64_t>(s));
    per_shard.push_back(shards_[s]->SearchBatch(queries, k, executor));
  }
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<index::SearchHit> hits;
    hits.reserve(shards_.size() * k);
    for (size_t s = 0; s < shards_.size(); ++s) {
      for (const index::SearchHit& hit : per_shard[s][q]) {
        hits.push_back({shard_ids_[s][hit.id], hit.distance});
      }
    }
    index::FinalizeHits(&hits, k);
    results[q] = std::move(hits);
  }
  return results;
}

void ShardedIndex::EnsureRemovalMap() const {
  if (removal_map_.size() == total_) return;
  removal_map_.assign(total_, {0, 0});
  for (size_t s = 0; s < shard_ids_.size(); ++s) {
    for (size_t local = 0; local < shard_ids_[s].size(); ++local) {
      removal_map_[shard_ids_[s][local]] = {s, local};
    }
  }
}

bool ShardedIndex::Remove(size_t id) {
  if (id >= total_) return false;
  EnsureRemovalMap();
  const auto [s, local] = removal_map_[id];
  if (!shards_[s]->Remove(local)) return false;
  // Mirror the tombstone at the global level so IsDead/live_size answer
  // without consulting the children.
  if (dead_.size() < total_) dead_.resize(total_, 0);
  dead_[id] = 1;
  ++num_dead_;
  return true;
}

bool ShardedIndex::GetVector(size_t id, la::Vec* out) const {
  if (id >= total_) return false;
  EnsureRemovalMap();
  const auto [s, local] = removal_map_[id];
  return shards_[s]->GetVector(local, out);
}

void ShardedIndex::SetExecutor(serve::Executor* executor) {
  index::VectorIndex::SetExecutor(executor);
  for (const std::unique_ptr<index::VectorIndex>& shard : shards_) {
    shard->SetExecutor(executor);
  }
}

std::unique_ptr<index::VectorIndex> ShardedIndex::TakeShard(
    size_t s, std::vector<size_t>* global_ids) {
  DUST_CHECK(s < shards_.size());
  *global_ids = std::move(shard_ids_[s]);
  return std::move(shards_[s]);
}

std::string ShardedIndex::name() const {
  return "Sharded[" + std::to_string(shards_.size()) + "x" +
         (shards_.empty() ? config_.child_type : shards_[0]->name()) + "]";
}

Status ShardedIndex::SavePayload(io::IndexWriter* writer) const {
  writer->WriteBytes(io::kShardManifestMagic, sizeof(io::kShardManifestMagic));
  writer->WriteString(config_.child_type);
  writer->WriteU8(static_cast<uint8_t>(config_.placement));
  writer->WriteU64(shards_.size());
  writer->WriteU64(total_);
  for (const std::vector<size_t>& ids : shard_ids_) writer->WriteIds(ids);
  DUST_RETURN_IF_ERROR(writer->status());
  for (const std::unique_ptr<index::VectorIndex>& shard : shards_) {
    // Full header + payload per shard: each carries its own config and
    // round-trips through the same reader a standalone file would.
    DUST_RETURN_IF_ERROR(io::WriteIndex(*shard, writer));
  }
  return writer->status();
}

Status ShardedIndex::LoadPayload(io::IndexReader* reader) {
  // A crafted file can embed a sharded-tagged index as a "shard" (the
  // manifest's child-type string is only cross-checked after the child
  // loads), which would recurse ReadIndex -> LoadPayload per nesting level
  // until the stack overflows. Real files are never nested, so any
  // re-entrant load on this thread is corrupt input, not a lake.
  thread_local bool loading = false;
  if (loading) {
    return Status::IoError("shard manifest nests a sharded index");
  }
  loading = true;
  struct LoadingGuard {
    bool* flag;
    ~LoadingGuard() { *flag = false; }
  } guard{&loading};
  DUST_RETURN_IF_ERROR(
      reader->ExpectMagic(io::kShardManifestMagic, "DUST shard manifest"));
  std::string child_type;
  DUST_RETURN_IF_ERROR(reader->ReadString(&child_type));
  if (IsShardedSpec(child_type) || !index::IsKnownIndexType(child_type)) {
    return Status::IoError("shard manifest has unusable child type: " +
                           child_type);
  }
  uint8_t placement_tag = 0;
  DUST_RETURN_IF_ERROR(reader->ReadU8(&placement_tag));
  PlacementPolicy placement = PlacementPolicy::kRoundRobin;
  DUST_RETURN_IF_ERROR(PlacementPolicyFromTag(placement_tag, &placement));
  uint64_t num_shards = 0;
  DUST_RETURN_IF_ERROR(reader->ReadU64(&num_shards));
  // Every shard still owes at least an id-list count; bound the claimed
  // shard count by the bytes physically left in the file.
  if (num_shards == 0 || num_shards > kMaxShards ||
      num_shards > reader->remaining() / sizeof(uint64_t)) {
    return Status::IoError("shard manifest has corrupt shard count");
  }
  uint64_t total = 0;
  DUST_RETURN_IF_ERROR(reader->ReadU64(&total));

  // The id mapping must be a bijection onto [0, total): a hole would make
  // gather emit an id nobody owns, a duplicate would double-count one.
  std::vector<std::vector<size_t>> shard_ids(num_shards);
  uint64_t mapped = 0;
  for (uint64_t s = 0; s < num_shards; ++s) {
    DUST_RETURN_IF_ERROR(reader->ReadIds(&shard_ids[s]));
    mapped += shard_ids[s].size();
  }
  if (mapped != total) {
    return Status::IoError("shard manifest id lists do not cover the index");
  }
  std::vector<uint8_t> seen(total, 0);
  for (const std::vector<size_t>& ids : shard_ids) {
    for (size_t id : ids) {
      if (id >= total || seen[id]) {
        return Status::IoError("shard manifest id mapping is not a bijection");
      }
      seen[id] = 1;
    }
  }

  std::vector<std::unique_ptr<index::VectorIndex>> children;
  children.reserve(num_shards);
  for (uint64_t s = 0; s < num_shards; ++s) {
    Result<std::unique_ptr<index::VectorIndex>> child = io::ReadIndex(reader);
    DUST_RETURN_IF_ERROR(child.status());
    std::unique_ptr<index::VectorIndex> loaded = std::move(child).value();
    if (loaded->type_tag() != child_type) {
      return Status::IoError("shard " + std::to_string(s) +
                             " type does not match manifest");
    }
    if (loaded->dim() != dim_ || loaded->metric() != metric_) {
      return Status::IoError("shard " + std::to_string(s) +
                             " dim/metric does not match the outer header");
    }
    if (loaded->size() != shard_ids[s].size()) {
      return Status::IoError("shard " + std::to_string(s) +
                             " size does not match the manifest id mapping");
    }
    children.push_back(std::move(loaded));
  }

  config_.child_type = std::move(child_type);
  config_.num_shards = static_cast<size_t>(num_shards);
  config_.placement = placement;
  shards_ = std::move(children);
  shard_ids_ = std::move(shard_ids);
  total_ = static_cast<size_t>(total);
  // The freshly loaded children replaced the ones SetExecutor may have
  // visited; re-install so a serving process can load after wiring.
  for (const std::unique_ptr<index::VectorIndex>& shard : shards_) {
    shard->SetExecutor(executor_);
  }
  // Rebuild the global tombstone view from the children's own (persisted)
  // tombstones: each child local id maps back through shard_ids_. The
  // removal map is stale for the new id space; drop it so the next
  // Remove/GetVector rebuilds it.
  dead_.clear();
  num_dead_ = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (size_t local : shards_[s]->Tombstones()) {
      if (dead_.size() < total_) dead_.resize(total_, 0);
      dead_[shard_ids_[s][local]] = 1;
      ++num_dead_;
    }
  }
  removal_map_.clear();
  return Status::Ok();
}

}  // namespace dust::shard
