#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <mutex>
#include <thread>

#include "util/rng.h"

namespace dust {
namespace obs {
namespace {

thread_local TraceContext tls_context;

uint64_t HashedThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

uint64_t NewId() {
  // Distinct processes seed distinct SplitMix64 streams (pid + clock at
  // first use), so router- and shard-side ids never collide in practice.
  static const uint64_t seed =
      (static_cast<uint64_t>(::getpid()) << 32) ^
      static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count());
  static std::atomic<uint64_t> counter{0};
  uint64_t id = 0;
  while (id == 0) {
    id = SplitMix64(seed + counter.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

}  // namespace

const TraceContext& CurrentContext() { return tls_context; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : saved_(tls_context) {
  tls_context = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { tls_context = saved_; }

uint64_t NewTraceId() { return NewId(); }
uint64_t NewSpanId() { return NewId(); }

bool ValidSampleRate(double rate) {
  return std::isfinite(rate) && rate >= 0.0 && rate <= 1.0;
}

Sampler::Sampler(double rate) : rate_(ValidSampleRate(rate) ? rate : 0.0) {}

bool Sampler::Sample() {
  if (rate_ <= 0.0) return false;
  if (rate_ >= 1.0) return true;
  const uint64_t n = n_.fetch_add(1, std::memory_order_relaxed);
  const double before = std::floor(static_cast<double>(n) * rate_);
  const double after = std::floor(static_cast<double>(n + 1) * rate_);
  return after > before;
}

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// SpanCollector.
// ---------------------------------------------------------------------------

struct SpanCollector::Stripe {
  mutable std::mutex mu;
  std::vector<SpanRecord> ring;  // sized to capacity up front
  size_t next = 0;               // next write slot
  size_t count = 0;              // filled slots, <= ring.size()
};

SpanCollector::SpanCollector(size_t capacity, size_t stripes) {
  if (stripes == 0) stripes = 1;
  if (capacity < stripes) capacity = stripes;
  per_stripe_capacity_ = capacity / stripes;
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    auto stripe = std::make_unique<Stripe>();
    stripe->ring.resize(per_stripe_capacity_);
    stripes_.push_back(std::move(stripe));
  }
}

SpanCollector::~SpanCollector() = default;

SpanCollector::Stripe& SpanCollector::StripeForThisThread() const {
  return *stripes_[HashedThreadId() % stripes_.size()];
}

void SpanCollector::Record(SpanRecord record) {
  Stripe& stripe = StripeForThisThread();
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (stripe.count == stripe.ring.size()) {
      // Full: `next` points at the oldest slot; overwrite it.
      dropped_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++stripe.count;
    }
    stripe.ring[stripe.next] = std::move(record);
    stripe.next = (stripe.next + 1) % stripe.ring.size();
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> SpanCollector::Snapshot() const {
  std::vector<SpanRecord> out;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    const size_t size = stripe->ring.size();
    // Oldest retained record sits `count` slots behind `next`.
    size_t pos = (stripe->next + size - stripe->count) % size;
    for (size_t i = 0; i < stripe->count; ++i) {
      out.push_back(stripe->ring[pos]);
      pos = (pos + 1) % size;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.span_id < b.span_id;
            });
  return out;
}

std::vector<SpanRecord> SpanCollector::CollectTrace(uint64_t trace_id) const {
  std::vector<SpanRecord> all = Snapshot();
  std::vector<SpanRecord> out;
  for (auto& record : all) {
    if (record.trace_id == trace_id) out.push_back(std::move(record));
  }
  return out;
}

void SpanCollector::Clear() {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->next = 0;
    stripe->count = 0;
  }
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

SpanCollector& SpanCollector::Global() {
  // Leaked on purpose: spans may be recorded from detached threads during
  // process teardown, after static destructors would have run.
  static SpanCollector* global = new SpanCollector();
  return *global;
}

// ---------------------------------------------------------------------------
// Span.
// ---------------------------------------------------------------------------

void Span::Start(const char* name, SpanCollector* collector) {
  const TraceContext& ctx = tls_context;
  if (!ctx.sampled) return;
  recording_ = true;
  collector_ = collector != nullptr ? collector : &SpanCollector::Global();
  saved_ = ctx;
  record_.trace_id = ctx.trace_id;
  record_.span_id = NewSpanId();
  record_.parent_span_id = ctx.span_id;
  record_.name = name;
  record_.thread_id = HashedThreadId();
  tls_context = TraceContext{ctx.trace_id, record_.span_id, true};
  record_.start_us = SteadyNowMicros();
}

Span::Span(const char* name, SpanCollector* collector) {
  Start(name, collector);
}

Span::Span(const std::string& name, SpanCollector* collector) {
  // The temporary `name` outlives this constructor call; Start() copies it
  // into the record only when the trace is sampled.
  Start(name.c_str(), collector);
}

Span::~Span() {
  if (!recording_) return;
  const int64_t end_us = SteadyNowMicros();
  record_.duration_us = end_us > record_.start_us ? end_us - record_.start_us
                                                  : 0;
  tls_context = saved_;
  collector_->Record(std::move(record_));
}

void Span::AddTag(const char* key, const std::string& value) {
  if (!recording_) return;
  if (!record_.tags.empty()) record_.tags += ',';
  record_.tags += key;
  record_.tags += '=';
  record_.tags += value;
}

void Span::AddTag(const char* key, uint64_t value) {
  if (!recording_) return;
  AddTag(key, std::to_string(value));
}

uint64_t RecordSpan(uint64_t trace_id, uint64_t span_id,
                    uint64_t parent_span_id, const char* name,
                    int64_t start_us, int64_t end_us,
                    SpanCollector* collector) {
  SpanRecord record;
  record.trace_id = trace_id;
  record.span_id = span_id != 0 ? span_id : NewSpanId();
  record.parent_span_id = parent_span_id;
  record.name = name;
  record.start_us = start_us;
  record.duration_us = end_us > start_us ? end_us - start_us : 0;
  record.thread_id = HashedThreadId();
  const uint64_t id = record.span_id;
  (collector != nullptr ? collector : &SpanCollector::Global())
      ->Record(std::move(record));
  return id;
}

}  // namespace obs
}  // namespace dust
