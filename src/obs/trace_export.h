// Exporters for recorded spans: Chrome trace-event JSON (loadable in
// chrome://tracing or https://ui.perfetto.dev) and a human-readable
// indented span tree for slow-query logs and CLI output.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/status.h"

namespace dust {
namespace obs {

/// Renders `records` as Chrome trace-event JSON. Every span becomes a
/// complete ("ph":"X") event with ts/dur in microseconds on the shared
/// steady-clock base; trace/span/parent ids ride in `args` as hex strings
/// so they survive JSON number precision. `process_label` names this
/// process in the trace viewer via a process_name metadata event.
std::string ExportChromeTrace(const std::vector<SpanRecord>& records,
                              const std::string& process_label);

/// Writes `ExportChromeTrace(records, process_label)` to `path`.
Status WriteChromeTrace(const std::string& path,
                        const std::vector<SpanRecord>& records,
                        const std::string& process_label);

/// Renders the spans of one trace as an indented tree, children ordered
/// by start time, each line showing the span name, duration, and offset
/// from the trace's first span. Spans whose parent is absent from
/// `records` (e.g. the remote half of a cross-process trace) are printed
/// as roots.
std::string RenderSpanTree(uint64_t trace_id,
                           const std::vector<SpanRecord>& records);

}  // namespace obs
}  // namespace dust
