#include "obs/trace_export.h"

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace dust {
namespace obs {
namespace {

std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string HexId(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(id));
  return buf;
}

// Chrome wants small stable tids; fold the hashed thread id down while
// keeping distinct threads almost surely distinct within one trace file.
uint64_t CompactTid(uint64_t thread_id) { return thread_id % 1000000; }

}  // namespace

std::string ExportChromeTrace(const std::vector<SpanRecord>& records,
                              const std::string& process_label) {
  const long long pid = static_cast<long long>(::getpid());
  std::string out = "{\"traceEvents\":[\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%lld,"
                "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                pid, EscapeJson(process_label).c_str());
  out += buf;
  for (const SpanRecord& record : records) {
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"name\":\"%s\",\"cat\":\"dust\",\"ph\":\"X\","
                  "\"ts\":%lld,\"dur\":%lld,\"pid\":%lld,\"tid\":%llu,",
                  EscapeJson(record.name).c_str(),
                  static_cast<long long>(record.start_us),
                  static_cast<long long>(record.duration_us), pid,
                  static_cast<unsigned long long>(
                      CompactTid(record.thread_id)));
    out += buf;
    out += "\"args\":{\"trace_id\":\"" + HexId(record.trace_id) +
           "\",\"span_id\":\"" + HexId(record.span_id) +
           "\",\"parent_span_id\":\"" + HexId(record.parent_span_id) + "\"";
    if (!record.tags.empty()) {
      out += ",\"tags\":\"" + EscapeJson(record.tags) + "\"";
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<SpanRecord>& records,
                        const std::string& process_label) {
  const std::string json = ExportChromeTrace(records, process_label);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IoError("short write to trace output file: " + path);
  }
  return Status::Ok();
}

std::string RenderSpanTree(uint64_t trace_id,
                           const std::vector<SpanRecord>& records) {
  std::vector<const SpanRecord*> spans;
  for (const SpanRecord& record : records) {
    if (record.trace_id == trace_id) spans.push_back(&record);
  }
  if (spans.empty()) {
    return "trace " + HexId(trace_id) + " (no spans retained)\n";
  }
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              if (a->start_us != b->start_us) return a->start_us < b->start_us;
              return a->span_id < b->span_id;
            });
  const int64_t origin_us = spans.front()->start_us;

  std::unordered_set<uint64_t> known;
  for (const SpanRecord* span : spans) known.insert(span->span_id);
  std::unordered_map<uint64_t, std::vector<const SpanRecord*>> children;
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord* span : spans) {
    if (span->parent_span_id != 0 && known.count(span->parent_span_id) > 0 &&
        span->parent_span_id != span->span_id) {
      children[span->parent_span_id].push_back(span);
    } else {
      roots.push_back(span);
    }
  }

  std::string out = "trace " + HexId(trace_id) + " (" +
                    std::to_string(spans.size()) + " spans)\n";
  // Iterative DFS with a depth cap as a guard against malformed cycles.
  struct Frame {
    const SpanRecord* span;
    size_t depth;
  };
  std::vector<Frame> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back({*it, 0});
  }
  constexpr size_t kMaxDepth = 64;
  char line[192];
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    std::string indent(2 * (frame.depth + 1), ' ');
    std::snprintf(line, sizeof(line), "%s%s %.3fms @+%.3fms%s%s\n",
                  indent.c_str(), frame.span->name.c_str(),
                  static_cast<double>(frame.span->duration_us) / 1000.0,
                  static_cast<double>(frame.span->start_us - origin_us) /
                      1000.0,
                  frame.span->tags.empty() ? "" : " ",
                  frame.span->tags.c_str());
    out += line;
    if (frame.depth + 1 >= kMaxDepth) continue;
    auto it = children.find(frame.span->span_id);
    if (it == children.end()) continue;
    for (auto child = it->second.rbegin(); child != it->second.rend();
         ++child) {
      stack.push_back({*child, frame.depth + 1});
    }
  }
  return out;
}

}  // namespace obs
}  // namespace dust
