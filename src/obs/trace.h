// Request tracing: trace contexts, RAII spans, and a bounded collector.
//
// A `TraceContext` names the current trace (trace_id), the span that any
// child work should parent under (span_id), and whether the trace is
// sampled. The context is propagated through a thread-local slot: install
// it with `ScopedTraceContext`, read it with `CurrentContext()`. Worker
// lambdas that hop threads (Executor::ParallelFor bodies) capture the
// context by value at the call site and install it inside the lambda.
//
// `Span` is the RAII recorder: on construction it reads the thread-local
// context and, when the trace is sampled, allocates a span id, installs
// itself as the current parent, and stamps the start time; on destruction
// it restores the previous context and pushes a `SpanRecord` into a
// `SpanCollector`. When the trace is NOT sampled the constructor reads one
// thread-local flag and does nothing else — no clock read, no allocation —
// so tracing costs nothing on untraced requests.
//
// `SpanCollector` is a lock-striped fixed-size ring (drop-oldest with a
// drop counter). Recording takes one short striped mutex and never
// allocates beyond moving the record in, so the hot path never blocks on
// exporters. `SpanCollector::Global()` is the process-wide instance used
// by default; tests can pass their own collector.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dust {
namespace obs {

// ---------------------------------------------------------------------------
// Trace context.
// ---------------------------------------------------------------------------

struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  // Span that new child spans parent under.
  bool sampled = false;
};

/// Returns the calling thread's current trace context (all-zero when no
/// trace is installed).
const TraceContext& CurrentContext();

/// Installs `ctx` as the calling thread's trace context for the scope's
/// lifetime and restores the previous context on destruction.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// Process-unique non-zero 64-bit ids (SplitMix64 over a pid/time seed and
/// a global counter; distinct processes draw from distinct streams).
uint64_t NewTraceId();
uint64_t NewSpanId();

/// True iff `rate` is a finite value in [0, 1].
bool ValidSampleRate(double rate);

/// Deterministic rate-based sampler: the n-th call samples iff
/// floor((n+1)*rate) > floor(n*rate), so exactly round(n*rate) of the
/// first n decisions sample regardless of timing. Thread-safe.
class Sampler {
 public:
  explicit Sampler(double rate);

  /// Returns true when this decision is sampled.
  bool Sample();

  double rate() const { return rate_; }

 private:
  double rate_;
  std::atomic<uint64_t> n_{0};
};

// ---------------------------------------------------------------------------
// Span records and the bounded collector.
// ---------------------------------------------------------------------------

struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = root span of its process.
  std::string name;
  int64_t start_us = 0;     // steady-clock microseconds (machine-wide base).
  int64_t duration_us = 0;  // >= 0
  uint64_t thread_id = 0;   // hashed std::thread::id
  std::string tags;         // "key=value" pairs, comma separated; may be "".
};

/// Steady-clock microseconds. CLOCK_MONOTONIC shares one base across
/// processes on a machine, so router and shard timelines line up.
int64_t SteadyNowMicros();

class SpanCollector {
 public:
  static constexpr size_t kDefaultCapacity = 16384;
  static constexpr size_t kDefaultStripes = 8;

  explicit SpanCollector(size_t capacity = kDefaultCapacity,
                         size_t stripes = kDefaultStripes);
  ~SpanCollector();  // out of line: Stripe is incomplete here

  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Appends one record; when the caller's stripe is full the oldest
  /// record in that stripe is overwritten and the drop counter bumped.
  void Record(SpanRecord record);

  /// All retained records, sorted by start time (ties by span id).
  std::vector<SpanRecord> Snapshot() const;

  /// Retained records belonging to `trace_id`, sorted by start time.
  std::vector<SpanRecord> CollectTrace(uint64_t trace_id) const;

  uint64_t recorded_total() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_total() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return stripes_.size() * per_stripe_capacity_; }

  /// Discards retained records and resets both counters (tests).
  void Clear();

  /// Process-wide collector used by `Span` by default.
  static SpanCollector& Global();

 private:
  struct Stripe;

  Stripe& StripeForThisThread() const;

  size_t per_stripe_capacity_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
};

// ---------------------------------------------------------------------------
// RAII span.
// ---------------------------------------------------------------------------

class Span {
 public:
  /// Starts a span under the calling thread's context. No-op (no clock
  /// read) when the current trace is unsampled. The name is only copied
  /// when recording.
  explicit Span(const char* name, SpanCollector* collector = nullptr);
  explicit Span(const std::string& name, SpanCollector* collector = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool recording() const { return recording_; }
  /// This span's id (0 when not recording). Children started while this
  /// span is current parent under this id.
  uint64_t span_id() const { return record_.span_id; }

  /// Appends a "key=value" tag. No-op when not recording.
  void AddTag(const char* key, const std::string& value);
  void AddTag(const char* key, uint64_t value);

 private:
  void Start(const char* name, SpanCollector* collector);

  bool recording_ = false;
  SpanCollector* collector_ = nullptr;
  TraceContext saved_;
  SpanRecord record_;
};

/// Records a span with explicit endpoints (for intervals whose start
/// predates any scope, e.g. queue wait measured at dispatch). `span_id`
/// of 0 allocates a fresh id. Returns the recorded span id.
uint64_t RecordSpan(uint64_t trace_id, uint64_t span_id,
                    uint64_t parent_span_id, const char* name,
                    int64_t start_us, int64_t end_us,
                    SpanCollector* collector = nullptr);

}  // namespace obs
}  // namespace dust
