#include "llm/simulated_llm.h"

#include <algorithm>

#include "table/serialize.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace dust::llm {

size_t SimulatedLlm::CountTableTokens(const table::Table& t) {
  size_t tokens = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    tokens += text::ApproxTokenCount(table::SerializeTableRow(t, r));
  }
  return tokens;
}

Result<table::Table> SimulatedLlm::GenerateDiverseTuples(
    const table::Table& query, size_t k) const {
  if (query.num_columns() == 0 || query.num_rows() == 0) {
    return Status::InvalidArgument("query table is empty");
  }
  size_t input_tokens = CountTableTokens(query);
  if (input_tokens > config_.max_input_tokens) {
    return Status::FailedPrecondition(
        "query exceeds the LLM input token limit (" +
        std::to_string(input_tokens) + " > " +
        std::to_string(config_.max_input_tokens) + ")");
  }

  Rng rng(config_.seed ^ (input_tokens * 2654435761ULL));
  table::Table out("llm_generated");
  for (const std::string& h : query.ColumnNames()) out.AddColumn(h);

  // Per-column value pools observed in the "prompt" (the query table).
  std::vector<std::vector<std::string>> pools(query.num_columns());
  for (size_t j = 0; j < query.num_columns(); ++j) {
    for (const table::Value& v : query.column(j).values) {
      if (!v.is_null()) pools[j].push_back(v.text());
    }
  }

  size_t novel_budget = std::max<size_t>(
      3, static_cast<size_t>(config_.novel_fraction * static_cast<double>(k)));
  size_t output_tokens = 0;
  std::vector<std::vector<table::Value>> generated;

  for (size_t i = 0; i < k; ++i) {
    std::vector<table::Value> row;
    if (i < novel_budget || generated.empty()) {
      // Novel recombination: mix values across query rows and mutate
      // entity-ish strings by splicing words from other cells ("plausible
      // hallucination").
      row.reserve(query.num_columns());
      for (size_t j = 0; j < query.num_columns(); ++j) {
        if (pools[j].empty()) {
          row.push_back(table::Value::Null());
          continue;
        }
        std::string value = pools[j][rng.NextBelow(pools[j].size())];
        if (rng.NextBernoulli(0.5) && pools[j].size() >= 2) {
          const std::string& other = pools[j][rng.NextBelow(pools[j].size())];
          std::vector<std::string> w1 = text::WordTokens(value);
          std::vector<std::string> w2 = text::WordTokens(other);
          if (!w1.empty() && !w2.empty()) {
            w1[rng.NextBelow(w1.size())] = w2[rng.NextBelow(w2.size())];
            std::string mixed;
            for (size_t w = 0; w < w1.size(); ++w) {
              if (w > 0) mixed += ' ';
              mixed += w1[w];
            }
            value = mixed;
          }
        }
        row.push_back(table::Value(value));
      }
    } else if (rng.NextBernoulli(config_.copy_query_probability)) {
      // Redundant: re-emit a query tuple (the degenerate behaviour).
      row = query.Row(rng.NextBelow(query.num_rows()));
    } else {
      // Redundant: re-emit a previously generated tuple, maybe with one
      // cell swapped.
      row = generated[rng.NextBelow(generated.size())];
      if (rng.NextBernoulli(0.3)) {
        size_t j = rng.NextBelow(row.size());
        if (!pools[j].empty()) {
          row[j] = table::Value(pools[j][rng.NextBelow(pools[j].size())]);
        }
      }
    }

    // Output token metering.
    size_t row_tokens = 2;
    for (const table::Value& v : row) {
      row_tokens += v.is_null() ? 1 : text::ApproxTokenCount(v.text()) + 1;
    }
    if (output_tokens + row_tokens > config_.max_output_tokens) break;
    output_tokens += row_tokens;
    generated.push_back(row);
    DUST_CHECK(out.AddRow(std::move(row)).ok());
  }
  return out;
}

}  // namespace dust::llm
