// Simulated LLM baseline (Sec. 6.5.1, GPT-3 via the A.2.4 prompt).
//
// Behavioural model calibrated to the paper's observations:
//  - refuses queries whose serialized form exceeds the input token limit
//    ("LLM was not scalable for query tables with a large number of
//    tuples", Sec. 6.5.2);
//  - the output is capped by the output token budget, so large k is
//    impossible ("DUST could be scalable to search for 100s of tuples
//    whereas LLM could not");
//  - the first few generated tuples are genuinely novel recombinations,
//    after which generation degrades into near-duplicates ("the LLM
//    generates a few diverse tuples but subsequently produces redundant
//    ones").
#ifndef DUST_LLM_SIMULATED_LLM_H_
#define DUST_LLM_SIMULATED_LLM_H_

#include <cstdint>

#include "table/table.h"
#include "util/status.h"

namespace dust::llm {

struct LlmConfig {
  size_t max_input_tokens = 2048;
  size_t max_output_tokens = 1024;
  /// Tuples generated before redundancy sets in, as a fraction of k
  /// (at least 3).
  double novel_fraction = 0.3;
  /// Probability that a redundant tuple copies a query tuple rather than a
  /// previously generated one.
  double copy_query_probability = 0.4;
  uint64_t seed = 2718;
};

/// Deterministic generative baseline over a query table's vocabulary.
class SimulatedLlm {
 public:
  explicit SimulatedLlm(LlmConfig config = {}) : config_(config) {}

  /// Implements the A.2.4 prompt: "Generate {k} new tuples that are
  /// unionable to the query table ... non-redundant and diverse".
  /// Fails with FailedPrecondition when the query exceeds the input token
  /// budget; silently truncates the output at the output token budget.
  Result<table::Table> GenerateDiverseTuples(const table::Table& query,
                                             size_t k) const;

  /// Token count the model would bill for serializing `t`.
  static size_t CountTableTokens(const table::Table& t);

 private:
  LlmConfig config_;
};

}  // namespace dust::llm

#endif  // DUST_LLM_SIMULATED_LLM_H_
