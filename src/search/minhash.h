// MinHash sketches for Jaccard estimation between column value sets — one
// of the D3L-style unionability signals (value overlap, Sec. 6.5.1).
#ifndef DUST_SEARCH_MINHASH_H_
#define DUST_SEARCH_MINHASH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dust::search {

/// Fixed-width MinHash sketch of a string set.
class MinHashSketch {
 public:
  /// Zero-width sketch of the empty set (placeholder; estimates 0 against
  /// everything).
  MinHashSketch() = default;

  /// Builds a sketch with `num_hashes` permutations (seeded deterministically).
  MinHashSketch(const std::vector<std::string>& items, size_t num_hashes = 64,
                uint64_t seed = 7777);

  /// Reconstructs a persisted sketch (the io snapshot round-trip); `mins`
  /// must be the `mins()` of a sketch saved with the same configuration.
  static MinHashSketch FromState(std::vector<uint64_t> mins, bool empty);

  /// Estimated Jaccard similarity with another sketch of the same
  /// configuration. Incomparable sketches — different widths, or zero
  /// width — and empty sets estimate 0.0 rather than aborting or dividing
  /// by zero.
  double EstimateJaccard(const MinHashSketch& other) const;

  size_t num_hashes() const { return mins_.size(); }
  bool empty() const { return empty_; }
  /// Raw per-permutation minima (snapshot persistence).
  const std::vector<uint64_t>& mins() const { return mins_; }

 private:
  std::vector<uint64_t> mins_;
  bool empty_ = true;
};

/// Exact Jaccard similarity of two string sets (for tests / small inputs).
double ExactJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b);

}  // namespace dust::search

#endif  // DUST_SEARCH_MINHASH_H_
