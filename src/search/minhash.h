// MinHash sketches for Jaccard estimation between column value sets — one
// of the D3L-style unionability signals (value overlap, Sec. 6.5.1).
#ifndef DUST_SEARCH_MINHASH_H_
#define DUST_SEARCH_MINHASH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dust::search {

/// Fixed-width MinHash sketch of a string set.
class MinHashSketch {
 public:
  /// Builds a sketch with `num_hashes` permutations (seeded deterministically).
  MinHashSketch(const std::vector<std::string>& items, size_t num_hashes = 64,
                uint64_t seed = 7777);

  /// Estimated Jaccard similarity with another sketch (same configuration).
  double EstimateJaccard(const MinHashSketch& other) const;

  size_t num_hashes() const { return mins_.size(); }
  bool empty() const { return empty_; }

 private:
  std::vector<uint64_t> mins_;
  bool empty_ = true;
};

/// Exact Jaccard similarity of two string sets (for tests / small inputs).
double ExactJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b);

}  // namespace dust::search

#endif  // DUST_SEARCH_MINHASH_H_
