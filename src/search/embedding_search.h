// Starmie-style union search (Fan et al., PVLDB'23): contextualized column
// embeddings per table; a candidate's unionability score is the max-weight
// bipartite matching between its columns and the query's (cosine weights).
// A vector index over table-level profiles (mean column embedding)
// shortlists candidates faiss-style before exact matching.
#ifndef DUST_SEARCH_EMBEDDING_SEARCH_H_
#define DUST_SEARCH_EMBEDDING_SEARCH_H_

#include <memory>

#include "embed/starmie_encoder.h"
#include "index/vector_index.h"
#include "search/union_search.h"

namespace dust::search {

struct EmbeddingSearchConfig {
  embed::StarmieConfig encoder;
  /// Candidates short-listed by the table-profile index before exact
  /// bipartite scoring (0 = score every table exactly).
  size_t shortlist = 0;
  /// Index type for the shortlist: "flat", "ivf", "lsh", "hnsw", or a
  /// sharded spec such as "sharded:hnsw:4".
  std::string index_type = "flat";
  /// Tuning knobs forwarded to the shortlist index (HNSW M/ef_search, IVF
  /// nlist/nprobe; 0 keeps defaults).
  index::IndexOptions index_options;
};

class EmbeddingUnionSearch : public UnionSearch {
 public:
  explicit EmbeddingUnionSearch(EmbeddingSearchConfig config = {});

  void IndexLake(const std::vector<const table::Table*>& lake) override;
  std::vector<TableHit> SearchTables(const table::Table& query,
                                     size_t n) const override;
  std::string name() const override { return "Starmie"; }

  /// Persists the per-table column embeddings, the table profiles, and (when
  /// a shortlist is configured) the built profile index — everything
  /// IndexLake computes from the raw tables.
  Status SaveState(io::IndexWriter* writer) const override;
  /// Restores SaveState output. The engine must be constructed with the same
  /// config as at save time (the pipeline's snapshot hash enforces this);
  /// a shortlist mismatch between config and stored index is rejected.
  Status LoadState(io::IndexReader* reader) override;

  /// Installs a shared executor on the shortlist profile index (kept across
  /// IndexLake/LoadState rebuilds), routing its scatter through pooled
  /// threads on the serving path.
  void SetExecutor(serve::Executor* executor) override;

  /// Column embeddings of an indexed lake table (for Starmie (B)/(H)).
  const std::vector<la::Vec>& ColumnEmbeddings(size_t table_index) const {
    return lake_columns_[table_index];
  }
  const embed::StarmieEncoder& encoder() const { return encoder_; }

 private:
  double TableScore(const std::vector<la::Vec>& query_cols,
                    const std::vector<la::Vec>& lake_cols) const;

  EmbeddingSearchConfig config_;
  embed::StarmieEncoder encoder_;
  std::vector<std::vector<la::Vec>> lake_columns_;
  std::vector<la::Vec> lake_profiles_;  // mean column embedding per table
  std::unique_ptr<index::VectorIndex> profile_index_;
  serve::Executor* executor_ = nullptr;  // re-applied on index rebuilds
};

}  // namespace dust::search

#endif  // DUST_SEARCH_EMBEDDING_SEARCH_H_
