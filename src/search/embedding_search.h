// Starmie-style union search (Fan et al., PVLDB'23): contextualized column
// embeddings per table; a candidate's unionability score is the max-weight
// bipartite matching between its columns and the query's (cosine weights).
//
// Every query runs through the retrieval cascade (src/search/cascade/):
// optional type prefilter and MinHash prescreen, then the vector shortlist
// over table-level profiles (mean column embedding, faiss-style), then the
// exact bipartite rerank. The flat path is the degenerate two-stage
// cascade (shortlist + rerank) — not a separate code path — so cascade
// results with the prefilters off are bit-identical to it.
#ifndef DUST_SEARCH_EMBEDDING_SEARCH_H_
#define DUST_SEARCH_EMBEDDING_SEARCH_H_

#include <memory>
#include <mutex>

#include "embed/starmie_encoder.h"
#include "index/vector_index.h"
#include "search/cascade/cascade_search.h"
#include "search/cascade/stages.h"
#include "search/union_search.h"

namespace dust::search {

struct EmbeddingSearchConfig {
  embed::StarmieConfig encoder;
  /// Candidates short-listed by the table-profile index before exact
  /// bipartite scoring (0 = score every table exactly).
  size_t shortlist = 0;
  /// Index type for the shortlist: "flat", "ivf", "lsh", "hnsw", or a
  /// sharded spec such as "sharded:hnsw:4".
  std::string index_type = "flat";
  /// Tuning knobs forwarded to the shortlist index (HNSW M/ef_search, IVF
  /// nlist/nprobe; 0 keeps defaults).
  index::IndexOptions index_options;
  /// Staged candidate cascade ahead of the shortlist (type prefilter +
  /// MinHash prescreen); default-off. IndexLake builds the per-table
  /// signatures and value sketches when enabled, and SaveState persists
  /// them so serving processes skip the re-sketch.
  cascade::CascadeConfig cascade;
};

class EmbeddingUnionSearch : public UnionSearch {
 public:
  explicit EmbeddingUnionSearch(EmbeddingSearchConfig config = {});

  void IndexLake(const std::vector<const table::Table*>& lake) override;
  std::vector<TableHit> SearchTables(const table::Table& query,
                                     size_t n) const override;
  std::string name() const override { return "Starmie"; }

  /// Persists the per-table column embeddings, the table profiles, (when a
  /// shortlist is configured) the built profile index, and (when the
  /// cascade is enabled) the per-table type signatures and MinHash value
  /// sketches — everything IndexLake computes from the raw tables.
  Status SaveState(io::IndexWriter* writer) const override;
  /// Restores SaveState output. The engine must be constructed with the same
  /// config as at save time (the pipeline's snapshot hash enforces this); a
  /// shortlist or cascade mismatch between config and stored state is
  /// rejected.
  Status LoadState(io::IndexReader* reader) override;

  /// Installs a shared executor on the shortlist profile index (kept across
  /// IndexLake/LoadState rebuilds) and on the rerank stage's scoring
  /// fan-out, routing both through pooled threads on the serving path.
  void SetExecutor(serve::Executor* executor) override;

  /// Removes the live table named `name`: its slot is kept (table_index
  /// stability) but it leaves the candidate set and, when a shortlist is
  /// configured, its profile is tombstoned in the index. Requires table
  /// names, which IndexLake records but snapshots do not carry —
  /// FailedPrecondition after LoadState (re-run IndexLake to mutate).
  Status RemoveTable(const std::string& name) override;

  /// Encodes and appends `table` as a new lake table; its profile joins
  /// the shortlist index and (when the cascade is enabled) its signature
  /// and sketch extend the prefilter signals.
  Status AddTable(const table::Table& table) override;

  /// Live (non-removed) tables currently searchable.
  size_t num_live_tables() const {
    size_t live = 0;
    for (size_t t = 0; t < lake_columns_.size(); ++t) {
      if (t >= lake_removed_.size() || lake_removed_[t] == 0) ++live;
    }
    return live;
  }

  /// Cumulative per-stage cascade summary (see CascadeSearch::StatsSummary).
  std::string CascadeStatsSummary() const override {
    return cascade_.StatsSummary();
  }
  /// Registers dust_cascade_stage_* instruments into `metrics`; this engine
  /// must outlive the registry.
  void RegisterCascadeMetrics(serve::Metrics* metrics) const {
    cascade_.RegisterMetrics(metrics);
  }
  /// Per-stage stats of the most recent SearchTables call (benchmarks and
  /// the CLI read per-layer reduction ratios from here).
  std::vector<cascade::StageStats> last_stage_stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return last_stats_;
  }

  /// Column embeddings of an indexed lake table (for Starmie (B)/(H)).
  const std::vector<la::Vec>& ColumnEmbeddings(size_t table_index) const {
    return lake_columns_[table_index];
  }
  const embed::StarmieEncoder& encoder() const { return encoder_; }

 private:
  double TableScore(const std::vector<la::Vec>& query_cols,
                    const std::vector<la::Vec>& lake_cols) const;
  /// Rebuilds the cascade's lake-side signals (type signatures, value
  /// sketches) from raw tables; cleared when the cascade is disabled.
  void RebuildCascadeSignals(const std::vector<const table::Table*>& lake);

  EmbeddingSearchConfig config_;
  embed::StarmieEncoder encoder_;
  std::vector<std::vector<la::Vec>> lake_columns_;
  std::vector<la::Vec> lake_profiles_;  // mean column embedding per table
  /// Table names (IndexLake order) — the RemoveTable lookup key. Empty
  /// after LoadState: snapshots do not carry names, so restored engines
  /// reject mutations instead of guessing.
  std::vector<std::string> lake_names_;
  /// lake_removed_[t] != 0 marks a removed table; sized with the lake.
  std::vector<char> lake_removed_;
  std::unique_ptr<index::VectorIndex> profile_index_;
  serve::Executor* executor_ = nullptr;  // re-applied on index rebuilds
  // Cascade state. The stage objects borrow the signal vectors and the
  // index slot by pointer, so IndexLake/LoadState rebuilds never have to
  // reconstruct them.
  std::vector<cascade::TableSignature> lake_signatures_;
  std::vector<MinHashSketch> lake_sketches_;
  cascade::CascadeSearch cascade_;
  cascade::TypePrefilterStage prefilter_stage_;
  cascade::MinHashPrescreenStage prescreen_stage_;
  cascade::VectorShortlistStage shortlist_stage_;
  mutable std::mutex stats_mutex_;
  mutable std::vector<cascade::StageStats> last_stats_;
};

}  // namespace dust::search

#endif  // DUST_SEARCH_EMBEDDING_SEARCH_H_
