#include "search/overlap_search.h"

#include <algorithm>

#include "la/distance.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace dust::search {

Status ValidateOverlapConfig(const OverlapSearchConfig& config) {
  const double weights[] = {config.weight_name, config.weight_values,
                            config.weight_format, config.weight_embedding};
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      return Status::InvalidArgument(
          "overlap signal weights must be nonnegative");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument(
        "overlap signal weights are all zero; every unionability signal is "
        "muted and all scores would be 0");
  }
  return Status::Ok();
}

OverlapUnionSearch::OverlapUnionSearch(OverlapSearchConfig config)
    : config_(config),
      embedder_(embed::MakeEmbedder(
          embed::ModelFamily::kFastText,
          embed::DefaultConfigFor(embed::ModelFamily::kFastText,
                                  config.embedding_dim, config.seed))) {
  DUST_CHECK(ValidateOverlapConfig(config_).ok());
}

OverlapUnionSearch::ColumnSignature OverlapUnionSearch::SignColumn(
    const table::Column& column) const {
  ColumnSignature sig{
      text::WordTokens(column.name),
      MinHashSketch({}, config_.minhash_hashes, config_.seed),
      MinHashSketch({}, config_.minhash_hashes, config_.seed ^ 0xF0F0ULL),
      la::Vec()};
  std::vector<std::string> values;
  std::vector<std::string> grams;
  std::string all_text;
  for (const table::Value& v : column.values) {
    if (v.is_null()) continue;
    values.push_back(ToLower(v.text()));
    for (auto& g : text::CharNgrams(v.text(), 3)) grams.push_back(std::move(g));
    all_text += v.text();
    all_text += ' ';
  }
  sig.values = MinHashSketch(values, config_.minhash_hashes, config_.seed);
  sig.format =
      MinHashSketch(grams, config_.minhash_hashes, config_.seed ^ 0xF0F0ULL);
  sig.embedding = embedder_->Embed(all_text);
  return sig;
}

double OverlapUnionSearch::ColumnScore(const ColumnSignature& a,
                                       const ColumnSignature& b) const {
  double name_sim = ExactJaccard(a.name_tokens, b.name_tokens);
  double value_sim = a.values.EstimateJaccard(b.values);
  double format_sim = a.format.EstimateJaccard(b.format);
  double embed_sim = 0.0;
  if (!a.embedding.empty() && !b.embedding.empty()) {
    embed_sim = std::max(0.0f, la::CosineSimilarity(a.embedding, b.embedding));
  }
  return config_.weight_name * name_sim + config_.weight_values * value_sim +
         config_.weight_format * format_sim +
         config_.weight_embedding * embed_sim;
}

void OverlapUnionSearch::IndexLake(
    const std::vector<const table::Table*>& lake) {
  lake_signatures_.clear();
  lake_signatures_.reserve(lake.size());
  for (const table::Table* t : lake) {
    std::vector<ColumnSignature> sigs;
    sigs.reserve(t->num_columns());
    for (const table::Column& c : t->columns()) sigs.push_back(SignColumn(c));
    lake_signatures_.push_back(std::move(sigs));
  }
}

std::vector<TableHit> OverlapUnionSearch::SearchTables(
    const table::Table& query, size_t n) const {
  std::vector<ColumnSignature> query_sigs;
  query_sigs.reserve(query.num_columns());
  for (const table::Column& c : query.columns()) {
    query_sigs.push_back(SignColumn(c));
  }

  std::vector<TableHit> hits;
  hits.reserve(lake_signatures_.size());
  for (size_t t = 0; t < lake_signatures_.size(); ++t) {
    const auto& lake_sigs = lake_signatures_[t];
    // Greedy one-to-one matching of query columns to lake columns by score
    // (D3L aggregates per-column evidence; greedy suffices for ranking).
    struct Cell {
      double score;
      size_t qc, lc;
    };
    std::vector<Cell> cells;
    for (size_t qc = 0; qc < query_sigs.size(); ++qc) {
      for (size_t lc = 0; lc < lake_sigs.size(); ++lc) {
        cells.push_back({ColumnScore(query_sigs[qc], lake_sigs[lc]), qc, lc});
      }
    }
    std::sort(cells.begin(), cells.end(), [](const Cell& a, const Cell& b) {
      if (a.score != b.score) return a.score > b.score;
      if (a.qc != b.qc) return a.qc < b.qc;
      return a.lc < b.lc;
    });
    std::vector<bool> used_q(query_sigs.size(), false);
    std::vector<bool> used_l(lake_sigs.size(), false);
    double total = 0.0;
    for (const Cell& cell : cells) {
      if (used_q[cell.qc] || used_l[cell.lc]) continue;
      used_q[cell.qc] = true;
      used_l[cell.lc] = true;
      total += cell.score;
    }
    // Normalize by query arity so wide tables don't dominate.
    double score =
        query_sigs.empty() ? 0.0 : total / static_cast<double>(query_sigs.size());
    hits.push_back({t, score});
  }
  std::sort(hits.begin(), hits.end(), [](const TableHit& a, const TableHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.table_index < b.table_index;
  });
  if (hits.size() > n) hits.resize(n);
  return hits;
}

}  // namespace dust::search
