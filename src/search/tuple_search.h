// Tuple-level search — the "Starmie" baseline of Sec. 6.5.1: every data
// lake tuple is indexed as if it were a one-row table, and the k tuples
// most similar to the query table are returned. Because the ranking is pure
// similarity, near-copies of query tuples surface first (the redundancy
// DUST is designed to avoid).
#ifndef DUST_SEARCH_TUPLE_SEARCH_H_
#define DUST_SEARCH_TUPLE_SEARCH_H_

#include <memory>

#include "embed/tuple_encoder.h"
#include "index/vector_index.h"
#include "search/cascade/cascade_search.h"
#include "search/cascade/stages.h"
#include "table/table.h"
#include "util/status.h"

namespace dust::serve {
class Executor;
}  // namespace dust::serve

namespace dust::search {

struct TupleHit {
  table::TupleRef ref;
  double similarity = 0.0;  // max similarity to any query tuple
};

struct TupleSearchConfig {
  /// "flat", "ivf", "lsh", "hnsw", or a sharded spec such as
  /// "sharded:hnsw:4" (every lake tuple partitioned across shards, queries
  /// scatter-gathered).
  std::string index_type = "flat";
  /// Per-query-tuple candidates fetched from the index before fusion.
  size_t per_query_candidates = 200;
  /// Tuning knobs forwarded to the tuple index (0 keeps defaults).
  index::IndexOptions index_options;
  /// Candidate-table cascade ahead of tuple fusion: when enabled, the type
  /// prefilter and MinHash prescreen prune lake tables per request and
  /// fused hits are restricted to the surviving tables. Default-off; with
  /// both stage toggles off (or when nothing is pruned) results are
  /// bit-identical to the flat path.
  cascade::CascadeConfig cascade;
};

/// Indexes all tuples of a lake with a TupleEncoder and retrieves the top-k
/// most similar tuples to a query table.
class TupleSearch {
 public:
  TupleSearch(std::shared_ptr<embed::TupleEncoder> encoder,
              TupleSearchConfig config = {});

  /// One request of a serving batch: a query table and its k.
  struct TupleQuery {
    const table::Table* table = nullptr;
    size_t k = 0;
  };

  /// Encodes and indexes every row of every lake table.
  void IndexLake(const std::vector<const table::Table*>& lake);

  /// Installs an already-built tuple index over `lake` instead of encoding
  /// and building one — the distributed serving path, where `index` is a
  /// net::RouterIndex viewing remote shards (or an index loaded from disk).
  /// The index must cover exactly the lake's tuples in append order: its
  /// size must equal the lake's total row count and its dim/metric must
  /// match the encoder (cosine). Builds refs_ and the lake-state hash
  /// exactly as IndexLake would, so caching and query semantics are
  /// unchanged.
  Status UseIndex(std::unique_ptr<index::VectorIndex> index,
                  const std::vector<const table::Table*>& lake);

  /// The installed lake index; nullptr before IndexLake/UseIndex. Exposed
  /// so a CLI can persist the built index (io::SaveIndex) for shard servers
  /// to load.
  const index::VectorIndex* lake_index() const { return index_.get(); }

  // --- lake mutations ------------------------------------------------------
  //
  // A lake is no longer frozen at IndexLake time: tables can be deleted and
  // added while the process keeps serving. Deletes tombstone the table's
  // tuple-id range in the index (skipped before scoring, so top-k still
  // returns k live tuples whenever k exist); adds encode and append. Every
  // mutation bumps LakeStateHash, so the serving result cache and snapshot
  // staleness checks invalidate automatically — a mutated lake never serves
  // a pre-mutation cached hit. Mutations are not synchronized against
  // in-flight searches; like SetExecutor, quiesce the server first.

  /// Tombstones every tuple of the live table named `name`. NotFound if no
  /// live table has that name; FailedPrecondition before IndexLake/UseIndex.
  Status RemoveTable(const std::string& name);

  /// Encodes and appends `table` as a new lake table. InvalidArgument if a
  /// live table already carries its name (RemoveTable it first — re-adding
  /// under the same name is how a table is replaced in place).
  Status AddTable(const table::Table& table);

  /// Rewrites the index without tombstones (index::VectorIndex::Compact)
  /// and renumbers tuple ids/refs under the returned remap. Results are
  /// preserved exactly: live tuples keep their relative order, similarities
  /// are untouched, and LakeStateHash does not change (compaction is a
  /// representation change, not a lake mutation), so cached results stay
  /// valid. Assumes tombstones came from RemoveTable (whole-table ranges).
  Status CompactIndex();

  /// Live (non-tombstoned) tuples in the lake index; 0 before indexing.
  size_t lake_live_vectors() const {
    return index_ ? index_->live_size() : 0;
  }
  /// Tombstoned tuples awaiting compaction.
  size_t lake_tombstoned_vectors() const {
    return index_ ? index_->num_tombstones() : 0;
  }
  /// Count of RemoveTable/AddTable calls since the lake was (re)indexed.
  uint64_t lake_mutations() const { return mutations_; }

  /// Tables ever indexed (removed ones keep their slot so TupleRef
  /// table_index values stay stable across mutations).
  size_t num_tables() const { return tables_.size(); }
  const std::string& table_name(size_t table_index) const {
    return tables_[table_index].name;
  }
  bool table_removed(size_t table_index) const {
    return tables_[table_index].removed;
  }

  /// Top-k lake tuples by maximum cosine similarity to any query tuple.
  /// Legacy one-shot spelling: calling before IndexLake aborts (programming
  /// error in a batch run), and a row-less query returns no hits. Serving
  /// code must use SearchTuplesChecked, which rejects instead of dying.
  std::vector<TupleHit> SearchTuples(const table::Table& query,
                                     size_t k) const;

  /// Status-returning spelling for long-running servers, where a bad
  /// request must be rejected rather than abort the process:
  /// FailedPrecondition before IndexLake has run, InvalidArgument for a
  /// query table with no rows. Results are bit-identical to SearchTuples.
  Result<std::vector<TupleHit>> SearchTuplesChecked(const table::Table& query,
                                                    size_t k) const;

  /// Answers a micro-batch of requests through as few index SearchBatch
  /// calls as possible: requests with the same candidate fetch depth (and
  /// they all share it unless per-request k exceeds per_query_candidates)
  /// are encoded into one embedding batch and dispatched in one call.
  /// Result i corresponds to queries[i] and is bit-identical to a
  /// sequential SearchTuplesChecked(queries[i]) — per-request statuses, so
  /// one malformed request cannot fail its batch-mates. With `executor`,
  /// encoding, index fan-out, and per-request fusion run on pooled threads.
  std::vector<Result<std::vector<TupleHit>>> SearchTuplesBatch(
      const std::vector<TupleQuery>& queries,
      serve::Executor* executor = nullptr) const;

  size_t num_indexed() const { return refs_.size(); }
  const table::TupleRef& ref(size_t id) const { return refs_[id]; }
  const TupleSearchConfig& config() const { return config_; }

  /// FNV-1a fingerprint over the query's encoded row vectors — the result
  /// cache's query identity. Two tables that encode identically fingerprint
  /// identically (encoders are pure functions of the serialization), so
  /// they would receive bit-identical results and may share a cache entry.
  uint64_t QueryFingerprint(const table::Table& query) const;

  /// FNV-1a hash of every config knob that shapes results (index type and
  /// options, candidate depth, encoder identity). Cache keys carry it so
  /// two servers with different configs never share entries.
  uint64_t ConfigHash() const;

  /// Hash of the indexed lake's shape (live table names, row/column counts)
  /// chained with the mutation counter; recomputed by IndexLake and by
  /// every RemoveTable/AddTable; 0 before any lake is indexed. The result
  /// cache's staleness guard: a re-indexed, swapped, or mutated lake
  /// changes the hash, invalidating every entry computed against the old
  /// lake — and because the mutation counter is chained in, removing a
  /// table and re-adding an identical one still yields a fresh hash
  /// (entries from the intermediate states can never resurrect). Like the
  /// pipeline SnapshotHash, it detects reshaped lakes, not in-place cell
  /// edits.
  uint64_t LakeStateHash() const { return lake_hash_; }

  /// Registers the cascade's dust_cascade_stage_* instruments into
  /// `metrics` (no-op when the cascade is disabled); this object must
  /// outlive the registry.
  void RegisterCascadeMetrics(serve::Metrics* metrics) const;
  /// Cumulative per-stage cascade summary; empty when disabled or before
  /// any traffic.
  std::string CascadeStatsSummary() const;

 private:
  /// Runs the enabled prefilter stages over the lake's tables for one
  /// query. `allowed` comes back empty when every table survives (the
  /// common case and the disabled case — fusion then skips the bitmap
  /// test entirely); otherwise allowed[t] != 0 marks survivors.
  Status CascadeAllowedTables(const table::Table& query,
                              std::vector<char>* allowed) const;
  /// Rebuilds the cascade's lake-side signals (type signatures, value
  /// sketches) from raw tables; cleared when the cascade is disabled.
  void RebuildCascadeSignals(const std::vector<const table::Table*>& lake);

  /// Shape of one indexed lake table, retained across mutations. Removed
  /// tables keep their slot (table_index stability) but leave the hash and
  /// the cascade candidate set.
  struct LakeTable {
    std::string name;
    size_t num_columns = 0;
    size_t num_rows = 0;
    /// Tuple id of the table's first row at index time (pre-compaction ids
    /// until CompactIndex renumbers).
    size_t first_tuple_id = 0;
    bool removed = false;
  };

  /// Rebuilds tables_ from a freshly (re)indexed lake and resets the
  /// mutation counter.
  void ResetLakeTables(const std::vector<const table::Table*>& lake);
  /// Recomputes lake_hash_ from the live tables_ entries + mutations_.
  void RecomputeLakeHash();

  std::shared_ptr<embed::TupleEncoder> encoder_;
  TupleSearchConfig config_;
  std::unique_ptr<index::VectorIndex> index_;
  std::vector<table::TupleRef> refs_;
  uint64_t lake_hash_ = 0;
  size_t num_tables_ = 0;
  std::vector<LakeTable> tables_;
  uint64_t mutations_ = 0;
  std::vector<cascade::TableSignature> lake_signatures_;
  std::vector<MinHashSketch> lake_sketches_;
  cascade::CascadeSearch cascade_{{"prefilter", "prescreen"}};
  cascade::TypePrefilterStage prefilter_stage_{&lake_signatures_,
                                               &config_.cascade};
  cascade::MinHashPrescreenStage prescreen_stage_{&lake_sketches_,
                                                  &config_.cascade};
};

}  // namespace dust::search

#endif  // DUST_SEARCH_TUPLE_SEARCH_H_
