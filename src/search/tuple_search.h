// Tuple-level search — the "Starmie" baseline of Sec. 6.5.1: every data
// lake tuple is indexed as if it were a one-row table, and the k tuples
// most similar to the query table are returned. Because the ranking is pure
// similarity, near-copies of query tuples surface first (the redundancy
// DUST is designed to avoid).
#ifndef DUST_SEARCH_TUPLE_SEARCH_H_
#define DUST_SEARCH_TUPLE_SEARCH_H_

#include <memory>

#include "embed/tuple_encoder.h"
#include "index/vector_index.h"
#include "table/table.h"

namespace dust::search {

struct TupleHit {
  table::TupleRef ref;
  double similarity = 0.0;  // max similarity to any query tuple
};

struct TupleSearchConfig {
  /// "flat", "ivf", "lsh", "hnsw", or a sharded spec such as
  /// "sharded:hnsw:4" (every lake tuple partitioned across shards, queries
  /// scatter-gathered).
  std::string index_type = "flat";
  /// Per-query-tuple candidates fetched from the index before fusion.
  size_t per_query_candidates = 200;
  /// Tuning knobs forwarded to the tuple index (0 keeps defaults).
  index::IndexOptions index_options;
};

/// Indexes all tuples of a lake with a TupleEncoder and retrieves the top-k
/// most similar tuples to a query table.
class TupleSearch {
 public:
  TupleSearch(std::shared_ptr<embed::TupleEncoder> encoder,
              TupleSearchConfig config = {});

  /// Encodes and indexes every row of every lake table.
  void IndexLake(const std::vector<const table::Table*>& lake);

  /// Top-k lake tuples by maximum cosine similarity to any query tuple.
  std::vector<TupleHit> SearchTuples(const table::Table& query,
                                     size_t k) const;

  size_t num_indexed() const { return refs_.size(); }
  const table::TupleRef& ref(size_t id) const { return refs_[id]; }

 private:
  std::shared_ptr<embed::TupleEncoder> encoder_;
  TupleSearchConfig config_;
  std::unique_ptr<index::VectorIndex> index_;
  std::vector<table::TupleRef> refs_;
};

}  // namespace dust::search

#endif  // DUST_SEARCH_TUPLE_SEARCH_H_
