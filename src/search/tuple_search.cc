#include "search/tuple_search.h"

#include <algorithm>
#include <unordered_map>

#include "util/status.h"

namespace dust::search {

TupleSearch::TupleSearch(std::shared_ptr<embed::TupleEncoder> encoder,
                         TupleSearchConfig config)
    : encoder_(std::move(encoder)), config_(config) {
  DUST_CHECK(encoder_ != nullptr);
}

void TupleSearch::IndexLake(const std::vector<const table::Table*>& lake) {
  refs_.clear();
  index_ = index::MakeVectorIndex(config_.index_type, encoder_->dim(),
                                  la::Metric::kCosine, config_.index_options);
  for (size_t t = 0; t < lake.size(); ++t) {
    std::vector<la::Vec> rows = encoder_->EncodeTableRows(*lake[t]);
    // One bulk call per table keeps the index's batch ingest path hot
    // (flat reserves + norms once; sharded partitions the table once).
    index_->AddAll(rows);
    for (size_t r = 0; r < rows.size(); ++r) {
      refs_.push_back({t, r});
    }
  }
}

std::vector<TupleHit> TupleSearch::SearchTuples(const table::Table& query,
                                                size_t k) const {
  DUST_CHECK(index_ != nullptr);
  // Fuse per-query-tuple results: a lake tuple's score is its best
  // similarity to any query tuple (so exact copies rank first).
  std::unordered_map<size_t, double> best_similarity;
  size_t fetch = std::max(k, config_.per_query_candidates);
  // One batched index call over all query tuples; the index answers them in
  // parallel while fusion stays sequential and deterministic.
  std::vector<la::Vec> query_embeddings;
  query_embeddings.reserve(query.num_rows());
  for (size_t r = 0; r < query.num_rows(); ++r) {
    query_embeddings.push_back(
        encoder_->EncodeSerialized(table::SerializeTableRow(query, r)));
  }
  for (const std::vector<index::SearchHit>& hits :
       index_->SearchBatch(query_embeddings, fetch)) {
    for (const index::SearchHit& hit : hits) {
      double similarity = 1.0 - static_cast<double>(hit.distance);
      auto [it, inserted] = best_similarity.try_emplace(hit.id, similarity);
      if (!inserted && similarity > it->second) it->second = similarity;
    }
  }
  std::vector<TupleHit> hits;
  hits.reserve(best_similarity.size());
  for (const auto& [id, similarity] : best_similarity) {
    hits.push_back({refs_[id], similarity});
  }
  std::sort(hits.begin(), hits.end(), [](const TupleHit& a, const TupleHit& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    if (a.ref.table_index != b.ref.table_index) {
      return a.ref.table_index < b.ref.table_index;
    }
    return a.ref.row_index < b.ref.row_index;
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

}  // namespace dust::search
