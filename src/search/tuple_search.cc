#include "search/tuple_search.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>

#include <cstring>

#include "obs/trace.h"
#include "serve/executor.h"
#include "text/hashing.h"
#include "util/status.h"

namespace dust::search {

namespace {

/// Fuses per-query-tuple hit lists into the top-k lake tuples: a lake
/// tuple's score is its best similarity to any query tuple (so exact copies
/// rank first). Deterministic — ties break by (table, row) provenance.
/// A non-empty `allowed` bitmap (the cascade's surviving tables) drops hits
/// from pruned tables before fusion; empty means every table is allowed.
std::vector<TupleHit> FuseTupleHits(
    const std::vector<std::vector<index::SearchHit>>& per_tuple_hits,
    size_t begin, size_t count, const std::vector<table::TupleRef>& refs,
    size_t k, const std::vector<char>& allowed) {
  std::unordered_map<size_t, double> best_similarity;
  for (size_t t = begin; t < begin + count; ++t) {
    for (const index::SearchHit& hit : per_tuple_hits[t]) {
      if (!allowed.empty() && allowed[refs[hit.id].table_index] == 0) {
        continue;
      }
      double similarity = 1.0 - static_cast<double>(hit.distance);
      auto [it, inserted] = best_similarity.try_emplace(hit.id, similarity);
      if (!inserted && similarity > it->second) it->second = similarity;
    }
  }
  std::vector<TupleHit> hits;
  hits.reserve(best_similarity.size());
  for (const auto& [id, similarity] : best_similarity) {
    hits.push_back({refs[id], similarity});
  }
  std::sort(hits.begin(), hits.end(), [](const TupleHit& a, const TupleHit& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    if (a.ref.table_index != b.ref.table_index) {
      return a.ref.table_index < b.ref.table_index;
    }
    return a.ref.row_index < b.ref.row_index;
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

/// Chains a value into a running FNV-1a hash (the pipeline SnapshotHash
/// idiom).
uint64_t ChainHash(uint64_t h, uint64_t v) {
  char bytes[sizeof(v)];
  std::memcpy(bytes, &v, sizeof(v));
  return text::HashString(std::string_view(bytes, sizeof(v)), h);
}

uint64_t ChainHash(uint64_t h, const std::string& s) {
  return text::HashString(s, h);
}

}  // namespace

TupleSearch::TupleSearch(std::shared_ptr<embed::TupleEncoder> encoder,
                         TupleSearchConfig config)
    : encoder_(std::move(encoder)), config_(config) {
  DUST_CHECK(encoder_ != nullptr);
}

void TupleSearch::IndexLake(const std::vector<const table::Table*>& lake) {
  refs_.clear();
  index_ = index::MakeVectorIndex(config_.index_type, encoder_->dim(),
                                  la::Metric::kCosine, config_.index_options);
  for (size_t t = 0; t < lake.size(); ++t) {
    std::vector<la::Vec> rows = encoder_->EncodeTableRows(*lake[t]);
    // One bulk call per table keeps the index's batch ingest path hot
    // (flat reserves + norms once; sharded partitions the table once).
    index_->AddAll(rows);
    for (size_t r = 0; r < rows.size(); ++r) {
      refs_.push_back({t, r});
    }
  }
  ResetLakeTables(lake);
  RebuildCascadeSignals(lake);
}

Status TupleSearch::UseIndex(std::unique_ptr<index::VectorIndex> index,
                             const std::vector<const table::Table*>& lake) {
  if (index == nullptr) {
    return Status::InvalidArgument("UseIndex requires a non-null index");
  }
  size_t total_rows = 0;
  for (const table::Table* t : lake) total_rows += t->num_rows();
  if (index->size() != total_rows) {
    return Status::FailedPrecondition(
        "index covers " + std::to_string(index->size()) +
        " tuples but the lake has " + std::to_string(total_rows));
  }
  if (index->dim() != encoder_->dim()) {
    return Status::FailedPrecondition(
        "index dim " + std::to_string(index->dim()) +
        " != encoder dim " + std::to_string(encoder_->dim()));
  }
  if (index->metric() != la::Metric::kCosine) {
    return Status::FailedPrecondition(
        "tuple search ranks by cosine similarity; the index metric differs");
  }
  refs_.clear();
  refs_.reserve(total_rows);
  for (size_t t = 0; t < lake.size(); ++t) {
    for (size_t r = 0; r < lake[t]->num_rows(); ++r) {
      refs_.push_back({t, r});
    }
  }
  // Same lake-state hash IndexLake computes, so result-cache invalidation
  // behaves identically whichever way the index arrived. Every lake table
  // is treated as live: a persisted index that carries tombstones should be
  // compacted before its lake directory is shrunk to match.
  ResetLakeTables(lake);
  RebuildCascadeSignals(lake);
  index_ = std::move(index);
  return Status::Ok();
}

void TupleSearch::ResetLakeTables(const std::vector<const table::Table*>& lake) {
  tables_.clear();
  tables_.reserve(lake.size());
  size_t first = 0;
  for (const table::Table* t : lake) {
    tables_.push_back(
        {t->name(), t->num_columns(), t->num_rows(), first, false});
    first += t->num_rows();
  }
  num_tables_ = tables_.size();
  mutations_ = 0;
  RecomputeLakeHash();
}

void TupleSearch::RecomputeLakeHash() {
  uint64_t h = ChainHash(0, std::string("dust-tuple-lake-v1"));
  size_t live = 0;
  for (const LakeTable& t : tables_) live += t.removed ? 0 : 1;
  h = ChainHash(h, live);
  for (const LakeTable& t : tables_) {
    if (t.removed) continue;
    h = ChainHash(h, t.name);
    h = ChainHash(h, t.num_columns);
    h = ChainHash(h, t.num_rows);
  }
  // The mutation counter keeps every intermediate lake state distinct:
  // remove b + re-add an identical b yields a different hash than never
  // mutating, so entries cached against the intermediate (b-less) lake can
  // never be served again.
  h = ChainHash(h, mutations_);
  lake_hash_ = h;
}

Status TupleSearch::RemoveTable(const std::string& name) {
  if (index_ == nullptr) {
    return Status::FailedPrecondition(
        "no lake index; call IndexLake/UseIndex before mutating");
  }
  for (LakeTable& t : tables_) {
    if (t.removed || t.name != name) continue;
    std::vector<size_t> ids(t.num_rows);
    for (size_t r = 0; r < t.num_rows; ++r) ids[r] = t.first_tuple_id + r;
    index_->RemoveAll(ids);
    t.removed = true;
    ++mutations_;
    RecomputeLakeHash();
    return Status::Ok();
  }
  return Status::NotFound("no live table named " + name + " in the lake");
}

Status TupleSearch::AddTable(const table::Table& table) {
  if (index_ == nullptr) {
    return Status::FailedPrecondition(
        "no lake index; call IndexLake/UseIndex before mutating");
  }
  for (const LakeTable& t : tables_) {
    if (!t.removed && t.name == table.name()) {
      return Status::InvalidArgument(
          "a live table named " + table.name() +
          " is already indexed; RemoveTable it first to replace it");
    }
  }
  std::vector<la::Vec> rows = encoder_->EncodeTableRows(table);
  const size_t first = index_->size();
  const size_t table_index = tables_.size();
  index_->AddAll(rows);
  for (size_t r = 0; r < rows.size(); ++r) {
    refs_.push_back({table_index, r});
  }
  tables_.push_back(
      {table.name(), table.num_columns(), table.num_rows(), first, false});
  num_tables_ = tables_.size();
  if (config_.cascade.enabled) {
    lake_signatures_.push_back(cascade::SignatureOf(table));
    if (config_.cascade.prescreen) {
      lake_sketches_.emplace_back(cascade::TableValueSample(table),
                                  config_.cascade.minhash_hashes,
                                  config_.cascade.minhash_seed);
    }
  }
  ++mutations_;
  RecomputeLakeHash();
  return Status::Ok();
}

Status TupleSearch::CompactIndex() {
  if (index_ == nullptr) {
    return Status::FailedPrecondition(
        "no lake index; call IndexLake/UseIndex before compacting");
  }
  if (index_->num_tombstones() == 0) return Status::Ok();
  std::vector<size_t> remap;
  Result<std::unique_ptr<index::VectorIndex>> compacted =
      index_->Compact(&remap);
  DUST_RETURN_IF_ERROR(compacted.status());
  // Survivors keep their relative order under Compact's remap, so the new
  // refs are the old ones with the dead rows squeezed out.
  std::vector<table::TupleRef> live_refs;
  live_refs.reserve(index_->live_size());
  for (size_t id = 0; id < refs_.size(); ++id) {
    if (remap[id] != index::VectorIndex::kInvalidId) {
      live_refs.push_back(refs_[id]);
    }
  }
  refs_ = std::move(live_refs);
  // Renumber the live tables' ranges. Tables were only ever appended, so
  // live entries stay in ascending tuple-id order and the new first id is a
  // running prefix sum over live row counts.
  size_t next = 0;
  for (LakeTable& t : tables_) {
    if (t.removed) continue;
    t.first_tuple_id = next;
    next += t.num_rows;
  }
  index_ = std::move(compacted).value();
  // lake_hash_ stays untouched on purpose: the set of live tuples and all
  // similarities are identical, so results cached pre-compaction remain
  // correct post-compaction.
  return Status::Ok();
}

void TupleSearch::RebuildCascadeSignals(
    const std::vector<const table::Table*>& lake) {
  lake_signatures_.clear();
  lake_sketches_.clear();
  if (!config_.cascade.enabled) return;
  lake_signatures_.reserve(lake.size());
  for (const table::Table* t : lake) {
    lake_signatures_.push_back(cascade::SignatureOf(*t));
  }
  if (config_.cascade.prescreen) {
    lake_sketches_.reserve(lake.size());
    for (const table::Table* t : lake) {
      lake_sketches_.emplace_back(cascade::TableValueSample(*t),
                                  config_.cascade.minhash_hashes,
                                  config_.cascade.minhash_seed);
    }
  }
}

Status TupleSearch::CascadeAllowedTables(const table::Table& query,
                                         std::vector<char>* allowed) const {
  allowed->clear();
  if (!config_.cascade.enabled) return Status::Ok();
  const bool prefilter =
      config_.cascade.prefilter && !lake_signatures_.empty();
  const bool prescreen = config_.cascade.prescreen && !lake_sketches_.empty();
  if (!prefilter && !prescreen) return Status::Ok();
  cascade::CandidateSet set;
  set.n = num_tables_;
  set.tables.reserve(num_tables_);
  // Removed tables never enter the candidate set — their tuples are
  // tombstoned anyway, but excluding them here keeps the stages from
  // scoring signatures of tables that cannot contribute hits.
  for (size_t t = 0; t < num_tables_; ++t) {
    if (t < tables_.size() && tables_[t].removed) continue;
    set.tables.push_back(t);
  }
  std::vector<const cascade::CandidateStage*> stages;
  if (prefilter) {
    set.query_signature = cascade::SignatureOf(query);
    stages.push_back(&prefilter_stage_);
  }
  MinHashSketch query_sketch;
  if (prescreen) {
    query_sketch = MinHashSketch(cascade::TableValueSample(query),
                                 config_.cascade.minhash_hashes,
                                 config_.cascade.minhash_seed);
    set.query_sketch = &query_sketch;
    stages.push_back(&prescreen_stage_);
  }
  DUST_RETURN_IF_ERROR(cascade_.Run(stages, set, nullptr));
  if (set.tables.size() >= num_tables_) return Status::Ok();  // no pruning
  allowed->assign(num_tables_, 0);
  for (size_t t : set.tables) (*allowed)[t] = 1;
  return Status::Ok();
}

void TupleSearch::RegisterCascadeMetrics(serve::Metrics* metrics) const {
  if (!config_.cascade.enabled) return;
  cascade_.RegisterMetrics(metrics);
}

std::string TupleSearch::CascadeStatsSummary() const {
  if (!config_.cascade.enabled) return std::string();
  return cascade_.StatsSummary();
}

uint64_t TupleSearch::QueryFingerprint(const table::Table& query) const {
  uint64_t h = ChainHash(0, std::string("dust-query-fp-v1"));
  h = ChainHash(h, query.num_rows());
  for (const la::Vec& row : encoder_->EncodeTableRows(query)) {
    const auto* bytes = reinterpret_cast<const char*>(row.data());
    h = text::HashString(
        std::string_view(bytes, row.size() * sizeof(float)), h);
  }
  return h;
}

uint64_t TupleSearch::ConfigHash() const {
  uint64_t h = ChainHash(0, std::string("dust-tuple-config-v1"));
  h = ChainHash(h, config_.index_type);
  h = ChainHash(h, config_.per_query_candidates);
  h = ChainHash(h, config_.index_options.hnsw_m);
  h = ChainHash(h, config_.index_options.hnsw_ef_search);
  h = ChainHash(h, config_.index_options.ivf_nlist);
  h = ChainHash(h, config_.index_options.ivf_nprobe);
  h = ChainHash(h, encoder_->name());
  h = ChainHash(h, encoder_->dim());
  // Cascade knobs shape which tables may contribute hits, so cache entries
  // must not cross cascade configs.
  h = cascade::ChainCascadeConfig(h, config_.cascade);
  return h;
}

std::vector<TupleHit> TupleSearch::SearchTuples(const table::Table& query,
                                                size_t k) const {
  DUST_CHECK(index_ != nullptr);
  if (query.num_rows() == 0) return {};  // historical contract: no hits
  Result<std::vector<TupleHit>> result = SearchTuplesChecked(query, k);
  DUST_CHECK(result.ok());
  return std::move(result).value();
}

Result<std::vector<TupleHit>> TupleSearch::SearchTuplesChecked(
    const table::Table& query, size_t k) const {
  std::vector<Result<std::vector<TupleHit>>> results =
      SearchTuplesBatch({{&query, k}});
  return std::move(results[0]);
}

std::vector<Result<std::vector<TupleHit>>> TupleSearch::SearchTuplesBatch(
    const std::vector<TupleQuery>& queries, serve::Executor* executor) const {
  std::vector<Result<std::vector<TupleHit>>> results(
      queries.size(), Status::Internal("tuple query left unanswered"));
  if (queries.empty()) return results;
  if (index_ == nullptr) {
    for (Result<std::vector<TupleHit>>& r : results) {
      r = Status::FailedPrecondition(
          "tuple search has no lake index; call IndexLake before serving "
          "queries");
    }
    return results;
  }
  // Admission: reject malformed requests individually so the rest of the
  // batch still gets served; then group the valid ones by candidate fetch
  // depth — SearchBatch takes one k for all its queries, and mixing depths
  // would perturb fusion inputs and break bit-parity with the sequential
  // path. In steady state every request uses per_query_candidates, so a
  // batch is a single group and a single SearchBatch call.
  // Captured by value so ParallelFor members re-install the batch's trace
  // on whichever pool thread runs them.
  const obs::TraceContext trace_ctx = obs::CurrentContext();
  std::map<size_t, std::vector<size_t>> groups_by_fetch;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (queries[i].table == nullptr || queries[i].table->num_rows() == 0) {
      results[i] = Status::InvalidArgument(
          "query table has no rows; nothing to match against the lake");
      continue;
    }
    const size_t fetch = std::max(queries[i].k, config_.per_query_candidates);
    groups_by_fetch[fetch].push_back(i);
  }
  for (const auto& [fetch, members] : groups_by_fetch) {
    // Concatenate every member's row embeddings into one batch; offsets
    // remember which slice belongs to which request.
    std::vector<size_t> offsets(members.size() + 1, 0);
    for (size_t m = 0; m < members.size(); ++m) {
      offsets[m + 1] = offsets[m] + queries[members[m]].table->num_rows();
    }
    std::vector<la::Vec> embeddings(offsets.back());
    const auto encode_member = [&](size_t m) {
      obs::ScopedTraceContext trace_scope(trace_ctx);
      obs::Span span("encode");
      span.AddTag("member", static_cast<uint64_t>(m));
      const table::Table& query = *queries[members[m]].table;
      for (size_t r = 0; r < query.num_rows(); ++r) {
        embeddings[offsets[m] + r] = encoder_->EncodeSerialized(
            table::SerializeTableRow(query, r));
      }
    };
    // Encoders are pure functions of the text (embed/embedder.h), so
    // encoding members concurrently is safe and deterministic.
    if (executor != nullptr) {
      executor->ParallelFor(members.size(), encode_member);
    } else {
      for (size_t m = 0; m < members.size(); ++m) encode_member(m);
    }
    std::vector<std::vector<index::SearchHit>> hits;
    {
      obs::Span span("index_search");
      span.AddTag("rows", static_cast<uint64_t>(embeddings.size()));
      hits = index_->SearchBatch(embeddings, fetch, executor);
    }
    const auto fuse_member = [&](size_t m) {
      obs::ScopedTraceContext trace_scope(trace_ctx);
      obs::Span span("fuse");
      span.AddTag("member", static_cast<uint64_t>(m));
      const size_t i = members[m];
      // Per-request cascade: prune candidate tables with the cheap layers
      // before fusion pays attention to their tuples. Stage objects are
      // const-shared, so members cascade concurrently.
      std::vector<char> allowed;
      Status cascade_status =
          CascadeAllowedTables(*queries[i].table, &allowed);
      if (!cascade_status.ok()) {
        results[i] = cascade_status;
        return;
      }
      results[i] = FuseTupleHits(hits, offsets[m], offsets[m + 1] - offsets[m],
                                 refs_, queries[i].k, allowed);
    };
    if (executor != nullptr) {
      executor->ParallelFor(members.size(), fuse_member);
    } else {
      for (size_t m = 0; m < members.size(); ++m) fuse_member(m);
    }
  }
  return results;
}

}  // namespace dust::search
