#include "search/embedding_search.h"

#include <algorithm>
#include <utility>

#include "align/hungarian.h"
#include "io/index_io.h"

namespace dust::search {

EmbeddingUnionSearch::EmbeddingUnionSearch(EmbeddingSearchConfig config)
    : config_(config),
      encoder_(config.encoder),
      cascade_({"prefilter", "prescreen", "shortlist", "rerank"}),
      prefilter_stage_(&lake_signatures_, &config_.cascade),
      prescreen_stage_(&lake_sketches_, &config_.cascade),
      shortlist_stage_(&profile_index_, &lake_profiles_, config_.shortlist) {}

void EmbeddingUnionSearch::RebuildCascadeSignals(
    const std::vector<const table::Table*>& lake) {
  lake_signatures_.clear();
  lake_sketches_.clear();
  if (!config_.cascade.enabled) return;
  lake_signatures_.reserve(lake.size());
  for (const table::Table* t : lake) {
    lake_signatures_.push_back(cascade::SignatureOf(*t));
  }
  if (config_.cascade.prescreen) {
    lake_sketches_.reserve(lake.size());
    for (const table::Table* t : lake) {
      lake_sketches_.emplace_back(cascade::TableValueSample(*t),
                                  config_.cascade.minhash_hashes,
                                  config_.cascade.minhash_seed);
    }
  }
}

void EmbeddingUnionSearch::IndexLake(
    const std::vector<const table::Table*>& lake) {
  lake_columns_.clear();
  lake_profiles_.clear();
  lake_names_.clear();
  lake_columns_.reserve(lake.size());
  lake_profiles_.reserve(lake.size());
  lake_names_.reserve(lake.size());
  lake_removed_.assign(lake.size(), 0);
  for (const table::Table* t : lake) {
    lake_names_.push_back(t->name());
  }
  for (const table::Table* t : lake) {
    std::vector<la::Vec> cols = encoder_.EncodeTable(*t);
    la::Vec profile(encoder_.dim(), 0.0f);
    if (!cols.empty()) {
      profile = la::Mean(cols);
      la::NormalizeInPlace(&profile);
    }
    lake_columns_.push_back(std::move(cols));
    lake_profiles_.push_back(std::move(profile));
  }

  if (config_.shortlist > 0) {
    profile_index_ =
        index::MakeVectorIndex(config_.index_type, encoder_.dim(),
                               la::Metric::kCosine, config_.index_options);
    profile_index_->SetExecutor(executor_);
    profile_index_->AddAll(lake_profiles_);
  } else {
    profile_index_.reset();
  }
  RebuildCascadeSignals(lake);
}

void EmbeddingUnionSearch::SetExecutor(serve::Executor* executor) {
  executor_ = executor;
  if (profile_index_ != nullptr) profile_index_->SetExecutor(executor);
}

Status EmbeddingUnionSearch::RemoveTable(const std::string& name) {
  if (lake_names_.size() != lake_columns_.size()) {
    return Status::FailedPrecondition(
        "engine state was restored from a snapshot, which does not carry "
        "table names; re-run IndexLake before mutating");
  }
  for (size_t t = 0; t < lake_names_.size(); ++t) {
    if (lake_removed_[t] != 0 || lake_names_[t] != name) continue;
    lake_removed_[t] = 1;
    // Tombstone the profile too so an untouched candidate set delegating
    // straight to the index can never shortlist the removed table.
    if (profile_index_ != nullptr) profile_index_->Remove(t);
    return Status::Ok();
  }
  return Status::NotFound("no live table named " + name + " in the lake");
}

Status EmbeddingUnionSearch::AddTable(const table::Table& table) {
  if (lake_names_.size() != lake_columns_.size()) {
    return Status::FailedPrecondition(
        "engine state was restored from a snapshot, which does not carry "
        "table names; re-run IndexLake before mutating");
  }
  for (size_t t = 0; t < lake_names_.size(); ++t) {
    if (lake_removed_[t] == 0 && lake_names_[t] == table.name()) {
      return Status::InvalidArgument(
          "a live table named " + table.name() +
          " is already indexed; RemoveTable it first to replace it");
    }
  }
  std::vector<la::Vec> cols = encoder_.EncodeTable(table);
  la::Vec profile(encoder_.dim(), 0.0f);
  if (!cols.empty()) {
    profile = la::Mean(cols);
    la::NormalizeInPlace(&profile);
  }
  if (profile_index_ != nullptr) profile_index_->Add(profile);
  lake_columns_.push_back(std::move(cols));
  lake_profiles_.push_back(std::move(profile));
  lake_names_.push_back(table.name());
  lake_removed_.push_back(0);
  if (config_.cascade.enabled) {
    lake_signatures_.push_back(cascade::SignatureOf(table));
    if (config_.cascade.prescreen) {
      lake_sketches_.emplace_back(cascade::TableValueSample(table),
                                  config_.cascade.minhash_hashes,
                                  config_.cascade.minhash_seed);
    }
  }
  return Status::Ok();
}

double EmbeddingUnionSearch::TableScore(
    const std::vector<la::Vec>& query_cols,
    const std::vector<la::Vec>& lake_cols) const {
  if (query_cols.empty() || lake_cols.empty()) return 0.0;
  std::vector<double> weights(query_cols.size() * lake_cols.size(), 0.0);
  for (size_t i = 0; i < query_cols.size(); ++i) {
    for (size_t j = 0; j < lake_cols.size(); ++j) {
      weights[i * lake_cols.size() + j] = std::max(
          0.0, static_cast<double>(
                   la::CosineSimilarity(query_cols[i], lake_cols[j])));
    }
  }
  align::MatchingResult matching = align::MaxWeightBipartiteMatching(
      weights, query_cols.size(), lake_cols.size());
  return matching.total_weight / static_cast<double>(query_cols.size());
}

std::vector<TableHit> EmbeddingUnionSearch::SearchTables(
    const table::Table& query, size_t n) const {
  std::vector<la::Vec> query_cols = encoder_.EncodeTable(query);

  cascade::CandidateSet set;
  set.n = n;
  set.executor = executor_;
  set.tables.reserve(lake_columns_.size());
  // Removed tables never enter the candidate set. With none removed this
  // is the full identity set and every stage behaves exactly as before.
  for (size_t t = 0; t < lake_columns_.size(); ++t) {
    if (t < lake_removed_.size() && lake_removed_[t] != 0) continue;
    set.tables.push_back(t);
  }

  // Stage list for this query: optional prefilters, then the (possibly
  // degenerate) shortlist, then the exact rerank. Query-side signals are
  // computed only for the stages that will consume them.
  std::vector<const cascade::CandidateStage*> stages;
  if (config_.cascade.enabled && config_.cascade.prefilter) {
    set.query_signature = cascade::SignatureOf(query);
    stages.push_back(&prefilter_stage_);
  }
  MinHashSketch query_sketch;
  if (config_.cascade.enabled && config_.cascade.prescreen) {
    query_sketch = MinHashSketch(cascade::TableValueSample(query),
                                 config_.cascade.minhash_hashes,
                                 config_.cascade.minhash_seed);
    set.query_sketch = &query_sketch;
    stages.push_back(&prescreen_stage_);
  }
  la::Vec profile;
  if (profile_index_ != nullptr && config_.shortlist > 0) {
    profile.assign(encoder_.dim(), 0.0f);
    if (!query_cols.empty()) {
      profile = la::Mean(query_cols);
      la::NormalizeInPlace(&profile);
    }
    set.query_profile = &profile;
  }
  stages.push_back(&shortlist_stage_);
  cascade::ExactRerankStage rerank(
      [this, &query_cols](size_t t) {
        return TableScore(query_cols, lake_columns_[t]);
      });
  stages.push_back(&rerank);

  std::vector<cascade::StageStats> stats;
  Status status = cascade_.Run(stages, set, &stats);
  // Stage errors mean an engine wiring bug (missing signal, id out of
  // range), never a bad query — fail loud.
  DUST_CHECK(status.ok());
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    last_stats_ = std::move(stats);
  }
  return std::move(set.hits);
}

Status EmbeddingUnionSearch::SaveState(io::IndexWriter* writer) const {
  writer->WriteU64(lake_columns_.size());
  for (const std::vector<la::Vec>& cols : lake_columns_) {
    writer->WriteVecs(cols);
  }
  writer->WriteVecs(lake_profiles_);
  writer->WriteU8(profile_index_ != nullptr ? 1 : 0);
  DUST_RETURN_IF_ERROR(writer->status());
  if (profile_index_ != nullptr) {
    DUST_RETURN_IF_ERROR(io::WriteIndex(*profile_index_, writer));
  }
  // Cascade signals (snapshot format v2). A flag byte keeps disabled
  // configs round-tripping with no cascade payload at all.
  writer->WriteU8(config_.cascade.enabled ? 1 : 0);
  if (config_.cascade.enabled) {
    writer->WriteU64(lake_signatures_.size());
    for (const cascade::TableSignature& sig : lake_signatures_) {
      writer->WriteU64(sig.columns);
      writer->WriteU64(sig.numeric_columns);
    }
    writer->WriteU64(lake_sketches_.size());
    for (const MinHashSketch& sketch : lake_sketches_) {
      writer->WriteU8(sketch.empty() ? 1 : 0);
      writer->WriteU64(sketch.mins().size());
      for (uint64_t m : sketch.mins()) writer->WriteU64(m);
    }
  }
  return writer->status();
}

Status EmbeddingUnionSearch::LoadState(io::IndexReader* reader) {
  uint64_t num_tables = 0;
  DUST_RETURN_IF_ERROR(reader->ReadCount(sizeof(uint64_t), &num_tables));
  // Snapshots predate mutations and carry no table names: every restored
  // table is live, and RemoveTable refuses until IndexLake runs again.
  lake_names_.clear();
  lake_removed_.assign(num_tables, 0);
  lake_columns_.assign(num_tables, {});
  for (uint64_t t = 0; t < num_tables; ++t) {
    DUST_RETURN_IF_ERROR(reader->ReadVecs(&lake_columns_[t], encoder_.dim()));
  }
  DUST_RETURN_IF_ERROR(reader->ReadVecs(&lake_profiles_, encoder_.dim()));
  if (lake_profiles_.size() != num_tables) {
    return Status::IoError("snapshot profile/table count mismatch");
  }
  uint8_t has_index = 0;
  DUST_RETURN_IF_ERROR(reader->ReadU8(&has_index));
  profile_index_.reset();
  if (has_index != 0) {
    Result<std::unique_ptr<index::VectorIndex>> loaded = io::ReadIndex(reader);
    DUST_RETURN_IF_ERROR(loaded.status());
    profile_index_ = std::move(loaded).value();
    profile_index_->SetExecutor(executor_);
    if (profile_index_->size() != num_tables) {
      return Status::IoError("snapshot index/table count mismatch");
    }
  }
  // The stored index must match what this engine's config would build;
  // otherwise SearchTables would silently ignore or mis-use it.
  if ((config_.shortlist > 0) != (has_index != 0)) {
    return Status::FailedPrecondition(
        "snapshot shortlist index does not match engine config");
  }
  uint8_t cascade_enabled = 0;
  DUST_RETURN_IF_ERROR(reader->ReadU8(&cascade_enabled));
  if ((cascade_enabled != 0) != config_.cascade.enabled) {
    return Status::FailedPrecondition(
        "snapshot cascade signals do not match engine config");
  }
  lake_signatures_.clear();
  lake_sketches_.clear();
  if (cascade_enabled != 0) {
    uint64_t num_signatures = 0;
    DUST_RETURN_IF_ERROR(
        reader->ReadCount(2 * sizeof(uint64_t), &num_signatures));
    if (num_signatures != num_tables) {
      return Status::IoError("snapshot cascade signature count mismatch");
    }
    lake_signatures_.reserve(num_signatures);
    for (uint64_t t = 0; t < num_signatures; ++t) {
      cascade::TableSignature sig;
      DUST_RETURN_IF_ERROR(reader->ReadU64(&sig.columns));
      DUST_RETURN_IF_ERROR(reader->ReadU64(&sig.numeric_columns));
      lake_signatures_.push_back(sig);
    }
    uint64_t num_sketches = 0;
    DUST_RETURN_IF_ERROR(reader->ReadCount(sizeof(uint8_t), &num_sketches));
    if (num_sketches != 0 && num_sketches != num_tables) {
      return Status::IoError("snapshot cascade sketch count mismatch");
    }
    lake_sketches_.reserve(num_sketches);
    for (uint64_t t = 0; t < num_sketches; ++t) {
      uint8_t sketch_empty = 0;
      DUST_RETURN_IF_ERROR(reader->ReadU8(&sketch_empty));
      uint64_t num_mins = 0;
      DUST_RETURN_IF_ERROR(reader->ReadCount(sizeof(uint64_t), &num_mins));
      if (num_mins != config_.cascade.minhash_hashes) {
        return Status::FailedPrecondition(
            "snapshot prescreen sketch width does not match engine config");
      }
      std::vector<uint64_t> mins(num_mins, 0);
      for (uint64_t m = 0; m < num_mins; ++m) {
        DUST_RETURN_IF_ERROR(reader->ReadU64(&mins[m]));
      }
      lake_sketches_.push_back(
          MinHashSketch::FromState(std::move(mins), sketch_empty != 0));
    }
    if (config_.cascade.prescreen && lake_sketches_.size() != num_tables) {
      return Status::FailedPrecondition(
          "snapshot has no prescreen sketches but the engine config enables "
          "the prescreen stage");
    }
  }
  return Status::Ok();
}

}  // namespace dust::search
