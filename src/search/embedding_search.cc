#include "search/embedding_search.h"

#include <algorithm>

#include "align/hungarian.h"
#include "io/index_io.h"

namespace dust::search {

EmbeddingUnionSearch::EmbeddingUnionSearch(EmbeddingSearchConfig config)
    : config_(config), encoder_(config.encoder) {}

void EmbeddingUnionSearch::IndexLake(
    const std::vector<const table::Table*>& lake) {
  lake_columns_.clear();
  lake_profiles_.clear();
  lake_columns_.reserve(lake.size());
  lake_profiles_.reserve(lake.size());
  for (const table::Table* t : lake) {
    std::vector<la::Vec> cols = encoder_.EncodeTable(*t);
    la::Vec profile(encoder_.dim(), 0.0f);
    if (!cols.empty()) {
      profile = la::Mean(cols);
      la::NormalizeInPlace(&profile);
    }
    lake_columns_.push_back(std::move(cols));
    lake_profiles_.push_back(std::move(profile));
  }

  if (config_.shortlist > 0) {
    profile_index_ =
        index::MakeVectorIndex(config_.index_type, encoder_.dim(),
                               la::Metric::kCosine, config_.index_options);
    profile_index_->SetExecutor(executor_);
    profile_index_->AddAll(lake_profiles_);
  } else {
    profile_index_.reset();
  }
}

void EmbeddingUnionSearch::SetExecutor(serve::Executor* executor) {
  executor_ = executor;
  if (profile_index_ != nullptr) profile_index_->SetExecutor(executor);
}

double EmbeddingUnionSearch::TableScore(
    const std::vector<la::Vec>& query_cols,
    const std::vector<la::Vec>& lake_cols) const {
  if (query_cols.empty() || lake_cols.empty()) return 0.0;
  std::vector<double> weights(query_cols.size() * lake_cols.size(), 0.0);
  for (size_t i = 0; i < query_cols.size(); ++i) {
    for (size_t j = 0; j < lake_cols.size(); ++j) {
      weights[i * lake_cols.size() + j] = std::max(
          0.0, static_cast<double>(
                   la::CosineSimilarity(query_cols[i], lake_cols[j])));
    }
  }
  align::MatchingResult matching = align::MaxWeightBipartiteMatching(
      weights, query_cols.size(), lake_cols.size());
  return matching.total_weight / static_cast<double>(query_cols.size());
}

std::vector<TableHit> EmbeddingUnionSearch::SearchTables(
    const table::Table& query, size_t n) const {
  std::vector<la::Vec> query_cols = encoder_.EncodeTable(query);

  // Candidate set: everything, or an index shortlist over table profiles.
  std::vector<size_t> candidates;
  if (profile_index_ != nullptr && config_.shortlist > 0) {
    la::Vec profile(encoder_.dim(), 0.0f);
    if (!query_cols.empty()) {
      profile = la::Mean(query_cols);
      la::NormalizeInPlace(&profile);
    }
    for (const index::SearchHit& hit :
         profile_index_->Search(profile, config_.shortlist)) {
      candidates.push_back(hit.id);
    }
  } else {
    candidates.resize(lake_columns_.size());
    for (size_t t = 0; t < candidates.size(); ++t) candidates[t] = t;
  }

  std::vector<TableHit> hits;
  hits.reserve(candidates.size());
  for (size_t t : candidates) {
    hits.push_back({t, TableScore(query_cols, lake_columns_[t])});
  }
  std::sort(hits.begin(), hits.end(), [](const TableHit& a, const TableHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.table_index < b.table_index;
  });
  if (hits.size() > n) hits.resize(n);
  return hits;
}

Status EmbeddingUnionSearch::SaveState(io::IndexWriter* writer) const {
  writer->WriteU64(lake_columns_.size());
  for (const std::vector<la::Vec>& cols : lake_columns_) {
    writer->WriteVecs(cols);
  }
  writer->WriteVecs(lake_profiles_);
  writer->WriteU8(profile_index_ != nullptr ? 1 : 0);
  DUST_RETURN_IF_ERROR(writer->status());
  if (profile_index_ != nullptr) {
    DUST_RETURN_IF_ERROR(io::WriteIndex(*profile_index_, writer));
  }
  return writer->status();
}

Status EmbeddingUnionSearch::LoadState(io::IndexReader* reader) {
  uint64_t num_tables = 0;
  DUST_RETURN_IF_ERROR(reader->ReadCount(sizeof(uint64_t), &num_tables));
  lake_columns_.assign(num_tables, {});
  for (uint64_t t = 0; t < num_tables; ++t) {
    DUST_RETURN_IF_ERROR(reader->ReadVecs(&lake_columns_[t], encoder_.dim()));
  }
  DUST_RETURN_IF_ERROR(reader->ReadVecs(&lake_profiles_, encoder_.dim()));
  if (lake_profiles_.size() != num_tables) {
    return Status::IoError("snapshot profile/table count mismatch");
  }
  uint8_t has_index = 0;
  DUST_RETURN_IF_ERROR(reader->ReadU8(&has_index));
  profile_index_.reset();
  if (has_index != 0) {
    Result<std::unique_ptr<index::VectorIndex>> loaded = io::ReadIndex(reader);
    DUST_RETURN_IF_ERROR(loaded.status());
    profile_index_ = std::move(loaded).value();
    profile_index_->SetExecutor(executor_);
    if (profile_index_->size() != num_tables) {
      return Status::IoError("snapshot index/table count mismatch");
    }
  }
  // The stored index must match what this engine's config would build;
  // otherwise SearchTables would silently ignore or mis-use it.
  if ((config_.shortlist > 0) != (has_index != 0)) {
    return Status::FailedPrecondition(
        "snapshot shortlist index does not match engine config");
  }
  return Status::Ok();
}

}  // namespace dust::search
