#include "search/cascade/stages.h"

#include <algorithm>
#include <utility>

#include "la/distance.h"
#include "serve/executor.h"
#include "util/string_util.h"

namespace dust::search::cascade {

TableSignature SignatureOf(const table::Table& table) {
  TableSignature sig;
  sig.columns = table.num_columns();
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (table.column(c).NumericFraction() >= 0.5) ++sig.numeric_columns;
  }
  return sig;
}

std::vector<std::string> TableValueSample(const table::Table& table) {
  std::vector<std::string> values;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    for (const table::Value& v : table.column(c).values) {
      if (v.is_null()) continue;
      values.push_back(ToLower(v.text()));
    }
  }
  return values;
}

bool PrefilterCompatible(const TableSignature& query,
                         const TableSignature& candidate,
                         const CascadeConfig& config) {
  if (query.columns == 0) return true;
  if (candidate.columns == 0) return false;
  const uint64_t query_text = query.columns - query.numeric_columns;
  const uint64_t candidate_text = candidate.columns - candidate.numeric_columns;
  const uint64_t overlap = std::min(query_text, candidate_text) +
                           std::min(query.numeric_columns,
                                    candidate.numeric_columns);
  // Epsilon keeps "overlap == min_type_overlap * columns" admitted despite
  // float rounding in the product.
  const double required =
      config.prefilter_min_type_overlap * static_cast<double>(query.columns);
  if (static_cast<double>(overlap) + 1e-9 < required) return false;
  return static_cast<double>(candidate.columns) <=
         config.prefilter_max_column_ratio *
                 static_cast<double>(query.columns) +
             1e-9;
}

Status TypePrefilterStage::Run(CandidateSet& set) const {
  std::vector<size_t> kept;
  kept.reserve(set.tables.size());
  for (size_t t : set.tables) {
    if (t >= signatures_->size()) {
      return Status::Internal("prefilter candidate id out of range");
    }
    if (PrefilterCompatible(set.query_signature, (*signatures_)[t],
                            *config_)) {
      kept.push_back(t);
    }
  }
  set.tables = std::move(kept);
  return Status::Ok();
}

Status MinHashPrescreenStage::Run(CandidateSet& set) const {
  const size_t keep = config_->prescreen_keep;
  if (keep == 0 || set.tables.size() <= keep) return Status::Ok();
  if (set.query_sketch == nullptr) {
    return Status::Internal("prescreen stage was run without a query sketch");
  }
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(set.tables.size());
  for (size_t t : set.tables) {
    if (t >= sketches_->size()) {
      return Status::Internal("prescreen candidate id out of range");
    }
    scored.emplace_back(set.query_sketch->EstimateJaccard((*sketches_)[t]),
                        t);
  }
  std::sort(scored.begin(), scored.end(),
            [](const std::pair<double, size_t>& a,
               const std::pair<double, size_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  scored.resize(keep);
  set.tables.clear();
  for (const auto& [similarity, t] : scored) set.tables.push_back(t);
  // Survivors stay in ascending-id order, like the untouched candidate
  // set, so downstream stages see a deterministic layout either way.
  std::sort(set.tables.begin(), set.tables.end());
  return Status::Ok();
}

Status VectorShortlistStage::Run(CandidateSet& set) const {
  const index::VectorIndex* index = index_slot_->get();
  if (shortlist_ == 0 || index == nullptr) return Status::Ok();
  if (set.query_profile == nullptr) {
    return Status::Internal("shortlist stage was run without a query profile");
  }
  if (set.tables.size() >= profiles_->size()) {
    // Untouched candidate set: delegate to the index exactly as the flat
    // path does, preserving its (possibly approximate) behavior bit for
    // bit.
    std::vector<index::SearchHit> hits =
        index->Search(*set.query_profile, shortlist_);
    set.tables.clear();
    set.tables.reserve(hits.size());
    for (const index::SearchHit& hit : hits) set.tables.push_back(hit.id);
    return Status::Ok();
  }
  // Pre-pruned set: the index covers tables the earlier layers already
  // rejected, so score the survivors exactly and keep FinalizeHits
  // semantics (ascending distance, ties toward lower ids, truncate).
  std::vector<index::SearchHit> hits;
  hits.reserve(set.tables.size());
  for (size_t t : set.tables) {
    if (t >= profiles_->size()) {
      return Status::Internal("shortlist candidate id out of range");
    }
    hits.push_back({t, la::Distance(la::Metric::kCosine, *set.query_profile,
                                    (*profiles_)[t])});
  }
  index::FinalizeHits(&hits, shortlist_);
  set.tables.clear();
  set.tables.reserve(hits.size());
  for (const index::SearchHit& hit : hits) set.tables.push_back(hit.id);
  return Status::Ok();
}

Status ExactRerankStage::Run(CandidateSet& set) const {
  std::vector<TableHit> hits(set.tables.size());
  const auto score_one = [&](size_t i) {
    hits[i] = {set.tables[i], scorer_(set.tables[i])};
  };
  // Scorers are pure per-table functions, so pooled scoring is
  // deterministic: every slot is written exactly once, then sorted.
  if (set.executor != nullptr && set.tables.size() > 1) {
    set.executor->ParallelFor(set.tables.size(), score_one);
  } else {
    for (size_t i = 0; i < set.tables.size(); ++i) score_one(i);
  }
  std::sort(hits.begin(), hits.end(), [](const TableHit& a, const TableHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.table_index < b.table_index;
  });
  if (hits.size() > set.n) hits.resize(set.n);
  set.tables.clear();
  set.tables.reserve(hits.size());
  for (const TableHit& hit : hits) set.tables.push_back(hit.table_index);
  set.hits = std::move(hits);
  return Status::Ok();
}

}  // namespace dust::search::cascade
