// Concrete cascade stages: type prefilter, MinHash prescreen, vector
// shortlist, exact rerank. Stage objects borrow the engine's lake-side
// signal tables (signatures, sketches, profiles, index slot) by pointer, so
// they survive IndexLake/LoadState rebuilds without reconstruction.
#ifndef DUST_SEARCH_CASCADE_STAGES_H_
#define DUST_SEARCH_CASCADE_STAGES_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "index/vector_index.h"
#include "search/cascade/candidate_stage.h"
#include "table/table.h"

namespace dust::search::cascade {

/// Column-type signature of a table: a column counts as numeric when at
/// least half of its non-null values parse as numbers.
TableSignature SignatureOf(const table::Table& table);

/// Lowercased non-null cell texts of every column — the value set the
/// prescreen's MinHash sketches are built over.
std::vector<std::string> TableValueSample(const table::Table& table);

/// Layer-1 admission rule: the candidate must cover at least
/// `prefilter_min_type_overlap` of the query's columns with type-compatible
/// columns (text-to-text, numeric-to-numeric) and must not be wider than
/// `prefilter_max_column_ratio` times the query. A column-less query passes
/// everything (nothing to judge); a column-less candidate never matches.
bool PrefilterCompatible(const TableSignature& query,
                         const TableSignature& candidate,
                         const CascadeConfig& config);

/// Layer 1 — metadata/type prefilter. O(candidates) signature compares;
/// this is where >90% of a heterogeneous lake should fall away.
class TypePrefilterStage : public CandidateStage {
 public:
  TypePrefilterStage(const std::vector<TableSignature>* signatures,
                     const CascadeConfig* config)
      : signatures_(signatures), config_(config) {}

  std::string name() const override { return "prefilter"; }
  Status Run(CandidateSet& set) const override;

 private:
  const std::vector<TableSignature>* signatures_;
  const CascadeConfig* config_;
};

/// Layer 2 — MinHash value-overlap prescreen: keeps the `prescreen_keep`
/// candidates with the highest estimated Jaccard overlap against the
/// query's value sketch (ties break toward lower table ids). A candidate
/// set already at or under the cap passes through untouched.
class MinHashPrescreenStage : public CandidateStage {
 public:
  MinHashPrescreenStage(const std::vector<MinHashSketch>* sketches,
                        const CascadeConfig* config)
      : sketches_(sketches), config_(config) {}

  std::string name() const override { return "prescreen"; }
  Status Run(CandidateSet& set) const override;

 private:
  const std::vector<MinHashSketch>* sketches_;
  const CascadeConfig* config_;
};

/// Layer 3 — vector shortlist over table profiles. With an untouched
/// candidate set it delegates to the installed index exactly as the flat
/// path does (bit-identical, including approximate-index behavior); with a
/// pre-pruned set it scores the survivors exactly and applies FinalizeHits
/// semantics. shortlist == 0 or no index = pass-through (exact scoring of
/// every survivor downstream).
class VectorShortlistStage : public CandidateStage {
 public:
  VectorShortlistStage(const std::unique_ptr<index::VectorIndex>* index_slot,
                       const std::vector<la::Vec>* profiles, size_t shortlist)
      : index_slot_(index_slot), profiles_(profiles), shortlist_(shortlist) {}

  std::string name() const override { return "shortlist"; }
  Status Run(CandidateSet& set) const override;

 private:
  const std::unique_ptr<index::VectorIndex>* index_slot_;
  const std::vector<la::Vec>* profiles_;
  size_t shortlist_;
};

/// Layer 4 — exact rerank. Scores every surviving candidate with the
/// engine-supplied scorer (pure per-table, so scoring in parallel on the
/// installed executor is deterministic), sorts descending by (score, id),
/// truncates to `set.n`, and fills `set.hits`.
class ExactRerankStage : public CandidateStage {
 public:
  using TableScorer = std::function<double(size_t)>;

  explicit ExactRerankStage(TableScorer scorer) : scorer_(std::move(scorer)) {}

  std::string name() const override { return "rerank"; }
  Status Run(CandidateSet& set) const override;

 private:
  TableScorer scorer_;
};

}  // namespace dust::search::cascade

#endif  // DUST_SEARCH_CASCADE_STAGES_H_
