#include "search/cascade/cascade_search.h"

#include <cstring>
#include <iomanip>
#include <sstream>
#include <utility>

#include "obs/trace.h"
#include "text/hashing.h"
#include "util/stopwatch.h"

namespace dust::search::cascade {

namespace {

uint64_t ChainHash(uint64_t h, uint64_t v) {
  char bytes[sizeof(v)];
  std::memcpy(bytes, &v, sizeof(v));
  return text::HashString(std::string_view(bytes, sizeof(v)), h);
}

uint64_t ChainHash(uint64_t h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(v));
  return ChainHash(h, bits);
}

/// Stage latencies span nanosecond prefilters to millisecond reranks.
std::vector<double> StageMicrosBounds() {
  return {1,    2,    5,     10,    25,    50,     100,    250,
          500,  1000, 2500,  5000,  10000, 25000,  50000,  100000,
          250000, 500000};
}

}  // namespace

uint64_t ChainCascadeConfig(uint64_t h, const CascadeConfig& config) {
  h = text::HashString("dust-cascade-v1", h);
  h = ChainHash(h, static_cast<uint64_t>(config.enabled));
  h = ChainHash(h, static_cast<uint64_t>(config.prefilter));
  h = ChainHash(h, static_cast<uint64_t>(config.prescreen));
  h = ChainHash(h, config.prefilter_min_type_overlap);
  h = ChainHash(h, config.prefilter_max_column_ratio);
  h = ChainHash(h, static_cast<uint64_t>(config.prescreen_keep));
  h = ChainHash(h, static_cast<uint64_t>(config.minhash_hashes));
  h = ChainHash(h, config.minhash_seed);
  return h;
}

CascadeSearch::Instruments::Instruments() : micros(StageMicrosBounds()) {}

CascadeSearch::CascadeSearch(std::vector<std::string> stage_names)
    : names_(std::move(stage_names)) {
  instruments_.reserve(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    instruments_.push_back(std::make_unique<Instruments>());
  }
}

Status CascadeSearch::Run(const std::vector<const CandidateStage*>& stages,
                          CandidateSet& set,
                          std::vector<StageStats>* stats) const {
  for (const CandidateStage* stage : stages) {
    const std::string name = stage->name();
    size_t slot = names_.size();
    for (size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) {
        slot = i;
        break;
      }
    }
    if (slot == names_.size()) {
      return Status::Internal("cascade stage '" + name +
                              "' was not declared at construction");
    }
    const size_t in = set.tables.size();
    obs::Span span("stage:" + name);
    Stopwatch watch;
    DUST_RETURN_IF_ERROR(stage->Run(set));
    const double micros = watch.Seconds() * 1e6;
    const size_t out = set.tables.size();
    span.AddTag("in", static_cast<uint64_t>(in));
    span.AddTag("out", static_cast<uint64_t>(out));
    Instruments& instruments = *instruments_[slot];
    instruments.runs.Increment();
    instruments.in.Increment(in);
    instruments.out.Increment(out);
    instruments.micros.Record(micros);
    if (stats != nullptr) stats->push_back({name, in, out, micros});
  }
  return Status::Ok();
}

void CascadeSearch::RegisterMetrics(serve::Metrics* metrics) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    const std::string prefix = "dust_cascade_stage_" + names_[i];
    metrics->RegisterCounter(prefix + "_runs_total", &instruments_[i]->runs);
    metrics->RegisterCounter(prefix + "_in_total", &instruments_[i]->in);
    metrics->RegisterCounter(prefix + "_out_total", &instruments_[i]->out);
    metrics->RegisterHistogram(prefix + "_micros", &instruments_[i]->micros);
  }
}

std::string CascadeSearch::StatsSummary() const {
  std::ostringstream out;
  for (size_t i = 0; i < names_.size(); ++i) {
    const Instruments& instruments = *instruments_[i];
    const uint64_t runs = instruments.runs.value();
    if (runs == 0) continue;
    const uint64_t in = instruments.in.value();
    const uint64_t kept = instruments.out.value();
    const double reduction =
        in > 0 ? 1.0 - static_cast<double>(kept) / static_cast<double>(in)
               : 0.0;
    out << "stage " << std::left << std::setw(10) << names_[i] << " runs="
        << runs << " in=" << in << " out=" << kept << " reduction="
        << std::fixed << std::setprecision(3) << reduction << " mean_us="
        << std::setprecision(1)
        << instruments.micros.sum() / static_cast<double>(runs) << "\n";
  }
  return out.str();
}

}  // namespace dust::search::cascade
