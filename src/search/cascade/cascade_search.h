// CascadeSearch — the driver that runs a query's CandidateSet through its
// stage list, timing every stage and accounting in/out candidate counts
// both per query (StageStats) and cumulatively (atomic instruments
// exported through serve::Metrics as dust_cascade_stage_*).
#ifndef DUST_SEARCH_CASCADE_CASCADE_SEARCH_H_
#define DUST_SEARCH_CASCADE_CASCADE_SEARCH_H_

#include <memory>
#include <string>
#include <vector>

#include "search/cascade/candidate_stage.h"
#include "serve/metrics.h"

namespace dust::search::cascade {

/// Chains every CascadeConfig knob into a running FNV-1a hash — the
/// snapshot staleness hash and the tuple-search config hash both fold this
/// in, so any cascade drift invalidates persisted state and cache entries.
uint64_t ChainCascadeConfig(uint64_t h, const CascadeConfig& config);

/// Stage-list runner with cumulative per-stage observability. The
/// instrument set is fixed at construction (metrics must be registerable
/// before the first query); running a stage whose name was not declared is
/// an Internal error, not a silent accounting gap.
class CascadeSearch {
 public:
  explicit CascadeSearch(std::vector<std::string> stage_names);

  /// Runs `set` through `stages` in order, recording per-stage in/out
  /// candidate counts and elapsed microseconds into the cumulative
  /// instruments and, when `stats` is non-null, into one StageStats entry
  /// per stage. Thread-safe: instruments are atomics and `set` is caller-
  /// owned.
  Status Run(const std::vector<const CandidateStage*>& stages,
             CandidateSet& set, std::vector<StageStats>* stats) const;

  /// Registers, per declared stage name:
  ///   dust_cascade_stage_<name>_runs_total
  ///   dust_cascade_stage_<name>_in_total
  ///   dust_cascade_stage_<name>_out_total   (counters)
  ///   dust_cascade_stage_<name>_micros      (histogram)
  /// Instruments are owned here; this object must outlive the registry.
  void RegisterMetrics(serve::Metrics* metrics) const;

  /// Human-readable cumulative summary, one line per stage that has run;
  /// empty before any traffic.
  std::string StatsSummary() const;

 private:
  struct Instruments {
    serve::Counter runs;
    serve::Counter in;
    serve::Counter out;
    serve::Histogram micros;
    Instruments();
  };

  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Instruments>> instruments_;  // parallel to names_
};

}  // namespace dust::search::cascade

#endif  // DUST_SEARCH_CASCADE_CASCADE_SEARCH_H_
