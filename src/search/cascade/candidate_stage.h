// Staged retrieval cascade — the candidate-set pipeline the search engines
// run every query through (ROADMAP "Multi-stage retrieval cascade").
//
// The shape follows PEXESO's block-and-verify pivot filtering and the
// EasyTUS production pipeline: prune candidates with signals that cost
// microseconds (column-type signatures), then cents (MinHash Jaccard), then
// dollars (vector shortlist), and only pay the exact rerank for the
// survivors. Every stage narrows one shared CandidateSet and reports its
// in/out counts and elapsed time, so the reduction each layer buys is
// observable per query (StageStats) and cumulatively (serve::Metrics).
//
// The flat path is the degenerate cascade — shortlist + rerank with no
// prefilters — not a separate code path, so cascade top-k stays verifiably
// consistent with it (bit-identical when the prefilters are off).
#ifndef DUST_SEARCH_CASCADE_CANDIDATE_STAGE_H_
#define DUST_SEARCH_CASCADE_CANDIDATE_STAGE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "la/vector_ops.h"
#include "search/minhash.h"
#include "search/union_search.h"
#include "util/status.h"

namespace dust::serve {
class Executor;
}  // namespace dust::serve

namespace dust::search::cascade {

/// Per-stage knobs, threaded from PipelineConfig / TupleSearchConfig down
/// to the stages. Every field shapes results, so all of them are baked into
/// the snapshot staleness hash (ChainCascadeConfig) and the tuple-search
/// config hash.
struct CascadeConfig {
  /// Master switch; off = the degenerate (flat-equivalent) cascade.
  bool enabled = false;
  /// Layer 1: column-count/type-signature prefilter.
  bool prefilter = true;
  /// Layer 2: MinHash value-overlap prescreen.
  bool prescreen = true;
  /// Minimum fraction of the query's columns a candidate must cover with
  /// type-compatible columns to survive the prefilter.
  double prefilter_min_type_overlap = 0.5;
  /// Candidates with more than this many columns per query column are
  /// pruned (wide junk tables rarely union cleanly).
  double prefilter_max_column_ratio = 4.0;
  /// Candidates kept by the prescreen (0 disables the cut; a candidate set
  /// already at or under the cap passes through untouched).
  size_t prescreen_keep = 64;
  /// MinHash sketch width for the prescreen (per-table value sketches are
  /// built at IndexLake time and persisted in snapshots).
  size_t minhash_hashes = 64;
  uint64_t minhash_seed = 0xD057CA5CADEULL;
};

/// Column-type signature of a table — the layer-1 prefilter's entire view
/// of a candidate, cheap enough to compare in nanoseconds.
struct TableSignature {
  uint64_t columns = 0;
  uint64_t numeric_columns = 0;
};

/// What one stage did to one query's candidate set.
struct StageStats {
  std::string stage;
  size_t in = 0;
  size_t out = 0;
  double micros = 0.0;
};

/// The shared state a query threads through the cascade: the surviving
/// candidate table ids, the query-side signals each stage may need, and the
/// final ranked hits the rerank stage fills in. Stages only ever narrow
/// `tables`; the driver owns ordering and accounting.
struct CandidateSet {
  /// Final result size requested (the rerank stage truncates to it).
  size_t n = 0;
  /// Shared thread pool for stages that fan out (may be null).
  serve::Executor* executor = nullptr;
  /// Query-side signals; a stage that needs one left null fails closed
  /// with an Internal error rather than guessing.
  TableSignature query_signature;
  const MinHashSketch* query_sketch = nullptr;
  const la::Vec* query_profile = nullptr;
  /// Surviving candidate lake-table ids, narrowed stage by stage.
  std::vector<size_t> tables;
  /// Ranked results, filled by the rerank stage.
  std::vector<TableHit> hits;
};

/// One layer of the cascade. Implementations must be const-thread-safe:
/// the serving path runs many queries through the same stage objects
/// concurrently.
class CandidateStage {
 public:
  virtual ~CandidateStage() = default;

  /// Stable stage name — the StageStats label and the metric-name suffix
  /// (dust_cascade_stage_<name>_*).
  virtual std::string name() const = 0;

  /// Narrows (or ranks) `set` in place. Errors mean a wiring bug (missing
  /// query signal, candidate id out of range), never a bad query.
  virtual Status Run(CandidateSet& set) const = 0;
};

}  // namespace dust::search::cascade

#endif  // DUST_SEARCH_CASCADE_CANDIDATE_STAGE_H_
