// Table union search interface (SearchTables step of Algorithm 1).
#ifndef DUST_SEARCH_UNION_SEARCH_H_
#define DUST_SEARCH_UNION_SEARCH_H_

#include <string>
#include <vector>

#include "table/table.h"
#include "util/status.h"

namespace dust::io {
class IndexWriter;
class IndexReader;
}  // namespace dust::io

namespace dust::serve {
class Executor;
}  // namespace dust::serve

namespace dust::search {

struct TableHit {
  size_t table_index = 0;  // index into the lake
  double score = 0.0;      // higher = more unionable
};

/// Finds the top-N data lake tables unionable with a query table.
class UnionSearch {
 public:
  virtual ~UnionSearch() = default;

  /// Indexes the lake once; must be called before SearchTables.
  virtual void IndexLake(const std::vector<const table::Table*>& lake) = 0;

  /// Top-N lake tables by unionability score, descending.
  virtual std::vector<TableHit> SearchTables(const table::Table& query,
                                             size_t n) const = 0;

  virtual std::string name() const = 0;

  /// Persists the state IndexLake built (embeddings, shortlist index) into
  /// an open snapshot writer, so a serving process can LoadState instead of
  /// re-embedding the lake. Engines without an offline/online split keep
  /// the Unimplemented default.
  virtual Status SaveState(io::IndexWriter* writer) const {
    (void)writer;
    return Status::Unimplemented(name() + " does not support snapshots");
  }

  /// Restores SaveState output into a freshly-configured engine; after it
  /// succeeds SearchTables serves as if IndexLake had run.
  virtual Status LoadState(io::IndexReader* reader) {
    (void)reader;
    return Status::Unimplemented(name() + " does not support snapshots");
  }

  /// Routes the engine's internal index fan-out (e.g. a sharded shortlist
  /// index's per-query scatter) through a shared thread pool, so serving
  /// processes create zero threads per query. Engines without an index
  /// ignore it. Install during setup, before concurrent traffic.
  virtual void SetExecutor(serve::Executor* executor) { (void)executor; }

  /// Removes the live lake table named `name` from the engine's view:
  /// after it succeeds, SearchTables never returns the table again.
  /// NotFound when no live table carries the name. Mutations are not
  /// synchronized against in-flight SearchTables calls — quiesce first.
  /// Engines without mutation support keep the Unimplemented default.
  virtual Status RemoveTable(const std::string& name) {
    return Status::Unimplemented(this->name() + " does not support removing " +
                                 name);
  }

  /// Appends `table` to the engine's view without re-indexing the lake;
  /// its index becomes the next table_index. InvalidArgument when a live
  /// table already carries the name.
  virtual Status AddTable(const table::Table& table) {
    return Status::Unimplemented(name() + " does not support adding " +
                                 table.name());
  }

  /// Cumulative per-stage statistics of the engine's retrieval cascade,
  /// human-readable; engines without a staged retrieval path return empty.
  virtual std::string CascadeStatsSummary() const { return std::string(); }
};

}  // namespace dust::search

#endif  // DUST_SEARCH_UNION_SEARCH_H_
