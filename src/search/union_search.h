// Table union search interface (SearchTables step of Algorithm 1).
#ifndef DUST_SEARCH_UNION_SEARCH_H_
#define DUST_SEARCH_UNION_SEARCH_H_

#include <string>
#include <vector>

#include "table/table.h"

namespace dust::search {

struct TableHit {
  size_t table_index = 0;  // index into the lake
  double score = 0.0;      // higher = more unionable
};

/// Finds the top-N data lake tables unionable with a query table.
class UnionSearch {
 public:
  virtual ~UnionSearch() = default;

  /// Indexes the lake once; must be called before SearchTables.
  virtual void IndexLake(const std::vector<const table::Table*>& lake) = 0;

  /// Top-N lake tables by unionability score, descending.
  virtual std::vector<TableHit> SearchTables(const table::Table& query,
                                             size_t n) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace dust::search

#endif  // DUST_SEARCH_UNION_SEARCH_H_
