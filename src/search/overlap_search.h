// D3L-style union search (Bogatu et al., ICDE'20): aggregates several
// column-level unionability signals — header-name similarity, value overlap
// (MinHash Jaccard), format similarity (character-3-gram Jaccard), and word-
// embedding similarity — into a column score, then scores a table by a
// greedy one-to-one matching of its columns to the query's.
#ifndef DUST_SEARCH_OVERLAP_SEARCH_H_
#define DUST_SEARCH_OVERLAP_SEARCH_H_

#include <memory>

#include "embed/embedder.h"
#include "search/minhash.h"
#include "search/union_search.h"

namespace dust::search {

struct OverlapSearchConfig {
  size_t minhash_hashes = 64;
  size_t embedding_dim = 64;
  uint64_t seed = 4242;
  /// Signal weights: name, value overlap, format, embedding.
  double weight_name = 0.25;
  double weight_values = 0.35;
  double weight_format = 0.15;
  double weight_embedding = 0.25;
};

/// Rejects meaningless signal weightings with InvalidArgument: any negative
/// weight (a signal cannot count against unionability) or an all-zero total
/// (every signal muted, all scores identically 0). Config loaders should
/// pre-validate; the engine constructor aborts on an invalid config.
Status ValidateOverlapConfig(const OverlapSearchConfig& config);

class OverlapUnionSearch : public UnionSearch {
 public:
  explicit OverlapUnionSearch(OverlapSearchConfig config = {});

  void IndexLake(const std::vector<const table::Table*>& lake) override;
  std::vector<TableHit> SearchTables(const table::Table& query,
                                     size_t n) const override;
  std::string name() const override { return "D3L"; }

 private:
  /// Per-column signature used by all signals.
  struct ColumnSignature {
    std::vector<std::string> name_tokens;
    MinHashSketch values;
    MinHashSketch format;  // 3-gram sketch
    la::Vec embedding;
  };

  ColumnSignature SignColumn(const table::Column& column) const;
  double ColumnScore(const ColumnSignature& a, const ColumnSignature& b) const;

  OverlapSearchConfig config_;
  std::shared_ptr<embed::TextEmbedder> embedder_;
  std::vector<std::vector<ColumnSignature>> lake_signatures_;
};

}  // namespace dust::search

#endif  // DUST_SEARCH_OVERLAP_SEARCH_H_
