#include "search/minhash.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "text/hashing.h"
#include "util/rng.h"
#include "util/status.h"

namespace dust::search {

MinHashSketch::MinHashSketch(const std::vector<std::string>& items,
                             size_t num_hashes, uint64_t seed) {
  mins_.assign(num_hashes, std::numeric_limits<uint64_t>::max());
  for (const std::string& item : items) {
    uint64_t base = text::HashString(item, seed);
    // One strong base hash per item, re-mixed per permutation (cheap and
    // adequate for Jaccard estimation).
    for (size_t h = 0; h < num_hashes; ++h) {
      uint64_t value = SplitMix64(base ^ (0x9E3779B97F4A7C15ULL * (h + 1)));
      mins_[h] = std::min(mins_[h], value);
    }
    empty_ = false;
  }
}

MinHashSketch MinHashSketch::FromState(std::vector<uint64_t> mins,
                                       bool empty) {
  MinHashSketch sketch;
  sketch.mins_ = std::move(mins);
  sketch.empty_ = empty;
  return sketch;
}

double MinHashSketch::EstimateJaccard(const MinHashSketch& other) const {
  // Sketches of mismatched width estimate collision rates of unrelated
  // permutations, and zero-width sketches would divide by zero — both are
  // "no usable signal", reported as zero similarity instead of garbage.
  if (mins_.size() != other.mins_.size() || mins_.empty()) return 0.0;
  if (empty_ || other.empty_) return 0.0;
  size_t equal = 0;
  for (size_t h = 0; h < mins_.size(); ++h) {
    if (mins_[h] == other.mins_[h]) ++equal;
  }
  return static_cast<double>(equal) / static_cast<double>(mins_.size());
}

double ExactJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 0.0;
  size_t intersection = 0;
  for (const std::string& x : sa) {
    if (sb.count(x) > 0) ++intersection;
  }
  size_t uni = sa.size() + sb.size() - intersection;
  return uni == 0 ? 0.0
                  : static_cast<double>(intersection) / static_cast<double>(uni);
}

}  // namespace dust::search
