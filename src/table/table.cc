#include "table/table.h"

#include <algorithm>

namespace dust::table {

double Column::NumericFraction() const {
  size_t non_null = 0;
  size_t numeric = 0;
  for (const Value& v : values) {
    if (v.is_null()) continue;
    ++non_null;
    if (v.IsNumeric()) ++numeric;
  }
  if (non_null == 0) return 1.0;
  return static_cast<double>(numeric) / static_cast<double>(non_null);
}

bool Column::AllNull() const {
  return std::all_of(values.begin(), values.end(),
                     [](const Value& v) { return v.is_null(); });
}

int Table::ColumnIndex(const std::string& name) const {
  for (size_t j = 0; j < columns_.size(); ++j) {
    if (columns_[j].name == name) return static_cast<int>(j);
  }
  return -1;
}

void Table::AddColumn(std::string name) {
  Column col;
  col.name = std::move(name);
  col.values.assign(num_rows(), Value::Null());
  columns_.push_back(std::move(col));
}

Status Table::AddColumn(std::string name, std::vector<Value> values) {
  if (!columns_.empty() && values.size() != num_rows()) {
    return Status::InvalidArgument("column size mismatch for " + name);
  }
  Column col;
  col.name = std::move(name);
  col.values = std::move(values);
  columns_.push_back(std::move(col));
  return Status::Ok();
}

Status Table::AddRow(std::vector<Value> row) {
  if (row.size() != num_columns()) {
    return Status::InvalidArgument("row arity mismatch in table " + name_);
  }
  for (size_t j = 0; j < row.size(); ++j) {
    columns_[j].values.push_back(std::move(row[j]));
  }
  return Status::Ok();
}

std::vector<Value> Table::Row(size_t i) const {
  std::vector<Value> row;
  row.reserve(num_columns());
  for (const Column& col : columns_) row.push_back(col.values[i]);
  return row;
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const Column& col : columns_) names.push_back(col.name);
  return names;
}

void Table::DropAllNullColumns() {
  columns_.erase(std::remove_if(columns_.begin(), columns_.end(),
                                [](const Column& c) { return c.AllNull(); }),
                 columns_.end());
}

Table Table::SelectRows(const std::vector<size_t>& rows) const {
  Table out(name_);
  for (const Column& col : columns_) {
    std::vector<Value> values;
    values.reserve(rows.size());
    for (size_t r : rows) values.push_back(col.values[r]);
    DUST_CHECK(out.AddColumn(col.name, std::move(values)).ok());
  }
  return out;
}

Table Table::ProjectColumns(const std::vector<size_t>& cols) const {
  Table out(name_);
  for (size_t j : cols) {
    DUST_CHECK(out.AddColumn(columns_[j].name, columns_[j].values).ok());
  }
  return out;
}

}  // namespace dust::table
