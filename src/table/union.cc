#include "table/union.h"

#include <unordered_set>

namespace dust::table {

Result<Table> OuterUnion(const std::vector<const Table*>& sources,
                         const std::vector<ColumnMapping>& mappings,
                         const std::vector<std::string>& target_headers,
                         std::vector<TupleRef>* provenance) {
  if (sources.size() != mappings.size()) {
    return Status::InvalidArgument("sources/mappings size mismatch");
  }
  Table out("outer_union");
  for (const std::string& header : target_headers) out.AddColumn(header);
  if (provenance != nullptr) provenance->clear();

  for (size_t t = 0; t < sources.size(); ++t) {
    const Table& src = *sources[t];
    const ColumnMapping& mapping = mappings[t];
    if (mapping.size() != target_headers.size()) {
      return Status::InvalidArgument("mapping arity mismatch for table " +
                                     src.name());
    }
    for (int j : mapping) {
      if (j >= static_cast<int>(src.num_columns())) {
        return Status::OutOfRange("mapping index out of range for table " +
                                  src.name());
      }
    }
    for (size_t r = 0; r < src.num_rows(); ++r) {
      std::vector<Value> row;
      row.reserve(target_headers.size());
      for (int j : mapping) {
        row.push_back(j < 0 ? Value::Null()
                            : src.at(r, static_cast<size_t>(j)));
      }
      DUST_RETURN_IF_ERROR(out.AddRow(std::move(row)));
      if (provenance != nullptr) provenance->push_back({t, r});
    }
  }
  return out;
}

namespace {

Status CheckSameSchema(const std::vector<const Table*>& sources) {
  if (sources.empty()) return Status::InvalidArgument("no tables to union");
  const auto names = sources[0]->ColumnNames();
  for (const Table* t : sources) {
    if (t->ColumnNames() != names) {
      return Status::InvalidArgument("schema mismatch in union: " + t->name());
    }
  }
  return Status::Ok();
}

}  // namespace

Result<Table> BagUnion(const std::vector<const Table*>& sources,
                       const std::string& name) {
  DUST_RETURN_IF_ERROR(CheckSameSchema(sources));
  Table out(name);
  for (const std::string& header : sources[0]->ColumnNames()) {
    out.AddColumn(header);
  }
  for (const Table* src : sources) {
    for (size_t r = 0; r < src->num_rows(); ++r) {
      DUST_RETURN_IF_ERROR(out.AddRow(src->Row(r)));
    }
  }
  return out;
}

Result<Table> SetUnion(const std::vector<const Table*>& sources,
                       const std::string& name) {
  Result<Table> bag = BagUnion(sources, name);
  if (!bag.ok()) return bag.status();
  Table deduped = DeduplicateRows(bag.value());
  deduped.set_name(name);
  return deduped;
}

std::string RowKey(const Table& table, size_t row) {
  std::string key;
  for (size_t j = 0; j < table.num_columns(); ++j) {
    const Value& v = table.at(row, j);
    if (v.is_null()) {
      key += "\x01";  // distinct from any text
    } else {
      key += v.text();
    }
    key += '\x02';
  }
  return key;
}

Table DeduplicateRows(const Table& table) {
  std::unordered_set<std::string> seen;
  std::vector<size_t> keep;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (seen.insert(RowKey(table, r)).second) keep.push_back(r);
  }
  return table.SelectRows(keep);
}

}  // namespace dust::table
