// Table union operators.
//
// OuterUnion implements the null-padded union of Sec. 3.3: given a mapping
// from each source table's columns to target (query) columns, the result has
// the target schema; unmapped target columns are padded with nulls. Bag and
// set unions are used by the Fig. 8 case study (Starmie vs Starmie-D).
#ifndef DUST_TABLE_UNION_H_
#define DUST_TABLE_UNION_H_

#include <string>
#include <vector>

#include "table/table.h"
#include "util/status.h"

namespace dust::table {

/// Per-source-table mapping: entry i gives, for target column i, the source
/// column index or -1 when the source table has no aligned column.
using ColumnMapping = std::vector<int>;

/// Outer-unions `sources` into the schema given by `target_headers`.
/// `mappings[t]` maps target columns to columns of `sources[t]` (-1 = null
/// pad). Also returns, via `provenance`, the (table,row) of each result row.
Result<Table> OuterUnion(const std::vector<const Table*>& sources,
                         const std::vector<ColumnMapping>& mappings,
                         const std::vector<std::string>& target_headers,
                         std::vector<TupleRef>* provenance);

/// Bag union of same-schema tables (duplicates kept), in the given order.
Result<Table> BagUnion(const std::vector<const Table*>& sources,
                       const std::string& name);

/// Set union of same-schema tables (exact duplicate rows removed, first
/// occurrence kept).
Result<Table> SetUnion(const std::vector<const Table*>& sources,
                       const std::string& name);

/// Row-level duplicate removal within one table (first occurrence kept).
Table DeduplicateRows(const Table& table);

/// Canonical key of a row (null-aware) for dedup and novelty counting.
std::string RowKey(const Table& table, size_t row);

}  // namespace dust::table

#endif  // DUST_TABLE_UNION_H_
