#include "table/value.h"

#include <cstdlib>

#include "util/string_util.h"

namespace dust::table {

bool Value::IsNumeric() const { return !is_null_ && dust::IsNumeric(text_); }

double Value::AsNumber() const {
  if (is_null_) return 0.0;
  return std::strtod(text_.c_str(), nullptr);
}

std::string Value::ToDisplay() const { return is_null_ ? "nan" : text_; }

}  // namespace dust::table
