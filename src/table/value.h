// Cell values. Data lake cells are strings with an explicit null flag
// (outer union pads missing columns with nulls, Sec. 3.3); numeric cells are
// detected on demand for benchmarks with numeric columns (Sec. 6.2.4).
#ifndef DUST_TABLE_VALUE_H_
#define DUST_TABLE_VALUE_H_

#include <string>
#include <string_view>

namespace dust::table {

/// A single cell: text plus a null flag.
class Value {
 public:
  /// Null value.
  Value() : is_null_(true) {}
  /// Non-null text value.
  explicit Value(std::string text) : text_(std::move(text)), is_null_(false) {}

  static Value Null() { return Value(); }

  bool is_null() const { return is_null_; }
  const std::string& text() const { return text_; }

  /// True when the value parses as a number (null is not numeric).
  bool IsNumeric() const;

  /// Numeric interpretation; 0.0 for null/non-numeric.
  double AsNumber() const;

  /// Display form: the text, or "nan" for null (the paper's placeholder).
  std::string ToDisplay() const;

  bool operator==(const Value& other) const {
    return is_null_ == other.is_null_ && (is_null_ || text_ == other.text_);
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  std::string text_;
  bool is_null_;
};

}  // namespace dust::table

#endif  // DUST_TABLE_VALUE_H_
