// Tuple serialization (Sec. 4).
//
// A tuple is fed to the embedding models as
//   [CLS] c1 v1 [SEP] c2 v2 [SEP] ... [SEP] cn vn [SEP]
// where ci is the column header and vi its value. When a tuple was aligned
// to a query table, only the aligned columns are serialized, in query-column
// order, and null-padded cells are skipped (Example 4).
#ifndef DUST_TABLE_SERIALIZE_H_
#define DUST_TABLE_SERIALIZE_H_

#include <string>
#include <vector>

#include "table/table.h"

namespace dust::table {

inline constexpr const char* kClsToken = "[CLS]";
inline constexpr const char* kSepToken = "[SEP]";

/// Serializes one (header, value) sequence. Null values are skipped entirely
/// (their header is not emitted either).
std::string SerializeTuple(const std::vector<std::string>& headers,
                           const std::vector<Value>& values);

/// Serializes row `i` of `table` using its own headers/column order.
std::string SerializeTableRow(const Table& table, size_t row);

/// Serializes row `i` keeping only `column_subset` (indices into `table`),
/// emitted in the given order with headers renamed to `renamed_headers`
/// (same length as `column_subset`). Used after column alignment, where data
/// lake columns adopt the aligned query column's header (Example 4).
std::string SerializeTableRowAligned(const Table& table, size_t row,
                                     const std::vector<int>& column_subset,
                                     const std::vector<std::string>& renamed_headers);

}  // namespace dust::table

#endif  // DUST_TABLE_SERIALIZE_H_
