#include "table/csv.h"

#include <fstream>
#include <sstream>

namespace dust::table {

namespace {

// Parses all CSV records from `text`. Handles quoted fields with embedded
// separators, escaped quotes (""), and both \n and \r\n record endings.
std::vector<std::vector<std::string>> ParseRecords(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    current.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    // Skip completely empty records (e.g., trailing newline).
    if (current.size() != 1 || !current[0].empty()) {
      records.push_back(current);
    }
    current.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field_started && field.empty()) {
          in_quotes = true;
          field_started = true;
        } else {
          field += c;  // stray quote mid-field: keep literal
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // handled with the following \n
      case '\n':
        end_record();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (!field.empty() || field_started || !current.empty()) end_record();
  return records;
}

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Table> ParseCsv(const std::string& text, const std::string& table_name) {
  auto records = ParseRecords(text);
  if (records.empty()) {
    return Status::InvalidArgument("CSV has no header record");
  }
  Table table(table_name);
  const auto& header = records[0];
  for (const std::string& name : header) {
    table.AddColumn(name);
  }
  for (size_t r = 1; r < records.size(); ++r) {
    const auto& record = records[r];
    if (record.size() != header.size()) {
      return Status::InvalidArgument(
          "CSV record arity mismatch at record " + std::to_string(r));
    }
    std::vector<Value> row;
    row.reserve(record.size());
    for (const std::string& cell : record) {
      row.push_back(cell.empty() ? Value::Null() : Value(cell));
    }
    DUST_RETURN_IF_ERROR(table.AddRow(std::move(row)));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  size_t slash = path.find_last_of('/');
  std::string base = (slash == std::string::npos) ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  if (dot != std::string::npos) base = base.substr(0, dot);
  return ParseCsv(buffer.str(), base);
}

std::string ToCsv(const Table& table) {
  std::string out;
  for (size_t j = 0; j < table.num_columns(); ++j) {
    if (j > 0) out += ',';
    out += QuoteField(table.column(j).name);
  }
  out += '\n';
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (size_t j = 0; j < table.num_columns(); ++j) {
      if (j > 0) out += ',';
      const Value& v = table.at(i, j);
      if (!v.is_null()) out += QuoteField(v.text());
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ToCsv(table);
  return out.good() ? Status::Ok() : Status::IoError("write failed: " + path);
}

}  // namespace dust::table
