// RFC-4180-style CSV reading and writing (quoted fields, embedded commas,
// quotes, and newlines). Empty fields load as nulls.
#ifndef DUST_TABLE_CSV_H_
#define DUST_TABLE_CSV_H_

#include <string>

#include "table/table.h"
#include "util/status.h"

namespace dust::table {

/// Parses CSV text (first record is the header) into a Table.
Result<Table> ParseCsv(const std::string& text, const std::string& table_name);

/// Reads a CSV file; the table is named after the file's basename.
Result<Table> ReadCsvFile(const std::string& path);

/// Serializes a table to CSV text (header + rows; nulls as empty fields).
std::string ToCsv(const Table& table);

/// Writes CSV to `path`.
Status WriteCsvFile(const Table& table, const std::string& path);

}  // namespace dust::table

#endif  // DUST_TABLE_CSV_H_
