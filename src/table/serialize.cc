#include "table/serialize.h"

#include "util/status.h"

namespace dust::table {

std::string SerializeTuple(const std::vector<std::string>& headers,
                           const std::vector<Value>& values) {
  DUST_CHECK(headers.size() == values.size());
  std::string out = kClsToken;
  bool emitted_any = false;
  for (size_t i = 0; i < headers.size(); ++i) {
    if (values[i].is_null()) continue;
    out += ' ';
    out += headers[i];
    out += ' ';
    out += values[i].text();
    out += ' ';
    out += kSepToken;
    emitted_any = true;
  }
  if (!emitted_any) {
    out += ' ';
    out += kSepToken;
  }
  return out;
}

std::string SerializeTableRow(const Table& table, size_t row) {
  std::vector<std::string> headers = table.ColumnNames();
  return SerializeTuple(headers, table.Row(row));
}

std::string SerializeTableRowAligned(
    const Table& table, size_t row, const std::vector<int>& column_subset,
    const std::vector<std::string>& renamed_headers) {
  DUST_CHECK(column_subset.size() == renamed_headers.size());
  std::vector<std::string> headers;
  std::vector<Value> values;
  headers.reserve(column_subset.size());
  values.reserve(column_subset.size());
  for (size_t i = 0; i < column_subset.size(); ++i) {
    int j = column_subset[i];
    if (j < 0) {
      // The table has no column aligned to this query column: treat as null.
      headers.push_back(renamed_headers[i]);
      values.push_back(Value::Null());
      continue;
    }
    headers.push_back(renamed_headers[i]);
    values.push_back(table.at(row, static_cast<size_t>(j)));
  }
  return SerializeTuple(headers, values);
}

}  // namespace dust::table
