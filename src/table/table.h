// Table / Column / Tuple data model.
//
// A Table is a named, column-oriented relation. Tuples are row views used by
// serialization, embedding, and diversification; TupleRef identifies a tuple
// by (table, row) so diversification results keep full provenance.
#ifndef DUST_TABLE_TABLE_H_
#define DUST_TABLE_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "table/value.h"
#include "util/status.h"

namespace dust::table {

/// A named column of values.
struct Column {
  std::string name;
  std::vector<Value> values;

  size_t size() const { return values.size(); }

  /// Fraction of non-null numeric values among non-null values (1.0 for an
  /// all-null column).
  double NumericFraction() const;

  /// True when every value is null (such columns are dropped per Sec. 6.1).
  bool AllNull() const;
};

/// Column-oriented table.
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }

  const Column& column(size_t j) const { return columns_[j]; }
  Column& column(size_t j) { return columns_[j]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or -1.
  int ColumnIndex(const std::string& name) const;

  /// Appends an empty column (rows are padded with nulls to num_rows()).
  void AddColumn(std::string name);

  /// Appends a fully populated column; must match num_rows() unless the
  /// table has no columns yet.
  Status AddColumn(std::string name, std::vector<Value> values);

  /// Appends a row; must have num_columns() entries.
  Status AddRow(std::vector<Value> row);

  /// Value at (row i, column j).
  const Value& at(size_t i, size_t j) const { return columns_[j].values[i]; }

  /// Materialized row.
  std::vector<Value> Row(size_t i) const;

  /// Column headers in order.
  std::vector<std::string> ColumnNames() const;

  /// Removes columns whose values are all null (benchmark hygiene, Sec. 6.1).
  void DropAllNullColumns();

  /// Keeps only the rows with the given indices (in the given order).
  Table SelectRows(const std::vector<size_t>& rows) const;

  /// Keeps only the columns with the given indices (in the given order).
  Table ProjectColumns(const std::vector<size_t>& cols) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

/// Identifies one tuple inside a set of tables: (table index, row index).
struct TupleRef {
  size_t table_index = 0;
  size_t row_index = 0;

  bool operator==(const TupleRef& other) const {
    return table_index == other.table_index && row_index == other.row_index;
  }
};

}  // namespace dust::table

#endif  // DUST_TABLE_TABLE_H_
