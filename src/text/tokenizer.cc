#include "text/tokenizer.h"

#include <cctype>

namespace dust::text {

std::vector<std::string> WordTokens(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  };
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      cur += static_cast<char>(std::tolower(c));
    } else {
      flush();
    }
  }
  flush();
  return out;
}

std::vector<std::string> CharNgrams(std::string_view s, size_t n) {
  std::vector<std::string> out;
  for (const std::string& word : WordTokens(s)) {
    std::string padded = "<" + word + ">";
    if (padded.size() <= n) {
      out.push_back(padded);
      continue;
    }
    for (size_t i = 0; i + n <= padded.size(); ++i) {
      out.push_back(padded.substr(i, n));
    }
  }
  return out;
}

std::vector<std::string> SubwordPieces(std::string_view s, size_t max_piece) {
  std::vector<std::string> out;
  if (max_piece == 0) max_piece = 4;
  for (const std::string& word : WordTokens(s)) {
    if (word.size() <= max_piece) {
      out.push_back(word);
      continue;
    }
    size_t pos = 0;
    bool first = true;
    while (pos < word.size()) {
      size_t len = std::min(max_piece, word.size() - pos);
      std::string piece = word.substr(pos, len);
      if (!first) piece = "##" + piece;
      out.push_back(piece);
      pos += len;
      first = false;
    }
  }
  return out;
}

size_t ApproxTokenCount(std::string_view s) {
  size_t count = 0;
  bool in_token = false;
  for (char raw : s) {
    bool space = std::isspace(static_cast<unsigned char>(raw)) != 0;
    if (!space && !in_token) ++count;
    in_token = !space;
  }
  return count;
}

}  // namespace dust::text
