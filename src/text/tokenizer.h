// Tokenization utilities used by the embedding models.
//
// Three granularities mirror the model families of Sec. 6.2.3:
//  - word tokens        (FastText / GloVe style)
//  - character n-grams  (FastText subword enrichment)
//  - subword pieces     (BERT / RoBERTa / sBERT style: words split into
//                        bounded-length pieces, approximating WordPiece)
#ifndef DUST_TEXT_TOKENIZER_H_
#define DUST_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace dust::text {

/// Lowercases and splits on non-alphanumeric boundaries; digits are kept as
/// their own tokens so "773 731-0380" yields {"773", "731", "0380"}.
std::vector<std::string> WordTokens(std::string_view s);

/// Character n-grams of each word padded with '<' '>' (FastText convention).
/// E.g. n=3, "park" -> {"<pa", "par", "ark", "rk>"}.
std::vector<std::string> CharNgrams(std::string_view s, size_t n);

/// Greedy fixed-length subword pieces per word (WordPiece approximation):
/// "chippewa" with max_piece=4 -> {"chip", "##pewa"... } pieces of at most
/// `max_piece` chars, continuation pieces prefixed with "##".
std::vector<std::string> SubwordPieces(std::string_view s, size_t max_piece);

/// Number of whitespace-separated tokens — the token budget proxy used by
/// the simulated LLM baseline.
size_t ApproxTokenCount(std::string_view s);

}  // namespace dust::text

#endif  // DUST_TEXT_TOKENIZER_H_
