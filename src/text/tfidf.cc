#include "text/tfidf.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace dust::text {

TfidfModel::TfidfModel(const std::vector<std::vector<std::string>>& documents)
    : num_documents_(documents.size()) {
  for (const auto& doc : documents) {
    std::unordered_set<std::string> seen(doc.begin(), doc.end());
    for (const auto& token : seen) ++doc_freq_[token];
  }
}

float TfidfModel::Idf(const std::string& token) const {
  auto it = doc_freq_.find(token);
  size_t df = (it == doc_freq_.end()) ? 0 : it->second;
  return std::log((1.0f + static_cast<float>(num_documents_)) /
                  (1.0f + static_cast<float>(df))) +
         1.0f;
}

std::unordered_map<std::string, float> TfidfModel::Weights(
    const std::vector<std::string>& tokens) const {
  std::unordered_map<std::string, float> tf;
  for (const auto& token : tokens) tf[token] += 1.0f;
  for (auto& [token, weight] : tf) {
    weight = (weight / static_cast<float>(tokens.size())) * Idf(token);
  }
  return tf;
}

std::vector<std::string> TfidfModel::TopTokens(
    const std::vector<std::string>& tokens, size_t limit) const {
  auto weights = Weights(tokens);
  std::vector<std::pair<std::string, float>> ranked(weights.begin(),
                                                    weights.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > limit) ranked.resize(limit);
  std::vector<std::string> out;
  out.reserve(ranked.size());
  for (auto& [token, weight] : ranked) out.push_back(token);
  return out;
}

}  // namespace dust::text
