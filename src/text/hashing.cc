#include "text/hashing.h"

#include <algorithm>
#include <map>

#include "util/rng.h"
#include "util/status.h"

namespace dust::text {

uint64_t HashString(std::string_view s, uint64_t seed) {
  uint64_t h = 14695981039346656037ULL ^ SplitMix64(seed);
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  // Final avalanche so low bits are well mixed for modulo indexing.
  return SplitMix64(h);
}

namespace {
inline void HashOne(std::string_view token, size_t dim, uint64_t seed,
                    uint32_t* index, float* sign) {
  uint64_t h = HashString(token, seed);
  *index = static_cast<uint32_t>(h % dim);
  *sign = (h >> 63) ? 1.0f : -1.0f;
}
}  // namespace

std::vector<float> HashTokensToVector(const std::vector<std::string>& tokens,
                                      size_t dim, uint64_t seed) {
  std::vector<float> weights(tokens.size(), 1.0f);
  return HashTokensToVectorWeighted(tokens, weights, dim, seed);
}

std::vector<float> HashTokensToVectorWeighted(
    const std::vector<std::string>& tokens, const std::vector<float>& weights,
    size_t dim, uint64_t seed) {
  DUST_CHECK(tokens.size() == weights.size());
  DUST_CHECK(dim > 0);
  std::vector<float> out(dim, 0.0f);
  for (size_t i = 0; i < tokens.size(); ++i) {
    uint32_t index;
    float sign;
    HashOne(tokens[i], dim, seed, &index, &sign);
    out[index] += sign * weights[i];
  }
  return out;
}

SparseVector HashTokensSparse(const std::vector<std::string>& tokens,
                              size_t dim, uint64_t seed) {
  DUST_CHECK(dim > 0);
  std::map<uint32_t, float> acc;
  for (const std::string& token : tokens) {
    uint32_t index;
    float sign;
    HashOne(token, dim, seed, &index, &sign);
    acc[index] += sign;
  }
  SparseVector sv;
  sv.indices.reserve(acc.size());
  sv.values.reserve(acc.size());
  for (const auto& [idx, val] : acc) {
    if (val == 0.0f) continue;  // cancelled signs
    sv.indices.push_back(idx);
    sv.values.push_back(val);
  }
  return sv;
}

}  // namespace dust::text
