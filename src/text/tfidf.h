// TF-IDF weighting and top-token selection.
//
// Sec. 6.2.3: language-model baselines have a 512-token input limit, so each
// column keeps only its 512 most representative tokens ranked by TF-IDF.
#ifndef DUST_TEXT_TFIDF_H_
#define DUST_TEXT_TFIDF_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace dust::text {

/// Corpus-level document-frequency statistics. A "document" is whatever unit
/// the caller chooses (for column alignment: one column's token bag).
class TfidfModel {
 public:
  /// Builds document frequencies from tokenized documents.
  explicit TfidfModel(const std::vector<std::vector<std::string>>& documents);

  size_t num_documents() const { return num_documents_; }

  /// Smoothed inverse document frequency: ln((1+N)/(1+df)) + 1.
  float Idf(const std::string& token) const;

  /// TF-IDF weights for `tokens` (term frequency within this bag times IDF).
  std::unordered_map<std::string, float> Weights(
      const std::vector<std::string>& tokens) const;

  /// The `limit` tokens of `tokens` with the highest TF-IDF weight, ties
  /// broken lexicographically for determinism. Duplicates collapse.
  std::vector<std::string> TopTokens(const std::vector<std::string>& tokens,
                                     size_t limit) const;

 private:
  size_t num_documents_;
  std::unordered_map<std::string, size_t> doc_freq_;
};

}  // namespace dust::text

#endif  // DUST_TEXT_TFIDF_H_
