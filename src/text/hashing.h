// 64-bit string hashing and the feature-hashing trick.
//
// The hashed encoders (DESIGN.md §1) replace pre-trained transformer weights
// with deterministic token hashing: each token is mapped to a dimension and a
// sign, and a text is the (weighted) sum of its token features. Different
// "models" use different hash seeds, so their embedding spaces are
// independent — mirroring the fact that BERT and RoBERTa embed text into
// unrelated spaces.
#ifndef DUST_TEXT_HASHING_H_
#define DUST_TEXT_HASHING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dust::text {

/// FNV-1a 64-bit hash, optionally mixed with a seed.
uint64_t HashString(std::string_view s, uint64_t seed = 0);

/// Feature-hashes `tokens` into a `dim`-dimensional vector: token t adds
/// weight * sign(t) at index h(t) % dim. Deterministic in (token, seed).
std::vector<float> HashTokensToVector(const std::vector<std::string>& tokens,
                                      size_t dim, uint64_t seed);

/// Weighted variant: tokens[i] contributes weights[i].
std::vector<float> HashTokensToVectorWeighted(
    const std::vector<std::string>& tokens, const std::vector<float>& weights,
    size_t dim, uint64_t seed);

/// Sparse feature view: index/value pairs (duplicate indices summed),
/// used as the frozen feature extractor of the trainable DUST model.
struct SparseVector {
  std::vector<uint32_t> indices;
  std::vector<float> values;
};

/// Hashes tokens into a sparse `dim`-dimensional representation with signed
/// values; duplicates are merged. Indices are sorted ascending.
SparseVector HashTokensSparse(const std::vector<std::string>& tokens,
                              size_t dim, uint64_t seed);

}  // namespace dust::text

#endif  // DUST_TEXT_HASHING_H_
