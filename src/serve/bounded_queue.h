// Bounded MPMC queue with blocking backpressure — the admission control of
// the query server. A full queue blocks producers (Submit) instead of
// dropping requests; a closed queue drains whatever is already admitted so
// shutdown completes in-flight work.
#ifndef DUST_SERVE_BOUNDED_QUEUE_H_
#define DUST_SERVE_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace dust::serve {

/// Fixed-capacity multi-producer multi-consumer FIFO. All methods are
/// thread-safe. T must be movable (it may hold a promise).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full (backpressure, never drops). True once
  /// `item` is enqueued; false — leaving `item` untouched — when the queue
  /// was closed before space opened up. Push after Close() is well-defined
  /// and non-blocking: it returns false immediately and `item` keeps its
  /// value, so the producer can complete the request itself (fail the
  /// promise, run inline) instead of leaking it.
  bool Push(T&& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    ++total_pushed_;
    if (items_.size() > max_depth_) max_depth_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available. False only when the queue is closed
  /// AND drained — every admitted item is still delivered after Close().
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return PopLocked(&lock, out);
  }

  /// As Pop, but gives up at `deadline`: false on timeout with the queue
  /// still empty (and on closed-and-drained). An already-passed deadline
  /// makes this a non-blocking try-pop.
  bool PopUntil(T* out, std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_until(lock, deadline,
                          [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    return PopLocked(&lock, out);
  }

  /// Stops admission: subsequent (and blocked) Push calls return false,
  /// consumers drain the remaining items and then get false. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// High-water mark of size() over the queue's lifetime (serving stats).
  size_t max_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_depth_;
  }

  /// Items ever admitted (serving observability: admissions counter).
  uint64_t total_pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_pushed_;
  }

  size_t capacity() const { return capacity_; }

 private:
  bool PopLocked(std::unique_lock<std::mutex>* lock, T* out) {
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock->unlock();
    not_full_.notify_one();
    return true;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  size_t max_depth_ = 0;
  uint64_t total_pushed_ = 0;
};

}  // namespace dust::serve

#endif  // DUST_SERVE_BOUNDED_QUEUE_H_
