#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/status.h"

namespace dust::serve {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string FormatValue(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  DUST_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

std::vector<double> Histogram::LatencyBoundsMs() {
  return {0.05, 0.1, 0.25, 0.5, 1.0,   2.5,   5.0,   10.0,
          25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0};
}

std::vector<double> Histogram::OccupancyBounds() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0};
}

void Histogram::Record(double value) {
  // lower_bound, not upper_bound: a sample exactly on a bound belongs to
  // that bound's bucket (Prometheus le="x" means <= x).
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      observed, DoubleBits(BitsDouble(observed) + value),
      std::memory_order_relaxed)) {
  }
  observed = max_bits_.load(std::memory_order_relaxed);
  while (BitsDouble(observed) < value &&
         !max_bits_.compare_exchange_weak(observed, DoubleBits(value),
                                          std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const {
  return BitsDouble(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const {
  return BitsDouble(max_bits_.load(std::memory_order_relaxed));
}

double Histogram::Quantile(double q) const {
  // Snapshot the buckets once; concurrent Records may land between loads,
  // so the rank is computed against the snapshot's own total.
  std::vector<uint64_t> snapshot(buckets_.size());
  uint64_t total = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snapshot[i];
  }
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < snapshot.size(); ++i) {
    if (snapshot[i] == 0) continue;
    if (cumulative + snapshot[i] < rank) {
      cumulative += snapshot[i];
      continue;
    }
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    // The overflow bucket has no upper edge; the largest recorded sample
    // bounds the interpolation instead.
    const double upper =
        i < bounds_.size() ? bounds_[i] : std::max(lower, max());
    const double within = static_cast<double>(rank - cumulative) /
                          static_cast<double>(snapshot[i]);
    // No quantile can exceed the largest observed sample; clamping tightens
    // the interpolation when a bucket is sparsely filled.
    return std::min(lower + (upper - lower) * within, max());
  }
  return max();
}

const char* ReadinessName(Readiness state) {
  switch (state) {
    case Readiness::kStarting:
      return "starting";
    case Readiness::kReady:
      return "ready";
    case Readiness::kDraining:
      return "draining";
  }
  DUST_CHECK(false && "unknown readiness state");
  return "unknown";
}

void Metrics::Register(const std::string& name, Instrument instrument) {
  std::lock_guard<std::mutex> lock(mu_);
  // Re-registration overwrites: last writer wins, matching the "component
  // owns its instruments" model where a name has exactly one owner.
  instruments_[name] = std::move(instrument);
}

void Metrics::RegisterCounter(const std::string& name, const Counter* counter) {
  DUST_CHECK(counter != nullptr);
  Instrument instrument;
  instrument.counter = counter;
  Register(name, std::move(instrument));
}

void Metrics::RegisterGauge(const std::string& name, const Gauge* gauge) {
  DUST_CHECK(gauge != nullptr);
  Instrument instrument;
  instrument.gauge = gauge;
  Register(name, std::move(instrument));
}

void Metrics::RegisterHistogram(const std::string& name,
                                const Histogram* histogram) {
  DUST_CHECK(histogram != nullptr);
  Instrument instrument;
  instrument.histogram = histogram;
  Register(name, std::move(instrument));
}

void Metrics::RegisterCallback(const std::string& name,
                               std::function<double()> fn) {
  DUST_CHECK(fn != nullptr);
  Instrument instrument;
  instrument.callback = std::move(fn);
  Register(name, std::move(instrument));
}

std::string Metrics::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, instrument] : instruments_) {
    // Prometheus exposition format wants each metric preceded by a # TYPE
    // line. Callbacks are pull-gauges, except the _total convention marks
    // a monotonically increasing series.
    if (instrument.counter != nullptr) {
      out += "# TYPE " + name + " counter\n";
      out += name + " " + std::to_string(instrument.counter->value()) + "\n";
    } else if (instrument.gauge != nullptr) {
      out += "# TYPE " + name + " gauge\n";
      out += name + " " + std::to_string(instrument.gauge->value()) + "\n";
    } else if (instrument.callback) {
      out += "# TYPE " + name +
             (EndsWith(name, "_total") ? " counter\n" : " gauge\n");
      out += name + " " + FormatValue(instrument.callback()) + "\n";
    } else if (instrument.histogram != nullptr) {
      const Histogram& h = *instrument.histogram;
      out += "# TYPE " + name + " histogram\n";
      // Cumulative buckets, Prometheus-style: le="x" counts samples <= x.
      uint64_t cumulative = 0;
      for (size_t i = 0; i < h.num_buckets(); ++i) {
        cumulative += h.bucket_value(i);
        const std::string le =
            i < h.bounds().size() ? FormatValue(h.bounds()[i]) : "+Inf";
        out += name + "_bucket{le=\"" + le + "\"} " +
               std::to_string(cumulative) + "\n";
      }
      out += name + "_sum " + FormatValue(h.sum()) + "\n";
      out += name + "_count " + std::to_string(h.count()) + "\n";
    }
  }
  return out;
}

std::string Metrics::RenderTable() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  size_t width = 0;
  for (const auto& [name, instrument] : instruments_) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, instrument] : instruments_) {
    std::string value;
    if (instrument.counter != nullptr) {
      value = std::to_string(instrument.counter->value());
    } else if (instrument.gauge != nullptr) {
      value = std::to_string(instrument.gauge->value());
    } else if (instrument.callback) {
      value = FormatValue(instrument.callback());
    } else if (instrument.histogram != nullptr) {
      const Histogram& h = *instrument.histogram;
      value = "count " + std::to_string(h.count()) +
              "  p50 " + FormatValue(h.Quantile(0.50)) +
              "  p95 " + FormatValue(h.Quantile(0.95)) +
              "  p99 " + FormatValue(h.Quantile(0.99)) +
              "  max " + FormatValue(h.max());
    }
    out += name;
    out.append(width - name.size() + 2, ' ');
    out += value + "\n";
  }
  return out;
}

}  // namespace dust::serve
