// Bounded LRU cache of tuple-search results — the hot-query fast path.
//
// Production traffic is skewed: a handful of hot queries dominate. Caching
// their hit lists turns a repeat query into a fingerprint computation plus
// one striped-map probe, never touching the batch queue or the index.
//
// Keys are (query fingerprint, k, config hash): the fingerprint is FNV-1a
// over the query's encoded row vectors, so two tables that encode
// identically share an entry, and the config hash pins the index/pipeline
// knobs that shape results. Every entry additionally records the lake
// snapshot hash it was computed against; a lookup under a different hash is
// a miss and evicts the stale entry, so a reloaded or re-indexed lake can
// never serve stale hits.
//
// The map is striped: kStripes independent (mutex, LRU list, hash map)
// triplets, each owning 1/kStripes of the entry and byte budget, so
// concurrent hits on different stripes never serialize behind one lock —
// and never behind the dispatcher, which only touches the cache on insert.
#ifndef DUST_SERVE_RESULT_CACHE_H_
#define DUST_SERVE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "search/tuple_search.h"
#include "serve/metrics.h"

namespace dust::serve {

struct ResultCacheOptions {
  /// Maximum cached entries across all stripes. 0 entries disables caching
  /// at the QueryServer layer; the cache itself treats 0 as capacity 1.
  size_t capacity_entries = 4096;
  /// Maximum bytes of cached hit lists across all stripes.
  size_t capacity_bytes = size_t{64} << 20;
  /// Lock stripes; more stripes = less contention, coarser LRU. Use 1 for
  /// a globally LRU-ordered cache (deterministic eviction in tests).
  size_t stripes = 16;
};

class ResultCache {
 public:
  struct Key {
    uint64_t query_fingerprint = 0;
    uint64_t k = 0;
    uint64_t config_hash = 0;

    bool operator==(const Key& other) const {
      return query_fingerprint == other.query_fingerprint && k == other.k &&
             config_hash == other.config_hash;
    }
  };

  explicit ResultCache(ResultCacheOptions options);

  /// True and fills `*out` with a copy of the cached (bit-identical) hit
  /// list when `key` is present AND was inserted under `snapshot_hash`.
  /// An entry under a different snapshot hash is erased, counted as an
  /// invalidation, and reported as a miss.
  bool Lookup(const Key& key, uint64_t snapshot_hash,
              std::vector<search::TupleHit>* out);

  /// Inserts (or refreshes) `key` -> `hits` computed against
  /// `snapshot_hash`, evicting least-recently-used entries of the stripe
  /// while over the entry or byte budget. A hit list alone larger than the
  /// stripe's byte budget is not cached.
  void Insert(const Key& key, uint64_t snapshot_hash,
              const std::vector<search::TupleHit>& hits);

  void Clear();

  uint64_t hits() const { return hits_.value(); }
  uint64_t misses() const { return misses_.value(); }
  uint64_t evictions() const { return evictions_.value(); }
  uint64_t invalidations() const { return invalidations_.value(); }
  size_t entries() const { return static_cast<size_t>(entries_.value()); }
  size_t bytes() const { return static_cast<size_t>(bytes_.value()); }

  /// Publishes the cache's counters and occupancy gauges into `metrics`
  /// under dust_cache_*. The cache must outlive the registry's renders.
  void RegisterWith(Metrics* metrics) const;

  const ResultCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    Key key;
    uint64_t snapshot_hash = 0;
    std::vector<search::TupleHit> hits;
    size_t bytes = 0;
  };

  struct KeyHash {
    size_t operator()(const Key& key) const;
  };

  /// One lock stripe: its own LRU list (front = most recent) and index.
  struct Stripe {
    std::mutex mu;
    std::list<Entry> lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    size_t bytes = 0;
  };

  Stripe& StripeOf(const Key& key);
  /// Removes `it` from `stripe` (caller holds stripe.mu) and updates the
  /// occupancy gauges.
  void EraseLocked(Stripe* stripe, std::list<Entry>::iterator it);

  const ResultCacheOptions options_;
  const size_t stripe_entry_budget_;
  const size_t stripe_byte_budget_;
  std::vector<std::unique_ptr<Stripe>> stripes_;

  Counter hits_;
  Counter misses_;
  Counter evictions_;
  Counter invalidations_;
  Counter insertions_;
  Gauge entries_;
  Gauge bytes_;
};

}  // namespace dust::serve

#endif  // DUST_SERVE_RESULT_CACHE_H_
