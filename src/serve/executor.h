// Shared fixed-size thread-pool executor — the serving-path replacement for
// ad-hoc `std::thread` spawning.
//
// Before this existed, every ShardedIndex::Search scattered across freshly
// created threads and every non-OpenMP SearchBatch spun up a worker pool per
// call; under concurrent query traffic that is thousands of thread
// creations per second on the hot path. An Executor is created once (per
// QueryServer, bench, or CLI invocation) and reused: steady-state serving
// does zero thread creation.
//
// The header is dependency-free (standard library only) so the low-level
// index layer can take an optional `serve::Executor*` without a layering
// inversion.
#ifndef DUST_SERVE_EXECUTOR_H_
#define DUST_SERVE_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dust::serve {

/// Fixed pool of worker threads executing submitted tasks FIFO. All methods
/// are thread-safe; tasks may themselves call ParallelFor (nested fan-out
/// cannot deadlock because the calling thread always participates in its
/// own loop). Destruction completes every task already submitted, then
/// joins the workers.
class Executor {
 public:
  /// Spawns `num_threads` workers. 0 is valid and means "run everything
  /// inline on the calling thread" — useful for deterministic tests and as
  /// a no-concurrency fallback.
  explicit Executor(size_t num_threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `fn` for execution on a pool thread (inline when the pool is
  /// empty). The future becomes ready when `fn` returns; `fn` must not
  /// throw (the library does not use exceptions across API boundaries).
  /// A Submit that races with destruction runs `fn` inline on the calling
  /// thread instead of queuing it — the future always becomes ready, never
  /// broken or orphaned.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs body(0..n-1), each index exactly once, and returns when all have
  /// completed. Iterations run concurrently on the pool plus the calling
  /// thread; the caller always drains work itself, so ParallelFor from
  /// inside a pool task completes even when every other worker is busy.
  /// `body` must be safe to invoke concurrently for distinct indices.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Total tasks executed by pool threads (or inline when the pool is
  /// empty) over the executor's lifetime. Observability only — a serving
  /// metrics registry publishes it as a counter.
  uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }

  /// Workers currently inside a task — the executor-utilization gauge
  /// (busy_threads() / num_threads() is the pool's instantaneous load).
  size_t busy_threads() const {
    return busy_.load(std::memory_order_relaxed);
  }

 private:
  struct ForLoop;

  /// Runs ForLoop iterations until the loop's shared counter is exhausted.
  static void Drain(const std::shared_ptr<ForLoop>& loop);

  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable task_ready_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<size_t> busy_{0};
  std::vector<std::thread> threads_;
};

}  // namespace dust::serve

#endif  // DUST_SERVE_EXECUTOR_H_
