// Async query server — the online half of the heavy-traffic north star.
//
// Concurrent clients Submit tuple-search requests and get futures back; a
// dispatcher thread admits requests from a bounded queue (backpressure: a
// full queue blocks Submit, it never drops), micro-batches them within a
// configurable window, and answers each batch through one
// TupleSearch::SearchTuplesBatch call on a shared executor. Results are
// bit-identical to sequential TupleSearch::SearchTuples; the batching only
// changes scheduling, never scoring. Malformed requests (zero-row query
// tables) are rejected per-request with InvalidArgument instead of
// aborting the process.
#ifndef DUST_SERVE_QUERY_SERVER_H_
#define DUST_SERVE_QUERY_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "search/tuple_search.h"
#include "serve/bounded_queue.h"
#include "serve/executor.h"
#include "table/table.h"
#include "util/status.h"

namespace dust::serve {

struct QueryServerOptions {
  /// Executor pool size shared by index fan-out, encoding, and fusion.
  /// 0 runs batches inline on the dispatcher thread (deterministic tests).
  size_t threads = 4;
  /// Bounded request queue; a full queue blocks Submit (backpressure).
  size_t queue_capacity = 256;
  /// A batch dispatches once it holds this many requests...
  size_t max_batch = 32;
  /// ...or once the oldest admitted request has waited this long, whichever
  /// comes first. 0 = dispatch whatever is already queued (no added wait).
  size_t batch_window_us = 2000;
};

/// Serving counters and latency percentiles (Submit -> future ready). The
/// percentiles cover the most recent requests (a bounded reservoir of 64k
/// samples), so a long-running server neither grows without bound nor
/// stalls stats(); the counters cover the whole lifetime.
struct QueryServerStats {
  uint64_t submitted = 0;  ///< admitted into the queue
  uint64_t served = 0;     ///< futures fulfilled via a dispatched batch
  uint64_t rejected = 0;   ///< refused up front (no rows / shut down)
  uint64_t batches = 0;
  double mean_batch_size = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  size_t queue_depth = 0;      ///< at the moment stats() was called
  size_t max_queue_depth = 0;  ///< high-water mark over the server lifetime
};

class QueryServer {
 public:
  using TupleResult = Result<std::vector<search::TupleHit>>;

  /// The server borrows `search` (already IndexLake'd; an unbuilt index is
  /// reported per-request as FailedPrecondition, never an abort) for its
  /// lifetime.
  QueryServer(const search::TupleSearch* search, QueryServerOptions options);
  /// Shuts down (completing in-flight requests) if Shutdown wasn't called.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Admits one request. Blocks while the queue is full (backpressure);
  /// the future becomes ready when the request's batch is served. `query`
  /// must stay alive until then. A query with no rows resolves immediately
  /// to InvalidArgument, a Submit after Shutdown to FailedPrecondition.
  std::future<TupleResult> Submit(const table::Table& query, size_t k);

  /// Stops admission, serves every request already queued, and joins the
  /// dispatcher. Idempotent; called by the destructor.
  void Shutdown();

  QueryServerStats stats() const;
  const QueryServerOptions& options() const { return options_; }

 private:
  struct Request {
    const table::Table* query = nullptr;
    size_t k = 0;
    std::promise<TupleResult> promise;
    std::chrono::steady_clock::time_point admitted;
  };

  void DispatchLoop();
  void Dispatch(std::vector<Request>* batch);

  const search::TupleSearch* search_;
  const QueryServerOptions options_;
  Executor executor_;
  BoundedQueue<Request> queue_;
  std::atomic<bool> shutdown_{false};
  std::mutex shutdown_mu_;  // serializes the join in Shutdown

  /// Latency reservoir size: large enough for stable p99s, small enough
  /// that the stats() copy+sort stays cheap at any uptime.
  static constexpr size_t kLatencyWindow = size_t{1} << 16;

  mutable std::mutex stats_mu_;
  std::vector<double> latencies_ms_;  // ring buffer of <= kLatencyWindow
  size_t latency_next_ = 0;           // next ring slot once at capacity
  uint64_t submitted_ = 0;
  uint64_t served_ = 0;
  uint64_t rejected_ = 0;
  uint64_t batches_ = 0;

  std::thread dispatcher_;  // last member: starts after state is ready
};

}  // namespace dust::serve

#endif  // DUST_SERVE_QUERY_SERVER_H_
