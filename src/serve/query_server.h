// Async query server — the online half of the heavy-traffic north star.
//
// Concurrent clients Submit tuple-search requests and get futures back; a
// dispatcher thread admits requests from a bounded queue (backpressure: a
// full queue blocks Submit, it never drops), micro-batches them within a
// configurable window, and answers each batch through one
// TupleSearch::SearchTuplesBatch call on a shared executor. Results are
// bit-identical to sequential TupleSearch::SearchTuples; the batching only
// changes scheduling, never scoring. Malformed requests (zero-row query
// tables) are rejected per-request with InvalidArgument instead of
// aborting the process.
//
// Serving hardening on top of the batching core:
//  - Result cache: with cache_entries > 0, Submit fingerprints the query
//    and probes a bounded LRU ResultCache before queue admission — a hit
//    resolves the future immediately and never occupies batch capacity,
//    so hot (skewed, repeated) traffic costs one encode + one map probe.
//    Entries are invalidated by the lake staleness hash; a re-indexed
//    lake can never serve stale hits.
//  - Observability: every component publishes atomics into a serve::Metrics
//    registry (renderable as a human table or Prometheus-style text), and
//    latency percentiles come from a fixed-bucket histogram, so stats()
//    costs O(buckets) at any uptime. A Readiness state (kStarting ->
//    kReady -> kDraining) supports deploy-time health probes.
#ifndef DUST_SERVE_QUERY_SERVER_H_
#define DUST_SERVE_QUERY_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "search/tuple_search.h"
#include "serve/bounded_queue.h"
#include "serve/executor.h"
#include "serve/metrics.h"
#include "serve/result_cache.h"
#include "table/table.h"
#include "util/status.h"

namespace dust::serve {

struct QueryServerOptions {
  /// Executor pool size shared by index fan-out, encoding, and fusion.
  /// 0 runs batches inline on the dispatcher thread (deterministic tests).
  size_t threads = 4;
  /// Bounded request queue; a full queue blocks Submit (backpressure).
  size_t queue_capacity = 256;
  /// A batch dispatches once it holds this many requests...
  size_t max_batch = 32;
  /// ...or once the oldest admitted request has waited this long, whichever
  /// comes first. 0 = dispatch whatever is already queued (no added wait).
  size_t batch_window_us = 2000;
  /// Result cache capacity in entries; 0 disables the cache entirely (the
  /// on/off knob). Hits bypass the batch queue.
  size_t cache_entries = 0;
  /// Result cache capacity in bytes of cached hit lists.
  size_t cache_bytes = size_t{64} << 20;
  /// Result cache lock stripes (1 = globally LRU-ordered).
  size_t cache_stripes = 16;
  /// Fraction of requests traced into obs::SpanCollector::Global() with a
  /// deterministic sampler; 0 disables tracing entirely (no clock reads on
  /// the hot path), 1 traces everything. Must be a finite value in [0, 1].
  double trace_sample_rate = 0.0;
  /// Requests whose Submit -> future-ready latency meets or exceeds this
  /// threshold (ms) are logged at WARN with their trace id and span tree.
  /// Negative disables the slow-query log; 0 logs every request.
  double slow_query_ms = -1.0;
};

/// Serving counters and latency percentiles (Submit -> future ready).
/// Counters cover the whole lifetime; percentiles come from a fixed-bucket
/// histogram, so this snapshot is O(buckets) to produce at any uptime.
struct QueryServerStats {
  uint64_t submitted = 0;  ///< accepted: cache hits + queued requests
  uint64_t served = 0;     ///< futures fulfilled via a dispatched batch
  uint64_t rejected = 0;   ///< refused up front (no rows / shut down)
  uint64_t batches = 0;
  double mean_batch_size = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  size_t queue_depth = 0;      ///< at the moment stats() was called
  size_t max_queue_depth = 0;  ///< high-water mark over the server lifetime
  uint64_t cache_hits = 0;     ///< requests resolved without queueing
  uint64_t cache_misses = 0;   ///< cache probes that went to the queue
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;  ///< stale entries dropped on lookup
  size_t cache_entries = 0;          ///< resident entries right now
  size_t cache_bytes = 0;            ///< resident hit-list bytes right now
  /// hits / (hits + misses); 0 when the cache is disabled or cold.
  double cache_hit_rate = 0.0;
};

class QueryServer {
 public:
  using TupleResult = Result<std::vector<search::TupleHit>>;

  /// The server borrows `search` (already IndexLake'd; an unbuilt index is
  /// reported per-request as FailedPrecondition, never an abort) for its
  /// lifetime.
  QueryServer(const search::TupleSearch* search, QueryServerOptions options);
  /// Shuts down (completing in-flight requests) if Shutdown wasn't called.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Admits one request. Blocks while the queue is full (backpressure);
  /// the future becomes ready when the request's batch is served — or
  /// immediately on a result-cache hit, which never enters the queue.
  /// `query` must stay alive until the future is ready. A query with no
  /// rows resolves immediately to InvalidArgument, a Submit after Shutdown
  /// to FailedPrecondition.
  std::future<TupleResult> Submit(const table::Table& query, size_t k);

  /// Stops admission, serves every request already queued, and joins the
  /// dispatcher. Idempotent; called by the destructor.
  void Shutdown();

  QueryServerStats stats() const;
  const QueryServerOptions& options() const { return options_; }

  /// The server's observability registry (serve counters, latency
  /// histograms, cache and executor instruments). Valid for the server's
  /// lifetime; render with RenderTable()/RenderText().
  const Metrics& metrics() const { return metrics_; }

  /// Lifecycle probe: kReady once the dispatcher accepts traffic,
  /// kDraining from the first Shutdown call on.
  Readiness readiness() const {
    return readiness_.load(std::memory_order_acquire);
  }

 private:
  struct Request {
    const table::Table* query = nullptr;
    size_t k = 0;
    std::promise<TupleResult> promise;
    std::chrono::steady_clock::time_point admitted;
    /// Set when the result cache is enabled: where to insert the computed
    /// result, and the lake hash it was computed against.
    bool cacheable = false;
    ResultCache::Key cache_key;
    uint64_t snapshot_hash = 0;
    /// Sampled at admission; `span_id` is the root "serve" span, recorded
    /// when the request resolves. All-zero when the request is untraced.
    obs::TraceContext trace;
  };

  void DispatchLoop();
  void Dispatch(std::vector<Request>* batch);
  void RegisterMetrics();
  /// Records latency, the root "serve" span, and the slow-query log for a
  /// resolving request.
  void ObserveCompletion(const Request& request,
                         std::chrono::steady_clock::time_point done);

  const search::TupleSearch* search_;
  const QueryServerOptions options_;
  Executor executor_;
  BoundedQueue<Request> queue_;
  std::unique_ptr<ResultCache> cache_;  // null when cache_entries == 0
  uint64_t cache_config_hash_ = 0;      // TupleSearch::ConfigHash, fixed
  std::atomic<bool> shutdown_{false};
  std::atomic<Readiness> readiness_{Readiness::kStarting};
  std::mutex shutdown_mu_;  // serializes the join in Shutdown

  Metrics metrics_;
  Counter submitted_;
  Counter served_;
  Counter rejected_;
  Counter batches_;
  Counter slow_queries_;
  Histogram latency_ms_;
  Histogram batch_occupancy_;
  obs::Sampler sampler_;

  std::thread dispatcher_;  // last member: starts after state is ready
};

}  // namespace dust::serve

#endif  // DUST_SERVE_QUERY_SERVER_H_
