// Serving observability surface — counters, gauges, fixed-bucket latency
// histograms, and a registry that renders them for humans and scrapers.
//
// Hot-path instruments are lock-free atomics: a Counter increment or a
// Histogram record is one relaxed RMW, cheap enough to live inside Submit
// and Dispatch. The registry itself is only locked at registration (startup)
// and render (scrape) time, never on the request path. Instruments are owned
// by the component they describe (QueryServer, ResultCache, Executor, ...)
// and registered by name, so rendering pulls live values without a second
// copy of the state.
//
// Standard-library only, like executor.h, so any layer can publish without
// a dependency inversion.
#ifndef DUST_SERVE_METRICS_H_
#define DUST_SERVE_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dust::serve {

/// Monotonic event count (requests served, cache hits, evictions...).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level that moves both ways (cache bytes, entries in use).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram for nonnegative samples (latencies, batch sizes).
/// Record is O(log buckets) and lock-free; Quantile is O(buckets) regardless
/// of how many samples were ever recorded — the property that lets a
/// long-running server answer stats() without copying or sorting its
/// history.
class Histogram {
 public:
  /// `upper_bounds` must be ascending; an implicit +Inf bucket is appended.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Default latency buckets (milliseconds): sub-millisecond cache hits
  /// through multi-second outliers.
  static std::vector<double> LatencyBoundsMs();
  /// Buckets for micro-batch occupancy (1..max_batch requests).
  static std::vector<double> OccupancyBounds();

  void Record(double value);

  uint64_t count() const;
  double sum() const;
  /// Largest sample ever recorded (0 when empty).
  double max() const;
  /// Nearest-rank quantile with linear interpolation inside the bucket;
  /// q in [0, 1]. The +Inf bucket interpolates toward max(). 0 when empty.
  double Quantile(double q) const;

  size_t num_buckets() const { return buckets_.size(); }
  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t bucket_value(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;  // ascending upper edges, +Inf implicit
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // bit-cast double, CAS-accumulated
  std::atomic<uint64_t> max_bits_{0};  // bit-cast double, CAS-maxed
};

/// Server lifecycle for readiness probes: a deploy can wait for kReady
/// before routing traffic and stop routing at kDraining.
enum class Readiness { kStarting = 0, kReady = 1, kDraining = 2 };

const char* ReadinessName(Readiness state);

/// Name -> instrument registry. Registered pointers are non-owning; every
/// registrant must outlive the registry (in practice the QueryServer owns
/// both). Callbacks are pull-gauges sampled at render time — the natural
/// shape for values a component already tracks (queue depth, readiness).
class Metrics {
 public:
  void RegisterCounter(const std::string& name, const Counter* counter);
  void RegisterGauge(const std::string& name, const Gauge* gauge);
  void RegisterHistogram(const std::string& name, const Histogram* histogram);
  void RegisterCallback(const std::string& name, std::function<double()> fn);

  /// Machine-readable text exposition, Prometheus-style `name{label} value`
  /// lines: counters/gauges as single samples, histograms as cumulative
  /// `_bucket{le="..."}` series plus `_sum` and `_count`.
  std::string RenderText() const;

  /// Human-readable aligned table; histograms render count/p50/p95/p99/max.
  std::string RenderTable() const;

 private:
  struct Instrument {
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
    std::function<double()> callback;
  };

  void Register(const std::string& name, Instrument instrument);

  mutable std::mutex mu_;
  std::map<std::string, Instrument> instruments_;  // sorted, stable renders
};

}  // namespace dust::serve

#endif  // DUST_SERVE_METRICS_H_
