#include "serve/query_server.h"

#include <algorithm>
#include <utility>

namespace dust::serve {

namespace {

/// Nearest-rank percentile of an ascending-sorted sample.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  size_t index = static_cast<size_t>(rank);
  if (static_cast<double>(index) < rank) ++index;  // ceil
  if (index == 0) index = 1;
  if (index > sorted.size()) index = sorted.size();
  return sorted[index - 1];
}

}  // namespace

QueryServer::QueryServer(const search::TupleSearch* search,
                         QueryServerOptions options)
    : search_(search),
      options_(options),
      executor_(options.threads),
      queue_(options.queue_capacity),
      dispatcher_([this] { DispatchLoop(); }) {
  DUST_CHECK(search_ != nullptr);
}

QueryServer::~QueryServer() { Shutdown(); }

std::future<QueryServer::TupleResult> QueryServer::Submit(
    const table::Table& query, size_t k) {
  std::promise<TupleResult> promise;
  std::future<TupleResult> future = promise.get_future();
  if (query.num_rows() == 0) {
    // A malformed request must not abort (or even reach) the serving path;
    // resolve it immediately so its client can move on.
    promise.set_value(Status::InvalidArgument(
        "query table has no rows; nothing to match against the lake"));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++rejected_;
    return future;
  }
  Request request;
  request.query = &query;
  request.k = k;
  request.promise = std::move(promise);
  request.admitted = std::chrono::steady_clock::now();
  if (shutdown_.load() || !queue_.Push(std::move(request))) {
    // Push only consumes the request on success, so the promise is still
    // ours to resolve when the queue was closed under us.
    request.promise.set_value(
        Status::FailedPrecondition("query server is shut down"));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++rejected_;
    return future;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++submitted_;
  return future;
}

void QueryServer::DispatchLoop() {
  std::vector<Request> batch;
  for (;;) {
    batch.clear();
    Request first;
    if (!queue_.Pop(&first)) break;  // closed and fully drained
    batch.push_back(std::move(first));
    // Micro-batch window: wait up to batch_window_us from the FIRST pop for
    // companions, so the oldest request bounds the added latency. A closed
    // or timed-out queue just seals the batch early.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(options_.batch_window_us);
    while (batch.size() < options_.max_batch) {
      Request next;
      if (!queue_.PopUntil(&next, deadline)) break;
      batch.push_back(std::move(next));
    }
    Dispatch(&batch);
  }
}

void QueryServer::Dispatch(std::vector<Request>* batch) {
  std::vector<search::TupleSearch::TupleQuery> queries;
  queries.reserve(batch->size());
  for (const Request& request : *batch) {
    queries.push_back({request.query, request.k});
  }
  std::vector<TupleResult> results =
      search_->SearchTuplesBatch(queries, &executor_);
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++batches_;
    served_ += batch->size();
    for (const Request& request : *batch) {
      const double ms =
          std::chrono::duration<double, std::milli>(now - request.admitted)
              .count();
      if (latencies_ms_.size() < kLatencyWindow) {
        latencies_ms_.push_back(ms);
      } else {
        // At capacity the reservoir becomes a ring: percentiles track the
        // most recent window instead of the whole (unbounded) history.
        latencies_ms_[latency_next_] = ms;
        latency_next_ = (latency_next_ + 1) % kLatencyWindow;
      }
    }
  }
  for (size_t i = 0; i < batch->size(); ++i) {
    (*batch)[i].promise.set_value(std::move(results[i]));
  }
}

void QueryServer::Shutdown() {
  shutdown_.store(true);
  queue_.Close();
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

QueryServerStats QueryServer::stats() const {
  QueryServerStats out;
  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out.submitted = submitted_;
    out.served = served_;
    out.rejected = rejected_;
    out.batches = batches_;
    latencies = latencies_ms_;
  }
  out.mean_batch_size =
      out.batches == 0
          ? 0.0
          : static_cast<double>(out.served) / static_cast<double>(out.batches);
  std::sort(latencies.begin(), latencies.end());
  out.p50_ms = Percentile(latencies, 0.50);
  out.p95_ms = Percentile(latencies, 0.95);
  out.p99_ms = Percentile(latencies, 0.99);
  out.max_ms = latencies.empty() ? 0.0 : latencies.back();
  out.queue_depth = queue_.size();
  out.max_queue_depth = queue_.max_depth();
  return out;
}

}  // namespace dust::serve
