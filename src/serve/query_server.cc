#include "serve/query_server.h"

#include <utility>

#include "obs/trace_export.h"
#include "util/logging.h"

namespace dust::serve {

namespace {

int64_t ToSteadyMicros(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             tp.time_since_epoch())
      .count();
}

}  // namespace

QueryServer::QueryServer(const search::TupleSearch* search,
                         QueryServerOptions options)
    : search_(search),
      options_(options),
      executor_(options.threads),
      queue_(options.queue_capacity),
      latency_ms_(Histogram::LatencyBoundsMs()),
      batch_occupancy_(Histogram::OccupancyBounds()),
      sampler_(options.trace_sample_rate),
      dispatcher_([this] { DispatchLoop(); }) {
  DUST_CHECK(search_ != nullptr);
  DUST_CHECK(obs::ValidSampleRate(options_.trace_sample_rate));
  if (options_.cache_entries > 0) {
    ResultCacheOptions cache_options;
    cache_options.capacity_entries = options_.cache_entries;
    cache_options.capacity_bytes = options_.cache_bytes;
    cache_options.stripes = options_.cache_stripes;
    cache_ = std::make_unique<ResultCache>(cache_options);
    // The config never changes over the server's lifetime, so the key's
    // config component is hashed once, not per request.
    cache_config_hash_ = search_->ConfigHash();
  }
  RegisterMetrics();
  readiness_.store(Readiness::kReady, std::memory_order_release);
}

QueryServer::~QueryServer() { Shutdown(); }

void QueryServer::RegisterMetrics() {
  metrics_.RegisterCounter("dust_serve_submitted_total", &submitted_);
  metrics_.RegisterCounter("dust_serve_served_total", &served_);
  metrics_.RegisterCounter("dust_serve_rejected_total", &rejected_);
  metrics_.RegisterCounter("dust_serve_batches_total", &batches_);
  metrics_.RegisterCounter("dust_slow_queries_total", &slow_queries_);
  metrics_.RegisterCallback("dust_trace_spans_recorded_total", [] {
    return static_cast<double>(obs::SpanCollector::Global().recorded_total());
  });
  metrics_.RegisterCallback("dust_trace_spans_dropped_total", [] {
    return static_cast<double>(obs::SpanCollector::Global().dropped_total());
  });
  metrics_.RegisterHistogram("dust_serve_latency_ms", &latency_ms_);
  metrics_.RegisterHistogram("dust_serve_batch_occupancy", &batch_occupancy_);
  // Pull-gauges: the queue, executor, and lifecycle already track these;
  // renders sample them live instead of duplicating state.
  metrics_.RegisterCallback("dust_serve_ready", [this] {
    return static_cast<double>(readiness());
  });
  metrics_.RegisterCallback("dust_serve_queue_depth", [this] {
    return static_cast<double>(queue_.size());
  });
  metrics_.RegisterCallback("dust_serve_queue_depth_max", [this] {
    return static_cast<double>(queue_.max_depth());
  });
  metrics_.RegisterCallback("dust_serve_queue_admitted_total", [this] {
    return static_cast<double>(queue_.total_pushed());
  });
  metrics_.RegisterCallback("dust_executor_threads", [this] {
    return static_cast<double>(executor_.num_threads());
  });
  metrics_.RegisterCallback("dust_executor_busy_threads", [this] {
    return static_cast<double>(executor_.busy_threads());
  });
  metrics_.RegisterCallback("dust_executor_tasks_total", [this] {
    return static_cast<double>(executor_.tasks_run());
  });
  // Mutable-lake gauges: live vs tombstoned tuples and the mutation
  // counter, sampled from the search object so deletes/adds made while
  // serving show up on the next scrape.
  metrics_.RegisterCallback("dust_mutable_live_vectors", [this] {
    return static_cast<double>(search_->lake_live_vectors());
  });
  metrics_.RegisterCallback("dust_mutable_tombstoned_vectors", [this] {
    return static_cast<double>(search_->lake_tombstoned_vectors());
  });
  metrics_.RegisterCallback("dust_lake_mutations_total", [this] {
    return static_cast<double>(search_->lake_mutations());
  });
  if (cache_ != nullptr) cache_->RegisterWith(&metrics_);
  // Cascade stage instruments (dust_cascade_stage_*) live in the search
  // object, which outlives the server; no-op when the cascade is disabled.
  search_->RegisterCascadeMetrics(&metrics_);
}

std::future<QueryServer::TupleResult> QueryServer::Submit(
    const table::Table& query, size_t k) {
  const auto arrival = std::chrono::steady_clock::now();
  std::promise<TupleResult> promise;
  std::future<TupleResult> future = promise.get_future();
  if (query.num_rows() == 0) {
    // A malformed request must not abort (or even reach) the serving path;
    // resolve it immediately so its client can move on.
    promise.set_value(Status::InvalidArgument(
        "query table has no rows; nothing to match against the lake"));
    rejected_.Increment();
    return future;
  }
  Request request;
  request.query = &query;
  request.k = k;
  request.admitted = arrival;
  if (options_.trace_sample_rate > 0.0 && sampler_.Sample()) {
    request.trace.trace_id = obs::NewTraceId();
    request.trace.span_id = obs::NewSpanId();  // the root "serve" span
    request.trace.sampled = true;
  }
  if (cache_ != nullptr && !shutdown_.load()) {
    // Fingerprint + probe on the client's thread, ahead of queue admission:
    // a hit resolves here and never occupies batch capacity, so hot-query
    // traffic cannot crowd out cold queries (and the dispatcher never
    // serializes behind cache work).
    request.cacheable = true;
    std::vector<search::TupleHit> cached;
    bool hit = false;
    {
      obs::ScopedTraceContext trace_scope(request.trace);
      obs::Span probe_span("cache_probe");
      request.cache_key = {search_->QueryFingerprint(query), k,
                           cache_config_hash_};
      request.snapshot_hash = search_->LakeStateHash();
      hit = cache_->Lookup(request.cache_key, request.snapshot_hash, &cached);
    }
    if (hit) {
      submitted_.Increment();
      ObserveCompletion(request, std::chrono::steady_clock::now());
      promise.set_value(std::move(cached));
      return future;
    }
  }
  request.promise = std::move(promise);
  if (shutdown_.load() || !queue_.Push(std::move(request))) {
    // Push only consumes the request on success, so the promise is still
    // ours to resolve when the queue was closed under us.
    request.promise.set_value(
        Status::FailedPrecondition("query server is shut down"));
    rejected_.Increment();
    return future;
  }
  submitted_.Increment();
  return future;
}

void QueryServer::DispatchLoop() {
  std::vector<Request> batch;
  for (;;) {
    batch.clear();
    Request first;
    if (!queue_.Pop(&first)) break;  // closed and fully drained
    batch.push_back(std::move(first));
    // Micro-batch window: wait up to batch_window_us from the FIRST pop for
    // companions, so the oldest request bounds the added latency. A closed
    // or timed-out queue just seals the batch early.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(options_.batch_window_us);
    while (batch.size() < options_.max_batch) {
      Request next;
      if (!queue_.PopUntil(&next, deadline)) break;
      batch.push_back(std::move(next));
    }
    Dispatch(&batch);
  }
}

void QueryServer::Dispatch(std::vector<Request>* batch) {
  // Every traced request charges its time on the queue to a queue_wait
  // span; the first traced request "owns" the batch-level search span (the
  // batch runs once, so its spans can only live on one trace).
  const auto batch_start = std::chrono::steady_clock::now();
  const Request* trace_owner = nullptr;
  for (const Request& request : *batch) {
    if (!request.trace.sampled) continue;
    if (trace_owner == nullptr) trace_owner = &request;
    obs::RecordSpan(request.trace.trace_id, 0, request.trace.span_id,
                    "queue_wait", ToSteadyMicros(request.admitted),
                    ToSteadyMicros(batch_start));
  }
  std::vector<search::TupleSearch::TupleQuery> queries;
  queries.reserve(batch->size());
  for (const Request& request : *batch) {
    queries.push_back({request.query, request.k});
  }
  std::vector<TupleResult> results;
  {
    obs::ScopedTraceContext trace_scope(
        trace_owner != nullptr ? trace_owner->trace : obs::TraceContext{});
    obs::Span search_span("search");
    search_span.AddTag("batch", static_cast<uint64_t>(batch->size()));
    results = search_->SearchTuplesBatch(queries, &executor_);
  }
  const auto now = std::chrono::steady_clock::now();
  batches_.Increment();
  batch_occupancy_.Record(static_cast<double>(batch->size()));
  served_.Increment(batch->size());
  for (const Request& request : *batch) {
    ObserveCompletion(request, now);
  }
  for (size_t i = 0; i < batch->size(); ++i) {
    Request& request = (*batch)[i];
    if (cache_ != nullptr && request.cacheable && results[i].ok()) {
      // Populate before resolving so a client that immediately re-issues
      // the query hits. The insert copies; the move below stays valid.
      cache_->Insert(request.cache_key, request.snapshot_hash,
                     results[i].value());
    }
    request.promise.set_value(std::move(results[i]));
  }
}

void QueryServer::ObserveCompletion(
    const Request& request, std::chrono::steady_clock::time_point done) {
  const double latency_ms =
      std::chrono::duration<double, std::milli>(done - request.admitted)
          .count();
  latency_ms_.Record(latency_ms);
  if (request.trace.sampled) {
    // The root span closes when the request resolves; children (cache
    // probe, queue wait, search) recorded earlier parent under its id.
    obs::RecordSpan(request.trace.trace_id, request.trace.span_id, 0, "serve",
                    ToSteadyMicros(request.admitted), ToSteadyMicros(done));
  }
  if (options_.slow_query_ms >= 0.0 && latency_ms >= options_.slow_query_ms) {
    slow_queries_.Increment();
    std::string tree;
    if (request.trace.sampled) {
      tree = "\n" + obs::RenderSpanTree(
                        request.trace.trace_id,
                        obs::SpanCollector::Global().CollectTrace(
                            request.trace.trace_id));
    }
    DUST_LOG(Warning) << "slow query: " << latency_ms << " ms >= "
                      << options_.slow_query_ms << " ms threshold, trace_id=0x"
                      << std::hex << request.trace.trace_id << std::dec
                      << tree;
  }
}

void QueryServer::Shutdown() {
  readiness_.store(Readiness::kDraining, std::memory_order_release);
  shutdown_.store(true);
  queue_.Close();
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

QueryServerStats QueryServer::stats() const {
  QueryServerStats out;
  out.submitted = submitted_.value();
  out.served = served_.value();
  out.rejected = rejected_.value();
  out.batches = batches_.value();
  out.mean_batch_size =
      out.batches == 0
          ? 0.0
          : static_cast<double>(out.served) / static_cast<double>(out.batches);
  // Histogram-backed quantiles: O(buckets) whatever the uptime, unlike the
  // old reservoir that copied and sorted every remembered sample.
  out.p50_ms = latency_ms_.Quantile(0.50);
  out.p95_ms = latency_ms_.Quantile(0.95);
  out.p99_ms = latency_ms_.Quantile(0.99);
  out.max_ms = latency_ms_.max();
  out.queue_depth = queue_.size();
  out.max_queue_depth = queue_.max_depth();
  if (cache_ != nullptr) {
    out.cache_hits = cache_->hits();
    out.cache_misses = cache_->misses();
    out.cache_evictions = cache_->evictions();
    out.cache_invalidations = cache_->invalidations();
    out.cache_entries = cache_->entries();
    out.cache_bytes = cache_->bytes();
    const uint64_t probes = out.cache_hits + out.cache_misses;
    out.cache_hit_rate =
        probes == 0 ? 0.0
                    : static_cast<double>(out.cache_hits) /
                          static_cast<double>(probes);
  }
  return out;
}

}  // namespace dust::serve
