#include "serve/result_cache.h"

#include <algorithm>
#include <cstring>

#include "text/hashing.h"
#include "util/status.h"

namespace dust::serve {

namespace {

/// Approximate resident size of one cached hit list; the fixed overhead
/// stands in for the list node, map slot, and Entry header so a cache full
/// of tiny results still respects a meaningful byte budget.
constexpr size_t kEntryOverheadBytes = 128;

size_t EntryBytes(const std::vector<search::TupleHit>& hits) {
  return kEntryOverheadBytes + hits.size() * sizeof(search::TupleHit);
}

}  // namespace

size_t ResultCache::KeyHash::operator()(const Key& key) const {
  // Chain the three components through FNV-1a, matching the repo's
  // staleness-hash idiom (core/pipeline.cc).
  char bytes[sizeof(uint64_t) * 3];
  std::memcpy(bytes, &key.query_fingerprint, sizeof(uint64_t));
  std::memcpy(bytes + sizeof(uint64_t), &key.k, sizeof(uint64_t));
  std::memcpy(bytes + 2 * sizeof(uint64_t), &key.config_hash,
              sizeof(uint64_t));
  return static_cast<size_t>(
      text::HashString(std::string_view(bytes, sizeof(bytes))));
}

ResultCache::ResultCache(ResultCacheOptions options)
    : options_([&] {
        if (options.stripes == 0) options.stripes = 1;
        if (options.capacity_entries == 0) options.capacity_entries = 1;
        return options;
      }()),
      // Budgets round up so stripes * budget >= capacity; a stripe always
      // holds at least one entry, otherwise the cache could never hit.
      stripe_entry_budget_(std::max<size_t>(
          1, (options_.capacity_entries + options_.stripes - 1) /
                 options_.stripes)),
      stripe_byte_budget_(std::max<size_t>(
          kEntryOverheadBytes,
          (options_.capacity_bytes + options_.stripes - 1) /
              options_.stripes)) {
  stripes_.reserve(options_.stripes);
  for (size_t i = 0; i < options_.stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

ResultCache::Stripe& ResultCache::StripeOf(const Key& key) {
  return *stripes_[KeyHash{}(key) % stripes_.size()];
}

void ResultCache::EraseLocked(Stripe* stripe,
                              std::list<Entry>::iterator it) {
  stripe->bytes -= it->bytes;
  bytes_.Sub(static_cast<int64_t>(it->bytes));
  entries_.Sub(1);
  stripe->index.erase(it->key);
  stripe->lru.erase(it);
}

bool ResultCache::Lookup(const Key& key, uint64_t snapshot_hash,
                         std::vector<search::TupleHit>* out) {
  DUST_CHECK(out != nullptr);
  Stripe& stripe = StripeOf(key);
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto found = stripe.index.find(key);
    if (found != stripe.index.end()) {
      if (found->second->snapshot_hash != snapshot_hash) {
        // The lake changed under this entry; drop it so a re-indexed or
        // reloaded lake can never serve stale hits.
        EraseLocked(&stripe, found->second);
        invalidations_.Increment();
      } else {
        stripe.lru.splice(stripe.lru.begin(), stripe.lru, found->second);
        *out = found->second->hits;  // copy: bit-identical to the insert
        hits_.Increment();
        return true;
      }
    }
  }
  misses_.Increment();
  return false;
}

void ResultCache::Insert(const Key& key, uint64_t snapshot_hash,
                         const std::vector<search::TupleHit>& hits) {
  const size_t bytes = EntryBytes(hits);
  if (bytes > stripe_byte_budget_) return;  // would evict the whole stripe
  Stripe& stripe = StripeOf(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto found = stripe.index.find(key);
  if (found != stripe.index.end()) {
    // Concurrent misses on one key both dispatch and both insert; refresh
    // in place (the payloads are identical unless the snapshot changed).
    EraseLocked(&stripe, found->second);
  }
  stripe.lru.push_front(Entry{key, snapshot_hash, hits, bytes});
  stripe.index.emplace(key, stripe.lru.begin());
  stripe.bytes += bytes;
  bytes_.Add(static_cast<int64_t>(bytes));
  entries_.Add(1);
  insertions_.Increment();
  while (stripe.lru.size() > stripe_entry_budget_ ||
         stripe.bytes > stripe_byte_budget_) {
    EraseLocked(&stripe, std::prev(stripe.lru.end()));
    evictions_.Increment();
  }
}

void ResultCache::Clear() {
  for (auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    while (!stripe->lru.empty()) {
      EraseLocked(stripe.get(), std::prev(stripe->lru.end()));
    }
  }
}

void ResultCache::RegisterWith(Metrics* metrics) const {
  DUST_CHECK(metrics != nullptr);
  metrics->RegisterCounter("dust_cache_hits_total", &hits_);
  metrics->RegisterCounter("dust_cache_misses_total", &misses_);
  metrics->RegisterCounter("dust_cache_evictions_total", &evictions_);
  metrics->RegisterCounter("dust_cache_invalidations_total", &invalidations_);
  metrics->RegisterCounter("dust_cache_insertions_total", &insertions_);
  metrics->RegisterGauge("dust_cache_entries", &entries_);
  metrics->RegisterGauge("dust_cache_bytes", &bytes_);
}

}  // namespace dust::serve
