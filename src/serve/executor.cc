#include "serve/executor.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace dust::serve {

/// Shared state of one ParallelFor call. Kept alive by shared_ptr because
/// helper tasks may still sit in the queue after the loop finished (they
/// wake up, see the counter exhausted, and return without touching `body`).
struct Executor::ForLoop {
  const std::function<void(size_t)>* body = nullptr;
  size_t n = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex m;
  std::condition_variable all_done;
};

Executor::Executor(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Executor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      // Drain the queue even while stopping: a submitted task's future must
      // become ready, never broken.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    busy_.fetch_add(1, std::memory_order_relaxed);
    task();
    busy_.fetch_sub(1, std::memory_order_relaxed);
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Executor::Enqueue(std::function<void()> task) {
  if (!threads_.empty()) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!stopping_) {
      tasks_.push_back(std::move(task));
      lock.unlock();
      task_ready_.notify_one();
      return;
    }
    // Submitted during destruction: workers may already have seen an empty
    // queue and exited, so a queued task could be orphaned and its future
    // never become ready. Defined semantics: run it inline on the caller.
  }
  // Inline executor (no workers) or stopping: execute on the calling thread.
  task();
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
}

std::future<void> Executor::Submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> result = task->get_future();
  Enqueue([task] { (*task)(); });
  return result;
}

void Executor::Drain(const std::shared_ptr<ForLoop>& loop) {
  for (size_t i = loop->next.fetch_add(1); i < loop->n;
       i = loop->next.fetch_add(1)) {
    (*loop->body)(i);
    if (loop->done.fetch_add(1) + 1 == loop->n) {
      // Taking the mutex pairs this notify with the waiter's predicate
      // check, so the wakeup cannot slip into the gap before the wait.
      std::lock_guard<std::mutex> lock(loop->m);
      loop->all_done.notify_all();
    }
  }
}

void Executor::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto loop = std::make_shared<ForLoop>();
  loop->body = &body;
  loop->n = n;
  // The caller takes one share of the work, so at most n-1 helpers are
  // useful. `body` stays valid for helpers: an iteration is only claimed
  // while done < n, and the caller cannot return (invalidating `body`)
  // until done == n.
  const size_t helpers = std::min(threads_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Enqueue([loop] { Drain(loop); });
  }
  Drain(loop);
  std::unique_lock<std::mutex> lock(loop->m);
  loop->all_done.wait(lock, [&] { return loop->done.load() == loop->n; });
}

}  // namespace dust::serve
