#include "la/matrix.h"

#include "util/status.h"

namespace dust::la {

Vec Matrix::MatVec(const Vec& x) const {
  DUST_CHECK(x.size() == cols_);
  Vec y(rows_, 0.0f);
  for (size_t r = 0; r < rows_; ++r) {
    const float* m = row(r);
    float s = 0.0f;
    for (size_t c = 0; c < cols_; ++c) s += m[c] * x[c];
    y[r] = s;
  }
  return y;
}

Vec Matrix::TransposeMatVec(const Vec& x) const {
  DUST_CHECK(x.size() == rows_);
  Vec y(cols_, 0.0f);
  for (size_t r = 0; r < rows_; ++r) {
    const float* m = row(r);
    float xr = x[r];
    if (xr == 0.0f) continue;
    for (size_t c = 0; c < cols_; ++c) y[c] += m[c] * xr;
  }
  return y;
}

}  // namespace dust::la
