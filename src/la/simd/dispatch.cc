// One-time backend selection. The choice is latched into an atomic so the
// env lookup and CPUID run once; ForceScalar lets tests and benchmarks swap
// backends inside a single process without re-execing under a different
// environment.
#include <atomic>
#include <cstdlib>

#include "la/simd/kernels.h"

namespace dust::la::simd {
namespace {

bool ForceScalarFromEnv() {
  const char* value = std::getenv("DUST_FORCE_SCALAR");
  if (value == nullptr || value[0] == '\0') return false;
  return !(value[0] == '0' && value[1] == '\0');
}

const Kernels* Select() {
  if (ForceScalarFromEnv()) return &ScalarKernels();
  if (Avx2Available()) return &Avx2Kernels();
  return &ScalarKernels();
}

std::atomic<const Kernels*> g_active{nullptr};

}  // namespace

const Kernels& Active() {
  const Kernels* kernels = g_active.load(std::memory_order_acquire);
  if (kernels == nullptr) {
    // A racing first call selects the same backend; the double store is
    // benign.
    kernels = Select();
    g_active.store(kernels, std::memory_order_release);
  }
  return *kernels;
}

const char* ActiveName() { return Active().name; }

void ForceScalar(bool force) {
  g_active.store(force ? &ScalarKernels() : Select(),
                 std::memory_order_release);
}

}  // namespace dust::la::simd
