// AVX2+FMA backend. CMake compiles only this translation unit with
// -mavx2 -mfma (when the compiler accepts them), so nothing here may be
// called before Avx2Available() confirms CPU support — the dispatcher in
// dispatch.cc enforces that. On targets without AVX2 support __AVX2__ is
// undefined and this file degrades to a stub that reports the backend as
// unavailable.
#include "la/simd/kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>

namespace dust::la::simd {
namespace {

/// Sum of all 8 lanes.
inline float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_movehdup_ps(lo));
  return _mm_cvtss_f32(lo);
}

float DotAvx2(const float* a, const float* b, size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  if (i + 8 <= n) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    i += 8;
  }
  float sum = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

float NormSquaredAvx2(const float* a, size_t n) { return DotAvx2(a, a, n); }

float SquaredL2Avx2(const float* a, const float* b, size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                              _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  if (i + 8 <= n) {
    __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
    i += 8;
  }
  float sum = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float L1Avx2(const float* a, const float* b, size_t n) {
  // Clearing the sign bit is fabs for IEEE floats.
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                              _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_add_ps(acc0, _mm256_and_ps(d0, abs_mask));
    acc1 = _mm256_add_ps(acc1, _mm256_and_ps(d1, abs_mask));
  }
  if (i + 8 <= n) {
    __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_add_ps(acc0, _mm256_and_ps(d, abs_mask));
    i += 8;
  }
  float sum = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

void CosineTermsAvx2(const float* a, const float* b, size_t n, float* dot,
                     float* a_squared, float* b_squared) {
  __m256 acc_ab = _mm256_setzero_ps();
  __m256 acc_aa = _mm256_setzero_ps();
  __m256 acc_bb = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 va = _mm256_loadu_ps(a + i);
    __m256 vb = _mm256_loadu_ps(b + i);
    acc_ab = _mm256_fmadd_ps(va, vb, acc_ab);
    acc_aa = _mm256_fmadd_ps(va, va, acc_aa);
    acc_bb = _mm256_fmadd_ps(vb, vb, acc_bb);
  }
  float ab = HorizontalSum(acc_ab);
  float aa = HorizontalSum(acc_aa);
  float bb = HorizontalSum(acc_bb);
  for (; i < n; ++i) {
    ab += a[i] * b[i];
    aa += a[i] * a[i];
    bb += b[i] * b[i];
  }
  *dot = ab;
  *a_squared = aa;
  *b_squared = bb;
}

}  // namespace

bool Avx2Available() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

const Kernels& Avx2Kernels() {
  static const Kernels kernels = [] {
    Kernels k;
    k.dot = DotAvx2;
    k.norm_squared = NormSquaredAvx2;
    k.squared_l2 = SquaredL2Avx2;
    k.l1 = L1Avx2;
    k.cosine_terms = CosineTermsAvx2;
    k.name = "avx2";
    return k;
  }();
  return kernels;
}

}  // namespace dust::la::simd

#else  // !(__AVX2__ && __FMA__)

namespace dust::la::simd {

bool Avx2Available() { return false; }

const Kernels& Avx2Kernels() { return ScalarKernels(); }

}  // namespace dust::la::simd

#endif
