// Runtime-dispatched SIMD backends for the distance kernels.
//
// Every distance computation in the library — all four VectorIndex types,
// the diversifier's pairwise scans, PCA, and the NN trainer — reduces to
// the handful of dense float reductions declared here. The backend is
// selected once at first use: AVX2+FMA when the binary carries it and the
// CPU reports support (CPUID via __builtin_cpu_supports), scalar otherwise.
// Setting DUST_FORCE_SCALAR=1 in the environment pins the scalar backend,
// which is how CI keeps the fallback path green on AVX2 hardware.
//
// The kernels operate on raw float spans; la::Dot / la::Distance /
// la::DistanceToMany are the Vec-level entry points consumers should use.
#ifndef DUST_LA_SIMD_KERNELS_H_
#define DUST_LA_SIMD_KERNELS_H_

#include <cstddef>

namespace dust::la::simd {

/// One backend's kernel table. All functions accept n == 0 (returning 0)
/// and unaligned pointers; callers guarantee both spans hold n floats.
struct Kernels {
  float (*dot)(const float* a, const float* b, size_t n);
  float (*norm_squared)(const float* a, size_t n);
  float (*squared_l2)(const float* a, const float* b, size_t n);
  float (*l1)(const float* a, const float* b, size_t n);
  /// Fused single pass producing dot(a, b), |a|^2, and |b|^2 — the three
  /// reductions cosine distance needs.
  void (*cosine_terms)(const float* a, const float* b, size_t n, float* dot,
                       float* a_squared, float* b_squared);
  /// Backend name for logs/benchmarks: "scalar" or "avx2".
  const char* name;
};

/// Portable baseline backend (no ISA extensions beyond the compile target).
const Kernels& ScalarKernels();

/// True when the AVX2 backend was compiled in and this CPU supports
/// AVX2+FMA.
bool Avx2Available();

/// The AVX2 backend; falls back to ScalarKernels() in binaries built
/// without AVX2 support. Call Avx2Available() before relying on it.
const Kernels& Avx2Kernels();

/// The backend every la:: kernel routes through. Selected on first call:
/// scalar when DUST_FORCE_SCALAR is set to anything but "" or "0" in the
/// environment, otherwise the best backend the CPU supports.
const Kernels& Active();

/// Name of the backend Active() resolves to.
const char* ActiveName();

/// Overrides the active backend at runtime: force=true pins scalar,
/// force=false re-runs the startup selection. For tests and benchmarks
/// that compare backends inside one process; not thread-safe against
/// concurrent kernel calls.
void ForceScalar(bool force);

}  // namespace dust::la::simd

#endif  // DUST_LA_SIMD_KERNELS_H_
