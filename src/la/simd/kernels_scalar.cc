// Scalar fallback backend. This translation unit is compiled with the
// project's baseline flags only — no -mavx2 — so the fallback never emits
// instructions a pre-AVX2 machine cannot execute. Two-way partial sums give
// the compiler ILP without reassociating the reduction (float addition is
// not associative, so -O3 alone will not vectorize these loops; that keeps
// "scalar" honest as the benchmark baseline).
#include <cmath>
#include <cstddef>

#include "la/simd/kernels.h"

namespace dust::la::simd {
namespace {

float DotScalar(const float* a, const float* b, size_t n) {
  float s0 = 0.0f;
  float s1 = 0.0f;
  size_t i = 0;
  for (; i + 1 < n; i += 2) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
  }
  if (i < n) s0 += a[i] * b[i];
  return s0 + s1;
}

float NormSquaredScalar(const float* a, size_t n) { return DotScalar(a, a, n); }

float SquaredL2Scalar(const float* a, const float* b, size_t n) {
  float s0 = 0.0f;
  float s1 = 0.0f;
  size_t i = 0;
  for (; i + 1 < n; i += 2) {
    float d0 = a[i] - b[i];
    float d1 = a[i + 1] - b[i + 1];
    s0 += d0 * d0;
    s1 += d1 * d1;
  }
  if (i < n) {
    float d = a[i] - b[i];
    s0 += d * d;
  }
  return s0 + s1;
}

float L1Scalar(const float* a, const float* b, size_t n) {
  float s0 = 0.0f;
  float s1 = 0.0f;
  size_t i = 0;
  for (; i + 1 < n; i += 2) {
    s0 += std::fabs(a[i] - b[i]);
    s1 += std::fabs(a[i + 1] - b[i + 1]);
  }
  if (i < n) s0 += std::fabs(a[i] - b[i]);
  return s0 + s1;
}

void CosineTermsScalar(const float* a, const float* b, size_t n, float* dot,
                       float* a_squared, float* b_squared) {
  float ab = 0.0f;
  float aa = 0.0f;
  float bb = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    ab += a[i] * b[i];
    aa += a[i] * a[i];
    bb += b[i] * b[i];
  }
  *dot = ab;
  *a_squared = aa;
  *b_squared = bb;
}

}  // namespace

const Kernels& ScalarKernels() {
  static const Kernels kernels = [] {
    Kernels k;
    k.dot = DotScalar;
    k.norm_squared = NormSquaredScalar;
    k.squared_l2 = SquaredL2Scalar;
    k.l1 = L1Scalar;
    k.cosine_terms = CosineTermsScalar;
    k.name = "scalar";
    return k;
  }();
  return kernels;
}

}  // namespace dust::la::simd
