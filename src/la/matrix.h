// Row-major dense matrix used by the NN layers and PCA.
#ifndef DUST_LA_MATRIX_H_
#define DUST_LA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "la/vector_ops.h"

namespace dust::la {

/// Minimal row-major float matrix.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  float& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* row(size_t r) { return data_.data() + r * cols_; }
  const float* row(size_t r) const { return data_.data() + r * cols_; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  /// y = M x (x has cols() entries; result has rows()).
  Vec MatVec(const Vec& x) const;

  /// y = M^T x (x has rows() entries; result has cols()).
  Vec TransposeMatVec(const Vec& x) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

}  // namespace dust::la

#endif  // DUST_LA_MATRIX_H_
