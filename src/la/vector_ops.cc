#include "la/vector_ops.h"

#include <cmath>

#include "la/simd/kernels.h"
#include "util/status.h"

namespace dust::la {

float Dot(const Vec& a, const Vec& b) {
  DUST_CHECK(a.size() == b.size());
  return simd::Active().dot(a.data(), b.data(), a.size());
}

float NormSquared(const Vec& a) {
  return simd::Active().norm_squared(a.data(), a.size());
}

float Norm(const Vec& a) { return std::sqrt(NormSquared(a)); }

void AddInPlace(Vec* a, const Vec& b) {
  DUST_CHECK(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] += b[i];
}

void SubInPlace(Vec* a, const Vec& b) {
  DUST_CHECK(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] -= b[i];
}

void ScaleInPlace(Vec* a, float s) {
  for (float& x : *a) x *= s;
}

Vec Add(const Vec& a, const Vec& b) {
  Vec out = a;
  AddInPlace(&out, b);
  return out;
}

Vec Sub(const Vec& a, const Vec& b) {
  Vec out = a;
  SubInPlace(&out, b);
  return out;
}

void NormalizeInPlace(Vec* a) {
  float n = Norm(*a);
  if (n > 0.0f) ScaleInPlace(a, 1.0f / n);
}

Vec Normalized(const Vec& a) {
  Vec out = a;
  NormalizeInPlace(&out);
  return out;
}

Vec Mean(const std::vector<Vec>& vectors) {
  DUST_CHECK(!vectors.empty());
  Vec out(vectors[0].size(), 0.0f);
  for (const Vec& v : vectors) AddInPlace(&out, v);
  ScaleInPlace(&out, 1.0f / static_cast<float>(vectors.size()));
  return out;
}

Vec MeanOf(const std::vector<Vec>& vectors, const std::vector<size_t>& indices) {
  DUST_CHECK(!indices.empty());
  Vec out(vectors[indices[0]].size(), 0.0f);
  for (size_t idx : indices) AddInPlace(&out, vectors[idx]);
  ScaleInPlace(&out, 1.0f / static_cast<float>(indices.size()));
  return out;
}

}  // namespace dust::la
