#include "la/distance.h"

#include <cmath>

#include "la/simd/kernels.h"
#include "util/status.h"
#include "util/string_util.h"

namespace dust::la {

Result<Metric> MetricFromName(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "cosine") return Metric::kCosine;
  if (lower == "euclidean" || lower == "l2") return Metric::kEuclidean;
  if (lower == "manhattan" || lower == "l1") return Metric::kManhattan;
  return Status::InvalidArgument(
      "unknown metric \"" + name +
      "\" (expected cosine, euclidean/l2, or manhattan/l1)");
}

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kCosine:
      return "cosine";
    case Metric::kEuclidean:
      return "euclidean";
    case Metric::kManhattan:
      return "manhattan";
  }
  // A value outside the enum means a corrupted tag (bad snapshot bytes, a
  // memcpy'd struct); naming it "?" would let it keep flowing. Abort.
  DUST_CHECK(false && "invalid Metric enum value");
  return "";
}

float CosineDistanceFromDot(float dot, float norm_a, float norm_b) {
  if (norm_a == 0.0f && norm_b == 0.0f) return 0.0f;  // identical zero vectors
  if (norm_a == 0.0f || norm_b == 0.0f) return 1.0f;
  float sim = dot / (norm_a * norm_b);
  // Clamp accumulated floating-point error into [-1, 1].
  if (sim > 1.0f) sim = 1.0f;
  if (sim < -1.0f) sim = -1.0f;
  return 1.0f - sim;
}

float CosineSimilarity(const Vec& a, const Vec& b) {
  DUST_CHECK(a.size() == b.size());
  float dot = 0.0f, a2 = 0.0f, b2 = 0.0f;
  simd::Active().cosine_terms(a.data(), b.data(), a.size(), &dot, &a2, &b2);
  float na = std::sqrt(a2);
  float nb = std::sqrt(b2);
  if (na == 0.0f && nb == 0.0f) return 1.0f;  // identical zero vectors
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  float sim = dot / (na * nb);
  if (sim > 1.0f) sim = 1.0f;
  if (sim < -1.0f) sim = -1.0f;
  return sim;
}

float CosineDistance(const Vec& a, const Vec& b) {
  return 1.0f - CosineSimilarity(a, b);
}

float SquaredEuclideanDistance(const Vec& a, const Vec& b) {
  DUST_CHECK(a.size() == b.size());
  return simd::Active().squared_l2(a.data(), b.data(), a.size());
}

float EuclideanDistance(const Vec& a, const Vec& b) {
  return std::sqrt(SquaredEuclideanDistance(a, b));
}

float ManhattanDistance(const Vec& a, const Vec& b) {
  DUST_CHECK(a.size() == b.size());
  return simd::Active().l1(a.data(), b.data(), a.size());
}

float Distance(Metric metric, const Vec& a, const Vec& b) {
  switch (metric) {
    case Metric::kCosine:
      return CosineDistance(a, b);
    case Metric::kEuclidean:
      return EuclideanDistance(a, b);
    case Metric::kManhattan:
      return ManhattanDistance(a, b);
  }
  // Returning 0.0f here would report every pair as identical under a
  // corrupted metric tag — the worst possible silent failure for a
  // distance function. Abort instead.
  DUST_CHECK(false && "invalid Metric enum value");
  return 0.0f;
}

std::vector<float> NormsOf(const std::vector<Vec>& base) {
  const simd::Kernels& ops = simd::Active();
  std::vector<float> norms(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    norms[i] = std::sqrt(ops.norm_squared(base[i].data(), base[i].size()));
  }
  return norms;
}

namespace {

/// Shared one-to-many loop: the metric switch, backend lookup, and query
/// norm are hoisted out; `id_of(i)` maps output slot i to an index into
/// `base`. With `base_norms` cosine is one fused dot per candidate;
/// without, one fused pass computing dot and candidate norm together.
template <typename IdOf>
void DistanceToManyImpl(Metric metric, const Vec& query,
                        const std::vector<Vec>& base, const float* base_norms,
                        size_t count, float* out, IdOf id_of) {
  const simd::Kernels& ops = simd::Active();
  const float* q = query.data();
  const size_t dim = query.size();
  switch (metric) {
    case Metric::kCosine: {
      const float query_norm = std::sqrt(ops.norm_squared(q, dim));
      for (size_t i = 0; i < count; ++i) {
        const size_t id = id_of(i);
        const Vec& v = base[id];
        DUST_CHECK(v.size() == dim);
        if (base_norms != nullptr) {
          out[i] = CosineDistanceFromDot(ops.dot(q, v.data(), dim),
                                         query_norm, base_norms[id]);
        } else {
          // cosine_terms redundantly re-reduces |q|^2 here, but the single
          // fused pass still beats two separate passes (dot + |v|^2): one
          // extra FMA stream costs less than re-streaming v from memory.
          float dot = 0.0f, q2 = 0.0f, v2 = 0.0f;
          ops.cosine_terms(q, v.data(), dim, &dot, &q2, &v2);
          out[i] = CosineDistanceFromDot(dot, query_norm, std::sqrt(v2));
        }
      }
      return;
    }
    case Metric::kEuclidean:
      for (size_t i = 0; i < count; ++i) {
        const Vec& v = base[id_of(i)];
        DUST_CHECK(v.size() == dim);
        out[i] = std::sqrt(ops.squared_l2(q, v.data(), dim));
      }
      return;
    case Metric::kManhattan:
      for (size_t i = 0; i < count; ++i) {
        const Vec& v = base[id_of(i)];
        DUST_CHECK(v.size() == dim);
        out[i] = ops.l1(q, v.data(), dim);
      }
      return;
  }
  DUST_CHECK(false && "invalid Metric enum value");
}

}  // namespace

void DistanceToMany(Metric metric, const Vec& query,
                    const std::vector<Vec>& base, std::vector<float>* out) {
  out->resize(base.size());
  DistanceToManyImpl(metric, query, base, nullptr, base.size(), out->data(),
                     [](size_t i) { return i; });
}

void DistanceToMany(Metric metric, const Vec& query,
                    const std::vector<Vec>& base,
                    const std::vector<float>& base_norms,
                    std::vector<float>* out) {
  DUST_CHECK(base_norms.size() == base.size());
  out->resize(base.size());
  DistanceToManyImpl(metric, query, base, base_norms.data(), base.size(),
                     out->data(), [](size_t i) { return i; });
}

void DistanceToMany(Metric metric, const Vec& query,
                    const std::vector<Vec>& base, const float* base_norms,
                    const uint32_t* ids, size_t count, float* out) {
  DistanceToManyImpl(metric, query, base, base_norms, count, out,
                     [ids](size_t i) { return static_cast<size_t>(ids[i]); });
}

void DistanceToMany(Metric metric, const Vec& query,
                    const std::vector<Vec>& base, const float* base_norms,
                    const size_t* ids, size_t count, float* out) {
  DistanceToManyImpl(metric, query, base, base_norms, count, out,
                     [ids](size_t i) { return ids[i]; });
}

DistanceMatrix::DistanceMatrix(const std::vector<Vec>& points, Metric metric)
    : n_(points.size()), data_(points.size() * points.size(), 0.0f) {
  // Row-at-a-time batch kernel over the strict upper triangle; the norm
  // cache (only read by cosine) makes each cosine entry a single dot
  // product.
  std::vector<float> norms;
  if (metric == Metric::kCosine) norms = NormsOf(points);
  const float* norms_data = norms.empty() ? nullptr : norms.data();
  std::vector<float> row;
  for (size_t i = 0; i + 1 < n_; ++i) {
    row.resize(n_ - i - 1);
    DistanceToManyImpl(metric, points[i], points, norms_data, n_ - i - 1,
                       row.data(), [i](size_t j) { return i + 1 + j; });
    for (size_t j = i + 1; j < n_; ++j) set(i, j, row[j - i - 1]);
  }
}

}  // namespace dust::la
