#include "la/distance.h"

#include <cmath>

#include "util/status.h"
#include "util/string_util.h"

namespace dust::la {

Metric MetricFromName(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "euclidean" || lower == "l2") return Metric::kEuclidean;
  if (lower == "manhattan" || lower == "l1") return Metric::kManhattan;
  return Metric::kCosine;
}

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kCosine:
      return "cosine";
    case Metric::kEuclidean:
      return "euclidean";
    case Metric::kManhattan:
      return "manhattan";
  }
  return "?";
}

float CosineSimilarity(const Vec& a, const Vec& b) {
  float na = Norm(a);
  float nb = Norm(b);
  if (na == 0.0f && nb == 0.0f) return 1.0f;  // identical zero vectors
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  float sim = Dot(a, b) / (na * nb);
  // Clamp accumulated floating-point error into [-1, 1].
  if (sim > 1.0f) sim = 1.0f;
  if (sim < -1.0f) sim = -1.0f;
  return sim;
}

float CosineDistance(const Vec& a, const Vec& b) {
  return 1.0f - CosineSimilarity(a, b);
}

float SquaredEuclideanDistance(const Vec& a, const Vec& b) {
  DUST_CHECK(a.size() == b.size());
  float s = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

float EuclideanDistance(const Vec& a, const Vec& b) {
  return std::sqrt(SquaredEuclideanDistance(a, b));
}

float ManhattanDistance(const Vec& a, const Vec& b) {
  DUST_CHECK(a.size() == b.size());
  float s = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) s += std::fabs(a[i] - b[i]);
  return s;
}

float Distance(Metric metric, const Vec& a, const Vec& b) {
  switch (metric) {
    case Metric::kCosine:
      return CosineDistance(a, b);
    case Metric::kEuclidean:
      return EuclideanDistance(a, b);
    case Metric::kManhattan:
      return ManhattanDistance(a, b);
  }
  return 0.0f;
}

DistanceMatrix::DistanceMatrix(const std::vector<Vec>& points, Metric metric)
    : n_(points.size()), data_(points.size() * points.size(), 0.0f) {
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = i + 1; j < n_; ++j) {
      set(i, j, Distance(metric, points[i], points[j]));
    }
  }
}

}  // namespace dust::la
