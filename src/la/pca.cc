#include "la/pca.h"

#include <cmath>

#include "la/distance.h"
#include "util/rng.h"
#include "util/status.h"

namespace dust::la {

namespace {

// Computes C v where C = (1/n) X^T X is the covariance of the centered data,
// without materializing C (d x d could be large). X is n x d centered.
Vec CovTimes(const std::vector<Vec>& centered, const Vec& v) {
  size_t d = v.size();
  Vec out(d, 0.0f);
  for (const Vec& x : centered) {
    float proj = Dot(x, v);
    for (size_t j = 0; j < d; ++j) out[j] += proj * x[j];
  }
  ScaleInPlace(&out, 1.0f / static_cast<float>(centered.size()));
  return out;
}

}  // namespace

PcaResult ComputePca(const std::vector<Vec>& points, size_t num_components,
                     uint64_t seed, size_t max_iters, float tol) {
  DUST_CHECK(points.size() >= 2);
  size_t d = points[0].size();
  DUST_CHECK(num_components >= 1 && num_components <= d);

  PcaResult result;
  result.mean = Mean(points);

  std::vector<Vec> centered = points;
  for (Vec& x : centered) SubInPlace(&x, result.mean);

  Rng rng(seed);
  for (size_t comp = 0; comp < num_components; ++comp) {
    // Power iteration from a random start.
    Vec v(d);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    // Orthogonalize against previous components (defensive; deflation below
    // already removes their variance).
    for (const Vec& prev : result.components) {
      float p = Dot(v, prev);
      for (size_t j = 0; j < d; ++j) v[j] -= p * prev[j];
    }
    NormalizeInPlace(&v);

    float eigenvalue = 0.0f;
    for (size_t it = 0; it < max_iters; ++it) {
      Vec next = CovTimes(centered, v);
      for (const Vec& prev : result.components) {
        float p = Dot(next, prev);
        for (size_t j = 0; j < d; ++j) next[j] -= p * prev[j];
      }
      float norm = Norm(next);
      if (norm < 1e-12f) {
        // No remaining variance in this subspace.
        next = v;
        norm = 1.0f;
        eigenvalue = 0.0f;
        ScaleInPlace(&next, 1.0f / norm);
        v = next;
        break;
      }
      ScaleInPlace(&next, 1.0f / norm);
      float delta = EuclideanDistance(next, v);
      v = next;
      eigenvalue = norm;
      if (delta < tol) break;
    }

    result.components.push_back(v);
    result.explained_variance.push_back(eigenvalue);

    // Deflate: remove this component's contribution from the data.
    for (Vec& x : centered) {
      float p = Dot(x, v);
      for (size_t j = 0; j < d; ++j) x[j] -= p * v[j];
    }
  }

  result.projected.reserve(points.size());
  for (const Vec& x : points) result.projected.push_back(PcaProject(result, x));
  return result;
}

Vec PcaProject(const PcaResult& pca, const Vec& point) {
  Vec centered = Sub(point, pca.mean);
  Vec out(pca.components.size(), 0.0f);
  for (size_t c = 0; c < pca.components.size(); ++c) {
    out[c] = Dot(centered, pca.components[c]);
  }
  return out;
}

}  // namespace dust::la
