// Principal component analysis via power iteration with deflation.
// Used by the Fig. 2 experiment to project 64/768-dimensional table and
// tuple embeddings to two dimensions and measure their spread.
#ifndef DUST_LA_PCA_H_
#define DUST_LA_PCA_H_

#include <cstdint>
#include <vector>

#include "la/vector_ops.h"

namespace dust::la {

struct PcaResult {
  /// Principal directions, unit-norm, one per requested component.
  std::vector<Vec> components;
  /// Variance captured by each component (eigenvalues of the covariance).
  std::vector<float> explained_variance;
  /// Mean of the input points (subtracted before projection).
  Vec mean;
  /// Input points projected onto the components (n x k).
  std::vector<Vec> projected;
};

/// Computes the top `num_components` principal components of `points`
/// (n >= 2, equal dimensions) and projects the points onto them.
/// Deterministic given `seed`.
PcaResult ComputePca(const std::vector<Vec>& points, size_t num_components,
                     uint64_t seed = 17, size_t max_iters = 300,
                     float tol = 1e-6f);

/// Projects a single point using a previously computed PCA basis.
Vec PcaProject(const PcaResult& pca, const Vec& point);

}  // namespace dust::la

#endif  // DUST_LA_PCA_H_
