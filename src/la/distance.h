// Tuple distance functions delta(.) of Sec. 3.1 and pairwise distance
// matrices. Cosine distance is the default throughout the experiments
// (Sec. 6.4.1); Euclidean and Manhattan are provided because the paper
// reports equivalent relative results with them.
//
// All kernels route through the runtime-dispatched SIMD backend in
// la/simd/ (AVX2 when the CPU has it, scalar otherwise; DUST_FORCE_SCALAR
// pins the fallback). The one-to-many DistanceToMany overloads are the hot
// path of every index scan: they hoist the query norm and metric switch
// out of the candidate loop, and with a caller-provided norm cache cosine
// distance costs a single fused dot product per candidate.
#ifndef DUST_LA_DISTANCE_H_
#define DUST_LA_DISTANCE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "la/vector_ops.h"
#include "util/status.h"

namespace dust::la {

enum class Metric { kCosine, kEuclidean, kManhattan };

/// Parses "cosine" / "euclidean" ("l2") / "manhattan" ("l1"),
/// case-insensitively. Any other spelling is InvalidArgument — a typo'd
/// metric must fail loudly, not silently fall back to cosine and serve
/// wrong distances.
Result<Metric> MetricFromName(const std::string& name);
const char* MetricName(Metric metric);

/// Cosine distance = 1 - cos(a, b); zero vectors are at distance 1 from
/// everything except another zero vector (distance 0 to itself would violate
/// delta(t,t)=0, so two zero vectors get distance 0).
float CosineDistance(const Vec& a, const Vec& b);

/// Cosine similarity in [-1, 1]; 0 when either vector is zero.
float CosineSimilarity(const Vec& a, const Vec& b);

/// Cosine distance reconstructed from a precomputed dot product and the two
/// L2 norms, with exactly CosineDistance's zero-vector conventions and
/// [-1, 1] clamping. This is the fused form the norm-caching index scans
/// use: with norms cached, each candidate costs one dot product.
float CosineDistanceFromDot(float dot, float norm_a, float norm_b);

float EuclideanDistance(const Vec& a, const Vec& b);
float SquaredEuclideanDistance(const Vec& a, const Vec& b);
float ManhattanDistance(const Vec& a, const Vec& b);

/// Distance under `metric`.
float Distance(Metric metric, const Vec& a, const Vec& b);

/// Norm(base[i]) for every vector — the cache the norm-aware DistanceToMany
/// overloads consume. Indexes keep one of these aligned with their vector
/// storage.
std::vector<float> NormsOf(const std::vector<Vec>& base);

/// One-to-many: out[i] = Distance(metric, query, base[i]), out resized to
/// base.size(). Computes per-candidate norms on the fly for cosine (still
/// one fused pass per candidate).
void DistanceToMany(Metric metric, const Vec& query,
                    const std::vector<Vec>& base, std::vector<float>* out);

/// Norm-cached variant: base_norms must be NormsOf(base) (only read for
/// cosine, where it saves the per-candidate norm pass).
void DistanceToMany(Metric metric, const Vec& query,
                    const std::vector<Vec>& base,
                    const std::vector<float>& base_norms,
                    std::vector<float>* out);

/// Gathered variants for index scans over id lists (IVF inverted lists, LSH
/// buckets, HNSW adjacency): out[i] = Distance(metric, query,
/// base[ids[i]]). `out` must hold `count` floats; `base_norms` may be null
/// (norms then computed on the fly for cosine) or NormsOf(base).
void DistanceToMany(Metric metric, const Vec& query,
                    const std::vector<Vec>& base, const float* base_norms,
                    const uint32_t* ids, size_t count, float* out);
void DistanceToMany(Metric metric, const Vec& query,
                    const std::vector<Vec>& base, const float* base_norms,
                    const size_t* ids, size_t count, float* out);

/// Row-major symmetric pairwise distance matrix (n x n, zero diagonal).
class DistanceMatrix {
 public:
  DistanceMatrix() : n_(0) {}

  /// Precomputes all pairwise distances between `points` under `metric`.
  DistanceMatrix(const std::vector<Vec>& points, Metric metric);

  size_t size() const { return n_; }

  float at(size_t i, size_t j) const { return data_[i * n_ + j]; }
  void set(size_t i, size_t j, float d) {
    data_[i * n_ + j] = d;
    data_[j * n_ + i] = d;
  }

 private:
  size_t n_;
  std::vector<float> data_;
};

}  // namespace dust::la

#endif  // DUST_LA_DISTANCE_H_
