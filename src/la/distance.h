// Tuple distance functions delta(.) of Sec. 3.1 and pairwise distance
// matrices. Cosine distance is the default throughout the experiments
// (Sec. 6.4.1); Euclidean and Manhattan are provided because the paper
// reports equivalent relative results with them.
#ifndef DUST_LA_DISTANCE_H_
#define DUST_LA_DISTANCE_H_

#include <functional>
#include <string>
#include <vector>

#include "la/vector_ops.h"

namespace dust::la {

enum class Metric { kCosine, kEuclidean, kManhattan };

/// Parses "cosine" / "euclidean" / "manhattan"; defaults to cosine.
Metric MetricFromName(const std::string& name);
const char* MetricName(Metric metric);

/// Cosine distance = 1 - cos(a, b); zero vectors are at distance 1 from
/// everything except another zero vector (distance 0 to itself would violate
/// delta(t,t)=0, so two zero vectors get distance 0).
float CosineDistance(const Vec& a, const Vec& b);

/// Cosine similarity in [-1, 1]; 0 when either vector is zero.
float CosineSimilarity(const Vec& a, const Vec& b);

float EuclideanDistance(const Vec& a, const Vec& b);
float SquaredEuclideanDistance(const Vec& a, const Vec& b);
float ManhattanDistance(const Vec& a, const Vec& b);

/// Distance under `metric`.
float Distance(Metric metric, const Vec& a, const Vec& b);

/// Row-major symmetric pairwise distance matrix (n x n, zero diagonal).
class DistanceMatrix {
 public:
  DistanceMatrix() : n_(0) {}

  /// Precomputes all pairwise distances between `points` under `metric`.
  DistanceMatrix(const std::vector<Vec>& points, Metric metric);

  size_t size() const { return n_; }

  float at(size_t i, size_t j) const { return data_[i * n_ + j]; }
  void set(size_t i, size_t j, float d) {
    data_[i * n_ + j] = d;
    data_[j * n_ + i] = d;
  }

 private:
  size_t n_;
  std::vector<float> data_;
};

}  // namespace dust::la

#endif  // DUST_LA_DISTANCE_H_
