// Dense vector operations. Embeddings throughout the library are
// std::vector<float>; these kernels are the hot path of every distance
// computation, clustering step, and training iteration.
#ifndef DUST_LA_VECTOR_OPS_H_
#define DUST_LA_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace dust::la {

using Vec = std::vector<float>;

/// Dot product. Requires a.size() == b.size().
float Dot(const Vec& a, const Vec& b);

/// Euclidean (L2) norm.
float Norm(const Vec& a);

/// Squared Euclidean norm.
float NormSquared(const Vec& a);

/// a += b. Requires equal sizes.
void AddInPlace(Vec* a, const Vec& b);

/// a -= b. Requires equal sizes.
void SubInPlace(Vec* a, const Vec& b);

/// a *= s.
void ScaleInPlace(Vec* a, float s);

/// a + b (new vector).
Vec Add(const Vec& a, const Vec& b);

/// a - b (new vector).
Vec Sub(const Vec& a, const Vec& b);

/// Normalizes to unit L2 norm; leaves the zero vector untouched.
void NormalizeInPlace(Vec* a);

/// Unit-norm copy (zero vector maps to itself).
Vec Normalized(const Vec& a);

/// Component-wise mean of a non-empty set of equal-length vectors.
Vec Mean(const std::vector<Vec>& vectors);

/// Component-wise mean over `indices` into `vectors` (indices non-empty).
Vec MeanOf(const std::vector<Vec>& vectors, const std::vector<size_t>& indices);

}  // namespace dust::la

#endif  // DUST_LA_VECTOR_OPS_H_
