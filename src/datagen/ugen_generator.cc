#include "datagen/ugen_generator.h"

#include <algorithm>

#include "util/string_util.h"

namespace dust::datagen {

Benchmark GenerateUgen(const UgenConfig& config) {
  const std::vector<DomainSpec>& domains = BuiltinDomains();
  Rng rng(config.seed);
  Benchmark benchmark;
  benchmark.name = "UGEN-V1";

  // Fresh concept ids for alternate domains start above the built-ins.
  int next_alt_concept = 10000;

  size_t num_queries = config.num_queries;
  benchmark.unionable.resize(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    const DomainSpec& domain = domains[q % domains.size()];
    // Each query gets its own base so repeated topics stay non-unionable
    // across queries (UGEN queries are independent topics).
    size_t base_rows = config.rows_per_table * 5;
    table::Table base = GenerateBaseTable(domain, base_rows, &rng);
    size_t base_id = 1000 + q;

    auto sample_rows = [&](size_t count) {
      std::vector<size_t> rows =
          rng.SampleWithoutReplacement(base.num_rows(), count);
      std::sort(rows.begin(), rows.end());
      return rows;
    };
    std::vector<size_t> all_columns(domain.fields.size());
    for (size_t j = 0; j < all_columns.size(); ++j) all_columns[j] = j;

    benchmark.queries.push_back(
        MakeVariant(base, domain, base_id, all_columns,
                    sample_rows(config.rows_per_table),
                    StrFormat("%s_ugen_query_%zu", domain.name.c_str(), q),
                    &rng));

    for (size_t v = 0; v < config.unionable_per_query; ++v) {
      // Small tables, full or nearly full schema (UGEN tables are narrow
      // but complete).
      std::vector<size_t> cols = all_columns;
      if (cols.size() > 3 && rng.NextBernoulli(0.4)) {
        cols.erase(cols.begin() + static_cast<long>(
                                      1 + rng.NextBelow(cols.size() - 1)));
      }
      benchmark.unionable[q].push_back(benchmark.lake.size());
      benchmark.lake.push_back(MakeVariant(
          base, domain, base_id, cols, sample_rows(config.rows_per_table),
          StrFormat("%s_ugen_u%zu_%zu", domain.name.c_str(), q, v), &rng));
    }

    // Same-topic hard negatives from the alternate schema.
    DomainSpec alt = AlternateDomain(domain, next_alt_concept);
    next_alt_concept += static_cast<int>(alt.fields.size());
    table::Table alt_base =
        GenerateBaseTable(alt, config.rows_per_table * 4, &rng);
    std::vector<size_t> alt_columns(alt.fields.size());
    for (size_t j = 0; j < alt_columns.size(); ++j) alt_columns[j] = j;
    for (size_t v = 0; v < config.non_unionable_per_query; ++v) {
      std::vector<size_t> rows = rng.SampleWithoutReplacement(
          alt_base.num_rows(), config.rows_per_table);
      std::sort(rows.begin(), rows.end());
      benchmark.lake.push_back(MakeVariant(
          alt_base, alt, 5000 + q, alt_columns, rows,
          StrFormat("%s_ugen_n%zu_%zu", alt.name.c_str(), q, v), &rng));
    }
  }
  return benchmark;
}

}  // namespace dust::datagen
