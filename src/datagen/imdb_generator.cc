#include "datagen/imdb_generator.h"

#include <algorithm>

#include "util/string_util.h"

namespace dust::datagen {

namespace {

// The 13-column movie schema of the case study (title, director, genre,
// budget, filming location, language, and more — Sec. 6.6).
DomainSpec ImdbDomain() {
  const std::vector<DomainSpec>& domains = BuiltinDomains();
  for (const DomainSpec& d : domains) {
    if (d.name == "movies") {
      DomainSpec imdb = d;  // reuse movie concepts for the shared columns
      imdb.name = "imdb";
      int extra_concept = 20000;
      auto add = [&](FieldSpec f) {
        f.concept_id = extra_concept++;
        imdb.fields.push_back(std::move(f));
      };
      FieldSpec writer;
      writer.header = "Writer";
      writer.synonyms = {"Writer", "Screenplay"};
      writer.kind = FieldKind::kPersonName;
      add(writer);
      FieldSpec star;
      star.header = "Lead Actor";
      star.synonyms = {"Lead Actor", "Star"};
      star.kind = FieldKind::kPersonName;
      add(star);
      FieldSpec country;
      country.header = "Country";
      country.synonyms = {"Country", "Production Country"};
      country.kind = FieldKind::kCountry;
      add(country);
      FieldSpec rating;
      rating.header = "IMDB Rating";
      rating.synonyms = {"IMDB Rating", "Score"};
      rating.kind = FieldKind::kNumber;
      rating.min_value = 1.0;
      rating.max_value = 10.0;
      add(rating);
      FieldSpec votes;
      votes.header = "Votes";
      votes.synonyms = {"Votes", "Vote Count"};
      votes.kind = FieldKind::kNumber;
      votes.min_value = 100;
      votes.max_value = 900000;
      add(votes);
      return imdb;  // 8 movie fields + 5 extras = 13 columns
    }
  }
  DUST_CHECK(false);
  return domains[0];
}

}  // namespace

Benchmark GenerateImdb(const ImdbConfig& config) {
  Rng rng(config.seed);
  Benchmark benchmark;
  benchmark.name = "IMDB";
  DomainSpec domain = ImdbDomain();
  table::Table base = GenerateBaseTable(domain, config.base_movies, &rng);

  std::vector<size_t> all_columns(domain.fields.size());
  for (size_t j = 0; j < all_columns.size(); ++j) all_columns[j] = j;

  std::vector<size_t> query_rows =
      rng.SampleWithoutReplacement(base.num_rows(), config.query_rows);
  std::sort(query_rows.begin(), query_rows.end());
  benchmark.queries.push_back(MakeVariant(base, domain, 0, all_columns,
                                          query_rows, "imdb_query", &rng));
  benchmark.unionable.resize(1);

  for (size_t v = 0; v < config.num_lake_tables; ++v) {
    size_t overlap =
        static_cast<size_t>(config.overlap_fraction *
                            static_cast<double>(config.lake_rows));
    overlap = std::min(overlap, query_rows.size());
    std::vector<size_t> rows;
    // Overlapping rows come from the query's own sample...
    std::vector<size_t> pick =
        rng.SampleWithoutReplacement(query_rows.size(), overlap);
    for (size_t p : pick) rows.push_back(query_rows[p]);
    // ...the rest from the whole base.
    while (rows.size() < std::min(config.lake_rows, base.num_rows())) {
      rows.push_back(rng.NextBelow(base.num_rows()));
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    benchmark.unionable[0].push_back(benchmark.lake.size());
    benchmark.lake.push_back(MakeVariant(base, domain, 0, all_columns, rows,
                                         StrFormat("imdb_lake_%zu", v), &rng));
  }
  return benchmark;
}

}  // namespace dust::datagen
