// IMDB case-study generator (Sec. 6.6): a movie dataset of ~500 recent
// movies; a query table and 20 unionable tables are row samples with heavy
// overlap. Fig. 8 counts the novel unique values each discovery method
// adds per column.
#ifndef DUST_DATAGEN_IMDB_GENERATOR_H_
#define DUST_DATAGEN_IMDB_GENERATOR_H_

#include "datagen/base_tables.h"

namespace dust::datagen {

struct ImdbConfig {
  size_t base_movies = 500;
  size_t num_lake_tables = 20;
  size_t query_rows = 50;
  size_t lake_rows = 97;  // paper: tables average 97 tuples
  /// Fraction of each lake table's rows drawn from the query's rows
  /// (the redundancy that penalizes similarity-based search).
  double overlap_fraction = 0.45;
  uint64_t seed = 4;
};

/// A single-query benchmark over the movie domain (13 columns).
Benchmark GenerateImdb(const ImdbConfig& config);

}  // namespace dust::datagen

#endif  // DUST_DATAGEN_IMDB_GENERATOR_H_
