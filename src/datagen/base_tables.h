// Topic-domain schemas and base-table generation.
//
// Every synthetic benchmark follows the TUS construction recipe (Sec. 6.1):
// base tables per topic; lake/query tables are row-selections and column-
// projections of a base table; tables from the same base are unionable.
// Each field carries a global concept id — two columns truly align iff they
// share a concept — which supplies the alignment ground truth of Table 1.
#ifndef DUST_DATAGEN_BASE_TABLES_H_
#define DUST_DATAGEN_BASE_TABLES_H_

#include <string>
#include <vector>

#include "datagen/vocab.h"
#include "table/table.h"
#include "util/rng.h"

namespace dust::datagen {

/// Value generator kind of one field.
enum class FieldKind {
  kEntityName,  // "<pool_a word> <suffix>" style titles/names
  kPersonName,
  kCity,
  kCountry,
  kCategory,    // uniform draw from pool_a
  kNumber,      // uniform numeric in [min_value, max_value]
  kMoney,
  kPhone,
  kDate,
  kYear,
};

struct FieldSpec {
  std::string header;
  /// Header variants used when generating table variants ("Country" vs
  /// "Park Country" vs "Nation"); includes `header` itself.
  std::vector<std::string> synonyms;
  FieldKind kind = FieldKind::kCategory;
  Pool pool_a = Pool::kColors;
  /// Suffix appended to entity names ("Park", "University", "").
  std::string entity_suffix;
  double min_value = 0.0;
  double max_value = 100.0;
  /// Globally unique alignment concept (assigned by BuiltinDomains).
  int concept_id = -1;
};

struct DomainSpec {
  std::string name;  // topic, e.g. "parks"
  std::vector<FieldSpec> fields;
  /// Indices of field pairs sharing a binary relationship (kept together by
  /// the SANTOS generator's projections).
  std::vector<std::pair<size_t, size_t>> related_pairs;
};

/// The built-in topic domains (12), with globally unique concept ids.
const std::vector<DomainSpec>& BuiltinDomains();

/// A sibling schema on the same topic with fresh concept ids and different
/// headers/structure — the UGEN-V1 "same topic but non-unionable" tables.
DomainSpec AlternateDomain(const DomainSpec& domain, int concept_base);

/// Generates one value for `field`.
table::Value GenerateValue(const FieldSpec& field, Rng* rng);

/// Generates a base table of `rows` rows for `domain`.
table::Table GenerateBaseTable(const DomainSpec& domain, size_t rows, Rng* rng);

/// A generated table plus its provenance metadata.
struct GeneratedTable {
  table::Table data;
  size_t base_id = 0;                 // which base table it came from
  std::vector<int> column_concepts;   // concept id per column
};

/// A full synthetic benchmark: lake + queries + unionability ground truth.
struct Benchmark {
  std::string name;
  std::vector<GeneratedTable> lake;
  std::vector<GeneratedTable> queries;
  /// unionable[q] = indices of lake tables unionable with query q.
  std::vector<std::vector<size_t>> unionable;

  struct Stats {
    size_t tables = 0;
    size_t columns = 0;
    size_t tuples = 0;
  };
  Stats LakeStats() const;
  Stats QueryStats() const;
};

/// Derives a variant (row selection + column projection, with synonym
/// headers) of `base`. `keep_columns` lists the base column indices to keep
/// (in order); `rows` lists the base row indices to keep.
GeneratedTable MakeVariant(const table::Table& base, const DomainSpec& domain,
                           size_t base_id, const std::vector<size_t>& keep_columns,
                           const std::vector<size_t>& rows,
                           const std::string& variant_name, Rng* rng);

}  // namespace dust::datagen

#endif  // DUST_DATAGEN_BASE_TABLES_H_
