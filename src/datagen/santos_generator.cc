#include "datagen/santos_generator.h"

namespace dust::datagen {

Benchmark GenerateSantos(const SantosConfig& config) {
  TusConfig tus;
  tus.name = "SANTOS";
  tus.num_queries = config.num_queries;
  tus.unionable_per_query = config.unionable_per_query;
  tus.base_rows = config.base_rows;
  // Larger row samples (SANTOS tables are bigger, Fig. 5) and projections
  // closed under the binary relationships.
  tus.row_sample_min = 0.35;
  tus.row_sample_max = 0.8;
  tus.column_keep_min = 0.55;
  tus.column_keep_max = 0.95;
  tus.keep_related_pairs = true;
  tus.near_copy_fraction = 0.3;
  tus.seed = config.seed;
  return GenerateTus(tus);
}

}  // namespace dust::datagen
