// Fine-tuning pair datasets (Sec. 6.1.1, "TUS Fine-tuning Benchmark").
//
// Unionability pairs: label 1 for two tuples from the same table or a pair
// of unionable tables, label 0 for tuples from non-unionable tables.
// Balanced; split 70:15:15 by *table* so no tuple leaks across splits.
//
// Entity-matching pairs (for the Ditto baseline of Sec. 6.3.2): label 1 for
// a tuple and a lightly perturbed copy of itself, label 0 for two distinct
// tuples — the different training signal that leaves Ditto mid-pack on
// unionability.
#ifndef DUST_DATAGEN_FINETUNE_PAIRS_H_
#define DUST_DATAGEN_FINETUNE_PAIRS_H_

#include "datagen/base_tables.h"
#include "nn/trainer.h"

namespace dust::datagen {

struct FinetunePairsConfig {
  size_t total_pairs = 6000;  // 60K in the paper, scaled for one core
  double train_fraction = 0.70;
  double validation_fraction = 0.15;
  uint64_t seed = 5;
};

/// Unionability-labelled pairs from a TUS-style benchmark.
nn::PairDataset BuildFinetunePairs(const Benchmark& benchmark,
                                   const FinetunePairsConfig& config);

/// Entity-matching-labelled pairs (Ditto's task) from the same tables.
nn::PairDataset BuildEntityMatchingPairs(const Benchmark& benchmark,
                                         const FinetunePairsConfig& config);

}  // namespace dust::datagen

#endif  // DUST_DATAGEN_FINETUNE_PAIRS_H_
