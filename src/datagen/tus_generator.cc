#include "datagen/tus_generator.h"

#include <algorithm>

#include "util/status.h"
#include "util/string_util.h"

namespace dust::datagen {

namespace {

// Chooses the base-column subset for one variant. The entity (first) column
// is always kept so variants stay recognizable; related pairs are kept
// together when requested.
std::vector<size_t> ChooseColumns(const DomainSpec& domain, double keep_min,
                                  double keep_max, bool keep_related_pairs,
                                  Rng* rng) {
  size_t n = domain.fields.size();
  double keep_frac = keep_min + rng->NextDouble() * (keep_max - keep_min);
  size_t keep = std::max<size_t>(2, static_cast<size_t>(keep_frac * n + 0.5));
  keep = std::min(keep, n);

  std::vector<size_t> order = rng->Permutation(n);
  std::vector<char> chosen(n, 0);
  chosen[0] = 1;  // entity column
  size_t count = 1;
  for (size_t idx : order) {
    if (count >= keep) break;
    if (!chosen[idx]) {
      chosen[idx] = 1;
      ++count;
    }
  }
  if (keep_related_pairs) {
    // Close the projection under the domain's binary relationships.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [a, b] : domain.related_pairs) {
        if (chosen[a] != chosen[b]) {
          chosen[a] = chosen[b] = 1;
          changed = true;
        }
      }
    }
  }
  std::vector<size_t> keep_columns;
  for (size_t j = 0; j < n; ++j) {
    if (chosen[j]) keep_columns.push_back(j);
  }
  return keep_columns;
}

std::vector<size_t> SampleRows(size_t base_rows, double frac_min,
                               double frac_max, Rng* rng) {
  double frac = frac_min + rng->NextDouble() * (frac_max - frac_min);
  size_t count =
      std::max<size_t>(3, static_cast<size_t>(frac * base_rows + 0.5));
  count = std::min(count, base_rows);
  std::vector<size_t> rows = rng->SampleWithoutReplacement(base_rows, count);
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace

Benchmark GenerateTus(const TusConfig& config) {
  const std::vector<DomainSpec>& domains = BuiltinDomains();
  Rng rng(config.seed);
  Benchmark benchmark;
  benchmark.name = config.name;

  // One base table per domain.
  std::vector<table::Table> bases;
  bases.reserve(domains.size());
  for (const DomainSpec& domain : domains) {
    bases.push_back(GenerateBaseTable(domain, config.base_rows, &rng));
  }

  size_t num_queries = std::min(config.num_queries, domains.size());
  benchmark.unionable.resize(num_queries);

  for (size_t q = 0; q < num_queries; ++q) {
    const DomainSpec& domain = domains[q];
    const table::Table& base = bases[q];

    // Query table: its own variant.
    std::vector<size_t> query_cols =
        ChooseColumns(domain, 0.7, 1.0, config.keep_related_pairs, &rng);
    std::vector<size_t> query_rows =
        SampleRows(base.num_rows(), config.row_sample_min,
                   config.row_sample_max, &rng);
    benchmark.queries.push_back(
        MakeVariant(base, domain, q, query_cols, query_rows,
                    StrFormat("%s_query", domain.name.c_str()), &rng));

    // Unionable lake tables from the same base.
    for (size_t v = 0; v < config.unionable_per_query; ++v) {
      std::vector<size_t> cols =
          ChooseColumns(domain, config.column_keep_min, config.column_keep_max,
                        config.keep_related_pairs, &rng);
      std::vector<size_t> rows;
      bool near_copy =
          rng.NextDouble() < config.near_copy_fraction && !query_rows.empty();
      if (near_copy) {
        // Mostly the query's own rows plus a few fresh ones: the redundant
        // near-duplicate tables that plague similarity-based search.
        rows = query_rows;
        size_t extra = std::max<size_t>(1, query_rows.size() / 8);
        for (size_t e = 0; e < extra; ++e) {
          rows.push_back(rng.NextBelow(base.num_rows()));
        }
        std::sort(rows.begin(), rows.end());
        rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
      } else {
        rows = SampleRows(base.num_rows(), config.row_sample_min,
                          config.row_sample_max, &rng);
      }
      benchmark.unionable[q].push_back(benchmark.lake.size());
      benchmark.lake.push_back(MakeVariant(
          base, domain, q, cols, rows,
          StrFormat("%s_lake_%zu", domain.name.c_str(), v), &rng));
    }
  }

  // Distractor tables from the remaining (non-query) bases.
  for (size_t b = num_queries; b < domains.size(); ++b) {
    for (size_t v = 0; v < config.distractors_per_base; ++v) {
      std::vector<size_t> cols =
          ChooseColumns(domains[b], config.column_keep_min,
                        config.column_keep_max, config.keep_related_pairs, &rng);
      std::vector<size_t> rows =
          SampleRows(bases[b].num_rows(), config.row_sample_min,
                     config.row_sample_max, &rng);
      benchmark.lake.push_back(MakeVariant(
          bases[b], domains[b], b, cols, rows,
          StrFormat("%s_lake_%zu", domains[b].name.c_str(), v), &rng));
    }
  }
  return benchmark;
}

}  // namespace dust::datagen
