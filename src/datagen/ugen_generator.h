// UGEN-V1-style benchmark generator (Sec. 6.1.3): small LLM-generated
// tables — each query comes with 10 unionable tables AND 10 non-unionable
// tables on the same topic (the hard negatives that make UGEN-V1 harder
// than TUS/SANTOS). Same-topic negatives come from an AlternateDomain of
// the query's domain: shared vocabulary, different concepts.
#ifndef DUST_DATAGEN_UGEN_GENERATOR_H_
#define DUST_DATAGEN_UGEN_GENERATOR_H_

#include "datagen/base_tables.h"

namespace dust::datagen {

struct UgenConfig {
  size_t num_queries = 12;
  size_t unionable_per_query = 10;
  size_t non_unionable_per_query = 10;
  size_t rows_per_table = 10;  // UGEN tables are tiny (Fig. 5: ~10 rows)
  uint64_t seed = 3;
};

Benchmark GenerateUgen(const UgenConfig& config);

}  // namespace dust::datagen

#endif  // DUST_DATAGEN_UGEN_GENERATOR_H_
