// SANTOS-style benchmark generator (Sec. 6.1.2): follows the TUS recipe but
// projections preserve the domains' binary relationships (a unionable table
// shares at least one related column pair with the query), tables are
// larger, and numeric columns are more prevalent.
#ifndef DUST_DATAGEN_SANTOS_GENERATOR_H_
#define DUST_DATAGEN_SANTOS_GENERATOR_H_

#include "datagen/tus_generator.h"

namespace dust::datagen {

struct SantosConfig {
  size_t num_queries = 10;
  size_t unionable_per_query = 10;
  size_t base_rows = 400;
  uint64_t seed = 2;
};

Benchmark GenerateSantos(const SantosConfig& config);

}  // namespace dust::datagen

#endif  // DUST_DATAGEN_SANTOS_GENERATOR_H_
