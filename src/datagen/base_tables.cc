#include "datagen/base_tables.h"

#include "util/status.h"
#include "util/string_util.h"

namespace dust::datagen {

namespace {

FieldSpec Entity(const std::string& header, Pool pool, std::string suffix,
                 std::vector<std::string> synonyms) {
  FieldSpec f;
  f.header = header;
  f.kind = FieldKind::kEntityName;
  f.pool_a = pool;
  f.entity_suffix = std::move(suffix);
  f.synonyms = std::move(synonyms);
  f.synonyms.insert(f.synonyms.begin(), header);
  return f;
}

FieldSpec Simple(const std::string& header, FieldKind kind,
                 std::vector<std::string> synonyms, Pool pool = Pool::kColors,
                 double min_value = 0, double max_value = 100) {
  FieldSpec f;
  f.header = header;
  f.kind = kind;
  f.pool_a = pool;
  f.min_value = min_value;
  f.max_value = max_value;
  f.synonyms = std::move(synonyms);
  f.synonyms.insert(f.synonyms.begin(), header);
  return f;
}

std::vector<DomainSpec> BuildDomains() {
  std::vector<DomainSpec> domains;

  {
    DomainSpec d;
    d.name = "parks";
    d.fields = {
        Entity("Park Name", Pool::kParkWords, "Park", {"Park", "Name of Park"}),
        Simple("Supervisor", FieldKind::kPersonName, {"Supervised By", "Manager"}),
        Simple("City", FieldKind::kCity, {"Park City", "Location"}),
        Simple("Country", FieldKind::kCountry, {"Park Country", "Nation"}),
        Simple("Park Phone", FieldKind::kPhone, {"Phone", "Contact Number"}),
        Simple("Area Acres", FieldKind::kNumber, {"Acres", "Size"},
               Pool::kColors, 2, 900),
        Simple("Opened", FieldKind::kYear, {"Year Opened", "Established"}),
    };
    d.related_pairs = {{2, 3}, {0, 1}};
    domains.push_back(d);
  }
  {
    DomainSpec d;
    d.name = "paintings";
    d.fields = {
        Entity("Painting", Pool::kPaintingWords, "", {"Title", "Artwork"}),
        Simple("Medium", FieldKind::kCategory, {"Materials", "Technique"},
               Pool::kArtMediums),
        Simple("Dimensions", FieldKind::kNumber, {"Size cm", "Width cm"},
               Pool::kColors, 20, 400),
        Simple("Date", FieldKind::kYear, {"Year", "Created"}),
        Simple("Country", FieldKind::kCountry, {"Origin", "Nation"}),
        Simple("Artist", FieldKind::kPersonName, {"Painter", "Created By"}),
    };
    d.related_pairs = {{0, 5}, {3, 4}};
    domains.push_back(d);
  }
  {
    DomainSpec d;
    d.name = "movies";
    d.fields = {
        Entity("Title", Pool::kMovieWords, "", {"Movie Title", "Film"}),
        Simple("Director", FieldKind::kPersonName, {"Directed By", "Filmmaker"}),
        Simple("Genre", FieldKind::kCategory, {"Category", "Type"}, Pool::kGenres),
        Simple("Budget", FieldKind::kMoney, {"Budget USD", "Cost"},
               Pool::kColors, 100000, 200000000),
        Simple("Filming Location", FieldKind::kCity, {"Location", "Filmed In"}),
        Simple("Language", FieldKind::kCategory, {"Languages", "Spoken Language"},
               Pool::kLanguages),
        Simple("Release Year", FieldKind::kYear, {"Year", "Released"}),
        Simple("Runtime Min", FieldKind::kNumber, {"Runtime", "Length Min"},
               Pool::kColors, 70, 210),
    };
    d.related_pairs = {{0, 1}, {4, 5}};
    domains.push_back(d);
  }
  {
    DomainSpec d;
    d.name = "mythology";
    d.fields = {
        Entity("Myth", Pool::kMythCreatures, "", {"Creature", "Being"}),
        Simple("Definition", FieldKind::kCategory, {"Description", "Meaning"},
               Pool::kAdjectives),
        Simple("Synonyms", FieldKind::kCategory, {"Also Known As", "Aliases"},
               Pool::kMythCreatures),
        Simple("Origin", FieldKind::kCategory, {"Culture", "Mythology"},
               Pool::kMythOrigins),
    };
    d.related_pairs = {{0, 3}};
    domains.push_back(d);
  }
  {
    DomainSpec d;
    d.name = "weather";
    d.fields = {
        Entity("Station", Pool::kWeatherWords, "Station", {"Station Name", "Site"}),
        Simple("City", FieldKind::kCity, {"Location", "Town"}),
        Simple("Temp C", FieldKind::kNumber, {"Temperature", "Mean Temp"},
               Pool::kColors, -30, 45),
        Simple("Rain mm", FieldKind::kNumber, {"Precipitation", "Rainfall"},
               Pool::kColors, 0, 400),
        Simple("Recorded", FieldKind::kDate, {"Date", "Observation Date"}),
    };
    d.related_pairs = {{0, 1}};
    domains.push_back(d);
  }
  {
    DomainSpec d;
    d.name = "restaurants";
    d.fields = {
        Entity("Restaurant", Pool::kDishWords, "Kitchen", {"Name", "Venue"}),
        Simple("Cuisine", FieldKind::kCategory, {"Food Type", "Style"},
               Pool::kCuisines),
        Simple("Chef", FieldKind::kPersonName, {"Head Chef", "Owner"}),
        Simple("City", FieldKind::kCity, {"Location", "Address City"}),
        Simple("Rating", FieldKind::kNumber, {"Stars", "Score"}, Pool::kColors,
               1, 5),
        Simple("Phone", FieldKind::kPhone, {"Contact", "Telephone"}),
    };
    d.related_pairs = {{0, 2}, {1, 3}};
    domains.push_back(d);
  }
  {
    DomainSpec d;
    d.name = "universities";
    d.fields = {
        Entity("University", Pool::kUniversityWords, "University",
               {"Institution", "School"}),
        Simple("Field", FieldKind::kCategory, {"Department", "Discipline"},
               Pool::kAcademicFields),
        Simple("City", FieldKind::kCity, {"Campus City", "Location"}),
        Simple("Country", FieldKind::kCountry, {"Nation", "Country Name"}),
        Simple("Enrollment", FieldKind::kNumber, {"Students", "Student Count"},
               Pool::kColors, 800, 60000),
        Simple("Founded", FieldKind::kYear, {"Year Founded", "Established"}),
    };
    d.related_pairs = {{2, 3}};
    domains.push_back(d);
  }
  {
    DomainSpec d;
    d.name = "sports";
    d.fields = {
        Entity("Team", Pool::kSportsWords, "", {"Team Name", "Club"}),
        Simple("League", FieldKind::kCategory, {"Division", "Conference"},
               Pool::kSportsLeagues),
        Simple("Coach", FieldKind::kPersonName, {"Head Coach", "Manager"}),
        Simple("City", FieldKind::kCity, {"Home City", "Based In"}),
        Simple("Wins", FieldKind::kNumber, {"Win Count", "Victories"},
               Pool::kColors, 0, 120),
        Simple("Season", FieldKind::kYear, {"Year", "Season Year"}),
    };
    d.related_pairs = {{0, 3}};
    domains.push_back(d);
  }
  {
    DomainSpec d;
    d.name = "books";
    d.fields = {
        Entity("Book", Pool::kBookWords, "", {"Title", "Book Title"}),
        Simple("Author", FieldKind::kPersonName, {"Written By", "Writer"}),
        Simple("Publisher", FieldKind::kCategory, {"Press", "Imprint"},
               Pool::kPublishers),
        Simple("Pages", FieldKind::kNumber, {"Page Count", "Length"},
               Pool::kColors, 80, 1200),
        Simple("Published", FieldKind::kYear, {"Year", "Pub Year"}),
        Simple("Language", FieldKind::kCategory, {"Written In", "Lang"},
               Pool::kLanguages),
    };
    d.related_pairs = {{0, 1}};
    domains.push_back(d);
  }
  {
    DomainSpec d;
    d.name = "cars";
    d.fields = {
        Entity("Model", Pool::kCarMakes, "", {"Car Model", "Vehicle"}),
        Simple("Trim", FieldKind::kCategory, {"Edition", "Variant"},
               Pool::kCarWords),
        Simple("Price", FieldKind::kMoney, {"MSRP", "List Price"},
               Pool::kColors, 14000, 160000),
        Simple("Year", FieldKind::kYear, {"Model Year", "Produced"}),
        Simple("Color", FieldKind::kCategory, {"Paint", "Exterior Color"},
               Pool::kColors),
    };
    d.related_pairs = {{0, 1}};
    domains.push_back(d);
  }
  {
    DomainSpec d;
    d.name = "birds";
    d.fields = {
        Entity("Species", Pool::kBirdWords, "", {"Bird", "Common Name"}),
        Simple("Color", FieldKind::kCategory, {"Plumage", "Primary Color"},
               Pool::kColors),
        Simple("Wingspan cm", FieldKind::kNumber, {"Wingspan", "Span"},
               Pool::kColors, 12, 310),
        Simple("Region", FieldKind::kCountry, {"Range", "Found In"}),
        Simple("Observed", FieldKind::kDate, {"Sighting Date", "Date"}),
    };
    d.related_pairs = {{0, 3}};
    domains.push_back(d);
  }
  {
    DomainSpec d;
    d.name = "employees";
    d.fields = {
        Simple("Employee", FieldKind::kPersonName, {"Name", "Staff Member"}),
        Simple("Department", FieldKind::kCategory, {"Division", "Unit"},
               Pool::kAcademicFields),
        Simple("City", FieldKind::kCity, {"Office", "Office City"}),
        Simple("Salary", FieldKind::kMoney, {"Pay", "Annual Salary"},
               Pool::kColors, 32000, 240000),
        Simple("Hired", FieldKind::kDate, {"Start Date", "Hire Date"}),
        Simple("Phone", FieldKind::kPhone, {"Extension", "Work Phone"}),
    };
    d.related_pairs = {{0, 1}};
    domains.push_back(d);
  }

  // Assign globally unique concept ids.
  int next_concept = 0;
  for (DomainSpec& domain : domains) {
    for (FieldSpec& field : domain.fields) field.concept_id = next_concept++;
  }
  return domains;
}

}  // namespace

const std::vector<DomainSpec>& BuiltinDomains() {
  static const std::vector<DomainSpec>* domains =
      new std::vector<DomainSpec>(BuildDomains());
  return *domains;
}

DomainSpec AlternateDomain(const DomainSpec& domain, int concept_base) {
  // Same topic vocabulary, different relation: rotated field kinds, new
  // headers, fresh concepts. E.g. "parks" -> park *events* with attendance.
  DomainSpec alt;
  alt.name = domain.name + "_alt";
  int next_concept = concept_base;
  for (size_t i = 0; i < domain.fields.size(); ++i) {
    const FieldSpec& src = domain.fields[i];
    FieldSpec f = src;
    f.header = src.header + " Ref";
    f.synonyms = {f.header, src.header + " Code"};
    // Rotate kinds so values look topic-adjacent but do not align:
    switch (src.kind) {
      case FieldKind::kEntityName:
        f.kind = FieldKind::kCategory;  // references entities as categories
        break;
      case FieldKind::kCity:
        f.kind = FieldKind::kCountry;
        f.header = "Region";
        f.synonyms = {"Region", "Zone"};
        break;
      case FieldKind::kNumber:
      case FieldKind::kMoney:
        f.kind = FieldKind::kNumber;
        f.min_value = src.min_value * 10 + 1000;
        f.max_value = src.max_value * 10 + 2000;
        f.header = src.header + " Index";
        f.synonyms = {f.header};
        break;
      default:
        f.kind = FieldKind::kCategory;
        f.pool_a = Pool::kAdjectives;
        break;
    }
    f.concept_id = next_concept++;
    alt.fields.push_back(std::move(f));
  }
  return alt;
}

table::Value GenerateValue(const FieldSpec& field, Rng* rng) {
  switch (field.kind) {
    case FieldKind::kEntityName: {
      std::string name = RandomWord(field.pool_a, rng);
      if (rng->NextBernoulli(0.35)) {
        name = RandomWord(Pool::kAdjectives, rng) + " " + name;
      }
      if (!field.entity_suffix.empty()) name += " " + field.entity_suffix;
      return table::Value(name);
    }
    case FieldKind::kPersonName:
      return table::Value(RandomPersonName(rng));
    case FieldKind::kCity:
      return table::Value(RandomCityString(rng));
    case FieldKind::kCountry:
      return table::Value(RandomWord(Pool::kCountries, rng));
    case FieldKind::kCategory:
      return table::Value(RandomWord(field.pool_a, rng));
    case FieldKind::kNumber: {
      double v = field.min_value +
                 rng->NextDouble() * (field.max_value - field.min_value);
      return table::Value(StrFormat("%.1f", v));
    }
    case FieldKind::kMoney: {
      double v = field.min_value +
                 rng->NextDouble() * (field.max_value - field.min_value);
      return table::Value(StrFormat("%.0f", v));
    }
    case FieldKind::kPhone:
      return table::Value(RandomPhone(rng));
    case FieldKind::kDate:
      return table::Value(RandomDate(rng));
    case FieldKind::kYear:
      return table::Value(
          StrFormat("%d", static_cast<int>(rng->NextInt(1950, 2024))));
  }
  return table::Value::Null();
}

table::Table GenerateBaseTable(const DomainSpec& domain, size_t rows,
                               Rng* rng) {
  table::Table t(domain.name + "_base");
  for (const FieldSpec& field : domain.fields) t.AddColumn(field.header);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<table::Value> row;
    row.reserve(domain.fields.size());
    for (const FieldSpec& field : domain.fields) {
      row.push_back(GenerateValue(field, rng));
    }
    DUST_CHECK(t.AddRow(std::move(row)).ok());
  }
  return t;
}

GeneratedTable MakeVariant(const table::Table& base, const DomainSpec& domain,
                           size_t base_id,
                           const std::vector<size_t>& keep_columns,
                           const std::vector<size_t>& rows,
                           const std::string& variant_name, Rng* rng) {
  GeneratedTable out;
  out.base_id = base_id;
  table::Table projected = base.ProjectColumns(keep_columns);
  table::Table selected = projected.SelectRows(rows);
  selected.set_name(variant_name);
  // Synonym headers make alignment non-trivial (Fig. 1's "Supervised by").
  for (size_t j = 0; j < keep_columns.size(); ++j) {
    const FieldSpec& field = domain.fields[keep_columns[j]];
    const std::vector<std::string>& synonyms = field.synonyms;
    selected.column(j).name = synonyms[rng->NextBelow(synonyms.size())];
    out.column_concepts.push_back(field.concept_id);
  }
  out.data = std::move(selected);
  return out;
}

static Benchmark::Stats ComputeStats(const std::vector<GeneratedTable>& tables) {
  Benchmark::Stats stats;
  stats.tables = tables.size();
  for (const GeneratedTable& t : tables) {
    stats.columns += t.data.num_columns();
    stats.tuples += t.data.num_rows();
  }
  return stats;
}

Benchmark::Stats Benchmark::LakeStats() const { return ComputeStats(lake); }
Benchmark::Stats Benchmark::QueryStats() const { return ComputeStats(queries); }

}  // namespace dust::datagen
