// TUS-style benchmark generator (Sec. 6.1.1): lake and query tables are
// row-selections + column-projections of non-unionable base tables; tables
// from the same base are unionable. A controllable fraction of lake tables
// are near-copies of the query's rows — the data lake redundancy the paper
// documents (≈90% duplication [45]).
#ifndef DUST_DATAGEN_TUS_GENERATOR_H_
#define DUST_DATAGEN_TUS_GENERATOR_H_

#include "datagen/base_tables.h"

namespace dust::datagen {

struct TusConfig {
  size_t num_queries = 10;
  size_t unionable_per_query = 8;   // lake tables per query's base
  size_t distractors_per_base = 2;  // lake tables from unused bases
  size_t base_rows = 150;
  double row_sample_min = 0.25;     // variant row-sample fraction range
  double row_sample_max = 0.6;
  double column_keep_min = 0.6;     // variant column-keep fraction range
  double column_keep_max = 1.0;
  /// Fraction of each query's unionable tables built to heavily overlap the
  /// query's own rows (near-copies).
  double near_copy_fraction = 0.35;
  uint64_t seed = 1;
  /// Respect related column pairs when projecting (the SANTOS twist).
  bool keep_related_pairs = false;
  std::string name = "TUS-Sampled";
};

Benchmark GenerateTus(const TusConfig& config);

}  // namespace dust::datagen

#endif  // DUST_DATAGEN_TUS_GENERATOR_H_
