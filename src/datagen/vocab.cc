#include "datagen/vocab.h"

#include "util/status.h"
#include "util/string_util.h"

namespace dust::datagen {

namespace {

const std::vector<std::string> kFirstNames = {
    "Vera",    "Paul",   "Jenny",  "Tim",    "Enrique", "Maria",  "John",
    "Aisha",   "Carlos", "Yuki",   "Priya",  "Omar",    "Elena",  "Lars",
    "Fatima",  "Diego",  "Ingrid", "Kwame",  "Sofia",   "Andrei", "Mei",
    "Tom",     "Linda",  "Ravi",   "Anna",   "George",  "Nadia",  "Pedro",
    "Hana",    "Viktor", "Amara",  "Louis",  "Chloe",   "Samir",  "Gloria",
    "Mateo",   "Irene",  "Oscar",  "Tanya",  "Felix"};

const std::vector<std::string> kLastNames = {
    "Onate",    "Veliotis", "Rishi",    "Erickson", "Garcia",  "Smith",
    "Johnson",  "Tanaka",   "Patel",    "Hassan",   "Silva",   "Berg",
    "Alvarez",  "Novak",    "Chen",     "Okafor",   "Rossi",   "Ivanov",
    "Kim",      "Dubois",   "Miller",   "Nakamura", "Costa",   "Weber",
    "Lindgren", "Moreau",   "Svensson", "Kaur",     "Mensah",  "Petrov",
    "Sato",     "Romano",   "Fischer",  "Laurent",  "Haddad",  "Nilsson",
    "Vargas",   "Kowalski", "Demir",    "Osei"};

const std::vector<std::string> kCities = {
    "Fresno",    "Chicago",  "Brandon",   "Austin",   "Denver",   "Portland",
    "Madison",   "Savannah", "Boulder",   "Tucson",   "Raleigh",  "Spokane",
    "Waterloo",  "Guelph",   "Kingston",  "Hamilton", "Windsor",  "Sudbury",
    "Leeds",     "Bristol",  "Sheffield", "Cardiff",  "Dundee",   "Norwich",
    "Geelong",   "Cairns",   "Darwin",    "Hobart",   "Ballarat", "Bendigo",
    "Lyon",      "Nantes",   "Porto",     "Malaga",   "Bergen",   "Tampere",
    "Gdansk",    "Brno",     "Graz",      "Basel"};

const std::vector<std::string> kStates = {
    "CA", "IL", "MN", "TX", "CO", "OR", "WI", "GA", "AZ", "NC",
    "WA", "ON", "QC", "BC", "NS", "UK", "AU", "FR", "PT", "NO"};

const std::vector<std::string> kCountries = {
    "USA",     "Canada",  "UK",        "Australia", "France", "Portugal",
    "Norway",  "Finland", "Poland",    "Czechia",   "Austria", "Switzerland",
    "Germany", "Spain",   "Italy",     "Japan",     "India",   "Brazil",
    "Mexico",  "Ghana"};

const std::vector<std::string> kParkWords = {
    "River",    "West Lawn", "Hyde",     "Chippewa", "Lawler",   "Cedar",
    "Maple",    "Sunset",    "Lakeside", "Prairie",  "Granite",  "Willow",
    "Meadow",   "Oakwood",   "Pioneer",  "Harbor",   "Summit",   "Juniper",
    "Eastgate", "Birchwood", "Falcon",   "Heron",    "Foxglove", "Bluebell",
    "Clearwater", "Stonebridge", "Ridgeline", "Fernhill"};

const std::vector<std::string> kPaintingWords = {
    "Northern Lake",   "Memory Landscape", "Silent Harbor",  "Crimson Field",
    "Winter Elegy",    "Golden Orchard",   "Azure Night",    "Broken Mirror",
    "Quiet Interior",  "Distant Storm",    "Paper Garden",   "Velvet Morning",
    "Iron Coast",      "Glass River",      "Hollow Moon",    "Amber Valley",
    "Frozen Meadow",   "Scarlet Dusk",     "Lonely Pier",    "Echoing Cliff"};

const std::vector<std::string> kArtMediums = {
    "Oil on canvas", "Mixed media",   "Watercolor",   "Acrylic on board",
    "Charcoal",      "Tempera",       "Gouache",      "Ink on paper",
    "Pastel",        "Fresco",        "Collage",      "Silkscreen"};

const std::vector<std::string> kMovieWords = {
    "Midnight", "Harvest", "Echo",     "Shadow",  "Glass",   "Iron",
    "Silent",   "Golden",  "Lost",     "Hidden",  "Crimson", "Electric",
    "Paper",    "Winter",  "Savage",   "Gentle",  "Broken",  "Distant",
    "Hollow",   "Burning", "Frozen",   "Velvet",  "Neon",    "Amber"};

const std::vector<std::string> kGenres = {
    "Drama",     "Comedy",  "Thriller", "Documentary", "Horror", "Romance",
    "Adventure", "Sci-Fi",  "Mystery",  "Animation",   "Western", "Musical"};

const std::vector<std::string> kLanguages = {
    "English", "French",  "Spanish",  "Japanese", "Hindi",   "Portuguese",
    "German",  "Italian", "Mandarin", "Korean",   "Swedish", "Arabic"};

const std::vector<std::string> kMythCreatures = {
    "Chimera",  "Siren",   "Basilisk", "Minotaur", "Cyclops", "Griffon",
    "Succubus", "Hag",     "Kasha",    "Mugo",     "Kraken",  "Banshee",
    "Wendigo",  "Selkie",  "Kitsune",  "Golem",    "Roc",     "Naga",
    "Sphinx",   "Kelpie",  "Draugr",   "Lamia",    "Wyvern",  "Dybbuk"};

const std::vector<std::string> kMythOrigins = {
    "Greek",   "Roman",   "Japanese", "Norse",    "Celtic", "Jewish",
    "Slavic",  "Egyptian", "Hindu",   "Chinese",  "Inuit",  "Aztec"};

const std::vector<std::string> kWeatherWords = {
    "Northfield", "Eastport", "Halvorsen", "Granville", "Kestrel", "Milton",
    "Ashby",      "Corvid",   "Redwood",   "Seabright", "Altona",  "Veridian"};

const std::vector<std::string> kCuisines = {
    "Italian",  "Mexican", "Japanese", "Thai",     "Indian",  "Ethiopian",
    "Peruvian", "Greek",   "Turkish",  "Moroccan", "Vietnamese", "Korean"};

const std::vector<std::string> kDishWords = {
    "Saffron", "Juniper", "Ember",   "Basil",  "Cardamom", "Sumac",
    "Tamarind", "Sesame", "Fennel",  "Ginger", "Miso",     "Harissa"};

const std::vector<std::string> kUniversityWords = {
    "Northgate", "Riverside", "Clearview", "Whitmore", "Ashford", "Belmont",
    "Kingsley",  "Harrow",    "Stanton",   "Fairfax",  "Delmont", "Wexford"};

const std::vector<std::string> kAcademicFields = {
    "Computer Science", "Biology",   "Economics", "History",
    "Mathematics",      "Chemistry", "Physics",   "Philosophy",
    "Linguistics",      "Sociology", "Geology",   "Musicology"};

const std::vector<std::string> kSportsWords = {
    "Falcons",  "Mariners", "Bears",   "Comets", "Rapids",  "Stallions",
    "Harriers", "Vikings",  "Wolves",  "Otters", "Thunder", "Badgers"};

const std::vector<std::string> kSportsLeagues = {
    "Premier", "National", "Continental", "Metro", "Coastal", "Highland"};

const std::vector<std::string> kBookWords = {
    "Cartographer", "Orchard",  "Lighthouse", "Archivist", "Gardener",
    "Watchmaker",   "Botanist", "Navigator",  "Apiarist",  "Glassblower",
    "Falconer",     "Chronicle"};

const std::vector<std::string> kPublishers = {
    "Harbor Press",   "Quill House",   "Meridian Books", "Foxfire",
    "Larkspur",       "Gilded Page",   "North Star",     "Papermill",
    "Bluestem Press", "Copper Lantern"};

const std::vector<std::string> kCarMakes = {
    "Aquila", "Borealis", "Cresta",  "Dynamo", "Estrella", "Fjord",
    "Gavia",  "Helios",   "Istria",  "Juno",   "Kodiak",   "Lumen"};

const std::vector<std::string> kCarWords = {
    "GT",     "Sport",  "Touring", "Hybrid", "Classic", "Estate",
    "Coupe",  "Roadster", "Compact", "Premier"};

const std::vector<std::string> kBirdWords = {
    "Warbler", "Kestrel", "Plover",  "Sandpiper", "Grosbeak", "Towhee",
    "Vireo",   "Phoebe",  "Tanager", "Nuthatch",  "Bunting",  "Shrike"};

const std::vector<std::string> kColors = {
    "Red",    "Blue",  "Green",  "Amber", "Violet", "Teal",
    "Silver", "Black", "White",  "Coral", "Indigo", "Olive"};

const std::vector<std::string> kAdjectives = {
    "Grand", "Little", "Upper", "Lower", "New", "Old",
    "North", "South",  "East",  "West",  "Royal", "Central"};

}  // namespace

const std::vector<std::string>& WordPool(Pool pool) {
  switch (pool) {
    case Pool::kFirstNames:      return kFirstNames;
    case Pool::kLastNames:       return kLastNames;
    case Pool::kCities:          return kCities;
    case Pool::kCountries:       return kCountries;
    case Pool::kParkWords:       return kParkWords;
    case Pool::kPaintingWords:   return kPaintingWords;
    case Pool::kArtMediums:      return kArtMediums;
    case Pool::kMovieWords:      return kMovieWords;
    case Pool::kGenres:          return kGenres;
    case Pool::kLanguages:       return kLanguages;
    case Pool::kMythCreatures:   return kMythCreatures;
    case Pool::kMythOrigins:     return kMythOrigins;
    case Pool::kWeatherWords:    return kWeatherWords;
    case Pool::kCuisines:        return kCuisines;
    case Pool::kDishWords:       return kDishWords;
    case Pool::kUniversityWords: return kUniversityWords;
    case Pool::kAcademicFields:  return kAcademicFields;
    case Pool::kSportsWords:     return kSportsWords;
    case Pool::kSportsLeagues:   return kSportsLeagues;
    case Pool::kBookWords:       return kBookWords;
    case Pool::kPublishers:      return kPublishers;
    case Pool::kCarMakes:        return kCarMakes;
    case Pool::kCarWords:        return kCarWords;
    case Pool::kBirdWords:       return kBirdWords;
    case Pool::kColors:          return kColors;
    case Pool::kAdjectives:      return kAdjectives;
  }
  DUST_CHECK(false);
  return kColors;
}

const std::string& RandomWord(Pool pool, Rng* rng) {
  const std::vector<std::string>& words = WordPool(pool);
  return words[rng->NextBelow(words.size())];
}

std::string RandomPersonName(Rng* rng) {
  return RandomWord(Pool::kFirstNames, rng) + " " +
         RandomWord(Pool::kLastNames, rng);
}

std::string RandomCityString(Rng* rng) {
  return RandomWord(Pool::kCities, rng) + ", " +
         kStates[rng->NextBelow(kStates.size())];
}

std::string RandomPhone(Rng* rng) {
  return StrFormat("%03d %03d-%04d", static_cast<int>(rng->NextInt(200, 989)),
                   static_cast<int>(rng->NextInt(200, 989)),
                   static_cast<int>(rng->NextInt(0, 9999)));
}

std::string RandomDate(Rng* rng) {
  return StrFormat("%04d-%02d-%02d", static_cast<int>(rng->NextInt(1990, 2024)),
                   static_cast<int>(rng->NextInt(1, 12)),
                   static_cast<int>(rng->NextInt(1, 28)));
}

}  // namespace dust::datagen
