#include "datagen/finetune_pairs.h"

#include <algorithm>

#include "table/serialize.h"
#include "util/status.h"

namespace dust::datagen {

namespace {

// Split id per lake table: 0 train, 1 validation, 2 test. Tables (and hence
// tuples) never cross splits — the no-leakage guarantee of Sec. 6.1.1.
std::vector<int> AssignSplits(size_t num_tables,
                              const FinetunePairsConfig& config, Rng* rng) {
  std::vector<int> split(num_tables, 0);
  for (size_t t = 0; t < num_tables; ++t) {
    double u = rng->NextDouble();
    if (u < config.train_fraction) {
      split[t] = 0;
    } else if (u < config.train_fraction + config.validation_fraction) {
      split[t] = 1;
    } else {
      split[t] = 2;
    }
  }
  return split;
}

// Groups lake tables by base id (same base = unionable family).
std::vector<std::vector<size_t>> GroupByBase(const Benchmark& benchmark) {
  size_t max_base = 0;
  for (const GeneratedTable& t : benchmark.lake) {
    max_base = std::max(max_base, t.base_id + 1);
  }
  std::vector<std::vector<size_t>> groups(max_base);
  for (size_t i = 0; i < benchmark.lake.size(); ++i) {
    groups[benchmark.lake[i].base_id].push_back(i);
  }
  return groups;
}

std::string SerializeRow(const Benchmark& benchmark, size_t table, size_t row) {
  return table::SerializeTableRow(benchmark.lake[table].data, row);
}

// Serializes a row over a random column subset (probability `p_subset`).
// Real benchmark tuples often expose only a few columns, which makes some
// positives ambiguous (little shared schema) and some negatives hard
// (only generic columns like City/Country left) — without this the
// classification task is trivially separable by header tokens.
std::string SerializeRowMaybeSubset(const Benchmark& benchmark, size_t table,
                                    size_t row, double p_subset, Rng* rng) {
  const table::Table& t = benchmark.lake[table].data;
  if (t.num_columns() <= 2 || !rng->NextBernoulli(p_subset)) {
    return table::SerializeTableRow(t, row);
  }
  size_t keep = 1 + rng->NextBelow(t.num_columns() - 1);
  std::vector<size_t> cols = rng->SampleWithoutReplacement(t.num_columns(), keep);
  std::sort(cols.begin(), cols.end());
  std::vector<std::string> headers;
  std::vector<table::Value> values;
  for (size_t j : cols) {
    headers.push_back(t.column(j).name);
    values.push_back(t.at(row, j));
  }
  return table::SerializeTuple(headers, values);
}

// Light perturbation of a serialized tuple: lowercase one random word-ish
// segment and drop another (entity-matching positives are noisy copies).
std::string Perturb(const std::string& serialized, Rng* rng) {
  std::string out = serialized;
  if (out.size() > 12) {
    size_t pos = 6 + rng->NextBelow(out.size() - 10);
    out[pos] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(out[pos])));
    size_t pos2 = 6 + rng->NextBelow(out.size() - 10);
    if (out[pos2] != '[' && out[pos2] != ']') out[pos2] = ' ';
  }
  return out;
}

}  // namespace

nn::PairDataset BuildFinetunePairs(const Benchmark& benchmark,
                                   const FinetunePairsConfig& config) {
  Rng rng(config.seed);
  nn::PairDataset dataset;
  std::vector<int> split = AssignSplits(benchmark.lake.size(), config, &rng);
  std::vector<std::vector<size_t>> by_base = GroupByBase(benchmark);

  // Per split: lists of usable tables grouped by base.
  auto tables_in_split = [&](int s) {
    std::vector<size_t> tables;
    for (size_t t = 0; t < benchmark.lake.size(); ++t) {
      if (split[t] == s && benchmark.lake[t].data.num_rows() >= 2) {
        tables.push_back(t);
      }
    }
    return tables;
  };

  for (int s = 0; s < 3; ++s) {
    std::vector<size_t> tables = tables_in_split(s);
    if (tables.size() < 2) continue;
    double fraction = (s == 0) ? config.train_fraction
                      : (s == 1) ? config.validation_fraction
                                 : (1.0 - config.train_fraction -
                                    config.validation_fraction);
    size_t budget = static_cast<size_t>(
        static_cast<double>(config.total_pairs) * fraction);
    size_t positives = budget / 2;
    size_t negatives = budget - positives;

    std::vector<nn::TuplePair>* out =
        (s == 0) ? &dataset.train
        : (s == 1) ? &dataset.validation
                   : &dataset.test;

    // Positives: same table (50%) or same base, different tables.
    for (size_t i = 0; i < positives; ++i) {
      nn::TuplePair pair;
      pair.label = 1;
      size_t t1 = tables[rng.NextBelow(tables.size())];
      size_t t2 = t1;
      if (rng.NextBernoulli(0.5)) {
        // A sibling from the same base within this split, if any.
        std::vector<size_t> siblings;
        for (size_t cand : by_base[benchmark.lake[t1].base_id]) {
          if (cand != t1 && split[cand] == s &&
              benchmark.lake[cand].data.num_rows() >= 1) {
            siblings.push_back(cand);
          }
        }
        if (!siblings.empty()) t2 = siblings[rng.NextBelow(siblings.size())];
      }
      size_t r1 = rng.NextBelow(benchmark.lake[t1].data.num_rows());
      size_t r2 = rng.NextBelow(benchmark.lake[t2].data.num_rows());
      if (t1 == t2 && benchmark.lake[t1].data.num_rows() >= 2) {
        while (r2 == r1) r2 = rng.NextBelow(benchmark.lake[t1].data.num_rows());
      }
      pair.serialized_a = SerializeRowMaybeSubset(benchmark, t1, r1, 0.5, &rng);
      pair.serialized_b = SerializeRowMaybeSubset(benchmark, t2, r2, 0.5, &rng);
      out->push_back(std::move(pair));
    }
    // Negatives: two tables from different bases.
    size_t made = 0;
    size_t attempts = 0;
    while (made < negatives && attempts < negatives * 20) {
      ++attempts;
      size_t t1 = tables[rng.NextBelow(tables.size())];
      size_t t2 = tables[rng.NextBelow(tables.size())];
      if (benchmark.lake[t1].base_id == benchmark.lake[t2].base_id) continue;
      nn::TuplePair pair;
      pair.label = 0;
      pair.serialized_a = SerializeRowMaybeSubset(
          benchmark, t1, rng.NextBelow(benchmark.lake[t1].data.num_rows()),
          0.5, &rng);
      pair.serialized_b = SerializeRowMaybeSubset(
          benchmark, t2, rng.NextBelow(benchmark.lake[t2].data.num_rows()),
          0.5, &rng);
      out->push_back(std::move(pair));
      ++made;
    }
    rng.Shuffle(out);
  }
  return dataset;
}

nn::PairDataset BuildEntityMatchingPairs(const Benchmark& benchmark,
                                         const FinetunePairsConfig& config) {
  Rng rng(config.seed ^ 0xD1770ULL);
  nn::PairDataset dataset;
  std::vector<int> split = AssignSplits(benchmark.lake.size(), config, &rng);

  for (int s = 0; s < 3; ++s) {
    std::vector<size_t> tables;
    for (size_t t = 0; t < benchmark.lake.size(); ++t) {
      if (split[t] == s && benchmark.lake[t].data.num_rows() >= 2) {
        tables.push_back(t);
      }
    }
    if (tables.empty()) continue;
    double fraction = (s == 0) ? config.train_fraction
                      : (s == 1) ? config.validation_fraction
                                 : (1.0 - config.train_fraction -
                                    config.validation_fraction);
    size_t budget = static_cast<size_t>(
        static_cast<double>(config.total_pairs) * fraction);
    std::vector<nn::TuplePair>* out =
        (s == 0) ? &dataset.train
        : (s == 1) ? &dataset.validation
                   : &dataset.test;
    for (size_t i = 0; i < budget; ++i) {
      nn::TuplePair pair;
      size_t t1 = tables[rng.NextBelow(tables.size())];
      size_t r1 = rng.NextBelow(benchmark.lake[t1].data.num_rows());
      std::string a = SerializeRow(benchmark, t1, r1);
      if (i % 2 == 0) {
        // Positive: the same entity, lightly perturbed.
        pair.label = 1;
        pair.serialized_a = a;
        pair.serialized_b = Perturb(a, &rng);
      } else {
        // Negative: any other tuple (possibly from a unionable table —
        // that is exactly why Ditto's signal differs from unionability).
        pair.label = 0;
        size_t t2 = tables[rng.NextBelow(tables.size())];
        size_t r2 = rng.NextBelow(benchmark.lake[t2].data.num_rows());
        if (t1 == t2 && r1 == r2) {
          r2 = (r2 + 1) % benchmark.lake[t2].data.num_rows();
        }
        pair.serialized_a = a;
        pair.serialized_b = SerializeRow(benchmark, t2, r2);
      }
      out->push_back(std::move(pair));
    }
    rng.Shuffle(out);
  }
  return dataset;
}

}  // namespace dust::datagen
