// Built-in word pools for the synthetic data lake generators.
//
// Real TUS / SANTOS / UGEN-V1 / IMDB tables are drawn from open data; these
// pools give each topic domain its own vocabulary so that (a) unionable
// tables share values by construction (they sample rows from the same base
// table) and (b) non-unionable domains have near-disjoint vocabularies —
// the two properties every experiment depends on (DESIGN.md §1).
#ifndef DUST_DATAGEN_VOCAB_H_
#define DUST_DATAGEN_VOCAB_H_

#include <string>
#include <vector>

#include "util/rng.h"

namespace dust::datagen {

enum class Pool {
  kFirstNames,
  kLastNames,
  kCities,
  kCountries,
  kParkWords,
  kPaintingWords,
  kArtMediums,
  kMovieWords,
  kGenres,
  kLanguages,
  kMythCreatures,
  kMythOrigins,
  kWeatherWords,
  kCuisines,
  kDishWords,
  kUniversityWords,
  kAcademicFields,
  kSportsWords,
  kSportsLeagues,
  kBookWords,
  kPublishers,
  kCarMakes,
  kCarWords,
  kBirdWords,
  kColors,
  kAdjectives,
};

/// The word list backing a pool (non-empty, stable across runs).
const std::vector<std::string>& WordPool(Pool pool);

/// A uniformly random word from `pool`.
const std::string& RandomWord(Pool pool, Rng* rng);

/// "First Last" person name.
std::string RandomPersonName(Rng* rng);

/// "City, ST" style city string.
std::string RandomCityString(Rng* rng);

/// "ddd ddd-dddd" phone number.
std::string RandomPhone(Rng* rng);

/// "YYYY-MM-DD" date within [1990, 2024].
std::string RandomDate(Rng* rng);

}  // namespace dust::datagen

#endif  // DUST_DATAGEN_VOCAB_H_
