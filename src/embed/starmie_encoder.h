// Starmie-style contextualized column encoder.
//
// Starmie (Fan et al., PVLDB'23) encodes each column *with the context of
// the entire table*. The paper (Sec. 6.2.4) observes that this makes columns
// of the same table embed close together — good for table union search, bad
// for column alignment. We reproduce the behaviour by mixing each column's
// content embedding with the table's mean column embedding; numeric columns,
// which Starmie embeds poorly, receive mostly context.
#ifndef DUST_EMBED_STARMIE_ENCODER_H_
#define DUST_EMBED_STARMIE_ENCODER_H_

#include <memory>
#include <vector>

#include "embed/column_embedder.h"
#include "embed/embedder.h"
#include "table/table.h"

namespace dust::embed {

struct StarmieConfig {
  size_t dim = 64;
  uint64_t seed = 1234;
  /// Weight of the table context in each column's embedding.
  float context_weight = 0.35f;
  /// Extra context weight for (mostly) numeric columns.
  float numeric_context_weight = 0.85f;
  size_t token_limit = 512;
};

/// Produces contextualized column embeddings for whole tables.
class StarmieEncoder {
 public:
  explicit StarmieEncoder(const StarmieConfig& config);

  /// result[j] is the contextualized embedding of column j.
  std::vector<la::Vec> EncodeTable(const table::Table& table) const;

  size_t dim() const { return config_.dim; }

 private:
  StarmieConfig config_;
  std::shared_ptr<TextEmbedder> base_;
  ColumnEmbedder column_embedder_;
};

}  // namespace dust::embed

#endif  // DUST_EMBED_STARMIE_ENCODER_H_
