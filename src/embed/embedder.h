// Text embedding interfaces and the model registry.
//
// See DESIGN.md §1: pre-trained transformer encoders are replaced with
// deterministic feature-hashing encoders. Each simulated model family has
// its own hash seed (so different models embed into unrelated spaces, just
// like real pre-trained models), its own featurization (word-level,
// character-n-gram, subword+context, sentence bag) and a deterministic
// noise level emulating representation quality.
#ifndef DUST_EMBED_EMBEDDER_H_
#define DUST_EMBED_EMBEDDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "la/vector_ops.h"

namespace dust::embed {

/// Simulated pre-trained model families (Sec. 6.2.3 baselines).
enum class ModelFamily {
  kFastText,  // word + character n-gram features
  kGlove,     // word features only
  kBert,      // coarse subwords, light context, highest noise (smallest LM)
  kRoberta,   // fine subwords + bigram context, lowest noise
  kSbert,     // sentence-normalized lexical bag
};

const char* ModelFamilyName(ModelFamily family);

/// Maps a text to a fixed-dimension embedding. Implementations are pure
/// functions of (text, model config) — deterministic and stateless.
class TextEmbedder {
 public:
  virtual ~TextEmbedder() = default;

  /// Embedding of `text`; always `dim()` long, L2-normalized unless the
  /// text produced no features (then the zero vector).
  virtual la::Vec Embed(const std::string& text) const = 0;

  virtual size_t dim() const = 0;
  virtual std::string name() const = 0;
};

struct EmbedderConfig {
  size_t dim = 64;
  /// Extra per-text pseudo-noise magnitude in [0,1]; emulates model quality
  /// (0 = perfect featurization). Deterministic per (text, seed).
  float noise_level = 0.0f;
  /// Base hash seed; each family further mixes its own constant.
  uint64_t seed = 1234;
};

/// Builds the simulated pre-trained encoder for `family`.
std::unique_ptr<TextEmbedder> MakeEmbedder(ModelFamily family,
                                           const EmbedderConfig& config);

/// Default quality presets per family (noise levels calibrated so the
/// relative orderings of Table 1 / Fig 6 hold).
EmbedderConfig DefaultConfigFor(ModelFamily family, size_t dim,
                                uint64_t seed = 1234);

}  // namespace dust::embed

#endif  // DUST_EMBED_EMBEDDER_H_
