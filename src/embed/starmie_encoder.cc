#include "embed/starmie_encoder.h"

namespace dust::embed {

StarmieEncoder::StarmieEncoder(const StarmieConfig& config)
    : config_(config),
      base_(MakeEmbedder(ModelFamily::kRoberta,
                         DefaultConfigFor(ModelFamily::kRoberta, config.dim,
                                          config.seed ^ 0x57A2ULL))),
      column_embedder_(base_, ColumnSerialization::kColumnLevel,
                       config.token_limit) {}

std::vector<la::Vec> StarmieEncoder::EncodeTable(const table::Table& table) const {
  std::vector<la::Vec> content;
  content.reserve(table.num_columns());
  for (const table::Column& c : table.columns()) {
    content.push_back(column_embedder_.EmbedColumn(c, nullptr));
  }
  if (content.empty()) return content;

  la::Vec context = la::Mean(content);
  la::NormalizeInPlace(&context);

  std::vector<la::Vec> out;
  out.reserve(content.size());
  for (size_t j = 0; j < content.size(); ++j) {
    float w = config_.context_weight;
    if (table.column(j).NumericFraction() > 0.8) {
      w = config_.numeric_context_weight;
    }
    la::Vec mixed(config_.dim, 0.0f);
    for (size_t i = 0; i < config_.dim; ++i) {
      mixed[i] = (1.0f - w) * content[j][i] + w * context[i];
    }
    la::NormalizeInPlace(&mixed);
    out.push_back(std::move(mixed));
  }
  return out;
}

}  // namespace dust::embed
