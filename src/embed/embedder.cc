#include "embed/embedder.h"

#include "embed/hashed_encoders.h"

namespace dust::embed {

const char* ModelFamilyName(ModelFamily family) {
  switch (family) {
    case ModelFamily::kFastText:
      return "FastText";
    case ModelFamily::kGlove:
      return "Glove";
    case ModelFamily::kBert:
      return "BERT";
    case ModelFamily::kRoberta:
      return "RoBERTa";
    case ModelFamily::kSbert:
      return "sBERT";
  }
  return "?";
}

EmbedderConfig DefaultConfigFor(ModelFamily family, size_t dim, uint64_t seed) {
  EmbedderConfig config;
  config.dim = dim;
  config.seed = seed;
  switch (family) {
    case ModelFamily::kFastText:
      config.noise_level = 1.1f;
      break;
    case ModelFamily::kGlove:
      config.noise_level = 1.3f;
      break;
    case ModelFamily::kBert:
      config.noise_level = 1.5f;
      break;
    case ModelFamily::kRoberta:
      config.noise_level = 0.55f;
      break;
    case ModelFamily::kSbert:
      config.noise_level = 0.85f;
      break;
  }
  return config;
}

std::unique_ptr<TextEmbedder> MakeEmbedder(ModelFamily family,
                                           const EmbedderConfig& config) {
  return std::make_unique<HashedEncoder>(family, config);
}

}  // namespace dust::embed
