#include "embed/hashed_encoders.h"

#include <cmath>

#include "text/hashing.h"
#include "text/tokenizer.h"
#include "util/rng.h"
#include "util/status.h"

namespace dust::embed {

// Distinct per-family constants so families embed into unrelated spaces.
uint64_t FamilySeedConstant(ModelFamily family) {
  switch (family) {
    case ModelFamily::kFastText:
      return 0xFA57FA57ULL;
    case ModelFamily::kGlove:
      return 0x610E610EULL;
    case ModelFamily::kBert:
      return 0xBE27BE27ULL;
    case ModelFamily::kRoberta:
      return 0x20BE27AULL;
    case ModelFamily::kSbert:
      return 0x5BE275BEULL;
  }
  return 0;
}

HashedEncoder::HashedEncoder(ModelFamily family, const EmbedderConfig& config)
    : family_(family),
      config_(config),
      family_seed_(SplitMix64(config.seed ^ FamilySeedConstant(family))) {
  DUST_CHECK(config_.dim > 0);
}

std::string HashedEncoder::name() const {
  return ModelFamilyName(family_);
}

std::vector<std::string> FamilyFeatures(ModelFamily family,
                                        const std::string& text) {
  using text::CharNgrams;
  using text::SubwordPieces;
  using text::WordTokens;
  std::vector<std::string> features;
  switch (family) {
    case ModelFamily::kFastText: {
      // Words enriched with character 3- and 4-grams (FastText subwords).
      features = WordTokens(text);
      for (auto& g : CharNgrams(text, 3)) features.push_back(std::move(g));
      for (auto& g : CharNgrams(text, 4)) features.push_back(std::move(g));
      break;
    }
    case ModelFamily::kGlove: {
      features = WordTokens(text);
      break;
    }
    case ModelFamily::kBert: {
      // Coarse subwords, no cross-token context (small model).
      features = SubwordPieces(text, 4);
      break;
    }
    case ModelFamily::kRoberta: {
      // Finer subwords plus within-word piece bigrams as context features
      // (kept within word boundaries so the representation is insensitive
      // to cell/token order, like a real contextual encoder's pooled
      // output).
      for (const std::string& word : WordTokens(text)) {
        std::vector<std::string> pieces = SubwordPieces(word, 6);
        for (size_t i = 0; i + 1 < pieces.size(); ++i) {
          features.push_back(pieces[i] + "|" + pieces[i + 1]);
        }
        for (auto& piece : pieces) features.push_back(std::move(piece));
      }
      break;
    }
    case ModelFamily::kSbert: {
      // Sentence-normalized lexical bag: dedup-ish via word tokens only.
      features = WordTokens(text);
      break;
    }
  }
  return features;
}

la::Vec HashedEncoder::Embed(const std::string& text) const {
  std::vector<std::string> features = FamilyFeatures(family_, text);
  la::Vec v = text::HashTokensToVector(features, config_.dim, family_seed_);
  if (family_ == ModelFamily::kSbert) {
    // Sub-linear term weighting: re-embed with sqrt(tf) weights.
    // (Approximated by normalizing the bag vector before noise.)
    la::NormalizeInPlace(&v);
  }
  if (config_.noise_level > 0.0f) {
    // Deterministic per-text noise: same text always gets the same noise, so
    // identical tuples still embed identically; distinct texts get
    // independent perturbations proportional to the model's noise level.
    // The noise decays with the number of features: longer inputs are
    // represented more faithfully, emulating the paper's observation that
    // language models understand columns better when given more tokens at
    // once (Sec. 6.2.4). The floor keeps long texts from becoming exact.
    la::NormalizeInPlace(&v);
    Rng rng(text::HashString(text, family_seed_ ^ 0xA015EULL));
    float context = 1.0f + static_cast<float>(features.size()) / 6.0f;
    float effective = config_.noise_level * (0.3f + 0.7f / context);
    float scale = effective / std::sqrt(static_cast<float>(config_.dim));
    for (float& x : v) {
      x += scale * static_cast<float>(rng.NextGaussian());
    }
  }
  la::NormalizeInPlace(&v);
  return v;
}

}  // namespace dust::embed
