#include "embed/tuple_encoder.h"

#include "util/status.h"

namespace dust::embed {

std::vector<la::Vec> TupleEncoder::EncodeTableRows(
    const table::Table& table) const {
  std::vector<la::Vec> out;
  out.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    out.push_back(EncodeSerialized(table::SerializeTableRow(table, r)));
  }
  return out;
}

PretrainedTupleEncoder::PretrainedTupleEncoder(
    std::shared_ptr<TextEmbedder> encoder)
    : encoder_(std::move(encoder)) {
  DUST_CHECK(encoder_ != nullptr);
}

la::Vec PretrainedTupleEncoder::EncodeSerialized(
    const std::string& serialized) const {
  return encoder_->Embed(serialized);
}

size_t PretrainedTupleEncoder::dim() const { return encoder_->dim(); }

std::string PretrainedTupleEncoder::name() const {
  return encoder_->name() + " (pretrained)";
}

}  // namespace dust::embed
