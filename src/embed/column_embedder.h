// Column embedding for alignment (Sec. 6.2).
//
// Two serializations per Sec. 6.2.3:
//  - Cell-level: embed each cell independently, average the cell embeddings.
//  - Column-level: concatenate the column's values into one text, keep the
//    512 most representative tokens by TF-IDF (the LM token limit), embed
//    the selected tokens at once.
#ifndef DUST_EMBED_COLUMN_EMBEDDER_H_
#define DUST_EMBED_COLUMN_EMBEDDER_H_

#include <memory>
#include <string>
#include <vector>

#include "embed/embedder.h"
#include "table/table.h"
#include "text/tfidf.h"

namespace dust::embed {

enum class ColumnSerialization { kCellLevel, kColumnLevel };

const char* ColumnSerializationName(ColumnSerialization serialization);

/// Embeds table columns with a given text encoder and serialization.
class ColumnEmbedder {
 public:
  /// `token_limit` is the LM input cap (512 in the paper) applied to the
  /// column-level serialization via TF-IDF top-token selection.
  ColumnEmbedder(std::shared_ptr<TextEmbedder> encoder,
                 ColumnSerialization serialization, size_t token_limit = 512);

  /// Embeds every column of every table; the TF-IDF corpus is the full set
  /// of columns passed here (a "document" = one column's token bag).
  /// result[t][j] is the embedding of table t's column j.
  std::vector<std::vector<la::Vec>> EmbedTables(
      const std::vector<const table::Table*>& tables) const;

  /// Embeds a single column given a prebuilt TF-IDF model (column-level) or
  /// directly (cell-level).
  la::Vec EmbedColumn(const table::Column& column,
                      const text::TfidfModel* tfidf) const;

  size_t dim() const { return encoder_->dim(); }
  std::string name() const;

 private:
  std::shared_ptr<TextEmbedder> encoder_;
  ColumnSerialization serialization_;
  size_t token_limit_;
};

/// Tokens of a column (all cell word-tokens plus the header tokens).
std::vector<std::string> ColumnTokens(const table::Column& column);

}  // namespace dust::embed

#endif  // DUST_EMBED_COLUMN_EMBEDDER_H_
