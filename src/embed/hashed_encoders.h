// Concrete feature-hashing encoders, one per simulated model family.
#ifndef DUST_EMBED_HASHED_ENCODERS_H_
#define DUST_EMBED_HASHED_ENCODERS_H_

#include <string>

#include "embed/embedder.h"

namespace dust::embed {

/// Family-specific token features of `text` (word tokens, char n-grams,
/// subword pieces, context bigrams — see each family's description).
/// Shared between the frozen encoders and the trainable DUST model, which
/// uses the same frozen featurization (DESIGN.md §1).
std::vector<std::string> FamilyFeatures(ModelFamily family,
                                        const std::string& text);

/// Per-family hash-seed mixing constant (distinct embedding spaces).
uint64_t FamilySeedConstant(ModelFamily family);

/// Shared implementation: tokenize per family, feature-hash, add
/// deterministic quality noise, L2-normalize.
class HashedEncoder : public TextEmbedder {
 public:
  HashedEncoder(ModelFamily family, const EmbedderConfig& config);

  la::Vec Embed(const std::string& text) const override;
  size_t dim() const override { return config_.dim; }
  std::string name() const override;

  ModelFamily family() const { return family_; }

 private:
  ModelFamily family_;
  EmbedderConfig config_;
  uint64_t family_seed_;
};

}  // namespace dust::embed

#endif  // DUST_EMBED_HASHED_ENCODERS_H_
