#include "embed/column_embedder.h"

#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "util/status.h"
#include "util/string_util.h"

namespace dust::embed {

const char* ColumnSerializationName(ColumnSerialization serialization) {
  switch (serialization) {
    case ColumnSerialization::kCellLevel:
      return "Cell-level";
    case ColumnSerialization::kColumnLevel:
      return "Column-level";
  }
  return "?";
}

ColumnEmbedder::ColumnEmbedder(std::shared_ptr<TextEmbedder> encoder,
                               ColumnSerialization serialization,
                               size_t token_limit)
    : encoder_(std::move(encoder)),
      serialization_(serialization),
      token_limit_(token_limit) {
  DUST_CHECK(encoder_ != nullptr);
}

std::string ColumnEmbedder::name() const {
  return std::string(ColumnSerializationName(serialization_)) + " " +
         encoder_->name();
}

std::vector<std::string> ColumnTokens(const table::Column& column) {
  std::vector<std::string> tokens = text::WordTokens(column.name);
  for (const table::Value& v : column.values) {
    if (v.is_null()) continue;
    for (auto& t : text::WordTokens(v.text())) tokens.push_back(std::move(t));
  }
  return tokens;
}

la::Vec ColumnEmbedder::EmbedColumn(const table::Column& column,
                                    const text::TfidfModel* tfidf) const {
  if (serialization_ == ColumnSerialization::kCellLevel) {
    // Embed each cell independently; average the non-null cell embeddings.
    la::Vec sum(encoder_->dim(), 0.0f);
    size_t count = 0;
    for (const table::Value& v : column.values) {
      if (v.is_null()) continue;
      la::AddInPlace(&sum, encoder_->Embed(v.text()));
      ++count;
    }
    if (count > 0) la::ScaleInPlace(&sum, 1.0f / static_cast<float>(count));
    la::NormalizeInPlace(&sum);
    return sum;
  }

  // Column-level: a single text from the TF-IDF top tokens (LM token cap).
  std::vector<std::string> tokens = ColumnTokens(column);
  std::vector<std::string> selected;
  if (tfidf != nullptr && tokens.size() > token_limit_) {
    selected = tfidf->TopTokens(tokens, token_limit_);
  } else if (tokens.size() > token_limit_) {
    tokens.resize(token_limit_);
    selected = std::move(tokens);
  } else {
    selected = std::move(tokens);
  }
  return encoder_->Embed(Join(selected, " "));
}

std::vector<std::vector<la::Vec>> ColumnEmbedder::EmbedTables(
    const std::vector<const table::Table*>& tables) const {
  // Corpus for TF-IDF: one document per column across all tables.
  std::unique_ptr<text::TfidfModel> tfidf;
  if (serialization_ == ColumnSerialization::kColumnLevel) {
    std::vector<std::vector<std::string>> docs;
    for (const table::Table* t : tables) {
      for (const table::Column& c : t->columns()) {
        docs.push_back(ColumnTokens(c));
      }
    }
    tfidf = std::make_unique<text::TfidfModel>(docs);
  }
  std::vector<std::vector<la::Vec>> out;
  out.reserve(tables.size());
  for (const table::Table* t : tables) {
    std::vector<la::Vec> cols;
    cols.reserve(t->num_columns());
    for (const table::Column& c : t->columns()) {
      cols.push_back(EmbedColumn(c, tfidf.get()));
    }
    out.push_back(std::move(cols));
  }
  return out;
}

}  // namespace dust::embed
