// Tuple encoding interface (Sec. 4). A TupleEncoder maps a serialized tuple
// ("[CLS] c1 v1 [SEP] ...") to its embedding E(t). Implementations:
//  - PretrainedTupleEncoder: a frozen text encoder applied to Ser(t)
//    (the BERT/RoBERTa/sBERT baselines of Sec. 6.3).
//  - nn::DustModel (in src/nn): the fine-tuned model.
#ifndef DUST_EMBED_TUPLE_ENCODER_H_
#define DUST_EMBED_TUPLE_ENCODER_H_

#include <memory>
#include <string>
#include <vector>

#include "embed/embedder.h"
#include "table/serialize.h"
#include "table/table.h"

namespace dust::embed {

/// Maps serialized tuples to embeddings.
class TupleEncoder {
 public:
  virtual ~TupleEncoder() = default;

  /// Embedding of one serialized tuple.
  virtual la::Vec EncodeSerialized(const std::string& serialized) const = 0;

  virtual size_t dim() const = 0;
  virtual std::string name() const = 0;

  /// Encodes every row of `table` (serialized with its own headers).
  std::vector<la::Vec> EncodeTableRows(const table::Table& table) const;
};

/// Frozen pre-trained encoder applied directly to the serialization.
class PretrainedTupleEncoder : public TupleEncoder {
 public:
  explicit PretrainedTupleEncoder(std::shared_ptr<TextEmbedder> encoder);

  la::Vec EncodeSerialized(const std::string& serialized) const override;
  size_t dim() const override;
  std::string name() const override;

 private:
  std::shared_ptr<TextEmbedder> encoder_;
};

}  // namespace dust::embed

#endif  // DUST_EMBED_TUPLE_ENCODER_H_
