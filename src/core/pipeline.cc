#include "core/pipeline.h"

#include <cstring>

#include "embed/column_embedder.h"
#include "index/vector_index.h"
#include "io/index_io.h"
#include "search/cascade/cascade_search.h"
#include "search/embedding_search.h"
#include "search/overlap_search.h"
#include "shard/sharded_index.h"
#include "text/hashing.h"
#include "util/stopwatch.h"

namespace dust::core {
namespace {

/// Snapshot file format version; bump on any layout change.
/// v2: engine state carries cascade signals (per-table type signatures and
/// MinHash value sketches) behind a flag byte.
constexpr uint32_t kSnapshotFormatVersion = 2;

// Staleness hashing chains every field through the library's FNV-1a
// (text::HashString), running hash as the next call's seed. The resulting
// value is baked into saved snapshot files, so changing this scheme (or
// HashString itself) invalidates existing snapshots — acceptable: the check
// then fails closed, forcing a rebuild.
uint64_t ChainHash(uint64_t h, uint64_t v) {
  char bytes[sizeof(v)];
  std::memcpy(bytes, &v, sizeof(v));
  return text::HashString(std::string_view(bytes, sizeof(v)), h);
}

uint64_t ChainHash(uint64_t h, const std::string& s) {
  return text::HashString(s, h);
}

}  // namespace

std::string PipelineConfig::EffectiveSearchIndex() const {
  if (search_shards == 0) return search_index;
  // search_shards composes a sharded spec around the base type; a spec
  // that is already sharded must not be wrapped again (nested sharding is
  // rejected by the spec parser anyway).
  DUST_CHECK(!shard::IsShardedSpec(search_index) &&
             "search_shards set on an already-sharded search_index");
  return "sharded:" + search_index + ":" + std::to_string(search_shards);
}

DustPipeline::DustPipeline(PipelineConfig config,
                           std::shared_ptr<embed::TupleEncoder> tuple_encoder)
    : config_(std::move(config)), tuple_encoder_(std::move(tuple_encoder)) {
  DUST_CHECK(tuple_encoder_ != nullptr);
  if (config_.engine == "d3l") {
    // The cascade's layers live in the starmie engine's retrieval path;
    // silently ignoring the request would mis-report what is serving.
    DUST_CHECK(!config_.cascade.enabled &&
               "the retrieval cascade requires the starmie engine");
    search::OverlapSearchConfig overlap;
    overlap.embedding_dim = config_.embedding_dim;
    overlap.seed = config_.seed;
    search_ = std::make_unique<search::OverlapUnionSearch>(overlap);
  } else {
    // Fail fast on a typo'd index name or nonsense tuning knob here, where
    // the config enters the pipeline, rather than deep inside IndexLake.
    const std::string index_spec = config_.EffectiveSearchIndex();
    DUST_CHECK(index::IsKnownIndexType(index_spec));
    search::EmbeddingSearchConfig embedding;
    embedding.encoder.dim = config_.embedding_dim;
    embedding.encoder.seed = config_.seed;
    embedding.index_type = index_spec;
    embedding.index_options.hnsw_m = config_.hnsw_m;
    embedding.index_options.hnsw_ef_search = config_.hnsw_ef_search;
    DUST_CHECK(index::ValidateIndexOptions(embedding.index_options).ok());
    embedding.shortlist = config_.search_shortlist;
    if (index_spec != "flat" && config_.search_shortlist == 0) {
      // shortlist == 0 means "score everything exactly", which would make
      // the requested approximate (or sharded) index a silent no-op; give
      // it work.
      embedding.shortlist =
          PipelineConfig::DefaultShortlist(config_.num_tables);
    }
    embedding.cascade = config_.cascade;
    search_ = std::make_unique<search::EmbeddingUnionSearch>(embedding);
  }
}

void DustPipeline::IndexLake(const std::vector<const table::Table*>& lake) {
  lake_ = lake;
  search_->IndexLake(lake);
}

uint64_t DustPipeline::SnapshotHash(
    const std::vector<const table::Table*>& lake) const {
  uint64_t h = ChainHash(0, std::string("dust-snapshot-v1"));
  h = ChainHash(h, config_.engine);
  // The effective spec folds search_shards in, so "flat" + 4 shards and a
  // literal "sharded:flat:4" hash identically (they build the same index).
  h = ChainHash(h, config_.EffectiveSearchIndex());
  h = ChainHash(h, config_.search_shortlist);
  h = ChainHash(h, config_.hnsw_m);
  h = ChainHash(h, config_.hnsw_ef_search);
  h = ChainHash(h, config_.embedding_dim);
  h = ChainHash(h, config_.seed);
  h = ChainHash(h, static_cast<uint64_t>(config_.column_model));
  h = ChainHash(h, static_cast<uint64_t>(config_.column_serialization));
  h = ChainHash(h, static_cast<uint64_t>(config_.metric));
  h = search::cascade::ChainCascadeConfig(h, config_.cascade);
  h = ChainHash(h, lake.size());
  for (const table::Table* t : lake) {
    h = ChainHash(h, t->name());
    h = ChainHash(h, t->num_columns());
    h = ChainHash(h, t->num_rows());
  }
  return h;
}

Status DustPipeline::SaveSnapshot(const std::string& path) const {
  if (lake_.empty()) {
    return Status::FailedPrecondition("IndexLake was not called");
  }
  io::IndexWriter writer(path);
  DUST_RETURN_IF_ERROR(writer.status());
  writer.WriteBytes(io::kSnapshotMagic, sizeof(io::kSnapshotMagic));
  writer.WriteU32(kSnapshotFormatVersion);
  writer.WriteU64(SnapshotHash(lake_));
  // Id-to-lake-table mapping. Identity for the table-profile index today;
  // kept explicit so tuple-level or sharded indexes (ROADMAP) can persist a
  // non-trivial mapping without a format bump.
  writer.WriteU64(lake_.size());
  for (size_t t = 0; t < lake_.size(); ++t) writer.WriteU64(t);
  DUST_RETURN_IF_ERROR(writer.status());
  DUST_RETURN_IF_ERROR(search_->SaveState(&writer));
  return writer.Close();
}

Status DustPipeline::LoadSnapshot(
    const std::string& path, const std::vector<const table::Table*>& lake) {
  if (lake.empty()) {
    return Status::InvalidArgument("cannot load a snapshot over an empty lake");
  }
  io::IndexReader reader(path);
  DUST_RETURN_IF_ERROR(reader.status());
  DUST_RETURN_IF_ERROR(
      reader.ExpectMagic(io::kSnapshotMagic, "DUST snapshot"));
  uint32_t version = 0;
  DUST_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kSnapshotFormatVersion) {
    return Status::IoError("unsupported snapshot format version " +
                           std::to_string(version));
  }
  uint64_t stored_hash = 0;
  DUST_RETURN_IF_ERROR(reader.ReadU64(&stored_hash));
  if (stored_hash != SnapshotHash(lake)) {
    return Status::FailedPrecondition(
        "stale snapshot: embedding config or lake changed since it was "
        "saved; rebuild with IndexLake + SaveSnapshot");
  }
  uint64_t mapping_size = 0;
  DUST_RETURN_IF_ERROR(reader.ReadCount(sizeof(uint64_t), &mapping_size));
  if (mapping_size != lake.size()) {
    return Status::IoError("snapshot mapping/lake size mismatch");
  }
  for (uint64_t i = 0; i < mapping_size; ++i) {
    uint64_t table_index = 0;
    DUST_RETURN_IF_ERROR(reader.ReadU64(&table_index));
    if (table_index >= lake.size()) {
      return Status::IoError("snapshot mapping references missing table");
    }
  }
  DUST_RETURN_IF_ERROR(search_->LoadState(&reader));
  lake_ = lake;
  return Status::Ok();
}

Result<PipelineResult> DustPipeline::Run(const table::Table& query,
                                         size_t k) const {
  if (lake_.empty()) {
    return Status::FailedPrecondition("IndexLake was not called");
  }
  if (query.num_columns() == 0) {
    return Status::InvalidArgument("query table has no columns");
  }
  PipelineResult result;
  Stopwatch watch;

  // --- SearchTables (Algorithm 1, line 3) ---
  result.tables = search_->SearchTables(query, config_.num_tables);
  result.timings.search_seconds = watch.Seconds();
  if (result.tables.empty()) {
    return Status::NotFound("no unionable tables found");
  }
  // Drop weakly-unionable tables; always keep the top hit.
  while (result.tables.size() > 1 &&
         result.tables.back().score < config_.min_table_score) {
    result.tables.pop_back();
  }

  // --- AlignColumns (line 5) ---
  watch.Restart();
  std::vector<const table::Table*> retrieved;
  retrieved.reserve(result.tables.size());
  for (const search::TableHit& hit : result.tables) {
    retrieved.push_back(lake_[hit.table_index]);
  }
  auto encoder = embed::MakeEmbedder(
      config_.column_model,
      embed::DefaultConfigFor(config_.column_model, config_.embedding_dim,
                              config_.seed));
  embed::ColumnEmbedder column_embedder(std::move(encoder),
                                        config_.column_serialization);
  std::vector<const table::Table*> all_tables;
  all_tables.push_back(&query);
  for (const table::Table* t : retrieved) all_tables.push_back(t);
  std::vector<std::vector<la::Vec>> column_embeddings =
      column_embedder.EmbedTables(all_tables);
  align::HolisticAligner aligner(config_.aligner);
  result.alignment = aligner.Align(query, retrieved, column_embeddings);

  Result<align::UnionableTuples> tuples =
      align::BuildUnionableTuples(query, retrieved, result.alignment);
  if (!tuples.ok()) return tuples.status();
  const align::UnionableTuples& unionable = tuples.value();
  result.timings.align_seconds = watch.Seconds();

  if (unionable.unioned.num_rows() == 0) {
    return Status::NotFound("alignment produced no unionable tuples");
  }

  // --- EmbedTuples (line 7) ---
  watch.Restart();
  std::vector<la::Vec> lake_embeddings;
  lake_embeddings.reserve(unionable.serialized.size());
  for (const std::string& ser : unionable.serialized) {
    lake_embeddings.push_back(tuple_encoder_->EncodeSerialized(ser));
  }
  std::vector<la::Vec> query_embeddings;
  query_embeddings.reserve(unionable.query_serialized.size());
  for (const std::string& ser : unionable.query_serialized) {
    query_embeddings.push_back(tuple_encoder_->EncodeSerialized(ser));
  }
  result.timings.embed_seconds = watch.Seconds();

  // --- DiversifyTuples (line 8, Algorithm 2) ---
  watch.Restart();
  std::vector<size_t> table_of(unionable.provenance.size());
  for (size_t i = 0; i < unionable.provenance.size(); ++i) {
    table_of[i] = unionable.provenance[i].table_index;
  }
  diversify::DiversifyInput input;
  input.query = &query_embeddings;
  input.lake = &lake_embeddings;
  input.metric = config_.metric;
  input.table_of = &table_of;
  diversify::DustDiversifier diversifier(config_.diversifier);
  std::vector<size_t> selected = diversifier.SelectDiverse(input, k);
  result.timings.diversify_seconds = watch.Seconds();

  // Materialize the output table with lake-level provenance.
  result.output = unionable.unioned.SelectRows(selected);
  result.output.set_name("dust_output");
  result.provenance.reserve(selected.size());
  for (size_t i : selected) {
    table::TupleRef ref = unionable.provenance[i];
    // Map the retrieved-table index back to the lake index.
    ref.table_index = result.tables[ref.table_index].table_index;
    result.provenance.push_back(ref);
  }
  return result;
}

Status SavePipelineSnapshot(const DustPipeline& pipeline,
                            const std::string& path) {
  return pipeline.SaveSnapshot(path);
}

Status LoadPipelineSnapshot(DustPipeline* pipeline, const std::string& path,
                            const std::vector<const table::Table*>& lake) {
  DUST_CHECK(pipeline != nullptr);
  return pipeline->LoadSnapshot(path, lake);
}

}  // namespace dust::core
