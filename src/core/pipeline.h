// DustPipeline — Algorithm 1 end to end.
//
//   D' ← SearchTables(Q, D)         table union search (src/search)
//   T  ← AlignColumns(Q, D')        holistic alignment + outer union
//   E  ← EmbedTuples(Q, T)          fine-tuned tuple encoder (src/nn)
//   F  ← DiversifyTuples(E_Q, E_T)  Algorithm 2 (src/diversify)
//
// The pipeline owns the search engine and aligner; the tuple encoder is
// injected (DustModel or any pretrained encoder) so experiments can swap
// representations.
#ifndef DUST_CORE_PIPELINE_H_
#define DUST_CORE_PIPELINE_H_

#include <memory>
#include <vector>

#include "align/holistic_aligner.h"
#include "align/tuple_builder.h"
#include "diversify/dust_diversifier.h"
#include "embed/tuple_encoder.h"
#include "search/cascade/candidate_stage.h"
#include "search/union_search.h"
#include "table/table.h"
#include "util/status.h"

namespace dust::core {

/// Serving-layer knobs carried alongside the pipeline config — consumed by
/// serve::QueryServer (via dust_cli --serve or an embedding application),
/// never by Algorithm 1 itself. They shape scheduling and caching only,
/// not results, so they are deliberately excluded from the snapshot
/// staleness hash: changing them must not invalidate saved indexes.
struct ServingConfig {
  /// Result-cache capacity in entries; 0 disables the cache.
  size_t cache_entries = 1024;
  /// Result-cache capacity in bytes of cached hit lists.
  size_t cache_bytes = size_t{64} << 20;
  /// Result-cache lock stripes (1 = globally LRU-ordered).
  size_t cache_stripes = 16;
  /// Export the serve::Metrics registry (human table + text exposition).
  bool metrics = true;
};

struct PipelineConfig {
  /// Top-N unionable tables retrieved by the search phase.
  size_t num_tables = 10;
  /// Tables scoring below this are dropped after search (at least the best
  /// table is always kept). Keeps weakly-unionable tables from polluting
  /// the outer union with null-padded "diverse" junk.
  double min_table_score = 0.25;
  /// Union search engine: "starmie" (embedding) or "d3l" (overlap).
  std::string engine = "starmie";
  /// Shortlist index for the starmie engine: "flat", "ivf", "lsh", "hnsw",
  /// or a full sharded spec such as "sharded:hnsw:4:hash".
  std::string search_index = "flat";
  /// Candidates short-listed by that index before exact bipartite scoring.
  /// 0 = score every lake table exactly when the effective search index is
  /// "flat"; with any other index (approximate or sharded), 0 resolves to
  /// DefaultShortlist(num_tables) so the index is never a silent no-op.
  /// Ignored by the d3l engine.
  size_t search_shortlist = 0;
  /// Shards for the shortlist index. 0 = search_index as given; N >= 1
  /// wraps it into "sharded:<search_index>:<N>" (round-robin placement —
  /// spell out a full sharded spec in search_index for hash placement).
  /// search_index must not already be a sharded spec when this is set.
  size_t search_shards = 0;
  /// HNSW tuning knobs for the shortlist index (HnswConfig::M /
  /// ::ef_search; 0 keeps the defaults). Invalid values (M == 1) abort at
  /// pipeline construction — CLI and config loaders should pre-validate
  /// with index::ValidateIndexOptions.
  size_t hnsw_m = 0;
  size_t hnsw_ef_search = 0;
  /// Staged retrieval cascade for the starmie engine: type prefilter and
  /// MinHash prescreen ahead of the vector shortlist (src/search/cascade/).
  /// Default-off; the d3l engine rejects it at pipeline construction. Every
  /// knob shapes results, so all of them are baked into the snapshot
  /// staleness hash, and IndexLake's per-table sketches persist in
  /// snapshots (format v2).
  search::cascade::CascadeConfig cascade;

  /// Shortlist used when an approximate search_index is requested with
  /// search_shortlist == 0.
  static size_t DefaultShortlist(size_t num_tables) {
    return num_tables * 5 > 50 ? num_tables * 5 : 50;
  }
  /// The index spec IndexLake actually builds: search_index, wrapped into
  /// "sharded:<search_index>:<search_shards>" when search_shards > 0.
  std::string EffectiveSearchIndex() const;
  /// Column embedding used for alignment (Column-level RoBERTa wins
  /// Table 1 and is DUST's choice, Sec. 6.2.4).
  embed::ModelFamily column_model = embed::ModelFamily::kRoberta;
  embed::ColumnSerialization column_serialization =
      embed::ColumnSerialization::kColumnLevel;
  size_t embedding_dim = 64;
  uint64_t seed = 1234;
  align::AlignerConfig aligner;
  diversify::DustDiversifierConfig diversifier;
  la::Metric metric = la::Metric::kCosine;
  /// Serving-layer (QueryServer) knobs; see ServingConfig. Not hashed into
  /// SnapshotHash — they never change results.
  ServingConfig serving;
};

struct PipelineResult {
  /// The retrieved unionable tables, best first.
  std::vector<search::TableHit> tables;
  align::AlignmentResult alignment;
  /// The k selected diverse tuples under the query schema.
  table::Table output;
  /// Provenance of each output row: (index into the *lake*, row index).
  std::vector<table::TupleRef> provenance;
  struct Timings {
    double search_seconds = 0.0;
    double align_seconds = 0.0;
    double embed_seconds = 0.0;
    double diversify_seconds = 0.0;
  } timings;
};

/// End-to-end diverse unionable tuple search.
class DustPipeline {
 public:
  DustPipeline(PipelineConfig config,
               std::shared_ptr<embed::TupleEncoder> tuple_encoder);

  /// Indexes the data lake once (search-phase indexes).
  void IndexLake(const std::vector<const table::Table*>& lake);

  /// Persists the state IndexLake built — the search engine's lake
  /// embeddings and shortlist index, the id-to-table mapping, and a hash of
  /// every config field and lake shape that shaped that state — so serving
  /// processes can LoadSnapshot instead of re-embedding the lake. Requires
  /// IndexLake to have run; the d3l engine does not support snapshots.
  Status SaveSnapshot(const std::string& path) const;

  /// Restores a SaveSnapshot file against the same lake tables (still
  /// needed online for alignment and tuple materialization). A snapshot
  /// whose config hash does not match this pipeline's config and `lake` is
  /// rejected with FailedPrecondition rather than silently mis-served.
  Status LoadSnapshot(const std::string& path,
                      const std::vector<const table::Table*>& lake);

  /// Runs Algorithm 1 for one query, returning `k` diverse tuples.
  Result<PipelineResult> Run(const table::Table& query, size_t k) const;

  /// Routes the search engine's index fan-out (e.g. a sharded shortlist's
  /// per-query scatter) through a shared thread pool, so a serving process
  /// creates zero threads per Run. Install once before concurrent traffic;
  /// the executor must outlive the pipeline or be unset first.
  void SetExecutor(serve::Executor* executor) {
    search_->SetExecutor(executor);
  }

  /// Cumulative per-stage cascade statistics of the search engine (see
  /// CascadeSearch::StatsSummary); empty for engines without a cascade.
  std::string CascadeStatsSummary() const {
    return search_->CascadeStatsSummary();
  }

  const PipelineConfig& config() const { return config_; }

 private:
  /// Hash of the embedding/search config plus the lake's shape (per-table
  /// name and row/column counts). Staleness guard: it detects config drift
  /// and added/removed/reshaped tables, not in-place cell edits.
  uint64_t SnapshotHash(const std::vector<const table::Table*>& lake) const;

  PipelineConfig config_;
  std::shared_ptr<embed::TupleEncoder> tuple_encoder_;
  std::unique_ptr<search::UnionSearch> search_;
  std::vector<const table::Table*> lake_;
};

/// Free-function spellings of the snapshot API (the offline indexer calls
/// Save, every serving process calls Load).
Status SavePipelineSnapshot(const DustPipeline& pipeline,
                            const std::string& path);
Status LoadPipelineSnapshot(DustPipeline* pipeline, const std::string& path,
                            const std::vector<const table::Table*>& lake);

}  // namespace dust::core

#endif  // DUST_CORE_PIPELINE_H_
