#include "diversify/swap.h"

#include <algorithm>
#include <numeric>

#include "diversify/metrics.h"
#include "util/status.h"

namespace dust::diversify {

std::vector<size_t> SwapDiversifier::SelectDiverse(const DiversifyInput& input,
                                                   size_t k) {
  DUST_CHECK(input.lake != nullptr);
  const std::vector<la::Vec>& lake = *input.lake;
  const size_t s = lake.size();
  if (s == 0 || k == 0) return {};
  k = std::min(k, s);

  // Relevance ranking (closest to the query first). With no query, the
  // natural order stands in for the retrieval ranking.
  std::vector<float> relevance(s, 0.0f);
  if (input.query != nullptr && !input.query->empty()) {
    for (size_t i = 0; i < s; ++i) {
      relevance[i] = 1.0f - MeanDistanceToQuery(input, i);
    }
  }
  std::vector<size_t> order(s);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return relevance[a] > relevance[b];
  });

  std::vector<size_t> result(order.begin(), order.begin() + static_cast<long>(k));
  std::vector<char> in_set(s, 0);
  for (size_t i : result) in_set[i] = 1;

  // Pairwise diversity of the current set, tracked incrementally.
  auto set_points = [&](const std::vector<size_t>& set) {
    std::vector<la::Vec> pts;
    pts.reserve(set.size());
    for (size_t i : set) pts.push_back(lake[i]);
    return pts;
  };
  double diversity =
      AverageDiversity(input.query ? *input.query : std::vector<la::Vec>{},
                       set_points(result), input.metric);

  // Consider outsiders in relevance order; swap out the least-contributing
  // member if diversity improves and the relevance drop is bounded.
  for (size_t pos = k; pos < s; ++pos) {
    size_t candidate = order[pos];
    // The member whose removal hurts pairwise diversity the least.
    double best_value = -1.0;
    size_t best_member = k;
    for (size_t m = 0; m < result.size(); ++m) {
      if (relevance[result[m]] - relevance[candidate] >
          config_.relevance_bound) {
        continue;  // dropping too much relevance
      }
      std::vector<size_t> trial = result;
      trial[m] = candidate;
      double value =
          AverageDiversity(input.query ? *input.query : std::vector<la::Vec>{},
                           set_points(trial), input.metric);
      if (value > best_value) {
        best_value = value;
        best_member = m;
      }
    }
    if (best_member < k && best_value > diversity) {
      in_set[result[best_member]] = 0;
      result[best_member] = candidate;
      in_set[candidate] = 1;
      diversity = best_value;
    }
  }
  return result;
}

}  // namespace dust::diversify
