// Random baseline (Sec. 6.4.3): k tuples sampled uniformly without
// replacement.
#ifndef DUST_DIVERSIFY_RANDOM_DIV_H_
#define DUST_DIVERSIFY_RANDOM_DIV_H_

#include <cstdint>

#include "diversify/diversifier.h"

namespace dust::diversify {

class RandomDiversifier : public Diversifier {
 public:
  explicit RandomDiversifier(uint64_t seed = 2024) : seed_(seed) {}

  std::vector<size_t> SelectDiverse(const DiversifyInput& input,
                                    size_t k) override;
  std::string name() const override { return "Random"; }

 private:
  uint64_t seed_;
};

}  // namespace dust::diversify

#endif  // DUST_DIVERSIFY_RANDOM_DIV_H_
