#include "diversify/maxmin.h"

#include <cmath>
#include <limits>

#include "util/status.h"

namespace dust::diversify {

std::vector<size_t> MaxMinGreedyDiversifier::SelectDiverse(
    const DiversifyInput& input, size_t k) {
  DUST_CHECK(input.lake != nullptr);
  const std::vector<la::Vec>& lake = *input.lake;
  const size_t s = lake.size();
  if (s == 0 || k == 0) return {};
  k = std::min(k, s);

  // min_gap[i]: min distance from candidate i to the selected ∪ query set.
  std::vector<float> min_gap(s, std::numeric_limits<float>::infinity());
  if (input.query != nullptr) {
    for (size_t i = 0; i < s; ++i) {
      for (const la::Vec& q : *input.query) {
        float d = la::Distance(input.metric, lake[i], q);
        if (d < min_gap[i]) min_gap[i] = d;
      }
    }
  }

  std::vector<char> selected(s, 0);
  std::vector<size_t> result;
  result.reserve(k);
  for (size_t step = 0; step < k; ++step) {
    // Argmax of min_gap; with no query and nothing selected, pick index 0.
    size_t best = s;
    float best_gap = -1.0f;
    for (size_t i = 0; i < s; ++i) {
      if (selected[i]) continue;
      float gap = std::isinf(min_gap[i]) ? std::numeric_limits<float>::max()
                                         : min_gap[i];
      if (gap > best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    DUST_CHECK(best < s);
    selected[best] = 1;
    result.push_back(best);
    for (size_t i = 0; i < s; ++i) {
      if (selected[i]) continue;
      float d = la::Distance(input.metric, lake[i], lake[best]);
      if (d < min_gap[i]) min_gap[i] = d;
    }
  }
  return result;
}

}  // namespace dust::diversify
