#include "diversify/random_div.h"

#include "util/rng.h"
#include "util/status.h"

namespace dust::diversify {

std::vector<size_t> RandomDiversifier::SelectDiverse(
    const DiversifyInput& input, size_t k) {
  DUST_CHECK(input.lake != nullptr);
  const size_t s = input.lake->size();
  if (s == 0 || k == 0) return {};
  Rng rng(seed_);
  // Advance the seed so repeated calls yield fresh (but replayable) samples.
  seed_ = rng.NextU64();
  return rng.SampleWithoutReplacement(s, std::min(k, s));
}

}  // namespace dust::diversify
